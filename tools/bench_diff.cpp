// bench_diff — compare fresh bench results against the committed baseline.
//
// Both inputs are files of `{"bench":...,"config":...,"msg_cost":...}` rows
// (bench_util's result_line format; non-row lines are skipped, so raw bench
// stdout works too). Rows are matched on (bench, config) and gated on every
// deterministic model axis the row carries: msg_cost, work, bytes and
// probes_per_op (the query planner's match-probe count). A
// fresh row whose value on any gated axis exceeds the baseline's by more
// than the tolerance (default 10%) is a regression and fails the run with
// exit 1; axes the baseline row lacks (or records as 0 — wall-clock-only
// rows) are skipped, so old baselines keep gating exactly what they always
// did. Rows present on only one side are listed as warnings — new benches
// aren't regressions, and removed benches should be dropped from the
// baseline deliberately — so CI catches cost drift the moment a PR
// introduces it.
//
// Two gate directions: most axes are costs (more = regression), but
// `goodput` is useful work (less = regression), so it gates on the
// *downward* ratio. `shed_rate` and `p99_model` are deterministic
// sim-model quantities from bench_overload and gate upward like costs.
//
// --repeat mode: compare two runs of the *same* benches and fail on ANY
// difference in any deterministic axis — run-to-run drift means a bench is
// nondeterministic and its baseline row is untrustworthy (the PR 7
// chaos_overhead re-pin was exactly this, re-pinned blind). CI runs the
// gated benches twice and feeds both outputs through this mode.
//
// --wall-report=PATH: additionally write every fresh row's wall-clock axes
// (ns_per_op, ops_per_sec, p50_ns, p99_ns) as JSONL to PATH, each with the
// baseline value and percentage delta when the baseline row carries the
// axis. This is the *soft* wall-clock budget: the report never gates (wall
// time moves with the runner, the load and the scheduler, not with the
// algorithms) — CI uploads it as an artifact so a wall-clock trajectory
// accumulates across runs and a real hot-path regression is visible the
// day it lands, without a flaky gate.
//
// Usage: bench_diff BASELINE FRESH [--tolerance=0.10] [--wall-report=PATH]
//        bench_diff --repeat RUN1 RUN2
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <utility>

#include "obs/export.hpp"

namespace {

using RowKey = std::pair<std::string, std::string>;  // (bench, config)

std::map<RowKey, paso::obs::JsonRow> load_rows(const char* path) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path);
    std::exit(2);
  }
  std::map<RowKey, paso::obs::JsonRow> rows;
  for (paso::obs::JsonRow& row : paso::obs::read_json_rows(is)) {
    if (!row.has("bench") || !row.has("config")) continue;
    rows.emplace(RowKey{row.str("bench"), row.str("config")}, std::move(row));
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  double tolerance = 0.10;
  bool repeat_mode = false;
  const char* wall_report = nullptr;
  const char* paths[2] = {nullptr, nullptr};
  int path_count = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--tolerance=", 12) == 0) {
      tolerance = std::atof(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--wall-report=", 14) == 0) {
      wall_report = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--repeat", 8) == 0) {
      repeat_mode = true;
    } else if (path_count < 2) {
      paths[path_count++] = argv[i];
    }
  }
  if (path_count != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff BASELINE FRESH [--tolerance=0.10] "
                 "[--wall-report=PATH]\n"
                 "       bench_diff --repeat RUN1 RUN2\n");
    return 2;
  }

  const auto baseline = load_rows(paths[0]);
  const auto fresh = load_rows(paths[1]);
  if (baseline.empty() || fresh.empty()) {
    std::fprintf(stderr, "bench_diff: no result rows in %s\n",
                 baseline.empty() ? paths[0] : paths[1]);
    return 2;
  }

  // Gated axes, all deterministic model quantities (wall clock is
  // machine-dependent and never gated). shed_rate and p99_model come from
  // bench_overload: virtual-time quantities, so exactly reproducible.
  static const char* const kAxes[] = {"msg_cost",  "work",     "bytes",
                                      "probes_per_op", "shed_rate",
                                      "p99_model"};
  // Axes where *less* is the regression (useful work per time unit).
  static const char* const kMinAxes[] = {"goodput"};
  // Wall-clock axes: reported for visibility, NEVER gated — they move with
  // the machine, the load and the scheduler, not with the algorithms.
  static const char* const kWallAxes[] = {"ns_per_op", "ops_per_sec", "p50_ns",
                                          "p99_ns"};

  if (repeat_mode) {
    // Self-consistency: the two inputs are two runs of the same benches.
    // Any deterministic-axis difference — values, or a row/axis emitted on
    // one run only — is nondeterminism, and a nondeterministic row must
    // never be pinned in a baseline.
    int drift = 0;
    for (const auto& [key, a] : baseline) {
      const auto it = fresh.find(key);
      if (it == fresh.end()) {
        std::printf("FAIL %s / %s: emitted on run 1 only\n", key.first.c_str(),
                    key.second.c_str());
        ++drift;
        continue;
      }
      auto check_axis = [&](const char* axis) {
        const bool in_a = a.has(axis);
        const bool in_b = it->second.has(axis);
        if (in_a != in_b) {
          std::printf("FAIL %s / %s: %s present on run %d only\n",
                      key.first.c_str(), key.second.c_str(), axis,
                      in_a ? 1 : 2);
          ++drift;
          return;
        }
        if (!in_a) return;
        const double va = a.num(axis);
        const double vb = it->second.num(axis);
        if (va != vb) {
          std::printf("FAIL %s / %s: %s drifted run-to-run: %.17g != %.17g\n",
                      key.first.c_str(), key.second.c_str(), axis, va, vb);
          ++drift;
        }
      };
      for (const char* axis : kAxes) check_axis(axis);
      for (const char* axis : kMinAxes) check_axis(axis);
    }
    for (const auto& [key, row] : fresh) {
      if (!baseline.contains(key)) {
        std::printf("FAIL %s / %s: emitted on run 2 only\n", key.first.c_str(),
                    key.second.c_str());
        ++drift;
      }
    }
    std::printf("bench_diff --repeat: %zu rows, %d drifting\n",
                baseline.size(), drift);
    return drift > 0 ? 1 : 0;
  }

  int regressions = 0;
  int compared = 0;
  int improved = 0;
  for (const auto& [key, base_row] : baseline) {
    const auto it = fresh.find(key);
    if (it == fresh.end()) {
      std::printf("warn: missing from fresh run: %s / %s\n", key.first.c_str(),
                  key.second.c_str());
      continue;
    }
    bool row_counted = false;
    for (const char* axis : kAxes) {
      if (!base_row.has(axis)) continue;
      const double base = base_row.num(axis);
      const double now = it->second.num(axis);
      // Axes the baseline meters as 0 have no model cost to regress.
      if (base <= 0) continue;
      if (!row_counted) {
        ++compared;
        row_counted = true;
      }
      const double ratio = now / base;
      if (ratio > 1.0 + tolerance) {
        std::printf("FAIL %s / %s: %s %.6g -> %.6g (+%.1f%% > %.0f%%)\n",
                    key.first.c_str(), key.second.c_str(), axis, base, now,
                    (ratio - 1.0) * 100, tolerance * 100);
        ++regressions;
      } else if (ratio < 1.0 - tolerance) {
        std::printf("note: improved %s / %s: %s %.6g -> %.6g (%.1f%%)\n",
                    key.first.c_str(), key.second.c_str(), axis, base, now,
                    (ratio - 1.0) * 100);
        ++improved;
      }
    }
    for (const char* axis : kMinAxes) {
      if (!base_row.has(axis)) continue;
      const double base = base_row.num(axis);
      const double now = it->second.num(axis);
      if (base <= 0) continue;
      if (!row_counted) {
        ++compared;
        row_counted = true;
      }
      const double ratio = now / base;
      if (ratio < 1.0 - tolerance) {
        std::printf("FAIL %s / %s: %s %.6g -> %.6g (%.1f%% < -%.0f%%)\n",
                    key.first.c_str(), key.second.c_str(), axis, base, now,
                    (ratio - 1.0) * 100, tolerance * 100);
        ++regressions;
      } else if (ratio > 1.0 + tolerance) {
        std::printf("note: improved %s / %s: %s %.6g -> %.6g (+%.1f%%)\n",
                    key.first.c_str(), key.second.c_str(), axis, base, now,
                    (ratio - 1.0) * 100);
        ++improved;
      }
    }
    for (const char* axis : kWallAxes) {
      if (!base_row.has(axis)) continue;
      const double base = base_row.num(axis);
      const double now = it->second.num(axis);
      if (base <= 0 || now <= 0) continue;
      const double delta = (now / base - 1.0) * 100;
      // Informational only: wall-clock drift is worth a glance, never a gate.
      if (delta > 25.0 || delta < -25.0) {
        std::printf("info: wall-clock %s / %s: %s %.6g -> %.6g (%+.1f%%, "
                    "not gated)\n",
                    key.first.c_str(), key.second.c_str(), axis, base, now,
                    delta);
      }
    }
  }
  for (const auto& [key, row] : fresh) {
    if (!baseline.contains(key)) {
      std::printf("warn: new row (not in baseline): %s / %s\n",
                  key.first.c_str(), key.second.c_str());
    }
  }

  if (wall_report != nullptr) {
    // Soft wall-clock budget: one JSONL row per (bench, config, wall axis)
    // the fresh run metered, with the baseline value and percent delta when
    // the baseline carries the axis. Never gated — CI stores this artifact
    // so wall-clock history accumulates without a machine-dependent gate.
    std::ofstream os(wall_report);
    if (!os) {
      std::fprintf(stderr, "bench_diff: cannot write %s\n", wall_report);
      return 2;
    }
    int wall_rows = 0;
    for (const auto& [key, row] : fresh) {
      const auto base_it = baseline.find(key);
      for (const char* axis : kWallAxes) {
        if (!row.has(axis)) continue;
        const double now = row.num(axis);
        if (now <= 0) continue;
        char value[64];
        std::snprintf(value, sizeof value, "%.6g", now);
        os << "{\"bench\":\"" << key.first << "\",\"config\":\"" << key.second
           << "\",\"axis\":\"" << axis << "\",\"value\":" << value;
        if (base_it != baseline.end() && base_it->second.has(axis)) {
          const double base = base_it->second.num(axis);
          if (base > 0) {
            char basebuf[64];
            char delta[64];
            std::snprintf(basebuf, sizeof basebuf, "%.6g", base);
            std::snprintf(delta, sizeof delta, "%.2f",
                          (now / base - 1.0) * 100);
            os << ",\"baseline\":" << basebuf << ",\"delta_pct\":" << delta;
          }
        }
        os << "}\n";
        ++wall_rows;
      }
    }
    std::printf("bench_diff: wall report (%d axis rows, not gated) -> %s\n",
                wall_rows, wall_report);
  }

  std::printf("bench_diff: %d rows compared, %d regressions, %d improved "
              "(tolerance %.0f%%)\n",
              compared, regressions, improved, tolerance * 100);
  return regressions > 0 ? 1 : 0;
}
