// trace_diff — differential replay of one op trace across the transports.
//
// Builds a deterministic single-client workload (seeded mix of inserts,
// reads, misses and read-deletes), replays it on the virtual-time simulated
// bus (always — the reference) and on the real-clock transport(s) selected
// by --transport, and prints a reconciliation report per real transport:
// per-op divergences (first 10), ledger totals, and a per-tag traffic table
// with MATCH/DIFF markers. Exit 0 when every run is indistinguishable from
// the simulated one (identical client-visible results AND an exactly equal
// model-cost ledger), 1 on any divergence — the same invariant
// tests/transport_diff_test.cpp locks into the fast tier, here as a tool so
// a suspect change can be probed with bigger traces and fresh seeds.
//
// --transport=threaded (default) keeps the classic two-way diff;
// --transport=socket replays against the multi-process socket transport
// (each machine its own OS process on a real TCP wire);
// --transport=all runs the three-way diff: sim vs threaded vs socket.
//
// Usage: trace_diff [--machines=N] [--ops=N] [--seed=S] [--lambda=L]
//                   [--transport=threaded|socket|all]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "paso/cluster.hpp"
#include "paso/object.hpp"

namespace {

using namespace paso;

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 1},
  });
}

struct TraceOp {
  enum class Kind { kInsert, kRead, kReadDel };
  Kind kind;
  std::uint32_t issuer;
  std::int64_t key;
};

const char* kind_name(TraceOp::Kind kind) {
  switch (kind) {
    case TraceOp::Kind::kInsert:
      return "insert";
    case TraceOp::Kind::kRead:
      return "read";
    case TraceOp::Kind::kReadDel:
      return "read-del";
  }
  return "?";
}

std::vector<TraceOp> make_trace(std::uint64_t seed, std::size_t ops,
                                std::size_t machines) {
  Rng rng(seed);
  std::vector<TraceOp> trace;
  std::vector<std::int64_t> live;
  std::int64_t next_key = 0;
  for (std::size_t i = 0; i < ops; ++i) {
    const std::uint32_t issuer =
        static_cast<std::uint32_t>(rng.uniform(0, machines - 1));
    const std::uint64_t roll = rng.uniform(0, 99);
    if (live.empty() || roll < 45) {
      trace.push_back({TraceOp::Kind::kInsert, issuer, next_key});
      live.push_back(next_key++);
    } else if (roll < 55) {
      trace.push_back({TraceOp::Kind::kRead, issuer, -1 - next_key});
    } else if (roll < 85) {
      const std::size_t pick = rng.uniform(0, live.size() - 1);
      trace.push_back({TraceOp::Kind::kRead, issuer, live[pick]});
    } else {
      const std::size_t pick = rng.uniform(0, live.size() - 1);
      trace.push_back({TraceOp::Kind::kReadDel, issuer, live[pick]});
      live.erase(live.begin() + pick);
    }
  }
  return trace;
}

struct OpOutcome {
  bool ok = false;
  std::string object;

  friend bool operator==(const OpOutcome&, const OpOutcome&) = default;
};

struct RunResult {
  std::vector<OpOutcome> outcomes;
  Cost msg_cost = 0;
  Cost work = 0;
  std::map<std::string, net::TrafficStats> per_tag;
  double wall_ms = 0;
};

RunResult replay(TransportKind kind, const std::vector<TraceOp>& trace,
                 std::size_t machines, std::size_t lambda) {
  const auto start = std::chrono::steady_clock::now();
  ClusterConfig config;
  config.machines = machines;
  config.lambda = lambda;
  config.transport = kind;
  Cluster cluster(task_schema(), config);
  cluster.assign_basic_support();

  RunResult result;
  for (const TraceOp& op : trace) {
    const ProcessId process = cluster.process(MachineId{op.issuer});
    OpOutcome outcome;
    switch (op.kind) {
      case TraceOp::Kind::kInsert:
        outcome.ok = cluster.insert_sync(
            process, Tuple{Value{op.key}, Value{std::string(16, 'x')}});
        break;
      case TraceOp::Kind::kRead:
      case TraceOp::Kind::kReadDel: {
        const SearchCriterion sc =
            criterion(Exact{Value{op.key}}, TypedAny{FieldType::kText});
        const SearchResponse found = op.kind == TraceOp::Kind::kRead
                                         ? cluster.read_sync(process, sc)
                                         : cluster.read_del_sync(process, sc);
        outcome.ok = found.has_value();
        if (found) outcome.object = object_to_string(*found);
        break;
      }
    }
    result.outcomes.push_back(std::move(outcome));
  }
  cluster.settle();
  cluster.transport().run_exclusive([&] {
    result.msg_cost = cluster.ledger().total_msg_cost();
    result.work = cluster.ledger().total_work();
    result.per_tag = cluster.ledger().per_tag();
  });
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t machines = 4;
  std::size_t ops = 200;
  std::size_t lambda = 1;
  std::uint64_t seed = 0xD1FF;
  std::string transports = "threaded";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--machines=", 11) == 0) {
      machines = std::strtoull(argv[i] + 11, nullptr, 10);
    } else if (std::strncmp(argv[i], "--ops=", 6) == 0) {
      ops = std::strtoull(argv[i] + 6, nullptr, 10);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 0);
    } else if (std::strncmp(argv[i], "--lambda=", 9) == 0) {
      lambda = std::strtoull(argv[i] + 9, nullptr, 10);
    } else if (std::strncmp(argv[i], "--transport=", 12) == 0) {
      transports = argv[i] + 12;
    } else {
      std::fprintf(stderr,
                   "usage: trace_diff [--machines=N] [--ops=N] [--seed=S] "
                   "[--lambda=L] [--transport=threaded|socket|all]\n");
      return 2;
    }
  }
  std::vector<std::pair<const char*, TransportKind>> kinds;
  if (transports == "threaded") {
    kinds = {{"threaded", TransportKind::kThreaded}};
  } else if (transports == "socket") {
    kinds = {{"socket", TransportKind::kSocket}};
  } else if (transports == "all") {
    kinds = {{"threaded", TransportKind::kThreaded},
             {"socket", TransportKind::kSocket}};
  } else {
    std::fprintf(stderr,
                 "trace_diff: --transport must be threaded, socket or all\n");
    return 2;
  }
  if (machines < lambda + 1 || ops == 0) {
    std::fprintf(stderr, "trace_diff: need machines > lambda and ops > 0\n");
    return 2;
  }

  const std::vector<TraceOp> trace = make_trace(seed, ops, machines);
  std::printf("trace_diff: %zu ops on %zu machines (lambda %zu, seed %#llx)\n",
              ops, machines, lambda,
              static_cast<unsigned long long>(seed));
  const RunResult sim = replay(TransportKind::kSim, trace, machines, lambda);

  int divergences = 0;
  for (const auto& [name, kind] : kinds) {
    const RunResult run = replay(kind, trace, machines, lambda);

    int op_diffs = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (sim.outcomes[i] == run.outcomes[i]) continue;
      ++divergences;
      if (++op_diffs <= 10) {
        std::printf("DIFF op %zu (%s key %lld): sim={ok=%d %s} %s={ok=%d "
                    "%s}\n",
                    i, kind_name(trace[i].kind),
                    static_cast<long long>(trace[i].key), sim.outcomes[i].ok,
                    sim.outcomes[i].object.c_str(), name, run.outcomes[i].ok,
                    run.outcomes[i].object.c_str());
      }
    }
    if (op_diffs > 10) {
      std::printf("... and %d more op divergences\n", op_diffs - 10);
    }

    std::printf("\n%-24s %14s %14s  %s\n", "axis", "sim", name, "status");
    const auto axis = [&](const char* axis_name, double a, double b) {
      const bool match = a == b;
      std::printf("%-24s %14.6g %14.6g  %s\n", axis_name, a, b,
                  match ? "MATCH" : "DIFF");
      if (!match) ++divergences;
    };
    axis("msg_cost", sim.msg_cost, run.msg_cost);
    axis("work", sim.work, run.work);

    // Per-tag traffic: the union of both runs' tags, so a tag present on
    // only one side shows up as a DIFF row instead of vanishing.
    std::map<std::string, net::TrafficStats> tags = sim.per_tag;
    for (const auto& [tag, stats] : run.per_tag) tags.emplace(tag, stats);
    for (const auto& [tag, unused] : tags) {
      static const net::TrafficStats kEmpty{};
      const net::TrafficStats& a =
          sim.per_tag.contains(tag) ? sim.per_tag.at(tag) : kEmpty;
      const net::TrafficStats& b =
          run.per_tag.contains(tag) ? run.per_tag.at(tag) : kEmpty;
      const bool match =
          a.messages == b.messages && a.bytes == b.bytes && a.cost == b.cost;
      std::printf("tag %-20s %6llu msgs %8llu B %10.6g | %6llu msgs %8llu B "
                  "%10.6g  %s\n",
                  tag.c_str(), static_cast<unsigned long long>(a.messages),
                  static_cast<unsigned long long>(a.bytes), a.cost,
                  static_cast<unsigned long long>(b.messages),
                  static_cast<unsigned long long>(b.bytes), b.cost,
                  match ? "MATCH" : "DIFF");
      if (!match) ++divergences;
    }

    std::printf("\nwall clock: sim %.1f ms, %s %.1f ms (informational)\n\n",
                sim.wall_ms, name, run.wall_ms);
  }

  if (divergences == 0) {
    std::printf("trace_diff: transports indistinguishable over %zu ops\n",
                ops);
    return 0;
  }
  std::printf("trace_diff: %d divergences\n", divergences);
  return 1;
}
