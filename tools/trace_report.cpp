// trace_report — per-operation cost breakdown from an observability sidecar.
//
// Reads the `{"span",...}` / `{"msg",...}` / `{"metric",...}` JSONL a bench
// writes (bench_util::write_obs_sidecar), rebuilds each trace's timeline,
// splits every charged bus message's alpha/beta cost equally across the
// traces that shared it, and prints:
//
//   * a per-op-kind table: count, mean latency, mean alpha / beta share —
//     the msg-cost(m) = alpha + beta|m| decomposition of Section 2 per
//     primitive instead of per ledger tag,
//   * anomalies by trace id: unfinished traces, non-ok finishes, retries,
//     deadline expiries and view-change re-routes,
//   * the reconciliation check: traced + untraced message cost must equal
//     the ledger total recorded in the sidecar's `ledger.msg_cost` row.
//
// Exits 1 when the reconciliation fails (cost was lost or double-counted)
// or the sidecar is unreadable — CI runs this after bench_adaptive_e2e.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/export.hpp"

namespace {

using paso::obs::JsonRow;

struct TraceInfo {
  std::string op;          // kIssue note: "insert", "read", ...
  std::string status;      // kFinish note; empty = never finished
  double issued_at = 0;
  double finished_at = 0;
  bool issued = false;
  bool finished = false;
  double alpha_share = 0;  // equal split of shared messages
  double beta_share = 0;
  int messages = 0;        // messages this trace had a share of
  int retries = 0;
  int deadlines = 0;
  int reroutes = 0;
  int coalesces = 0;
};

struct OpKindStats {
  int count = 0;
  double latency_sum = 0;
  double alpha_sum = 0;
  double beta_sum = 0;
  double messages_sum = 0;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: trace_report <sidecar.obs.jsonl>\n");
    return 1;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot open %s\n", argv[1]);
    return 1;
  }
  const std::vector<JsonRow> rows = paso::obs::read_json_rows(in);

  std::map<std::uint64_t, TraceInfo> traces;
  double traced_cost = 0;
  double untraced_cost = 0;
  std::uint64_t untraced_messages = 0;
  double ledger_total = -1;

  for (const JsonRow& row : rows) {
    if (row.has("span")) {
      const auto id = static_cast<std::uint64_t>(row.num("trace"));
      TraceInfo& t = traces[id];
      const std::string kind = row.str("span");
      if (kind == "issue") {
        t.issued = true;
        t.op = row.str("note");
        t.issued_at = row.num("at");
      } else if (kind == "finish") {
        t.finished = true;
        t.status = row.str("note");
        t.finished_at = row.num("at");
      } else if (kind == "retry") {
        ++t.retries;
      } else if (kind == "deadline") {
        ++t.deadlines;
      } else if (kind == "reroute") {
        ++t.reroutes;
      } else if (kind == "coalesce") {
        ++t.coalesces;
      }
    } else if (row.has("msg")) {
      const double alpha = row.num("alpha");
      const double beta = row.num("beta");
      const std::vector<double> sharers = row.array("traces");
      if (sharers.empty()) {
        untraced_cost += alpha + beta;
        ++untraced_messages;
        continue;
      }
      traced_cost += alpha + beta;
      const double n = static_cast<double>(sharers.size());
      for (const double sharer : sharers) {
        TraceInfo& t = traces[static_cast<std::uint64_t>(sharer)];
        t.alpha_share += alpha / n;
        t.beta_share += beta / n;
        ++t.messages;
      }
    } else if (row.has("metric") && row.str("metric") == "ledger.msg_cost") {
      ledger_total = row.num("value");
    }
  }

  // --- per-op-kind breakdown -------------------------------------------------
  std::map<std::string, OpKindStats> by_kind;
  for (const auto& [id, t] : traces) {
    (void)id;
    if (!t.issued) continue;
    OpKindStats& s = by_kind[t.op];
    ++s.count;
    if (t.finished) s.latency_sum += t.finished_at - t.issued_at;
    s.alpha_sum += t.alpha_share;
    s.beta_sum += t.beta_share;
    s.messages_sum += t.messages;
  }

  std::printf("per-op cost breakdown (%s)\n", argv[1]);
  std::printf("%-20s %8s %10s %10s %10s %8s\n", "op", "count", "latency",
              "alpha", "beta", "msgs");
  std::printf("%s\n", std::string(70, '-').c_str());
  for (const auto& [op, s] : by_kind) {
    const double n = s.count > 0 ? s.count : 1;
    std::printf("%-20s %8d %10.1f %10.2f %10.2f %8.2f\n", op.c_str(), s.count,
                s.latency_sum / n, s.alpha_sum / n, s.beta_sum / n,
                s.messages_sum / n);
  }

  // --- anomalies -------------------------------------------------------------
  std::vector<std::string> anomalies;
  for (const auto& [id, t] : traces) {
    char line[160];
    if (t.issued && !t.finished) {
      std::snprintf(line, sizeof line, "trace %llu (%s): never finished",
                    static_cast<unsigned long long>(id), t.op.c_str());
      anomalies.push_back(line);
    } else if (t.finished && t.status != "ok") {
      std::snprintf(line, sizeof line, "trace %llu (%s): finished '%s'",
                    static_cast<unsigned long long>(id), t.op.c_str(),
                    t.status.c_str());
      anomalies.push_back(line);
    }
    if (t.retries > 0) {
      std::snprintf(line, sizeof line, "trace %llu (%s): %d retries",
                    static_cast<unsigned long long>(id), t.op.c_str(),
                    t.retries);
      anomalies.push_back(line);
    }
    if (t.deadlines > 0) {
      std::snprintf(line, sizeof line, "trace %llu (%s): deadline expired",
                    static_cast<unsigned long long>(id), t.op.c_str());
      anomalies.push_back(line);
    }
    if (t.reroutes > 0) {
      std::snprintf(line, sizeof line,
                    "trace %llu (%s): re-routed by %d view change(s)",
                    static_cast<unsigned long long>(id), t.op.c_str(),
                    t.reroutes);
      anomalies.push_back(line);
    }
  }
  std::printf("\nanomalies: %zu\n", anomalies.size());
  const std::size_t shown = std::min<std::size_t>(anomalies.size(), 25);
  for (std::size_t i = 0; i < shown; ++i) {
    std::printf("  %s\n", anomalies[i].c_str());
  }
  if (anomalies.size() > shown) {
    std::printf("  ... %zu more\n", anomalies.size() - shown);
  }

  // --- reconciliation --------------------------------------------------------
  std::printf("\ntraced msg cost   %14.2f\n", traced_cost);
  std::printf("untraced msg cost %14.2f  (%llu background messages)\n",
              untraced_cost,
              static_cast<unsigned long long>(untraced_messages));
  const double total = traced_cost + untraced_cost;
  if (ledger_total < 0) {
    std::printf("ledger total      %14s  (no ledger.msg_cost row: skipped)\n",
                "-");
    return 0;
  }
  std::printf("ledger total      %14.2f\n", ledger_total);
  const double scale = std::max({std::fabs(total), std::fabs(ledger_total), 1.0});
  if (std::fabs(total - ledger_total) > 1e-6 * scale) {
    std::printf("RECONCILIATION FAILED: traced+untraced=%.6f != ledger=%.6f\n",
                total, ledger_total);
    return 1;
  }
  std::printf("reconciliation: OK (traced + untraced == ledger total)\n");
  return 0;
}
