// paso_machined: the machine-endpoint daemon for exec-mode socket clusters.
//
// A socket-transport cluster normally fork()s its machine processes; with
// SocketTransportOptions::machined_path set, it fork+execs this binary
// instead — a fresh image per machine, fully isolated from the broker's
// address space. The binary is a thin main around
// proc::machine_endpoint_main: parse the same --key=value spec the launcher
// builds (proc/spawn.hpp keeps the two in lockstep), run the endpoint loop,
// exit with its code.
#include <cstdio>

#include "proc/endpoint.hpp"
#include "proc/spawn.hpp"

int main(int argc, char** argv) {
  paso::proc::EndpointConfig config;
  for (int i = 1; i < argc; ++i) {
    if (!paso::proc::parse_endpoint_arg(argv[i], config)) {
      std::fprintf(stderr,
                   "paso_machined: unknown argument '%s'\n"
                   "usage: paso_machined --port=P --machine=M --token=T"
                   " [--ingress=N] [--heartbeat-us=U]\n",
                   argv[i]);
      return 64;
    }
  }
  if (config.port == 0) {
    std::fprintf(stderr, "paso_machined: --port is required\n");
    return 64;
  }
  return paso::proc::machine_endpoint_main(config);
}
