// E7 — Section 4.3: read groups.
//
// "Since the size of the write groups is unbounded, and a read entails no
// changes to the memory, there is some inefficiency involved in gcasting the
// read requests to all members of the write groups. ... it suffices to gcast
// read requests only to the members of the read group [of size <= lambda+1]."
//
// Grows the write group from lambda+1 to n and measures the per-read message
// cost and work with read groups on and off: with rg the cost stays flat at
// the lambda+1 level; without it both grow linearly with |wg|.
#include "bench/bench_util.hpp"

using namespace paso;
using namespace paso::bench;

namespace {

struct Measurement {
  Cost msg = 0;
  Cost work = 0;
};

Measurement read_cost(std::size_t wg_size, bool use_read_groups,
                      std::size_t machines, std::size_t lambda,
                      std::size_t segments = 1) {
  ClusterConfig config;
  config.machines = machines;
  config.lambda = lambda;
  config.runtime.use_read_groups = use_read_groups;
  if (segments > 1) {
    // Segmented variant: same workload over a bridged LAN. The write group
    // still grows from the low ids (segment 0) while the reader sits on the
    // far segment, so every remote read pays bridge crossings — read groups
    // cap how many.
    config.topology =
        net::Topology::even(segments, machines, CostModel{},
                            /*bridge_alpha=*/60, /*bridge_beta=*/0.5);
  }
  Cluster cluster(TaskCluster::schema(), config);
  cluster.assign_basic_support();
  // Grow the write group beyond the basic support by direct joins.
  for (std::uint32_t m = 0;
       m < machines && cluster.groups().group_size("wg/task/0") < wg_size;
       ++m) {
    cluster.runtime(MachineId{m}).request_join(ClassId{0});
    cluster.settle();
  }
  const ProcessId writer = cluster.process(MachineId{0});
  cluster.insert_sync(writer, TaskCluster::tuple(1));

  // Reader on the last machine, kept out of the write group.
  const MachineId reader_machine{static_cast<std::uint32_t>(machines - 1)};
  PASO_REQUIRE(!cluster.groups().is_member("wg/task/0", reader_machine),
               "reader machine must stay outside the write group");
  const ProcessId reader = cluster.process(reader_machine);

  const auto before = cluster.ledger().snapshot();
  constexpr int kReads = 20;
  for (int i = 0; i < kReads; ++i) {
    cluster.read_sync(reader, TaskCluster::by_key(1));
  }
  const CostTriple cost = cluster.ledger().since(before);
  return Measurement{cost.msg_cost / kReads, cost.work / kReads};
}

}  // namespace

int main() {
  constexpr std::size_t kMachines = 18;
  constexpr std::size_t kLambda = 2;
  print_header("E7 / Section 4.3: read groups cap remote-read cost at "
               "lambda+1 = 3 servers (n = 18)");
  std::printf("%6s | %14s %10s | %14s %10s\n", "|wg|", "rg: msg/read",
              "work/read", "full: msg/read", "work/read");
  print_rule();
  for (const std::size_t wg : {3u, 5u, 8u, 12u, 16u}) {
    const Measurement with_rg = read_cost(wg, true, kMachines, kLambda);
    const Measurement without = read_cost(wg, false, kMachines, kLambda);
    std::printf("%6zu | %14.1f %10.2f | %14.1f %10.2f\n", wg, with_rg.msg,
                with_rg.work, without.msg, without.work);
    result_line("read_groups", "wg=" + std::to_string(wg) + "/rg=on", 1, 0,
                with_rg.msg, 0);
    result_line("read_groups", "wg=" + std::to_string(wg) + "/rg=off", 1, 0,
                without.msg, 0);
  }
  std::printf(
      "\nWith read groups the per-read cost is flat in |wg| (the request\n"
      "reaches only lambda+1 = 3 members of the basic support); without\n"
      "them it grows linearly — the exact inefficiency Section 4.3 calls\n"
      "out. Updates still pay |wg| by necessity; the adaptive algorithms of\n"
      "Section 5 manage that trade.\n");

  print_header("Same sweep on a 2-segment topology (reader across the "
               "bridge)");
  std::printf("%6s | %14s %10s | %14s %10s\n", "|wg|", "rg: msg/read",
              "work/read", "full: msg/read", "work/read");
  print_rule();
  for (const std::size_t wg : {3u, 8u, 16u}) {
    const Measurement with_rg = read_cost(wg, true, kMachines, kLambda, 2);
    const Measurement without = read_cost(wg, false, kMachines, kLambda, 2);
    std::printf("%6zu | %14.1f %10.2f | %14.1f %10.2f\n", wg, with_rg.msg,
                with_rg.work, without.msg, without.work);
    result_line("read_groups", "wg=" + std::to_string(wg) + "/rg=on/segs=2",
                1, 0, with_rg.msg, 0);
    result_line("read_groups", "wg=" + std::to_string(wg) + "/rg=off/segs=2",
                1, 0, without.msg, 0);
  }
  std::printf(
      "\nBridge crossings multiply the cost of every remote target, so the\n"
      "flat-vs-linear gap widens: capping the read group at lambda+1 also\n"
      "caps the number of crossings per read.\n");
  return 0;
}
