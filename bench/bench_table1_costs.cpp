// E1 — Figure 1 ("Costs of PASO Operations"), the paper's cost table.
//
// Regenerates every row of the table with the analytic prediction printed
// next to the measured value from the simulated system:
//
//   insert(o)        msg = g(2a + b|o|) + a       time = I(l)   work = g*I(l)
//   read(sc), M in C  msg = 0                      time = Q(l)   work = Q(l)
//   read(sc), M not   msg = g(2a + b(|sc|+|r|))    time = Q(l)   work = g*Q(l)
//   read&del(sc)      msg = g(2a + b(|sc|+|r|))    time = D(l)   work = g*D(l)
//
// Known, documented deviations of the physical system from the closed form:
// the leader's done-ack is a free self-send (-a), and wire messages carry a
// 4-byte class header (+4b per fan-out message). Both are printed.
#include <cmath>

#include "bench/bench_util.hpp"
#include "storage/hash_store.hpp"
#include "storage/linear_store.hpp"
#include "storage/ordered_store.hpp"

using namespace paso;
using namespace paso::bench;

namespace {

constexpr Cost kAlpha = 10.0;
constexpr Cost kBeta = 1.0;

struct Row {
  std::string op;
  std::size_t g = 0;
  CostTriple predicted;
  CostTriple measured;
};

/// Build a cluster whose single class is replicated on `g` machines, with
/// `live` objects preloaded, and return it ready for measurement.
std::unique_ptr<Cluster> make_cluster(std::size_t g, std::size_t live,
                                      std::size_t text_bytes) {
  ClusterConfig config;
  config.machines = g + 2;  // leave machines outside the write group
  config.lambda = g - 1;    // basic support size = g
  config.cost_model = CostModel{kAlpha, kBeta};
  auto cluster = std::make_unique<Cluster>(TaskCluster::schema(), config);
  cluster->assign_basic_support();
  const ProcessId loader =
      cluster->process(cluster->basic_support(ClassId{0}).front());
  for (std::size_t i = 0; i < live; ++i) {
    cluster->insert_sync(loader,
                         TaskCluster::tuple(static_cast<std::int64_t>(i + 1000),
                                            text_bytes));
  }
  cluster->ledger().reset();
  return cluster;
}

Row measure_insert(std::size_t g, std::size_t live, std::size_t text_bytes) {
  auto cluster = make_cluster(g, live, text_bytes);
  const MachineId outside{static_cast<std::uint32_t>(g)};
  const ProcessId p = cluster->process(outside);

  const Tuple tuple = TaskCluster::tuple(1, text_bytes);
  PasoObject sample;
  sample.fields = tuple;
  const std::size_t obj_bytes = sample.wire_size();

  const auto before = cluster->ledger().snapshot();
  cluster->insert_sync(p, tuple);
  Row row;
  row.op = "insert(o)";
  row.g = g;
  row.measured = cluster->ledger().since(before);
  row.predicted.msg_cost =
      static_cast<Cost>(g) * (2 * kAlpha + kBeta * obj_bytes) + kAlpha;
  row.predicted.time = 1;                       // I(l) = 1 (hash store)
  row.predicted.work = static_cast<Cost>(g);    // g * I(l)
  return row;
}

Row measure_read_local(std::size_t g, std::size_t live,
                       std::size_t text_bytes) {
  auto cluster = make_cluster(g, live, text_bytes);
  const MachineId member = cluster->basic_support(ClassId{0}).front();
  const ProcessId p = cluster->process(member);
  const auto before = cluster->ledger().snapshot();
  cluster->read_sync(p, TaskCluster::by_key(1000));
  Row row;
  row.op = "read(sc), M in wg";
  row.g = g;
  row.measured = cluster->ledger().since(before);
  row.predicted = CostTriple{0, 1, 1};  // msg 0, Q(l), Q(l)
  return row;
}

Row measure_read_remote(std::size_t g, std::size_t live,
                        std::size_t text_bytes, bool read_groups,
                        std::size_t lambda_for_rg) {
  ClusterConfig config;
  config.machines = g + 2;
  config.lambda = g - 1;
  config.cost_model = CostModel{kAlpha, kBeta};
  config.runtime.use_read_groups = read_groups;
  config.runtime.lambda = lambda_for_rg;
  auto cluster = std::make_unique<Cluster>(TaskCluster::schema(), config);
  cluster->assign_basic_support();
  const ProcessId loader =
      cluster->process(cluster->basic_support(ClassId{0}).front());
  for (std::size_t i = 0; i < live; ++i) {
    cluster->insert_sync(loader,
                         TaskCluster::tuple(static_cast<std::int64_t>(i + 1000),
                                            text_bytes));
  }
  cluster->ledger().reset();

  const MachineId outside{static_cast<std::uint32_t>(g)};
  const ProcessId p = cluster->process(outside);
  const SearchCriterion sc = TaskCluster::by_key(1000);
  PasoObject sample;
  sample.fields = TaskCluster::tuple(1000, text_bytes);

  const auto before = cluster->ledger().snapshot();
  cluster->read_sync(p, sc);
  Row row;
  row.op = read_groups ? "read(sc), rg" : "read(sc), M not in wg";
  const std::size_t targets = read_groups ? std::min(lambda_for_rg + 1, g) : g;
  row.g = targets;
  row.measured = cluster->ledger().since(before);
  row.predicted.msg_cost =
      static_cast<Cost>(targets) *
      (2 * kAlpha + kBeta * (sc.wire_size() + sample.wire_size()));
  row.predicted.time = 1;
  row.predicted.work = static_cast<Cost>(targets);
  return row;
}

Row measure_read_del(std::size_t g, std::size_t live,
                     std::size_t text_bytes) {
  auto cluster = make_cluster(g, live, text_bytes);
  const MachineId outside{static_cast<std::uint32_t>(g)};
  const ProcessId p = cluster->process(outside);
  const SearchCriterion sc = TaskCluster::by_key(1000);
  PasoObject sample;
  sample.fields = TaskCluster::tuple(1000, text_bytes);

  const auto before = cluster->ledger().snapshot();
  cluster->read_del_sync(p, sc);
  Row row;
  row.op = "read&del(sc)";
  row.g = g;
  row.measured = cluster->ledger().since(before);
  row.predicted.msg_cost =
      static_cast<Cost>(g) *
      (2 * kAlpha + kBeta * (sc.wire_size() + sample.wire_size()));
  row.predicted.time = 1;
  row.predicted.work = static_cast<Cost>(g);
  return row;
}

void print_row(const Row& row) {
  std::printf("%-24s %3zu | %10.1f %10.1f %+7.1f | %6.1f %6.1f | %6.1f %6.1f\n",
              row.op.c_str(), row.g, row.predicted.msg_cost,
              row.measured.msg_cost,
              row.measured.msg_cost - row.predicted.msg_cost,
              row.predicted.time, row.measured.time, row.predicted.work,
              row.measured.work);
  result_line("table1_costs", row.op + "/g=" + std::to_string(row.g), 1, 0,
              row.measured.msg_cost, 0);
}

}  // namespace

int main() {
  print_header(
      "E1 / Figure 1: Costs of PASO Operations (alpha=10, beta=1, hash "
      "store: I=Q=D=1)");
  std::printf("%-24s %3s | %10s %10s %7s | %6s %6s | %6s %6s\n", "operation",
              "g", "msg:pred", "msg:meas", "delta", "t:pred", "t:meas",
              "w:pred", "w:meas");
  print_rule();

  for (const std::size_t g : {2u, 3u, 5u, 8u}) {
    print_row(measure_insert(g, 50, 16));
  }
  print_rule();
  for (const std::size_t g : {2u, 3u, 5u, 8u}) {
    print_row(measure_read_local(g, 50, 16));
  }
  print_rule();
  for (const std::size_t g : {2u, 3u, 5u, 8u}) {
    print_row(measure_read_remote(g, 50, 16, false, g - 1));
  }
  print_rule();
  for (const std::size_t g : {2u, 3u, 5u, 8u}) {
    print_row(measure_read_del(g, 50, 16));
  }

  print_header("Object-size sweep (insert, g = 3)");
  std::printf("%-24s %4s | %10s %10s\n", "operation", "|o|", "msg:pred",
              "msg:meas");
  print_rule();
  for (const std::size_t bytes : {8u, 32u, 128u, 512u, 2048u}) {
    const Row row = measure_insert(3, 10, bytes);
    std::printf("%-24s %4zu | %10.1f %10.1f\n", "insert(o)", bytes + 28,
                row.predicted.msg_cost, row.measured.msg_cost);
  }

  print_header("Live-object sweep (read local, hash store: Q(l) = 1)");
  std::printf("%-24s %5s | %6s %6s\n", "operation", "l", "t:meas", "w:meas");
  print_rule();
  for (const std::size_t live : {10u, 100u, 1000u}) {
    const Row row = measure_read_local(3, live, 16);
    std::printf("%-24s %5zu | %6.1f %6.1f\n", "read(sc), M in wg", live,
                row.measured.time, row.measured.work);
  }

  print_header("Store-family sweep: the I/Q/D functions of Figure 1 vary "
               "with the structure (read local, g = 2)");
  std::printf("%-10s %5s | %8s %8s | analytic Q(l)\n", "store", "l",
              "t:meas", "w:meas");
  print_rule();
  struct Family {
    const char* name;
    storage::StoreFactory make;
    const char* analytic;
  };
  const Family families[] = {
      {"hash", [] { return std::make_unique<storage::HashStore>(0); }, "1"},
      {"ordered",
       [] { return std::make_unique<storage::OrderedStore>(0); },
       "1 + floor(log2(l+1))"},
      {"linear", [] { return std::make_unique<storage::LinearStore>(); },
       "l"},
  };
  for (const Family& family : families) {
    for (const std::size_t live : {15u, 127u, 1023u}) {
      ClusterConfig config;
      config.machines = 4;
      config.lambda = 1;
      config.cost_model = CostModel{kAlpha, kBeta};
      config.store_factory = [&family](ClassId) { return family.make(); };
      Cluster cluster(TaskCluster::schema(), config);
      cluster.assign_basic_support();
      const MachineId member = cluster.basic_support(ClassId{0}).front();
      const ProcessId p = cluster.process(member);
      for (std::size_t i = 0; i < live; ++i) {
        cluster.insert_sync(
            p, TaskCluster::tuple(static_cast<std::int64_t>(i), 16));
      }
      const auto before = cluster.ledger().snapshot();
      cluster.read_sync(p, TaskCluster::by_key(0));
      const CostTriple cost = cluster.ledger().since(before);
      std::printf("%-10s %5zu | %8.1f %8.1f | %s\n", family.name, live,
                  cost.time, cost.work, family.analytic);
    }
  }

  std::printf(
      "\nDeviations from the closed form, by design (Section 3.3 model vs the\n"
      "physical bus): (i) the paper's approx charges the single gathered\n"
      "response once per member while the bus carries it once, so reads and\n"
      "read&dels measure (g-1)*beta*|r| below the prediction; (ii) the\n"
      "leader's done-ack is a free self-send (-alpha); (iii) each fan-out\n"
      "message carries a 4-byte class header (+4*beta*g). The printed deltas\n"
      "decompose exactly into these three terms; the scaling in g, |o|, |sc|\n"
      "and |r| matches the table's shape throughout.\n");
  return 0;
}
