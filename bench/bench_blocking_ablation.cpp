// Ablation — Section 4.3's blocking-read design space.
//
// The paper discusses three ways to implement blocking read: busy-waiting
// ("may be inefficient when only a small number of the requests are expected
// to be satisfied"), read markers, and the hybrid in which markers expire.
// This bench quantifies the trade: N waiters block on keys that are
// satisfied only after a long delay D. Polling pays message cost every
// interval for the whole wait; markers pay one placement per TTL window and
// one notification. We sweep the wait time and the poll interval / marker
// TTL, reporting total message cost and mean wake-up latency (time from
// satisfying insert to waiter completion).
#include "analysis/latency.hpp"
#include "bench/bench_util.hpp"

using namespace paso;
using namespace paso::bench;

namespace {

struct Outcome {
  Cost msg_cost = 0;
  double wakeup_latency = 0;
};

Outcome run(BlockingMode mode, sim::SimTime wait, sim::SimTime interval,
            sim::SimTime marker_ttl) {
  ClusterConfig config;
  config.machines = 6;
  config.lambda = 1;
  config.runtime.poll_interval = interval;
  config.runtime.marker_ttl = marker_ttl;
  Cluster cluster(TaskCluster::schema(), config);
  cluster.assign_basic_support();

  constexpr int kWaiters = 4;
  int done = 0;
  sim::SimTime wake_sum = 0;
  sim::SimTime insert_time = 0;
  cluster.ledger().reset();
  for (int w = 0; w < kWaiters; ++w) {
    const ProcessId p =
        cluster.process(MachineId{static_cast<std::uint32_t>(2 + w % 4)}, 7);
    cluster.runtime(p.machine)
        .read_blocking(p, TaskCluster::by_key(100 + w),
                       [&cluster, &done, &wake_sum,
                        &insert_time](SearchResponse r) {
                         PASO_REQUIRE(r.has_value(), "waiter failed");
                         wake_sum += cluster.simulator().now() - insert_time;
                         ++done;
                       },
                       mode);
  }
  cluster.settle_for(wait);
  insert_time = cluster.simulator().now();
  const ProcessId writer = cluster.process(MachineId{0});
  for (int w = 0; w < kWaiters; ++w) {
    cluster.runtime(writer.machine)
        .insert(writer, TaskCluster::tuple(100 + w), {});
  }
  cluster.simulator().run_while_pending(
      [&done] { return done == kWaiters; });
  return Outcome{cluster.ledger().total_msg_cost(),
                 wake_sum / kWaiters};
}

}  // namespace

int main() {
  print_header("Ablation / Section 4.3: busy-wait vs read markers "
               "(4 waiters, satisfied after `wait`)");
  std::printf("%9s %9s | %13s %10s | %13s %10s | %13s %10s\n", "wait",
              "interval", "poll: msg", "latency", "ttl=intvl: msg", "latency",
              "ttl=20x: msg", "latency");
  print_rule();
  for (const sim::SimTime wait : {1000.0, 10000.0, 100000.0}) {
    for (const sim::SimTime interval : {100.0, 500.0, 2000.0}) {
      const Outcome poll = run(BlockingMode::kPoll, wait, interval, interval);
      const Outcome hybrid =
          run(BlockingMode::kMarker, wait, interval, interval);
      const Outcome marker =
          run(BlockingMode::kMarker, wait, interval, interval * 20);
      std::printf(
          "%9.0f %9.0f | %13.0f %10.1f | %13.0f %10.1f | %13.0f %10.1f\n",
          wait, interval, poll.msg_cost, poll.wakeup_latency,
          hybrid.msg_cost, hybrid.wakeup_latency, marker.msg_cost,
          marker.wakeup_latency);
      const std::string base = "wait=" + std::to_string(wait) +
                               "/interval=" + std::to_string(interval);
      result_line("blocking_ablation", base + "/poll", 4, 0, poll.msg_cost,
                  0);
      result_line("blocking_ablation", base + "/marker", 4, 0,
                  marker.msg_cost, 0);
    }
  }
  std::printf(
      "\nThree regimes of Section 4.3's design space:\n"
      "  * busy-wait: msg cost linear in wait/interval (one probe gcast per\n"
      "    interval per waiter), wake-up latency up to one interval;\n"
      "  * hybrid with aggressive expiry (ttl = interval): re-placing the\n"
      "    markers costs *more* than polling — each placement is a full\n"
      "    write-group gcast — so short TTLs degenerate to expensive polls;\n"
      "  * long-lived markers (ttl = 20x): near-flat cost in the wait and\n"
      "    immediate wake-up — the case for markers the paper sketches.\n"
      "The right hybrid expires markers on the reconfiguration timescale,\n"
      "not the polling one.\n");
  return 0;
}
