// Ablation — failure-detection delay sensitivity.
//
// The ISIS substrate detects crashes after a delay; until then, gcasts that
// targeted the dead machine stall waiting for its ack. This bench measures
// the end-to-end latency of operations issued right after an (undetected)
// crash of a write-group member, as a function of the detection delay — the
// availability price of the virtual-synchrony substrate the paper builds on.
#include "bench/bench_util.hpp"

using namespace paso;
using namespace paso::bench;

namespace {

struct Outcome {
  sim::SimTime read_latency = 0;
  sim::SimTime insert_latency = 0;
  sim::SimTime steady_read_latency = 0;
};

Outcome run(sim::SimTime detection_delay) {
  ClusterConfig config;
  config.machines = 6;
  config.lambda = 2;
  config.vsync.failure_detection_delay = detection_delay;
  Cluster cluster(TaskCluster::schema(), config);
  cluster.assign_basic_support();
  const auto support = cluster.basic_support(ClassId{0});
  const ProcessId writer = cluster.process(MachineId{5});
  cluster.insert_sync(writer, TaskCluster::tuple(1));

  Outcome outcome;
  // Steady-state read latency for reference.
  sim::SimTime start = cluster.simulator().now();
  cluster.read_sync(writer, TaskCluster::by_key(1));
  outcome.steady_read_latency = cluster.simulator().now() - start;

  // Crash a read-group member; issue a read immediately (before detection).
  cluster.crash(support[1]);
  start = cluster.simulator().now();
  const auto found = cluster.read_sync(writer, TaskCluster::by_key(1));
  PASO_REQUIRE(found.has_value(), "read lost after crash");
  outcome.read_latency = cluster.simulator().now() - start;

  // And an insert (full write group, also stalled on the dead member).
  start = cluster.simulator().now();
  cluster.insert_sync(writer, TaskCluster::tuple(2));
  outcome.insert_latency = cluster.simulator().now() - start;
  return outcome;
}

}  // namespace

int main() {
  print_header("Ablation: failure-detection delay vs operation stall "
               "(crash of a read-group member)");
  std::printf("%12s | %12s %14s %14s\n", "detect delay", "steady read",
              "read at crash", "insert at crash");
  print_rule();
  for (const sim::SimTime delay : {10.0, 50.0, 200.0, 1000.0, 5000.0}) {
    Outcome o;
    // Real wall time of the whole scenario (2 metered ops); informational
    // only — the gated axes are the virtual-time latencies below.
    const double ns_per_op = time_ns_per_op(2, [&] { o = run(delay); });
    std::printf("%12.0f | %12.1f %14.1f %14.1f\n", delay,
                o.steady_read_latency, o.read_latency, o.insert_latency);
    JsonLine("detection_ablation")
        .field("config", "delay=" + std::to_string(delay))
        .field("ops", std::uint64_t{2})
        .field("ns_per_op", ns_per_op)
        .field("msg_cost", 0.0)
        .field("bytes", std::uint64_t{0})
        .field("read_latency", o.read_latency)
        .field("insert_latency", o.insert_latency)
        .emit();
  }
  std::printf(
      "\nOperations that hit the dead member stall for ~the detection delay\n"
      "before the membership service re-gathers the acks: availability\n"
      "during the detection window is the cost of virtually synchronous\n"
      "delivery. Operations afterwards run at steady-state latency.\n");
  return 0;
}
