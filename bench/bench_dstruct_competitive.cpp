// E4 — Section 5.1 extension: data structures with query cost q.
//
// "In typical data structures (e.g., trees and linked lists), I(.) and D(.)
// are of the same order, while Q(.) is more expensive. Normalize insertion
// and deletion to 1 time unit, and let the query cost q time units. ...
// the competitive ratio is 3 + 2*lambda/K."
//
// Sweeps q over {1, 2, 4, 8} (q = 1 reproduces Theorem 2) with the counter
// increments scaled by q as the paper prescribes, and prints measured ratio
// vs the extension bound.
#include <cmath>

#include "analysis/allocation_game.hpp"
#include "analysis/workloads.hpp"
#include "bench/bench_util.hpp"
#include "common/rng.hpp"

using namespace paso;
using namespace paso::bench;
using namespace paso::analysis;

namespace {

double worst_ratio(std::size_t lambda, Cost k, Cost q, Rng& rng) {
  const GameCosts costs{q, lambda + 1};
  const adaptive::CounterConfig config{k, q, false, false};
  double worst = 0;
  for (const double p : {0.2, 0.5, 0.8}) {
    const auto seq = random_sequence(20000, p, k, rng);
    worst = std::max(worst, compare_basic(seq, costs, config).ratio);
  }
  // Adversary tuned to the q-scaled increments: reads until join, then
  // updates until leave.
  RequestSequence adversarial;
  const std::size_t reads_to_join = static_cast<std::size_t>(
      std::ceil(k / (q * static_cast<Cost>(lambda + 1))));
  const auto updates_to_leave = static_cast<std::size_t>(std::ceil(k));
  for (int cycle = 0; cycle < 300; ++cycle) {
    for (std::size_t i = 0; i < reads_to_join; ++i) {
      adversarial.push_back(Request{ReqKind::kRead, k});
    }
    for (std::size_t i = 0; i < updates_to_leave; ++i) {
      adversarial.push_back(Request{ReqKind::kUpdate, k});
    }
  }
  worst = std::max(worst, compare_basic(adversarial, costs, config).ratio);
  return worst;
}

}  // namespace

int main() {
  print_header(
      "E4 / Section 5.1 extension: query cost q, bound 3 + 2*lambda/K");
  std::printf("%7s %4s %4s | %10s | %10s %10s\n", "lambda", "K", "q", "worst",
              "ext bound", "thm2 bound");
  print_rule();

  Rng rng(424242);
  bool all_within = true;
  double overall_worst = 0;
  for (const std::size_t lambda : {1u, 2u, 3u}) {
    for (const Cost k : {4.0, 8.0, 16.0, 32.0}) {
      for (const Cost q : {1.0, 2.0, 4.0, 8.0}) {
        const double worst = worst_ratio(lambda, k, q, rng);
        overall_worst = std::max(overall_worst, worst);
        const double ext = extension_bound(lambda, k);
        const bool ok = worst <= ext + 1e-9;
        all_within = all_within && ok;
        std::printf("%7zu %4.0f %4.0f | %10.3f | %10.3f %10.3f%s\n", lambda,
                    k, q, worst, ext, theorem2_bound(lambda, k),
                    ok ? "" : "  !!");
      }
    }
  }

  print_header("Store-backed q: what the real structures cost "
               "(Section 5's three families)");
  std::printf("  hash table:   I=1 D=1 Q=1      -> Theorem 2 regime\n");
  std::printf("  search tree:  I=1 D=1 Q=log l  -> this extension, q=log l\n");
  std::printf("  linear list:  I=1 D=l Q=l      -> scan regime (q=l)\n");

  JsonLine("dstruct_competitive")
      .field("config", std::string{"extension_sweep"})
      .field("ops", std::uint64_t{48})
      .field("ns_per_op", 0.0)
      .field("msg_cost", 0.0)
      .field("bytes", std::uint64_t{0})
      .field("worst_ratio", overall_worst)
      .emit();
  std::printf("\n%s\n",
              all_within
                  ? "All measured ratios within the 3 + 2*lambda/K bound."
                  : "!! Some ratio exceeded the extension bound.");
  return all_within ? 0 : 1;
}
