// E5 — Theorem 3: the doubling/halving algorithm is (6 + 2*lambda/K)-
// competitive when the number of live objects l (and hence the join cost K)
// changes over time.
//
// Drives the growth workload (l swings up and down by large factors across
// phases) through the doubling automaton and through the fixed-K Basic
// automaton, comparing both to the exact offline optimum that pays the true
// time-varying join cost. The doubling variant must stay within Theorem 3's
// bound; the fixed-K variant shows why tracking K matters when l drifts far
// from the initial calibration.
#include "analysis/allocation_game.hpp"
#include "analysis/workloads.hpp"
#include "bench/bench_util.hpp"
#include "common/rng.hpp"

using namespace paso;
using namespace paso::bench;
using namespace paso::analysis;

int main() {
  print_header("E5 / Theorem 3: doubling/halving under varying l, bound "
               "6 + 2*lambda/K (K = 1 conservatively)");
  std::printf("%7s %7s %8s | %10s %10s | %10s\n", "lambda", "phases",
              "swing", "doubling", "fixed-K", "bound");
  print_rule();

  Rng rng(31415);
  bool all_within = true;
  double overall_worst = 0;
  for (const std::size_t lambda : {1u, 2u, 3u}) {
    for (const std::size_t phase_length : {256u, 1024u, 4096u}) {
      for (const double insert_fraction : {0.75, 0.95}) {
        GrowthOptions options;
        options.phases = 8;
        options.phase_length = phase_length;
        options.growth_insert_fraction = insert_fraction;
        options.initial_objects = 16;
        const auto seq = growth_sequence(options, rng);
        const GameCosts costs{1, lambda + 1};

        const auto doubling = compare_doubling(
            seq, costs, adaptive::DoublingAutomaton::Config{16, 1, false,
                                                            false});
        const auto fixed = compare_basic(
            seq, costs, adaptive::CounterConfig{16, 1, false, false});
        const double bound = theorem3_bound(lambda, 1);
        const bool ok = doubling.ratio <= bound + 1e-9;
        all_within = all_within && ok;
        overall_worst = std::max(overall_worst, doubling.ratio);
        std::printf("%7zu %7zu %8.2f | %10.3f %10.3f | %10.3f%s\n", lambda,
                    phase_length, insert_fraction, doubling.ratio,
                    fixed.ratio, bound, ok ? "" : "  !!");
      }
    }
  }

  print_header("Extreme swing: l grows 64x then collapses (fixed-K "
               "mis-calibration)");
  std::printf("%7s | %10s %10s | %10s\n", "lambda", "doubling", "fixed-K",
              "bound");
  print_rule();
  for (const std::size_t lambda : {1u, 2u}) {
    GrowthOptions options;
    options.phases = 4;
    options.phase_length = 8192;
    options.growth_insert_fraction = 0.98;
    options.initial_objects = 4;
    const auto seq = growth_sequence(options, rng);
    const GameCosts costs{1, lambda + 1};
    const auto doubling = compare_doubling(
        seq, costs, adaptive::DoublingAutomaton::Config{4, 1, false, false});
    const auto fixed = compare_basic(
        seq, costs, adaptive::CounterConfig{4, 1, false, false});
    const double bound = theorem3_bound(lambda, 1);
    const bool ok = doubling.ratio <= bound + 1e-9;
    all_within = all_within && ok;
    std::printf("%7zu | %10.3f %10.3f | %10.3f%s\n", lambda, doubling.ratio,
                fixed.ratio, bound, ok ? "" : "  !!");
  }

  JsonLine("doubling_halving")
      .field("config", std::string{"theorem3_sweep"})
      .field("ops", std::uint64_t{18})
      .field("ns_per_op", 0.0)
      .field("msg_cost", 0.0)
      .field("bytes", std::uint64_t{0})
      .field("worst_ratio", overall_worst)
      .emit();
  std::printf("\n%s\n",
              all_within
                  ? "Doubling/halving stays within the Theorem 3 bound on "
                    "every sequence."
                  : "!! Doubling/halving exceeded the Theorem 3 bound.");
  return all_within ? 0 : 1;
}
