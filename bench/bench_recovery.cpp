// E8 — Sections 3.1 and 4.2: crash recovery and the initialization phase.
//
// "The time the initialization phase lasts depends on the set O of objects
// ... time(g-join(C)) should almost always be O(l) since all that is
// required is to copy the memory containing the data structure as is."
//
// Crashes a basic-support machine at varying class sizes l, recovers it, and
// measures the state-transfer bytes, the message cost, the single-server
// work (the paper's `time`), and the virtual-time duration of the
// initialization. All four must scale linearly in l. Also verifies that the
// group's queue blocks during the transfer (no communication processed by
// the group until the joiner is consistent).
#include "bench/bench_util.hpp"

using namespace paso;
using namespace paso::bench;

int main() {
  print_header("E8 / g-join state transfer: initialization is Theta(l)");
  std::printf("%6s | %12s %12s %10s %12s | %12s\n", "l", "xfer bytes",
              "msg cost", "time", "duration", "bytes/l");
  print_rule();

  double prev_bytes_per_l = 0;
  const std::size_t largest = 5000u;
  for (const std::size_t live : {10u, 100u, 1000u, 5000u}) {
    ClusterConfig config;
    config.machines = 5;
    config.lambda = 1;
    // Meter the largest transfer with full observability: the sidecar's
    // vsync.state_transfer_* metrics give the recovery's byte/duration story
    // and trace_report reconciles its message cost against the ledger.
    config.observe = live == largest;
    Cluster cluster(TaskCluster::schema(), config);
    cluster.assign_basic_support();
    const auto support = cluster.basic_support(ClassId{0});
    const ProcessId writer = cluster.process(support[1]);
    for (std::size_t i = 0; i < live; ++i) {
      cluster.insert_sync(writer,
                          TaskCluster::tuple(static_cast<std::int64_t>(i)));
    }

    cluster.crash(support[0]);
    cluster.settle();
    cluster.ledger().reset();
    if (cluster.observing()) cluster.tracer().clear();
    const auto before = cluster.ledger().snapshot();
    const sim::SimTime start = cluster.simulator().now();
    cluster.recover(support[0]);
    cluster.settle();
    const sim::SimTime duration = cluster.simulator().now() - start;
    const CostTriple cost = cluster.ledger().since(before);
    const auto& tags = cluster.ledger().per_tag();
    const auto xfer = tags.contains("state-xfer") ? tags.at("state-xfer")
                                                  : net::TrafficStats{};
    const double bytes_per_l =
        static_cast<double>(xfer.bytes) / static_cast<double>(live);
    std::printf("%6zu | %12llu %12.0f %10.0f %12.0f | %12.2f\n", live,
                static_cast<unsigned long long>(xfer.bytes), cost.msg_cost,
                cost.time, duration, bytes_per_l);
    result_line("recovery", "transfer/l=" + std::to_string(live), 1, 0,
                cost.msg_cost, xfer.bytes);
    if (prev_bytes_per_l > 0 &&
        (bytes_per_l > prev_bytes_per_l * 1.5 ||
         bytes_per_l < prev_bytes_per_l / 1.5)) {
      std::printf("  !! transfer bytes not linear in l\n");
      return 1;
    }
    prev_bytes_per_l = bytes_per_l;

    // The recovered replica must be complete.
    if (cluster.server(support[0]).live_count(ClassId{0}) != live) {
      std::printf("  !! recovered replica incomplete\n");
      return 1;
    }
    if (cluster.observing()) {
      write_obs_sidecar(cluster, "bench_recovery.obs.jsonl");
      std::printf("observability sidecar: bench_recovery.obs.jsonl\n");
    }
  }

  print_header("Group blocks during transfer (Section 4.2)");
  {
    ClusterConfig config;
    config.machines = 5;
    config.lambda = 1;
    Cluster cluster(TaskCluster::schema(), config);
    cluster.assign_basic_support();
    const auto support = cluster.basic_support(ClassId{0});
    const ProcessId writer = cluster.process(support[1]);
    for (int i = 0; i < 2000; ++i) {
      cluster.insert_sync(writer, TaskCluster::tuple(i));
    }
    cluster.crash(support[0]);
    cluster.settle();
    // Start recovery and immediately issue a read through the group: the
    // read must not complete before the transfer does.
    cluster.recover(support[0]);
    const sim::SimTime issue = cluster.simulator().now();
    const auto found = cluster.read_sync(cluster.process(MachineId{4}),
                                         TaskCluster::by_key(0));
    const sim::SimTime latency = cluster.simulator().now() - issue;
    std::printf("read issued during transfer: found=%s, latency=%.0f "
                "(>> a few hundred cost units: it waited for the join)\n",
                found ? "yes" : "no", latency);
  }

  std::printf(
      "\nTransfer bytes, message cost, per-server work and wall duration all\n"
      "scale linearly in l — the paper's O(l) initialization phase, and the\n"
      "physical origin of the join cost K in Section 5.\n");
  return 0;
}
