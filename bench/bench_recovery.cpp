// E8 — Sections 3.1 and 4.2: crash recovery and the initialization phase.
//
// "The time the initialization phase lasts depends on the set O of objects
// ... time(g-join(C)) should almost always be O(l) since all that is
// required is to copy the memory containing the data structure as is."
//
// Crashes a basic-support machine at varying class sizes l, recovers it, and
// measures the state-transfer bytes, the message cost, the single-server
// work (the paper's `time`), and the virtual-time duration of the
// initialization. All four must scale linearly in l. Also verifies that the
// group's queue blocks during the transfer (no communication processed by
// the group until the joiner is consistent).
#include "bench/bench_util.hpp"
#include "persist/wal.hpp"

using namespace paso;
using namespace paso::bench;

namespace {

/// One crash/recover cycle: `live` objects before the crash, `staleness`
/// further inserts while the machine is down (exactly the suffix its durable
/// copy is missing), then recovery with the ledger metering only the
/// recovery phase.
struct RecoveryRow {
  double msg_cost = 0;
  std::uint64_t full_bytes = 0;   ///< "state-xfer" traffic (full blob)
  std::uint64_t delta_bytes = 0;  ///< "state-xfer-delta" traffic (log suffix)
  sim::SimTime duration = 0;
  bool complete = false;          ///< recovered replica holds live+staleness
};

RecoveryRow measure_recovery(std::size_t live, std::size_t staleness,
                             bool persist,
                             std::size_t checkpoint_every_bytes) {
  ClusterConfig config;
  config.machines = 5;
  config.lambda = 1;
  config.persistence.enabled = persist;
  config.persistence.checkpoint_every_bytes = checkpoint_every_bytes;
  Cluster cluster(TaskCluster::schema(), config);
  cluster.assign_basic_support();
  const auto support = cluster.basic_support(ClassId{0});
  const ProcessId writer = cluster.process(support[1]);
  for (std::size_t i = 0; i < live; ++i) {
    cluster.insert_sync(writer,
                        TaskCluster::tuple(static_cast<std::int64_t>(i)));
  }
  cluster.crash(support[0]);
  cluster.settle();
  for (std::size_t i = 0; i < staleness; ++i) {
    cluster.insert_sync(
        writer, TaskCluster::tuple(static_cast<std::int64_t>(live + i)));
  }
  cluster.ledger().reset();
  const auto before = cluster.ledger().snapshot();
  const sim::SimTime start = cluster.simulator().now();
  cluster.recover(support[0]);
  cluster.settle();
  RecoveryRow row;
  row.duration = cluster.simulator().now() - start;
  row.msg_cost = cluster.ledger().since(before).msg_cost;
  const auto& tags = cluster.ledger().per_tag();
  if (tags.contains("state-xfer")) {
    row.full_bytes = tags.at("state-xfer").bytes;
  }
  if (tags.contains("state-xfer-delta")) {
    row.delta_bytes = tags.at("state-xfer-delta").bytes;
  }
  row.complete =
      cluster.server(support[0]).live_count(ClassId{0}) == live + staleness;
  return row;
}

}  // namespace

int main() {
  print_header("E8 / g-join state transfer: initialization is Theta(l)");
  std::printf("%6s | %12s %12s %10s %12s | %12s\n", "l", "xfer bytes",
              "msg cost", "time", "duration", "bytes/l");
  print_rule();

  double prev_bytes_per_l = 0;
  const std::size_t largest = 5000u;
  for (const std::size_t live : {10u, 100u, 1000u, 5000u}) {
    ClusterConfig config;
    config.machines = 5;
    config.lambda = 1;
    // Meter the largest transfer with full observability: the sidecar's
    // vsync.state_transfer_* metrics give the recovery's byte/duration story
    // and trace_report reconciles its message cost against the ledger.
    config.observe = live == largest;
    Cluster cluster(TaskCluster::schema(), config);
    cluster.assign_basic_support();
    const auto support = cluster.basic_support(ClassId{0});
    const ProcessId writer = cluster.process(support[1]);
    for (std::size_t i = 0; i < live; ++i) {
      cluster.insert_sync(writer,
                          TaskCluster::tuple(static_cast<std::int64_t>(i)));
    }

    cluster.crash(support[0]);
    cluster.settle();
    cluster.ledger().reset();
    if (cluster.observing()) cluster.tracer().clear();
    const auto before = cluster.ledger().snapshot();
    const sim::SimTime start = cluster.simulator().now();
    cluster.recover(support[0]);
    cluster.settle();
    const sim::SimTime duration = cluster.simulator().now() - start;
    const CostTriple cost = cluster.ledger().since(before);
    const auto& tags = cluster.ledger().per_tag();
    const auto xfer = tags.contains("state-xfer") ? tags.at("state-xfer")
                                                  : net::TrafficStats{};
    const double bytes_per_l =
        static_cast<double>(xfer.bytes) / static_cast<double>(live);
    std::printf("%6zu | %12llu %12.0f %10.0f %12.0f | %12.2f\n", live,
                static_cast<unsigned long long>(xfer.bytes), cost.msg_cost,
                cost.time, duration, bytes_per_l);
    result_line("recovery", "transfer/l=" + std::to_string(live), 1, 0,
                cost.msg_cost, xfer.bytes);
    if (prev_bytes_per_l > 0 &&
        (bytes_per_l > prev_bytes_per_l * 1.5 ||
         bytes_per_l < prev_bytes_per_l / 1.5)) {
      std::printf("  !! transfer bytes not linear in l\n");
      return 1;
    }
    prev_bytes_per_l = bytes_per_l;

    // The recovered replica must be complete.
    if (cluster.server(support[0]).live_count(ClassId{0}) != live) {
      std::printf("  !! recovered replica incomplete\n");
      return 1;
    }
    if (cluster.observing()) {
      write_obs_sidecar(cluster, "bench_recovery.obs.jsonl");
      std::printf("observability sidecar: bench_recovery.obs.jsonl\n");
    }
  }

  print_header("Group blocks during transfer (Section 4.2)");
  {
    ClusterConfig config;
    config.machines = 5;
    config.lambda = 1;
    Cluster cluster(TaskCluster::schema(), config);
    cluster.assign_basic_support();
    const auto support = cluster.basic_support(ClassId{0});
    const ProcessId writer = cluster.process(support[1]);
    for (int i = 0; i < 2000; ++i) {
      cluster.insert_sync(writer, TaskCluster::tuple(i));
    }
    cluster.crash(support[0]);
    cluster.settle();
    // Start recovery and immediately issue a read through the group: the
    // read must not complete before the transfer does.
    cluster.recover(support[0]);
    const sim::SimTime issue = cluster.simulator().now();
    const auto found = cluster.read_sync(cluster.process(MachineId{4}),
                                         TaskCluster::by_key(0));
    const sim::SimTime latency = cluster.simulator().now() - issue;
    std::printf("read issued during transfer: found=%s, latency=%.0f "
                "(>> a few hundred cost units: it waited for the join)\n",
                found ? "yes" : "no", latency);
  }

  print_header("Durable recovery: full transfer vs local replay + delta");
  std::printf(
      "With per-machine WAL + checkpoints (src/persist) a recovering machine\n"
      "replays its own disk and only fetches the ops it missed while down:\n"
      "transfer shrinks from O(l) to O(delta).\n\n");
  // Analytic per-record transfer size: a delta blob carries each missed op
  // exactly as framed on disk.
  PasoObject sample;
  sample.fields = TaskCluster::tuple(0);
  const std::size_t record_bytes =
      persist::kWalFrameBytes + StoreMsg{ClassId{0}, sample}.wire_size();
  std::printf("%6s %6s | %6s | %12s %12s %12s | %12s %10s\n", "l", "delta",
              "mode", "xfer bytes", "predicted", "msg cost", "duration",
              "speedup");
  print_rule();

  // Large checkpoint threshold: the donor must not compact past the
  // joiner's position mid-experiment (staleness stays within the log).
  const std::size_t kBigCheckpoint = 4u << 20;
  double full_cost_10k = 0;
  double delta_cost_10k_fresh = 0;
  for (const std::size_t live : {1000u, 10000u}) {
    const RecoveryRow full =
        measure_recovery(live, 16, /*persist=*/false, kBigCheckpoint);
    PASO_REQUIRE(full.complete, "full recovery left the replica incomplete");
    std::printf("%6zu %6u | %6s | %12llu %12s %12.0f | %12.0f %10s\n", live,
                16u, "full", static_cast<unsigned long long>(full.full_bytes),
                "-", full.msg_cost, full.duration, "1.0x");
    result_line("recovery", "full/l=" + std::to_string(live), 1, 0,
                full.msg_cost, full.full_bytes);
    if (live == 10000u) full_cost_10k = full.msg_cost;

    for (const std::size_t staleness : {16u, 64u, 256u, 1024u}) {
      const RecoveryRow delta =
          measure_recovery(live, staleness, /*persist=*/true, kBigCheckpoint);
      PASO_REQUIRE(delta.complete,
                   "delta recovery left the replica incomplete");
      PASO_REQUIRE(delta.delta_bytes > 0 && delta.full_bytes == 0,
                   "delta recovery fell back to a full transfer");
      // O(delta) prediction: blob header + each missed record as framed.
      const std::size_t predicted = 24 + staleness * record_bytes;
      const double speedup =
          full.msg_cost / std::max(delta.msg_cost, 1.0);
      std::printf("%6zu %6zu | %6s | %12llu %12zu %12.0f | %12.0f %9.1fx\n",
                  live, staleness, "delta",
                  static_cast<unsigned long long>(delta.delta_bytes),
                  predicted, delta.msg_cost, delta.duration, speedup);
      result_line("recovery",
                  "delta/l=" + std::to_string(live) +
                      "/d=" + std::to_string(staleness),
                  1, 0, delta.msg_cost, delta.delta_bytes);
      if (live == 10000u && staleness == 16u) {
        delta_cost_10k_fresh = delta.msg_cost;
      }
    }
  }
  PASO_REQUIRE(
      full_cost_10k >= 5 * delta_cost_10k_fresh,
      "delta+replay must beat full transfer by >=5x at l=10k, near-fresh");
  std::printf(
      "\nl=10k near-fresh: full=%.0f vs delta=%.0f msg-cost (%.1fx)\n",
      full_cost_10k, delta_cost_10k_fresh,
      full_cost_10k / std::max(delta_cost_10k_fresh, 1.0));

  print_header("Compaction horizon: a too-stale joiner falls back to full");
  {
    // Tiny checkpoint threshold: the survivor checkpoints (and compacts its
    // log) many times while the machine is down, moving the delta horizon
    // past the joiner's durable position — the donor must refuse the delta
    // and ship the full blob instead.
    const RecoveryRow stale =
        measure_recovery(1000, 1024, /*persist=*/true, /*ckpt=*/8 * 1024);
    PASO_REQUIRE(stale.complete, "fallback recovery incomplete");
    PASO_REQUIRE(stale.full_bytes > 0 && stale.delta_bytes == 0,
                 "stale joiner should have fallen back to a full transfer");
    std::printf("l=1000, delta=1024, checkpoint_every=8KiB: full fallback, "
                "%llu bytes, msg cost %.0f\n",
                static_cast<unsigned long long>(stale.full_bytes),
                stale.msg_cost);
    result_line("recovery", "stale-fallback/l=1000", 1, 0, stale.msg_cost,
                stale.full_bytes);
  }

  std::printf(
      "\nTransfer bytes, message cost, per-server work and wall duration all\n"
      "scale linearly in l — the paper's O(l) initialization phase, and the\n"
      "physical origin of the join cost K in Section 5. With durable\n"
      "persistence the transfer term drops to O(delta): the log suffix the\n"
      "machine missed while down, bounded by the donor's compaction horizon.\n");
  return 0;
}
