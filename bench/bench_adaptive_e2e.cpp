// E9 — Section 5's objective, end to end: total work (and message cost) of
// the whole system under locality phase changes, comparing
//   * static-minimal   — only the lambda+1 basic-support replicas,
//   * static-eager     — every machine replicates every class,
//   * adaptive (Basic) — the Section 5.1 counter algorithm,
// across workload mixes. The shape to reproduce: adaptive ~tracks the better
// static policy in every regime, eager wins only under pure reads, minimal
// wins only under pure updates, and adaptive is the best or near-best
// overall — the case for adaptive replication the paper builds.
#include "adaptive/basic_policy.hpp"
#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "semantics/checker.hpp"

using namespace paso;
using namespace paso::bench;

namespace {

enum class Policy { kMinimal, kEager, kAdaptive };

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kMinimal:
      return "minimal";
    case Policy::kEager:
      return "eager";
    case Policy::kAdaptive:
      return "adaptive";
  }
  return "?";
}

struct Totals {
  Cost msg = 0;
  Cost work = 0;
  Cost combined() const { return msg + work; }
};

/// Phased workload: in each phase one "hot" machine reads intensely while a
/// writer churns with read&del/insert pairs at the given update share. The
/// hot machine rotates between phases (locality shifts). A non-empty
/// `sidecar` turns observability on and writes the metric/span/msg JSONL
/// there afterwards (tools/trace_report consumes it).
Totals run_workload(Policy policy, double update_share, std::uint64_t seed,
                    const std::string& sidecar = {}) {
  ClusterConfig config;
  config.machines = 8;
  config.lambda = 1;
  config.record_history = false;  // long run: skip history accounting
  config.observe = !sidecar.empty();
  Cluster cluster(TaskCluster::schema(), config);
  cluster.assign_basic_support();
  if (policy == Policy::kAdaptive) {
    adaptive::install_basic_policies(cluster,
                                     adaptive::BasicPolicyOptions{8, 1, false});
  } else if (policy == Policy::kEager) {
    for (std::uint32_t m = 0; m < cluster.machine_count(); ++m) {
      cluster.runtime(MachineId{m}).request_join(ClassId{0});
    }
    cluster.settle();
  }

  Rng rng(seed);
  const ProcessId writer = cluster.process(MachineId{0});
  std::int64_t next_key = 1000;
  std::int64_t oldest_key = 1000;
  for (int i = 0; i < 8; ++i) {
    cluster.insert_sync(writer, TaskCluster::tuple(next_key++));
  }
  cluster.insert_sync(writer, TaskCluster::tuple(7));
  cluster.ledger().reset();
  // The sidecar's reconciliation needs the tracer and the ledger to cover
  // the same interval: drop the warm-up traffic from both.
  if (cluster.observing()) cluster.tracer().clear();

  for (int phase = 0; phase < 6; ++phase) {
    const MachineId hot{static_cast<std::uint32_t>(2 + phase % 5)};
    const ProcessId reader = cluster.process(hot);
    for (int op = 0; op < 150; ++op) {
      if (rng.uniform01() < update_share) {
        cluster.read_del_sync(writer, TaskCluster::by_key(oldest_key++));
        cluster.insert_sync(writer, TaskCluster::tuple(next_key++));
      } else {
        cluster.read_sync(reader, TaskCluster::by_key(7));
      }
    }
    cluster.settle();
  }
  if (cluster.observing()) write_obs_sidecar(cluster, sidecar);
  return Totals{cluster.ledger().total_msg_cost(),
                cluster.ledger().total_work()};
}

}  // namespace

int main() {
  print_header("E9 / Section 5 objective: total work + msg cost, adaptive "
               "vs static (n=8, lambda=1, K=8)");
  std::printf("%12s | %12s %12s %12s | %s\n", "update share", "minimal",
              "eager", "adaptive", "winner");
  print_rule();

  for (const double update_share : {0.0, 0.05, 0.2, 0.5, 0.8, 1.0}) {
    Totals totals[3];
    double ns_per_op[3];
    // 900 client ops per workload (6 phases x 150); the wall-clock column is
    // informational — the gated quantity stays the model msg cost.
    ns_per_op[0] = time_ns_per_op(
        900, [&] { totals[0] = run_workload(Policy::kMinimal, update_share, 1); });
    ns_per_op[1] = time_ns_per_op(
        900, [&] { totals[1] = run_workload(Policy::kEager, update_share, 1); });
    ns_per_op[2] = time_ns_per_op(900, [&] {
      totals[2] = run_workload(Policy::kAdaptive, update_share, 1);
    });
    int winner = 0;
    for (int i = 1; i < 3; ++i) {
      if (totals[i].combined() < totals[winner].combined()) winner = i;
    }
    std::printf("%12.2f | %12.0f %12.0f %12.0f | %s\n", update_share,
                totals[0].combined(), totals[1].combined(),
                totals[2].combined(),
                policy_name(static_cast<Policy>(winner)));
    for (int i = 0; i < 3; ++i) {
      char share[16];
      std::snprintf(share, sizeof share, "%.2f", update_share);
      result_line("adaptive_e2e",
                  std::string(policy_name(static_cast<Policy>(i))) +
                      "/update_share=" + share,
                  900, ns_per_op[i], totals[i].msg, 0);
    }
  }

  // One instrumented re-run of a mixed regime: full per-op tracing + metrics
  // into a sidecar that tools/trace_report decomposes and reconciles against
  // the CostLedger.
  run_workload(Policy::kAdaptive, 0.2, 1, "bench_adaptive_e2e.obs.jsonl");
  std::printf("\nobservability sidecar: bench_adaptive_e2e.obs.jsonl "
              "(feed to tools/trace_report)\n");

  std::printf(
      "\nThe crossover: eager wins only at update share ~0 (pure reads),\n"
      "minimal wins at high update share, and adaptive tracks whichever is\n"
      "better, staying within a constant factor of the best at every mix —\n"
      "the guarantee Theorem 2 formalizes per (machine, class).\n");
  return 0;
}
