// Topology — multi-segment bus, placement-aware replication.
//
// Two experiments over a segmented LAN (src/net/topology.hpp):
//
//  1. Crossing overhead: the same insert+read workload on 1, 2 and 3
//     segments with the *same* naive placement. Every added bridge hop
//     shows up directly in the model msg cost — the price a segment-blind
//     placement pays.
//
//  2. Placement: a two-segment hot spot (writer and readers all on the far
//     segment) served by (a) basic support — the lowest-id machines, which
//     all sit on segment 0 — versus (b) placement-aware support seeded with
//     the readers' weights. The aware group co-locates with the hot segment
//     (keeping one replica across the bridge for segment-level fault
//     tolerance), which must cut the model msg cost by >= 2x.
//
// Rows are committed to BENCH_baseline.json and gated by bench_diff on
// msg_cost and bytes, so a placement or topology-cost regression fails CI.
#include "bench/bench_util.hpp"

using namespace paso;
using namespace paso::bench;

namespace {

constexpr std::size_t kMachines = 6;
constexpr std::size_t kLambda = 1;
constexpr int kInserts = 40;
constexpr int kReads = 160;
// Blob-heavy tuples: the payload-bearing messages (stores, read responses)
// dominate, which is the regime where response locality pays. Small tuples
// shift the balance toward the fixed alpha terms and the win shrinks.
constexpr std::size_t kPayloadBytes = 2048;

struct Result {
  Cost msg = 0;
  std::uint64_t bytes = 0;
  std::uint64_t crossings = 0;
};

/// Hot-spot workload: machine 4 inserts, machine 5 reads. On every
/// multi-segment topology in this bench those two sit on the last segment.
Result run(const net::Topology& topology, bool aware) {
  ClusterConfig config;
  config.machines = kMachines;
  config.lambda = kLambda;
  config.topology = topology;
  Cluster cluster(TaskCluster::schema(), config);
  if (aware) {
    // The workload's read locality, as a per-class weight vector (what
    // observed_read_weights would converge to).
    std::vector<double> weights(kMachines, 0.0);
    weights[4] = 0.2;  // writer re-reads occasionally
    weights[5] = 1.0;  // the hot reader
    cluster.assign_placement_aware_support({weights});
  } else {
    cluster.assign_basic_support();
  }

  const ProcessId writer = cluster.process(MachineId{4});
  const ProcessId reader = cluster.process(MachineId{5});
  cluster.insert_sync(writer, TaskCluster::tuple(0, kPayloadBytes));
  cluster.ledger().reset();

  for (int i = 1; i <= kInserts; ++i) {
    cluster.insert_sync(writer, TaskCluster::tuple(i, kPayloadBytes));
  }
  for (int i = 0; i < kReads; ++i) {
    cluster.read_sync(reader, TaskCluster::by_key(i % (kInserts + 1)));
  }

  Result r;
  r.msg = cluster.ledger().total_msg_cost();
  for (const auto& [tag, stats] : cluster.ledger().per_tag()) {
    r.bytes += stats.bytes;
  }
  r.crossings = cluster.network().crossings();
  return r;
}

net::Topology segmented(std::size_t segments) {
  // Per-segment buses match the classic defaults; crossing a bridge costs a
  // stiff store-and-forward latency plus a full per-byte copy, as on a
  // real multi-LAN with store-and-forward bridging.
  return net::Topology::even(segments, kMachines, CostModel{},
                             /*bridge_alpha=*/60, /*bridge_beta=*/1.0);
}

}  // namespace

int main() {
  print_header("Topology: segmented bus + placement-aware replication (n=6, "
               "lambda=1)");

  std::printf("-- crossing overhead (naive basic-support placement) --\n");
  std::printf("%8s | %12s %10s %10s\n", "segs", "msg cost", "bytes",
              "crossings");
  print_rule();
  for (const std::size_t segs : {1u, 2u, 3u}) {
    const Result r =
        run(segs == 1 ? net::Topology{} : segmented(segs), false);
    std::printf("%8zu | %12.1f %10llu %10llu\n", segs, r.msg,
                static_cast<unsigned long long>(r.bytes),
                static_cast<unsigned long long>(r.crossings));
    result_line("topology", "segs=" + std::to_string(segs) + "/basic",
                kInserts + kReads, 0, r.msg, r.bytes);
  }

  std::printf("\n-- two-segment hot spot: basic vs placement-aware --\n");
  const Result basic = run(segmented(2), false);
  const Result aware = run(segmented(2), true);
  const double speedup = basic.msg / aware.msg;
  std::printf("%8s | %12s %10s %10s\n", "support", "msg cost", "bytes",
              "crossings");
  print_rule();
  std::printf("%8s | %12.1f %10llu %10llu\n", "basic", basic.msg,
              static_cast<unsigned long long>(basic.bytes),
              static_cast<unsigned long long>(basic.crossings));
  std::printf("%8s | %12.1f %10llu %10llu\n", "aware", aware.msg,
              static_cast<unsigned long long>(aware.bytes),
              static_cast<unsigned long long>(aware.crossings));
  std::printf("placement-aware msg-cost advantage: %.2fx\n", speedup);
  result_line("topology", "segs=2/placement=basic", kInserts + kReads, 0,
              basic.msg, basic.bytes);
  result_line("topology", "segs=2/placement=aware", kInserts + kReads, 0,
              aware.msg, aware.bytes);
  PASO_REQUIRE(speedup >= 2.0,
               "placement-aware support must beat basic placement 2x on the "
               "hot-spot workload");

  std::printf(
      "\nBasic support pins the write group to the lowest-id machines —\n"
      "segment 0 — so the far segment's writer and reader pay bridge\n"
      "crossings on every message, payloads included. Placement-aware\n"
      "support co-locates one replica with the hot segment (keeping the\n"
      "other across the bridge: no segment holds the whole group), and\n"
      "the nearest-responder rule serves every payload-bearing response\n"
      "bus-locally; only the fault-tolerance copy still crosses.\n");
  return 0;
}
