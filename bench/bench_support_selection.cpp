// E6 — Theorem 4 and Section 5.2: the Support Selection Problem.
//
// Part 1 (pure algorithm, via the paging reduction): for each (n, lambda)
// and trace family, state copies of LRF / FIFO / MARKING / RANDOM vs the
// exact offline optimum (Belady). The cyclic adversary realizes the
// deterministic lower bound n - lambda - 1; the randomized marking algorithm
// sits near the log(n - lambda - 1) bound on the same adversary, matching
// both halves of Theorem 4.
//
// Part 2 (end-to-end): the SupportManager recruiting replacements inside the
// live cluster, where every recruit pays a real g-join state copy of g(l)
// bytes across the bus.
#include <cmath>
#include <memory>

#include "adaptive/support_manager.hpp"
#include "adaptive/support_selection.hpp"
#include "bench/bench_util.hpp"

using namespace paso;
using namespace paso::bench;
using namespace paso::adaptive;

namespace {

std::uint64_t run_rule(const std::string& rule, std::size_t n,
                       std::size_t lambda, const FailureTrace& trace,
                       Rng& rng) {
  const std::size_t cache = n - lambda - 1;
  std::unique_ptr<SupportSelector> selector;
  if (rule == "LRF") {
    selector = std::make_unique<LrfSelector>(n, lambda);
  } else if (rule == "FIFO") {
    selector = std::make_unique<PagingBackedSelector>(
        n, lambda, std::make_unique<FifoPaging>(cache));
  } else if (rule == "MARKING") {
    selector = std::make_unique<PagingBackedSelector>(
        n, lambda, std::make_unique<MarkingPaging>(cache, rng.split()));
  } else {
    selector = std::make_unique<PagingBackedSelector>(
        n, lambda, std::make_unique<RandomPaging>(cache, rng.split()));
  }
  return run_selector(*selector, trace);
}

void run_family(const std::string& family, std::size_t n, std::size_t lambda,
                const FailureTrace& trace, Rng& rng) {
  const std::uint64_t opt =
      std::max<std::uint64_t>(optimal_copies(trace, n, lambda), 1);
  std::printf("%-10s n=%2zu lam=%zu | OPT %6llu |", family.c_str(), n, lambda,
              static_cast<unsigned long long>(opt));
  for (const std::string rule : {"LRF", "FIFO", "MARKING", "RANDOM"}) {
    const std::uint64_t copies = run_rule(rule, n, lambda, trace, rng);
    std::printf(" %s %6.2f |", rule.c_str(),
                static_cast<double>(copies) / static_cast<double>(opt));
  }
  const double det_bound = static_cast<double>(n - lambda - 1);
  std::printf(" det-LB %5.1f rand-LB %4.2f\n", det_bound,
              std::log(det_bound));
}

}  // namespace

int main() {
  print_header("E6 / Theorem 4, part 1: support selection via the paging "
               "reduction (ratios = copies/OPT)");
  Rng rng(987);
  for (const std::size_t n : {8u, 16u, 32u}) {
    for (const std::size_t lambda : {1u, 2u}) {
      const std::size_t len = 200 * n;
      run_family("cyclic", n, lambda,
                 cyclic_failure_trace(n, lambda, len), rng);
      run_family("uniform", n, lambda,
                 uniform_failure_trace(n, len, rng), rng);
      run_family("flaky", n, lambda,
                 flaky_failure_trace(n, len, 1.2, rng), rng);
      print_rule();
    }
  }
  std::printf(
      "On the cyclic adversary the deterministic rules (LRF/FIFO) ride the\n"
      "n - lambda - 1 lower bound while randomized MARKING stays near the\n"
      "logarithmic one — the two halves of Theorem 4. On uniform and flaky\n"
      "traces all rules sit far below the bound, and LRF (the paper's\n"
      "heuristic, the image of LRU) is the best or tied deterministic rule.\n");

  print_header("E6, part 2: end-to-end recruiting with real g(l) state "
               "copies");
  std::printf("%-12s %6s | %12s %14s %12s\n", "rule", "l", "recruits",
              "xfer bytes", "msg cost");
  print_rule();
  for (const auto rule : {SupportManager::Rule::kLrf,
                          SupportManager::Rule::kRoundRobin,
                          SupportManager::Rule::kRandom}) {
    for (const std::size_t live : {20u, 200u}) {
      ClusterConfig config;
      config.machines = 8;
      config.lambda = 1;
      Cluster cluster(TaskCluster::schema(), config);
      cluster.assign_basic_support();
      SupportManager manager(cluster, rule, 5);
      const ProcessId writer = cluster.process(MachineId{7});
      for (std::size_t i = 0; i < live; ++i) {
        cluster.insert_sync(writer,
                            TaskCluster::tuple(static_cast<std::int64_t>(i)));
      }
      cluster.ledger().reset();

      // Rolling failures: crash a current support member, recruit, recover.
      Rng fail_rng(99);
      for (int round = 0; round < 12; ++round) {
        const auto support = cluster.basic_support(ClassId{0});
        const MachineId victim = support[fail_rng.index(support.size())];
        cluster.crash(victim);
        cluster.settle();
        manager.on_machine_failed(victim);
        cluster.settle();
        cluster.recover(victim);
        cluster.settle();
      }
      const auto& tags = cluster.ledger().per_tag();
      const auto xfer = tags.contains("state-xfer")
                            ? tags.at("state-xfer")
                            : net::TrafficStats{};
      std::printf("%-12s %6zu | %12llu %14llu %12.0f\n",
                  SupportManager::rule_name(rule), live,
                  static_cast<unsigned long long>(manager.recruitments()),
                  static_cast<unsigned long long>(xfer.bytes),
                  cluster.ledger().total_msg_cost());
      result_line("support_selection",
                  std::string(SupportManager::rule_name(rule)) +
                      "/l=" + std::to_string(live),
                  manager.recruitments(), 0,
                  cluster.ledger().total_msg_cost(), xfer.bytes);
    }
  }
  std::printf(
      "\nTransfer bytes scale linearly with l at fixed recruit count: the\n"
      "copy cost g(l) is what support selection optimizes (Section 5.2).\n");
  return 0;
}
