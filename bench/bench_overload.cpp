// Overload — open-loop load sweep past the saturation knee.
//
// The open-loop traffic engine (src/workload/traffic.hpp) offers a seeded
// Poisson arrival stream to a two-segment cluster at rates from well below
// to well past the knee. Two configurations face the same sweep:
//
//   naive    — unbounded bridge buffers, no admission control: the legacy
//              behavior. Past the knee the backlog grows without bound, so
//              completed-op latency climbs toward the deadline and goodput
//              decays (every op pays queueing before being serviced).
//   survival — bounded bridge ingress (shed policy) + client-edge admission
//              control (reject past the concurrent-op limit). Excess load
//              is refused *early and cheaply*; what is admitted completes
//              at healthy latency, so goodput holds and p99 stays bounded.
//
// Every quantity here is virtual-time (goodput, shed_rate, p99_model) or
// model cost (msg_cost) — deterministic, so the rows are committed to
// BENCH_baseline.json at tolerance 0 in spirit: bench_diff gates shed_rate,
// p99_model and msg_cost upward and goodput downward, and `bench_diff
// --repeat` asserts two runs agree bit for bit.
#include "bench/bench_util.hpp"
#include "workload/traffic.hpp"

using namespace paso;
using namespace paso::bench;

namespace {

constexpr std::size_t kMachines = 6;
constexpr std::size_t kLambda = 1;
constexpr sim::SimTime kDuration = 50'000;
constexpr sim::SimTime kDeadline = 4'000;

struct Row {
  workload::TrafficReport traffic;
  double msg_cost = 0;
  std::uint64_t bridge_shed = 0;
};

Row run(double rate, bool survival) {
  ClusterConfig config;
  config.machines = kMachines;
  config.lambda = kLambda;
  config.topology =
      net::Topology::even(2, kMachines, CostModel{}, /*bridge_alpha=*/60,
                          /*bridge_beta=*/1.0);
  config.runtime.op_deadline = kDeadline;
  config.record_history = false;  // open-loop scale: no per-op history
  if (survival) {
    config.topology.with_bridge_limit(2, net::BridgePolicy::kShed);
    config.runtime.admission = AdmissionMode::kReject;
    config.runtime.admission_limit = 1;
  }
  Cluster cluster(TaskCluster::schema(), config);
  cluster.assign_placement_aware_support();

  workload::TrafficConfig traffic;
  traffic.seed = 99;
  traffic.arrivals.base_rate = rate;
  traffic.duration = kDuration;
  traffic.sessions = 2'000'000;
  traffic.key_space = 256;
  traffic.zipf_s = 0.99;
  traffic.make_tuple = [](std::uint64_t key, std::size_t payload_bytes) {
    return TaskCluster::tuple(static_cast<std::int64_t>(key), payload_bytes);
  };
  traffic.make_criterion = [](std::uint64_t key) {
    return TaskCluster::by_key(static_cast<std::int64_t>(key));
  };
  // Finer buckets than the engine default: the whole sweep lives below the
  // 4000-unit deadline, and the p99 gate needs resolution there, not at
  // the 100k tail.
  traffic.latency_bounds = {200,  400,  600,  800,  1000, 1200, 1400,
                            1600, 2000, 2400, 2800, 3200, 3600, 4000,
                            4800, 6400, 9600};
  workload::TrafficEngine engine(cluster, traffic);

  Row row;
  row.traffic = engine.run();
  row.msg_cost = cluster.ledger().total_msg_cost();
  row.bridge_shed = cluster.network().bridge_shed();
  return row;
}

void emit(const char* mode, double rate, const Row& r) {
  char config[64];
  std::snprintf(config, sizeof config, "rate=%g/%s", rate, mode);
  JsonLine("overload")
      .field("config", std::string(config))
      .field("ops", r.traffic.offered)
      .field("goodput", r.traffic.goodput())
      .field("shed_rate", r.traffic.shed_rate())
      .field("p99_model", r.traffic.p99())
      .field("msg_cost", r.msg_cost)
      .emit();
}

}  // namespace

int main() {
  print_header(
      "Overload: open-loop load sweep, naive vs bounded+admission (n=6, "
      "lambda=1, two segments)");
  std::printf("%10s %10s | %10s %9s %10s | %10s %9s %10s %11s\n", "rate",
              "offered", "naive gp", "shed", "p99", "surv gp", "shed", "p99",
              "bridge shed");
  print_rule();

  const std::vector<double> rates = {0.001, 0.002, 0.004, 0.008, 0.016};
  std::vector<Row> naive_rows;
  std::vector<Row> survival_rows;
  for (const double rate : rates) {
    const Row naive = run(rate, false);
    const Row survival = run(rate, true);
    std::printf("%10g %10llu | %10.6f %9.3f %10.1f | %10.6f %9.3f %10.1f "
                "%11llu\n",
                rate,
                static_cast<unsigned long long>(naive.traffic.offered),
                naive.traffic.goodput(), naive.traffic.shed_rate(),
                naive.traffic.p99(), survival.traffic.goodput(),
                survival.traffic.shed_rate(), survival.traffic.p99(),
                static_cast<unsigned long long>(survival.bridge_shed));
    emit("naive", rate, naive);
    emit("survival", rate, survival);
    naive_rows.push_back(naive);
    survival_rows.push_back(survival);
  }

  // Acceptance: past the knee the survival configuration must be shedding a
  // controlled nonzero fraction at the edge, keep its completed-op p99
  // bounded (and better than the naive pile-up), and hold goodput at or
  // above naive's decayed level.
  const Row& top_naive = naive_rows.back();
  const Row& top_survival = survival_rows.back();
  PASO_REQUIRE(top_survival.traffic.overloaded > 0,
               "past the knee admission control must be rejecting");
  PASO_REQUIRE(top_survival.traffic.shed_rate() > 0.05,
               "past the knee the shed rate must be materially nonzero");
  PASO_REQUIRE(top_survival.traffic.p99() < top_naive.traffic.p99(),
               "admission control must keep completed-op p99 below the "
               "naive backlog's");
  PASO_REQUIRE(top_survival.traffic.p99() < 0.75 * kDeadline,
               "survival p99 must stay clear of the op deadline");
  PASO_REQUIRE(top_survival.traffic.goodput() >=
                   0.8 * top_naive.traffic.goodput(),
               "shedding must not sacrifice goodput versus the naive knee");

  std::printf(
      "\nNaive keeps accepting past the knee: every admitted op queues\n"
      "behind an unbounded backlog, so completed-op p99 climbs toward the\n"
      "deadline while goodput decays. The survival configuration refuses\n"
      "the excess at the client edge (cheap, typed, immediate), so\n"
      "admitted ops see a healthy system: bounded p99, goodput pinned at\n"
      "capacity. The bounded bridge is the second line of defense — with\n"
      "the edge doing its job it rarely fires (see the bridge-shed\n"
      "column); kill the edge and it is what keeps the far segment's\n"
      "ingress finite (tests/overload_test.cpp floods it directly).\n");
  return 0;
}
