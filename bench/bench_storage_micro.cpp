// Micro-benchmarks of the local stores backing the memory servers: real
// wall-clock cost of store_M / mem-read_M / remove_M at various sizes, plus
// the criterion-match probe counts that the multi-field index is supposed to
// crush. The model costs (1, log l, l) should be visible in the scaling of
// each store family, and IndexedStore must answer non-key-field criteria
// with far fewer probes than an age scan.
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "bench/bench_util.hpp"
#include "storage/hash_store.hpp"
#include "storage/indexed_store.hpp"
#include "storage/linear_store.hpp"
#include "storage/ordered_store.hpp"

using namespace paso;
using namespace paso::bench;
using namespace paso::storage;

namespace {

constexpr const char* kKinds[] = {"hash", "ordered", "linear", "indexed"};

std::unique_ptr<ObjectStore> make_store(const std::string& kind) {
  if (kind == "hash") return std::make_unique<HashStore>(0);
  if (kind == "ordered") return std::make_unique<OrderedStore>(0);
  if (kind == "indexed") {
    return std::make_unique<IndexedStore>(std::vector<std::size_t>{0, 1});
  }
  return std::make_unique<LinearStore>();
}

PasoObject object_for(std::int64_t key, std::int64_t text_key) {
  PasoObject object;
  object.id = ObjectId{ProcessId{MachineId{0}, 0},
                       static_cast<std::uint64_t>(key)};
  object.fields = {Value{key},
                   Value{"tag-" + std::to_string(text_key)}};
  return object;
}

void fill(ObjectStore& store, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i) {
    // Field 1 cycles through count/8 distinct tags: selective but not unique.
    store.store(object_for(i, i % (count / 8 + 1)),
                static_cast<std::uint64_t>(i));
  }
}

struct ProbeRow {
  double ns_per_op = 0;
  std::uint64_t probes_per_op = 0;
};

/// Query by a non-key-field criterion (field 1, which only IndexedStore
/// indexes): the case the age scan pays for dearly.
ProbeRow bench_non_key_query(ObjectStore& store, std::int64_t size,
                             std::uint64_t ops) {
  const SearchCriterion sc = criterion(
      TypedAny{FieldType::kInt},
      Exact{Value{"tag-" + std::to_string(size / 16)}});
  const std::uint64_t before = store.match_probes();
  ProbeRow row;
  row.ns_per_op = time_ns_per_op(ops, [&] {
    for (std::uint64_t i = 0; i < ops; ++i) {
      volatile bool hit = store.find(sc).has_value();
      (void)hit;
    }
  });
  row.probes_per_op = (store.match_probes() - before) / ops;
  return row;
}

}  // namespace

int main() {
  print_header("Storage micro-bench: wall-clock I/Q/D + match probes");
  std::printf("%-8s %6s | %10s %10s %10s | %12s %10s\n", "store", "size",
              "insert", "key-query", "rm+ins", "nonkey-q", "probes/op");
  print_rule();

  for (const char* kind : kKinds) {
    for (const std::int64_t size : {100ll, 1000ll, 10000ll}) {
      // Linear scans at 10k are slow by design; cap their size.
      if (std::string(kind) == "linear" && size > 1000) continue;
      const std::uint64_t ops = size >= 10000 ? 2000 : 20000;

      auto store = make_store(kind);
      fill(*store, size);
      std::int64_t next = size;
      const double insert_ns = time_ns_per_op(ops, [&] {
        for (std::uint64_t i = 0; i < ops; ++i, ++next) {
          store->store(object_for(next, next % (size / 8 + 1)),
                       static_cast<std::uint64_t>(next));
        }
      });

      const SearchCriterion by_key =
          criterion(Exact{Value{size / 2}}, TypedAny{FieldType::kText});
      const double key_query_ns = time_ns_per_op(ops, [&] {
        for (std::uint64_t i = 0; i < ops; ++i) {
          volatile bool hit = store->find(by_key).has_value();
          (void)hit;
        }
      });

      std::int64_t churn = next;
      const double remove_insert_ns = time_ns_per_op(ops, [&] {
        for (std::uint64_t i = 0; i < ops; ++i, ++churn) {
          auto removed = store->remove(criterion(TypedAny{FieldType::kInt},
                                                 TypedAny{FieldType::kText}));
          store->store(object_for(churn, churn % (size / 8 + 1)),
                       static_cast<std::uint64_t>(churn));
        }
      });

      // Fresh store for the probe-counting row so churn doesn't skew it.
      auto probe_store = make_store(kind);
      fill(*probe_store, size);
      const ProbeRow non_key =
          bench_non_key_query(*probe_store, size, ops / 4);

      std::printf("%-8s %6lld | %8.0fns %8.0fns %8.0fns | %10.0fns %10llu\n",
                  kind, static_cast<long long>(size), insert_ns, key_query_ns,
                  remove_insert_ns, non_key.ns_per_op,
                  static_cast<unsigned long long>(non_key.probes_per_op));

      const std::string base =
          std::string(kind) + "/size=" + std::to_string(size);
      result_line("storage_micro", base + "/insert", ops, insert_ns, 0, 0);
      result_line("storage_micro", base + "/key_query", ops, key_query_ns, 0,
                  0);
      result_line("storage_micro", base + "/nonkey_query", ops / 4,
                  non_key.ns_per_op, 0, 0);
      JsonLine("storage_micro_probes")
          .field("config", base + "/nonkey_query")
          .field("ops", ops / 4)
          .field("probes_per_op", non_key.probes_per_op)
          .emit();
    }
  }

  std::printf(
      "\nnonkey-q filters on field 1, which only the multi-field index\n"
      "covers: hash and ordered fall back to the age scan (probes/op tracks\n"
      "the store size) while indexed goes straight to the field-1 bucket.\n");
  return 0;
}
