// Micro-benchmarks (google-benchmark) of the three local stores backing the
// memory servers: real wall-clock cost of store_M / mem-read_M / remove_M at
// various sizes. These are the I/Q/D of Figure 1 measured on real hardware
// rather than in model units — the model costs (1, log l, l) should be
// visible in the scaling of each store family.
#include <benchmark/benchmark.h>

#include <memory>

#include "storage/hash_store.hpp"
#include "storage/linear_store.hpp"
#include "storage/ordered_store.hpp"

namespace {

using namespace paso;
using namespace paso::storage;

std::unique_ptr<ObjectStore> make_store(int kind) {
  switch (kind) {
    case 0:
      return std::make_unique<HashStore>(0);
    case 1:
      return std::make_unique<OrderedStore>(0);
    default:
      return std::make_unique<LinearStore>();
  }
}

const char* kind_name(int kind) {
  return kind == 0 ? "hash" : kind == 1 ? "ordered" : "linear";
}

PasoObject object_for(std::int64_t key) {
  PasoObject object;
  object.id = ObjectId{ProcessId{MachineId{0}, 0},
                       static_cast<std::uint64_t>(key)};
  object.fields = {Value{key}, Value{std::string{"payload-payload"}}};
  return object;
}

void fill(ObjectStore& store, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i) {
    store.store(object_for(i), static_cast<std::uint64_t>(i));
  }
}

void BM_StoreInsert(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  const std::int64_t size = state.range(1);
  auto store = make_store(kind);
  fill(*store, size);
  std::int64_t next = size;
  for (auto _ : state) {
    store->store(object_for(next), static_cast<std::uint64_t>(next));
    ++next;
  }
  state.SetLabel(kind_name(kind));
}

void BM_StoreQueryByKey(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  const std::int64_t size = state.range(1);
  auto store = make_store(kind);
  fill(*store, size);
  const SearchCriterion sc =
      criterion(Exact{Value{size / 2}}, TypedAny{FieldType::kText});
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->find(sc));
  }
  state.SetLabel(kind_name(kind));
}

void BM_StoreQueryByRange(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  const std::int64_t size = state.range(1);
  auto store = make_store(kind);
  fill(*store, size);
  const SearchCriterion sc =
      criterion(IntRange{size / 2, size / 2 + 3}, TypedAny{FieldType::kText});
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->find(sc));
  }
  state.SetLabel(kind_name(kind));
}

void BM_StoreRemoveInsertPair(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  const std::int64_t size = state.range(1);
  auto store = make_store(kind);
  fill(*store, size);
  std::int64_t next = size;
  for (auto _ : state) {
    auto removed = store->remove(
        criterion(TypedAny{FieldType::kInt}, TypedAny{FieldType::kText}));
    benchmark::DoNotOptimize(removed);
    store->store(object_for(next), static_cast<std::uint64_t>(next));
    ++next;
  }
  state.SetLabel(kind_name(kind));
}

void StoreArgs(benchmark::internal::Benchmark* bench) {
  for (int kind = 0; kind < 3; ++kind) {
    for (const std::int64_t size : {100, 1000, 10000}) {
      // Linear scan at 10k is slow by design; cap its size.
      if (kind == 2 && size > 1000) continue;
      bench->Args({kind, size});
    }
  }
}

BENCHMARK(BM_StoreInsert)->Apply(StoreArgs);
BENCHMARK(BM_StoreQueryByKey)->Apply(StoreArgs);
BENCHMARK(BM_StoreQueryByRange)->Apply(StoreArgs);
BENCHMARK(BM_StoreRemoveInsertPair)->Apply(StoreArgs);

}  // namespace

BENCHMARK_MAIN();
