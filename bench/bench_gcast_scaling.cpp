// E2 — Section 3.3: the gcast cost formula.
//
// Sweeps group size and message/response sizes and prints the measured bus
// cost of a gcast against the exact derivation
//   |g|(a + b|msg|) + |g|a + a + b|resp|
// and the paper's approximate closed form |g|(2a + b(|msg|+|resp|)).
// Also verifies the Section 5 premise that total message cost lower-bounds
// completion time on the serializing bus.
#include <any>

#include "bench/bench_util.hpp"
#include "net/bus_network.hpp"
#include "vsync/group_service.hpp"
#include "paso/cluster.hpp"

using namespace paso;
using namespace paso::bench;

namespace {

constexpr Cost kAlpha = 10.0;
constexpr Cost kBeta = 1.0;

/// Minimal endpoint that returns a response of a fixed declared size.
class EchoEndpoint final : public vsync::GroupEndpoint {
 public:
  explicit EchoEndpoint(std::size_t response_bytes)
      : response_bytes_(response_bytes) {}

  vsync::GcastResult handle_gcast(const GroupName&,
                                  const vsync::Payload&) override {
    vsync::GcastResult result;
    result.response = std::string("r");
    result.response_bytes = response_bytes_;
    result.processing = 1.0;
    return result;
  }
  vsync::StateBlob capture_state(const GroupName&) override { return {}; }
  void install_state(const GroupName&, const vsync::StateBlob&) override {}
  void erase_state(const GroupName&) override {}
  void on_view_change(const GroupName&, const vsync::View&) override {}

 private:
  std::size_t response_bytes_;
};

struct Sample {
  Cost measured = 0;
  sim::SimTime elapsed = 0;
};

Sample run_gcast(std::size_t g, std::size_t msg_bytes,
                 std::size_t resp_bytes) {
  sim::Simulator simulator;
  net::BusNetwork network(simulator, CostModel{kAlpha, kBeta}, g + 1);
  vsync::GroupService service(network, {});
  std::vector<std::unique_ptr<EchoEndpoint>> endpoints;
  for (std::uint32_t m = 0; m < g + 1; ++m) {
    endpoints.push_back(std::make_unique<EchoEndpoint>(resp_bytes));
    service.register_endpoint(MachineId{m}, *endpoints.back());
  }
  for (std::uint32_t m = 0; m < g; ++m) {
    service.g_join("g", MachineId{m});
  }
  simulator.run();
  network.ledger().reset();

  const sim::SimTime start = simulator.now();
  bool done = false;
  service.gcast("g", MachineId{static_cast<std::uint32_t>(g)},
                vsync::Payload{std::string("m"), msg_bytes}, "bench",
                [&done](std::optional<std::any>) { done = true; });
  simulator.run_while_pending([&done] { return done; });
  return Sample{network.ledger().total_msg_cost(), simulator.now() - start};
}

/// Drive a 64-op same-class insert burst through a real cluster and return
/// the ledger's msg-cost for it, with batching on (window/max_batch) or off.
struct BurstResult {
  Cost msg_cost = 0;
  std::uint64_t bytes = 0;
  std::size_t ops = 0;
};

BurstResult run_burst(Cost alpha, sim::SimTime window, std::size_t max_batch) {
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.cost_model = CostModel{alpha, kBeta};
  cfg.runtime.batch_window = window;
  cfg.runtime.max_batch = max_batch;
  cfg.record_history = false;
  Cluster cluster(TaskCluster::schema(), cfg);
  cluster.assign_basic_support();
  const ProcessId driver = cluster.process(MachineId{3});
  PasoRuntime& home = cluster.runtime(MachineId{3});

  const auto before_cost = cluster.ledger().snapshot();
  std::uint64_t before_bytes = 0, after_bytes = 0;
  for (const auto& [tag, stats] : cluster.ledger().per_tag()) {
    before_bytes += stats.bytes;
  }
  BurstResult out;
  out.ops = 64;
  for (std::int64_t key = 0; key < 64; ++key) {
    home.insert(driver, TaskCluster::tuple(key));
  }
  cluster.settle();
  out.msg_cost = cluster.ledger().since(before_cost).msg_cost;
  for (const auto& [tag, stats] : cluster.ledger().per_tag()) {
    after_bytes += stats.bytes;
  }
  out.bytes = after_bytes - before_bytes;
  return out;
}

void batching_section() {
  print_header("Gcast batching: 64-op same-class burst, one 2*alpha a batch");
  std::printf("%6s %6s | %12s %12s | %7s\n", "alpha", "batch", "cost(off)",
              "cost(on)", "ratio");
  print_rule();
  for (const Cost alpha : {10.0, 64.0}) {
    for (const std::size_t max_batch : {16u, 64u}) {
      BurstResult off, on;
      const double ns_off =
          time_ns_per_op(64, [&] { off = run_burst(alpha, 0, max_batch); });
      const double ns_on =
          time_ns_per_op(64, [&] { on = run_burst(alpha, 50, max_batch); });
      const double ratio = off.msg_cost / on.msg_cost;
      std::printf("%6.0f %6zu | %12.0f %12.0f | %6.2fx\n", alpha, max_batch,
                  off.msg_cost, on.msg_cost, ratio);
      const std::string config = "burst64/alpha=" +
                                 std::to_string(static_cast<int>(alpha)) +
                                 "/max_batch=" + std::to_string(max_batch);
      result_line("gcast_batching", config + "/off", off.ops, ns_off,
                  off.msg_cost, off.bytes);
      result_line("gcast_batching", config + "/on", on.ops, ns_on,
                  on.msg_cost, on.bytes);
    }
  }
  std::printf(
      "\nBatching trades per-op latency (the coalescing window) for one\n"
      "2*alpha*|g| per batch instead of per op. The win scales with alpha:\n"
      "at alpha=10 the ~32-byte payloads dominate, at alpha=64 the latency\n"
      "term does — the regime the paper's cost model targets.\n");
}

}  // namespace

int main() {
  const CostModel model{kAlpha, kBeta};
  print_header("E2 / Section 3.3: gcast cost scaling (alpha=10, beta=1)");
  std::printf("%3s %6s %6s | %10s %10s %10s | %10s\n", "g", "|msg|", "|resp|",
              "exact", "approx", "measured", "elapsed");
  print_rule();
  for (const std::size_t g : {1u, 2u, 4u, 8u, 16u, 32u}) {
    for (const std::size_t msg : {16u, 256u}) {
      for (const std::size_t resp : {8u, 64u}) {
        Sample sample;
        const double ns_per_op =
            time_ns_per_op(1, [&] { sample = run_gcast(g, msg, resp); });
        std::printf("%3zu %6zu %6zu | %10.1f %10.1f %10.1f | %10.1f\n", g,
                    msg, resp, model.gcast(g, msg, resp),
                    model.gcast_approx(g, msg, resp), sample.measured,
                    sample.elapsed);
        result_line("gcast_scaling",
                    "g=" + std::to_string(g) + "/msg=" + std::to_string(msg) +
                        "/resp=" + std::to_string(resp),
                    1, ns_per_op, sample.measured, g * msg + resp);
        // Section 5 premise: bus time >= total message cost.
        if (sample.elapsed + 1e-9 < sample.measured) {
          std::printf("  !! completion time below message cost — model "
                      "violation\n");
          return 1;
        }
      }
    }
  }
  std::printf(
      "\nmeasured = exact - alpha (the leader's self-ack never crosses the\n"
      "bus). Cost grows linearly in |g| with slope 2*alpha + beta*|msg|,\n"
      "exactly the Section 3.3 derivation; the approx column overcounts the\n"
      "response fan-out. elapsed >= measured everywhere: total message cost\n"
      "lower-bounds completion time on a serializing bus.\n");
  batching_section();
  return 0;
}
