// Small shared helpers for the benchmark binaries: fixed-width table
// printing and cluster construction shortcuts. Each bench binary regenerates
// one table/figure/theorem of the paper and prints predicted vs measured.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "paso/cluster.hpp"

namespace paso::bench {

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_rule() {
  std::printf("----------------------------------------------------------------\n");
}

/// Accumulates one flat JSON object and prints it as a single line, so
/// benches can emit machine-readable results next to the human table.
class JsonLine {
 public:
  explicit JsonLine(const std::string& bench) {
    body_ = "{\"bench\":\"" + bench + "\"";
  }
  JsonLine& field(const std::string& name, double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.6g", value);
    body_ += ",\"" + name + "\":" + buffer;
    return *this;
  }
  JsonLine& field(const std::string& name, std::uint64_t value) {
    body_ += ",\"" + name + "\":" + std::to_string(value);
    return *this;
  }
  JsonLine& field(const std::string& name, const std::string& value) {
    body_ += ",\"" + name + "\":\"" + value + "\"";
    return *this;
  }
  void emit() const { std::printf("%s}\n", body_.c_str()); }

 private:
  std::string body_;
};

/// A cluster preloaded with one (int, text) class and basic support joined.
struct TaskCluster {
  static Schema schema() {
    return Schema({
        ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 1},
    });
  }

  static Tuple tuple(std::int64_t key, std::size_t text_bytes = 16) {
    return {Value{key}, Value{std::string(text_bytes, 'x')}};
  }

  static SearchCriterion by_key(std::int64_t key) {
    return criterion(Exact{Value{key}}, TypedAny{FieldType::kText});
  }
};

}  // namespace paso::bench
