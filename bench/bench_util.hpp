// Small shared helpers for the benchmark binaries: fixed-width table
// printing and cluster construction shortcuts. Each bench binary regenerates
// one table/figure/theorem of the paper and prints predicted vs measured.
#pragma once

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "paso/cluster.hpp"

namespace paso::bench {

/// Wall-clock nanoseconds per operation of `body`, which performs `ops`
/// operations. The shared timing primitive of every bench's ns_per_op
/// column; steady_clock so NTP slews can't produce negative latencies.
inline double time_ns_per_op(std::uint64_t ops,
                             const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                 .count()) /
         static_cast<double>(ops);
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_rule() {
  std::printf("----------------------------------------------------------------\n");
}

/// Accumulates one flat JSON object and prints it as a single line, so
/// benches can emit machine-readable results next to the human table.
class JsonLine {
 public:
  explicit JsonLine(const std::string& bench) {
    body_ = "{\"bench\":\"" + bench + "\"";
  }
  JsonLine& field(const std::string& name, double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.6g", value);
    body_ += ",\"" + name + "\":" + buffer;
    return *this;
  }
  JsonLine& field(const std::string& name, std::uint64_t value) {
    body_ += ",\"" + name + "\":" + std::to_string(value);
    return *this;
  }
  JsonLine& field(const std::string& name, const std::string& value) {
    body_ += ",\"" + name + "\":\"" + value + "\"";
    return *this;
  }
  void emit() const { std::printf("%s}\n", body_.c_str()); }

 private:
  std::string body_;
};

/// The standard machine-readable result row every bench emits at least once:
///   {"bench":...,"config":...,"ops":...,"msg_cost":...,"bytes":...}
/// `config` names the measured variant (e.g. "indexed/size=10000"), `ops` is
/// how many operations the row aggregates, `msg_cost` the model's message
/// cost (0 for wall-clock-only micro benches) and `bytes` the wire bytes
/// moved (0 when not metered). `ns_per_op` — measured wall clock per op —
/// is emitted only when the bench actually metered it: a sim-only bench has
/// no wall axis, and a literal `"ns_per_op":0` in its row reads like "this
/// bench is infinitely fast" in every downstream report. bench_diff treats
/// absent and zero axes identically (skipped), so omission is free. A
/// nonzero `work` adds a `"work":...` field — the model's server-work total
/// (or whatever work scalar the bench gates, e.g. max per-replica load for
/// balance benches); bench_diff gates every one of msg_cost/work/bytes that
/// a baseline row carries as > 0. The baseline pipeline greps stdout for
/// lines starting `{"bench"` — keep this the only JSON the benches print.
inline void result_line(const std::string& bench, const std::string& config,
                        std::uint64_t ops, double ns_per_op, double msg_cost,
                        std::uint64_t bytes, double work = 0) {
  JsonLine line(bench);
  line.field("config", config).field("ops", ops);
  if (ns_per_op > 0) line.field("ns_per_op", ns_per_op);
  line.field("msg_cost", msg_cost).field("bytes", bytes);
  if (work > 0) line.field("work", work);
  line.emit();
}

/// Dump the cluster's observability data as a JSONL sidecar next to the
/// bench's stdout: every `{"metric",...}` row, every `{"span",...}` /
/// `{"msg",...}` row, and a closing `{"metric":"ledger.msg_cost",...}` row
/// with the CostLedger's total so tools/trace_report can reconcile the
/// traced + untraced message cost against the ledger exactly. Requires the
/// cluster to have been built with `ClusterConfig::observe = true`; pair a
/// mid-run `ledger().reset()` with `tracer().clear()` so both cover the same
/// interval.
inline void write_obs_sidecar(Cluster& cluster, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write sidecar %s\n", path.c_str());
    return;
  }
  cluster.metrics().write_jsonl(os);
  cluster.tracer().write_jsonl(os);
  char total[64];
  std::snprintf(total, sizeof total, "%.6f", cluster.ledger().total_msg_cost());
  os << "{\"metric\":\"ledger.msg_cost\",\"machine\":-1,\"type\":\"gauge\","
     << "\"value\":" << total << "}\n";
}

/// A cluster preloaded with one (int, text) class and basic support joined.
struct TaskCluster {
  static Schema schema() {
    return Schema({
        ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 1},
    });
  }

  static Tuple tuple(std::int64_t key, std::size_t text_bytes = 16) {
    return {Value{key}, Value{std::string(text_bytes, 'x')}};
  }

  static SearchCriterion by_key(std::int64_t key) {
    return criterion(Exact{Value{key}}, TypedAny{FieldType::kText});
  }
};

}  // namespace paso::bench
