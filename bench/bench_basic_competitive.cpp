// E3 — Theorem 2: the Basic algorithm is (3 + lambda/K)-competitive.
//
// Sweeps lambda and K across four workload families and prints the measured
// competitive ratio (online cost / exact DP optimum) next to the bound.
// The adversarial family is the rent-or-buy style sequence that extracts
// the worst ratio the counter admits; random and phased families show the
// typical-case gap below the bound.
#include <chrono>

#include "analysis/allocation_game.hpp"
#include "analysis/multi_machine.hpp"
#include "analysis/potential_audit.hpp"
#include "analysis/workloads.hpp"
#include "bench/bench_util.hpp"
#include "common/rng.hpp"

using namespace paso;
using namespace paso::bench;
using namespace paso::analysis;

namespace {

struct FamilyResult {
  double worst = 0;
  double mean = 0;
};

FamilyResult sweep_family(const std::string& family, std::size_t lambda,
                          Cost k, Rng& rng) {
  const GameCosts costs{1, lambda + 1};
  const adaptive::CounterConfig config{k, 1, false, false};
  std::vector<RequestSequence> sequences;
  if (family == "random") {
    for (const double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      sequences.push_back(random_sequence(20000, p, k, rng));
    }
  } else if (family == "phased") {
    PhasedOptions options;
    options.phases = 16;
    options.phase_length = 1000;
    sequences.push_back(phased_sequence(options, k, rng));
    options.phase_length = 64;
    sequences.push_back(phased_sequence(options, k, rng));
  } else if (family == "bursty") {
    // Long read bursts with short update bursts: near-worst-case shape.
    RequestSequence seq;
    for (int cycle = 0; cycle < 200; ++cycle) {
      const std::size_t reads = 1 + rng.index(static_cast<std::size_t>(k));
      const std::size_t updates = 1 + rng.index(static_cast<std::size_t>(2 * k));
      for (std::size_t i = 0; i < reads; ++i)
        seq.push_back(Request{ReqKind::kRead, k});
      for (std::size_t i = 0; i < updates; ++i)
        seq.push_back(Request{ReqKind::kUpdate, k});
    }
    sequences.push_back(std::move(seq));
  } else {  // adversarial
    sequences.push_back(adversarial_basic_sequence(400, k, costs));
  }

  FamilyResult result;
  for (const RequestSequence& seq : sequences) {
    const auto cmp = compare_basic(seq, costs, config);
    result.worst = std::max(result.worst, cmp.ratio);
    result.mean += cmp.ratio;
  }
  result.mean /= static_cast<double>(sequences.size());
  return result;
}

}  // namespace

int main() {
  const auto wall_start = std::chrono::steady_clock::now();
  print_header("E3 / Theorem 2: Basic algorithm competitive ratio vs "
               "(3 + lambda/K)");
  std::printf("%7s %4s | %22s %22s %22s | %8s\n", "lambda", "K",
              "random (worst/mean)", "phased (worst/mean)",
              "adversarial (worst)", "bound");
  print_rule();

  Rng rng(20260707);
  bool all_within = true;
  double overall_worst = 0;
  for (const std::size_t lambda : {1u, 2u, 3u, 4u, 8u}) {
    for (const Cost k : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
      const double bound = theorem2_bound(lambda, k);
      const auto random = sweep_family("random", lambda, k, rng);
      const auto phased = sweep_family("phased", lambda, k, rng);
      const auto adversarial = sweep_family("adversarial", lambda, k, rng);
      const double worst =
          std::max({random.worst, phased.worst, adversarial.worst});
      overall_worst = std::max(overall_worst, worst);
      const bool ok = worst <= bound + 1e-9;
      all_within = all_within && ok;
      std::printf("%7zu %4.0f | %10.3f /%10.3f %10.3f /%10.3f %22.3f | %8.3f%s\n",
                  lambda, k, random.worst, random.mean, phased.worst,
                  phased.mean, adversarial.worst, bound, ok ? "" : "  !!");
    }
  }

  print_header("Bursty stress (random burst lengths)");
  std::printf("%7s %4s | %10s | %8s\n", "lambda", "K", "worst", "bound");
  print_rule();
  for (const std::size_t lambda : {1u, 2u, 4u}) {
    for (const Cost k : {4.0, 16.0}) {
      const auto bursty = sweep_family("bursty", lambda, k, rng);
      const double bound = theorem2_bound(lambda, k);
      const bool ok = bursty.worst <= bound + 1e-9;
      all_within = all_within && ok;
      std::printf("%7zu %4.0f | %10.3f | %8.3f%s\n", lambda, k, bursty.worst,
                  bound, ok ? "" : "  !!");
    }
  }

  print_header("Whole-cluster game: rotating hot-spot reads across 6 "
               "machines, per-machine counters");
  std::printf("%7s %4s | %10s %16s | %8s\n", "lambda", "K", "global",
              "worst machine", "bound");
  print_rule();
  for (const std::size_t lambda : {1u, 2u, 3u}) {
    for (const Cost k : {4.0, 16.0}) {
      const GameCosts costs{1, lambda + 1};
      HotSpotOptions options;
      options.machines = 6;
      const GlobalSequence global = hotspot_sequence(options, k, rng);
      const GlobalComparison whole = compare_basic_global(
          global, options.machines, costs,
          adaptive::CounterConfig{k, 1, false, false});
      double worst_machine = 0;
      for (const double r : whole.per_machine_ratio) {
        worst_machine = std::max(worst_machine, r);
      }
      const double bound = theorem2_bound(lambda, k);
      const bool ok = whole.ratio <= bound + 1e-9;
      all_within = all_within && ok;
      std::printf("%7zu %4.0f | %10.3f %16.3f | %8.3f%s\n", lambda, k,
                  whole.ratio, worst_machine, bound, ok ? "" : "  !!");
    }
  }
  std::printf(
      "The class's total cost decomposes into independent per-machine games,\n"
      "so local counters give the global guarantee (Section 5's \"local\n"
      "optimizations lead to global efficiency\", made precise).\n");

  print_header("Event-wise potential audit (lambda <= 3, Theorem 2 proof)");
  std::printf("%7s %4s | %10s | %s\n", "lambda", "K", "worst event",
              "verdict");
  print_rule();
  for (const std::size_t lambda : {1u, 2u, 3u}) {
    for (const Cost k : {4.0, 16.0}) {
      const GameCosts costs{1, lambda + 1};
      const auto seq = adversarial_basic_sequence(200, k, costs);
      const auto audit = audit_potential(
          seq, costs, adaptive::CounterConfig{k, 1, false, false});
      std::printf("%7zu %4.0f | %10.3f | %s\n", lambda, k,
                  audit.worst_event_ratio,
                  audit.ok ? "amortized <= (3+lambda/K)*OPT per event"
                           : audit.first_violation.c_str());
      all_within = all_within && audit.ok;
    }
  }

  // Real wall time per sweep cell (informational only — bench_diff never
  // gates wall-clock axes; the gated quantity is worst_ratio).
  const double wall_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count());
  JsonLine("basic_competitive")
      .field("config", std::string{"theorem2_sweep"})
      .field("ops", std::uint64_t{30})
      .field("ns_per_op", wall_ns / 30.0)
      .field("msg_cost", 0.0)
      .field("bytes", std::uint64_t{0})
      .field("worst_ratio", overall_worst)
      .emit();
  std::printf("\n%s\n",
              all_within
                  ? "All measured ratios within the Theorem 2 bound."
                  : "!! Some ratio exceeded the bound — investigate.");
  return all_within ? 0 : 1;
}
