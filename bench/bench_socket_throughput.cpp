// bench_socket_throughput — wall-clock throughput and latency of the
// multi-process socket transport (TransportKind::kSocket).
//
// Sweeps machine count x client-thread count; each client runs an
// insert-then-read loop over its own keyspace slice through the cluster's
// synchronous wrappers, so every op crosses the full fabric: stack lock ->
// broker io thread -> TCP loopback -> machine process -> ack frame back ->
// delivery. Reported axes are the wall-clock quartet — ns_per_op,
// ops_per_sec, p50_ns, p99_ns (per-op latency quantiles from an
// obs::Histogram) — plus the model msg_cost for cross-checking against the
// simulated-bus and threaded benches. Wall-clock axes are machine-dependent
// and never gated by tools/bench_diff; these rows exist to make real-time
// regressions *visible*, not to fail CI.
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "obs/metrics.hpp"

using namespace paso;
using namespace paso::bench;

namespace {

/// Exponential-ish ns buckets, 1us .. 1s; a loopback round trip per op puts
/// latencies mid-range so p50/p99 interpolate instead of saturating.
std::vector<double> latency_bounds_ns() {
  return {1e3, 2e3, 5e3, 1e4, 2e4,   5e4, 1e5, 2e5,
          5e5, 1e6, 2e6, 5e6, 1e7, 5e7, 1e8, 1e9};
}

struct LoadResult {
  std::uint64_t ops = 0;
  double wall_ns = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  Cost msg_cost = 0;
  std::uint64_t bytes = 0;
  std::uint64_t frames = 0;  // broker IO during the measured window:
  std::uint64_t writes = 0;  // frames / writes is the writev coalescing win
};

LoadResult run_load(std::size_t machines, std::size_t clients,
                    std::uint64_t ops_per_client) {
  ClusterConfig config;
  config.machines = machines;
  config.lambda = 1;
  config.transport = TransportKind::kSocket;
  config.record_history = false;
  Cluster cluster(TaskCluster::schema(), config);
  cluster.assign_basic_support();

  obs::Histogram latency(latency_bounds_ns());
  std::mutex latency_mu;  // clients share one histogram; observe() is cheap
  const auto timed = [&](const std::function<void()>& op) {
    const auto start = std::chrono::steady_clock::now();
    op();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    std::lock_guard<std::mutex> lock(latency_mu);
    latency.observe(ns);
  };

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const ProcessId process = cluster.process(
          MachineId{static_cast<std::uint32_t>(c % machines)});
      for (std::uint64_t i = 0; i < ops_per_client; ++i) {
        const std::int64_t key =
            static_cast<std::int64_t>(c) * 1'000'000 +
            static_cast<std::int64_t>(i);
        timed([&] { cluster.insert_sync(process, TaskCluster::tuple(key)); });
        timed([&] { cluster.read_sync(process, TaskCluster::by_key(key)); });
      }
    });
  }
  for (std::thread& t : threads) t.join();
  cluster.settle();

  LoadResult result;
  result.ops = 2 * clients * ops_per_client;  // insert + read per iteration
  result.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  result.p50_ns = latency.quantile(0.50);
  result.p99_ns = latency.quantile(0.99);
  cluster.transport().run_exclusive([&] {
    result.msg_cost = cluster.ledger().total_msg_cost();
    for (const auto& [tag, stats] : cluster.ledger().per_tag()) {
      result.bytes += stats.bytes;
    }
  });
  return result;
}

/// Scaling variant: one hash partition (= one write group) per machine,
/// support {p, p+1 mod n}, every client issuing against its own machine's
/// slice — same shape as the threaded scaling sweep, so the two transports'
/// curves are directly comparable. Narrow op domains let the broker's
/// sharded stack lock overlap independent machines' protocol work while the
/// IO thread batches their frames into shared writev calls.
LoadResult run_scaling_load(std::size_t machines, std::size_t clients,
                            std::uint64_t ops_per_client) {
  ClusterConfig config;
  config.machines = machines;
  config.lambda = machines > 1 ? 1 : 0;
  config.transport = TransportKind::kSocket;
  config.record_history = false;
  Schema schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, machines},
  });
  Cluster cluster(schema, config);
  for (std::size_t p = 0; p < machines; ++p) {
    std::vector<MachineId> support{
        MachineId{static_cast<std::uint32_t>(p)}};
    if (machines > 1) {
      support.push_back(
          MachineId{static_cast<std::uint32_t>((p + 1) % machines)});
    }
    cluster.set_basic_support(ClassId{static_cast<std::uint32_t>(p)},
                              std::move(support));
  }
  cluster.assign_basic_support();  // overrides are kept; this performs joins

  obs::Histogram latency(latency_bounds_ns());
  std::mutex latency_mu;
  const std::uint64_t frames_before = cluster.socket_transport().frames_sent();
  const std::uint64_t writes_before =
      cluster.socket_transport().write_syscalls();
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const ProcessId process = cluster.process(
          MachineId{static_cast<std::uint32_t>(c % machines)});
      for (std::uint64_t i = 0; i < ops_per_client; ++i) {
        const std::int64_t key =
            static_cast<std::int64_t>(c) * 1'000'000 +
            static_cast<std::int64_t>(i);
        const auto timed = [&](const std::function<void()>& op) {
          const auto start = std::chrono::steady_clock::now();
          op();
          const double ns = static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count());
          std::lock_guard<std::mutex> lock(latency_mu);
          latency.observe(ns);
        };
        timed([&] { cluster.insert_sync(process, TaskCluster::tuple(key)); });
        timed([&] { cluster.read_sync(process, TaskCluster::by_key(key)); });
      }
    });
  }
  for (std::thread& t : threads) t.join();
  cluster.settle();

  LoadResult result;
  result.ops = 2 * clients * ops_per_client;
  result.frames = cluster.socket_transport().frames_sent() - frames_before;
  result.writes =
      cluster.socket_transport().write_syscalls() - writes_before;
  result.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  result.p50_ns = latency.quantile(0.50);
  result.p99_ns = latency.quantile(0.99);
  cluster.transport().run_exclusive([&] {
    result.msg_cost = cluster.ledger().total_msg_cost();
    for (const auto& [tag, stats] : cluster.ledger().per_tag()) {
      result.bytes += stats.bytes;
    }
  });
  return result;
}

void emit_scaling_row(const char* bench, const std::string& config,
                      const LoadResult& r) {
  const double ns_per_op = r.wall_ns / static_cast<double>(r.ops);
  const double ops_per_sec = static_cast<double>(r.ops) * 1e9 / r.wall_ns;
  const double coalesce = r.writes > 0 ? static_cast<double>(r.frames) /
                                             static_cast<double>(r.writes)
                                       : 0.0;
  std::printf("%-34s | %10.0f %12.0f %12.0f %12.0f %9.1f\n", config.c_str(),
              ns_per_op, ops_per_sec, r.p50_ns, r.p99_ns, coalesce);
  JsonLine line(bench);
  line.field("config", config)
      .field("ops", r.ops)
      .field("ns_per_op", ns_per_op)
      .field("ops_per_sec", ops_per_sec)
      .field("p50_ns", r.p50_ns)
      .field("p99_ns", r.p99_ns)
      .field("msg_cost", r.msg_cost)
      .field("bytes", r.bytes)
      .field("frames", r.frames)
      .field("writes", r.writes);
  line.emit();
}

}  // namespace

int main() {
  print_header("Socket transport: wall-clock throughput / latency "
               "(one OS process per machine, TCP loopback, 1 cost unit = "
               "1 us)");
  std::printf("%8s %8s | %10s %12s %12s %12s\n", "machines", "clients",
              "ns/op", "ops/sec", "p50_ns", "p99_ns");
  print_rule();

  constexpr std::uint64_t kOpsPerClient = 50;
  for (const std::size_t machines : {4u, 8u}) {
    for (const std::size_t clients : {1u, 4u}) {
      const LoadResult r = run_load(machines, clients, kOpsPerClient);
      const double ns_per_op = r.wall_ns / static_cast<double>(r.ops);
      const double ops_per_sec = static_cast<double>(r.ops) * 1e9 / r.wall_ns;
      std::printf("%8zu %8zu | %10.0f %12.0f %12.0f %12.0f\n", machines,
                  clients, ns_per_op, ops_per_sec, r.p50_ns, r.p99_ns);
      JsonLine line("socket_throughput");
      line.field("config", "socket/machines=" + std::to_string(machines) +
                               "/clients=" + std::to_string(clients))
          .field("ops", r.ops)
          .field("ns_per_op", ns_per_op)
          .field("ops_per_sec", ops_per_sec)
          .field("p50_ns", r.p50_ns)
          .field("p99_ns", r.p99_ns)
          .field("msg_cost", r.msg_cost)
          .field("bytes", r.bytes);
      line.emit();
    }
  }

  print_header("Socket transport: scaling sweeps "
               "(one write group per machine, writev-batched broker)");
  std::printf("%-34s | %10s %12s %12s %12s %9s\n", "config", "ns/op",
              "ops/sec", "p50_ns", "p99_ns", "fr/write");
  print_rule();

  // Machine-count sweep (clients track machines) and a thread sweep at the
  // full fabric width — same shapes as the threaded scaling sweep.
  constexpr std::uint64_t kScaleOps = 50;
  for (const std::size_t machines : {1u, 2u, 4u, 8u}) {
    const LoadResult r = run_scaling_load(machines, machines, kScaleOps);
    emit_scaling_row("socket_scaling",
                     "socket/scale/machines=" + std::to_string(machines) +
                         "/clients=" + std::to_string(machines),
                     r);
  }
  for (const std::size_t clients : {1u, 2u, 4u, 8u}) {
    const LoadResult r = run_scaling_load(8, clients, kScaleOps);
    emit_scaling_row("socket_scaling",
                     "socket/scale8/clients=" + std::to_string(clients), r);
  }

  std::printf(
      "\nEvery op physically leaves the address space: the payload frame\n"
      "rides the TCP loopback to the destination machine's OS process and\n"
      "only the returning ack releases the delivery, so ns/op includes two\n"
      "kernel socket hops per message. msg_cost must still equal the\n"
      "simulated-bus charge for the same trace (tools/trace_diff\n"
      "--transport=all automates that check).\n");
  return 0;
}
