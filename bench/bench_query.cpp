// Query-engine bench: per-predicate message-cost proxy (match probes) and
// wall clock for the ordered multi-field index against the linear age scan.
//
// The workload is adversarial for a scan: the matching region is small and
// lives at the END of the age order, so the spec store pays nearly the full
// store size per query while the planner-driven index touches only the
// region (or exactly k candidates for ranked reads). The probes_per_op rows
// are deterministic model quantities and are gated by bench_diff; at 10k
// objects the indexed range/prefix/compound/topk rows must stay >= 10x
// cheaper than linear.
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "bench/bench_util.hpp"
#include "storage/indexed_store.hpp"
#include "storage/linear_store.hpp"

using namespace paso;
using namespace paso::bench;
using namespace paso::storage;

namespace {

std::unique_ptr<ObjectStore> make_store(const std::string& kind) {
  if (kind == "indexed") {
    return std::make_unique<IndexedStore>(std::vector<std::size_t>{0, 1},
                                          IndexedStore::Options{true});
  }
  return std::make_unique<LinearStore>();
}

std::string group_tag(std::int64_t i, std::int64_t size) {
  // 50 contiguous groups in age order: group 49 is the newest 2% — the
  // worst case for an oldest-first scan, the natural case for a prefix walk.
  const std::int64_t group = i / (size / 50);
  return "g" + std::string(group < 10 ? "0" : "") + std::to_string(group) +
         "-" + std::to_string(i);
}

void fill(ObjectStore& store, std::int64_t size) {
  for (std::int64_t i = 0; i < size; ++i) {
    PasoObject object;
    object.id = ObjectId{ProcessId{MachineId{0}, 0},
                         static_cast<std::uint64_t>(i)};
    object.fields = {Value{i}, Value{group_tag(i, size)}};
    store.store(object, static_cast<std::uint64_t>(i));
  }
}

struct Predicate {
  const char* name;
  std::function<SearchCriterion(std::int64_t size)> make;
};

const Predicate kPredicates[] = {
    {"exact",
     [](std::int64_t size) {
       return criterion(Exact{Value{size - 1}}, TypedAny{FieldType::kText});
     }},
    {"range",
     [](std::int64_t size) {
       // Half-open slice over the newest size/64 keys.
       return criterion(range_at_least(Value{size - size / 64},
                                       /*exclusive=*/true),
                        TypedAny{FieldType::kText});
     }},
    {"prefix",
     [](std::int64_t size) {
       (void)size;
       return criterion(TypedAny{FieldType::kInt}, TextPrefix{"g49-"});
     }},
    {"compound",
     [](std::int64_t size) {
       // Both fields constrain; the planner must drive by the narrower
       // range estimate (size/100) rather than the fatter prefix region.
       return criterion(range_at_least(Value{size - size / 100}),
                        TextPrefix{"g49-"});
     }},
    {"topk",
     [](std::int64_t size) {
       (void)size;
       return ranked(criterion(AnyField{}, AnyField{}),
                     TopK{0, 1, /*descending=*/true});
     }},
};

using Clock = std::chrono::steady_clock;

}  // namespace

int main() {
  print_header("Query bench: per-predicate probes/op, indexed vs linear");
  std::printf("%-8s %-9s %6s | %10s %12s\n", "store", "predicate", "size",
              "ns/op", "probes/op");
  print_rule();

  for (const char* kind : {"linear", "indexed"}) {
    for (const std::int64_t size : {1000ll, 10000ll}) {
      auto store = make_store(kind);
      fill(*store, size);
      for (const Predicate& predicate : kPredicates) {
        const SearchCriterion sc = predicate.make(size);
        const std::uint64_t ops =
            (std::string(kind) == "linear" && size >= 10000) ? 200 : 2000;
        const std::uint64_t before = store->match_probes();
        const auto start = Clock::now();
        for (std::uint64_t i = 0; i < ops; ++i) {
          volatile bool hit = store->find(sc).has_value();
          (void)hit;
        }
        const auto elapsed = Clock::now() - start;
        const double ns_per_op =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                    .count()) /
            static_cast<double>(ops);
        const std::uint64_t probes_per_op =
            (store->match_probes() - before) / ops;

        std::printf("%-8s %-9s %6lld | %8.0fns %12llu\n", kind,
                    predicate.name, static_cast<long long>(size), ns_per_op,
                    static_cast<unsigned long long>(probes_per_op));

        const std::string config = std::string(kind) + "/" + predicate.name +
                                   "/size=" + std::to_string(size);
        result_line("query", config, ops, ns_per_op, 0, 0);
        JsonLine("query_probes")
            .field("config", config)
            .field("ops", ops)
            .field("probes_per_op", probes_per_op)
            .emit();
      }
    }
  }

  std::printf(
      "\nEvery predicate's match region sits at the end of the age order, so\n"
      "the linear spec pays ~size probes while the planner walks only the\n"
      "region (1 probe for descending top-1). probes/op rows are gated.\n");
  return 0;
}
