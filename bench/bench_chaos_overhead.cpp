// Chaos overhead: what fault tolerance costs when faults actually happen.
//
// Runs one fixed robust workload twice — fault-free, and under a fixed
// seeded ChaosSchedule (crashes with recovery, drop windows, delay windows)
// — and compares total message cost and total work. The inflation factors
// quantify the price of retransmissions, robust-op retries, duplicate
// suppression and state-transfer traffic; the run aborts if either history
// violates the Section 2 axioms, so the numbers are only ever reported for
// semantically sound executions. Emits one JSON line for dashboards.
#include <cinttypes>

#include "bench/bench_util.hpp"
#include "paso/fault_injector.hpp"
#include "semantics/checker.hpp"

using namespace paso;
using namespace paso::bench;

namespace {

constexpr std::size_t kMachines = 6;
constexpr std::uint32_t kDriver = 5;
constexpr std::uint64_t kScheduleSeed = 42;

struct Totals {
  double msg_cost = 0;
  double work = 0;
  double duration = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t crashes = 0;
  std::size_t inflight = 0;
  bool sound = false;
};

Totals run_workload(bool with_chaos) {
  ClusterConfig cfg;
  cfg.machines = kMachines;
  cfg.lambda = 2;
  cfg.vsync.retransmit_timeout = 300;
  cfg.runtime.op_deadline = 4000;
  cfg.runtime.retry_backoff = 500;
  cfg.runtime.pessimistic_timeouts = true;
  Cluster cluster(TaskCluster::schema(), cfg);
  cluster.assign_basic_support();

  ChaosSchedule::GenOptions gen;
  gen.horizon = 12000;
  gen.detection_delay = cluster.groups().options().failure_detection_delay;
  gen.immune = {kDriver};
  ChaosEngine engine(
      cluster, ChaosSchedule::generate(kScheduleSeed, kMachines, gen));
  if (with_chaos) engine.start();

  Rng rng(7);  // same op sequence in both runs
  const ProcessId driver = cluster.process(MachineId{kDriver});
  PasoRuntime& home = cluster.runtime(MachineId{kDriver});
  for (int round = 0; round < 120; ++round) {
    const std::int64_t key = static_cast<std::int64_t>(rng.index(16));
    const double dice = rng.uniform01();
    if (dice < 0.5) {
      home.insert_robust(driver, TaskCluster::tuple(key));
    } else if (dice < 0.8) {
      home.read_robust(driver, TaskCluster::by_key(key), [](OpReport) {});
    } else {
      home.read_del_robust(driver, TaskCluster::by_key(key), [](OpReport) {});
    }
    // Pace the workload below bus saturation: the serializing bus otherwise
    // backs up until latency exceeds the retry backoff and the fault-free
    // baseline fills with retry traffic, drowning the signal.
    cluster.settle_for(400);
  }
  cluster.settle_for(12000);
  cluster.settle();

  Totals t;
  t.msg_cost = cluster.ledger().total_msg_cost();
  t.work = cluster.ledger().total_work();
  t.duration = cluster.simulator().now();
  t.retransmits = cluster.groups().retransmits();
  t.crashes = engine.crashes();
  for (std::uint32_t m = 0; m < kMachines; ++m) {
    t.retries += cluster.runtime(MachineId{m}).retries();
    t.timeouts += cluster.runtime(MachineId{m}).timeouts();
    t.inflight += cluster.runtime(MachineId{m}).inflight();
    t.duplicates += cluster.server(MachineId{m}).duplicates_refused();
  }
  t.sound = semantics::check_history(cluster.history(), cluster.run_context())
                .ok();
  return t;
}

}  // namespace

int main() {
  print_header("Chaos overhead: msg-cost / work inflation under faults");

  const Totals clean = run_workload(false);
  const Totals chaos = run_workload(true);

  std::printf("%12s | %12s %12s %8s %8s %8s %6s\n", "run", "msg cost",
              "work", "rexmit", "retries", "dups", "sound");
  print_rule();
  std::printf("%12s | %12.0f %12.0f %8" PRIu64 " %8" PRIu64 " %8" PRIu64
              " %6s\n",
              "fault-free", clean.msg_cost, clean.work, clean.retransmits,
              clean.retries, clean.duplicates, clean.sound ? "yes" : "NO");
  std::printf("%12s | %12.0f %12.0f %8" PRIu64 " %8" PRIu64 " %8" PRIu64
              " %6s\n",
              "chaos", chaos.msg_cost, chaos.work, chaos.retransmits,
              chaos.retries, chaos.duplicates, chaos.sound ? "yes" : "NO");

  const double msg_inflation =
      clean.msg_cost > 0 ? chaos.msg_cost / clean.msg_cost : 0;
  const double work_inflation = clean.work > 0 ? chaos.work / clean.work : 0;
  std::printf(
      "\nschedule seed %" PRIu64 ": %" PRIu64
      " crashes applied; msg-cost x%.2f, work x%.2f\n",
      kScheduleSeed, chaos.crashes, msg_inflation, work_inflation);
  std::printf(
      "The overhead is retransmissions into drop windows, robust-op\n"
      "retries across outages, and the state transfers behind each\n"
      "recovery; duplicate suppression keeps the retries harmless.\n");

  result_line("chaos_overhead", "fault-free", 1, 0, clean.msg_cost, 0);
  result_line("chaos_overhead", "chaos", 1, 0, chaos.msg_cost, 0);
  JsonLine json("chaos_overhead_detail");
  json.field("seed", kScheduleSeed)
      .field("clean_msg_cost", clean.msg_cost)
      .field("clean_work", clean.work)
      .field("chaos_msg_cost", chaos.msg_cost)
      .field("chaos_work", chaos.work)
      .field("msg_inflation", msg_inflation)
      .field("work_inflation", work_inflation)
      .field("crashes", chaos.crashes)
      .field("retransmits", chaos.retransmits)
      .field("retries", chaos.retries)
      .field("timeouts", chaos.timeouts)
      .field("duplicates_refused", chaos.duplicates)
      .field("sound", std::string(clean.sound && chaos.sound ? "true"
                                                             : "false"));
  json.emit();

  if (!clean.sound || !chaos.sound) {
    std::printf("!! axiom violation — numbers above are not meaningful\n");
    return 1;
  }
  if (clean.inflight != 0 || chaos.inflight != 0) {
    std::printf("!! operations still in flight after settle\n");
    return 1;
  }
  if (chaos.crashes == 0) {
    std::printf("!! chaos schedule applied no crashes\n");
    return 1;
  }
  return 0;
}
