// Ablation — read-group rotation for load balancing.
//
// The paper optimizes total work and message cost and explicitly defers
// response time to a load-balancing scheme [13]. This bench implements the
// obvious one — rotate the read group across the write group's members —
// and measures the per-server work distribution of a read-heavy workload:
// with the static basic-support read group, the lambda+1 basic members
// absorb all query work; with rotation, work spreads across every replica
// at identical total cost.
//
// The second experiment makes the workload skewed: a background reader
// keeps hammering the static basic-support pair while the measured reader
// uses either blind rotation (spreads its reads uniformly, hot members
// included) or sticky two-choice rotation (RuntimeConfig::sticky_rotation:
// anchor on a window, probe one alternative per read, move only when the
// probe is measurably lighter). Sticky steers the measured reads away from
// the hot pair, so the most-loaded replica ends up strictly lighter.
#include "bench/bench_util.hpp"

using namespace paso;
using namespace paso::bench;

namespace {

struct Distribution {
  Cost total = 0;
  Cost max_server = 0;
  double imbalance = 0;  // max / mean over write-group members
};

Distribution run(bool rotate, std::size_t wg_size) {
  ClusterConfig config;
  config.machines = 10;
  config.lambda = 1;
  config.runtime.rotate_read_groups = rotate;
  Cluster cluster(TaskCluster::schema(), config);
  cluster.assign_basic_support();
  for (std::uint32_t m = 0; m < wg_size; ++m) {
    cluster.runtime(MachineId{m}).request_join(ClassId{0});
  }
  cluster.settle();
  const ProcessId writer = cluster.process(MachineId{0});
  cluster.insert_sync(writer, TaskCluster::tuple(1));
  cluster.ledger().reset();

  const ProcessId reader = cluster.process(MachineId{9});
  for (int i = 0; i < 300; ++i) {
    cluster.read_sync(reader, TaskCluster::by_key(1));
  }

  Distribution dist;
  Cost sum = 0;
  for (std::uint32_t m = 0; m < wg_size; ++m) {
    const Cost w = cluster.ledger().work_of(MachineId{m});
    sum += w;
    dist.max_server = std::max(dist.max_server, w);
  }
  dist.total = sum;
  dist.imbalance = dist.max_server / (sum / static_cast<Cost>(wg_size));
  return dist;
}

struct SkewResult {
  Cost max_server = 0;  // most-loaded write-group member
  Cost hot_pair = 0;    // the basic-support pair the background load targets
};

SkewResult run_skewed(bool sticky) {
  constexpr std::size_t kWg = 6;
  ClusterConfig config;
  config.machines = 10;
  config.lambda = 1;
  config.runtime.rotate_read_groups = true;
  Cluster cluster(TaskCluster::schema(), config);
  cluster.assign_basic_support();
  for (std::uint32_t m = 0; m < kWg; ++m) {
    cluster.runtime(MachineId{m}).request_join(ClassId{0});
  }
  cluster.settle();
  // Background reader: static read group, i.e. every one of its reads lands
  // on the basic-support pair {0, 1}.
  cluster.runtime(MachineId{8}).mutable_config().rotate_read_groups = false;
  cluster.runtime(MachineId{9}).mutable_config().sticky_rotation = sticky;

  cluster.insert_sync(cluster.process(MachineId{0}), TaskCluster::tuple(1));
  cluster.ledger().reset();

  const ProcessId hot = cluster.process(MachineId{8});
  const ProcessId measured = cluster.process(MachineId{9});
  for (int i = 0; i < 150; ++i) {
    // 2:1 skew, interleaved so the load signal builds up as sticky adapts.
    cluster.read_sync(hot, TaskCluster::by_key(1));
    cluster.read_sync(hot, TaskCluster::by_key(1));
    cluster.read_sync(measured, TaskCluster::by_key(1));
  }

  SkewResult out;
  for (std::uint32_t m = 0; m < kWg; ++m) {
    const Cost w = cluster.ledger().work_of(MachineId{m});
    out.max_server = std::max(out.max_server, w);
    if (m < 2) out.hot_pair = std::max(out.hot_pair, w);
  }
  return out;
}

}  // namespace

int main() {
  print_header("Ablation: read-group rotation (300 remote reads, lambda=1, "
               "rg size 2)");
  std::printf("%6s | %12s %12s %10s | %12s %12s %10s\n", "|wg|",
              "static: work", "max server", "imbalance", "rotate: work",
              "max server", "imbalance");
  print_rule();
  for (const std::size_t wg : {2u, 4u, 6u, 8u}) {
    const Distribution fixed = run(false, wg);
    const Distribution rotated = run(true, wg);
    std::printf("%6zu | %12.0f %12.0f %10.2f | %12.0f %12.0f %10.2f\n", wg,
                fixed.total, fixed.max_server, fixed.imbalance,
                rotated.total, rotated.max_server, rotated.imbalance);
    JsonLine("load_balance")
        .field("config", "wg=" + std::to_string(wg) + "/rotate")
        .field("ops", std::uint64_t{300})
        .field("ns_per_op", 0.0)
        .field("msg_cost", 0.0)
        .field("bytes", std::uint64_t{0})
        .field("work", rotated.max_server)
        .field("imbalance", rotated.imbalance)
        .emit();
  }
  std::printf(
      "\nTotal work is identical (the read group size is still lambda+1);\n"
      "rotation divides the per-server load by |wg|/(lambda+1) — imbalance\n"
      "drops from |wg|/(lambda+1) to ~1.0. Response time follows the busiest\n"
      "server on a loaded system, so this is the free latency win the paper\n"
      "points to via [13].\n");

  print_header("Skewed load: blind rotation vs sticky two-choice "
               "(background reader pins the basic pair, |wg| = 6)");
  const SkewResult blind = run_skewed(false);
  const SkewResult sticky = run_skewed(true);
  std::printf("%8s | %12s %12s\n", "variant", "max server", "hot pair");
  print_rule();
  std::printf("%8s | %12.0f %12.0f\n", "rotate", blind.max_server,
              blind.hot_pair);
  std::printf("%8s | %12.0f %12.0f\n", "sticky", sticky.max_server,
              sticky.hot_pair);
  result_line("load_balance", "wg=6/skew=rotate", 450, 0, 0, 0,
              blind.max_server);
  result_line("load_balance", "wg=6/skew=sticky", 450, 0, 0, 0,
              sticky.max_server);
  PASO_REQUIRE(sticky.max_server < blind.max_server,
               "sticky rotation must cut the max-replica load under skew");
  std::printf(
      "\nBlind rotation spreads the measured reads uniformly — a fraction\n"
      "of them keeps landing on the already-hot basic pair, so the busiest\n"
      "replica carries background plus rotated load. Sticky two-choice\n"
      "reads the per-replica work counters and anchors the read group away\n"
      "from the hot pair, cutting the max-replica load.\n");
  return 0;
}
