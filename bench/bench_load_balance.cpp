// Ablation — read-group rotation for load balancing.
//
// The paper optimizes total work and message cost and explicitly defers
// response time to a load-balancing scheme [13]. This bench implements the
// obvious one — rotate the read group across the write group's members —
// and measures the per-server work distribution of a read-heavy workload:
// with the static basic-support read group, the lambda+1 basic members
// absorb all query work; with rotation, work spreads across every replica
// at identical total cost.
#include "bench/bench_util.hpp"

using namespace paso;
using namespace paso::bench;

namespace {

struct Distribution {
  Cost total = 0;
  Cost max_server = 0;
  double imbalance = 0;  // max / mean over write-group members
};

Distribution run(bool rotate, std::size_t wg_size) {
  ClusterConfig config;
  config.machines = 10;
  config.lambda = 1;
  config.runtime.rotate_read_groups = rotate;
  Cluster cluster(TaskCluster::schema(), config);
  cluster.assign_basic_support();
  for (std::uint32_t m = 0; m < wg_size; ++m) {
    cluster.runtime(MachineId{m}).request_join(ClassId{0});
  }
  cluster.settle();
  const ProcessId writer = cluster.process(MachineId{0});
  cluster.insert_sync(writer, TaskCluster::tuple(1));
  cluster.ledger().reset();

  const ProcessId reader = cluster.process(MachineId{9});
  for (int i = 0; i < 300; ++i) {
    cluster.read_sync(reader, TaskCluster::by_key(1));
  }

  Distribution dist;
  Cost sum = 0;
  for (std::uint32_t m = 0; m < wg_size; ++m) {
    const Cost w = cluster.ledger().work_of(MachineId{m});
    sum += w;
    dist.max_server = std::max(dist.max_server, w);
  }
  dist.total = sum;
  dist.imbalance = dist.max_server / (sum / static_cast<Cost>(wg_size));
  return dist;
}

}  // namespace

int main() {
  print_header("Ablation: read-group rotation (300 remote reads, lambda=1, "
               "rg size 2)");
  std::printf("%6s | %12s %12s %10s | %12s %12s %10s\n", "|wg|",
              "static: work", "max server", "imbalance", "rotate: work",
              "max server", "imbalance");
  print_rule();
  for (const std::size_t wg : {2u, 4u, 6u, 8u}) {
    const Distribution fixed = run(false, wg);
    const Distribution rotated = run(true, wg);
    std::printf("%6zu | %12.0f %12.0f %10.2f | %12.0f %12.0f %10.2f\n", wg,
                fixed.total, fixed.max_server, fixed.imbalance,
                rotated.total, rotated.max_server, rotated.imbalance);
    JsonLine("load_balance")
        .field("config", "wg=" + std::to_string(wg) + "/rotate")
        .field("ops", std::uint64_t{300})
        .field("ns_per_op", 0.0)
        .field("msg_cost", 0.0)
        .field("bytes", std::uint64_t{0})
        .field("imbalance", rotated.imbalance)
        .emit();
  }
  std::printf(
      "\nTotal work is identical (the read group size is still lambda+1);\n"
      "rotation divides the per-server load by |wg|/(lambda+1) — imbalance\n"
      "drops from |wg|/(lambda+1) to ~1.0. Response time follows the busiest\n"
      "server on a loaded system, so this is the free latency win the paper\n"
      "points to via [13].\n");
  return 0;
}
