// Property test: state-transfer round-trips across every store family.
//
// A seeded random workload (unique-key inserts and targeted removals) runs
// against four classes, one per store structure — HashStore, OrderedStore,
// IndexedStore and CompositeStore. The properties checked, per family:
//
//   1. capture_state's declared StateBlob::bytes equals the documented
//      accounting — store payload (16-byte header + per-object wire size +
//      8-byte age) + 8 for next_age + 16 per applied-insert identity (the
//      workload's plain read&dels carry no dedup token, so the remove cache
//      stays empty) — recomputed here from an independent model of the
//      live set.
//   2. A replica rebuilt through the real crash -> state transfer -> install
//      path answers every probe identically to the donor.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "paso/cluster.hpp"
#include "semantics/checker.hpp"
#include "storage/composite_store.hpp"
#include "storage/hash_store.hpp"
#include "storage/indexed_store.hpp"
#include "storage/ordered_store.hpp"

namespace paso {
namespace {

// Five families, five distinct signatures so obj-clss and sc-list stay
// unambiguous: every tuple and every criterion names exactly one class. The
// fifth ("rich") runs the full query engine — ordered IndexedStore with
// sorted twins on both fields — so its blobs carry state that must rebuild
// hash buckets, sorted indexes and cardinality stats on install.
Schema family_schema() {
  return Schema({
      ClassSpec{"hash", {FieldType::kInt, FieldType::kText}, 0, 1},
      ClassSpec{"ordered", {FieldType::kReal, FieldType::kInt}, 0, 1},
      ClassSpec{"indexed", {FieldType::kInt, FieldType::kInt}, 0, 1},
      ClassSpec{"composite", {FieldType::kReal, FieldType::kText}, 0, 1},
      ClassSpec{"rich", {FieldType::kText, FieldType::kInt}, 0, 1},
  });
}

MemoryServer::ClassStoreFactory family_factory(const Schema& schema) {
  return [&schema](ClassId cls) -> std::unique_ptr<storage::ObjectStore> {
    switch (schema.locate(cls).first) {
      case 0:
        return std::make_unique<storage::HashStore>(0);
      case 1:
        return std::make_unique<storage::OrderedStore>(0);
      case 2:
        return std::make_unique<storage::IndexedStore>(
            std::vector<std::size_t>{0, 1});
      case 3:
        return std::make_unique<storage::CompositeStore>(0);
      default:
        return std::make_unique<storage::IndexedStore>(
            std::vector<std::size_t>{0, 1},
            storage::IndexedStore::Options{true});
    }
  };
}

// One family's workload model: what the replicated class must now contain.
struct FamilyModel {
  std::size_t spec = 0;
  std::int64_t next_key = 0;
  std::vector<std::int64_t> live_keys;
  std::map<std::int64_t, std::size_t> live_wire_bytes;  // key -> wire size
  std::uint64_t inserts = 0;
  std::uint64_t removes = 0;
};

Tuple make_tuple(std::size_t spec, std::int64_t key,
                 const std::string& payload) {
  switch (spec) {
    case 0:
      return {Value{key}, Value{payload}};
    case 1:
      return {Value{static_cast<double>(key)}, Value{key}};
    case 2:
      return {Value{key}, Value{static_cast<std::int64_t>(payload.size())}};
    case 3:
      return {Value{static_cast<double>(key)}, Value{payload}};
    default:
      // Zero-padded text keys: lexicographic order == numeric order, so the
      // rich family's range and prefix probes below stay meaningful.
      return {Value{(key >= 0 && key < 10 ? "k0" : "k") + std::to_string(key)},
              Value{key}};
  }
}

// Unambiguous probe for one key of one family (see family_schema).
SearchCriterion key_criterion(std::size_t spec, std::int64_t key) {
  switch (spec) {
    case 0:
      return criterion(Exact{Value{key}}, TypedAny{FieldType::kText});
    case 1:
      return criterion(Exact{Value{static_cast<double>(key)}},
                       TypedAny{FieldType::kInt});
    case 2:
      return criterion(Exact{Value{key}}, TypedAny{FieldType::kInt});
    case 3:
      return criterion(Exact{Value{static_cast<double>(key)}},
                       TypedAny{FieldType::kText});
    default:
      return criterion(TypedAny{FieldType::kText}, Exact{Value{key}});
  }
}

std::size_t tuple_wire_bytes(const Tuple& tuple) {
  std::size_t total = 16;  // the object identity
  for (const Value& field : tuple) total += wire_size(field);
  return total;
}

TEST(StateBlobPropertyTest, BlobAccountingAndRoundTripAcrossFamilies) {
  const std::uint64_t kSeeds[] = {11, 427, 90210};
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);

    Schema schema = family_schema();
    ClusterConfig cfg;
    cfg.machines = 5;
    cfg.lambda = 1;
    cfg.store_factory = family_factory(schema);
    // Half the seeds run with persistence on: the blob then carries an
    // 8-byte lsn stamp on top of the baseline accounting.
    cfg.persistence.enabled = (seed % 2 == 1);
    Cluster cluster(family_schema(), cfg);
    cluster.assign_basic_support();
    const ProcessId driver = cluster.process(MachineId{4});

    std::vector<FamilyModel> families(5);
    for (std::size_t spec = 0; spec < families.size(); ++spec) {
      families[spec].spec = spec;
    }

    // Random workload: mostly inserts (unique keys), some removals of a
    // known live key — so the model below tracks the exact live set.
    const std::size_t ops = 60 + rng.index(40);
    for (std::size_t i = 0; i < ops; ++i) {
      FamilyModel& family = families[rng.index(families.size())];
      if (!family.live_keys.empty() && rng.chance(0.25)) {
        const std::size_t pos = rng.index(family.live_keys.size());
        const std::int64_t key = family.live_keys[pos];
        const auto removed = cluster.read_del_sync(
            driver, key_criterion(family.spec, key));
        ASSERT_TRUE(removed.has_value());
        family.live_keys.erase(family.live_keys.begin() + pos);
        family.live_wire_bytes.erase(key);
        ++family.removes;
      } else {
        const std::int64_t key = family.next_key++;
        const std::string payload(1 + rng.index(12), 'x');
        const Tuple tuple = make_tuple(family.spec, key, payload);
        ASSERT_TRUE(cluster.insert_sync(driver, tuple));
        family.live_keys.push_back(key);
        family.live_wire_bytes[key] = tuple_wire_bytes(tuple);
        ++family.inserts;
      }
    }

    // Property 1: declared blob bytes == the documented accounting.
    for (const FamilyModel& family : families) {
      const auto cls = schema.classify(make_tuple(family.spec, -1, "p"));
      ASSERT_TRUE(cls.has_value());
      const MachineId donor_id = cluster.basic_support(*cls).front();
      MemoryServer& donor = cluster.server(donor_id);
      ASSERT_EQ(donor.live_count(*cls), family.live_keys.size());

      std::size_t store_bytes = 16;  // store header
      for (const auto& [key, bytes] : family.live_wire_bytes) {
        store_bytes += bytes + 8;  // object wire size + its age
      }
      EXPECT_EQ(donor.class_state_bytes(*cls), store_bytes)
          << "family " << family.spec;

      const vsync::StateBlob blob =
          donor.capture_state(schema.group_name(*cls));
      // Plain (non-robust) read&del ships token 0, so these removals leave
      // no remove-cache entries; only insert identities pad the blob.
      std::size_t expected = store_bytes + 8 + 16 * family.inserts;
      if (cluster.persistence_enabled()) expected += 8;  // the lsn stamp
      EXPECT_EQ(blob.bytes, expected) << "family " << family.spec;
    }

    // Property 2: rebuild each class's second replica through the real
    // crash -> transfer -> install path; it must answer every probe (live
    // and removed keys alike) exactly as the donor does.
    for (const FamilyModel& family : families) {
      const auto cls = schema.classify(make_tuple(family.spec, -1, "p"));
      const auto support = cluster.basic_support(*cls);
      const MachineId donor_id = support[0];
      const MachineId joiner_id = support[1];
      cluster.crash(joiner_id);
      cluster.settle_for(300);
      cluster.recover(joiner_id);
      cluster.settle();

      MemoryServer& donor = cluster.server(donor_id);
      MemoryServer& joiner = cluster.server(joiner_id);
      ASSERT_TRUE(joiner.supports(*cls)) << "family " << family.spec;
      EXPECT_EQ(joiner.live_count(*cls), family.live_keys.size());
      EXPECT_EQ(joiner.class_state_bytes(*cls),
                donor.class_state_bytes(*cls));
      for (std::int64_t key = 0; key < family.next_key; ++key) {
        const SearchCriterion sc = key_criterion(family.spec, key);
        const auto from_donor = donor.local_find(*cls, sc);
        const auto from_joiner = joiner.local_find(*cls, sc);
        ASSERT_EQ(from_donor.has_value(), from_joiner.has_value())
            << "family " << family.spec << " key " << key;
        if (from_donor) {
          EXPECT_EQ(from_donor->id, from_joiner->id);
          EXPECT_TRUE(from_donor->fields == from_joiner->fields);
        }
      }
      if (family.spec == 4) {
        // The rich family's installed replica must have rebuilt its sorted
        // twins and stats, not just the age backbone: query-engine probes
        // (prefix walk, text range, ranked read) answer like the donor.
        std::vector<SearchCriterion> probes;
        probes.push_back(
            criterion(TextPrefix{"k0"}, TypedAny{FieldType::kInt}));
        probes.push_back(criterion(
            range_between(Value{std::string{"k02"}}, Value{std::string{"k2"}},
                          /*lo_exclusive=*/true),
            TypedAny{FieldType::kInt}));
        probes.push_back(ranked(
            criterion(AnyField{}, range_at_least(Value{std::int64_t{3}})),
            TopK{1, 2, /*descending=*/true}));
        probes.push_back(ranked(criterion(AnyField{}, AnyField{}),
                                TopK{0, 3, /*descending=*/false}));
        for (std::size_t i = 0; i < probes.size(); ++i) {
          const auto from_donor = donor.local_find(*cls, probes[i]);
          const auto from_joiner = joiner.local_find(*cls, probes[i]);
          ASSERT_EQ(from_donor.has_value(), from_joiner.has_value())
              << "rich probe " << i;
          if (from_donor) {
            EXPECT_EQ(from_donor->id, from_joiner->id) << "rich probe " << i;
          }
        }
      }
    }

    const auto check =
        semantics::check_history(cluster.history(), cluster.run_context());
    EXPECT_TRUE(check.ok()) << (check.violations.empty()
                                    ? ""
                                    : check.violations.front());
  }
}

// ---------------------------------------------------------------------------
// Store-level property: an ordered IndexedStore rebuilt from its own
// snapshot (the payload a state-transfer blob carries) is structurally
// identical — same cardinality stats per index, same plan access for any
// criterion, same answer to random query-engine criteria.

TEST(StateBlobPropertyTest, OrderedIndexSnapshotRebuildsIdentically) {
  for (const std::uint64_t seed : {3ull, 71ull, 9001ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    storage::IndexedStore donor({0, 1}, storage::IndexedStore::Options{true});
    std::uint64_t age = 0;
    for (int i = 0; i < 80; ++i) {
      PasoObject object;
      object.id = ObjectId{ProcessId{MachineId{0}, 0}, age};
      object.fields = {Value{static_cast<std::int64_t>(rng.index(10))},
                       Value{std::string(1, 'a' + rng.index(5))}};
      donor.store(std::move(object), age);
      ++age;
      if (rng.chance(0.3)) {
        donor.remove(criterion(
            Exact{Value{static_cast<std::int64_t>(rng.index(10))}},
            AnyField{}));
      }
    }

    storage::IndexedStore joiner({0, 1},
                                 storage::IndexedStore::Options{true});
    joiner.load(donor.snapshot());

    EXPECT_EQ(joiner.index_stats(), donor.index_stats());
    for (int i = 0; i < 40; ++i) {
      SearchCriterion sc;
      const std::int64_t lo = static_cast<std::int64_t>(rng.index(10));
      switch (rng.index(4)) {
        case 0:
          sc = criterion(range_between(Value{lo}, Value{lo + 3},
                                       rng.chance(0.5), rng.chance(0.5)),
                         AnyField{});
          break;
        case 1:
          sc = criterion(AnyField{},
                         TextPrefix{std::string(1, 'a' + rng.index(5))});
          break;
        case 2:
          sc = ranked(criterion(AnyField{}, AnyField{}),
                      TopK{rng.index(2),
                           static_cast<std::uint32_t>(1 + rng.index(3)),
                           rng.chance(0.5)});
          break;
        default:
          sc = criterion(Exact{Value{lo}}, AnyField{});
          break;
      }
      EXPECT_EQ(joiner.plan(sc).access, donor.plan(sc).access) << "probe " << i;
      const auto from_donor = donor.find(sc);
      const auto from_joiner = joiner.find(sc);
      ASSERT_EQ(from_donor.has_value(), from_joiner.has_value())
          << "probe " << i;
      if (from_donor) EXPECT_EQ(from_donor->id, from_joiner->id);
    }
  }
}

}  // namespace
}  // namespace paso
