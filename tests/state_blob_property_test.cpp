// Property test: state-transfer round-trips across every store family.
//
// A seeded random workload (unique-key inserts and targeted removals) runs
// against four classes, one per store structure — HashStore, OrderedStore,
// IndexedStore and CompositeStore. The properties checked, per family:
//
//   1. capture_state's declared StateBlob::bytes equals the documented
//      accounting — store payload (16-byte header + per-object wire size +
//      8-byte age) + 8 for next_age + 16 per applied-insert identity (the
//      workload's plain read&dels carry no dedup token, so the remove cache
//      stays empty) — recomputed here from an independent model of the
//      live set.
//   2. A replica rebuilt through the real crash -> state transfer -> install
//      path answers every probe identically to the donor.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "paso/cluster.hpp"
#include "semantics/checker.hpp"
#include "storage/composite_store.hpp"
#include "storage/hash_store.hpp"
#include "storage/indexed_store.hpp"
#include "storage/ordered_store.hpp"

namespace paso {
namespace {

// Four families, four distinct signatures so obj-clss and sc-list stay
// unambiguous: every tuple and every criterion names exactly one class.
Schema family_schema() {
  return Schema({
      ClassSpec{"hash", {FieldType::kInt, FieldType::kText}, 0, 1},
      ClassSpec{"ordered", {FieldType::kReal, FieldType::kInt}, 0, 1},
      ClassSpec{"indexed", {FieldType::kInt, FieldType::kInt}, 0, 1},
      ClassSpec{"composite", {FieldType::kReal, FieldType::kText}, 0, 1},
  });
}

MemoryServer::ClassStoreFactory family_factory(const Schema& schema) {
  return [&schema](ClassId cls) -> std::unique_ptr<storage::ObjectStore> {
    switch (schema.locate(cls).first) {
      case 0:
        return std::make_unique<storage::HashStore>(0);
      case 1:
        return std::make_unique<storage::OrderedStore>(0);
      case 2:
        return std::make_unique<storage::IndexedStore>(
            std::vector<std::size_t>{0, 1});
      default:
        return std::make_unique<storage::CompositeStore>(0);
    }
  };
}

// One family's workload model: what the replicated class must now contain.
struct FamilyModel {
  std::size_t spec = 0;
  std::int64_t next_key = 0;
  std::vector<std::int64_t> live_keys;
  std::map<std::int64_t, std::size_t> live_wire_bytes;  // key -> wire size
  std::uint64_t inserts = 0;
  std::uint64_t removes = 0;
};

Tuple make_tuple(std::size_t spec, std::int64_t key,
                 const std::string& payload) {
  switch (spec) {
    case 0:
      return {Value{key}, Value{payload}};
    case 1:
      return {Value{static_cast<double>(key)}, Value{key}};
    case 2:
      return {Value{key}, Value{static_cast<std::int64_t>(payload.size())}};
    default:
      return {Value{static_cast<double>(key)}, Value{payload}};
  }
}

// Unambiguous probe for one key of one family (see family_schema).
SearchCriterion key_criterion(std::size_t spec, std::int64_t key) {
  switch (spec) {
    case 0:
      return criterion(Exact{Value{key}}, TypedAny{FieldType::kText});
    case 1:
      return criterion(Exact{Value{static_cast<double>(key)}},
                       TypedAny{FieldType::kInt});
    case 2:
      return criterion(Exact{Value{key}}, TypedAny{FieldType::kInt});
    default:
      return criterion(Exact{Value{static_cast<double>(key)}},
                       TypedAny{FieldType::kText});
  }
}

std::size_t tuple_wire_bytes(const Tuple& tuple) {
  std::size_t total = 16;  // the object identity
  for (const Value& field : tuple) total += wire_size(field);
  return total;
}

TEST(StateBlobPropertyTest, BlobAccountingAndRoundTripAcrossFamilies) {
  const std::uint64_t kSeeds[] = {11, 427, 90210};
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);

    Schema schema = family_schema();
    ClusterConfig cfg;
    cfg.machines = 5;
    cfg.lambda = 1;
    cfg.store_factory = family_factory(schema);
    // Half the seeds run with persistence on: the blob then carries an
    // 8-byte lsn stamp on top of the baseline accounting.
    cfg.persistence.enabled = (seed % 2 == 1);
    Cluster cluster(family_schema(), cfg);
    cluster.assign_basic_support();
    const ProcessId driver = cluster.process(MachineId{4});

    std::vector<FamilyModel> families(4);
    for (std::size_t spec = 0; spec < 4; ++spec) families[spec].spec = spec;

    // Random workload: mostly inserts (unique keys), some removals of a
    // known live key — so the model below tracks the exact live set.
    const std::size_t ops = 60 + rng.index(40);
    for (std::size_t i = 0; i < ops; ++i) {
      FamilyModel& family = families[rng.index(families.size())];
      if (!family.live_keys.empty() && rng.chance(0.25)) {
        const std::size_t pos = rng.index(family.live_keys.size());
        const std::int64_t key = family.live_keys[pos];
        const auto removed = cluster.read_del_sync(
            driver, key_criterion(family.spec, key));
        ASSERT_TRUE(removed.has_value());
        family.live_keys.erase(family.live_keys.begin() + pos);
        family.live_wire_bytes.erase(key);
        ++family.removes;
      } else {
        const std::int64_t key = family.next_key++;
        const std::string payload(1 + rng.index(12), 'x');
        const Tuple tuple = make_tuple(family.spec, key, payload);
        ASSERT_TRUE(cluster.insert_sync(driver, tuple));
        family.live_keys.push_back(key);
        family.live_wire_bytes[key] = tuple_wire_bytes(tuple);
        ++family.inserts;
      }
    }

    // Property 1: declared blob bytes == the documented accounting.
    for (const FamilyModel& family : families) {
      const auto cls = schema.classify(make_tuple(family.spec, -1, "p"));
      ASSERT_TRUE(cls.has_value());
      const MachineId donor_id = cluster.basic_support(*cls).front();
      MemoryServer& donor = cluster.server(donor_id);
      ASSERT_EQ(donor.live_count(*cls), family.live_keys.size());

      std::size_t store_bytes = 16;  // store header
      for (const auto& [key, bytes] : family.live_wire_bytes) {
        store_bytes += bytes + 8;  // object wire size + its age
      }
      EXPECT_EQ(donor.class_state_bytes(*cls), store_bytes)
          << "family " << family.spec;

      const vsync::StateBlob blob =
          donor.capture_state(schema.group_name(*cls));
      // Plain (non-robust) read&del ships token 0, so these removals leave
      // no remove-cache entries; only insert identities pad the blob.
      std::size_t expected = store_bytes + 8 + 16 * family.inserts;
      if (cluster.persistence_enabled()) expected += 8;  // the lsn stamp
      EXPECT_EQ(blob.bytes, expected) << "family " << family.spec;
    }

    // Property 2: rebuild each class's second replica through the real
    // crash -> transfer -> install path; it must answer every probe (live
    // and removed keys alike) exactly as the donor does.
    for (const FamilyModel& family : families) {
      const auto cls = schema.classify(make_tuple(family.spec, -1, "p"));
      const auto support = cluster.basic_support(*cls);
      const MachineId donor_id = support[0];
      const MachineId joiner_id = support[1];
      cluster.crash(joiner_id);
      cluster.settle_for(300);
      cluster.recover(joiner_id);
      cluster.settle();

      MemoryServer& donor = cluster.server(donor_id);
      MemoryServer& joiner = cluster.server(joiner_id);
      ASSERT_TRUE(joiner.supports(*cls)) << "family " << family.spec;
      EXPECT_EQ(joiner.live_count(*cls), family.live_keys.size());
      EXPECT_EQ(joiner.class_state_bytes(*cls),
                donor.class_state_bytes(*cls));
      for (std::int64_t key = 0; key < family.next_key; ++key) {
        const SearchCriterion sc = key_criterion(family.spec, key);
        const auto from_donor = donor.local_find(*cls, sc);
        const auto from_joiner = joiner.local_find(*cls, sc);
        ASSERT_EQ(from_donor.has_value(), from_joiner.has_value())
            << "family " << family.spec << " key " << key;
        if (from_donor) {
          EXPECT_EQ(from_donor->id, from_joiner->id);
          EXPECT_TRUE(from_donor->fields == from_joiner->fields);
        }
      }
    }

    const auto check =
        semantics::check_history(cluster.history(), cluster.run_context());
    EXPECT_TRUE(check.ok()) << (check.violations.empty()
                                    ? ""
                                    : check.violations.front());
  }
}

}  // namespace
}  // namespace paso
