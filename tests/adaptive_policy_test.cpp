// End-to-end tests of the Basic replication policy running inside the live
// system: machines join write groups under read pressure, leave under update
// pressure, and the whole dance stays semantically clean.
#include <gtest/gtest.h>

#include "adaptive/basic_policy.hpp"
#include "semantics/checker.hpp"

namespace paso::adaptive {
namespace {

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 1},
  });
}

Tuple task(std::int64_t key) { return {Value{key}, Value{std::string{"v"}}}; }

SearchCriterion by_key(std::int64_t key) {
  return criterion(Exact{Value{key}}, TypedAny{FieldType::kText});
}

class AdaptivePolicyTest : public ::testing::Test {
 protected:
  AdaptivePolicyTest() : cluster_(task_schema(), config()) {
    cluster_.assign_basic_support();
    install_basic_policies(cluster_, BasicPolicyOptions{8, 1, false});
  }

  static ClusterConfig config() {
    ClusterConfig cfg;
    cfg.machines = 6;
    cfg.lambda = 1;  // basic support {M0, M1} for the single class
    return cfg;
  }

  MachineId outsider() const { return MachineId{4}; }

  Cluster cluster_;
};

TEST_F(AdaptivePolicyTest, ReadPressureTriggersJoin) {
  const ClassId cls{0};
  const ProcessId writer = cluster_.process(MachineId{0});
  ASSERT_TRUE(cluster_.insert_sync(writer, task(1)));

  const ProcessId reader = cluster_.process(outsider());
  EXPECT_FALSE(cluster_.runtime(outsider()).is_member(cls));
  // Each remote read adds rg = lambda+1 = 2 to the counter; K = 8, so the
  // 4th read crosses the threshold and the machine joins.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cluster_.read_sync(reader, by_key(1)).has_value());
  }
  cluster_.settle();
  EXPECT_TRUE(cluster_.runtime(outsider()).is_member(cls));
  // Subsequent reads are local: zero message cost.
  const auto before = cluster_.ledger().snapshot();
  ASSERT_TRUE(cluster_.read_sync(reader, by_key(1)).has_value());
  EXPECT_DOUBLE_EQ(cluster_.ledger().since(before).msg_cost, 0.0);
}

TEST_F(AdaptivePolicyTest, UpdatePressureTriggersLeave) {
  const ClassId cls{0};
  const ProcessId writer = cluster_.process(MachineId{0});
  ASSERT_TRUE(cluster_.insert_sync(writer, task(1)));
  const ProcessId reader = cluster_.process(outsider());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cluster_.read_sync(reader, by_key(1)).has_value());
  }
  cluster_.settle();
  ASSERT_TRUE(cluster_.runtime(outsider()).is_member(cls));

  // A run of updates (served by the outsider as a member) drains the
  // counter from K = 8 to 0; the machine then leaves.
  for (int k = 10; k < 20; ++k) {
    ASSERT_TRUE(cluster_.insert_sync(writer, task(k)));
  }
  cluster_.settle();
  EXPECT_FALSE(cluster_.runtime(outsider()).is_member(cls));
}

TEST_F(AdaptivePolicyTest, BasicSupportNeverLeaves) {
  const ClassId cls{0};
  const ProcessId writer = cluster_.process(MachineId{5});
  for (int k = 0; k < 30; ++k) {
    ASSERT_TRUE(cluster_.insert_sync(writer, task(k)));
  }
  cluster_.settle();
  EXPECT_TRUE(cluster_.runtime(MachineId{0}).is_member(cls));
  EXPECT_TRUE(cluster_.runtime(MachineId{1}).is_member(cls));
}

TEST_F(AdaptivePolicyTest, JoinedReplicaServesConsistentData) {
  const ProcessId writer = cluster_.process(MachineId{0});
  for (int k = 0; k < 10; ++k) {
    ASSERT_TRUE(cluster_.insert_sync(writer, task(k)));
  }
  const ProcessId reader = cluster_.process(outsider());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(cluster_.read_sync(reader, by_key(i)).has_value());
  }
  cluster_.settle();
  ASSERT_TRUE(cluster_.runtime(outsider()).is_member(ClassId{0}));
  // The adaptively joined replica holds the full class state.
  EXPECT_EQ(cluster_.server(outsider()).live_count(ClassId{0}), 10u);
  const auto check = semantics::check_history(cluster_.history());
  EXPECT_TRUE(check.ok()) << check.violations.front();
}

TEST_F(AdaptivePolicyTest, CrashResetsAdaptiveMembership) {
  const ProcessId writer = cluster_.process(MachineId{0});
  ASSERT_TRUE(cluster_.insert_sync(writer, task(1)));
  const ProcessId reader = cluster_.process(outsider());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cluster_.read_sync(reader, by_key(1)).has_value());
  }
  cluster_.settle();
  ASSERT_TRUE(cluster_.runtime(outsider()).is_member(ClassId{0}));

  cluster_.crash(outsider());
  cluster_.settle();
  cluster_.recover(outsider());
  cluster_.settle();
  // Not basic support: the recovered machine stays out until read pressure
  // builds again.
  EXPECT_FALSE(cluster_.runtime(outsider()).is_member(ClassId{0}));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cluster_.read_sync(reader, by_key(1)).has_value());
  }
  cluster_.settle();
  EXPECT_TRUE(cluster_.runtime(outsider()).is_member(ClassId{0}));
}

TEST_F(AdaptivePolicyTest, AdaptiveReplicationReducesTotalWorkOnReadHeavy) {
  // Read-heavy phase from one outsider machine: adaptive join must beat the
  // static configuration on total work. Run the same workload on a static
  // cluster (no policies) and compare ledgers.
  Cluster static_cluster(task_schema(), config());
  static_cluster.assign_basic_support();

  auto run_workload = [](Cluster& cluster) {
    const ProcessId writer = cluster.process(MachineId{0});
    const ProcessId reader = cluster.process(MachineId{4});
    EXPECT_TRUE(cluster.insert_sync(writer, task(1)));
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(cluster.read_sync(reader, by_key(1)).has_value());
    }
    cluster.settle();
    return cluster.ledger().total_work() +
           cluster.ledger().total_msg_cost();
  };

  const Cost adaptive_cost = run_workload(cluster_);
  const Cost static_cost = run_workload(static_cluster);
  EXPECT_LT(adaptive_cost, static_cost / 2);
}

}  // namespace
}  // namespace paso::adaptive
