// ThreadedExecutor: steady_clock timer semantics — ordering, cancel,
// schedule-from-action, stop — the wall-clock half of the Executor seam.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/threaded_executor.hpp"

namespace paso::exec {
namespace {

/// Wait (bounded) until `pred` is true; the executor runs on its own
/// thread, so tests poll rather than pump.
template <typename Pred>
bool eventually(Pred pred, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

TEST(ThreadedExecutor, NowAdvancesMonotonically) {
  ThreadedExecutor exec;
  const Time a = exec.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const Time b = exec.now();
  EXPECT_GE(b - a, 1000.0) << "now() is microseconds; 2ms must be >= 1000us";
}

TEST(ThreadedExecutor, RunsActionsInDueOrder) {
  ThreadedExecutor exec;
  std::mutex mu;
  std::vector<int> order;
  exec.schedule_after(4000, [&] {
    std::lock_guard<std::mutex> l(mu);
    order.push_back(2);
  });
  exec.schedule_after(1000, [&] {
    std::lock_guard<std::mutex> l(mu);
    order.push_back(1);
  });
  ASSERT_TRUE(eventually([&] {
    std::lock_guard<std::mutex> l(mu);
    return order.size() == 2;
  }));
  std::lock_guard<std::mutex> l(mu);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ThreadedExecutor, SameDueTimeRunsInScheduleOrder) {
  ThreadedExecutor exec;
  std::mutex mu;
  std::vector<int> order;
  const Time at = exec.now() + 3000;
  for (int i = 0; i < 5; ++i) {
    exec.schedule_at(at, [&, i] {
      std::lock_guard<std::mutex> l(mu);
      order.push_back(i);
    });
  }
  ASSERT_TRUE(eventually([&] {
    std::lock_guard<std::mutex> l(mu);
    return order.size() == 5;
  }));
  std::lock_guard<std::mutex> l(mu);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadedExecutor, CancelPreventsExecution) {
  ThreadedExecutor exec;
  std::atomic<bool> ran{false};
  const TimerId id = exec.schedule_after(50000, [&] { ran.store(true); });
  EXPECT_TRUE(exec.cancel(id));
  EXPECT_FALSE(exec.cancel(id)) << "second cancel finds nothing";
  std::atomic<bool> sentinel{false};
  exec.schedule_after(1000, [&] { sentinel.store(true); });
  ASSERT_TRUE(eventually([&] { return sentinel.load(); }));
  EXPECT_FALSE(ran.load());
}

TEST(ThreadedExecutor, ActionsCanScheduleFollowUps) {
  ThreadedExecutor exec;
  std::atomic<int> hops{0};
  std::function<void()> hop = [&] {
    if (hops.fetch_add(1) + 1 < 5) exec.schedule_after(200, hop);
  };
  exec.schedule_after(0, hop);
  EXPECT_TRUE(eventually([&] { return hops.load() == 5; }));
}

TEST(ThreadedExecutor, RunnerHookWrapsEveryAction) {
  // The transport uses the runner to take its stack lock around actions;
  // here we just count invocations through the hook.
  std::atomic<int> wrapped{0};
  ThreadedExecutor exec([&wrapped](Executor::Action&& action, std::uint64_t) {
    wrapped.fetch_add(1);
    action();
  });
  std::atomic<int> ran{0};
  for (int i = 0; i < 3; ++i) {
    exec.schedule_after(i * 100, [&] { ran.fetch_add(1); });
  }
  ASSERT_TRUE(eventually([&] { return ran.load() == 3; }));
  EXPECT_EQ(wrapped.load(), 3);
}

TEST(ThreadedExecutor, StopDropsPendingAndIsIdempotent) {
  ThreadedExecutor exec;
  std::atomic<bool> ran{false};
  exec.schedule_after(60'000'000, [&] { ran.store(true); });
  EXPECT_EQ(exec.pending(), 1u);
  exec.stop();
  exec.stop();  // second stop is a no-op
  EXPECT_FALSE(ran.load());
}

TEST(ThreadedExecutor, NegativeDelayRejected) {
  ThreadedExecutor exec;
  EXPECT_THROW(exec.schedule_after(-1, [] {}), std::exception);
}

}  // namespace
}  // namespace paso::exec
