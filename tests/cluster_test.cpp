// End-to-end tests of the PASO primitives over the full stack: simulator,
// bus, group layer, memory servers, runtime (Appendix A macro expansions),
// crash/recovery, and the Section 2 semantics checker on every history.
#include <gtest/gtest.h>

#include "paso/cluster.hpp"
#include "semantics/checker.hpp"

namespace paso {
namespace {

Schema task_schema(std::size_t partitions = 1) {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, partitions},
  });
}

Tuple task(std::int64_t key, const std::string& text) {
  return {Value{key}, Value{text}};
}

SearchCriterion by_key(std::int64_t key) {
  return criterion(Exact{Value{key}}, TypedAny{FieldType::kText});
}

class ClusterTest : public ::testing::Test {
 protected:
  ClusterConfig config() {
    ClusterConfig cfg;
    cfg.machines = 6;
    cfg.lambda = 2;
    return cfg;
  }

  void expect_clean_history(Cluster& cluster) {
    const auto result = semantics::check_history(cluster.history());
    EXPECT_TRUE(result.ok()) << (result.violations.empty()
                                     ? ""
                                     : result.violations.front());
  }
};

TEST_F(ClusterTest, InsertThenReadFindsTheObject) {
  Cluster cluster(task_schema(), config());
  cluster.assign_basic_support();
  const ProcessId p = cluster.process(MachineId{5});
  ASSERT_TRUE(cluster.insert_sync(p, task(7, "hello")));
  const auto found = cluster.read_sync(p, by_key(7));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(std::get<std::string>(found->fields[1]), "hello");
  expect_clean_history(cluster);
}

TEST_F(ClusterTest, ReadOfAbsentKeyFails) {
  Cluster cluster(task_schema(), config());
  cluster.assign_basic_support();
  const ProcessId p = cluster.process(MachineId{0});
  ASSERT_TRUE(cluster.insert_sync(p, task(1, "x")));
  EXPECT_FALSE(cluster.read_sync(p, by_key(2)).has_value());
  expect_clean_history(cluster);
}

TEST_F(ClusterTest, InsertReplicatesToEveryBasicSupportMember) {
  Cluster cluster(task_schema(), config());
  cluster.assign_basic_support();
  const ProcessId p = cluster.process(MachineId{4});
  ASSERT_TRUE(cluster.insert_sync(p, task(3, "replicated")));
  const ClassId cls = *cluster.schema().classify(task(3, "replicated"));
  for (const MachineId m : cluster.basic_support(cls)) {
    EXPECT_EQ(cluster.server(m).live_count(cls), 1u) << m;
  }
}

TEST_F(ClusterTest, ReadDelRemovesEverywhereExactlyOnce) {
  Cluster cluster(task_schema(), config());
  cluster.assign_basic_support();
  const ProcessId p = cluster.process(MachineId{1});
  ASSERT_TRUE(cluster.insert_sync(p, task(9, "once")));
  const auto taken = cluster.read_del_sync(p, by_key(9));
  ASSERT_TRUE(taken.has_value());
  EXPECT_FALSE(cluster.read_del_sync(p, by_key(9)).has_value());
  EXPECT_FALSE(cluster.read_sync(p, by_key(9)).has_value());
  const ClassId cls = *cluster.schema().classify(task(9, "once"));
  for (const MachineId m : cluster.basic_support(cls)) {
    EXPECT_EQ(cluster.server(m).live_count(cls), 0u) << m;
  }
  expect_clean_history(cluster);
}

TEST_F(ClusterTest, CompetingReadDelsGetDistinctObjects) {
  Cluster cluster(task_schema(), config());
  cluster.assign_basic_support();
  const ProcessId a = cluster.process(MachineId{0});
  const ProcessId b = cluster.process(MachineId{3});
  ASSERT_TRUE(cluster.insert_sync(a, task(5, "one")));
  ASSERT_TRUE(cluster.insert_sync(a, task(5, "two")));

  // Issue both read&dels concurrently, then run the simulator to quiescence.
  SearchResponse ra, rb;
  int done = 0;
  cluster.runtime(a.machine).read_del(a, by_key(5), [&](SearchResponse r) {
    ra = std::move(r);
    ++done;
  });
  cluster.runtime(b.machine).read_del(b, by_key(5), [&](SearchResponse r) {
    rb = std::move(r);
    ++done;
  });
  cluster.simulator().run_while_pending([&] { return done == 2; });
  ASSERT_TRUE(ra.has_value());
  ASSERT_TRUE(rb.has_value());
  EXPECT_NE(ra->id, rb->id);  // A2: at most one read&del returns an object
  expect_clean_history(cluster);
}

TEST_F(ClusterTest, LocalReadCostsNoMessages) {
  Cluster cluster(task_schema(), config());
  cluster.assign_basic_support();
  const ClassId cls = *cluster.schema().classify(task(1, "x"));
  const MachineId member = cluster.basic_support(cls).front();
  const ProcessId p = cluster.process(member);
  ASSERT_TRUE(cluster.insert_sync(p, task(1, "x")));

  const auto before = cluster.ledger().snapshot();
  const auto found = cluster.read_sync(p, by_key(1));
  ASSERT_TRUE(found.has_value());
  const CostTriple cost = cluster.ledger().since(before);
  EXPECT_DOUBLE_EQ(cost.msg_cost, 0.0);  // Figure 1: read with M in C
  EXPECT_DOUBLE_EQ(cost.work, 1.0);      // one Q(l) lookup
}

TEST_F(ClusterTest, RemoteReadUsesReadGroupOfLambdaPlusOne) {
  ClusterConfig cfg = config();
  cfg.runtime.use_read_groups = true;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  const ClassId cls = *cluster.schema().classify(task(1, "x"));
  // Pick a reader machine outside the basic support.
  MachineId outside{0};
  const auto support = cluster.basic_support(cls);
  for (std::uint32_t m = 0; m < cluster.machine_count(); ++m) {
    if (std::find(support.begin(), support.end(), MachineId{m}) ==
        support.end()) {
      outside = MachineId{m};
      break;
    }
  }
  const ProcessId writer = cluster.process(support.front());
  ASSERT_TRUE(cluster.insert_sync(writer, task(1, "x")));

  const auto before = cluster.ledger().snapshot();
  const auto found = cluster.read_sync(cluster.process(outside), by_key(1));
  ASSERT_TRUE(found.has_value());
  const CostTriple cost = cluster.ledger().since(before);
  // lambda + 1 = 3 servers did one lookup each.
  EXPECT_DOUBLE_EQ(cost.work, 3.0);
  EXPECT_GT(cost.msg_cost, 0.0);
}

TEST_F(ClusterTest, SurvivesLambdaCrashes) {
  Cluster cluster(task_schema(), config());
  cluster.assign_basic_support();
  const ClassId cls = *cluster.schema().classify(task(1, "x"));
  const auto support = cluster.basic_support(cls);
  const ProcessId p = cluster.process(support[2]);
  for (int k = 0; k < 20; ++k) {
    ASSERT_TRUE(cluster.insert_sync(p, task(k, "v")));
  }
  // Crash lambda = 2 of the 3 basic members; data must survive on the third.
  cluster.crash(support[0]);
  cluster.crash(support[1]);
  cluster.settle();
  EXPECT_TRUE(cluster.fault_tolerance_condition_holds());
  for (int k = 0; k < 20; ++k) {
    EXPECT_TRUE(cluster.read_sync(p, by_key(k)).has_value()) << k;
  }
  expect_clean_history(cluster);
}

TEST_F(ClusterTest, RecoveryRunsInitializationAndRestoresReplicas) {
  Cluster cluster(task_schema(), config());
  cluster.assign_basic_support();
  const ClassId cls = *cluster.schema().classify(task(1, "x"));
  const auto support = cluster.basic_support(cls);
  const ProcessId p = cluster.process(MachineId{5});
  for (int k = 0; k < 10; ++k) {
    ASSERT_TRUE(cluster.insert_sync(p, task(k, "v")));
  }
  cluster.crash(support[0]);
  cluster.settle();
  EXPECT_EQ(cluster.server(support[0]).live_count(cls), 0u);  // memory erased
  // More activity while the machine is down.
  ASSERT_TRUE(cluster.insert_sync(p, task(100, "late")));
  cluster.recover(support[0]);
  cluster.settle();
  // Initialization (g-join state transfer) restored everything, including
  // the object inserted during the outage.
  EXPECT_EQ(cluster.server(support[0]).live_count(cls), 11u);
  EXPECT_TRUE(cluster.groups().is_member(
      cluster.schema().group_name(cls), support[0]));
  expect_clean_history(cluster);
}

TEST_F(ClusterTest, PartitionedSchemaRoutesAcrossClasses) {
  Cluster cluster(task_schema(4), config());
  cluster.assign_basic_support();
  const ProcessId p = cluster.process(MachineId{0});
  for (int k = 0; k < 16; ++k) {
    ASSERT_TRUE(cluster.insert_sync(p, task(k, "x")));
  }
  // Exact-key reads pin one partition; a range read must walk sc-list
  // across all partitions and still find everything.
  for (int k = 0; k < 16; ++k) {
    EXPECT_TRUE(cluster.read_sync(p, by_key(k)).has_value());
  }
  const auto ranged = cluster.read_sync(
      p, criterion(IntRange{0, 100}, TypedAny{FieldType::kText}));
  EXPECT_TRUE(ranged.has_value());
  expect_clean_history(cluster);
}

TEST_F(ClusterTest, FaultToleranceConditionDetectsViolation) {
  ClusterConfig cfg = config();
  cfg.lambda = 1;  // basic support of 2
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  EXPECT_TRUE(cluster.fault_tolerance_condition_holds());
  const ClassId cls{0};
  const auto support = cluster.basic_support(cls);
  cluster.crash(support[0]);
  cluster.settle();
  EXPECT_TRUE(cluster.fault_tolerance_condition_holds());
  cluster.crash(support[1]);  // beyond lambda: condition must fail
  cluster.settle();
  EXPECT_FALSE(cluster.fault_tolerance_condition_holds());
}

TEST_F(ClusterTest, ObjectIdsStayUniqueAcrossCrashRestart) {
  Cluster cluster(task_schema(), config());
  cluster.assign_basic_support();
  const MachineId m{5};
  const ProcessId p = cluster.process(m);
  ASSERT_TRUE(cluster.insert_sync(p, task(1, "before")));
  cluster.crash(m);
  cluster.settle();
  cluster.recover(m);
  cluster.settle();
  ASSERT_TRUE(cluster.insert_sync(p, task(1, "after")));
  // Both objects coexist: identities were not reused (A2).
  ASSERT_TRUE(cluster.read_del_sync(p, by_key(1)).has_value());
  ASSERT_TRUE(cluster.read_del_sync(p, by_key(1)).has_value());
  expect_clean_history(cluster);
}

TEST_F(ClusterTest, ReadPrefersLocalOverRemote) {
  Cluster cluster(task_schema(), config());
  cluster.assign_basic_support();
  const ClassId cls{0};
  const auto support = cluster.basic_support(cls);
  const ProcessId local = cluster.process(support[1]);
  ASSERT_TRUE(cluster.insert_sync(local, task(1, "x")));
  const auto before = cluster.ledger().snapshot();
  ASSERT_TRUE(cluster.read_sync(local, by_key(1)).has_value());
  EXPECT_DOUBLE_EQ(cluster.ledger().since(before).msg_cost, 0.0);
}

TEST_F(ClusterTest, InsertIntoUnsupportedClassThrows) {
  Cluster cluster(task_schema(), config());
  cluster.assign_basic_support();
  const ProcessId p = cluster.process(MachineId{0});
  EXPECT_THROW(
      cluster.runtime(p.machine).insert(p, Tuple{Value{true}}, {}),
      InvariantViolation);
}

}  // namespace
}  // namespace paso
