// Tests for the allocation game: the exact DP optimum (validated against
// brute force), the online runners, and the competitive bounds of
// Theorems 2 and 3 measured across workload families and parameter sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "analysis/allocation_game.hpp"
#include "analysis/potential_audit.hpp"
#include "analysis/workloads.hpp"
#include "common/rng.hpp"

namespace paso::analysis {
namespace {

/// Brute-force optimum: try all 2^T membership trajectories.
Cost brute_force_opt(const RequestSequence& requests, const GameCosts& costs,
                     bool start_in) {
  const std::size_t n = requests.size();
  Cost best = std::numeric_limits<Cost>::infinity();
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    Cost total = 0;
    bool prev_in = start_in;
    for (std::size_t t = 0; t < n; ++t) {
      const bool now_in = (mask >> t) & 1;
      if (now_in && !prev_in) total += requests[t].join_cost;
      if (requests[t].kind == ReqKind::kRead) {
        total += now_in ? costs.read_in() : costs.read_out();
      } else {
        total += now_in ? GameCosts::update_in() : GameCosts::update_out();
      }
      prev_in = now_in;
    }
    best = std::min(best, total);
  }
  return best;
}

TEST(AllocationOptTest, MatchesBruteForceOnRandomSmallInstances) {
  Rng rng(31337);
  const GameCosts costs{1, 3};
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t len = 1 + rng.index(12);
    RequestSequence requests;
    for (std::size_t i = 0; i < len; ++i) {
      requests.push_back(Request{
          rng.chance(0.5) ? ReqKind::kRead : ReqKind::kUpdate,
          static_cast<Cost>(1 + rng.index(6))});
    }
    const bool start_in = rng.chance(0.3);
    const Cost dp = optimal_allocation(requests, costs, start_in).total;
    const Cost brute = brute_force_opt(requests, costs, start_in);
    ASSERT_NEAR(dp, brute, 1e-9) << "trial " << trial;
  }
}

TEST(AllocationOptTest, TraceIsConsistentWithTotal) {
  Rng rng(7);
  const GameCosts costs{1, 2};
  const auto requests = random_sequence(300, 0.6, 8, rng);
  const OptResult opt = optimal_allocation(requests, costs, false);
  // Recompute the cost of the traced trajectory; it must equal the DP total.
  Cost total = 0;
  bool prev_in = false;
  for (std::size_t t = 0; t < requests.size(); ++t) {
    const bool now_in = opt.in_group[t];
    if (now_in && !prev_in) total += requests[t].join_cost;
    if (requests[t].kind == ReqKind::kRead) {
      total += now_in ? costs.read_in() : costs.read_out();
    } else {
      total += now_in ? GameCosts::update_in() : GameCosts::update_out();
    }
    prev_in = now_in;
  }
  EXPECT_NEAR(total, opt.total, 1e-9);
}

TEST(AllocationOptTest, PureReadsMeanJoinOnce) {
  const GameCosts costs{1, 4};
  RequestSequence requests(100, Request{ReqKind::kRead, 10});
  const Cost opt = optimal_allocation(requests, costs, false).total;
  // Join immediately (10) then read locally (100 * 1).
  EXPECT_DOUBLE_EQ(opt, 110);
}

TEST(AllocationOptTest, PureUpdatesMeanStayOut) {
  const GameCosts costs{1, 4};
  RequestSequence requests(100, Request{ReqKind::kUpdate, 10});
  EXPECT_DOUBLE_EQ(optimal_allocation(requests, costs, false).total, 0);
}

/// Independent reference implementation of the Basic counter's run, written
/// from the paper's prose (not from the library code), to cross-check
/// run_basic's cost accounting.
Cost reference_basic_cost(const RequestSequence& requests,
                          const GameCosts& costs, Cost k, Cost q) {
  Cost total = 0;
  Cost counter = 0;
  bool in = false;
  for (const Request& request : requests) {
    if (request.kind == ReqKind::kRead) {
      if (in) {
        total += q;
        counter = std::min(counter + q, k);
      } else {
        total += q * static_cast<Cost>(costs.read_group);
        counter += q * static_cast<Cost>(costs.read_group);
        if (counter >= k) {
          total += request.join_cost;
          counter = k;
          in = true;
        }
      }
    } else {
      if (in) {
        total += 1;
        counter = std::max<Cost>(counter - 1, 0);
        if (counter <= 0) in = false;
      }
    }
  }
  return total;
}

TEST(OnlineRunnerTest, MatchesIndependentReferenceImplementation) {
  Rng rng(777);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t lambda = 1 + rng.index(4);
    const Cost k = static_cast<Cost>(2 + rng.index(30));
    const Cost q = static_cast<Cost>(1 + rng.index(4));
    const GameCosts costs{q, lambda + 1};
    const auto seq = random_sequence(3000, 0.3 + rng.uniform01() * 0.5, k,
                                     rng);
    const OnlineResult run = run_basic(
        seq, costs, adaptive::CounterConfig{k, q, false, false});
    const Cost reference = reference_basic_cost(seq, costs, k, q);
    ASSERT_NEAR(run.total, reference, 1e-9)
        << "trial " << trial << " lambda=" << lambda << " K=" << k
        << " q=" << q;
  }
}

TEST(OnlineRunnerTest, BasicPaysRemoteReadsUntilJoin) {
  const GameCosts costs{1, 2};
  RequestSequence requests(5, Request{ReqKind::kRead, 4});
  const OnlineResult run =
      run_basic(requests, costs, adaptive::CounterConfig{4, 1, false, false});
  // Reads 1-2 remote (2 each, counter hits 4 -> join on read 2, +K), then
  // local reads at 1.
  EXPECT_EQ(run.joins, 1u);
  EXPECT_DOUBLE_EQ(run.total, 2 + (2 + 4) + 1 + 1 + 1);
}

// --- competitive sweeps (Theorem 2) -----------------------------------------

using SweepParam = std::tuple<std::size_t /*lambda*/, int /*K*/>;

class Theorem2Sweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(Theorem2Sweep, RandomWorkloadsRespectTheBound) {
  const auto [lambda, k] = GetParam();
  const GameCosts costs{1, lambda + 1};
  const adaptive::CounterConfig config{static_cast<Cost>(k), 1, false, false};
  const double bound = theorem2_bound(lambda, k);
  Rng rng(1000 + lambda * 31 + k);
  for (double p_read : {0.2, 0.5, 0.8, 0.95}) {
    const auto requests = random_sequence(4000, p_read, k, rng);
    const auto cmp = compare_basic(requests, costs, config);
    EXPECT_LE(cmp.ratio, bound + 1e-9)
        << "lambda=" << lambda << " K=" << k << " p=" << p_read;
  }
}

TEST_P(Theorem2Sweep, PhasedWorkloadsRespectTheBound) {
  const auto [lambda, k] = GetParam();
  const GameCosts costs{1, lambda + 1};
  const adaptive::CounterConfig config{static_cast<Cost>(k), 1, false, false};
  Rng rng(77 + lambda + k);
  const auto requests = phased_sequence(PhasedOptions{}, k, rng);
  const auto cmp = compare_basic(requests, costs, config);
  EXPECT_LE(cmp.ratio, theorem2_bound(lambda, k) + 1e-9);
}

TEST_P(Theorem2Sweep, AdversaryStaysWithinButApproachesTheBound) {
  const auto [lambda, k] = GetParam();
  const GameCosts costs{1, lambda + 1};
  const adaptive::CounterConfig config{static_cast<Cost>(k), 1, false, false};
  const auto requests = adversarial_basic_sequence(50, k, costs);
  const auto cmp = compare_basic(requests, costs, config);
  EXPECT_LE(cmp.ratio, theorem2_bound(lambda, k) + 1e-9);
  // The adversary should extract a decent fraction of the bound.
  EXPECT_GE(cmp.ratio, 1.5);
}

INSTANTIATE_TEST_SUITE_P(
    LambdaK, Theorem2Sweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3),
                       ::testing::Values(2, 4, 8, 16, 32)),
    [](const auto& info) {
      return "lambda" + std::to_string(std::get<0>(info.param)) + "_K" +
             std::to_string(std::get<1>(info.param));
    });

// --- doubling/halving (Theorem 3) --------------------------------------------

class Theorem3Sweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Theorem3Sweep, GrowthWorkloadsRespectTheBound) {
  const std::size_t lambda = GetParam();
  const GameCosts costs{1, lambda + 1};
  Rng rng(555 + lambda);
  GrowthOptions options;
  options.initial_objects = 8;
  const auto requests = growth_sequence(options, rng);
  const adaptive::DoublingAutomaton::Config config{8, 1, false, false};
  const auto cmp = compare_doubling(requests, costs, config);
  // Theorem 3: 6 + 2*lambda/K with K the (smallest) tracked join cost; use
  // K = 1 for the most conservative reading of the bound.
  EXPECT_LE(cmp.ratio, theorem3_bound(lambda, 1) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Lambda, Theorem3Sweep,
                         ::testing::Values<std::size_t>(1, 2, 3),
                         [](const auto& info) {
                           return "lambda" + std::to_string(info.param);
                         });

// --- potential audit ------------------------------------------------------------

class AuditSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AuditSweep, EventWiseAmortizedInequalityHolds) {
  const auto [lambda, k] = GetParam();
  const GameCosts costs{1, lambda + 1};
  const adaptive::CounterConfig config{static_cast<Cost>(k), 1, false, false};
  Rng rng(31 * lambda + k);
  for (double p_read : {0.3, 0.7}) {
    const auto requests = random_sequence(2000, p_read, k, rng);
    const AuditResult audit = audit_potential(requests, costs, config);
    EXPECT_TRUE(audit.ok) << audit.first_violation;
    EXPECT_EQ(audit.events_checked, requests.size());
  }
  const auto adversarial = adversarial_basic_sequence(40, k, costs);
  const AuditResult audit = audit_potential(adversarial, costs, config);
  EXPECT_TRUE(audit.ok) << audit.first_violation;
}

INSTANTIATE_TEST_SUITE_P(
    LambdaK, AuditSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3),
                       ::testing::Values(2, 4, 8, 16)),
    [](const auto& info) {
      return "lambda" + std::to_string(std::get<0>(info.param)) + "_K" +
             std::to_string(std::get<1>(info.param));
    });

TEST(AuditTest, RejectsMixedJoinCosts) {
  RequestSequence requests{Request{ReqKind::kRead, 4},
                           Request{ReqKind::kRead, 8}};
  EXPECT_THROW(audit_potential(requests, GameCosts{1, 2},
                               adaptive::CounterConfig{4, 1, false, false}),
               InvariantViolation);
}

}  // namespace
}  // namespace paso::analysis
