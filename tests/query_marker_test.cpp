// Marker wakeup for the query-engine criteria (Section 4.3 extended): a
// read blocked on a Range or Prefix criterion must capture a later matching
// insert. These criteria carry no Exact field, so their markers live in the
// catch-all marker list — every insert consults them — and the regression
// risk is twofold: a bucketing "optimization" that files them where
// matching inserts never look, and boundary handling (an exclusive bound
// must NOT fire on the boundary value). Both are pinned here, plus survival
// across a crash epoch and across expired-marker TTL sweeps.
#include <gtest/gtest.h>

#include "paso/cluster.hpp"
#include "semantics/checker.hpp"

namespace paso {
namespace {

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 1},
  });
}

Tuple task(std::int64_t key, const std::string& text) {
  return {Value{key}, Value{text}};
}

ClusterConfig config() {
  ClusterConfig cfg;
  cfg.machines = 5;
  cfg.lambda = 1;
  cfg.runtime.poll_interval = 50;
  cfg.runtime.marker_ttl = 1000;
  return cfg;
}

class QueryMarkerTest : public ::testing::Test {
 protected:
  QueryMarkerTest() : cluster_(task_schema(), config()) {
    cluster_.assign_basic_support();
  }

  /// Arms a marker-mode blocking read on `sc` from machine 4 and returns
  /// a pointer to the completion slot.
  void block_on(const SearchCriterion& sc) {
    const ProcessId reader = cluster_.process(MachineId{4});
    cluster_.runtime(reader.machine)
        .read_blocking(reader, sc,
                       [this](SearchResponse r) {
                         result_ = std::move(r);
                         done_ = true;
                       },
                       BlockingMode::kMarker, 1e9);
    cluster_.settle_for(2000);  // markers armed, nothing matches yet
    ASSERT_FALSE(done_);
  }

  void insert(std::int64_t key, const std::string& text) {
    const ProcessId writer = cluster_.process(MachineId{0});
    cluster_.runtime(writer.machine).insert(writer, task(key, text), {});
  }

  Cluster cluster_;
  SearchResponse result_;
  bool done_ = false;
};

TEST_F(QueryMarkerTest, RangeCriterionWakesOnMatchingInsert) {
  block_on(criterion(range_between(Value{std::int64_t{10}},
                                   Value{std::int64_t{20}}),
                     TypedAny{FieldType::kText}));
  insert(3, "below");  // outside the range: must not complete the read
  cluster_.settle_for(2000);
  EXPECT_FALSE(done_);

  insert(15, "inside");
  cluster_.simulator().run_while_pending([&] { return done_; });
  ASSERT_TRUE(done_);
  ASSERT_TRUE(result_.has_value());
  EXPECT_EQ(std::get<std::string>(result_->fields[1]), "inside");

  const auto check = semantics::check_history(cluster_.history());
  EXPECT_TRUE(check.ok()) << check.violations.front();
}

TEST_F(QueryMarkerTest, PrefixCriterionWakesOnMatchingInsert) {
  block_on(criterion(TypedAny{FieldType::kInt}, TextPrefix{"job-"}));
  insert(1, "task-1");  // wrong prefix
  cluster_.settle_for(2000);
  EXPECT_FALSE(done_);

  insert(2, "job-42");
  cluster_.simulator().run_while_pending([&] { return done_; });
  ASSERT_TRUE(done_);
  ASSERT_TRUE(result_.has_value());
  EXPECT_EQ(std::get<std::string>(result_->fields[1]), "job-42");
}

TEST_F(QueryMarkerTest, ExclusiveBoundaryDoesNotWake) {
  // (5, ∞): an insert AT the excluded boundary must leave the read blocked;
  // the first strictly-greater insert completes it.
  block_on(criterion(range_at_least(Value{std::int64_t{5}},
                                    /*exclusive=*/true),
                     TypedAny{FieldType::kText}));
  insert(5, "boundary");
  cluster_.settle_for(3000);
  EXPECT_FALSE(done_) << "exclusive bound fired on its boundary value";

  insert(6, "past");
  cluster_.simulator().run_while_pending([&] { return done_; });
  ASSERT_TRUE(done_);
  ASSERT_TRUE(result_.has_value());
  EXPECT_EQ(std::get<std::string>(result_->fields[1]), "past");
}

TEST_F(QueryMarkerTest, RangeMarkerSurvivesCrashEpoch) {
  // A support holder crashes and recovers while the read is blocked. The
  // reader re-arms its markers (TTL re-place), so a post-recovery matching
  // insert must still complete the read.
  block_on(criterion(range_at_most(Value{std::int64_t{0}}),
                     TypedAny{FieldType::kText}));
  const auto support = cluster_.basic_support(ClassId{0});
  const MachineId victim = support.front();
  cluster_.crash(victim);
  cluster_.settle_for(1000);
  cluster_.recover(victim);
  cluster_.settle_for(3000);  // recovery + marker re-arm rounds
  EXPECT_FALSE(done_);

  insert(-7, "negative");
  cluster_.simulator().run_while_pending([&] { return done_; });
  ASSERT_TRUE(done_);
  ASSERT_TRUE(result_.has_value());
  EXPECT_EQ(std::get<std::string>(result_->fields[1]), "negative");

  cluster_.settle_for(2000);  // drain the insert's ack before the audit
  const auto check =
      semantics::check_history(cluster_.history(), cluster_.run_context());
  EXPECT_TRUE(check.ok()) << check.violations.front();
}

TEST(QueryMarkerTtlTest, PrefixMarkerSurvivesExpirySweeps) {
  // TTL far shorter than the wait: the prefix marker expires and is swept
  // several times over; each re-arm must restore it faithfully (same Range
  // semantics, same catch-all placement) so the eventual insert still wakes
  // the reader.
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.lambda = 1;
  cfg.runtime.marker_ttl = 200;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();

  const ProcessId reader = cluster.process(MachineId{3});
  const ProcessId writer = cluster.process(MachineId{0});
  SearchResponse result;
  bool done = false;
  cluster.runtime(reader.machine)
      .read_blocking(reader, criterion(TypedAny{FieldType::kInt},
                                       TextPrefix{"z"}),
                     [&](SearchResponse r) {
                       result = std::move(r);
                       done = true;
                     },
                     BlockingMode::kMarker, 1e9);
  cluster.settle_for(1500);  // many TTL periods
  EXPECT_FALSE(done);
  cluster.runtime(writer.machine).insert(writer, task(9, "zebra"), {});
  cluster.simulator().run_while_pending([&] { return done; });
  EXPECT_TRUE(done);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(std::get<std::string>(result->fields[1]), "zebra");
}

}  // namespace
}  // namespace paso
