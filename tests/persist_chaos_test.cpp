// Seeded chaos sweep with durable persistence and disk faults in play.
//
// The same acceptance harness as chaos_property_test — 67 seeds x 3 workload
// shapes = 201 generated fault schedules — but every machine now runs the
// WAL + checkpoint subsystem, recoveries replay local state and negotiate
// delta transfers, and the schedules additionally tear, corrupt and
// half-write the durable files underneath the running system. The Section 2
// axioms must hold anyway: damaged logs are detected by checksum, truncated
// to their clean prefix, and whatever the disk cannot prove is re-fetched
// from a live donor (delta or full). Determinism must survive too — the
// whole persistence plane is virtual-time-driven, so a seed replays to an
// identical timeline and ledger.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "paso/fault_injector.hpp"
#include "persist/manager.hpp"
#include "semantics/checker.hpp"

namespace paso {
namespace {

enum class Workload { kBagOfTasks, kKv, kCoordination };

const char* workload_name(Workload w) {
  switch (w) {
    case Workload::kBagOfTasks:
      return "bag-of-tasks";
    case Workload::kKv:
      return "kv";
    case Workload::kCoordination:
      return "coordination";
  }
  return "?";
}

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 2},
  });
}

Tuple task(std::int64_t key) { return {Value{key}, Value{std::string{"v"}}}; }

constexpr std::size_t kMachines = 6;
constexpr std::uint32_t kDriver = 5;  // immune; issues the scripted workload

struct RunResult {
  std::string timeline;
  std::size_t history_size = 0;
  double msg_cost = 0;
  double work = 0;
  std::uint64_t disk_faults = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t replays = 0;
  std::size_t inflight = 0;
  int reports = 0;
  std::vector<std::string> violations;
};

RunResult run_chaos(std::uint64_t seed, Workload workload) {
  ClusterConfig cfg;
  cfg.machines = kMachines;
  cfg.lambda = 2;
  cfg.vsync.retransmit_timeout = 300;
  cfg.runtime.op_deadline = 4000;
  cfg.runtime.retry_backoff = 500;
  cfg.runtime.pessimistic_timeouts = true;
  cfg.runtime.batch_window = 40;
  cfg.runtime.max_batch = 8;
  cfg.persistence.enabled = true;
  // Checkpoint aggressively so the sweep also exercises compaction and the
  // too-stale -> full-transfer fallback, not just happy-path deltas.
  cfg.persistence.checkpoint_every_bytes = 2 * 1024;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();

  ChaosSchedule::GenOptions gen;
  gen.horizon = 12000;
  gen.detection_delay = cluster.groups().options().failure_detection_delay;
  gen.immune = {kDriver};
  gen.disk_fault_count = 3;
  ChaosEngine engine(cluster, ChaosSchedule::generate(seed, kMachines, gen));
  engine.start();

  RunResult out;
  auto report = [&out](OpReport) { ++out.reports; };

  Rng rng(seed * 977 + static_cast<std::uint64_t>(workload) * 131 + 1);
  const ProcessId driver = cluster.process(MachineId{kDriver});
  PasoRuntime& home = cluster.runtime(MachineId{kDriver});
  std::int64_t next_task = 0;

  for (int round = 0; round < 45; ++round) {
    switch (workload) {
      case Workload::kBagOfTasks: {
        home.insert_robust(driver, task(next_task++ % 8), report);
        const MachineId worker{
            static_cast<std::uint32_t>(rng.index(kMachines - 1))};
        if (cluster.is_up(worker) && !cluster.is_initializing(worker)) {
          cluster.runtime(worker).read_del_robust(
              cluster.process(worker), criterion(AnyField{}, AnyField{}),
              report);
        }
        break;
      }
      case Workload::kKv: {
        const std::int64_t key = static_cast<std::int64_t>(rng.index(12));
        const double dice = rng.uniform01();
        if (dice < 0.55) {
          home.insert_robust(driver, task(key), report);
        } else if (dice < 0.85) {
          home.read_robust(driver, criterion(Exact{Value{key}}, AnyField{}),
                           report);
        } else {
          home.read_del_robust(
              driver, criterion(Exact{Value{key}}, AnyField{}), report);
        }
        break;
      }
      case Workload::kCoordination: {
        const std::int64_t key = 1000 + round;
        const sim::SimTime deadline = cluster.simulator().now() + 3000;
        home.read_blocking(
            driver, criterion(Exact{Value{key}}, AnyField{}),
            [](SearchResponse) {},
            round % 2 == 0 ? BlockingMode::kPoll : BlockingMode::kMarker,
            deadline);
        home.insert_robust(driver, task(key), report);
        break;
      }
    }
    cluster.settle_for(150 + static_cast<sim::SimTime>(rng.index(120)));
  }

  cluster.settle_for(12000);
  cluster.settle();

  out.timeline = engine.timeline();
  out.history_size = cluster.history().size();
  out.msg_cost = cluster.ledger().total_msg_cost();
  out.work = cluster.ledger().total_work();
  out.disk_faults = engine.disk_faults();
  for (std::uint32_t m = 0; m < kMachines; ++m) {
    out.inflight += cluster.runtime(MachineId{m}).inflight();
    out.corruptions +=
        cluster.persistence(MachineId{m}).stats().corruptions_detected;
    out.replays += cluster.persistence(MachineId{m}).stats().replays;
  }
  out.violations =
      semantics::check_history(cluster.history(), cluster.run_context())
          .violations;
  return out;
}

// ---------------------------------------------------------------------------
// The sweep: 67 seeds x 3 workloads = 201 schedules.

class PersistChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PersistChaosSweep, AxiomsHoldWithDurableDisksUnderFire) {
  for (const Workload w :
       {Workload::kBagOfTasks, Workload::kKv, Workload::kCoordination}) {
    const RunResult r = run_chaos(GetParam(), w);
    EXPECT_TRUE(r.violations.empty())
        << "seed " << GetParam() << " workload " << workload_name(w) << ": "
        << (r.violations.empty() ? "" : r.violations.front());
    EXPECT_EQ(r.inflight, 0u)
        << "seed " << GetParam() << " workload " << workload_name(w);
    EXPECT_GT(r.reports, 0) << "workload issued no robust ops?";
    EXPECT_FALSE(r.timeline.empty()) << "chaos engine applied no events";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistChaosSweep,
                         ::testing::Range<std::uint64_t>(1, 68));

// ---------------------------------------------------------------------------
// Determinism: disk costs, replay delays and fault injection are all
// virtual-time driven, so a seed must replay to the same run.

TEST(PersistChaosDeterminismTest, SameSeedReplaysIdenticalRun) {
  for (const std::uint64_t seed : {7ull, 19ull, 53ull}) {
    for (const Workload w :
         {Workload::kBagOfTasks, Workload::kKv, Workload::kCoordination}) {
      const RunResult a = run_chaos(seed, w);
      const RunResult b = run_chaos(seed, w);
      EXPECT_EQ(a.timeline, b.timeline)
          << "seed " << seed << " workload " << workload_name(w);
      EXPECT_EQ(a.msg_cost, b.msg_cost);
      EXPECT_EQ(a.work, b.work);
      EXPECT_EQ(a.history_size, b.history_size);
      EXPECT_EQ(a.disk_faults, b.disk_faults);
      EXPECT_EQ(a.corruptions, b.corruptions);
      EXPECT_EQ(a.replays, b.replays);
    }
  }
}

// ---------------------------------------------------------------------------
// The fault plane must actually engage: across a handful of seeds the
// schedules inject real disk damage, crashed machines replay their disks on
// recovery, and at least some of the damage is caught by the checksums.

TEST(PersistChaosCoverageTest, DiskFaultsApplyAndRecoveriesReplay) {
  std::uint64_t faults = 0, replays = 0, corruptions = 0;
  for (const std::uint64_t seed : {2ull, 11ull, 29ull, 43ull, 61ull}) {
    const RunResult r = run_chaos(seed, Workload::kKv);
    faults += r.disk_faults;
    replays += r.replays;
    corruptions += r.corruptions;
  }
  EXPECT_GT(faults, 0u) << "no schedule ever damaged a disk";
  EXPECT_GT(replays, 0u) << "no recovery ever replayed durable state";
  EXPECT_GT(corruptions, 0u)
      << "injected damage was never detected by a checksum";
}

}  // namespace
}  // namespace paso
