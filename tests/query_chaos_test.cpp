// Seeded chaos sweep for the query engine: the same acceptance harness as
// chaos_property_test — 67 seeds x 3 workload shapes = 201 generated fault
// schedules — but every class store is an ordered IndexedStore (sorted
// twins + selectivity planner) and the workloads speak the full criteria
// grammar: Range with open/exclusive bounds, TextPrefix, ranked TopK
// reads and compound multi-field criteria. Batching and durable
// persistence are on. The Section 2 axioms must hold across crashes and
// recoveries, every operation must resolve, a seed must replay to an
// identical timeline and ledger, and with observation on the per-op trace
// records must partition the ledger's message cost exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "paso/fault_injector.hpp"
#include "semantics/checker.hpp"
#include "storage/indexed_store.hpp"

namespace paso {
namespace {

enum class Workload { kRangeSweep, kPrefixRank, kCompoundBlocking };

const char* workload_name(Workload w) {
  switch (w) {
    case Workload::kRangeSweep:
      return "range-sweep";
    case Workload::kPrefixRank:
      return "prefix-rank";
    case Workload::kCompoundBlocking:
      return "compound-blocking";
  }
  return "?";
}

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 2},
  });
}

Tuple task(std::int64_t key, const std::string& text) {
  return {Value{key}, Value{text}};
}

constexpr std::size_t kMachines = 6;
constexpr std::uint32_t kDriver = 5;  // immune; issues the scripted workload

struct RunResult {
  std::string timeline;
  std::size_t history_size = 0;
  double msg_cost = 0;
  double work = 0;
  std::size_t inflight = 0;
  int reports = 0;
  double traced_cost = 0;
  double untraced_cost = 0;
  std::uint64_t spans = 0;
  std::vector<std::string> violations;
};

RunResult run_chaos(std::uint64_t seed, Workload workload,
                    bool observe = false) {
  ClusterConfig cfg;
  cfg.machines = kMachines;
  cfg.lambda = 2;
  cfg.vsync.retransmit_timeout = 300;
  cfg.runtime.op_deadline = 4000;
  cfg.runtime.retry_backoff = 500;
  cfg.runtime.pessimistic_timeouts = true;
  cfg.runtime.batch_window = 40;
  cfg.runtime.max_batch = 8;
  cfg.persistence.enabled = true;
  cfg.persistence.checkpoint_every_bytes = 2 * 1024;
  cfg.observe = observe;
  // Every replica runs the full query engine: both fields indexed, sorted
  // twins on, so range walks, prefix walks, ranked reads and the planner
  // are all in the fault path (and in every state-transfer blob).
  cfg.store_factory = [](ClassId) {
    return std::make_unique<storage::IndexedStore>(
        std::vector<std::size_t>{0, 1}, storage::IndexedStore::Options{true});
  };
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();

  ChaosSchedule::GenOptions gen;
  gen.horizon = 12000;
  gen.detection_delay = cluster.groups().options().failure_detection_delay;
  gen.immune = {kDriver};
  ChaosEngine engine(cluster, ChaosSchedule::generate(seed, kMachines, gen));
  engine.start();

  RunResult out;
  auto report = [&out](OpReport) { ++out.reports; };

  Rng rng(seed * 977 + static_cast<std::uint64_t>(workload) * 131 + 1);
  const ProcessId driver = cluster.process(MachineId{kDriver});
  PasoRuntime& home = cluster.runtime(MachineId{kDriver});

  for (int round = 0; round < 45; ++round) {
    switch (workload) {
      case Workload::kRangeSweep: {
        // Interval store: inserts scatter keys; readers take slices with
        // every bound shape, consumers drain half-open intervals.
        const std::int64_t key = static_cast<std::int64_t>(rng.index(40));
        const double dice = rng.uniform01();
        if (dice < 0.5) {
          home.insert_robust(driver, task(key, "v"), report);
        } else if (dice < 0.8) {
          const std::int64_t lo = static_cast<std::int64_t>(rng.index(30));
          home.read_robust(
              driver,
              criterion(range_between(Value{lo}, Value{lo + 8},
                                      /*lo_exclusive=*/rng.chance(0.5)),
                        AnyField{}),
              report);
        } else {
          home.read_del_robust(
              driver,
              criterion(range_at_least(Value{static_cast<std::int64_t>(
                            rng.index(30))}),
                        AnyField{}),
              report);
        }
        break;
      }
      case Workload::kPrefixRank: {
        // Job board: names carry a type prefix; readers match by prefix,
        // the scheduler claims the highest-keyed job of a type (ranked
        // read&del — the sorted twin serves it in rank order).
        const std::int64_t key = static_cast<std::int64_t>(rng.index(20));
        const double dice = rng.uniform01();
        if (dice < 0.5) {
          const char* prefix = rng.chance(0.5) ? "job-" : "web-";
          home.insert_robust(
              driver, task(key, prefix + std::to_string(rng.index(4))),
              report);
        } else if (dice < 0.8) {
          home.read_robust(
              driver,
              criterion(TypedAny{FieldType::kInt},
                        TextPrefix{rng.chance(0.5) ? "job-" : "web-"}),
              report);
        } else {
          home.read_del_robust(
              driver,
              ranked(criterion(AnyField{}, AnyField{}),
                     TopK{0, 1, /*descending=*/true}),
              report);
        }
        break;
      }
      case Workload::kCompoundBlocking: {
        // Consumers block (deadline-bounded, marker or poll) on a range a
        // producer fills moments later; compound criteria mix an Exact
        // with a prefix so the planner has real choices to order.
        const std::int64_t key = 2000 + round;
        const sim::SimTime deadline = cluster.simulator().now() + 3000;
        home.read_blocking(
            driver,
            criterion(range_between(Value{key}, Value{key + 5}), AnyField{}),
            [](SearchResponse) {},
            round % 2 == 0 ? BlockingMode::kPoll : BlockingMode::kMarker,
            deadline);
        home.insert_robust(driver, task(key + 1, "c-" + std::to_string(round)),
                           report);
        home.read_robust(
            driver,
            criterion(Exact{Value{key + 1}}, TextPrefix{"c-"}), report);
        break;
      }
    }
    cluster.settle_for(150 + static_cast<sim::SimTime>(rng.index(120)));
  }

  cluster.settle_for(12000);
  cluster.settle();

  out.timeline = engine.timeline();
  out.history_size = cluster.history().size();
  out.msg_cost = cluster.ledger().total_msg_cost();
  out.work = cluster.ledger().total_work();
  for (std::uint32_t m = 0; m < kMachines; ++m) {
    out.inflight += cluster.runtime(MachineId{m}).inflight();
  }
  out.violations =
      semantics::check_history(cluster.history(), cluster.run_context())
          .violations;
  if (observe) {
    out.traced_cost = cluster.tracer().traced_msg_cost();
    out.untraced_cost = cluster.tracer().untraced_msg_cost();
    out.spans = cluster.tracer().events().size();
  }
  return out;
}

// ---------------------------------------------------------------------------
// The sweep: 67 seeds x 3 workloads = 201 schedules.

class QueryChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueryChaosSweep, AxiomsHoldUnderRichQueries) {
  for (const Workload w : {Workload::kRangeSweep, Workload::kPrefixRank,
                           Workload::kCompoundBlocking}) {
    const RunResult r = run_chaos(GetParam(), w);
    EXPECT_TRUE(r.violations.empty())
        << "seed " << GetParam() << " workload " << workload_name(w) << ": "
        << (r.violations.empty() ? "" : r.violations.front());
    EXPECT_EQ(r.inflight, 0u)
        << "seed " << GetParam() << " workload " << workload_name(w);
    EXPECT_GT(r.reports, 0) << "workload issued no robust ops?";
    EXPECT_FALSE(r.timeline.empty()) << "chaos engine applied no events";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryChaosSweep,
                         ::testing::Range<std::uint64_t>(1, 68));

// ---------------------------------------------------------------------------
// Determinism and exact cost reconciliation: a seed replays to the same
// timeline and ledger, and with tracing on, per-op spans partition the
// ledger's message cost with nothing lost — planner decisions included.

TEST(QueryChaosDeterminismTest, SameSeedReplaysAndTracesReconcile) {
  for (const std::uint64_t seed : {7ull, 19ull, 53ull}) {
    for (const Workload w : {Workload::kRangeSweep, Workload::kPrefixRank,
                             Workload::kCompoundBlocking}) {
      const RunResult base = run_chaos(seed, w);
      const RunResult traced = run_chaos(seed, w, /*observe=*/true);
      EXPECT_EQ(base.timeline, traced.timeline)
          << "seed " << seed << " workload " << workload_name(w);
      EXPECT_EQ(base.msg_cost, traced.msg_cost);
      EXPECT_EQ(base.work, traced.work);
      EXPECT_EQ(base.history_size, traced.history_size);
      EXPECT_EQ(traced.traced_cost + traced.untraced_cost, traced.msg_cost)
          << "trace records do not partition the ledger, seed " << seed
          << " workload " << workload_name(w);
      EXPECT_GT(traced.traced_cost, 0.0) << "no message attributed to any op";
      EXPECT_GT(traced.spans, 0u);
    }
  }
}

}  // namespace
}  // namespace paso
