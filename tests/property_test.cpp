// Randomized property tests: drive the whole system with random workloads
// and crash/recovery injection across many seeds, then verify
//   (a) the Section 2 axioms hold on the recorded history (Theorem 1,
//       checked mechanically),
//   (b) write-group replicas are byte-for-byte consistent,
//   (c) the fault-tolerance condition holds whenever k <= lambda.
#include <gtest/gtest.h>

#include <set>

#include "adaptive/basic_policy.hpp"
#include "common/rng.hpp"
#include "paso/cluster.hpp"
#include "semantics/checker.hpp"

namespace paso {
namespace {

Schema mixed_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 2},
      ClassSpec{"score", {FieldType::kInt, FieldType::kInt}, 0, 1},
  });
}

class PropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

/// All write-group members of every class hold identical object sets.
void expect_replica_consistency(Cluster& cluster) {
  for (std::uint32_t c = 0; c < cluster.schema().class_count(); ++c) {
    const ClassId cls{c};
    const auto view = cluster.groups().view_of(cluster.schema().group_name(cls));
    std::optional<std::size_t> size;
    for (const MachineId m : view.members) {
      if (!cluster.is_up(m)) continue;
      const std::size_t count = cluster.server(m).live_count(cls);
      if (!size) {
        size = count;
      } else {
        ASSERT_EQ(*size, count)
            << "replica divergence in class " << c << " at " << m;
      }
    }
  }
}

TEST_P(PropertyTest, RandomWorkloadWithCrashesStaysSound) {
  Rng rng(GetParam());
  ClusterConfig cfg;
  cfg.machines = 5 + rng.index(4);  // 5..8
  cfg.lambda = 1 + rng.index(2);    // 1..2
  Cluster cluster(mixed_schema(), cfg);
  cluster.assign_basic_support();
  if (rng.chance(0.5)) {
    adaptive::install_basic_policies(
        cluster, adaptive::BasicPolicyOptions{4 + rng.index(12) * 1.0, 1,
                                              rng.chance(0.3)});
  }

  std::set<std::uint32_t> down;
  const std::size_t rounds = 30;
  for (std::size_t round = 0; round < rounds; ++round) {
    // A concurrent batch of random operations from random up machines.
    const std::size_t batch = 1 + rng.index(6);
    int completed = 0;
    int expected = 0;
    for (std::size_t i = 0; i < batch; ++i) {
      const MachineId m{static_cast<std::uint32_t>(
          rng.index(cluster.machine_count()))};
      if (down.contains(m.value)) continue;
      const ProcessId p = cluster.process(m, 0);
      const std::int64_t key = static_cast<std::int64_t>(rng.index(8));
      const double dice = rng.uniform01();
      ++expected;
      if (dice < 0.45) {
        Tuple tuple = rng.chance(0.7)
                          ? Tuple{Value{key}, Value{std::string{"payload"}}}
                          : Tuple{Value{key}, Value{key * 10}};
        cluster.runtime(m).insert(p, std::move(tuple),
                                  [&completed] { ++completed; });
      } else if (dice < 0.75) {
        cluster.runtime(m).read(
            p, criterion(Exact{Value{key}}, AnyField{}),
            [&completed](SearchResponse) { ++completed; });
      } else {
        cluster.runtime(m).read_del(
            p, criterion(Exact{Value{key}}, AnyField{}),
            [&completed](SearchResponse) { ++completed; });
      }
    }
    cluster.simulator().run_while_pending(
        [&] { return completed == expected; });
    cluster.settle();

    // Crash/recover between batches, staying within the fault model.
    if (!down.empty() && rng.chance(0.6)) {
      const auto it = down.begin();
      cluster.recover(MachineId{*it});
      down.erase(it);
      cluster.settle();
    }
    if (down.size() < cluster.lambda() && rng.chance(0.35)) {
      const std::uint32_t victim =
          static_cast<std::uint32_t>(rng.index(cluster.machine_count()));
      if (!down.contains(victim)) {
        cluster.crash(MachineId{victim});
        down.insert(victim);
        cluster.settle();  // detection completes
      }
    }
    ASSERT_TRUE(cluster.fault_tolerance_condition_holds())
        << "round " << round;
    expect_replica_consistency(cluster);
  }

  const auto result = semantics::check_history(cluster.history());
  EXPECT_TRUE(result.ok()) << "seed " << GetParam() << ": "
                           << (result.violations.empty()
                                   ? ""
                                   : result.violations.front());
  EXPECT_GT(cluster.history().size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace paso
