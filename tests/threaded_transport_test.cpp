// ThreadedTransport: fabric-level delivery/cost semantics, and an
// 8-machine cluster smoke test under genuinely concurrent client load.
// Runs in the fast tier and (label `threaded`) under ThreadSanitizer in CI.
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/threaded_transport.hpp"
#include "paso/cluster.hpp"

namespace paso {
namespace {

using net::ThreadedTransport;

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 1},
  });
}

Tuple task(std::int64_t key) {
  return {Value{key}, Value{std::string(16, 'x')}};
}

SearchCriterion by_key(std::int64_t key) {
  return criterion(Exact{Value{key}}, TypedAny{FieldType::kText});
}

TEST(ThreadedTransport, DeliversAndChargesModelCost) {
  CostModel model{2.0, 0.5};
  ThreadedTransport transport(model, 4);
  std::atomic<int> delivered{0};
  transport.run_exclusive([&] {
    for (int i = 0; i < 10; ++i) {
      transport.send(MachineId{0}, MachineId{1}, "ping", 8,
                     [&] { delivered.fetch_add(1); });
    }
  });
  ASSERT_TRUE(transport.quiesce());
  EXPECT_EQ(delivered.load(), 10);
  EXPECT_EQ(transport.messages(), 10u);
  EXPECT_EQ(transport.bytes_sent(), 80u);
  // Same charge as the simulated bus: 10 * (alpha + beta*8).
  transport.run_exclusive([&] {
    EXPECT_DOUBLE_EQ(transport.ledger().total_msg_cost(),
                     10 * (2.0 + 0.5 * 8));
    const auto& per_tag = transport.ledger().per_tag();
    ASSERT_TRUE(per_tag.contains("ping"));
    EXPECT_EQ(per_tag.at("ping").messages, 10u);
  });
  transport.shutdown();
}

TEST(ThreadedTransport, SelfSendIsFreeAndDelivered) {
  ThreadedTransport transport(CostModel{1.0, 1.0}, 2);
  std::atomic<bool> delivered{false};
  transport.run_exclusive([&] {
    transport.send(MachineId{1}, MachineId{1}, "local", 64,
                   [&] { delivered.store(true); });
  });
  ASSERT_TRUE(transport.quiesce());
  EXPECT_TRUE(delivered.load());
  EXPECT_EQ(transport.messages(), 0u);
  transport.run_exclusive(
      [&] { EXPECT_DOUBLE_EQ(transport.ledger().total_msg_cost(), 0.0); });
  transport.shutdown();
}

TEST(ThreadedTransport, DownMachinesSendNothingAndReceiveNothing) {
  ThreadedTransport transport(CostModel{1.0, 0.0}, 3);
  std::atomic<int> delivered{0};
  transport.set_up(MachineId{2}, false);
  transport.run_exclusive([&] {
    // Down sender: dropped before transmission, nothing charged.
    transport.send(MachineId{2}, MachineId{0}, "from-dead", 4,
                   [&] { delivered.fetch_add(1); });
    // Down receiver: transmission happens (and is charged — the bus was
    // occupied), the delivery is dropped at execution time.
    transport.send(MachineId{0}, MachineId{2}, "to-dead", 4,
                   [&] { delivered.fetch_add(1); });
  });
  ASSERT_TRUE(transport.quiesce());
  EXPECT_EQ(delivered.load(), 0);
  EXPECT_EQ(transport.messages(), 1u);
  transport.shutdown();
}

TEST(ThreadedTransport, RingOverflowSpillsWithoutLossOrReorder) {
  // A 1-slot-ring transport under a large burst: almost every push spills
  // to the overflow lane; per-(segment, machine) FIFO must survive.
  net::ThreadedTransportOptions options;
  options.ring_capacity = 2;  // 1 usable slot
  ThreadedTransport transport(CostModel{1.0, 0.0}, 2, net::Topology{},
                              options);
  constexpr int kBurst = 5000;
  std::vector<int> seen;
  seen.reserve(kBurst);
  transport.run_exclusive([&] {
    for (int i = 0; i < kBurst; ++i) {
      transport.send(MachineId{0}, MachineId{1}, "burst", 1,
                     [&seen, i] { seen.push_back(i); });
    }
  });
  ASSERT_TRUE(transport.quiesce());
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kBurst));
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_EQ(seen[i], i) << "delivery order broke at " << i;
  }
  EXPECT_GT(transport.overflowed(), 0u) << "test never exercised the spill";
  transport.shutdown();
}

TEST(ThreadedTransport, BoundedBridgeShedsCrossingBurstsFifo) {
  // The overflow lane doubles as this transport's bridge ingress buffer:
  // with Topology::with_bridge_limit a crossing that finds the lane at
  // capacity is shed (counted, charged src+bridge, never delivered). The
  // survivors must still arrive in send order — shedding thins the stream,
  // it must never reorder it.
  net::Topology topology({net::Segment{}, net::Segment{}}, {0, 1},
                         /*bridge_alpha=*/5, /*bridge_beta=*/0.1);
  topology.with_bridge_limit(4, net::BridgePolicy::kShed);
  net::ThreadedTransportOptions options;
  options.ring_capacity = 2;  // 1 usable slot: crossings spill immediately
  ThreadedTransport transport(CostModel{1.0, 0.0}, 2, topology, options);
  constexpr int kBurst = 2000;
  std::vector<int> seen;
  seen.reserve(kBurst);
  transport.run_exclusive([&] {
    for (int i = 0; i < kBurst; ++i) {
      transport.send(MachineId{0}, MachineId{1}, "burst", 1,
                     [&seen, i] { seen.push_back(i); });
    }
  });
  ASSERT_TRUE(transport.quiesce());
  EXPECT_GT(transport.bridge_shed(), 0u) << "cap never bound";
  EXPECT_EQ(seen.size() + transport.bridge_shed(),
            static_cast<std::size_t>(kBurst));
  for (std::size_t i = 1; i < seen.size(); ++i) {
    ASSERT_GT(seen[i], seen[i - 1]) << "survivor order broke at " << i;
  }
  // Shed crossings were still transmitted on the source side: every one of
  // the kBurst sends was charged and counted as a crossing.
  EXPECT_EQ(transport.messages(), static_cast<std::uint64_t>(kBurst));
  EXPECT_EQ(transport.crossings(), static_cast<std::uint64_t>(kBurst));
  transport.shutdown();
}

TEST(ThreadedTransport, BridgeCapIgnoresIntraSegmentTraffic) {
  // The cap governs the bridge, not the local bus: same-segment sends ride
  // the overflow lane without ever being shed, whatever its depth.
  net::Topology topology({net::Segment{}, net::Segment{}}, {0, 0, 1},
                         /*bridge_alpha=*/5, /*bridge_beta=*/0.1);
  topology.with_bridge_limit(1, net::BridgePolicy::kShed);
  net::ThreadedTransportOptions options;
  options.ring_capacity = 2;
  ThreadedTransport transport(CostModel{1.0, 0.0}, 3, topology, options);
  std::atomic<int> delivered{0};
  constexpr int kBurst = 1000;
  transport.run_exclusive([&] {
    for (int i = 0; i < kBurst; ++i) {
      transport.send(MachineId{0}, MachineId{1}, "local", 1,
                     [&] { delivered.fetch_add(1); });
    }
  });
  ASSERT_TRUE(transport.quiesce());
  EXPECT_EQ(delivered.load(), kBurst);
  EXPECT_EQ(transport.bridge_shed(), 0u);
  transport.shutdown();
}

TEST(ThreadedTransport, UnboundedBridgeNeverSheds) {
  // Default topology config: the legacy unbounded lane, bit-for-bit.
  net::Topology topology({net::Segment{}, net::Segment{}}, {0, 1},
                         /*bridge_alpha=*/5, /*bridge_beta=*/0.1);
  net::ThreadedTransportOptions options;
  options.ring_capacity = 2;
  ThreadedTransport transport(CostModel{1.0, 0.0}, 2, topology, options);
  std::atomic<int> delivered{0};
  constexpr int kBurst = 2000;
  transport.run_exclusive([&] {
    for (int i = 0; i < kBurst; ++i) {
      transport.send(MachineId{0}, MachineId{1}, "burst", 1,
                     [&] { delivered.fetch_add(1); });
    }
  });
  ASSERT_TRUE(transport.quiesce());
  EXPECT_EQ(delivered.load(), kBurst);
  EXPECT_EQ(transport.bridge_shed(), 0u);
  EXPECT_GT(transport.overflowed(), 0u) << "test never exercised the lane";
  transport.shutdown();
}

TEST(ThreadedTransport, ShutdownIsIdempotentAndDropsInflight) {
  ThreadedTransport transport(CostModel{1.0, 0.0}, 2);
  transport.run_exclusive([&] {
    for (int i = 0; i < 100; ++i) {
      transport.send(MachineId{0}, MachineId{1}, "x", 1, [] {});
    }
  });
  transport.shutdown();
  transport.shutdown();  // no double-join
}

// ---------------------------------------------------------------------------
// Cluster smoke: 8 machines, concurrent clients.

TEST(ThreadedCluster, EightMachinesUnderConcurrentClientLoad) {
  ClusterConfig config;
  config.machines = 8;
  config.lambda = 1;
  config.transport = TransportKind::kThreaded;
  Cluster cluster(task_schema(), config);
  cluster.assign_basic_support();

  // 4 client threads, each machine-affine, inserting then reading back its
  // own keyspace slice through the synchronous wrappers (which serialize
  // through the transport's stack lock).
  constexpr int kClients = 4;
  constexpr std::int64_t kOpsPerClient = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const ProcessId process =
          cluster.process(MachineId{static_cast<std::uint32_t>(2 * c)});
      for (std::int64_t i = 0; i < kOpsPerClient; ++i) {
        const std::int64_t key = c * 1000 + i;
        if (!cluster.insert_sync(process, task(key))) {
          failures.fetch_add(1);
          continue;
        }
        const auto found =
            cluster.read_sync(process, by_key(key));
        if (!found.has_value()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  cluster.settle();
  // Every insert/read crossed the bus: the model-cost ledger must have
  // metered real traffic even though no virtual clock ever ticked.
  cluster.transport().run_exclusive([&] {
    EXPECT_GT(cluster.ledger().total_msg_cost(), 0.0);
    EXPECT_GT(cluster.ledger().total_work(), 0.0);
  });
  EXPECT_GT(cluster.threaded_transport().messages(), 0u);
}

TEST(ThreadedCluster, SettleForSleepsWallMicroseconds) {
  ClusterConfig config;
  config.machines = 2;
  config.transport = TransportKind::kThreaded;
  Cluster cluster(task_schema(), config);
  const auto start = std::chrono::steady_clock::now();
  cluster.settle_for(20'000);  // 20ms in wall clock
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            15);
}

}  // namespace
}  // namespace paso
