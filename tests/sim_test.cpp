// Unit tests for the discrete-event simulation engine.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace paso::sim {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_at(30, [&] { order.push_back(3); });
  simulator.schedule_at(10, [&] { order.push_back(1); });
  simulator.schedule_at(20, [&] { order.push_back(2); });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.now(), 30);
}

TEST(SimulatorTest, TiesBreakByInsertionOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_at(5, [&] { order.push_back(1); });
  simulator.schedule_at(5, [&] { order.push_back(2); });
  simulator.schedule_at(5, [&] { order.push_back(3); });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator simulator;
  SimTime fired_at = -1;
  simulator.schedule_at(10, [&] {
    simulator.schedule_after(5, [&] { fired_at = simulator.now(); });
  });
  simulator.run();
  EXPECT_EQ(fired_at, 15);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator simulator;
  bool fired = false;
  const EventId id = simulator.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(simulator.cancel(id));
  EXPECT_FALSE(simulator.cancel(id));  // second cancel is a no-op
  simulator.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule_at(10, [&] { ++fired; });
  simulator.schedule_at(20, [&] { ++fired; });
  simulator.schedule_at(30, [&] { ++fired; });
  simulator.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(simulator.now(), 20);
  EXPECT_EQ(simulator.pending(), 1u);
}

TEST(SimulatorTest, RunUntilAdvancesTimeWithEmptyQueue) {
  Simulator simulator;
  simulator.run_until(100);
  EXPECT_EQ(simulator.now(), 100);
}

TEST(SimulatorTest, RunWhilePendingStopsOnPredicate) {
  Simulator simulator;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    simulator.schedule_at(i, [&] { ++count; });
  }
  const bool fired = simulator.run_while_pending([&] { return count == 4; });
  EXPECT_TRUE(fired);
  EXPECT_EQ(count, 4);
}

TEST(SimulatorTest, RunWhilePendingReportsDrain) {
  Simulator simulator;
  simulator.schedule_at(1, [] {});
  const bool fired = simulator.run_while_pending([] { return false; });
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, SchedulingIntoThePastThrows) {
  Simulator simulator;
  simulator.schedule_at(10, [] {});
  simulator.run();
  EXPECT_THROW(simulator.schedule_at(5, [] {}), InvariantViolation);
}

TEST(SimulatorTest, EventsCanScheduleAtSameTime) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_at(10, [&] {
    order.push_back(1);
    simulator.schedule_at(10, [&] { order.push_back(2); });
  });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorTest, PendingCountsUncancelledOnly) {
  Simulator simulator;
  const EventId a = simulator.schedule_at(1, [] {});
  simulator.schedule_at(2, [] {});
  EXPECT_EQ(simulator.pending(), 2u);
  simulator.cancel(a);
  EXPECT_EQ(simulator.pending(), 1u);
}

}  // namespace
}  // namespace paso::sim
