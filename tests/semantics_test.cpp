// Tests for the Section 2 axiom checker: it must accept legal histories and
// flag each class of violation with no false positives.
#include <gtest/gtest.h>

#include "semantics/checker.hpp"

namespace paso::semantics {
namespace {

const ProcessId kP0{MachineId{0}, 0};
const ProcessId kP1{MachineId{1}, 0};

PasoObject object(std::uint64_t seq, std::int64_t key) {
  return PasoObject{ObjectId{kP0, seq}, {Value{key}}};
}

SearchCriterion any_int() { return criterion(TypedAny{FieldType::kInt}); }

TEST(CheckerTest, EmptyHistoryIsClean) {
  HistoryRecorder recorder;
  EXPECT_TRUE(check_history(recorder).ok());
}

TEST(CheckerTest, SimpleInsertReadDeleteIsClean) {
  HistoryRecorder recorder;
  const PasoObject o = object(1, 5);
  const auto ins = recorder.insert_issued(kP0, 0, o);
  recorder.op_returned(ins, 10, std::nullopt);
  const auto rd = recorder.search_issued(kP1, 20, OpKind::kRead, any_int());
  recorder.op_returned(rd, 30, o);
  const auto del = recorder.search_issued(kP1, 40, OpKind::kReadDel, any_int());
  recorder.op_returned(del, 50, o);
  const auto result = check_history(recorder);
  EXPECT_TRUE(result.ok()) << result.violations.front();
}

TEST(CheckerTest, DoubleInsertViolatesA2) {
  HistoryRecorder recorder;
  const PasoObject o = object(1, 5);
  recorder.op_returned(recorder.insert_issued(kP0, 0, o), 1, std::nullopt);
  recorder.op_returned(recorder.insert_issued(kP0, 2, o), 3, std::nullopt);
  const auto result = check_history(recorder);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.violations.front().find("A2"), std::string::npos);
}

TEST(CheckerTest, DoubleReadDelViolatesA2) {
  HistoryRecorder recorder;
  const PasoObject o = object(1, 5);
  recorder.op_returned(recorder.insert_issued(kP0, 0, o), 1, std::nullopt);
  recorder.op_returned(
      recorder.search_issued(kP0, 2, OpKind::kReadDel, any_int()), 3, o);
  recorder.op_returned(
      recorder.search_issued(kP1, 4, OpKind::kReadDel, any_int()), 5, o);
  EXPECT_FALSE(check_history(recorder).ok());
}

TEST(CheckerTest, ReadOfNeverInsertedObjectIsFlagged) {
  HistoryRecorder recorder;
  recorder.op_returned(
      recorder.search_issued(kP0, 0, OpKind::kRead, any_int()), 1,
      object(9, 1));
  const auto result = check_history(recorder);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.violations.front().find("never inserted"),
            std::string::npos);
}

TEST(CheckerTest, ReadReturningNonMatchingObjectIsFlagged) {
  HistoryRecorder recorder;
  const PasoObject o = object(1, 5);
  recorder.op_returned(recorder.insert_issued(kP0, 0, o), 1, std::nullopt);
  const auto rd = recorder.search_issued(
      kP1, 2, OpKind::kRead, criterion(Exact{Value{std::int64_t{99}}}));
  recorder.op_returned(rd, 3, o);
  EXPECT_FALSE(check_history(recorder).ok());
}

TEST(CheckerTest, ReadCompletingBeforeInsertIssueIsFlagged) {
  HistoryRecorder recorder;
  const PasoObject o = object(1, 5);
  const auto rd = recorder.search_issued(kP1, 0, OpKind::kRead, any_int());
  recorder.op_returned(rd, 5, o);  // returns o before its insert is issued
  recorder.op_returned(recorder.insert_issued(kP0, 10, o), 12, std::nullopt);
  EXPECT_FALSE(check_history(recorder).ok());
}

TEST(CheckerTest, ReadOfDeadObjectIsFlagged) {
  HistoryRecorder recorder;
  const PasoObject o = object(1, 5);
  recorder.op_returned(recorder.insert_issued(kP0, 0, o), 1, std::nullopt);
  recorder.op_returned(
      recorder.search_issued(kP0, 2, OpKind::kReadDel, any_int()), 3, o);
  // Read issued strictly after the read&del returned: o is certainly dead.
  const auto rd = recorder.search_issued(kP1, 10, OpKind::kRead, any_int());
  recorder.op_returned(rd, 11, o);
  const auto result = check_history(recorder);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.violations.front().find("dead"), std::string::npos);
}

TEST(CheckerTest, ConcurrentReadAndReadDelIsLegal) {
  HistoryRecorder recorder;
  const PasoObject o = object(1, 5);
  recorder.op_returned(recorder.insert_issued(kP0, 0, o), 1, std::nullopt);
  // read overlaps the read&del: both may return o.
  const auto rd = recorder.search_issued(kP1, 10, OpKind::kRead, any_int());
  const auto del =
      recorder.search_issued(kP0, 11, OpKind::kReadDel, any_int());
  recorder.op_returned(del, 20, o);
  recorder.op_returned(rd, 21, o);
  const auto result = check_history(recorder);
  EXPECT_TRUE(result.ok()) << result.violations.front();
}

TEST(CheckerTest, IllegitimateFailIsFlagged) {
  HistoryRecorder recorder;
  const PasoObject o = object(1, 5);
  recorder.op_returned(recorder.insert_issued(kP0, 0, o), 1, std::nullopt);
  // o is continuously alive over [10, 20], yet the read fails.
  const auto rd = recorder.search_issued(kP1, 10, OpKind::kRead, any_int());
  recorder.op_returned(rd, 20, std::nullopt);
  const auto result = check_history(recorder);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.violations.front().find("fail"), std::string::npos);
}

TEST(CheckerTest, FailIsLegalWhileInsertInFlight) {
  HistoryRecorder recorder;
  const PasoObject o = object(1, 5);
  // Insert overlaps the read: the object is not certainly alive at the
  // read's issue, so fail is allowed.
  recorder.op_returned(recorder.insert_issued(kP0, 8, o), 15, std::nullopt);
  const auto rd = recorder.search_issued(kP1, 10, OpKind::kRead, any_int());
  recorder.op_returned(rd, 20, std::nullopt);
  EXPECT_TRUE(check_history(recorder).ok());
}

TEST(CheckerTest, FailIsLegalWhenReadDelOverlaps) {
  HistoryRecorder recorder;
  const PasoObject o = object(1, 5);
  recorder.op_returned(recorder.insert_issued(kP0, 0, o), 1, std::nullopt);
  const auto del =
      recorder.search_issued(kP0, 12, OpKind::kReadDel, any_int());
  const auto rd = recorder.search_issued(kP1, 10, OpKind::kRead, any_int());
  recorder.op_returned(del, 14, o);
  recorder.op_returned(rd, 20, std::nullopt);  // o may have died at 13
  EXPECT_TRUE(check_history(recorder).ok());
}

TEST(CheckerTest, FailIsLegalWhenCriterionDoesNotMatch) {
  HistoryRecorder recorder;
  recorder.op_returned(recorder.insert_issued(kP0, 0, object(1, 5)), 1,
                       std::nullopt);
  const auto rd = recorder.search_issued(
      kP1, 10, OpKind::kRead, criterion(Exact{Value{std::int64_t{6}}}));
  recorder.op_returned(rd, 20, std::nullopt);
  EXPECT_TRUE(check_history(recorder).ok());
}

TEST(CheckerTest, MutatedFieldsAreFlagged) {
  HistoryRecorder recorder;
  const PasoObject o = object(1, 5);
  recorder.op_returned(recorder.insert_issued(kP0, 0, o), 1, std::nullopt);
  PasoObject tampered = o;
  tampered.fields[0] = Value{std::int64_t{5}};
  // Same identity, different payload (here same value; make it differ).
  tampered.fields[0] = Value{std::int64_t{6}};
  const auto rd = recorder.search_issued(kP1, 2, OpKind::kRead, any_int());
  recorder.op_returned(rd, 3, tampered);
  EXPECT_FALSE(check_history(recorder).ok());
}

TEST(CheckerTest, FailIsLegalWhenPendingReadDelMayHaveKilledTheObject) {
  // A read&del whose issuer crashed never returns, but its replicated
  // removal may have been applied: any matching object is possibly dead
  // from then on, so a later read may legally fail.
  HistoryRecorder recorder;
  const PasoObject o = object(1, 5);
  recorder.op_returned(recorder.insert_issued(kP0, 0, o), 1, std::nullopt);
  recorder.search_issued(kP0, 5, OpKind::kReadDel, any_int());  // pending
  const auto rd = recorder.search_issued(kP1, 10, OpKind::kRead, any_int());
  recorder.op_returned(rd, 20, std::nullopt);
  EXPECT_TRUE(check_history(recorder).ok());
}

TEST(CheckerTest, PendingReadDelOfOtherCriterionDoesNotExcuseFail) {
  HistoryRecorder recorder;
  const PasoObject o = object(1, 5);
  recorder.op_returned(recorder.insert_issued(kP0, 0, o), 1, std::nullopt);
  // Pending read&del that can never match o (different key).
  recorder.search_issued(kP0, 5, OpKind::kReadDel,
                         criterion(Exact{Value{std::int64_t{99}}}));
  const auto rd = recorder.search_issued(kP1, 10, OpKind::kRead, any_int());
  recorder.op_returned(rd, 20, std::nullopt);
  EXPECT_FALSE(check_history(recorder).ok());
}

TEST(CheckerTest, PendingOperationsAreUnconstrained) {
  HistoryRecorder recorder;
  const PasoObject o = object(1, 5);
  recorder.insert_issued(kP0, 0, o);  // never returns (issuer crashed)
  recorder.search_issued(kP1, 5, OpKind::kRead, any_int());  // pending read
  EXPECT_TRUE(check_history(recorder).ok());
}

TEST(CheckerTest, ReturnBeforeIssueIsRejectedByRecorder) {
  HistoryRecorder recorder;
  const auto id = recorder.search_issued(kP0, 10, OpKind::kRead, any_int());
  EXPECT_THROW(recorder.op_returned(id, 5, std::nullopt), InvariantViolation);
}

TEST(CheckerTest, DoubleReturnIsRejectedByRecorder) {
  HistoryRecorder recorder;
  const auto id = recorder.search_issued(kP0, 0, OpKind::kRead, any_int());
  recorder.op_returned(id, 1, std::nullopt);
  EXPECT_THROW(recorder.op_returned(id, 2, std::nullopt), InvariantViolation);
}

}  // namespace
}  // namespace paso::semantics
