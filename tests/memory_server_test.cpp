// Direct tests of the MemoryServer: gcast handling, age assignment, marker
// lifecycle, state capture/install, and the update/view hooks.
#include <gtest/gtest.h>

#include "net/bus_network.hpp"
#include "paso/memory_server.hpp"
#include "sim/simulator.hpp"
#include "storage/hash_store.hpp"

namespace paso {
namespace {

Schema simple_schema() {
  return Schema({
      ClassSpec{"t", {FieldType::kInt, FieldType::kText}, 0, 1},
  });
}

class MemoryServerTest : public ::testing::Test {
 protected:
  MemoryServerTest()
      : schema_(simple_schema()),
        network_(simulator_, CostModel{10, 1}, 2),
        server_(MachineId{0}, schema_,
                [](ClassId) { return std::make_unique<storage::HashStore>(0); },
                network_) {}

  PasoObject object(std::uint64_t seq, std::int64_t key,
                    const std::string& text = "v") {
    PasoObject o;
    o.id = ObjectId{ProcessId{MachineId{1}, 0}, seq};
    o.fields = {Value{key}, Value{text}};
    return o;
  }

  vsync::GcastResult deliver(const ServerMessage& msg) {
    vsync::Payload payload{ServerMessage{msg}, message_wire_size(msg)};
    return server_.handle_gcast(schema_.group_name(ClassId{0}), payload);
  }

  SearchResponse unwrap(const vsync::GcastResult& result) {
    const auto* r = std::any_cast<SearchResponse>(&result.response);
    return r ? *r : std::nullopt;
  }

  Schema schema_;
  sim::Simulator simulator_;
  net::BusNetwork network_;
  MemoryServer server_;
};

TEST_F(MemoryServerTest, StoreThenReadServesObject) {
  deliver(StoreMsg{ClassId{0}, object(1, 7)});
  const auto result = deliver(MemReadMsg{
      ClassId{0}, criterion(Exact{Value{std::int64_t{7}}}, AnyField{})});
  const SearchResponse found = unwrap(result);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->id.sequence, 1u);
  EXPECT_EQ(result.response_bytes, found->wire_size());
  EXPECT_DOUBLE_EQ(result.processing, 1.0);  // Q(l) on a hash store
}

TEST_F(MemoryServerTest, RemoveTakesOldestAndReportsCost) {
  deliver(StoreMsg{ClassId{0}, object(1, 7, "first")});
  deliver(StoreMsg{ClassId{0}, object(2, 7, "second")});
  const auto removed = unwrap(deliver(RemoveMsg{
      ClassId{0}, criterion(Exact{Value{std::int64_t{7}}}, AnyField{})}));
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(std::get<std::string>(removed->fields[1]), "first");
  EXPECT_EQ(server_.live_count(ClassId{0}), 1u);
}

TEST_F(MemoryServerTest, FailedRemoveChargesQueryCost) {
  const auto result = deliver(RemoveMsg{
      ClassId{0}, criterion(Exact{Value{std::int64_t{9}}}, AnyField{})});
  EXPECT_FALSE(unwrap(result).has_value());
  EXPECT_EQ(result.response_bytes, 0u);
  EXPECT_DOUBLE_EQ(result.processing, 1.0);
}

TEST_F(MemoryServerTest, UpdateHookDistinguishesApplied) {
  int stores = 0;
  int removes_applied = 0;
  int removes_failed = 0;
  server_.set_update_hook([&](ClassId, bool is_store, bool applied) {
    if (is_store) {
      ++stores;
    } else if (applied) {
      ++removes_applied;
    } else {
      ++removes_failed;
    }
  });
  deliver(StoreMsg{ClassId{0}, object(1, 7)});
  deliver(RemoveMsg{ClassId{0},
                    criterion(Exact{Value{std::int64_t{7}}}, AnyField{})});
  deliver(RemoveMsg{ClassId{0},
                    criterion(Exact{Value{std::int64_t{7}}}, AnyField{})});
  EXPECT_EQ(stores, 1);
  EXPECT_EQ(removes_applied, 1);
  EXPECT_EQ(removes_failed, 1);
}

TEST_F(MemoryServerTest, MarkersFireOnMatchingStores) {
  std::vector<std::uint64_t> fired;
  server_.set_marker_hook(
      [&fired](MachineId, std::uint64_t marker_id, const PasoObject&) {
        fired.push_back(marker_id);
      });
  deliver(PlaceMarkerMsg{ClassId{0},
                         criterion(Exact{Value{std::int64_t{5}}}, AnyField{}),
                         42, MachineId{1}, 1e9});
  deliver(StoreMsg{ClassId{0}, object(1, 4)});  // no match
  EXPECT_TRUE(fired.empty());
  deliver(StoreMsg{ClassId{0}, object(2, 5)});  // match
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{42}));
}

TEST_F(MemoryServerTest, PlaceMarkerResponseIsImmediateProbe) {
  deliver(StoreMsg{ClassId{0}, object(1, 5)});
  const auto result = deliver(PlaceMarkerMsg{
      ClassId{0}, criterion(Exact{Value{std::int64_t{5}}}, AnyField{}), 42,
      MachineId{1}, 1e9});
  EXPECT_TRUE(unwrap(result).has_value());  // found the existing object
}

TEST_F(MemoryServerTest, CancelledMarkerStopsFiring) {
  int fired = 0;
  server_.set_marker_hook(
      [&fired](MachineId, std::uint64_t, const PasoObject&) { ++fired; });
  deliver(PlaceMarkerMsg{ClassId{0},
                         criterion(TypedAny{FieldType::kInt}, AnyField{}), 1,
                         MachineId{1}, 1e9});
  deliver(CancelMarkerMsg{ClassId{0}, 1, MachineId{1}});
  deliver(StoreMsg{ClassId{0}, object(1, 5)});
  EXPECT_EQ(fired, 0);
}

TEST_F(MemoryServerTest, ExpiredMarkersAreDroppedLazily) {
  int fired = 0;
  server_.set_marker_hook(
      [&fired](MachineId, std::uint64_t, const PasoObject&) { ++fired; });
  deliver(PlaceMarkerMsg{ClassId{0},
                         criterion(TypedAny{FieldType::kInt}, AnyField{}), 1,
                         MachineId{1}, /*expires_at=*/50});
  simulator_.run_until(100);  // past expiry
  deliver(StoreMsg{ClassId{0}, object(1, 5)});
  EXPECT_EQ(fired, 0);
}

TEST_F(MemoryServerTest, StateRoundTripPreservesAgesAndMarkers) {
  deliver(StoreMsg{ClassId{0}, object(1, 5)});
  deliver(StoreMsg{ClassId{0}, object(2, 6)});
  deliver(PlaceMarkerMsg{ClassId{0},
                         criterion(Exact{Value{std::int64_t{9}}}, AnyField{}),
                         7, MachineId{1}, 1e9});
  const auto blob =
      server_.capture_state(schema_.group_name(ClassId{0}));
  EXPECT_GT(blob.bytes, 0u);

  MemoryServer twin(MachineId{1}, schema_,
                    [](ClassId) {
                      return std::make_unique<storage::HashStore>(0);
                    },
                    network_);
  twin.install_state(schema_.group_name(ClassId{0}), blob);
  EXPECT_EQ(twin.live_count(ClassId{0}), 2u);

  // The transferred marker fires on the twin too.
  int fired = 0;
  twin.set_marker_hook(
      [&fired](MachineId, std::uint64_t, const PasoObject&) { ++fired; });
  vsync::Payload payload{
      ServerMessage{StoreMsg{ClassId{0}, object(3, 9)}}, 32};
  twin.handle_gcast(schema_.group_name(ClassId{0}), payload);
  EXPECT_EQ(fired, 1);

  // Ages survived: the twin's next store continues the sequence, so removal
  // order stays globally consistent.
  const auto removed = twin.handle_gcast(
      schema_.group_name(ClassId{0}),
      vsync::Payload{
          ServerMessage{RemoveMsg{
              ClassId{0},
              criterion(TypedAny{FieldType::kInt}, AnyField{})}},
          16});
  const auto* taken = std::any_cast<SearchResponse>(&removed.response);
  ASSERT_NE(taken, nullptr);
  ASSERT_TRUE(taken->has_value());
  EXPECT_EQ((*taken)->id.sequence, 1u);  // oldest by transferred age
}

TEST_F(MemoryServerTest, EraseStateDropsTheClass) {
  deliver(StoreMsg{ClassId{0}, object(1, 5)});
  EXPECT_TRUE(server_.supports(ClassId{0}));
  server_.erase_state(schema_.group_name(ClassId{0}));
  EXPECT_FALSE(server_.supports(ClassId{0}));
  EXPECT_EQ(server_.live_count(ClassId{0}), 0u);
}

TEST_F(MemoryServerTest, CrashResetErasesEverything) {
  deliver(StoreMsg{ClassId{0}, object(1, 5)});
  server_.crash_reset();
  EXPECT_EQ(server_.total_objects(), 0u);
}

TEST_F(MemoryServerTest, DuplicateStoreIsIdempotent) {
  deliver(StoreMsg{ClassId{0}, object(1, 5)});
  deliver(StoreMsg{ClassId{0}, object(1, 5)});
  EXPECT_EQ(server_.live_count(ClassId{0}), 1u);
}

}  // namespace
}  // namespace paso
