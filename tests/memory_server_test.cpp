// Direct tests of the MemoryServer: gcast handling, age assignment, marker
// lifecycle, state capture/install, and the update/view hooks.
#include <gtest/gtest.h>

#include "net/bus_network.hpp"
#include "paso/memory_server.hpp"
#include "sim/simulator.hpp"
#include "storage/hash_store.hpp"

namespace paso {
namespace {

Schema simple_schema() {
  return Schema({
      ClassSpec{"t", {FieldType::kInt, FieldType::kText}, 0, 1},
  });
}

class MemoryServerTest : public ::testing::Test {
 protected:
  MemoryServerTest()
      : schema_(simple_schema()),
        network_(simulator_, CostModel{10, 1}, 2),
        server_(MachineId{0}, schema_,
                [](ClassId) { return std::make_unique<storage::HashStore>(0); },
                network_) {}

  PasoObject object(std::uint64_t seq, std::int64_t key,
                    const std::string& text = "v") {
    PasoObject o;
    o.id = ObjectId{ProcessId{MachineId{1}, 0}, seq};
    o.fields = {Value{key}, Value{text}};
    return o;
  }

  vsync::GcastResult deliver(const ServerMessage& msg) {
    vsync::Payload payload{ServerMessage{msg}, message_wire_size(msg)};
    return server_.handle_gcast(schema_.group_name(ClassId{0}), payload);
  }

  SearchResponse unwrap(const vsync::GcastResult& result) {
    const auto* r = std::any_cast<SearchResponse>(&result.response);
    return r ? *r : std::nullopt;
  }

  Schema schema_;
  sim::Simulator simulator_;
  net::BusNetwork network_;
  MemoryServer server_;
};

TEST_F(MemoryServerTest, StoreThenReadServesObject) {
  deliver(StoreMsg{ClassId{0}, object(1, 7)});
  const auto result = deliver(MemReadMsg{
      ClassId{0}, criterion(Exact{Value{std::int64_t{7}}}, AnyField{})});
  const SearchResponse found = unwrap(result);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->id.sequence, 1u);
  EXPECT_EQ(result.response_bytes, found->wire_size());
  EXPECT_DOUBLE_EQ(result.processing, 1.0);  // Q(l) on a hash store
}

TEST_F(MemoryServerTest, RemoveTakesOldestAndReportsCost) {
  deliver(StoreMsg{ClassId{0}, object(1, 7, "first")});
  deliver(StoreMsg{ClassId{0}, object(2, 7, "second")});
  const auto removed = unwrap(deliver(RemoveMsg{
      ClassId{0}, criterion(Exact{Value{std::int64_t{7}}}, AnyField{})}));
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(std::get<std::string>(removed->fields[1]), "first");
  EXPECT_EQ(server_.live_count(ClassId{0}), 1u);
}

TEST_F(MemoryServerTest, FailedRemoveChargesQueryCost) {
  const auto result = deliver(RemoveMsg{
      ClassId{0}, criterion(Exact{Value{std::int64_t{9}}}, AnyField{})});
  EXPECT_FALSE(unwrap(result).has_value());
  EXPECT_EQ(result.response_bytes, 0u);
  EXPECT_DOUBLE_EQ(result.processing, 1.0);
}

TEST_F(MemoryServerTest, UpdateHookDistinguishesApplied) {
  int stores = 0;
  int removes_applied = 0;
  int removes_failed = 0;
  server_.set_update_hook([&](ClassId, bool is_store, bool applied) {
    if (is_store) {
      ++stores;
    } else if (applied) {
      ++removes_applied;
    } else {
      ++removes_failed;
    }
  });
  deliver(StoreMsg{ClassId{0}, object(1, 7)});
  deliver(RemoveMsg{ClassId{0},
                    criterion(Exact{Value{std::int64_t{7}}}, AnyField{})});
  deliver(RemoveMsg{ClassId{0},
                    criterion(Exact{Value{std::int64_t{7}}}, AnyField{})});
  EXPECT_EQ(stores, 1);
  EXPECT_EQ(removes_applied, 1);
  EXPECT_EQ(removes_failed, 1);
}

TEST_F(MemoryServerTest, MarkersFireOnMatchingStores) {
  std::vector<std::uint64_t> fired;
  server_.set_marker_hook(
      [&fired](MachineId, std::uint64_t marker_id, const PasoObject&) {
        fired.push_back(marker_id);
      });
  deliver(PlaceMarkerMsg{ClassId{0},
                         criterion(Exact{Value{std::int64_t{5}}}, AnyField{}),
                         42, MachineId{1}, 1e9});
  deliver(StoreMsg{ClassId{0}, object(1, 4)});  // no match
  EXPECT_TRUE(fired.empty());
  deliver(StoreMsg{ClassId{0}, object(2, 5)});  // match
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{42}));
}

TEST_F(MemoryServerTest, PlaceMarkerResponseIsImmediateProbe) {
  deliver(StoreMsg{ClassId{0}, object(1, 5)});
  const auto result = deliver(PlaceMarkerMsg{
      ClassId{0}, criterion(Exact{Value{std::int64_t{5}}}, AnyField{}), 42,
      MachineId{1}, 1e9});
  EXPECT_TRUE(unwrap(result).has_value());  // found the existing object
}

TEST_F(MemoryServerTest, CancelledMarkerStopsFiring) {
  int fired = 0;
  server_.set_marker_hook(
      [&fired](MachineId, std::uint64_t, const PasoObject&) { ++fired; });
  deliver(PlaceMarkerMsg{ClassId{0},
                         criterion(TypedAny{FieldType::kInt}, AnyField{}), 1,
                         MachineId{1}, 1e9});
  deliver(CancelMarkerMsg{ClassId{0}, 1, MachineId{1}});
  deliver(StoreMsg{ClassId{0}, object(1, 5)});
  EXPECT_EQ(fired, 0);
}

TEST_F(MemoryServerTest, ExpiredMarkersAreDroppedLazily) {
  int fired = 0;
  server_.set_marker_hook(
      [&fired](MachineId, std::uint64_t, const PasoObject&) { ++fired; });
  deliver(PlaceMarkerMsg{ClassId{0},
                         criterion(TypedAny{FieldType::kInt}, AnyField{}), 1,
                         MachineId{1}, /*expires_at=*/50});
  simulator_.run_until(100);  // past expiry
  deliver(StoreMsg{ClassId{0}, object(1, 5)});
  EXPECT_EQ(fired, 0);
}

TEST_F(MemoryServerTest, ExpiredMarkersAreSweptWithoutAnyInsert) {
  // Dead markers must not linger until the next store happens to scan them:
  // capture_state (the state-transfer path) sweeps them out, so a joiner
  // never inherits garbage and the donor's footprint shrinks.
  deliver(PlaceMarkerMsg{ClassId{0},
                         criterion(Exact{Value{std::int64_t{1}}}, AnyField{}),
                         1, MachineId{1}, /*expires_at=*/50});
  deliver(PlaceMarkerMsg{ClassId{0},
                         criterion(Exact{Value{std::int64_t{2}}}, AnyField{}),
                         2, MachineId{1}, /*expires_at=*/60});
  deliver(PlaceMarkerMsg{ClassId{0},
                         criterion(Exact{Value{std::int64_t{3}}}, AnyField{}),
                         3, MachineId{1}, /*expires_at=*/1e9});
  EXPECT_EQ(server_.marker_count(ClassId{0}), 3u);
  simulator_.run_until(100);  // two of the three are now dead
  const auto blob = server_.capture_state(schema_.group_name(ClassId{0}));
  EXPECT_EQ(server_.marker_count(ClassId{0}), 1u);

  MemoryServer twin(MachineId{1}, schema_,
                    [](ClassId) {
                      return std::make_unique<storage::HashStore>(0);
                    },
                    network_);
  twin.install_state(schema_.group_name(ClassId{0}), blob);
  EXPECT_EQ(twin.marker_count(ClassId{0}), 1u);
}

TEST_F(MemoryServerTest, CancellingOneMarkerSweepsOtherExpiredOnes) {
  deliver(PlaceMarkerMsg{ClassId{0},
                         criterion(Exact{Value{std::int64_t{1}}}, AnyField{}),
                         1, MachineId{1}, /*expires_at=*/50});
  deliver(PlaceMarkerMsg{ClassId{0},
                         criterion(Exact{Value{std::int64_t{2}}}, AnyField{}),
                         2, MachineId{1}, /*expires_at=*/1e9});
  simulator_.run_until(100);
  deliver(CancelMarkerMsg{ClassId{0}, 2, MachineId{1}});
  EXPECT_EQ(server_.marker_count(ClassId{0}), 0u)
      << "cancel path did not sweep the expired marker";
}

TEST_F(MemoryServerTest, MarkerIndexProbesOnlyTheMatchingBucket) {
  // Five Exact markers on distinct keys plus one wildcard: a store must test
  // the wildcard (catch-all) and the one bucketed marker for its key — not
  // all six.
  for (std::int64_t key = 1; key <= 5; ++key) {
    deliver(PlaceMarkerMsg{
        ClassId{0}, criterion(Exact{Value{key}}, AnyField{}),
        static_cast<std::uint64_t>(key), MachineId{1}, 1e9});
  }
  deliver(PlaceMarkerMsg{ClassId{0},
                         criterion(TypedAny{FieldType::kInt}, AnyField{}), 99,
                         MachineId{1}, 1e9});
  std::vector<std::uint64_t> fired;
  server_.set_marker_hook(
      [&fired](MachineId, std::uint64_t marker_id, const PasoObject&) {
        fired.push_back(marker_id);
      });
  const std::uint64_t before = server_.marker_probes();
  deliver(StoreMsg{ClassId{0}, object(1, 3)});
  EXPECT_EQ(server_.marker_probes() - before, 2u)
      << "store probed markers outside its key bucket";
  ASSERT_EQ(fired.size(), 2u);
  // Placement order is preserved across the index: marker 3 before 99.
  EXPECT_EQ(fired[0], 3u);
  EXPECT_EQ(fired[1], 99u);
}

TEST_F(MemoryServerTest, BatchAppliesOpsInOrderWithPerOpSlots) {
  BatchMsg batch;
  batch.cls = ClassId{0};
  batch.ops.emplace_back(StoreMsg{ClassId{0}, object(1, 7, "first")});
  batch.ops.emplace_back(StoreMsg{ClassId{0}, object(2, 7, "second")});
  batch.ops.emplace_back(MemReadMsg{
      ClassId{0}, criterion(Exact{Value{std::int64_t{7}}}, AnyField{})});
  batch.ops.emplace_back(RemoveMsg{
      ClassId{0}, criterion(Exact{Value{std::int64_t{7}}}, AnyField{}), 5});
  const auto result = deliver(ServerMessage{batch});
  const auto* response = std::any_cast<BatchResponse>(&result.response);
  ASSERT_NE(response, nullptr);
  ASSERT_EQ(response->slots.size(), 4u);
  EXPECT_FALSE(response->slots[0].has_value());  // store acks are empty
  EXPECT_FALSE(response->slots[1].has_value());
  ASSERT_TRUE(response->slots[2].has_value());   // read saw the stores
  EXPECT_EQ(response->slots[2]->id.sequence, 1u);
  ASSERT_TRUE(response->slots[3].has_value());   // remove took the oldest
  EXPECT_EQ(response->slots[3]->id.sequence, 1u);
  EXPECT_EQ(server_.live_count(ClassId{0}), 1u);
  EXPECT_EQ(result.response_bytes, response->wire_size());
}

TEST_F(MemoryServerTest, BatchedDuplicatesAreRefusedLikeLoneOnes) {
  // A retry may re-send an op inside a different batch: the identity/token
  // dedup must behave exactly as for lone messages.
  deliver(StoreMsg{ClassId{0}, object(1, 7, "first")});
  deliver(StoreMsg{ClassId{0}, object(2, 7, "second")});
  BatchMsg first;
  first.cls = ClassId{0};
  first.ops.emplace_back(RemoveMsg{
      ClassId{0}, criterion(Exact{Value{std::int64_t{7}}}, AnyField{}), 33});
  const auto first_result = deliver(ServerMessage{first});
  const auto* r1 = std::any_cast<BatchResponse>(&first_result.response);
  ASSERT_NE(r1, nullptr);
  ASSERT_TRUE(r1->slots[0].has_value());

  BatchMsg retry;
  retry.cls = ClassId{0};
  retry.ops.emplace_back(StoreMsg{ClassId{0}, object(1, 7, "first")});
  retry.ops.emplace_back(RemoveMsg{
      ClassId{0}, criterion(Exact{Value{std::int64_t{7}}}, AnyField{}), 33});
  const auto retry_result = deliver(ServerMessage{retry});
  const auto* r2 = std::any_cast<BatchResponse>(&retry_result.response);
  ASSERT_NE(r2, nullptr);
  ASSERT_TRUE(r2->slots[1].has_value());
  EXPECT_EQ(r2->slots[1]->id.sequence, r1->slots[0]->id.sequence)
      << "retried remove did not replay the cached decision";
  EXPECT_EQ(server_.live_count(ClassId{0}), 1u)
      << "batched retry deleted a second object or resurrected the first";
  EXPECT_GE(server_.duplicates_refused(), 2u);
}

TEST_F(MemoryServerTest, StateRoundTripPreservesAgesAndMarkers) {
  deliver(StoreMsg{ClassId{0}, object(1, 5)});
  deliver(StoreMsg{ClassId{0}, object(2, 6)});
  deliver(PlaceMarkerMsg{ClassId{0},
                         criterion(Exact{Value{std::int64_t{9}}}, AnyField{}),
                         7, MachineId{1}, 1e9});
  const auto blob =
      server_.capture_state(schema_.group_name(ClassId{0}));
  EXPECT_GT(blob.bytes, 0u);

  MemoryServer twin(MachineId{1}, schema_,
                    [](ClassId) {
                      return std::make_unique<storage::HashStore>(0);
                    },
                    network_);
  twin.install_state(schema_.group_name(ClassId{0}), blob);
  EXPECT_EQ(twin.live_count(ClassId{0}), 2u);

  // The transferred marker fires on the twin too.
  int fired = 0;
  twin.set_marker_hook(
      [&fired](MachineId, std::uint64_t, const PasoObject&) { ++fired; });
  vsync::Payload payload{
      ServerMessage{StoreMsg{ClassId{0}, object(3, 9)}}, 32};
  twin.handle_gcast(schema_.group_name(ClassId{0}), payload);
  EXPECT_EQ(fired, 1);

  // Ages survived: the twin's next store continues the sequence, so removal
  // order stays globally consistent.
  const auto removed = twin.handle_gcast(
      schema_.group_name(ClassId{0}),
      vsync::Payload{
          ServerMessage{RemoveMsg{
              ClassId{0},
              criterion(TypedAny{FieldType::kInt}, AnyField{})}},
          16});
  const auto* taken = std::any_cast<SearchResponse>(&removed.response);
  ASSERT_NE(taken, nullptr);
  ASSERT_TRUE(taken->has_value());
  EXPECT_EQ((*taken)->id.sequence, 1u);  // oldest by transferred age
}

TEST_F(MemoryServerTest, EraseStateDropsTheClass) {
  deliver(StoreMsg{ClassId{0}, object(1, 5)});
  EXPECT_TRUE(server_.supports(ClassId{0}));
  server_.erase_state(schema_.group_name(ClassId{0}));
  EXPECT_FALSE(server_.supports(ClassId{0}));
  EXPECT_EQ(server_.live_count(ClassId{0}), 0u);
}

TEST_F(MemoryServerTest, CrashResetErasesEverything) {
  deliver(StoreMsg{ClassId{0}, object(1, 5)});
  server_.crash_reset();
  EXPECT_EQ(server_.total_objects(), 0u);
}

TEST_F(MemoryServerTest, DuplicateStoreIsIdempotent) {
  deliver(StoreMsg{ClassId{0}, object(1, 5)});
  deliver(StoreMsg{ClassId{0}, object(1, 5)});
  EXPECT_EQ(server_.live_count(ClassId{0}), 1u);
}

}  // namespace
}  // namespace paso
