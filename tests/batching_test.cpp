// Gcast operation batching: same-route store/mem-read/remove gcasts issued
// within RuntimeConfig::batch_window coalesce into one BatchMsg — one 2*alpha
// per batch in the cost model — while every op keeps its own identity,
// response and retry semantics. The window=0 default must be byte-exact
// pass-through.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "paso/cluster.hpp"
#include "semantics/checker.hpp"

namespace paso {
namespace {

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 1},
  });
}

Tuple task(std::int64_t key, const std::string& payload = "v") {
  return {Value{key}, Value{payload}};
}

void expect_history_ok(Cluster& cluster) {
  const auto check =
      semantics::check_history(cluster.history(), cluster.run_context());
  EXPECT_TRUE(check.ok()) << (check.violations.empty()
                                  ? ""
                                  : check.violations.front());
}

TEST(BatchingTest, WindowZeroNeverBatches) {
  ClusterConfig cfg;
  cfg.machines = 4;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  const ProcessId driver = cluster.process(MachineId{3});
  PasoRuntime& home = cluster.runtime(MachineId{3});

  for (std::int64_t key = 0; key < 8; ++key) {
    home.insert(driver, task(key));
  }
  cluster.settle();

  EXPECT_EQ(home.batcher().batches(), 0u);
  EXPECT_EQ(home.batcher().batched_ops(), 0u);
  EXPECT_EQ(cluster.ledger().per_tag().count("batch"), 0u);
  EXPECT_EQ(cluster.server(MachineId{0}).live_count(ClassId{0}), 8u);
  expect_history_ok(cluster);
}

TEST(BatchingTest, BurstCoalescesAndRespectsMaxBatch) {
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.runtime.batch_window = 50;
  cfg.runtime.max_batch = 8;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  const ProcessId driver = cluster.process(MachineId{3});
  PasoRuntime& home = cluster.runtime(MachineId{3});

  // 20 same-class inserts in one instant: two full batches dispatch on the
  // max_batch trigger, the 4-op tail waits out the window.
  std::size_t done = 0;
  for (std::int64_t key = 0; key < 20; ++key) {
    home.insert(driver, task(key), [&done] { ++done; });
  }
  cluster.settle();

  EXPECT_EQ(done, 20u);
  EXPECT_EQ(home.batcher().batches(), 3u);
  EXPECT_EQ(home.batcher().batched_ops(), 20u);
  ASSERT_EQ(cluster.ledger().per_tag().count("batch"), 1u);
  EXPECT_EQ(cluster.server(MachineId{0}).live_count(ClassId{0}), 20u);
  EXPECT_EQ(cluster.server(MachineId{1}).live_count(ClassId{0}), 20u);
  expect_history_ok(cluster);
}

TEST(BatchingTest, BatchingReducesMsgCostOnABurst) {
  // The same 16-insert burst, batched vs unbatched: the batched run pays
  // 2*alpha once per batch instead of once per op and must come out well
  // under the unbatched ledger total.
  const auto run_burst = [](sim::SimTime window) {
    ClusterConfig cfg;
    cfg.machines = 4;
    cfg.runtime.batch_window = window;
    cfg.runtime.max_batch = 64;
    Cluster cluster(task_schema(), cfg);
    cluster.assign_basic_support();
    const ProcessId driver = cluster.process(MachineId{3});
    PasoRuntime& home = cluster.runtime(MachineId{3});
    const auto before = cluster.ledger().snapshot();
    for (std::int64_t key = 0; key < 16; ++key) {
      home.insert(driver, task(key));
    }
    cluster.settle();
    return cluster.ledger().since(before).msg_cost;
  };

  const Cost unbatched = run_burst(0);
  const Cost batched = run_burst(50);
  EXPECT_LT(batched, unbatched);
  EXPECT_GT(unbatched, batched * 1.5)
      << "batching saved less than a third of the burst's msg-cost";
}

TEST(BatchingTest, DeadlineAlreadyDueDispatchesSynchronously) {
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.runtime.batch_window = 100;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  PasoRuntime& home = cluster.runtime(MachineId{3});
  const std::string group = cluster.schema().group_name(ClassId{0});
  const auto payload_for = [&](std::uint64_t seq) {
    PasoObject object;
    object.id = ObjectId{cluster.process(MachineId{3}), seq};
    object.fields = task(static_cast<std::int64_t>(seq));
    StoreMsg msg{ClassId{0}, object};
    const std::size_t bytes = msg.wire_size();
    return vsync::Payload{ServerMessage{std::move(msg)}, bytes};
  };

  // An op whose latest_dispatch has already arrived (a deadline-driven retry
  // re-issued at or past its cap) must go out synchronously. The regression:
  // the window clamp parked it behind a timer scheduled at `now`, so it sat
  // queued — and collected later ops into its batch — until the simulator
  // processed another event.
  home.batcher().gcast(group, payload_for(900), "store", {},
                       cluster.simulator().now());
  EXPECT_EQ(home.batcher().queued(), 0u)
      << "due op parked behind a timer instead of dispatching";
  EXPECT_EQ(cluster.ledger().per_tag().count("store"), 1u)
      << "store gcast never left the machine synchronously";

  // Companion: the same op with no deadline waits out the window.
  home.batcher().gcast(group, payload_for(901), "store");
  EXPECT_EQ(home.batcher().queued(), 1u);
  cluster.settle();
  EXPECT_EQ(home.batcher().queued(), 0u);
  EXPECT_EQ(cluster.server(MachineId{0}).live_count(ClassId{0}), 2u);
}

TEST(BatchingTest, OpsInOneBatchApplyInIssueOrder) {
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.runtime.batch_window = 100;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  const ProcessId driver = cluster.process(MachineId{3});
  PasoRuntime& home = cluster.runtime(MachineId{3});

  // A store and a read&del of the same key issued back-to-back land in one
  // batch; the removal runs after the store and must claim the object.
  home.insert(driver, task(42, "payload"));
  SearchResponse claimed;
  bool answered = false;
  home.read_del(driver, criterion(Exact{Value{42ll}}, AnyField{}),
                [&](SearchResponse r) {
                  claimed = std::move(r);
                  answered = true;
                });
  cluster.settle();

  ASSERT_TRUE(answered);
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(std::get<std::string>(claimed->fields[1]), "payload");
  EXPECT_GE(home.batcher().batched_ops(), 2u);
  EXPECT_EQ(cluster.server(MachineId{0}).live_count(ClassId{0}), 0u);
  expect_history_ok(cluster);
}

TEST(BatchingTest, RetriedInsertStaysIdempotentUnderBatching) {
  ClusterConfig cfg;
  cfg.machines = 3;
  cfg.lambda = 1;
  cfg.runtime.retry_backoff = 50;
  cfg.runtime.batch_window = 40;
  cfg.runtime.max_batch = 8;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  const ClassId cls{0};
  const ProcessId driver = cluster.process(MachineId{2});
  PasoRuntime& home = cluster.runtime(MachineId{2});

  // Slow the response path so the robust op re-sends its StoreMsg; the
  // retry travels in a fresh (possibly batched) gcast but carries the same
  // identity, so the write group must refuse the duplicate.
  cluster.network().set_delay_window(MachineId{2},
                                     cluster.simulator().now() + 500, 400);
  std::vector<OpReport> reports;
  home.insert_robust(driver, task(7),
                     [&reports](OpReport r) { reports.push_back(r); });
  cluster.settle();

  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].status, OpStatus::kOk);
  EXPECT_GE(reports[0].attempts, 2u) << "delay window never forced a retry";
  std::uint64_t refused = 0;
  for (std::uint32_t m = 0; m < cfg.machines; ++m) {
    refused += cluster.server(MachineId{m}).duplicates_refused();
  }
  EXPECT_GE(refused, 1u) << "no server saw the duplicate store";
  EXPECT_EQ(cluster.server(MachineId{0}).live_count(cls), 1u);
  EXPECT_EQ(cluster.server(MachineId{1}).live_count(cls), 1u);
  expect_history_ok(cluster);
}

TEST(BatchingTest, QueuedBatchDiesWithTheMachine) {
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.runtime.batch_window = 200;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  const ProcessId driver = cluster.process(MachineId{3});
  PasoRuntime& home = cluster.runtime(MachineId{3});

  // Ops still sitting in the batcher's window when the issuer crashes are
  // client-side state: they vanish with the machine — no partial gcast, no
  // stray callbacks, no timer firing on a dead issuer.
  bool fired = false;
  home.insert(driver, task(1), [&fired] { fired = true; });
  home.insert(driver, task(2), [&fired] { fired = true; });
  cluster.crash(MachineId{3});
  cluster.settle();

  EXPECT_FALSE(fired);
  EXPECT_EQ(cluster.server(MachineId{0}).live_count(ClassId{0}), 0u);
  EXPECT_EQ(cluster.server(MachineId{1}).live_count(ClassId{0}), 0u);
  expect_history_ok(cluster);
}

TEST(BatchingTest, RecoveryStateTransferMatchesUnderBatchedTraffic) {
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.lambda = 1;
  cfg.runtime.batch_window = 40;
  cfg.runtime.max_batch = 8;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();  // wg(task) = {m0, m1}
  const ClassId cls{0};
  const MachineId survivor{0};
  const MachineId victim{1};
  const ProcessId driver = cluster.process(MachineId{3});
  PasoRuntime& home = cluster.runtime(MachineId{3});

  // A batched burst lands, the member crashes, more batched traffic flows
  // while it is down, and the recovered replica must still equal the
  // survivor byte for byte — batches travel through the same total order
  // and never through the state-transfer blob twice.
  std::size_t done = 0;
  for (std::int64_t key = 0; key < 6; ++key) {
    home.insert(driver, task(key), [&done] { ++done; });
  }
  cluster.settle();
  ASSERT_EQ(done, 6u);

  cluster.crash(victim);
  cluster.settle_for(200);  // failure detection expels the victim
  ASSERT_FALSE(cluster.server(victim).supports(cls));

  for (std::int64_t key = 6; key < 10; ++key) {
    home.insert(driver, task(key), [&done] { ++done; });
  }
  SearchResponse claimed;
  home.read_del(driver, criterion(Exact{Value{7ll}}, AnyField{}),
                [&claimed](SearchResponse r) { claimed = std::move(r); });
  cluster.settle();
  ASSERT_EQ(done, 10u);
  ASSERT_TRUE(claimed.has_value());

  bool initialized = false;
  cluster.recover(victim, [&initialized] { initialized = true; });
  cluster.settle();
  ASSERT_TRUE(initialized);

  EXPECT_EQ(cluster.server(survivor).live_count(cls),
            cluster.server(victim).live_count(cls));
  EXPECT_EQ(cluster.server(survivor).class_state_bytes(cls),
            cluster.server(victim).class_state_bytes(cls));
  for (std::int64_t key = 0; key < 10; ++key) {
    const SearchCriterion sc = criterion(Exact{Value{key}}, AnyField{});
    const auto a = cluster.server(survivor).local_find(cls, sc);
    const auto b = cluster.server(victim).local_find(cls, sc);
    ASSERT_EQ(a.has_value(), b.has_value()) << "key " << key;
    if (a) EXPECT_EQ(a->id, b->id) << "key " << key;
  }
  expect_history_ok(cluster);
}

TEST(BatchingTest, MixedReadsAndRemovesKeepTheirOwnResponses) {
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.runtime.batch_window = 60;
  cfg.runtime.max_batch = 16;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  const ProcessId driver = cluster.process(MachineId{3});
  PasoRuntime& home = cluster.runtime(MachineId{3});

  for (std::int64_t key = 0; key < 4; ++key) {
    ASSERT_TRUE(cluster.insert_sync(driver, task(key, "k" + std::to_string(key))));
  }

  // Four reads and a remove issued in one window: one gathered response,
  // five distinct answers, each routed back to its own callback.
  std::vector<std::pair<std::int64_t, SearchResponse>> answers;
  for (std::int64_t key = 3; key >= 0; --key) {
    home.read(driver, criterion(Exact{Value{key}}, AnyField{}),
              [&answers, key](SearchResponse r) {
                answers.emplace_back(key, std::move(r));
              });
  }
  SearchResponse removed;
  home.read_del(driver, criterion(Exact{Value{2ll}}, AnyField{}),
                [&removed](SearchResponse r) { removed = std::move(r); });
  cluster.settle();

  ASSERT_EQ(answers.size(), 4u);
  for (const auto& [key, response] : answers) {
    ASSERT_TRUE(response.has_value()) << "key " << key;
    EXPECT_EQ(std::get<std::string>(response->fields[1]),
              "k" + std::to_string(key));
  }
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(cluster.server(MachineId{0}).live_count(ClassId{0}), 3u);
  expect_history_ok(cluster);
}

}  // namespace
}  // namespace paso
