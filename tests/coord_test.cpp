// Tests for the coordination library: locks, semaphores, barriers, atomic
// counters and FIFO queues built purely on the PASO primitives — including
// their behaviour under crashes (the structures live in replicated memory).
#include <gtest/gtest.h>

#include <set>

#include "coord/coord.hpp"
#include "semantics/checker.hpp"

namespace paso::coord {
namespace {

class CoordTest : public ::testing::Test {
 protected:
  CoordTest() : cluster_(Schema(schema_specs()), config()) {
    cluster_.assign_basic_support();
  }

  static ClusterConfig config() {
    ClusterConfig cfg;
    cfg.machines = 6;
    cfg.lambda = 1;
    return cfg;
  }

  ProcessId process(std::uint32_t machine, std::uint32_t ordinal = 0) {
    return cluster_.process(MachineId{machine}, ordinal);
  }

  void run_until(const std::function<bool()>& done) {
    ASSERT_TRUE(cluster_.simulator().run_while_pending(done));
  }

  void expect_clean_history() {
    const auto check = semantics::check_history(cluster_.history());
    EXPECT_TRUE(check.ok()) << check.violations.front();
  }

  Cluster cluster_;
};

TEST_F(CoordTest, LockProvidesMutualExclusion) {
  DistributedLock lock(cluster_, "m");
  lock.create(process(0));

  int holders = 0;
  int max_holders = 0;
  int completed = 0;
  // Five contenders on five machines; each holds the lock over a few
  // simulated milliseconds of "work" and releases.
  for (std::uint32_t m = 1; m <= 5; ++m) {
    const ProcessId p = process(m);
    lock.acquire(p, [&, p](bool ok) {
      ASSERT_TRUE(ok);
      ++holders;
      max_holders = std::max(max_holders, holders);
      cluster_.simulator().schedule_after(500, [&, p] {
        --holders;
        ++completed;
        lock.release(p);
      });
    });
  }
  run_until([&] { return completed == 5; });
  EXPECT_EQ(max_holders, 1);  // never two holders at once
  expect_clean_history();
}

TEST_F(CoordTest, LockAcquireRespectsDeadline) {
  DistributedLock lock(cluster_, "m");
  lock.create(process(0));
  bool first = false;
  lock.acquire(process(1), [&first](bool ok) { first = ok; });
  run_until([&] { return first; });
  // Second acquire with a deadline while the lock is held: must fail.
  std::optional<bool> second;
  lock.acquire(process(2), [&second](bool ok) { second = ok; },
               cluster_.simulator().now() + 2000);
  run_until([&] { return second.has_value(); });
  EXPECT_FALSE(*second);
}

TEST_F(CoordTest, SemaphoreAdmitsAtMostPermits) {
  Semaphore sem(cluster_, "s");
  sem.create(process(0), 2);
  int inside = 0;
  int max_inside = 0;
  int completed = 0;
  for (std::uint32_t m = 1; m <= 5; ++m) {
    const ProcessId p = process(m);
    sem.acquire(p, [&, p](bool ok) {
      ASSERT_TRUE(ok);
      ++inside;
      max_inside = std::max(max_inside, inside);
      cluster_.simulator().schedule_after(400, [&, p] {
        --inside;
        ++completed;
        sem.release(p);
      });
    });
  }
  run_until([&] { return completed == 5; });
  EXPECT_LE(max_inside, 2);
  EXPECT_GE(max_inside, 2);  // with 5 contenders both permits get used
}

TEST_F(CoordTest, BarrierReleasesAllPartiesTogether) {
  constexpr std::size_t kParties = 4;
  Barrier barrier(cluster_, "b", kParties);
  barrier.create(process(0));

  int released = 0;
  for (std::uint32_t m = 1; m <= 3; ++m) {
    barrier.arrive(process(m), [&released] { ++released; });
  }
  cluster_.settle_for(3000);
  EXPECT_EQ(released, 0);  // three of four arrived: nobody released
  barrier.arrive(process(4), [&released] { ++released; });
  run_until([&] { return released == 4; });
  EXPECT_EQ(released, 4);
}

TEST_F(CoordTest, BarrierIsReusableAcrossGenerations) {
  constexpr std::size_t kParties = 3;
  Barrier barrier(cluster_, "b", kParties);
  barrier.create(process(0));
  for (int generation = 0; generation < 4; ++generation) {
    int released = 0;
    for (std::uint32_t m = 1; m <= 3; ++m) {
      barrier.arrive(process(m), [&released] { ++released; });
    }
    run_until([&] { return released == 3; });
  }
  expect_clean_history();
}

TEST_F(CoordTest, AtomicCounterSerializesFetchAdds) {
  AtomicCounter counter(cluster_, "c");
  counter.create(process(0), 100);

  std::multiset<std::int64_t> olds;
  int done = 0;
  for (std::uint32_t m = 1; m <= 5; ++m) {
    counter.fetch_add(process(m), 1, [&](std::int64_t old) {
      olds.insert(old);
      ++done;
    });
  }
  run_until([&] { return done == 5; });
  // Every fetch_add observed a distinct previous value 100..104.
  EXPECT_EQ(olds, (std::multiset<std::int64_t>{100, 101, 102, 103, 104}));
  std::optional<std::int64_t> final_value;
  counter.read(process(0), [&](std::int64_t v) { final_value = v; });
  run_until([&] { return final_value.has_value(); });
  EXPECT_EQ(*final_value, 105);
}

TEST_F(CoordTest, QueuePreservesPerProducerOrder) {
  TupleQueue queue(cluster_, "q");
  queue.create(process(0));

  // Two producers, each pushing its items *sequentially* (chained on the
  // push completion). The queue's total order may interleave the producers
  // arbitrarily, but each producer's own items must come out in order.
  int pushed = 0;
  std::function<void(std::uint32_t, int)> push_chain =
      [&](std::uint32_t machine, int index) {
        if (index == 3) return;
        queue.push(process(machine),
                   "p" + std::to_string(machine) + "-" + std::to_string(index),
                   [&, machine, index] {
                     ++pushed;
                     push_chain(machine, index + 1);
                   });
      };
  push_chain(1, 0);
  push_chain(2, 0);
  run_until([&] { return pushed == 6; });

  std::vector<std::string> popped;
  int pops = 0;
  for (int i = 0; i < 6; ++i) {
    queue.pop(process(3 + (i % 3)), [&](std::optional<std::string> item) {
      ASSERT_TRUE(item.has_value());
      popped.push_back(*item);
      ++pops;
    });
  }
  run_until([&] { return pops == 6; });
  ASSERT_EQ(popped.size(), 6u);
  for (const std::uint32_t producer : {1u, 2u}) {
    std::vector<std::string> mine;
    const std::string prefix = "p" + std::to_string(producer) + "-";
    for (const std::string& item : popped) {
      if (item.starts_with(prefix)) mine.push_back(item);
    }
    ASSERT_EQ(mine.size(), 3u);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(mine[static_cast<std::size_t>(i)],
                prefix + std::to_string(i));
    }
  }
}

TEST_F(CoordTest, QueuePopBlocksUntilPush) {
  TupleQueue queue(cluster_, "q");
  queue.create(process(0));
  std::optional<std::string> item;
  bool done = false;
  queue.pop(process(4), [&](std::optional<std::string> payload) {
    item = std::move(payload);
    done = true;
  });
  cluster_.settle_for(2000);
  EXPECT_FALSE(done);
  queue.push(process(1), "late-arrival");
  run_until([&] { return done; });
  EXPECT_EQ(*item, "late-arrival");
}

TEST_F(CoordTest, StructuresSurviveAReplicaCrash) {
  AtomicCounter counter(cluster_, "c");
  counter.create(process(0), 0);
  cluster_.settle();

  // Find a write-group member of the counter's class and crash it.
  const Tuple probe = {Value{std::string{"ctr/c"}}, Value{std::int64_t{0}},
                       Value{std::int64_t{0}}, Value{std::string{}}};
  const auto cls = cluster_.schema().classify(probe);
  ASSERT_TRUE(cls.has_value());
  const auto support = cluster_.basic_support(*cls);
  cluster_.crash(support[0]);
  cluster_.settle();

  // Issue from machines that are still up (a crashed machine's processes
  // died with it).
  std::vector<std::uint32_t> up;
  for (std::uint32_t m = 0; m < cluster_.machine_count() && up.size() < 4;
       ++m) {
    if (cluster_.is_up(MachineId{m})) up.push_back(m);
  }
  ASSERT_GE(up.size(), 4u);
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    counter.fetch_add(process(up[static_cast<std::size_t>(i)]), 10,
                      [&done](std::int64_t) { ++done; });
  }
  run_until([&] { return done == 3; });
  std::optional<std::int64_t> value;
  counter.read(process(up[3]), [&](std::int64_t v) { value = v; });
  run_until([&] { return value.has_value(); });
  EXPECT_EQ(*value, 30);

  cluster_.recover(support[0]);
  cluster_.settle();
  expect_clean_history();
}

}  // namespace
}  // namespace paso::coord
