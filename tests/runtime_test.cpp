// Focused tests of PasoRuntime behaviour: sc-list walking order, read-group
// routing, in-flight accounting, membership request guards, and the
// crashed-machine issue guards.
#include <gtest/gtest.h>

#include "paso/cluster.hpp"

namespace paso {
namespace {

Schema partitioned_schema() {
  return Schema({
      ClassSpec{"kv", {FieldType::kInt, FieldType::kText}, 0, 4},
  });
}

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() : cluster_(partitioned_schema(), config()) {
    cluster_.assign_basic_support();
  }

  static ClusterConfig config() {
    ClusterConfig cfg;
    cfg.machines = 6;
    cfg.lambda = 1;
    return cfg;
  }

  Cluster cluster_;
};

TEST_F(RuntimeTest, ExactKeyReadProbesExactlyOnePartition) {
  const ProcessId writer = cluster_.process(MachineId{0});
  for (int k = 0; k < 12; ++k) {
    ASSERT_TRUE(cluster_.insert_sync(
        writer, {Value{std::int64_t{k}}, Value{std::string{"x"}}}));
  }
  // A reader outside every write group with an exact key: the sc-list has
  // one candidate class, so exactly one mem-read gcast goes out.
  const ProcessId reader = cluster_.process(MachineId{5});
  const auto tags_before = cluster_.ledger().per_tag();
  const std::uint64_t reads_before =
      tags_before.contains("mem-read") ? tags_before.at("mem-read").messages
                                       : 0;
  ASSERT_TRUE(cluster_
                  .read_sync(reader, criterion(Exact{Value{std::int64_t{3}}},
                                               TypedAny{FieldType::kText}))
                  .has_value());
  const std::uint64_t reads_after =
      cluster_.ledger().per_tag().at("mem-read").messages;
  // lambda + 1 = 2 fan-out messages for the single probed class.
  EXPECT_EQ(reads_after - reads_before, 2u);
}

TEST_F(RuntimeTest, WildcardReadWalksPartitionsUntilHit) {
  const ProcessId writer = cluster_.process(MachineId{0});
  ASSERT_TRUE(cluster_.insert_sync(
      writer, {Value{std::int64_t{5}}, Value{std::string{"only"}}}));
  const ProcessId reader = cluster_.process(MachineId{5});
  // Wildcard key: sc-list = all 4 partitions; the chain stops at the first
  // class that answers, so the fail probes cost but do not multiply.
  const auto found = cluster_.read_sync(
      reader, criterion(TypedAny{FieldType::kInt}, TextPrefix{"on"}));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(std::get<std::string>(found->fields[1]), "only");
}

TEST_F(RuntimeTest, FailedReadProbesEveryCandidateClass) {
  const ProcessId reader = cluster_.process(MachineId{5});
  cluster_.ledger().reset();
  EXPECT_FALSE(cluster_
                   .read_sync(reader, criterion(TypedAny{FieldType::kInt},
                                                TypedAny{FieldType::kText}))
                   .has_value());
  // All 4 partitions probed with 2-member read groups = 8 fan-out messages.
  EXPECT_EQ(cluster_.ledger().per_tag().at("mem-read").messages, 8u);
}

TEST_F(RuntimeTest, InflightTracksOutstandingOperations) {
  PasoRuntime& runtime = cluster_.runtime(MachineId{4});
  const ProcessId p = cluster_.process(MachineId{4});
  EXPECT_EQ(runtime.inflight(), 0u);
  int done = 0;
  runtime.insert(p, {Value{std::int64_t{1}}, Value{std::string{"a"}}},
                 [&done] { ++done; });
  runtime.read(p, criterion(Exact{Value{std::int64_t{1}}}, AnyField{}),
               [&done](SearchResponse) { ++done; });
  EXPECT_EQ(runtime.inflight(), 2u);
  cluster_.simulator().run_while_pending([&done] { return done == 2; });
  EXPECT_EQ(runtime.inflight(), 0u);
}

TEST_F(RuntimeTest, BlockingOpCountsUntilFinished) {
  PasoRuntime& runtime = cluster_.runtime(MachineId{4});
  const ProcessId p = cluster_.process(MachineId{4});
  bool done = false;
  runtime.read_blocking(p, criterion(Exact{Value{std::int64_t{77}}},
                                     AnyField{}),
                        [&done](SearchResponse) { done = true; },
                        BlockingMode::kMarker,
                        cluster_.simulator().now() + 2000);
  EXPECT_EQ(runtime.inflight(), 1u);
  cluster_.simulator().run_while_pending([&done] { return done; });
  EXPECT_EQ(runtime.inflight(), 0u);
}

TEST_F(RuntimeTest, JoinRequestsAreIdempotentWhilePending) {
  PasoRuntime& runtime = cluster_.runtime(MachineId{5});
  const ClassId cls{0};
  runtime.request_join(cls);
  runtime.request_join(cls);  // duplicate while in flight: ignored
  cluster_.settle();
  EXPECT_TRUE(runtime.is_member(cls));
  const auto view = cluster_.groups().view_of(
      cluster_.schema().group_name(cls));
  EXPECT_EQ(view.size(), 3u);  // 2 basic + 1 joiner, not 4
}

TEST_F(RuntimeTest, LeaveThenRejoinWorks) {
  PasoRuntime& runtime = cluster_.runtime(MachineId{5});
  const ClassId cls{0};
  runtime.request_join(cls);
  cluster_.settle();
  ASSERT_TRUE(runtime.is_member(cls));
  runtime.request_leave(cls);
  cluster_.settle();
  EXPECT_FALSE(runtime.is_member(cls));
  EXPECT_FALSE(runtime.server().supports(cls));  // state erased
  runtime.request_join(cls);
  cluster_.settle();
  EXPECT_TRUE(runtime.is_member(cls));
}

TEST_F(RuntimeTest, OperationsFromCrashedMachineAreRejected) {
  cluster_.crash(MachineId{4});
  cluster_.settle();
  PasoRuntime& runtime = cluster_.runtime(MachineId{4});
  const ProcessId p = cluster_.process(MachineId{4});
  EXPECT_THROW(
      runtime.insert(p, {Value{std::int64_t{1}}, Value{std::string{"x"}}}),
      InvariantViolation);
  EXPECT_THROW(runtime.read(p, criterion(AnyField{}, AnyField{}),
                            [](SearchResponse) {}),
               InvariantViolation);
  EXPECT_THROW(runtime.read_del(p, criterion(AnyField{}, AnyField{}),
                                [](SearchResponse) {}),
               InvariantViolation);
  EXPECT_THROW(runtime.read_blocking(p, criterion(AnyField{}, AnyField{}),
                                     [](SearchResponse) {}),
               InvariantViolation);
}

TEST_F(RuntimeTest, InsertAssignsMonotoneSequencePerProcess) {
  PasoRuntime& runtime = cluster_.runtime(MachineId{0});
  const ProcessId a = cluster_.process(MachineId{0}, 0);
  const ProcessId b = cluster_.process(MachineId{0}, 1);
  const ObjectId a0 =
      runtime.insert(a, {Value{std::int64_t{1}}, Value{std::string{"x"}}});
  const ObjectId a1 =
      runtime.insert(a, {Value{std::int64_t{2}}, Value{std::string{"x"}}});
  const ObjectId b0 =
      runtime.insert(b, {Value{std::int64_t{3}}, Value{std::string{"x"}}});
  EXPECT_EQ(a0.sequence + 1, a1.sequence);
  EXPECT_EQ(b0.sequence, 0u);  // per-process numbering
  EXPECT_NE(a0, b0);
  cluster_.settle();
}

TEST_F(RuntimeTest, ReadGroupsCanBeDisabledPerCluster) {
  ClusterConfig cfg = config();
  cfg.runtime.use_read_groups = false;
  Cluster full(partitioned_schema(), cfg);
  full.assign_basic_support();
  // Grow one write group to 4 members.
  const ClassId cls = *full.schema().classify(
      {Value{std::int64_t{3}}, Value{std::string{"x"}}});
  for (std::uint32_t m = 0; m < 4; ++m) {
    full.runtime(MachineId{m}).request_join(cls);
  }
  full.settle();
  const std::size_t wg = full.groups().group_size(full.schema().group_name(cls));
  ASSERT_GE(wg, 4u);
  ASSERT_TRUE(full.insert_sync(
      full.process(MachineId{0}),
      {Value{std::int64_t{3}}, Value{std::string{"x"}}}));
  full.ledger().reset();
  ASSERT_TRUE(full.read_sync(full.process(MachineId{5}),
                             criterion(Exact{Value{std::int64_t{3}}},
                                       TypedAny{FieldType::kText}))
                  .has_value());
  // Without read groups the mem-read fans out to the whole write group.
  EXPECT_EQ(full.ledger().per_tag().at("mem-read").messages, wg);
}

}  // namespace
}  // namespace paso
