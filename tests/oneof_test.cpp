// Tests for the OneOf (IN-set) pattern: matching, typing, wire round-trip,
// sc-list partition-union narrowing, store fast paths, and end-to-end use.
#include <gtest/gtest.h>

#include "paso/cluster.hpp"
#include "paso/wire.hpp"
#include "storage/hash_store.hpp"

namespace paso {
namespace {

Value iv(std::int64_t v) { return Value{v}; }

TEST(OneOfTest, MatchesAnyListedValue) {
  const FieldPattern p = OneOf{{iv(1), iv(3), Value{std::string{"x"}}}};
  EXPECT_TRUE(pattern_matches(p, iv(1)));
  EXPECT_TRUE(pattern_matches(p, iv(3)));
  EXPECT_TRUE(pattern_matches(p, Value{std::string{"x"}}));
  EXPECT_FALSE(pattern_matches(p, iv(2)));
  EXPECT_FALSE(pattern_matches(p, Value{1.0}));
}

TEST(OneOfTest, AdmitsOnlyListedTypes) {
  const FieldPattern p = OneOf{{iv(1), iv(2)}};
  EXPECT_TRUE(pattern_admits_type(p, FieldType::kInt));
  EXPECT_FALSE(pattern_admits_type(p, FieldType::kText));
}

TEST(OneOfTest, EmptySetMatchesNothing) {
  const FieldPattern p = OneOf{};
  EXPECT_FALSE(pattern_matches(p, iv(1)));
  EXPECT_FALSE(pattern_admits_type(p, FieldType::kInt));
}

TEST(OneOfTest, WireRoundTripAndSize) {
  const SearchCriterion sc = criterion(
      OneOf{{iv(5), iv(9), Value{std::string{"abc"}}}}, AnyField{});
  ByteWriter w;
  wire::encode_criterion(w, sc);
  EXPECT_EQ(w.size(), sc.wire_size());
  ByteReader r(w.bytes());
  EXPECT_EQ(wire::decode_criterion(r), sc);
}

TEST(OneOfTest, ToStringListsAlternatives) {
  const SearchCriterion sc = criterion(OneOf{{iv(1), iv(2)}});
  EXPECT_EQ(sc.to_string(), "[{1|2}]");
}

TEST(OneOfTest, ScListUnionsOnlyTheListedPartitions) {
  Schema schema({ClassSpec{"kv", {FieldType::kInt, FieldType::kText}, 0, 8}});
  // Gather the partitions the two keys actually hash to.
  const auto c1 = schema.classify({iv(100), Value{std::string{"x"}}});
  const auto c2 = schema.classify({iv(200), Value{std::string{"x"}}});
  ASSERT_TRUE(c1 && c2);
  const auto candidates = schema.candidate_classes(
      criterion(OneOf{{iv(100), iv(200)}}, TypedAny{FieldType::kText}));
  // Exactly the union of the two classes (1 if they collide, else 2),
  // never the full fan-out of 8.
  const std::size_t expected = c1 == c2 ? 1 : 2;
  EXPECT_EQ(candidates.size(), expected);
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), *c1),
            candidates.end());
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), *c2),
            candidates.end());
}

TEST(OneOfTest, HashStoreUsesBucketUnion) {
  storage::HashStore store(0);
  for (std::int64_t k = 0; k < 50; ++k) {
    PasoObject o;
    o.id = ObjectId{ProcessId{MachineId{0}, 0},
                    static_cast<std::uint64_t>(k)};
    o.fields = {iv(k), Value{std::string{"x"}}};
    store.store(o, static_cast<std::uint64_t>(k));
  }
  const auto found =
      store.find(criterion(OneOf{{iv(31), iv(17)}}, AnyField{}));
  ASSERT_TRUE(found.has_value());
  // Oldest of the two (age 17).
  EXPECT_EQ(std::get<std::int64_t>(found->fields[0]), 17);
}

TEST(OneOfTest, EndToEndReadAcrossSelectedPartitions) {
  Schema schema({ClassSpec{"kv", {FieldType::kInt, FieldType::kText}, 0, 4}});
  ClusterConfig cfg;
  cfg.machines = 6;
  cfg.lambda = 1;
  Cluster cluster(std::move(schema), cfg);
  cluster.assign_basic_support();
  const ProcessId p = cluster.process(MachineId{0});
  for (std::int64_t k = 0; k < 8; ++k) {
    ASSERT_TRUE(cluster.insert_sync(
        p, {iv(k), Value{std::string{"v" + std::to_string(k)}}}));
  }
  // read&del with an IN-set: takes one of the listed keys, exactly once.
  const auto taken = cluster.read_del_sync(
      p, criterion(OneOf{{iv(2), iv(5)}}, TypedAny{FieldType::kText}));
  ASSERT_TRUE(taken.has_value());
  const std::int64_t got = std::get<std::int64_t>(taken->fields[0]);
  EXPECT_TRUE(got == 2 || got == 5);
  const auto second = cluster.read_del_sync(
      p, criterion(OneOf{{iv(2), iv(5)}}, TypedAny{FieldType::kText}));
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(std::get<std::int64_t>(second->fields[0]), got);
  EXPECT_FALSE(cluster
                   .read_del_sync(p, criterion(OneOf{{iv(2), iv(5)}},
                                               TypedAny{FieldType::kText}))
                   .has_value());
}

}  // namespace
}  // namespace paso
