// Tests for the blocking read / read&del variants (Section 4.3): busy-wait
// polling, read markers with the hybrid expiry scheme, and the claim/retry
// realization of marker-based read&del.
#include <gtest/gtest.h>

#include "paso/cluster.hpp"
#include "semantics/checker.hpp"

namespace paso {
namespace {

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 1},
  });
}

Tuple task(std::int64_t key, const std::string& text) {
  return {Value{key}, Value{text}};
}

SearchCriterion by_key(std::int64_t key) {
  return criterion(Exact{Value{key}}, TypedAny{FieldType::kText});
}

class BlockingTest : public ::testing::TestWithParam<BlockingMode> {
 protected:
  BlockingTest() : cluster_(task_schema(), config()) {
    cluster_.assign_basic_support();
  }

  static ClusterConfig config() {
    ClusterConfig cfg;
    cfg.machines = 5;
    cfg.lambda = 1;
    cfg.runtime.poll_interval = 50;
    cfg.runtime.marker_ttl = 1000;
    return cfg;
  }

  Cluster cluster_;
};

TEST_P(BlockingTest, ReturnsImmediatelyWhenObjectPresent) {
  const ProcessId p = cluster_.process(MachineId{4});
  ASSERT_TRUE(cluster_.insert_sync(p, task(1, "ready")));
  const auto found =
      cluster_.read_blocking_sync(p, by_key(1), GetParam(), 1e9);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(std::get<std::string>(found->fields[1]), "ready");
}

TEST_P(BlockingTest, WakesUpOnLaterInsert) {
  const ProcessId reader = cluster_.process(MachineId{4});
  const ProcessId writer = cluster_.process(MachineId{0});

  SearchResponse result;
  bool done = false;
  cluster_.runtime(reader.machine)
      .read_blocking(reader, by_key(7),
                     [&](SearchResponse r) {
                       result = std::move(r);
                       done = true;
                     },
                     GetParam(), 1e9);
  // Let the blocking machinery arm itself, then insert.
  cluster_.settle_for(5000);
  EXPECT_FALSE(done);
  cluster_.runtime(writer.machine).insert(writer, task(7, "late"), {});
  cluster_.simulator().run_while_pending([&] { return done; });
  ASSERT_TRUE(done);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(std::get<std::string>(result->fields[1]), "late");

  const auto check = semantics::check_history(cluster_.history());
  EXPECT_TRUE(check.ok()) << check.violations.front();
}

TEST_P(BlockingTest, DeadlineExpiresWithFail) {
  const ProcessId p = cluster_.process(MachineId{2});
  const auto deadline = cluster_.simulator().now() + 3000;
  const auto result =
      cluster_.read_blocking_sync(p, by_key(404), GetParam(), deadline);
  EXPECT_FALSE(result.has_value());
  EXPECT_GE(cluster_.simulator().now(), 3000.0);
}

TEST_P(BlockingTest, BlockingReadDelConsumesExactlyOnce) {
  const ProcessId a = cluster_.process(MachineId{3});
  const ProcessId b = cluster_.process(MachineId{4});
  const ProcessId writer = cluster_.process(MachineId{0});

  SearchResponse ra, rb;
  int done = 0;
  cluster_.runtime(a.machine)
      .read_del_blocking(a, by_key(5),
                         [&](SearchResponse r) {
                           ra = std::move(r);
                           ++done;
                         },
                         GetParam(), 1e9);
  cluster_.runtime(b.machine)
      .read_del_blocking(b, by_key(5),
                         [&](SearchResponse r) {
                           rb = std::move(r);
                           ++done;
                         },
                         GetParam(), 1e9);
  cluster_.settle_for(2000);
  EXPECT_EQ(done, 0);

  // One object: exactly one waiter may win it.
  cluster_.runtime(writer.machine).insert(writer, task(5, "prize"), {});
  cluster_.simulator().run_while_pending([&] { return done == 1; });
  EXPECT_EQ(done, 1);
  EXPECT_TRUE(ra.has_value() != rb.has_value());

  // A second object satisfies the loser.
  cluster_.runtime(writer.machine).insert(writer, task(5, "consolation"), {});
  cluster_.simulator().run_while_pending([&] { return done == 2; });
  EXPECT_EQ(done, 2);
  EXPECT_TRUE(ra.has_value() && rb.has_value());
  EXPECT_NE(ra->id, rb->id);

  const auto check = semantics::check_history(cluster_.history());
  EXPECT_TRUE(check.ok()) << check.violations.front();
}

INSTANTIATE_TEST_SUITE_P(Modes, BlockingTest,
                         ::testing::Values(BlockingMode::kPoll,
                                           BlockingMode::kMarker),
                         [](const auto& info) {
                           return info.param == BlockingMode::kPoll
                                      ? "Poll"
                                      : "Marker";
                         });

TEST(BlockingMarkerTest, MarkerSurvivesExpiryViaRearm) {
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.lambda = 1;
  cfg.runtime.marker_ttl = 200;  // short TTL: several re-arm rounds
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();

  const ProcessId reader = cluster.process(MachineId{3});
  const ProcessId writer = cluster.process(MachineId{0});
  SearchResponse result;
  bool done = false;
  cluster.runtime(reader.machine)
      .read_blocking(reader, by_key(1),
                     [&](SearchResponse r) {
                       result = std::move(r);
                       done = true;
                     },
                     BlockingMode::kMarker, 1e9);
  cluster.settle_for(1500);  // many TTL periods pass
  EXPECT_FALSE(done);
  cluster.runtime(writer.machine).insert(writer, task(1, "finally"), {});
  cluster.simulator().run_while_pending([&] { return done; });
  EXPECT_TRUE(done);
  EXPECT_TRUE(result.has_value());
}

TEST(BlockingMarkerTest, CancelledMarkersDoNotFireAgain) {
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.lambda = 1;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();

  const ProcessId reader = cluster.process(MachineId{3});
  const ProcessId writer = cluster.process(MachineId{0});
  int completions = 0;
  cluster.runtime(reader.machine)
      .read_blocking(reader, by_key(1),
                     [&](SearchResponse) { ++completions; },
                     BlockingMode::kMarker, 1e9);
  cluster.settle_for(500);
  // Two inserts; the blocking read completes once, markers are cancelled,
  // and the second matching insert must not re-trigger the callback.
  ASSERT_TRUE(cluster.insert_sync(writer, task(1, "a")));
  ASSERT_TRUE(cluster.insert_sync(writer, task(1, "b")));
  cluster.settle_for(5000);
  EXPECT_EQ(completions, 1);
}

TEST(BlockingMarkerTest, ExpiredMarkersAreSweptWithoutFurtherTraffic) {
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.lambda = 1;
  cfg.runtime.marker_ttl = 200;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();

  const ProcessId reader = cluster.process(MachineId{3});
  cluster.runtime(reader.machine)
      .read_blocking(reader, by_key(1), [](SearchResponse) {},
                     BlockingMode::kMarker, 1e9);
  cluster.settle_for(100);  // markers placed, TTL not yet expired
  const auto support = cluster.basic_support(ClassId{0});
  std::size_t placed = 0;
  for (const MachineId m : support) {
    placed += cluster.server(m).marker_count(ClassId{0});
  }
  ASSERT_GT(placed, 0u) << "blocking read never placed markers";

  // The owner dies, so no cancel and no TTL re-arm will ever arrive — and
  // from here on NOTHING else touches the class. The regression: expired
  // markers were only swept from the place/cancel/capture paths, so a class
  // whose only traffic was the blocked op itself hoarded them forever. The
  // holders' sweep timers must reclaim them on TTL expiry alone.
  cluster.crash(MachineId{3});
  cluster.settle();
  for (const MachineId m : support) {
    EXPECT_EQ(cluster.server(m).marker_count(ClassId{0}), 0u)
        << "expired marker hoarded on machine " << m.value;
  }
}

}  // namespace
}  // namespace paso
