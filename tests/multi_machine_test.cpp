// Tests for the whole-cluster allocation game: projection correctness,
// additivity of the per-machine decomposition, and the global competitive
// bound on rotating hot-spot workloads.
#include <gtest/gtest.h>

#include "analysis/multi_machine.hpp"

namespace paso::analysis {
namespace {

TEST(ProjectionTest, KeepsUpdatesAndOwnReadsInOrder) {
  GlobalSequence global{
      {ReqKind::kRead, 0, 8},  {ReqKind::kUpdate, 0, 8},
      {ReqKind::kRead, 1, 8},  {ReqKind::kRead, 0, 8},
      {ReqKind::kUpdate, 0, 8},
  };
  const RequestSequence m0 = project(global, 0);
  ASSERT_EQ(m0.size(), 4u);
  EXPECT_EQ(m0[0].kind, ReqKind::kRead);
  EXPECT_EQ(m0[1].kind, ReqKind::kUpdate);
  EXPECT_EQ(m0[2].kind, ReqKind::kRead);
  EXPECT_EQ(m0[3].kind, ReqKind::kUpdate);
  const RequestSequence m1 = project(global, 1);
  ASSERT_EQ(m1.size(), 3u);
  EXPECT_EQ(m1[0].kind, ReqKind::kUpdate);
  EXPECT_EQ(m1[1].kind, ReqKind::kRead);
}

TEST(GlobalGameTest, SingleMachineReducesToBasicGame) {
  Rng rng(3);
  const GameCosts costs{1, 2};
  const adaptive::CounterConfig config{8, 1, false, false};
  GlobalSequence global;
  for (int i = 0; i < 2000; ++i) {
    global.push_back(GlobalRequest{
        rng.chance(0.6) ? ReqKind::kRead : ReqKind::kUpdate, 0, 8});
  }
  const GlobalComparison whole =
      compare_basic_global(global, 1, costs, config);
  const CompetitiveComparison single =
      compare_basic(project(global, 0), costs, config);
  EXPECT_DOUBLE_EQ(whole.online, single.online);
  EXPECT_DOUBLE_EQ(whole.opt, single.opt);
}

TEST(GlobalGameTest, TotalsAreSumsOfProjections) {
  Rng rng(5);
  const GameCosts costs{1, 3};
  const adaptive::CounterConfig config{8, 1, false, false};
  HotSpotOptions options;
  options.machines = 4;
  const GlobalSequence global = hotspot_sequence(options, 8, rng);
  const GlobalComparison whole =
      compare_basic_global(global, 4, costs, config);
  Cost online_sum = 0;
  Cost opt_sum = 0;
  for (std::size_t m = 0; m < 4; ++m) {
    const auto cmp = compare_basic(project(global, m), costs, config);
    online_sum += cmp.online;
    opt_sum += cmp.opt;
  }
  EXPECT_DOUBLE_EQ(whole.online, online_sum);
  EXPECT_DOUBLE_EQ(whole.opt, opt_sum);
  EXPECT_EQ(whole.per_machine_ratio.size(), 4u);
}

class GlobalBoundSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GlobalBoundSweep, HotspotWorkloadsRespectTheorem2Globally) {
  const std::size_t lambda = GetParam();
  Rng rng(911 + lambda);
  const GameCosts costs{1, lambda + 1};
  for (const int k : {4, 16}) {
    const adaptive::CounterConfig config{static_cast<Cost>(k), 1, false,
                                         false};
    HotSpotOptions options;
    options.machines = 6;
    const GlobalSequence global =
        hotspot_sequence(options, static_cast<Cost>(k), rng);
    const GlobalComparison whole =
        compare_basic_global(global, options.machines, costs, config);
    EXPECT_LE(whole.ratio, theorem2_bound(lambda, k) + 1e-9)
        << "lambda=" << lambda << " K=" << k;
    // Every individual machine also respects the bound.
    for (const double ratio : whole.per_machine_ratio) {
      EXPECT_LE(ratio, theorem2_bound(lambda, k) + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Lambda, GlobalBoundSweep,
                         ::testing::Values<std::size_t>(1, 2, 3),
                         [](const auto& info) {
                           return "lambda" + std::to_string(info.param);
                         });

TEST(HotspotTest, LocalityConcentratesReadsOnTheHotMachine) {
  Rng rng(17);
  HotSpotOptions options;
  options.machines = 5;
  options.phases = 1;
  options.phase_length = 5000;
  options.locality = 0.9;
  const GlobalSequence seq = hotspot_sequence(options, 8, rng);
  std::size_t hot_reads = 0;
  std::size_t reads = 0;
  for (const GlobalRequest& r : seq) {
    if (r.kind != ReqKind::kRead) continue;
    ++reads;
    if (r.machine == 0) ++hot_reads;  // phase 0's hot machine is 0
  }
  EXPECT_GT(reads, 3000u);
  EXPECT_GT(static_cast<double>(hot_reads) / static_cast<double>(reads),
            0.85);
}

}  // namespace
}  // namespace paso::analysis
