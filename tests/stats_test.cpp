// Tests for Summary statistics and the latency-report helper.
#include <gtest/gtest.h>

#include "analysis/latency.hpp"
#include "common/stats.hpp"
#include "paso/cluster.hpp"

namespace paso {
namespace {

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(SummaryTest, PercentilesNearestRank) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.0, 1.0);
  EXPECT_NEAR(s.percentile(0.95), 95.0, 1.0);
}

TEST(SummaryTest, PercentileInterleavedWithAdds) {
  Summary s;
  s.add(10);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  s.add(20);
  s.add(0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);  // re-sorts after mutation
}

TEST(SummaryTest, MergeCombinesSamples) {
  Summary a;
  Summary b;
  a.add(1);
  b.add(3);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(SummaryTest, EmptyThrows) {
  Summary s;
  EXPECT_THROW(s.mean(), InvariantViolation);
  EXPECT_THROW(s.percentile(0.5), InvariantViolation);
}

TEST(LatencyReportTest, SplitsByKindAndCountsPending) {
  semantics::HistoryRecorder recorder;
  const ProcessId p{MachineId{0}, 0};
  PasoObject o;
  o.id = ObjectId{p, 1};
  o.fields = {Value{std::int64_t{1}}};

  const auto ins = recorder.insert_issued(p, 0, o);
  recorder.op_returned(ins, 10, std::nullopt);
  const auto rd = recorder.search_issued(p, 20, semantics::OpKind::kRead,
                                         criterion(AnyField{}));
  recorder.op_returned(rd, 25, o);
  recorder.search_issued(p, 30, semantics::OpKind::kReadDel,
                         criterion(AnyField{}));  // pending forever

  const auto report = analysis::latency_report(recorder);
  EXPECT_EQ(report.insert.count(), 1u);
  EXPECT_DOUBLE_EQ(report.insert.mean(), 10.0);
  EXPECT_EQ(report.read.count(), 1u);
  EXPECT_DOUBLE_EQ(report.read.mean(), 5.0);
  EXPECT_TRUE(report.read_del.empty());
  EXPECT_EQ(report.pending, 1u);
}

TEST(LatencyReportTest, EndToEndLatenciesAreOrderedSensibly) {
  Schema schema({ClassSpec{"t", {FieldType::kInt, FieldType::kText}, 0, 1}});
  ClusterConfig cfg;
  cfg.machines = 5;
  cfg.lambda = 1;
  Cluster cluster(std::move(schema), cfg);
  cluster.assign_basic_support();
  const ClassId cls{0};
  const MachineId member = cluster.basic_support(cls).front();
  const MachineId outside{4};
  for (int i = 0; i < 10; ++i) {
    cluster.insert_sync(cluster.process(member),
                        {Value{std::int64_t{i}}, Value{std::string{"x"}}});
    cluster.read_sync(cluster.process(member),
                      criterion(Exact{Value{std::int64_t{i}}}, AnyField{}));
    cluster.read_sync(cluster.process(outside),
                      criterion(Exact{Value{std::int64_t{i}}}, AnyField{}));
  }
  const auto report = analysis::latency_report(cluster.history());
  EXPECT_EQ(report.pending, 0u);
  // Local reads complete in zero virtual time; remote ones pay the bus.
  EXPECT_DOUBLE_EQ(report.read.min(), 0.0);
  EXPECT_GT(report.read.max(), 0.0);
  EXPECT_GT(report.insert.mean(), 0.0);
}

}  // namespace
}  // namespace paso
