// Unit tests for the persistence subsystem (src/persist): SimDisk cost
// accounting and fault plane, WAL framing + damage detection, checkpoint
// image round-trips, and the PersistenceManager's append / checkpoint /
// recover / delta-suffix life cycle.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "paso/wire.hpp"
#include "persist/checkpoint.hpp"
#include "persist/disk.hpp"
#include "persist/manager.hpp"
#include "persist/wal.hpp"

namespace paso::persist {
namespace {

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 1},
  });
}

ServerMessage store_msg(std::uint32_t cls, std::int64_t key,
                        std::uint64_t seq) {
  PasoObject object;
  object.id = ObjectId{ProcessId{MachineId{9}, 0}, seq};
  object.fields = {Value{key}, Value{std::string("payload")}};
  return StoreMsg{ClassId{cls}, object};
}

// --- SimDisk ---------------------------------------------------------------

TEST(SimDiskTest, ChargesSeekPlusBytes) {
  DiskCostModel model;
  model.seek = 10;
  model.byte = 1;
  SimDisk disk(model);
  EXPECT_DOUBLE_EQ(disk.append("f", {1, 2, 3}), 13.0);
  EXPECT_DOUBLE_EQ(disk.append("f", {4}), 11.0);
  EXPECT_EQ(disk.size("f"), 4u);
  std::vector<std::uint8_t> out;
  EXPECT_DOUBLE_EQ(disk.read("f", out), 14.0);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  // Truncate charges seek only, and a missing file reads free.
  EXPECT_DOUBLE_EQ(disk.truncate("f", 2), 10.0);
  EXPECT_EQ(disk.size("f"), 2u);
  EXPECT_DOUBLE_EQ(disk.read("missing", out), 0.0);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(disk.writes(), 3u);  // 2 appends + 1 truncate
  EXPECT_EQ(disk.reads(), 1u);
}

TEST(SimDiskTest, FaultPlaneMutatesWithoutCost) {
  SimDisk disk;
  disk.append("f", {1, 2, 3, 4});
  const Cost before = disk.total_cost();
  EXPECT_TRUE(disk.chop("f", 2));
  EXPECT_EQ(disk.size("f"), 2u);
  EXPECT_TRUE(disk.flip("f", 1));
  EXPECT_NE((*disk.peek("f"))[1], 2);
  EXPECT_DOUBLE_EQ(disk.total_cost(), before);
  EXPECT_FALSE(disk.chop("missing", 1));
  EXPECT_FALSE(disk.flip("missing", 0));
}

// --- WAL framing ------------------------------------------------------------

TEST(WalTest, RoundTripsRecords) {
  std::vector<std::uint8_t> log;
  for (std::uint64_t lsn = 1; lsn <= 3; ++lsn) {
    WalRecord record{lsn, {std::uint8_t(lsn), 0xAB}};
    const auto framed = encode_record(record);
    EXPECT_EQ(framed.size(), kWalFrameBytes + record.payload.size());
    log.insert(log.end(), framed.begin(), framed.end());
  }
  const WalScan scan = scan_log(log);
  EXPECT_FALSE(scan.corrupt);
  EXPECT_EQ(scan.valid_bytes, log.size());
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[2].lsn, 3u);
  EXPECT_EQ(scan.records[2].payload[0], 3u);
}

TEST(WalTest, TornTailKeepsCleanPrefix) {
  std::vector<std::uint8_t> log;
  for (std::uint64_t lsn = 1; lsn <= 2; ++lsn) {
    const auto framed = encode_record(WalRecord{lsn, {1, 2, 3, 4}});
    log.insert(log.end(), framed.begin(), framed.end());
  }
  const std::size_t full = log.size();
  log.resize(full - 3);  // tear the last record's checksum
  const WalScan scan = scan_log(log);
  EXPECT_TRUE(scan.corrupt);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.valid_bytes, full / 2);
}

TEST(WalTest, FlippedByteFailsChecksum) {
  auto log = encode_record(WalRecord{7, {9, 9, 9}});
  log[kWalFrameBytes - 4 + 1] ^= 0x10;  // inside the payload
  const WalScan scan = scan_log(log);
  EXPECT_TRUE(scan.corrupt);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.valid_bytes, 0u);
}

TEST(WalTest, ChecksumIsPositionBound) {
  // The same payload at a different lsn must not validate: the checksum is
  // seeded with the lsn, so spliced records are detected.
  const std::vector<std::uint8_t> payload{1, 2, 3};
  EXPECT_NE(wal_checksum(1, payload), wal_checksum(2, payload));
}

// --- checkpoint images -------------------------------------------------------

TEST(CheckpointTest, RoundTripsImage) {
  const Schema schema = task_schema();
  const auto signature = schema.specs()[0].signature;
  CheckpointImage image;
  image.epoch = 3;
  image.lsn = 41;
  image.next_age = 7;
  for (std::uint64_t i = 0; i < 5; ++i) {
    PasoObject object;
    object.id = ObjectId{ProcessId{MachineId{1}, 0}, i};
    object.fields = {Value{std::int64_t(i)}, Value{std::string("v")}};
    image.objects.push_back({i, object});
    image.applied_inserts.push_back(object.id);
  }
  image.remove_cache.emplace_back(99, std::nullopt);
  PasoObject removed;
  removed.id = ObjectId{ProcessId{MachineId{2}, 0}, 50};
  removed.fields = {Value{std::int64_t(50)}, Value{std::string("gone")}};
  image.remove_cache.emplace_back(100, SearchResponse{removed});

  const auto bytes = encode_checkpoint(image);
  const auto decoded = decode_checkpoint(bytes, signature);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->epoch, 3u);
  EXPECT_EQ(decoded->lsn, 41u);
  EXPECT_EQ(decoded->next_age, 7u);
  ASSERT_EQ(decoded->objects.size(), 5u);
  EXPECT_EQ(decoded->objects[4].age, 4u);
  EXPECT_TRUE(decoded->objects[4].object == image.objects[4].object);
  EXPECT_EQ(decoded->applied_inserts, image.applied_inserts);
  ASSERT_EQ(decoded->remove_cache.size(), 2u);
  EXPECT_FALSE(decoded->remove_cache[0].second.has_value());
  ASSERT_TRUE(decoded->remove_cache[1].second.has_value());
  EXPECT_TRUE(decoded->remove_cache[1].second->id == removed.id);
}

TEST(CheckpointTest, DamagedImageIsRejected) {
  const Schema schema = task_schema();
  CheckpointImage image;
  image.lsn = 5;
  auto bytes = encode_checkpoint(image);
  auto flipped = bytes;
  flipped[bytes.size() / 2] ^= 0x40;
  EXPECT_FALSE(
      decode_checkpoint(flipped, schema.specs()[0].signature).has_value());
  auto torn = bytes;
  torn.resize(torn.size() - 2);
  EXPECT_FALSE(
      decode_checkpoint(torn, schema.specs()[0].signature).has_value());
}

// --- PersistenceManager ------------------------------------------------------

PersistenceConfig enabled_config() {
  PersistenceConfig config;
  config.enabled = true;
  return config;
}

/// The manager keeps a reference to the schema, so own both together.
struct ManagerFixture {
  explicit ManagerFixture(PersistenceConfig config = enabled_config())
      : schema(task_schema()), manager(MachineId{0}, schema, config) {}
  Schema schema;
  PersistenceManager manager;
};

TEST(PersistenceManagerTest, DisabledManagerDoesNoIO) {
  ManagerFixture fx{PersistenceConfig{}};
  PersistenceManager& manager = fx.manager;
  EXPECT_FALSE(manager.enabled());
  EXPECT_DOUBLE_EQ(manager.log_op(ClassId{0}, 1, store_msg(0, 1, 1)), 0.0);
  EXPECT_EQ(manager.disk().writes(), 0u);
  EXPECT_TRUE(manager.durable_classes().empty());
}

TEST(PersistenceManagerTest, AppendsThenRecovers) {
  const Schema schema = task_schema();
  PersistenceManager manager(MachineId{0}, schema, enabled_config());
  for (std::uint64_t lsn = 1; lsn <= 4; ++lsn) {
    EXPECT_GT(manager.log_op(ClassId{0}, lsn, store_msg(0, 10 + lsn, lsn)),
              0.0);
  }
  EXPECT_EQ(manager.durable_lsn(ClassId{0}), 4u);
  ASSERT_EQ(manager.durable_classes().size(), 1u);

  const auto recovered = manager.recover(ClassId{0});
  ASSERT_TRUE(recovered.has_value());
  EXPECT_FALSE(recovered->checkpoint.has_value());
  ASSERT_EQ(recovered->tail.size(), 4u);
  EXPECT_EQ(recovered->tail[0].lsn, 1u);
  EXPECT_EQ(recovered->tail[3].lsn, 4u);
  EXPECT_FALSE(recovered->corruption_detected);
  EXPECT_GT(recovered->cost, 0.0);
  // The recovered payloads decode back to the logged messages.
  const auto resolver = [&schema](ClassId cls) {
    return schema.specs()[schema.locate(cls).first].signature;
  };
  const ServerMessage round =
      wire::decode_message(recovered->tail[2].payload, resolver);
  const auto* store = std::get_if<StoreMsg>(&round);
  ASSERT_NE(store, nullptr);
  EXPECT_TRUE(*store == std::get<StoreMsg>(store_msg(0, 13, 3)));
}

TEST(PersistenceManagerTest, DiskAccountingHookSeesWritesAndCompaction) {
  ManagerFixture fx;
  PersistenceManager& manager = fx.manager;
  std::uint64_t written_total = 0;
  std::uint64_t last_on_disk = 0;
  std::size_t calls = 0;
  manager.set_disk_accounting(
      [&](std::uint64_t written, std::uint64_t on_disk) {
        written_total += written;
        last_on_disk = on_disk;
        ++calls;
      });

  for (std::uint64_t lsn = 1; lsn <= 4; ++lsn) {
    manager.log_op(ClassId{0}, lsn, store_msg(0, lsn, lsn));
  }
  EXPECT_EQ(calls, 4u);
  EXPECT_EQ(written_total, manager.stats().append_bytes);
  // The on_disk figure is literally the file sizes.
  EXPECT_EQ(last_on_disk, manager.bytes_on_disk());
  EXPECT_EQ(last_on_disk, manager.log_bytes(ClassId{0}));

  // A checkpoint reports its own bytes written, but on_disk reflects the
  // compaction: log gone, checkpoint in its place.
  CheckpointImage image;
  image.lsn = 4;
  manager.write_checkpoint(ClassId{0}, image, /*now=*/50.0);
  EXPECT_EQ(written_total,
            manager.stats().append_bytes + manager.stats().checkpoint_bytes);
  EXPECT_EQ(last_on_disk, manager.bytes_on_disk());
  EXPECT_EQ(manager.log_bytes(ClassId{0}), 0u);

  // Erasure fires the hook with zero written and an empty disk.
  manager.erase_class(ClassId{0});
  EXPECT_EQ(last_on_disk, 0u);
  EXPECT_EQ(manager.bytes_on_disk(), 0u);
}

TEST(PersistenceManagerTest, CheckpointLsnIsTheCompactionHorizon) {
  ManagerFixture fx;
  PersistenceManager& manager = fx.manager;
  EXPECT_EQ(manager.checkpoint_lsn(ClassId{0}), 0u);
  for (std::uint64_t lsn = 1; lsn <= 3; ++lsn) {
    manager.log_op(ClassId{0}, lsn, store_msg(0, lsn, lsn));
  }
  EXPECT_EQ(manager.checkpoint_lsn(ClassId{0}), 0u);
  CheckpointImage image;
  image.lsn = 3;
  manager.write_checkpoint(ClassId{0}, image, /*now=*/50.0);
  EXPECT_EQ(manager.checkpoint_lsn(ClassId{0}), 3u);
}

TEST(PersistenceManagerTest, CheckpointCompactsAndBoundsDeltas) {
  ManagerFixture fx;
  PersistenceManager& manager = fx.manager;
  for (std::uint64_t lsn = 1; lsn <= 3; ++lsn) {
    manager.log_op(ClassId{0}, lsn, store_msg(0, lsn, lsn));
  }
  CheckpointImage image;
  image.lsn = 3;
  EXPECT_GT(manager.write_checkpoint(ClassId{0}, image, /*now=*/100.0), 0.0);
  EXPECT_EQ(manager.checkpoint_epoch(ClassId{0}), 1u);
  EXPECT_EQ(manager.log_bytes(ClassId{0}), 0u) << "checkpoint must compact";
  for (std::uint64_t lsn = 4; lsn <= 6; ++lsn) {
    manager.log_op(ClassId{0}, lsn, store_msg(0, lsn, lsn));
  }

  Cost cost = 0;
  // In range: suffix past lsn 4 is records 5..6.
  auto suffix = manager.capture_suffix(ClassId{0}, 4, &cost);
  ASSERT_TRUE(suffix.has_value());
  ASSERT_EQ(suffix->size(), 2u);
  EXPECT_EQ(suffix->front().lsn, 5u);
  // At the horizon: everything after the checkpoint.
  suffix = manager.capture_suffix(ClassId{0}, 3, &cost);
  ASSERT_TRUE(suffix.has_value());
  EXPECT_EQ(suffix->size(), 3u);
  // Behind the compaction horizon: refused (caller falls back to full).
  EXPECT_FALSE(manager.capture_suffix(ClassId{0}, 2, &cost).has_value());
  // Ahead of the log: refused.
  EXPECT_FALSE(manager.capture_suffix(ClassId{0}, 7, &cost).has_value());
  EXPECT_GE(manager.stats().delta_refusals, 2u);

  // Recovery = checkpoint + contiguous tail.
  const auto recovered = manager.recover(ClassId{0});
  ASSERT_TRUE(recovered.has_value());
  ASSERT_TRUE(recovered->checkpoint.has_value());
  EXPECT_EQ(recovered->checkpoint->lsn, 3u);
  ASSERT_EQ(recovered->tail.size(), 3u);
  EXPECT_EQ(recovered->tail.front().lsn, 4u);
}

TEST(PersistenceManagerTest, CheckpointPolicyTriggers) {
  PersistenceConfig config = enabled_config();
  config.checkpoint_every_bytes = 200;
  config.checkpoint_interval = 1000;
  ManagerFixture fx{config};
  PersistenceManager& manager = fx.manager;
  EXPECT_FALSE(manager.checkpoint_due(ClassId{0}, 0.0)) << "empty log";
  manager.log_op(ClassId{0}, 1, store_msg(0, 1, 1));
  EXPECT_FALSE(manager.checkpoint_due(ClassId{0}, 10.0));
  // Age trigger.
  EXPECT_TRUE(manager.checkpoint_due(ClassId{0}, 2000.0));
  // Bytes trigger.
  for (std::uint64_t lsn = 2; lsn <= 8; ++lsn) {
    manager.log_op(ClassId{0}, lsn, store_msg(0, lsn, lsn));
  }
  EXPECT_TRUE(manager.checkpoint_due(ClassId{0}, 10.0));
}

TEST(PersistenceManagerTest, TornTailIsDetectedAndRepaired) {
  ManagerFixture fx;
  PersistenceManager& manager = fx.manager;
  for (std::uint64_t lsn = 1; lsn <= 5; ++lsn) {
    manager.log_op(ClassId{0}, lsn, store_msg(0, lsn, lsn));
  }
  const auto damage =
      manager.inject_fault(PersistenceManager::FaultKind::kTornTail, 7);
  ASSERT_TRUE(damage.has_value());
  EXPECT_EQ(manager.stats().faults_injected, 1u);

  const auto recovered = manager.recover(ClassId{0});
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(recovered->corruption_detected);
  EXPECT_EQ(recovered->tail.size(), 4u) << "clean prefix survives";
  EXPECT_GE(manager.stats().corruptions_detected, 1u);
  EXPECT_GT(manager.stats().truncated_bytes, 0u);
  // The repair truncated the file: a second recovery is clean.
  const auto again = manager.recover(ClassId{0});
  ASSERT_TRUE(again.has_value());
  EXPECT_FALSE(again->corruption_detected);
  EXPECT_EQ(again->tail.size(), 4u);
}

TEST(PersistenceManagerTest, LostFsyncDropsExactlyLastRecord) {
  ManagerFixture fx;
  PersistenceManager& manager = fx.manager;
  for (std::uint64_t lsn = 1; lsn <= 3; ++lsn) {
    manager.log_op(ClassId{0}, lsn, store_msg(0, lsn, lsn));
  }
  const auto damage =
      manager.inject_fault(PersistenceManager::FaultKind::kLostFsync, 0);
  ASSERT_TRUE(damage.has_value());
  const auto recovered = manager.recover(ClassId{0});
  ASSERT_TRUE(recovered.has_value());
  ASSERT_EQ(recovered->tail.size(), 2u);
  EXPECT_EQ(recovered->tail.back().lsn, 2u);
  EXPECT_FALSE(recovered->corruption_detected)
      << "a cleanly missing record is not corruption";
}

TEST(PersistenceManagerTest, CorruptRecordTruncatesFromDamage) {
  ManagerFixture fx;
  PersistenceManager& manager = fx.manager;
  for (std::uint64_t lsn = 1; lsn <= 6; ++lsn) {
    manager.log_op(ClassId{0}, lsn, store_msg(0, lsn, lsn));
  }
  const auto damage = manager.inject_fault(
      PersistenceManager::FaultKind::kCorruptRecord, /*salt=*/123);
  ASSERT_TRUE(damage.has_value());
  const auto recovered = manager.recover(ClassId{0});
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(recovered->corruption_detected);
  EXPECT_LT(recovered->tail.size(), 6u);
  // Contiguity from the base: whatever survives is the exact prefix.
  for (std::size_t i = 0; i < recovered->tail.size(); ++i) {
    EXPECT_EQ(recovered->tail[i].lsn, i + 1);
  }
}

TEST(PersistenceManagerTest, CorruptCheckpointFallsBackToNothing) {
  ManagerFixture fx;
  PersistenceManager& manager = fx.manager;
  manager.log_op(ClassId{0}, 1, store_msg(0, 1, 1));
  CheckpointImage image;
  image.lsn = 1;
  manager.write_checkpoint(ClassId{0}, image, 0.0);
  // Flip a byte inside the checkpoint file.
  manager.disk().flip("c0.ckpt", 5);
  EXPECT_FALSE(manager.recover(ClassId{0}).has_value())
      << "corrupt checkpoint + compacted log leaves nothing durable";
  EXPECT_TRUE(manager.durable_classes().empty())
      << "recover() discards the damaged files";
}

TEST(PersistenceManagerTest, EraseAndResetClass) {
  ManagerFixture fx;
  PersistenceManager& manager = fx.manager;
  manager.log_op(ClassId{0}, 1, store_msg(0, 1, 1));
  CheckpointImage image;
  image.lsn = 10;
  manager.reset_class(ClassId{0}, image, 0.0);
  EXPECT_EQ(manager.log_bytes(ClassId{0}), 0u);
  EXPECT_EQ(manager.durable_lsn(ClassId{0}), 10u);
  const auto recovered = manager.recover(ClassId{0});
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(recovered->tail.empty());
  ASSERT_TRUE(recovered->checkpoint.has_value());
  EXPECT_EQ(recovered->checkpoint->lsn, 10u);

  manager.erase_class(ClassId{0});
  EXPECT_TRUE(manager.durable_classes().empty());
  EXPECT_FALSE(manager.recover(ClassId{0}).has_value());
}

}  // namespace
}  // namespace paso::persist
