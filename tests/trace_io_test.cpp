// Tests for CSV trace I/O: round-trips, format validation, and replaying a
// saved trace through the competitive machinery.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/trace_io.hpp"
#include "analysis/workloads.hpp"
#include "common/rng.hpp"

namespace paso::analysis {
namespace {

TEST(TraceIoTest, RequestsRoundTrip) {
  Rng rng(1);
  const RequestSequence original = random_sequence(200, 0.6, 8, rng);
  std::stringstream buffer;
  write_requests(buffer, original);
  const RequestSequence back = read_requests(buffer);
  ASSERT_EQ(back.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(back[i].kind, original[i].kind);
    EXPECT_DOUBLE_EQ(back[i].join_cost, original[i].join_cost);
  }
}

TEST(TraceIoTest, GlobalRoundTrip) {
  Rng rng(2);
  const GlobalSequence original = hotspot_sequence(HotSpotOptions{}, 8, rng);
  std::stringstream buffer;
  write_global(buffer, original);
  const GlobalSequence back = read_global(buffer);
  ASSERT_EQ(back.size(), original.size());
  for (std::size_t i = 0; i < original.size(); i += 97) {
    EXPECT_EQ(back[i].kind, original[i].kind);
    EXPECT_EQ(back[i].machine, original[i].machine);
  }
}

TEST(TraceIoTest, FailuresRoundTrip) {
  Rng rng(3);
  const adaptive::FailureTrace original =
      adaptive::uniform_failure_trace(16, 500, rng);
  std::stringstream buffer;
  write_failures(buffer, original);
  EXPECT_EQ(read_failures(buffer), original);
}

TEST(TraceIoTest, RejectsBadHeader) {
  std::stringstream buffer("nope\nread,8\n");
  EXPECT_THROW(read_requests(buffer), InvariantViolation);
}

TEST(TraceIoTest, RejectsBadKind) {
  std::stringstream buffer("kind,join_cost\nwrite,8\n");
  EXPECT_THROW(read_requests(buffer), InvariantViolation);
}

TEST(TraceIoTest, RejectsShortRow) {
  std::stringstream buffer("kind,join_cost\nread\n");
  EXPECT_THROW(read_requests(buffer), InvariantViolation);
}

TEST(TraceIoTest, SkipsBlankLines) {
  std::stringstream buffer("kind,join_cost\nread,4\n\nupdate,4\n");
  EXPECT_EQ(read_requests(buffer).size(), 2u);
}

TEST(TraceIoTest, ReplayedTraceGivesIdenticalResults) {
  Rng rng(4);
  const GameCosts costs{1, 2};
  const adaptive::CounterConfig config{8, 1, false, false};
  const RequestSequence original =
      adversarial_basic_sequence(30, 8, costs);
  std::stringstream buffer;
  write_requests(buffer, original);
  const RequestSequence replayed = read_requests(buffer);
  const auto a = compare_basic(original, costs, config);
  const auto b = compare_basic(replayed, costs, config);
  EXPECT_DOUBLE_EQ(a.online, b.online);
  EXPECT_DOUBLE_EQ(a.opt, b.opt);
}

TEST(TraceIoTest, FileRoundTripViaTempDir) {
  Rng rng(5);
  const std::string path = ::testing::TempDir() + "/paso_trace.csv";
  const RequestSequence original = random_sequence(50, 0.5, 4, rng);
  save_requests(path, original);
  const RequestSequence back = load_requests(path);
  EXPECT_EQ(back.size(), original.size());

  const std::string failures_path =
      ::testing::TempDir() + "/paso_failures.csv";
  const adaptive::FailureTrace trace{1, 4, 2, 2, 0};
  save_failures(failures_path, trace);
  EXPECT_EQ(load_failures(failures_path), trace);
}

TEST(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(load_requests("/nonexistent/paso.csv"), InvariantViolation);
}

}  // namespace
}  // namespace paso::analysis
