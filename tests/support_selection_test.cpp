// Tests for the support-selection reduction (Section 5.2, Theorem 4):
// LRF must coincide with LRU under the page/machine mapping, OPT must lower
// bound every rule, and the adversary must drive deterministic rules to the
// n - lambda - 1 bound.
#include <gtest/gtest.h>

#include <memory>

#include "adaptive/support_selection.hpp"

namespace paso::adaptive {
namespace {

constexpr std::size_t kMachines = 10;
constexpr std::size_t kLambda = 2;

std::unique_ptr<PagingBackedSelector> lru_selector() {
  return std::make_unique<PagingBackedSelector>(
      kMachines, kLambda,
      std::make_unique<LruPaging>(kMachines - kLambda - 1));
}

TEST(SupportSelectionTest, InitialWriteGroupIsBasicSupport) {
  LrfSelector lrf(kMachines, kLambda);
  EXPECT_EQ(lrf.write_group(), (std::vector<std::size_t>{0, 1, 2}));
  auto lru = lru_selector();
  EXPECT_EQ(lru->write_group(), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(SupportSelectionTest, NonMemberFailureIsFree) {
  LrfSelector lrf(kMachines, kLambda);
  EXPECT_FALSE(lrf.on_failure(7));
  EXPECT_EQ(lrf.copies(), 0u);
  EXPECT_EQ(lrf.write_group(), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(SupportSelectionTest, MemberFailureForcesOneCopy) {
  LrfSelector lrf(kMachines, kLambda);
  EXPECT_TRUE(lrf.on_failure(1));
  EXPECT_EQ(lrf.copies(), 1u);
  const auto group = lrf.write_group();
  EXPECT_EQ(group.size(), kLambda + 1);
  EXPECT_EQ(std::count(group.begin(), group.end(), 1u), 0);
}

TEST(SupportSelectionTest, LrfRecruitsLeastRecentlyFailed) {
  LrfSelector lrf(kMachines, kLambda);
  lrf.on_failure(5);  // non-member, stamps machine 5
  lrf.on_failure(0);  // member fails: recruit never-failed lowest index = 3
  const auto group = lrf.write_group();
  EXPECT_NE(std::find(group.begin(), group.end(), 3u), group.end());
  EXPECT_EQ(std::find(group.begin(), group.end(), 5u), group.end());
}

TEST(SupportSelectionTest, LrfEqualsLruUnderTheReduction) {
  Rng rng(2026);
  for (int trial = 0; trial < 20; ++trial) {
    const auto trace = uniform_failure_trace(kMachines, 500, rng);
    LrfSelector lrf(kMachines, kLambda);
    auto lru = lru_selector();
    for (const std::size_t m : trace) {
      const bool lrf_copy = lrf.on_failure(m);
      const bool lru_copy = lru->on_failure(m);
      ASSERT_EQ(lrf_copy, lru_copy) << "diverged on machine " << m;
    }
    EXPECT_EQ(lrf.copies(), lru->copies());
    EXPECT_EQ(lrf.write_group(), lru->write_group());
  }
}

TEST(SupportSelectionTest, OptimalLowerBoundsEveryRule) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const auto trace = flaky_failure_trace(kMachines, 800, 1.0, rng);
    const std::uint64_t opt = optimal_copies(trace, kMachines, kLambda);
    LrfSelector lrf(kMachines, kLambda);
    PagingBackedSelector fifo(
        kMachines, kLambda,
        std::make_unique<FifoPaging>(kMachines - kLambda - 1));
    PagingBackedSelector marking(
        kMachines, kLambda,
        std::make_unique<MarkingPaging>(kMachines - kLambda - 1, rng.split()));
    EXPECT_LE(opt, run_selector(lrf, trace));
    EXPECT_LE(opt, run_selector(fifo, trace));
    EXPECT_LE(opt, run_selector(marking, trace));
  }
}

TEST(SupportSelectionTest, CyclicAdversaryApproachesTheoremFourBound) {
  // n - lambda machines cycle failures; LRF copies on every member failure
  // while OPT copies ~ once per cache_size failures.
  const std::size_t n = 8;
  const std::size_t lambda = 2;
  const auto trace = cyclic_failure_trace(n, lambda, 1200);
  LrfSelector lrf(n, lambda);
  const std::uint64_t online = run_selector(lrf, trace);
  const std::uint64_t opt =
      std::max<std::uint64_t>(optimal_copies(trace, n, lambda), 1);
  const double ratio =
      static_cast<double>(online) / static_cast<double>(opt);
  const double bound = static_cast<double>(n - lambda - 1);
  EXPECT_GE(ratio, bound * 0.7);   // approaches the lower bound...
  EXPECT_LE(ratio, bound + 1e-9);  // ...and LRU/LRF never exceeds k * OPT
}

TEST(SupportSelectionTest, WriteGroupSizeIsInvariant) {
  Rng rng(11);
  const auto trace = uniform_failure_trace(kMachines, 300, rng);
  LrfSelector lrf(kMachines, kLambda);
  for (const std::size_t m : trace) {
    lrf.on_failure(m);
    ASSERT_EQ(lrf.write_group().size(), kLambda + 1);
  }
}

TEST(SupportSelectionTest, FlakyTraceFavorsLrfOverFifo) {
  // With a few chronically flaky machines, LRF keeps them out of the write
  // group; FIFO cycles them back in. LRF should do no worse on average.
  Rng rng(123);
  std::uint64_t lrf_total = 0;
  std::uint64_t fifo_total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto trace = flaky_failure_trace(kMachines, 1000, 1.4, rng);
    LrfSelector lrf(kMachines, kLambda);
    PagingBackedSelector fifo(
        kMachines, kLambda,
        std::make_unique<FifoPaging>(kMachines - kLambda - 1));
    lrf_total += run_selector(lrf, trace);
    fifo_total += run_selector(fifo, trace);
  }
  EXPECT_LE(lrf_total, fifo_total);
}

}  // namespace
}  // namespace paso::adaptive
