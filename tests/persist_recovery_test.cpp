// End-to-end durable recovery: WAL + checkpoints under the full cluster.
//
// A write-group member with persistence enabled crashes, replays its disk on
// recovery and rejoins via a *delta* transfer — the donor ships only the log
// suffix past the joiner's durable position, not the whole class. The tests
// pin the negotiation's three outcomes (delta, too-stale fallback to full,
// damaged-disk repair + delta from the shortened position), the case no live
// donor can serve (the whole write group wiped, state rebuilt from disk
// alone), and the base invariant that persistence stays off the bus: the
// same workload costs the same msg-cost with the subsystem on or off, save
// for the 8-byte lsn stamp each state-transfer blob carries.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "paso/cluster.hpp"
#include "persist/manager.hpp"
#include "semantics/checker.hpp"

namespace paso {
namespace {

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 1},
  });
}

Tuple task(std::int64_t key, const std::string& payload = "v") {
  return {Value{key}, Value{payload}};
}

persist::PersistenceConfig persistence_on() {
  persist::PersistenceConfig config;
  config.enabled = true;
  return config;
}

void expect_replicas_equal(MemoryServer& a, MemoryServer& b, ClassId cls,
                           std::int64_t max_key) {
  ASSERT_TRUE(a.supports(cls));
  ASSERT_TRUE(b.supports(cls));
  EXPECT_EQ(a.live_count(cls), b.live_count(cls));
  EXPECT_EQ(a.class_state_bytes(cls), b.class_state_bytes(cls));
  for (std::int64_t key = 0; key <= max_key; ++key) {
    const SearchCriterion sc = criterion(Exact{Value{key}}, AnyField{});
    auto from_a = a.local_find(cls, sc);
    auto from_b = b.local_find(cls, sc);
    ASSERT_EQ(from_a.has_value(), from_b.has_value()) << "key " << key;
    if (from_a) {
      EXPECT_EQ(from_a->id, from_b->id) << "key " << key;
      EXPECT_TRUE(from_a->fields == from_b->fields) << "key " << key;
    }
  }
}

void expect_axioms_hold(Cluster& cluster) {
  const auto check =
      semantics::check_history(cluster.history(), cluster.run_context());
  EXPECT_TRUE(check.ok()) << (check.violations.empty()
                                  ? ""
                                  : check.violations.front());
}

paso::net::TrafficStats tag_stats(Cluster& cluster, const std::string& tag) {
  const auto& per_tag = cluster.ledger().per_tag();
  const auto it = per_tag.find(tag);
  return it == per_tag.end() ? paso::net::TrafficStats{} : it->second;
}

TEST(PersistRecoveryTest, RejoinUsesDeltaTransferAndMatchesSurvivor) {
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.lambda = 1;
  cfg.persistence = persistence_on();
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();  // wg(task) = {m0, m1}
  const ClassId cls{0};
  const MachineId survivor{0};
  const MachineId victim{1};
  const ProcessId driver = cluster.process(MachineId{3});

  for (std::int64_t key = 0; key < 50; ++key) {
    ASSERT_TRUE(cluster.insert_sync(driver, task(key)));
  }
  ASSERT_TRUE(cluster.read_del_sync(driver, criterion(Exact{Value{3ll}},
                                                      AnyField{}))
                  .has_value());

  cluster.crash(victim);
  cluster.settle_for(200);  // failure detection expels the victim
  ASSERT_FALSE(cluster.server(victim).supports(cls));

  // The joiner missed only these few operations; they are all the delta
  // needs to carry.
  for (std::int64_t key = 50; key < 53; ++key) {
    ASSERT_TRUE(cluster.insert_sync(driver, task(key)));
  }

  cluster.ledger().reset();  // meter the recovery alone
  bool initialized = false;
  cluster.recover(victim, [&initialized] { initialized = true; });
  cluster.settle();
  ASSERT_TRUE(initialized);

  const auto delta = tag_stats(cluster, "state-xfer-delta");
  const auto full = tag_stats(cluster, "state-xfer");
  EXPECT_EQ(delta.messages, 1u) << "rejoin did not negotiate a delta";
  EXPECT_EQ(full.messages, 0u) << "rejoin fell back to a full transfer";
  EXPECT_GT(delta.bytes, 0u);
  EXPECT_LT(delta.bytes,
            cluster.server(survivor).class_state_bytes(cls))
      << "the delta should be far smaller than the full blob";

  const auto& stats = cluster.persistence(victim).stats();
  EXPECT_GE(stats.replays, 1u);
  EXPECT_GE(stats.replayed_records, 50u) << "local log replay did not run";
  EXPECT_GE(cluster.persistence(survivor).stats().delta_captures, 1u);

  expect_replicas_equal(cluster.server(survivor), cluster.server(victim), cls,
                        60);
  expect_axioms_hold(cluster);
}

TEST(PersistRecoveryTest, StaleJoinerFallsBackToFullTransfer) {
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.lambda = 1;
  cfg.persistence = persistence_on();
  // Aggressive compaction: the survivor checkpoints (and truncates its log)
  // every ~10 records, so the joiner's position falls behind the donor's
  // compaction horizon while it is down.
  cfg.persistence.checkpoint_every_bytes = 512;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  const ClassId cls{0};
  const MachineId survivor{0};
  const MachineId victim{1};
  const ProcessId driver = cluster.process(MachineId{3});

  for (std::int64_t key = 0; key < 10; ++key) {
    ASSERT_TRUE(cluster.insert_sync(driver, task(key)));
  }
  cluster.crash(victim);
  cluster.settle_for(200);
  for (std::int64_t key = 10; key < 60; ++key) {
    ASSERT_TRUE(cluster.insert_sync(driver, task(key)));
  }
  ASSERT_GE(cluster.persistence(survivor).stats().compactions, 1u)
      << "survivor never compacted; the stale path is not being exercised";

  cluster.ledger().reset();
  cluster.recover(victim);
  cluster.settle();

  const auto delta = tag_stats(cluster, "state-xfer-delta");
  const auto full = tag_stats(cluster, "state-xfer");
  EXPECT_EQ(delta.messages, 0u);
  EXPECT_EQ(full.messages, 1u) << "too-stale joiner must get the full blob";
  EXPECT_GE(cluster.persistence(survivor).stats().delta_refusals, 1u);
  // The full install rebases the joiner's disk: fresh checkpoint, empty log.
  EXPECT_GE(cluster.persistence(victim).stats().resets, 1u);
  EXPECT_EQ(cluster.persistence(victim).log_bytes(cls), 0u);

  expect_replicas_equal(cluster.server(survivor), cluster.server(victim), cls,
                        60);
  expect_axioms_hold(cluster);
}

TEST(PersistRecoveryTest, WholeGroupWipeRecoversFromDiskAlone) {
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.lambda = 1;
  cfg.persistence = persistence_on();
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  const ClassId cls{0};
  const ProcessId driver = cluster.process(MachineId{3});

  for (std::int64_t key = 0; key < 20; ++key) {
    ASSERT_TRUE(cluster.insert_sync(driver, task(key)));
  }
  ASSERT_TRUE(cluster.read_del_sync(driver, criterion(Exact{Value{4ll}},
                                                      AnyField{}))
                  .has_value());

  // Kill the entire write group: no live replica holds the class anywhere.
  cluster.crash(MachineId{0});
  cluster.crash(MachineId{1});
  cluster.settle_for(300);

  // The first member back re-creates the group from its replayed disk state;
  // the second joins off it as usual.
  cluster.recover(MachineId{0});
  cluster.settle();
  cluster.recover(MachineId{1});
  cluster.settle();

  EXPECT_EQ(cluster.server(MachineId{0}).live_count(cls), 19u)
      << "durable state did not survive a whole-group wipe";
  expect_replicas_equal(cluster.server(MachineId{0}),
                        cluster.server(MachineId{1}), cls, 30);
  // The data is reachable again through the normal read path.
  const auto found =
      cluster.read_sync(driver, criterion(Exact{Value{17ll}}, AnyField{}));
  ASSERT_TRUE(found.has_value());
  // ...and the removed object stayed removed across the wipe.
  EXPECT_FALSE(
      cluster.read_sync(driver, criterion(Exact{Value{4ll}}, AnyField{}))
          .has_value());
  expect_axioms_hold(cluster);
}

TEST(PersistRecoveryTest, DamagedLogIsRepairedAndDeltaCoversTheGap) {
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.lambda = 1;
  cfg.persistence = persistence_on();
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  const ClassId cls{0};
  const MachineId survivor{0};
  const MachineId victim{1};
  const ProcessId driver = cluster.process(MachineId{3});

  for (std::int64_t key = 0; key < 30; ++key) {
    ASSERT_TRUE(cluster.insert_sync(driver, task(key)));
  }
  cluster.crash(victim);
  cluster.settle_for(200);

  // The crash tore the victim's last log write. Recovery detects it via the
  // checksum, truncates to the clean prefix, and advertises the (lower)
  // surviving position — the donor's delta covers the difference.
  ASSERT_TRUE(cluster.persistence(victim)
                  .inject_fault(
                      persist::PersistenceManager::FaultKind::kTornTail, 7)
                  .has_value());

  cluster.ledger().reset();
  cluster.recover(victim);
  cluster.settle();

  EXPECT_GE(cluster.persistence(victim).stats().corruptions_detected, 1u);
  EXPECT_GT(cluster.persistence(victim).stats().truncated_bytes, 0u);
  const auto delta = tag_stats(cluster, "state-xfer-delta");
  EXPECT_EQ(delta.messages, 1u)
      << "a repaired log should still qualify for a delta";
  expect_replicas_equal(cluster.server(survivor), cluster.server(victim), cls,
                        40);
  expect_axioms_hold(cluster);
}

// Persistence charges disk latency as server-side *work*; the only bytes it
// may add to the bus are the 8-byte lsn stamps riding state-transfer blobs
// (so joiners can seed their log position). Every other message must cost
// exactly the same with the subsystem on or off — the guarantee behind
// "persistence off reproduces the baseline exactly".
TEST(PersistRecoveryTest, PersistenceLeavesTheBusUntouched) {
  struct BusSample {
    Cost msg_cost_sans_xfer = 0;
    paso::net::TrafficStats xfer;
    Cost work = 0;
  };
  const auto run_workload =
      [](const persist::PersistenceConfig& persistence) {
    ClusterConfig cfg;
    cfg.machines = 4;
    cfg.lambda = 1;
    cfg.persistence = persistence;
    Cluster cluster(task_schema(), cfg);
    cluster.assign_basic_support();
    const ProcessId driver = cluster.process(MachineId{3});
    for (std::int64_t key = 0; key < 25; ++key) {
      EXPECT_TRUE(cluster.insert_sync(driver, task(key)));
    }
    EXPECT_TRUE(cluster.read_sync(driver, criterion(Exact{Value{11ll}},
                                                    AnyField{}))
                    .has_value());
    EXPECT_TRUE(cluster.read_del_sync(driver, criterion(Exact{Value{12ll}},
                                                        AnyField{}))
                    .has_value());
    cluster.settle();
    BusSample sample;
    sample.xfer = tag_stats(cluster, "state-xfer");
    const auto delta = tag_stats(cluster, "state-xfer-delta");
    sample.xfer.messages += delta.messages;
    sample.xfer.bytes += delta.bytes;
    sample.xfer.cost += delta.cost;
    sample.msg_cost_sans_xfer =
        cluster.ledger().total_msg_cost() - sample.xfer.cost;
    sample.work = cluster.ledger().total_work();
    return sample;
  };

  const auto off = run_workload(persist::PersistenceConfig{});
  const auto on = run_workload(persistence_on());
  EXPECT_DOUBLE_EQ(on.msg_cost_sans_xfer, off.msg_cost_sans_xfer)
      << "persistence changed non-transfer bus traffic";
  // The initial joins ship the same transfers, each 8 bytes heavier for the
  // lsn stamp — and nothing else.
  EXPECT_EQ(on.xfer.messages, off.xfer.messages);
  EXPECT_EQ(on.xfer.bytes, off.xfer.bytes + 8 * off.xfer.messages);
  EXPECT_GT(on.work, off.work)
      << "disk latency should surface as extra server work";
}

TEST(PersistRecoveryTest, DisabledSubsystemDoesNoDiskIO) {
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.lambda = 1;  // persistence left at its default: off
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  const ProcessId driver = cluster.process(MachineId{3});
  for (std::int64_t key = 0; key < 10; ++key) {
    ASSERT_TRUE(cluster.insert_sync(driver, task(key)));
  }
  cluster.crash(MachineId{1});
  cluster.settle_for(200);
  cluster.ledger().reset();
  cluster.recover(MachineId{1});
  cluster.settle();

  for (std::uint32_t m = 0; m < cfg.machines; ++m) {
    auto& manager = cluster.persistence(MachineId{m});
    EXPECT_FALSE(manager.enabled());
    EXPECT_EQ(manager.disk().writes(), 0u);
    EXPECT_EQ(manager.disk().reads(), 0u);
    EXPECT_EQ(manager.stats().replays, 0u);
  }
  // Without durable positions the rejoin is the classic full transfer.
  EXPECT_EQ(tag_stats(cluster, "state-xfer").messages, 1u);
  EXPECT_EQ(tag_stats(cluster, "state-xfer-delta").messages, 0u);
  expect_axioms_hold(cluster);
}

}  // namespace
}  // namespace paso
