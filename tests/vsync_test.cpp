// Tests for the view-synchronous group layer: membership, totally ordered
// gcast with gathered response, state transfer on join, crash handling.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "net/bus_network.hpp"
#include "vsync/group_service.hpp"

namespace paso::vsync {
namespace {

/// Endpoint that logs delivered messages per group; its group state is the
/// log itself, so state transfer is directly observable.
class TestEndpoint : public GroupEndpoint {
 public:
  explicit TestEndpoint(MachineId self) : self_(self) {}

  GcastResult handle_gcast(const GroupName& group,
                           const Payload& message) override {
    const auto* body = std::any_cast<std::string>(&message.body);
    EXPECT_NE(body, nullptr);
    log_[group].push_back(*body);
    GcastResult result;
    result.response = std::string("ack:") + std::to_string(self_.value);
    result.response_bytes = 6;
    result.processing = processing_;
    return result;
  }

  StateBlob capture_state(const GroupName& group) override {
    StateBlob blob;
    blob.state = log_[group];
    blob.bytes = state_bytes_;
    return blob;
  }

  void install_state(const GroupName& group, const StateBlob& blob) override {
    const auto* state = std::any_cast<std::vector<std::string>>(&blob.state);
    ASSERT_NE(state, nullptr);
    log_[group] = *state;
    ++installs_;
  }

  void erase_state(const GroupName& group) override { log_.erase(group); }

  void on_view_change(const GroupName& group, const View& view) override {
    views_[group].push_back(view);
  }

  const std::vector<std::string>& log(const GroupName& g) { return log_[g]; }
  bool has_state(const GroupName& g) const { return log_.contains(g); }
  const std::vector<View>& views(const GroupName& g) { return views_[g]; }
  int installs() const { return installs_; }
  void set_processing(Cost c) { processing_ = c; }
  void set_state_bytes(std::size_t b) { state_bytes_ = b; }

 private:
  MachineId self_;
  Cost processing_ = 1.0;
  std::size_t state_bytes_ = 16;
  int installs_ = 0;
  std::map<GroupName, std::vector<std::string>> log_;
  std::map<GroupName, std::vector<View>> views_;
};

class GroupServiceTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kMachines = 5;

  GroupServiceTest() {
    for (std::uint32_t m = 0; m < kMachines; ++m) {
      endpoints_.push_back(std::make_unique<TestEndpoint>(MachineId{m}));
      service_.register_endpoint(MachineId{m}, *endpoints_.back());
    }
  }

  void join(const GroupName& g, std::uint32_t m) {
    bool ok = false;
    service_.g_join(g, MachineId{m}, [&ok](bool r) { ok = r; });
    simulator_.run();
    ASSERT_TRUE(ok) << "join of M" << m << " to " << g << " failed";
  }

  std::optional<std::any> gcast_sync(const GroupName& g, std::uint32_t issuer,
                                     const std::string& body,
                                     std::size_t bytes = 16) {
    std::optional<std::optional<std::any>> out;
    service_.gcast(g, MachineId{issuer}, Payload{body, bytes}, "test",
                   [&out](std::optional<std::any> r) { out = std::move(r); });
    simulator_.run();
    return out.value_or(std::nullopt);
  }

  sim::Simulator simulator_;
  net::BusNetwork network_{simulator_, CostModel{10.0, 1.0}, kMachines};
  GroupService service_{network_, GroupServiceOptions{50.0, 1.0}};
  std::vector<std::unique_ptr<TestEndpoint>> endpoints_;
};

TEST_F(GroupServiceTest, FirstJoinCreatesSingletonView) {
  join("g", 2);
  const View view = service_.view_of("g");
  EXPECT_EQ(view.size(), 1u);
  EXPECT_TRUE(view.contains(MachineId{2}));
  ASSERT_EQ(endpoints_[2]->views("g").size(), 1u);
}

TEST_F(GroupServiceTest, JoinTransfersDonorState) {
  join("g", 0);
  gcast_sync("g", 3, "hello");
  EXPECT_EQ(endpoints_[0]->log("g"),
            (std::vector<std::string>{"hello"}));
  join("g", 1);
  // The joiner received the donor's log via state transfer.
  EXPECT_EQ(endpoints_[1]->log("g"), (std::vector<std::string>{"hello"}));
  EXPECT_EQ(endpoints_[1]->installs(), 1);
}

TEST_F(GroupServiceTest, GcastReachesAllMembersInSameOrder) {
  join("g", 0);
  join("g", 1);
  join("g", 2);
  gcast_sync("g", 4, "a");
  gcast_sync("g", 4, "b");
  gcast_sync("g", 3, "c");
  const std::vector<std::string> expected{"a", "b", "c"};
  EXPECT_EQ(endpoints_[0]->log("g"), expected);
  EXPECT_EQ(endpoints_[1]->log("g"), expected);
  EXPECT_EQ(endpoints_[2]->log("g"), expected);
}

TEST_F(GroupServiceTest, GcastReturnsLeaderResponse) {
  join("g", 1);
  join("g", 2);
  const auto response = gcast_sync("g", 4, "ping");
  ASSERT_TRUE(response.has_value());
  const auto* text = std::any_cast<std::string>(&*response);
  ASSERT_NE(text, nullptr);
  EXPECT_EQ(*text, "ack:1");  // leader = lowest id member
}

TEST_F(GroupServiceTest, GcastToEmptyGroupFails) {
  const auto response = gcast_sync("nothing", 0, "ping");
  EXPECT_FALSE(response.has_value());
}

TEST_F(GroupServiceTest, LeaveErasesStateAndShrinksView) {
  join("g", 0);
  join("g", 1);
  gcast_sync("g", 2, "x");
  bool ok = false;
  service_.g_leave("g", MachineId{0}, [&ok](bool r) { ok = r; });
  simulator_.run();
  EXPECT_TRUE(ok);
  EXPECT_FALSE(endpoints_[0]->has_state("g"));
  EXPECT_FALSE(service_.is_member("g", MachineId{0}));
  EXPECT_EQ(service_.group_size("g"), 1u);
}

TEST_F(GroupServiceTest, LeaveOfNonMemberFails) {
  join("g", 0);
  bool ok = true;
  service_.g_leave("g", MachineId{3}, [&ok](bool r) { ok = r; });
  simulator_.run();
  EXPECT_FALSE(ok);
}

TEST_F(GroupServiceTest, DoubleJoinFails) {
  join("g", 0);
  bool ok = true;
  service_.g_join("g", MachineId{0}, [&ok](bool r) { ok = r; });
  simulator_.run();
  EXPECT_FALSE(ok);
}

TEST_F(GroupServiceTest, CrashDetectionExpelsFromAllGroups) {
  join("g1", 0);
  join("g1", 1);
  join("g2", 1);
  service_.machine_crashed(MachineId{1});
  simulator_.run();
  EXPECT_FALSE(service_.is_member("g1", MachineId{1}));
  EXPECT_FALSE(service_.is_member("g2", MachineId{1}));
  EXPECT_TRUE(service_.is_member("g1", MachineId{0}));
}

TEST_F(GroupServiceTest, GcastCompletesDespiteMemberCrash) {
  join("g", 0);
  join("g", 1);
  join("g", 2);
  // Crash a member right away, then gcast before detection: the operation
  // must still complete once the failure detector prunes the dead member.
  service_.machine_crashed(MachineId{2});
  std::optional<std::optional<std::any>> out;
  service_.gcast("g", MachineId{4}, Payload{std::string("x"), 8}, "test",
                 [&out](std::optional<std::any> r) { out = std::move(r); });
  simulator_.run();
  ASSERT_TRUE(out.has_value());
  ASSERT_TRUE(out->has_value());
}

TEST_F(GroupServiceTest, LeaderCrashStillYieldsResponse) {
  join("g", 0);
  join("g", 1);
  service_.machine_crashed(MachineId{0});  // the leader
  std::optional<std::optional<std::any>> out;
  service_.gcast("g", MachineId{4}, Payload{std::string("x"), 8}, "test",
                 [&out](std::optional<std::any> r) { out = std::move(r); });
  simulator_.run();
  ASSERT_TRUE(out.has_value());
  ASSERT_TRUE(out->has_value());
  EXPECT_EQ(*std::any_cast<std::string>(&**out), "ack:1");
}

TEST_F(GroupServiceTest, RecoveredMachineStartsOutsideGroups) {
  join("g", 0);
  join("g", 1);
  service_.machine_crashed(MachineId{0});
  simulator_.run();  // detection completes
  service_.machine_recovered(MachineId{0});
  EXPECT_FALSE(service_.is_member("g", MachineId{0}));
  EXPECT_TRUE(service_.is_up(MachineId{0}));
}

TEST_F(GroupServiceTest, RecoveryBeforeDetectionIsRejected) {
  join("g", 0);
  join("g", 1);
  service_.machine_crashed(MachineId{0});
  // No simulator run: the failure detector has not fired yet.
  EXPECT_THROW(service_.machine_recovered(MachineId{0}), InvariantViolation);
}

TEST_F(GroupServiceTest, SubsetGcastOnlyTouchesTargets) {
  join("g", 0);
  join("g", 1);
  join("g", 2);
  join("g", 3);
  std::optional<std::optional<std::any>> out;
  service_.gcast_to("g", MachineId{4}, Payload{std::string("r"), 8}, "read",
                    {MachineId{1}, MachineId{3}}, 2,
                    [&out](std::optional<std::any> r) { out = std::move(r); });
  simulator_.run();
  ASSERT_TRUE(out.has_value() && out->has_value());
  EXPECT_TRUE(endpoints_[0]->log("g").empty());
  EXPECT_TRUE(endpoints_[2]->log("g").empty());
  EXPECT_EQ(endpoints_[1]->log("g"), (std::vector<std::string>{"r"}));
  EXPECT_EQ(endpoints_[3]->log("g"), (std::vector<std::string>{"r"}));
}

TEST_F(GroupServiceTest, SubsetGcastTopsUpFromView) {
  join("g", 0);
  join("g", 2);
  // Preferred member 4 is not in the group; the read still goes to 2 members.
  std::optional<std::optional<std::any>> out;
  service_.gcast_to("g", MachineId{3}, Payload{std::string("r"), 8}, "read",
                    {MachineId{4}}, 2,
                    [&out](std::optional<std::any> r) { out = std::move(r); });
  simulator_.run();
  ASSERT_TRUE(out.has_value() && out->has_value());
  EXPECT_EQ(endpoints_[0]->log("g").size(), 1u);
  EXPECT_EQ(endpoints_[2]->log("g").size(), 1u);
}

TEST_F(GroupServiceTest, DonorCrashRestartsTransferWithNewDonor) {
  join("g", 0);
  join("g", 1);
  gcast_sync("g", 3, "payload");
  // Make the transfer long enough that the donor (leader M0) can die mid
  // stream: detection delay is 50, transfer cost is alpha + beta*bytes.
  endpoints_[0]->set_state_bytes(100000);
  endpoints_[1]->set_state_bytes(64);
  bool ok = false;
  service_.g_join("g", MachineId{2}, [&ok](bool r) { ok = r; });
  // Let the join dispatch (donor chosen = M0), then crash the donor.
  simulator_.run_until(simulator_.now() + 1);
  service_.machine_crashed(MachineId{0});
  simulator_.run();
  EXPECT_TRUE(ok);
  EXPECT_TRUE(service_.is_member("g", MachineId{2}));
  EXPECT_EQ(endpoints_[2]->log("g"), (std::vector<std::string>{"payload"}));
}

TEST_F(GroupServiceTest, OperationsQueuePerGroup) {
  join("g", 0);
  // Enqueue a gcast and a join back to back; the join must observe the gcast
  // already applied (its state transfer includes it).
  std::optional<std::optional<std::any>> out;
  service_.gcast("g", MachineId{3}, Payload{std::string("first"), 8}, "test",
                 [&out](std::optional<std::any> r) { out = std::move(r); });
  bool joined = false;
  service_.g_join("g", MachineId{1}, [&joined](bool r) { joined = r; });
  simulator_.run();
  ASSERT_TRUE(out.has_value());
  ASSERT_TRUE(joined);
  EXPECT_EQ(endpoints_[1]->log("g"), (std::vector<std::string>{"first"}));
}

TEST_F(GroupServiceTest, ViewChangesNotifyAllMembersInOrder) {
  join("g", 0);
  join("g", 1);
  join("g", 2);
  const auto& views = endpoints_[0]->views("g");
  ASSERT_EQ(views.size(), 3u);
  EXPECT_EQ(views[0].size(), 1u);
  EXPECT_EQ(views[1].size(), 2u);
  EXPECT_EQ(views[2].size(), 3u);
  EXPECT_LT(views[0].id, views[1].id);
  EXPECT_LT(views[1].id, views[2].id);
}

TEST_F(GroupServiceTest, GcastChargesLedgerPerCostModel) {
  join("g", 1);
  join("g", 2);
  const auto before = network_.ledger().snapshot();
  gcast_sync("g", 4, "msg", 32);
  const CostTriple cost = network_.ledger().since(before);
  // Fan-out: 2 * (10 + 32); acks: only the non-leader member's ack crosses
  // the bus (the leader's own done-ack is a free self-send); response:
  // 10 + 6. One alpha below the paper's formula, which charges |g| acks.
  EXPECT_DOUBLE_EQ(cost.msg_cost, 2 * 42.0 + 1 * 10.0 + 16.0);
  // Each member did 1 unit of processing work.
  EXPECT_DOUBLE_EQ(cost.work, 2.0);
  EXPECT_DOUBLE_EQ(cost.time, 1.0);
}

}  // namespace
}  // namespace paso::vsync
