// Tests for the wire codec. The central property: every declared
// wire_size() equals the length of the real encoding — the cost model's
// message sizes are honest — plus exact round-tripping of all types.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "paso/wire.hpp"

namespace paso::wire {
namespace {

const std::vector<FieldType> kSignature{FieldType::kInt, FieldType::kText,
                                        FieldType::kReal, FieldType::kBool};

PasoObject sample_object(std::uint64_t seq, const std::string& text) {
  PasoObject object;
  object.id = ObjectId{ProcessId{MachineId{3}, 2}, seq};
  object.fields = {Value{std::int64_t{-99}}, Value{text}, Value{2.75},
                   Value{true}};
  return object;
}

Value random_value(Rng& rng, FieldType type) {
  switch (type) {
    case FieldType::kInt:
      return Value{static_cast<std::int64_t>(rng()) >> 3};
    case FieldType::kReal:
      return Value{rng.uniform01() * 1e6 - 5e5};
    case FieldType::kText:
      return Value{std::string(rng.index(40), 'a' + rng.index(26) % 26)};
    case FieldType::kBool:
      return Value{rng.chance(0.5)};
  }
  return Value{};
}

TEST(WireValueTest, RoundTripsEveryType) {
  const std::vector<Value> values{Value{std::int64_t{-7}}, Value{3.5},
                                  Value{std::string{"hello"}}, Value{false}};
  for (const Value& v : values) {
    ByteWriter w;
    encode_value(w, v);
    EXPECT_EQ(w.size(), wire_size(v)) << value_to_string(v);
    ByteReader r(w.bytes());
    EXPECT_EQ(decode_value(r, type_of(v)), v);
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(WireObjectTest, RoundTripAndSizeAgree) {
  const PasoObject object = sample_object(42, "some payload text");
  ByteWriter w;
  encode_object(w, object);
  EXPECT_EQ(w.size(), object.wire_size());
  ByteReader r(w.bytes());
  const PasoObject decoded = decode_object(r, kSignature);
  EXPECT_EQ(decoded, object);
  EXPECT_TRUE(r.exhausted());
}

TEST(WireObjectTest, RandomObjectsRoundTrip) {
  Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    PasoObject object;
    object.id = ObjectId{
        ProcessId{MachineId{static_cast<std::uint32_t>(rng.index(64))},
                  static_cast<std::uint32_t>(rng.index(8))},
        rng()};
    std::vector<FieldType> signature;
    const std::size_t arity = 1 + rng.index(6);
    for (std::size_t i = 0; i < arity; ++i) {
      signature.push_back(static_cast<FieldType>(rng.index(4)));
      object.fields.push_back(random_value(rng, signature.back()));
    }
    ByteWriter w;
    encode_object(w, object);
    ASSERT_EQ(w.size(), object.wire_size());
    ByteReader r(w.bytes());
    ASSERT_EQ(decode_object(r, signature), object);
  }
}

TEST(WireCriterionTest, AllPatternKindsRoundTrip) {
  const SearchCriterion sc = criterion(
      AnyField{}, TypedAny{FieldType::kReal},
      Exact{Value{std::string{"needle"}}}, IntRange{-5, 5},
      RealRange{0.25, 0.75}, TextPrefix{"pre"});
  ByteWriter w;
  encode_criterion(w, sc);
  EXPECT_EQ(w.size(), sc.wire_size());
  ByteReader r(w.bytes());
  EXPECT_EQ(decode_criterion(r), sc);
  EXPECT_TRUE(r.exhausted());
}

TEST(WireCriterionTest, RangeShapesRoundTrip) {
  // Every presence/exclusivity combination, plus cross-typed bounds (legal
  // on the wire even though they admit nothing).
  const std::vector<FieldPattern> shapes{
      Range{},
      range_at_least(Value{std::int64_t{-3}}),
      range_at_least(Value{std::string{"m"}}, /*exclusive=*/true),
      range_at_most(Value{2.5}),
      range_at_most(Value{std::int64_t{10}}, /*exclusive=*/true),
      range_between(Value{std::int64_t{1}}, Value{std::int64_t{9}}),
      range_between(Value{std::string{"a"}}, Value{std::string{"q"}},
                    /*lo_exclusive=*/true, /*hi_exclusive=*/true),
      Range{Bound{Value{std::int64_t{1}}}, Bound{Value{std::string{"z"}}}},
  };
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const SearchCriterion sc = criterion(FieldPattern{shapes[i]}, AnyField{});
    ByteWriter w;
    encode_criterion(w, sc);
    EXPECT_EQ(w.size(), sc.wire_size()) << "shape " << i;
    ByteReader r(w.bytes());
    EXPECT_EQ(decode_criterion(r), sc) << "shape " << i;
    EXPECT_TRUE(r.exhausted()) << "shape " << i;
  }
}

TEST(WireCriterionTest, RankedCriterionRoundTrips) {
  // The TopK selector rides the arity header's top bit: ten extra bytes,
  // every field faithful, and criteria without it decode to top_k == null.
  SearchCriterion sc = ranked(
      criterion(range_at_least(Value{std::int64_t{0}}), AnyField{}),
      TopK{1, 42, /*descending=*/false, /*score_fn=*/kNaturalScore});
  ByteWriter w;
  encode_criterion(w, sc);
  EXPECT_EQ(w.size(), sc.wire_size());
  ByteReader r(w.bytes());
  const SearchCriterion decoded = decode_criterion(r);
  EXPECT_EQ(decoded, sc);
  ASSERT_TRUE(decoded.top_k.has_value());
  EXPECT_EQ(decoded.top_k->field, 1u);
  EXPECT_EQ(decoded.top_k->k, 42u);
  EXPECT_FALSE(decoded.top_k->descending);
  EXPECT_TRUE(r.exhausted());

  const SearchCriterion plain = criterion(AnyField{}, AnyField{});
  ByteWriter w2;
  encode_criterion(w2, plain);
  ByteReader r2(w2.bytes());
  EXPECT_FALSE(decode_criterion(r2).top_k.has_value());
}

TEST(WireCriterionTest, EmptyCriterionRoundTrips) {
  const SearchCriterion sc;
  ByteWriter w;
  encode_criterion(w, sc);
  EXPECT_EQ(w.size(), sc.wire_size());
  ByteReader r(w.bytes());
  EXPECT_EQ(decode_criterion(r), sc);
}

class WireMessageTest : public ::testing::Test {
 protected:
  static std::vector<FieldType> resolve(ClassId) { return kSignature; }

  void expect_round_trip(const ServerMessage& message) {
    const auto bytes = encode_message(message);
    EXPECT_EQ(bytes.size(), message_wire_size(message));
    const ServerMessage decoded = decode_message(bytes, resolve);
    EXPECT_EQ(decoded.index(), message.index());
    std::visit(
        [&decoded](const auto& original) {
          using M = std::decay_t<decltype(original)>;
          const auto* back = std::get_if<M>(&decoded);
          ASSERT_NE(back, nullptr);
          if constexpr (std::is_same_v<M, StoreMsg>) {
            EXPECT_EQ(back->cls, original.cls);
            EXPECT_EQ(back->object, original.object);
          } else if constexpr (std::is_same_v<M, MemReadMsg>) {
            EXPECT_EQ(back->cls, original.cls);
            EXPECT_EQ(back->criterion, original.criterion);
          } else if constexpr (std::is_same_v<M, RemoveMsg>) {
            EXPECT_EQ(back->cls, original.cls);
            EXPECT_EQ(back->criterion, original.criterion);
            EXPECT_EQ(back->token, original.token);
          } else if constexpr (std::is_same_v<M, PlaceMarkerMsg>) {
            EXPECT_EQ(back->cls, original.cls);
            EXPECT_EQ(back->criterion, original.criterion);
            EXPECT_EQ(back->marker_id, original.marker_id);
            EXPECT_EQ(back->owner, original.owner);
            EXPECT_EQ(back->expires_at, original.expires_at);
          } else if constexpr (std::is_same_v<M, CancelMarkerMsg>) {
            EXPECT_EQ(back->cls, original.cls);
            EXPECT_EQ(back->marker_id, original.marker_id);
            EXPECT_EQ(back->owner, original.owner);
          } else {
            static_assert(std::is_same_v<M, BatchMsg>);
            EXPECT_EQ(back->cls, original.cls);
            ASSERT_EQ(back->ops.size(), original.ops.size());
            for (std::size_t i = 0; i < original.ops.size(); ++i) {
              EXPECT_EQ(back->ops[i], original.ops[i]) << "op " << i;
            }
          }
        },
        message);
  }
};

TEST_F(WireMessageTest, StoreMessage) {
  expect_round_trip(StoreMsg{ClassId{5}, sample_object(7, "abc")});
}

TEST_F(WireMessageTest, MemReadMessage) {
  expect_round_trip(
      MemReadMsg{ClassId{2}, criterion(IntRange{1, 9}, AnyField{},
                                       TypedAny{FieldType::kReal},
                                       AnyField{})});
}

TEST_F(WireMessageTest, RemoveMessage) {
  expect_round_trip(RemoveMsg{
      ClassId{0},
      criterion(Exact{Value{std::int64_t{12}}}, AnyField{}, AnyField{},
                AnyField{}),
      0x1122334455667788ULL});
}

TEST_F(WireMessageTest, MarkerMessages) {
  expect_round_trip(PlaceMarkerMsg{
      ClassId{1},
      criterion(TextPrefix{"task/"}, AnyField{}, AnyField{}, AnyField{}),
      991, MachineId{6}, 12345.5});
  expect_round_trip(CancelMarkerMsg{ClassId{1}, 991, MachineId{6}});
}

TEST_F(WireMessageTest, BatchMessage) {
  // A mixed batch: store + read + remove over one class. The declared size
  // must charge the shared class header once and a 1-byte subtag per op.
  BatchMsg batch;
  batch.cls = ClassId{3};
  batch.ops.emplace_back(StoreMsg{ClassId{3}, sample_object(11, "x")});
  batch.ops.emplace_back(
      MemReadMsg{ClassId{3}, criterion(IntRange{0, 4}, AnyField{},
                                       AnyField{}, AnyField{})});
  batch.ops.emplace_back(RemoveMsg{
      ClassId{3},
      criterion(Exact{Value{std::int64_t{9}}}, AnyField{}, AnyField{},
                AnyField{}),
      77});
  std::size_t op_sizes = 0;
  for (const BatchableOp& op : batch.ops) {
    op_sizes += batchable_wire_size(op) - 3;  // shed header, add subtag
  }
  EXPECT_EQ(batch.wire_size(), 8 + op_sizes);
  expect_round_trip(ServerMessage{batch});
}

TEST_F(WireMessageTest, EmptyBatchRoundTrips) {
  expect_round_trip(ServerMessage{BatchMsg{ClassId{0}, {}}});
}

TEST(WireReaderTest, OverrunThrows) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.bytes());
  r.u32();
  EXPECT_THROW(r.u8(), InvariantViolation);
}

TEST(WireReaderTest, TruncatedTextThrows) {
  ByteWriter w;
  w.u32(100);  // length prefix promising 100 bytes that are absent
  ByteReader r(w.bytes());
  EXPECT_THROW(r.text(), InvariantViolation);
}

}  // namespace
}  // namespace paso::wire
