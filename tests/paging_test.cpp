// Tests for the paging toolbox behind the support-selection reduction
// (Section 5.2 / Theorem 4).
#include <gtest/gtest.h>

#include <memory>

#include "adaptive/paging.hpp"

namespace paso::adaptive {
namespace {

std::uint64_t run(PagingAlgorithm& algorithm, const std::vector<Page>& seq) {
  for (const Page p : seq) algorithm.access(p);
  return algorithm.faults();
}

TEST(PagingTest, ColdMissesThenHits) {
  LruPaging lru(3);
  EXPECT_TRUE(lru.access(1));
  EXPECT_TRUE(lru.access(2));
  EXPECT_FALSE(lru.access(1));
  EXPECT_EQ(lru.faults(), 2u);
}

TEST(PagingTest, LruEvictsLeastRecentlyUsed) {
  LruPaging lru(2);
  lru.access(1);
  lru.access(2);
  lru.access(1);  // 2 is now the LRU page
  lru.access(3);  // evicts 2
  EXPECT_EQ(lru.last_evicted(), Page{2});
  EXPECT_TRUE(lru.cached(1));
  EXPECT_FALSE(lru.cached(2));
}

TEST(PagingTest, FifoEvictsOldestLoad) {
  FifoPaging fifo(2);
  fifo.access(1);
  fifo.access(2);
  fifo.access(1);  // hit: does not refresh FIFO position
  fifo.access(3);  // evicts 1 (oldest load), unlike LRU
  EXPECT_EQ(fifo.last_evicted(), Page{1});
}

TEST(PagingTest, BeladyOnSmallKnownCase) {
  // Cache of 2, sequence 1 2 3 1 2: OPT faults 1,2,3 (evict 2 keeping 1) and
  // then 2 again -> 4 faults; keeping the farthest-used page is forced.
  const std::vector<Page> seq{1, 2, 3, 1, 2};
  EXPECT_EQ(belady_faults(seq, 2), 4u);
}

TEST(PagingTest, BeladyNeverExceedsOnlineAlgorithms) {
  Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    const auto seq = zipf_sequence(20, 2000, 0.8, rng);
    const std::uint64_t opt = belady_faults(seq, 5);
    LruPaging lru(5);
    FifoPaging fifo(5);
    MarkingPaging marking(5, rng.split());
    RandomPaging random(5, rng.split());
    EXPECT_LE(opt, run(lru, seq));
    EXPECT_LE(opt, run(fifo, seq));
    EXPECT_LE(opt, run(marking, seq));
    EXPECT_LE(opt, run(random, seq));
  }
}

TEST(PagingTest, CyclicAdversaryForcesLruToFaultAlways) {
  const std::size_t k = 4;
  const auto seq = cyclic_adversary_sequence(k, 400);
  LruPaging lru(k);
  EXPECT_EQ(run(lru, seq), 400u);  // every access faults
  // OPT faults at most once per k accesses after warm-up.
  const std::uint64_t opt = belady_faults(seq, k);
  EXPECT_LE(opt, 400 / k + k + 1);
  // So the empirical ratio approaches the Theorem 4 bound k.
  const double ratio = static_cast<double>(run(lru, seq)) /
                       static_cast<double>(opt);
  EXPECT_GE(ratio, static_cast<double>(k) * 0.8);
}

TEST(PagingTest, MarkingBeatsDeterministicOnTheAdversary) {
  const std::size_t k = 8;
  const auto seq = cyclic_adversary_sequence(k, 2000);
  LruPaging lru(k);
  Rng rng(7);
  MarkingPaging marking(k, rng);
  const std::uint64_t lru_faults = run(lru, seq);
  const std::uint64_t marking_faults = run(marking, seq);
  // Randomization defeats the oblivious cyclic adversary decisively.
  EXPECT_LT(marking_faults, lru_faults / 2);
}

TEST(PagingTest, LruIsWithinKTimesOptEverywhere) {
  Rng rng(99);
  const std::size_t k = 6;
  for (int trial = 0; trial < 8; ++trial) {
    const auto seq = zipf_sequence(25, 3000, 1.1, rng);
    LruPaging lru(k);
    const double online = static_cast<double>(run(lru, seq));
    const double opt =
        static_cast<double>(std::max<std::uint64_t>(belady_faults(seq, k), 1));
    EXPECT_LE(online / opt, static_cast<double>(k) + 1e-9);
  }
}

/// Exhaustive optimal paging by DP over (position, cache-subset) states —
/// only feasible for tiny instances, and exactly what anchors Belady.
std::uint64_t exhaustive_opt(const std::vector<Page>& seq,
                             std::size_t cache_size, std::size_t universe) {
  PASO_REQUIRE(universe <= 10, "exhaustive OPT only for tiny universes");
  const std::size_t masks = 1u << universe;
  constexpr std::uint64_t kInf = ~0ULL;
  std::vector<std::uint64_t> cost(masks, kInf);
  cost[0] = 0;
  for (const Page page : seq) {
    std::vector<std::uint64_t> next(masks, kInf);
    for (std::size_t mask = 0; mask < masks; ++mask) {
      if (cost[mask] == kInf) continue;
      if (mask & (1u << page)) {
        next[mask] = std::min(next[mask], cost[mask]);  // hit
        continue;
      }
      // Fault: load page, evicting any resident page if full.
      const std::size_t with = mask | (1u << page);
      if (static_cast<std::size_t>(__builtin_popcount(
              static_cast<unsigned>(mask))) < cache_size) {
        next[with] = std::min(next[with], cost[mask] + 1);
      } else {
        for (std::size_t victim = 0; victim < universe; ++victim) {
          if (!(mask & (1u << victim))) continue;
          const std::size_t after = with & ~(1u << victim);
          next[after] = std::min(next[after], cost[mask] + 1);
        }
      }
    }
    cost.swap(next);
  }
  std::uint64_t best = kInf;
  for (const std::uint64_t c : cost) best = std::min(best, c);
  return best;
}

TEST(PagingTest, BeladyMatchesExhaustiveOptimum) {
  Rng rng(314);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t universe = 4 + rng.index(2);  // 4..5 pages
    const std::size_t cache = 2 + rng.index(2);     // 2..3 frames
    std::vector<Page> seq;
    const std::size_t len = 6 + rng.index(10);
    for (std::size_t i = 0; i < len; ++i) seq.push_back(rng.index(universe));
    ASSERT_EQ(belady_faults(seq, cache),
              exhaustive_opt(seq, cache, universe))
        << "trial " << trial;
  }
}

TEST(PagingTest, ResetClearsState) {
  LruPaging lru(2);
  lru.access(1);
  lru.access(2);
  lru.reset();
  EXPECT_EQ(lru.faults(), 0u);
  EXPECT_FALSE(lru.cached(1));
  EXPECT_TRUE(lru.access(1));
}

TEST(PagingTest, CacheNeverOverflows) {
  Rng rng(5);
  MarkingPaging marking(4, rng.split());
  const auto seq = zipf_sequence(30, 500, 0.5, rng);
  for (const Page p : seq) {
    marking.access(p);
    std::size_t resident = 0;
    for (Page q = 0; q < 30; ++q) resident += marking.cached(q) ? 1 : 0;
    ASSERT_LE(resident, 4u);
  }
}

}  // namespace
}  // namespace paso::adaptive
