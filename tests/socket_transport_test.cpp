// SocketTransport: fabric-level semantics with every machine a real OS
// process on a real TCP wire — delivery and model-cost parity with the
// simulated bus, self-send/down-machine semantics, bounded-bridge shed,
// garbage connections at the listener, mid-stream peer death (kill -9) and
// respawn. Label `sockets`: runs in the default tier and under ASan/UBSan.
#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/socket_transport.hpp"

namespace paso {
namespace {

using net::SocketTransport;
using net::SocketTransportOptions;

bool wait_until(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

TEST(SocketTransport, DeliversAndChargesModelCost) {
  CostModel model{2.0, 0.5};
  SocketTransport transport(model, 3);
  std::atomic<int> delivered{0};
  transport.run_exclusive([&] {
    for (int i = 0; i < 10; ++i) {
      transport.send(MachineId{0}, MachineId{1}, "ping", 8,
                     [&] { delivered.fetch_add(1); });
    }
  });
  ASSERT_TRUE(transport.quiesce());
  EXPECT_EQ(delivered.load(), 10);
  EXPECT_EQ(transport.messages(), 10u);
  EXPECT_EQ(transport.bytes_sent(), 80u);
  // Every message physically round-tripped through machine 1's process.
  EXPECT_EQ(transport.acks_received(), 10u);
  // Same charge as the simulated bus: 10 * (alpha + beta*8).
  transport.run_exclusive([&] {
    EXPECT_DOUBLE_EQ(transport.ledger().total_msg_cost(),
                     10 * (2.0 + 0.5 * 8));
    const auto& per_tag = transport.ledger().per_tag();
    ASSERT_TRUE(per_tag.contains("ping"));
    EXPECT_EQ(per_tag.at("ping").messages, 10u);
  });
  transport.shutdown();
}

TEST(SocketTransport, DeliveriesKeepPerDestinationFifo) {
  SocketTransport transport(CostModel{1.0, 0.0}, 2);
  constexpr int kBurst = 500;
  std::vector<int> seen;
  seen.reserve(kBurst);
  transport.run_exclusive([&] {
    for (int i = 0; i < kBurst; ++i) {
      transport.send(MachineId{0}, MachineId{1}, "burst", 4,
                     [&seen, i] { seen.push_back(i); });
    }
  });
  ASSERT_TRUE(transport.quiesce());
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kBurst));
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_EQ(seen[i], i) << "delivery order broke at " << i;
  }
  transport.shutdown();
}

TEST(SocketTransport, SelfSendIsFreeAndDelivered) {
  SocketTransport transport(CostModel{1.0, 1.0}, 2);
  std::atomic<bool> delivered{false};
  transport.run_exclusive([&] {
    transport.send(MachineId{1}, MachineId{1}, "local", 64,
                   [&] { delivered.store(true); });
  });
  ASSERT_TRUE(transport.quiesce());
  EXPECT_TRUE(delivered.load());
  EXPECT_EQ(transport.messages(), 0u);
  transport.run_exclusive(
      [&] { EXPECT_DOUBLE_EQ(transport.ledger().total_msg_cost(), 0.0); });
  transport.shutdown();
}

TEST(SocketTransport, DownMachinesSendNothingAndReceiveNothing) {
  SocketTransport transport(CostModel{1.0, 0.0}, 3);
  std::atomic<int> delivered{0};
  transport.set_up(MachineId{2}, false);
  transport.run_exclusive([&] {
    // Down sender: dropped before transmission, nothing charged.
    transport.send(MachineId{2}, MachineId{0}, "from-dead", 4,
                   [&] { delivered.fetch_add(1); });
    // Down receiver: transmission happens (and is charged — the bus was
    // occupied), the delivery is dropped at execution time. The frame still
    // round-trips through the (alive) process of the down machine.
    transport.send(MachineId{0}, MachineId{2}, "to-dead", 4,
                   [&] { delivered.fetch_add(1); });
  });
  ASSERT_TRUE(transport.quiesce());
  EXPECT_EQ(delivered.load(), 0);
  EXPECT_EQ(transport.messages(), 1u);
  transport.shutdown();
}

TEST(SocketTransport, BoundedBridgeShedsWithoutReordering) {
  // Crossing credit: with Topology::with_bridge_limit, crossings in flight
  // toward a segment (sent, ack not yet back) are capped; a burst far
  // faster than the wire round-trip must shed, and the survivors must stay
  // in send order.
  net::Topology topology({net::Segment{}, net::Segment{}}, {0, 1},
                         /*bridge_alpha=*/5, /*bridge_beta=*/0.1);
  topology.with_bridge_limit(4, net::BridgePolicy::kShed);
  SocketTransport transport(CostModel{1.0, 0.0}, 2, topology);
  constexpr int kBurst = 2000;
  std::vector<int> seen;
  seen.reserve(kBurst);
  transport.run_exclusive([&] {
    for (int i = 0; i < kBurst; ++i) {
      transport.send(MachineId{0}, MachineId{1}, "burst", 1,
                     [&seen, i] { seen.push_back(i); });
    }
  });
  ASSERT_TRUE(transport.quiesce());
  EXPECT_GT(transport.bridge_shed(), 0u) << "cap never bound";
  EXPECT_EQ(seen.size() + transport.bridge_shed(),
            static_cast<std::size_t>(kBurst));
  for (std::size_t i = 1; i < seen.size(); ++i) {
    ASSERT_GT(seen[i], seen[i - 1]) << "survivor order broke at " << i;
  }
  // Shed crossings were still transmitted on the source side.
  EXPECT_EQ(transport.messages(), static_cast<std::uint64_t>(kBurst));
  EXPECT_EQ(transport.crossings(), static_cast<std::uint64_t>(kBurst));
  transport.shutdown();
}

TEST(SocketTransport, UnboundedBridgeNeverSheds) {
  net::Topology topology({net::Segment{}, net::Segment{}}, {0, 1},
                         /*bridge_alpha=*/5, /*bridge_beta=*/0.1);
  SocketTransport transport(CostModel{1.0, 0.0}, 2, topology);
  std::atomic<int> delivered{0};
  constexpr int kBurst = 1000;
  transport.run_exclusive([&] {
    for (int i = 0; i < kBurst; ++i) {
      transport.send(MachineId{0}, MachineId{1}, "burst", 1,
                     [&] { delivered.fetch_add(1); });
    }
  });
  ASSERT_TRUE(transport.quiesce());
  EXPECT_EQ(delivered.load(), kBurst);
  EXPECT_EQ(transport.bridge_shed(), 0u);
  transport.shutdown();
}

TEST(SocketTransport, GarbageConnectionIsRejectedWhileTrafficFlows) {
  SocketTransport transport(CostModel{1.0, 0.0}, 2);

  // Point a raw socket at the broker's listener and write ascii noise — no
  // Hello, no framing. The broker must reject it (typed, counted) without
  // disturbing real traffic.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(transport.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char noise[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_GT(::send(fd, noise, sizeof(noise), MSG_NOSIGNAL), 0);

  std::atomic<int> delivered{0};
  transport.run_exclusive([&] {
    for (int i = 0; i < 50; ++i) {
      transport.send(MachineId{0}, MachineId{1}, "real", 8,
                     [&] { delivered.fetch_add(1); });
    }
  });
  ASSERT_TRUE(transport.quiesce());
  EXPECT_EQ(delivered.load(), 50);
  EXPECT_TRUE(wait_until(
      [&] { return transport.rejected_connections() >= 1; }))
      << "garbage connection was never rejected";
  ::close(fd);

  // A connection that just opens and dies without a byte is also rejected
  // (by its 1s Hello deadline) — but quietly; traffic never noticed.
  transport.shutdown();
}

TEST(SocketTransport, KillNineIsDetectedAndFiresDeathHook) {
  SocketTransportOptions options;
  options.heartbeat_interval_us = 10'000;
  options.heartbeat_timeout_us = 150'000;
  SocketTransport transport(CostModel{1.0, 0.0}, 3, net::Topology{}, options);
  std::atomic<int> dead_machine{-1};
  std::string reason;
  std::mutex reason_mu;
  transport.set_peer_death_hook(
      [&](MachineId machine, const std::string& why) {
        std::lock_guard<std::mutex> lock(reason_mu);
        reason = why;
        dead_machine.store(static_cast<int>(machine.value));
      });

  const int pid = transport.child_pid(MachineId{1});
  ASSERT_GT(pid, 0);
  ASSERT_EQ(::kill(pid, SIGKILL), 0);

  ASSERT_TRUE(wait_until([&] { return dead_machine.load() == 1; }))
      << "peer death was never detected";
  EXPECT_FALSE(transport.endpoint_alive(MachineId{1}));
  {
    std::lock_guard<std::mutex> lock(reason_mu);
    EXPECT_FALSE(reason.empty());
  }
  EXPECT_EQ(transport.supervisor().deaths(), 1u);

  // Sends to the dead machine are charged (the bus transmitted) but the
  // delivery dies with the process; the fabric must still quiesce — a dead
  // peer wedges nothing.
  std::atomic<int> delivered{0};
  transport.run_exclusive([&] {
    transport.send(MachineId{0}, MachineId{1}, "to-corpse", 4,
                   [&] { delivered.fetch_add(1); });
    transport.send(MachineId{0}, MachineId{2}, "to-living", 4,
                   [&] { delivered.fetch_add(1); });
  });
  ASSERT_TRUE(transport.quiesce());
  EXPECT_EQ(delivered.load(), 1);
  EXPECT_EQ(transport.messages(), 2u);
  transport.shutdown();
}

TEST(SocketTransport, RespawnRestoresADeadEndpoint) {
  SocketTransport transport(CostModel{1.0, 0.0}, 2);
  transport.supervisor().kill_hard(1);
  ASSERT_TRUE(
      wait_until([&] { return !transport.endpoint_alive(MachineId{1}); }))
      << "kill was never detected";

  ASSERT_TRUE(transport.respawn(MachineId{1}));
  EXPECT_TRUE(transport.endpoint_alive(MachineId{1}));

  std::atomic<int> delivered{0};
  transport.run_exclusive([&] {
    for (int i = 0; i < 20; ++i) {
      transport.send(MachineId{0}, MachineId{1}, "reborn", 4,
                     [&] { delivered.fetch_add(1); });
    }
  });
  ASSERT_TRUE(transport.quiesce());
  EXPECT_EQ(delivered.load(), 20);
  transport.shutdown();
}

TEST(SocketTransport, HeartbeatsFlowOnAnIdleFabric) {
  SocketTransportOptions options;
  options.heartbeat_interval_us = 5'000;
  SocketTransport transport(CostModel{1.0, 0.0}, 2, net::Topology{}, options);
  EXPECT_TRUE(wait_until([&] { return transport.heartbeats_seen() >= 4; }))
      << "children never beaconed";
  // Heartbeats are transport plumbing, not bus traffic: nothing charged.
  transport.run_exclusive(
      [&] { EXPECT_DOUBLE_EQ(transport.ledger().total_msg_cost(), 0.0); });
  EXPECT_EQ(transport.messages(), 0u);
  transport.shutdown();
}

TEST(SocketTransport, BurstCoalescesFramesIntoFewWriteSyscalls) {
  // Syscall batching: 64 messages issued back-to-back must leave the broker
  // in far fewer writev calls than frames — frames queued while the wire
  // was busy ride a later vectored write for free. The instrumented
  // counters make the ratio a hard assertion instead of an strace eyeball.
  SocketTransport transport(CostModel{1.0, 0.0}, 2);
  ASSERT_TRUE(transport.quiesce());  // handshake flushes settle first
  const std::uint64_t frames_before = transport.frames_sent();
  const std::uint64_t writes_before = transport.write_syscalls();
  constexpr int kBurst = 64;
  std::atomic<int> delivered{0};
  transport.run_exclusive([&] {
    for (int i = 0; i < kBurst; ++i) {
      transport.send(MachineId{0}, MachineId{1}, "burst", 32,
                     [&] { delivered.fetch_add(1); });
    }
  });
  ASSERT_TRUE(transport.quiesce());
  EXPECT_EQ(delivered.load(), kBurst);
  const std::uint64_t frames = transport.frames_sent() - frames_before;
  const std::uint64_t writes = transport.write_syscalls() - writes_before;
  EXPECT_EQ(frames, static_cast<std::uint64_t>(kBurst));
  ASSERT_GT(writes, 0u);
  // The acceptance bar: at least 2x fewer write syscalls than frames. In
  // practice the whole burst usually leaves in a handful of writev calls.
  EXPECT_LE(writes * 2, frames)
      << frames << " frames took " << writes
      << " write syscalls — batching is not coalescing";
  std::printf("coalescing: %llu frames left in %llu writev calls\n",
              static_cast<unsigned long long>(frames),
              static_cast<unsigned long long>(writes));
  transport.shutdown();
}

TEST(SocketTransport, IdleFabricFiresShortTimerPromptly) {
  // Deadline-driven sleeping: a 5 ms timer on an otherwise idle fabric must
  // fire in ~one scheduling hop, not after a fixed 20/50 ms poll tick. The
  // bound is generous (a loaded CI box may preempt the timer thread) but
  // sits far below the old tick quantization this guards against.
  SocketTransportOptions options;
  options.heartbeat_interval_us = 1'000'000;  // keep the wire truly idle
  SocketTransport transport(CostModel{1.0, 0.0}, 2, net::Topology{}, options);
  ASSERT_TRUE(transport.quiesce());
  std::atomic<long> fired_after_us{-1};
  const auto start = std::chrono::steady_clock::now();
  transport.executor().schedule_after(5'000, [&] {
    fired_after_us.store(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  });
  ASSERT_TRUE(wait_until([&] { return fired_after_us.load() >= 0; }))
      << "the 5 ms timer never fired";
  EXPECT_GE(fired_after_us.load(), 5'000);
  EXPECT_LT(fired_after_us.load(), 20'000)
      << "timer latency looks tick-quantized: " << fired_after_us.load()
      << " us for a 5 ms timer";
  transport.shutdown();
}

TEST(SocketTransport, ShutdownIsIdempotentAndDropsInflight) {
  SocketTransport transport(CostModel{1.0, 0.0}, 2);
  transport.run_exclusive([&] {
    for (int i = 0; i < 100; ++i) {
      transport.send(MachineId{0}, MachineId{1}, "x", 1, [] {});
    }
  });
  transport.shutdown();
  transport.shutdown();  // no double-join, no double-reap
}

}  // namespace
}  // namespace paso
