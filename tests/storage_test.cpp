// Tests for the three local object stores (Sections 4.2, 5): store_M /
// mem-read_M / remove_M semantics, oldest-first removal, snapshot/load for
// state transfer, and the model cost functions I/Q/D.
#include <gtest/gtest.h>

#include <memory>

#include "storage/hash_store.hpp"
#include "storage/indexed_store.hpp"
#include "storage/linear_store.hpp"
#include "storage/ordered_store.hpp"

namespace paso::storage {
namespace {

PasoObject make_object(std::uint64_t seq, std::int64_t key,
                       const std::string& text = "t") {
  PasoObject object;
  object.id = ObjectId{ProcessId{MachineId{0}, 0}, seq};
  object.fields = {Value{key}, Value{text}};
  return object;
}

SearchCriterion key_criterion(std::int64_t key) {
  return criterion(Exact{Value{key}}, AnyField{});
}

/// Parameterized over the three store kinds: shared behaviour contracts.
class StoreContractTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<ObjectStore> make_store() const {
    const std::string kind = GetParam();
    if (kind == "hash") return std::make_unique<HashStore>(0);
    if (kind == "ordered") return std::make_unique<OrderedStore>(0);
    if (kind == "indexed") {
      return std::make_unique<IndexedStore>(std::vector<std::size_t>{0, 1});
    }
    return std::make_unique<LinearStore>();
  }
};

TEST_P(StoreContractTest, StoreAndFindByExactKey) {
  auto store = make_store();
  store->store(make_object(1, 42), 0);
  store->store(make_object(2, 7), 1);
  const auto found = store->find(key_criterion(42));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->id.sequence, 1u);
  EXPECT_FALSE(store->find(key_criterion(99)).has_value());
}

TEST_P(StoreContractTest, FindReturnsOldestMatch) {
  auto store = make_store();
  store->store(make_object(1, 5, "first"), 0);
  store->store(make_object(2, 5, "second"), 1);
  const auto found = store->find(key_criterion(5));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->id.sequence, 1u);
}

TEST_P(StoreContractTest, RemoveReturnsOldestAndDeletes) {
  auto store = make_store();
  store->store(make_object(1, 5), 0);
  store->store(make_object(2, 5), 1);
  const auto removed = store->remove(key_criterion(5));
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->id.sequence, 1u);
  EXPECT_EQ(store->size(), 1u);
  const auto second = store->remove(key_criterion(5));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->id.sequence, 2u);
  EXPECT_FALSE(store->remove(key_criterion(5)).has_value());
  EXPECT_EQ(store->size(), 0u);
}

TEST_P(StoreContractTest, DuplicateIdentityIsIdempotent) {
  auto store = make_store();
  store->store(make_object(1, 5), 0);
  store->store(make_object(1, 5), 1);  // same identity: A2 idempotence
  EXPECT_EQ(store->size(), 1u);
}

TEST_P(StoreContractTest, EraseById) {
  auto store = make_store();
  const PasoObject object = make_object(3, 9);
  store->store(object, 0);
  EXPECT_TRUE(store->erase(object.id));
  EXPECT_FALSE(store->erase(object.id));
  EXPECT_EQ(store->size(), 0u);
  EXPECT_FALSE(store->find(key_criterion(9)).has_value());
}

TEST_P(StoreContractTest, GeneralCriterionFallsBackToScan) {
  auto store = make_store();
  store->store(make_object(1, 10, "alpha"), 0);
  store->store(make_object(2, 20, "beta"), 1);
  // No exact key: a text prefix on the second field forces a scan.
  const auto found = store->find(criterion(AnyField{}, TextPrefix{"be"}));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->id.sequence, 2u);
}

TEST_P(StoreContractTest, SnapshotLoadRoundTripsInAgeOrder) {
  auto store = make_store();
  store->store(make_object(1, 1), 5);
  store->store(make_object(2, 2), 9);
  const auto snapshot = store->snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].age, 5u);
  EXPECT_EQ(snapshot[1].age, 9u);

  auto other = make_store();
  other->load(snapshot);
  EXPECT_EQ(other->size(), 2u);
  // Removal order (by age) must be preserved across the transfer.
  const auto oldest = other->remove(criterion(AnyField{}, AnyField{}));
  ASSERT_TRUE(oldest.has_value());
  EXPECT_EQ(oldest->id.sequence, 1u);
}

TEST_P(StoreContractTest, StateBytesTracksContent) {
  auto store = make_store();
  const std::size_t empty = store->state_bytes();
  store->store(make_object(1, 1, "payload"), 0);
  EXPECT_GT(store->state_bytes(), empty);
  store->clear();
  EXPECT_EQ(store->state_bytes(), empty);
}

TEST_P(StoreContractTest, ClearEmptiesEverything) {
  auto store = make_store();
  store->store(make_object(1, 1), 0);
  store->store(make_object(2, 2), 1);
  store->clear();
  EXPECT_EQ(store->size(), 0u);
  EXPECT_FALSE(store->find(criterion(AnyField{}, AnyField{})).has_value());
}

INSTANTIATE_TEST_SUITE_P(AllStores, StoreContractTest,
                         ::testing::Values("hash", "ordered", "linear",
                                           "indexed"),
                         [](const auto& info) { return info.param; });

// --- kind-specific behaviour -------------------------------------------------

TEST(HashStoreTest, UnitModelCosts) {
  HashStore store(0);
  for (std::uint64_t i = 0; i < 100; ++i) store.store(make_object(i, 1), i);
  EXPECT_DOUBLE_EQ(store.insert_cost(), 1.0);
  EXPECT_DOUBLE_EQ(store.query_cost(), 1.0);
  EXPECT_DOUBLE_EQ(store.remove_cost(), 1.0);
}

TEST(HashStoreTest, OneOfWithRepeatedValuesProbesEachBucketOnce) {
  HashStore store(0);
  for (std::uint64_t i = 0; i < 8; ++i) {
    store.store(make_object(i, static_cast<std::int64_t>(i % 2)), i);
  }
  const std::uint64_t before = store.match_probes();
  // The value 1 appears three times; a correct OneOf path scans its bucket
  // once, so the probe count equals the distinct buckets' sizes (4 + 4).
  const auto found = store.find(criterion(
      OneOf{{Value{1ll}, Value{1ll}, Value{0ll}, Value{1ll}}}, AnyField{}));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(store.match_probes() - before, 8u)
      << "repeated OneOf values rescanned a bucket";
}

TEST(IndexedStoreTest, NonFirstFieldCriterionUsesItsIndex) {
  IndexedStore store(std::vector<std::size_t>{0, 1});
  for (std::uint64_t i = 0; i < 100; ++i) {
    store.store(make_object(i, static_cast<std::int64_t>(i),
                            i == 73 ? "needle" : "hay"),
                i);
  }
  const std::uint64_t before = store.match_probes();
  // Field 1 is indexed: an Exact text criterion must go straight to its
  // bucket (1 candidate) instead of scanning 74 objects by age.
  const auto found =
      store.find(criterion(AnyField{}, Exact{Value{std::string{"needle"}}}));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->id.sequence, 73u);
  EXPECT_EQ(store.match_probes() - before, 1u);
}

TEST(IndexedStoreTest, PicksTheMostSelectiveIndexedField) {
  IndexedStore store(std::vector<std::size_t>{0, 1});
  // Field 0 has 2 distinct values (huge buckets), field 1 is unique.
  for (std::uint64_t i = 0; i < 50; ++i) {
    store.store(
        make_object(i, static_cast<std::int64_t>(i % 2), std::to_string(i)),
        i);
  }
  const std::uint64_t before = store.match_probes();
  const auto found = store.find(criterion(
      Exact{Value{1ll}}, Exact{Value{std::string{"41"}}}));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->id.sequence, 41u);
  EXPECT_EQ(store.match_probes() - before, 1u)
      << "selectivity rule did not pick the unique field-1 bucket";
}

TEST(IndexedStoreTest, EmptyBucketShortCircuitsToNoMatch) {
  IndexedStore store(std::vector<std::size_t>{0});
  for (std::uint64_t i = 0; i < 20; ++i) {
    store.store(make_object(i, 7), i);
  }
  const std::uint64_t before = store.match_probes();
  EXPECT_FALSE(store.find(key_criterion(8)).has_value());
  EXPECT_EQ(store.match_probes() - before, 0u)
      << "an empty bucket proves no match; nothing should be probed";
}

TEST(IndexedStoreTest, ModelCostsScaleWithIndexCount) {
  IndexedStore one(std::vector<std::size_t>{0});
  IndexedStore three(std::vector<std::size_t>{0, 1, 2});
  EXPECT_DOUBLE_EQ(one.insert_cost(), 1.0);
  EXPECT_DOUBLE_EQ(three.insert_cost(), 3.0);
  EXPECT_DOUBLE_EQ(three.query_cost(), 1.0);
}

TEST(OrderedStoreTest, RangeQueriesUseTheIndex) {
  OrderedStore store(0);
  for (std::int64_t k = 0; k < 50; ++k) {
    store.store(make_object(static_cast<std::uint64_t>(k), k), k);
  }
  const auto found = store.find(criterion(IntRange{10, 12}, AnyField{}));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(std::get<std::int64_t>(found->fields[0]), 10);
  const auto removed = store.remove(criterion(IntRange{48, 100}, AnyField{}));
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(std::get<std::int64_t>(removed->fields[0]), 48);
}

TEST(OrderedStoreTest, LogarithmicQueryCostGrowsWithSize) {
  OrderedStore store(0);
  EXPECT_DOUBLE_EQ(store.query_cost(), 1.0);
  for (std::uint64_t i = 0; i < 1024; ++i) store.store(make_object(i, 1), i);
  EXPECT_GE(store.query_cost(), 10.0);
  EXPECT_DOUBLE_EQ(store.insert_cost(), 1.0);
}

TEST(OrderedStoreTest, FixedQueryCostOverride) {
  OrderedStore store(0, 4.0);
  for (std::uint64_t i = 0; i < 1000; ++i) store.store(make_object(i, 1), i);
  EXPECT_DOUBLE_EQ(store.query_cost(), 4.0);
}

TEST(LinearStoreTest, LinearModelCosts) {
  LinearStore store;
  for (std::uint64_t i = 0; i < 37; ++i) store.store(make_object(i, 1), i);
  EXPECT_DOUBLE_EQ(store.query_cost(), 37.0);
  EXPECT_DOUBLE_EQ(store.remove_cost(), 37.0);
  EXPECT_DOUBLE_EQ(store.insert_cost(), 1.0);
}

TEST(LinearStoreTest, EmptyStoreCostsFloorAtOne) {
  LinearStore store;
  EXPECT_DOUBLE_EQ(store.query_cost(), 1.0);
}

TEST(OrderedStoreTest, RealRangeQueries) {
  OrderedStore store(0);
  PasoObject object;
  object.id = ObjectId{ProcessId{MachineId{0}, 0}, 1};
  object.fields = {Value{3.25}, Value{std::string{"x"}}};
  store.store(object, 0);
  const auto found = store.find(criterion(RealRange{3.0, 3.5}, AnyField{}));
  EXPECT_TRUE(found.has_value());
  EXPECT_FALSE(
      store.find(criterion(RealRange{3.3, 3.5}, AnyField{})).has_value());
}

// --- query engine: planner, ordered mode, stats, ranked reads ---------------

TEST(QueryPlanTest, OrdersCompoundCriteriaBySelectivity) {
  IndexedStore store({0, 1}, IndexedStore::Options{true});
  // Field 0: two fat buckets. Field 1: unique values.
  for (std::uint64_t i = 0; i < 40; ++i) {
    store.store(
        make_object(i, static_cast<std::int64_t>(i % 2), std::to_string(i)),
        i);
  }
  const QueryPlan plan = store.plan(
      criterion(Exact{Value{0ll}}, Exact{Value{std::string{"12"}}}));
  ASSERT_EQ(plan.access, PlanAccess::kIndex);
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps[0].field, 1u);  // 1 candidate beats 20
  EXPECT_EQ(plan.steps[0].estimate, 1u);
  EXPECT_EQ(plan.steps[1].field, 0u);
  EXPECT_EQ(plan.steps[1].estimate, 20u);
}

TEST(QueryPlanTest, ArityMismatchIsImpossibleWithoutProbing) {
  IndexedStore store({0}, IndexedStore::Options{true});
  for (std::uint64_t i = 0; i < 10; ++i) store.store(make_object(i, 1), i);
  // No arity-3 object was ever stored: the histogram proves no match.
  const QueryPlan plan =
      store.plan(criterion(AnyField{}, AnyField{}, AnyField{}));
  EXPECT_EQ(plan.access, PlanAccess::kImpossible);
  EXPECT_STREQ(plan.reason, "arity");
  const std::uint64_t before = store.match_probes();
  EXPECT_FALSE(
      store.find(criterion(AnyField{}, AnyField{}, AnyField{})).has_value());
  EXPECT_EQ(store.match_probes() - before, 0u);
}

TEST(QueryPlanTest, ProvablyEmptyRangeIsImpossible) {
  IndexedStore store({0}, IndexedStore::Options{true});
  for (std::uint64_t i = 0; i < 10; ++i) {
    store.store(make_object(i, static_cast<std::int64_t>(i)), i);
  }
  // Inverted and out-of-population ranges die in the planner, not the scan.
  EXPECT_EQ(store
                .plan(criterion(range_between(Value{5ll}, Value{2ll}),
                                AnyField{}))
                .access,
            PlanAccess::kImpossible);
  EXPECT_EQ(store
                .plan(criterion(range_at_least(Value{100ll}), AnyField{}))
                .access,
            PlanAccess::kImpossible);
  const std::uint64_t before = store.match_probes();
  EXPECT_FALSE(
      store.find(criterion(range_at_least(Value{100ll}), AnyField{}))
          .has_value());
  EXPECT_EQ(store.match_probes() - before, 0u);
}

TEST(QueryPlanTest, RangeWalkProbesOnlyTheRegion) {
  IndexedStore store({0}, IndexedStore::Options{true});
  for (std::uint64_t i = 0; i < 100; ++i) {
    store.store(make_object(i, static_cast<std::int64_t>(i)), i);
  }
  const std::uint64_t before = store.match_probes();
  // (10, 14]: exactly keys 11..14 are in region — 4 probes, not 100.
  const auto found = store.find(criterion(
      range_between(Value{10ll}, Value{14ll}, /*lo_exclusive=*/true),
      AnyField{}));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(std::get<std::int64_t>(found->fields[0]), 11);
  EXPECT_EQ(store.match_probes() - before, 4u);
}

TEST(QueryPlanTest, PrefixWalkProbesOnlyThePrefixRegion) {
  IndexedStore store({1}, IndexedStore::Options{true});
  store.store(make_object(0, 0, "apple"), 0);
  store.store(make_object(1, 0, "apricot"), 1);
  store.store(make_object(2, 0, "banana"), 2);
  store.store(make_object(3, 0, "cherry"), 3);
  const std::uint64_t before = store.match_probes();
  const auto found = store.find(criterion(AnyField{}, TextPrefix{"ap"}));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->id.sequence, 0u);
  EXPECT_EQ(store.match_probes() - before, 2u)
      << "prefix walk left the 'ap' region";
}

TEST(IndexedStoreTest, OrderedModeCostsDoubleThePlainModel) {
  IndexedStore plain({0, 1});
  IndexedStore ordered({0, 1}, IndexedStore::Options{true});
  EXPECT_DOUBLE_EQ(plain.insert_cost(), 2.0);
  EXPECT_DOUBLE_EQ(ordered.insert_cost(), 4.0);  // hash + sorted twin each
  EXPECT_DOUBLE_EQ(plain.query_cost(), 1.0);
  EXPECT_DOUBLE_EQ(ordered.query_cost(), 1.0);  // empty store floors at 1
  for (std::uint64_t i = 0; i < 1024; ++i) {
    ordered.store(make_object(i, 1), i);
  }
  EXPECT_GE(ordered.query_cost(), 10.0);  // log-sized descent, like Ordered
}

TEST(IndexedStoreTest, CardinalityStatsTrackInsertAndRemove) {
  IndexedStore store({0, 1}, IndexedStore::Options{true});
  store.store(make_object(0, 7, "a"), 0);
  store.store(make_object(1, 7, "b"), 1);
  store.store(make_object(2, 9, "a"), 2);
  auto stats = store.index_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0], (IndexedStore::IndexStats{0, 3, 2}));  // keys {7,9}
  EXPECT_EQ(stats[1], (IndexedStore::IndexStats{1, 3, 2}));  // texts {a,b}
  ASSERT_TRUE(store.remove(key_criterion(7)).has_value());  // takes (7,"a")
  stats = store.index_stats();
  EXPECT_EQ(stats[0], (IndexedStore::IndexStats{0, 2, 2}));  // one 7 left
  EXPECT_EQ(stats[1], (IndexedStore::IndexStats{1, 2, 2}));  // (9,"a") remains
  ASSERT_TRUE(store.remove(key_criterion(7)).has_value());  // takes (7,"b")
  stats = store.index_stats();
  EXPECT_EQ(stats[0], (IndexedStore::IndexStats{0, 1, 1}));  // key 7 gone
  EXPECT_EQ(stats[1], (IndexedStore::IndexStats{1, 1, 1}));  // "b" gone
}

TEST(RankedReadTest, TopKSelectsByRankNotAge) {
  // Ages and key order deliberately disagree: ranked reads must follow the
  // score order, ties broken oldest-first — identically on every family.
  const auto fill = [](ObjectStore& store) {
    store.store(make_object(0, 30, "old-high"), 0);
    store.store(make_object(1, 10, "low"), 1);
    store.store(make_object(2, 30, "new-high"), 2);
    store.store(make_object(3, 20, "mid"), 3);
  };
  LinearStore spec;
  IndexedStore indexed({0}, IndexedStore::Options{true});
  OrderedStore ordered(0);
  fill(spec);
  fill(indexed);
  fill(ordered);
  const SearchCriterion top1 = ranked(
      criterion(AnyField{}, AnyField{}), TopK{0, 1, /*descending=*/true});
  const SearchCriterion top2 = ranked(
      criterion(AnyField{}, AnyField{}), TopK{0, 2, /*descending=*/true});
  const SearchCriterion bottom = ranked(
      criterion(AnyField{}, AnyField{}), TopK{0, 1, /*descending=*/false});
  for (ObjectStore* store :
       std::initializer_list<ObjectStore*>{&spec, &indexed, &ordered}) {
    EXPECT_EQ(store->find(top1)->id.sequence, 0u);  // 30, oldest of the tie
    EXPECT_EQ(store->find(top2)->id.sequence, 2u);  // 30, the newer twin
    EXPECT_EQ(store->find(bottom)->id.sequence, 1u);  // 10
  }
  // k past the match count finds nothing; a ranked remove takes the k-th.
  EXPECT_FALSE(spec.find(ranked(criterion(AnyField{}, AnyField{}),
                                TopK{0, 5, true}))
                   .has_value());
  const auto removed = indexed.remove(top1);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->id.sequence, 0u);
  EXPECT_EQ(indexed.find(top1)->id.sequence, 2u);
}

TEST(RankedReadTest, RankedWalkStopsAtK) {
  // 100 keyed objects, descending top-1: the sorted walk starts at the top
  // key and stops at the first verified match instead of scoring everything.
  IndexedStore store({0}, IndexedStore::Options{true});
  for (std::uint64_t i = 0; i < 100; ++i) {
    store.store(make_object(i, static_cast<std::int64_t>(i)), i);
  }
  const std::uint64_t before = store.match_probes();
  const auto found = store.find(
      ranked(criterion(AnyField{}, AnyField{}), TopK{0, 1, true}));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(std::get<std::int64_t>(found->fields[0]), 99);
  EXPECT_EQ(store.match_probes() - before, 1u)
      << "descending top-1 should probe only the top key";
}

}  // namespace
}  // namespace paso::storage
