// Frame codec: round-trips for every frame type, and the malformed-input
// matrix — truncated frames, oversized/undersized length prefixes, bad type
// bytes, torn writes, mid-stream close. Every bad input must surface as a
// typed FrameError (never a hang, never UB — this test runs under ASan and
// UBSan in CI via the full-suite sanitizer job, label `sockets`).
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/frame.hpp"

namespace paso::net {
namespace {

Frame make_frame(FrameType type, std::uint32_t machine, std::uint64_t seq,
                 std::string payload = {}) {
  Frame f;
  f.type = type;
  f.machine = machine;
  f.seq = seq;
  f.payload = std::move(payload);
  return f;
}

void expect_equal(const Frame& a, const Frame& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.machine, b.machine);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.payload, b.payload);
}

TEST(FrameCodec, RoundTripsEveryTypeAndPayloadShape) {
  const std::vector<Frame> frames = {
      make_frame(FrameType::kHello, 3, 0xDEADBEEFCAFEBABEull),
      make_frame(FrameType::kHelloAck, 3, 0),
      make_frame(FrameType::kMsg, 1, 42, std::string(1000, 'm')),
      make_frame(FrameType::kMsg, 1, 43, ""),  // zero-byte wire size
      make_frame(FrameType::kDeliver, 1, 42),
      make_frame(FrameType::kHeartbeat, 7, 0),
      make_frame(FrameType::kShutdown, 0, 0),
      make_frame(FrameType::kBye, 0, 0),
  };
  std::string wire;
  for (const Frame& f : frames) encode_frame(f, wire);

  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  for (const Frame& expected : frames) {
    const DecodeResult r = decoder.next();
    ASSERT_EQ(r.error, FrameErrorKind::kNone);
    ASSERT_TRUE(r.has_frame);
    expect_equal(r.frame, expected);
  }
  const DecodeResult done = decoder.next();
  EXPECT_FALSE(done.has_frame);
  EXPECT_EQ(done.error, FrameErrorKind::kNone);
  EXPECT_EQ(decoder.pending_bytes(), 0u);
  // A close exactly between frames is clean.
  EXPECT_EQ(decoder.finish().error, FrameErrorKind::kNone);
}

TEST(FrameCodec, ReassemblesOneByteAtATime) {
  // The torn-write extreme: every byte arrives in its own feed() call.
  std::string wire;
  const Frame a = make_frame(FrameType::kMsg, 2, 7, "payload-bytes");
  const Frame b = make_frame(FrameType::kDeliver, 2, 7);
  encode_frame(a, wire);
  encode_frame(b, wire);

  FrameDecoder decoder;
  std::vector<Frame> seen;
  for (const char byte : wire) {
    decoder.feed(&byte, 1);
    for (;;) {
      const DecodeResult r = decoder.next();
      ASSERT_EQ(r.error, FrameErrorKind::kNone);
      if (!r.has_frame) break;
      seen.push_back(r.frame);
    }
  }
  ASSERT_EQ(seen.size(), 2u);
  expect_equal(seen[0], a);
  expect_equal(seen[1], b);
}

TEST(FrameCodec, OversizedLengthPrefixIsATypedErrorNotAnAllocation) {
  // Length prefix far beyond kMaxFrameLength: must error immediately from
  // the prefix alone — before any body bytes arrive, and without trying to
  // allocate what the prefix claims.
  const unsigned char evil[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  FrameDecoder decoder;
  decoder.feed(reinterpret_cast<const char*>(evil), sizeof(evil));
  const DecodeResult r = decoder.next();
  EXPECT_FALSE(r.has_frame);
  EXPECT_EQ(r.error, FrameErrorKind::kOversizedLength);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(FrameCodec, UndersizedLengthPrefixIsATypedError) {
  // length < kFrameHeaderBytes can't even hold the fixed header.
  const unsigned char evil[4] = {0x05, 0x00, 0x00, 0x00};
  FrameDecoder decoder;
  decoder.feed(reinterpret_cast<const char*>(evil), sizeof(evil));
  const DecodeResult r = decoder.next();
  EXPECT_FALSE(r.has_frame);
  EXPECT_EQ(r.error, FrameErrorKind::kShortLength);
}

TEST(FrameCodec, BadTypeByteIsATypedError) {
  std::string wire;
  encode_frame(make_frame(FrameType::kHeartbeat, 0, 0), wire);
  wire[4] = static_cast<char>(0x7F);  // corrupt the type byte
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  const DecodeResult r = decoder.next();
  EXPECT_FALSE(r.has_frame);
  EXPECT_EQ(r.error, FrameErrorKind::kBadType);
}

TEST(FrameCodec, MidStreamCloseIsTruncated) {
  // The peer vanished with half a frame on the wire: finish() must turn
  // the leftover bytes into kTruncated, not silence.
  std::string wire;
  encode_frame(make_frame(FrameType::kMsg, 1, 9, "half of this is lost"),
               wire);
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size() / 2);
  const DecodeResult pending = decoder.next();
  EXPECT_FALSE(pending.has_frame);
  EXPECT_EQ(pending.error, FrameErrorKind::kNone);  // still just waiting
  const DecodeResult closed = decoder.finish();
  EXPECT_EQ(closed.error, FrameErrorKind::kTruncated);
}

TEST(FrameCodec, PoisonedDecoderStaysPoisoned) {
  const unsigned char evil[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  FrameDecoder decoder;
  decoder.feed(reinterpret_cast<const char*>(evil), sizeof(evil));
  ASSERT_EQ(decoder.next().error, FrameErrorKind::kOversizedLength);
  // Feeding perfectly valid frames afterwards must not resurrect it: the
  // stream position is unknowable once corrupt.
  std::string wire;
  encode_frame(make_frame(FrameType::kHeartbeat, 0, 0), wire);
  decoder.feed(wire.data(), wire.size());
  EXPECT_EQ(decoder.next().error, FrameErrorKind::kOversizedLength);
  EXPECT_EQ(decoder.finish().error, FrameErrorKind::kOversizedLength);
}

TEST(FrameCodec, MaxLengthBoundaryIsExact) {
  // A frame exactly at kMaxFrameLength decodes; one byte beyond errors.
  const std::size_t max_payload = kMaxFrameLength - kFrameHeaderBytes;
  std::string wire;
  encode_frame(make_frame(FrameType::kMsg, 0, 1, std::string(max_payload, 'b')),
               wire);
  {
    FrameDecoder decoder;
    decoder.feed(wire.data(), wire.size());
    const DecodeResult r = decoder.next();
    ASSERT_EQ(r.error, FrameErrorKind::kNone);
    ASSERT_TRUE(r.has_frame);
    EXPECT_EQ(r.frame.payload.size(), max_payload);
  }
  {
    // Hand-patch the prefix to kMaxFrameLength + 1 (little-endian, like the
    // codec — not via host memcpy).
    const std::uint32_t too_big =
        static_cast<std::uint32_t>(kMaxFrameLength) + 1;
    for (int i = 0; i < 4; ++i) {
      wire[i] = static_cast<char>((too_big >> (8 * i)) & 0xFF);
    }
    FrameDecoder decoder;
    decoder.feed(wire.data(), 4);
    EXPECT_EQ(decoder.next().error, FrameErrorKind::kOversizedLength);
  }
}

TEST(FrameCodec, TenThousandFramesOneByteAtATimeStayLinear) {
  // The quadratic trap this guards: a decoder that erases its consumed
  // prefix on every feed makes a long-lived connection O(bytes²). The
  // probe counters — not wall time, which lies on loaded CI boxes — assert
  // the actual cost: each byte through the decoder is moved at most once.
  constexpr int kFrames = 10'000;
  std::string wire;
  for (int i = 0; i < kFrames; ++i) {
    encode_frame(make_frame(FrameType::kMsg, 1, static_cast<std::uint64_t>(i),
                            std::string(16, 'x')),
                 wire);
  }

  // Torn-write extreme: every byte in its own feed, frames drained as soon
  // as they complete. The fully-consumed fast path resets the buffer with
  // zero copies, so NO compaction should ever fire here.
  FrameDecoder decoder;
  int seen = 0;
  for (const char byte : wire) {
    decoder.feed(&byte, 1);
    for (;;) {
      const DecodeResult r = decoder.next();
      ASSERT_EQ(r.error, FrameErrorKind::kNone);
      if (!r.has_frame) break;
      ++seen;
    }
  }
  EXPECT_EQ(seen, kFrames);
  EXPECT_EQ(decoder.compactions(), 0u)
      << "eager draining should hit the free clear path, not memmove";
  EXPECT_EQ(decoder.bytes_moved(), 0u);

  // Misaligned chunks: each feed leaves a torn frame tail, so the buffer is
  // never fully consumed and the clear fast path never applies — this is
  // the pattern that must compact. Linearity bound: live bytes are moved at
  // most once each, so bytes_moved can never exceed the bytes fed (the old
  // erase-per-feed behavior moves ~bytes * frames/2 and explodes this
  // counter by orders of magnitude).
  FrameDecoder torn;
  const std::size_t chunk = 33 * 7 + 1;  // frame size 33, never aligned
  seen = 0;
  for (std::size_t off = 0; off < wire.size(); off += chunk) {
    torn.feed(wire.data() + off, std::min(chunk, wire.size() - off));
    for (;;) {
      const DecodeResult r = torn.next();
      ASSERT_EQ(r.error, FrameErrorKind::kNone);
      if (!r.has_frame) break;
      ++seen;
    }
  }
  EXPECT_EQ(seen, kFrames);
  EXPECT_GT(torn.compactions(), 0u)
      << "the compaction path never fired — the buffer grew unboundedly";
  EXPECT_LE(torn.bytes_moved(), wire.size())
      << "bytes moved exceed bytes fed: compaction is super-linear";
}

TEST(FrameCodec, InterleavedGarbageAfterValidFramePoisons) {
  // One good frame, then noise: the good frame decodes, the noise is a
  // typed error — and pending_bytes never silently swallows data.
  std::string wire;
  encode_frame(make_frame(FrameType::kDeliver, 4, 11), wire);
  wire += "this is not a frame at all, just ascii noise................";
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  const DecodeResult good = decoder.next();
  ASSERT_TRUE(good.has_frame);
  EXPECT_EQ(good.frame.type, FrameType::kDeliver);
  const DecodeResult bad = decoder.next();
  EXPECT_FALSE(bad.has_frame);
  EXPECT_NE(bad.error, FrameErrorKind::kNone);
}

}  // namespace
}  // namespace paso::net
