// Overload chaos sweep: open-loop traffic past the knee, bounded bridge
// buffers, admission control, AND the fault injector all at once — 100
// seeded schedules of crashes, drop/delay windows and bridge partitions on
// a two-segment cluster whose bridges shed or backpressure and whose client
// edge rejects, parks or degrades (cycled by seed so every combination gets
// coverage). After every run: the Section 2 axioms hold, no operation is
// wedged (every offered op resolved, was abandoned with a surfaced error,
// or was orphaned by its issuer's crash), the runtimes report zero inflight
// and empty parking lots, and the same seed replays to the identical
// timeline, ledger and outcome breakdown.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "paso/fault_injector.hpp"
#include "semantics/checker.hpp"
#include "workload/traffic.hpp"

namespace paso {
namespace {

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 2},
  });
}

constexpr std::size_t kMachines = 6;

struct RunResult {
  std::string timeline;
  double msg_cost = 0;
  double work = 0;
  std::uint64_t crashes = 0;
  std::uint64_t partitions = 0;
  std::uint64_t bridge_shed = 0;
  std::uint64_t bridge_backpressured = 0;
  std::size_t inflight = 0;
  std::size_t parked = 0;
  workload::TrafficReport traffic;
  std::vector<std::string> violations;
};

RunResult run_overload_chaos(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.machines = kMachines;
  cfg.lambda = 2;
  cfg.topology = net::Topology::even(2, kMachines, CostModel{}, 60, 0.5);
  // Cycle the bridge policy and the admission mode so the sweep covers every
  // overload-handling combination, not just one configuration 100 times.
  cfg.topology.with_bridge_limit(4, (seed % 2 == 0)
                                        ? net::BridgePolicy::kShed
                                        : net::BridgePolicy::kBackpressure);
  switch (seed % 3) {
    case 0: cfg.runtime.admission = AdmissionMode::kReject; break;
    case 1: cfg.runtime.admission = AdmissionMode::kQueue; break;
    default: cfg.runtime.admission = AdmissionMode::kDegrade; break;
  }
  cfg.runtime.admission_limit = 4;
  cfg.runtime.admission_queue_limit = 16;
  cfg.vsync.retransmit_timeout = 300;  // partitions drop messages
  cfg.runtime.op_deadline = 4000;
  cfg.runtime.retry_backoff = 500;
  cfg.runtime.pessimistic_timeouts = true;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_placement_aware_support();

  ChaosSchedule::GenOptions gen;
  gen.horizon = 8000;
  gen.detection_delay = cluster.groups().options().failure_detection_delay;
  gen.bridge_partition_count = 3;
  gen.bridges = cluster.network().bridge_count();
  ChaosEngine engine(cluster, ChaosSchedule::generate(seed, kMachines, gen));
  engine.start();

  workload::TrafficConfig traffic;
  traffic.seed = seed * 613 + 5;
  traffic.arrivals.base_rate = 0.03;  // well past what admission_limit=4 likes
  traffic.arrivals.flash_crowds.push_back(
      {/*start=*/2000, /*duration=*/2000, /*multiplier=*/4});
  traffic.duration = 8000;
  traffic.sessions = 100'000;
  traffic.key_space = 16;  // hot keys: contention on top of overload
  traffic.make_tuple = [](std::uint64_t key, std::size_t payload_bytes) {
    return Tuple{Value{static_cast<std::int64_t>(key)},
                 Value{std::string(payload_bytes, 'x')}};
  };
  traffic.make_criterion = [](std::uint64_t key) {
    return criterion(Exact{Value{static_cast<std::int64_t>(key)}},
                     AnyField{});
  };
  workload::TrafficEngine traffic_engine(cluster, traffic);

  RunResult out;
  out.traffic = traffic_engine.run();  // generates, then settles everything
  cluster.settle();

  out.timeline = engine.timeline();
  out.msg_cost = cluster.ledger().total_msg_cost();
  out.work = cluster.ledger().total_work();
  out.crashes = engine.crashes();
  out.partitions = engine.partitions();
  out.bridge_shed = cluster.network().bridge_shed();
  out.bridge_backpressured = cluster.network().bridge_backpressured();
  for (std::uint32_t m = 0; m < kMachines; ++m) {
    out.inflight += cluster.runtime(MachineId{m}).inflight();
    out.parked += cluster.runtime(MachineId{m}).admission_queue_depth();
  }
  out.violations =
      semantics::check_history(cluster.history(), cluster.run_context())
          .violations;
  return out;
}

class OverloadChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OverloadChaosSweep, SurvivesOverloadUnderChaos) {
  const std::uint64_t seed = GetParam();
  const RunResult r = run_overload_chaos(seed);

  // Axioms hold and nothing is wedged: every runtime drained its in-flight
  // set and its parking lot, and the history checker saw every op resolve.
  EXPECT_TRUE(r.violations.empty())
      << "seed " << seed << ": " << r.violations.front() << "\n" << r.timeline;
  EXPECT_EQ(r.inflight, 0u) << "seed " << seed << "\n" << r.timeline;
  EXPECT_EQ(r.parked, 0u) << "seed " << seed << "\n" << r.timeline;

  // Exact reconciliation of the outcome ledger: every offered op landed in
  // exactly one bucket, and orphans exist only when machines crashed.
  EXPECT_EQ(r.traffic.offered,
            r.traffic.ok + r.traffic.failed + r.traffic.timed_out +
                r.traffic.degraded + r.traffic.overloaded + r.traffic.orphaned)
      << "seed " << seed;
  if (r.crashes == 0) {
    EXPECT_EQ(r.traffic.orphaned, 0u) << "seed " << seed;
    EXPECT_EQ(r.traffic.skipped, 0u) << "seed " << seed;
  }
  EXPECT_GT(r.traffic.offered, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverloadChaosSweep,
                         ::testing::Range<std::uint64_t>(1, 101));

class OverloadChaosReplay : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OverloadChaosReplay, SameSeedReplaysIdentically) {
  const RunResult a = run_overload_chaos(GetParam());
  const RunResult b = run_overload_chaos(GetParam());
  EXPECT_EQ(a.timeline, b.timeline);
  EXPECT_DOUBLE_EQ(a.msg_cost, b.msg_cost);
  EXPECT_DOUBLE_EQ(a.work, b.work);
  EXPECT_EQ(a.bridge_shed, b.bridge_shed);
  EXPECT_EQ(a.bridge_backpressured, b.bridge_backpressured);
  const auto outcome = [](const RunResult& r) {
    return std::tuple{r.traffic.offered,    r.traffic.ok,
                      r.traffic.failed,     r.traffic.timed_out,
                      r.traffic.degraded,   r.traffic.overloaded,
                      r.traffic.orphaned,   r.traffic.skipped};
  };
  EXPECT_EQ(outcome(a), outcome(b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverloadChaosReplay,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace paso
