// Property test: blocking producers/consumers racing under crash injection
// of non-issuing machines. Checks that (a) every produced item is consumed
// at most once (A2 through the blocking claim path), (b) consumers with
// deadlines always complete, and (c) the history passes the Section 2
// checker — across seeds.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "paso/cluster.hpp"
#include "semantics/checker.hpp"

namespace paso {
namespace {

Schema schema() {
  return Schema({ClassSpec{"item", {FieldType::kInt, FieldType::kInt}, 0, 2}});
}

class BlockingPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BlockingPropertyTest, RacingBlockingConsumersNeverDuplicate) {
  Rng rng(GetParam());
  ClusterConfig cfg;
  cfg.machines = 7;
  cfg.lambda = 1;
  cfg.runtime.marker_ttl = 500 + rng.index(4000);
  cfg.runtime.poll_interval = 50 + rng.index(400);
  Cluster cluster(schema(), cfg);
  cluster.assign_basic_support();

  constexpr int kItems = 30;
  constexpr int kConsumers = 6;

  // Consumers on machines 1..6, waiting for any item; mix of marker and
  // poll modes. Machine 0 produces and is kept immune from crashes.
  std::map<std::int64_t, int> consumed;  // item id -> times consumed
  int completions = 0;
  int consumed_count = 0;
  auto consume_loop = std::make_shared<std::function<void(std::uint32_t)>>();
  *consume_loop = [&, consume_loop](std::uint32_t machine) {
    const ProcessId p = cluster.process(MachineId{machine}, 3);
    const BlockingMode mode =
        machine % 2 == 0 ? BlockingMode::kMarker : BlockingMode::kPoll;
    cluster.runtime(MachineId{machine})
        .read_del_blocking(
            p, criterion(TypedAny{FieldType::kInt}, TypedAny{FieldType::kInt}),
            [&, consume_loop, machine](SearchResponse item) {
              ++completions;
              if (item) {
                ++consumed[std::get<std::int64_t>(item->fields[0])];
                ++consumed_count;
                (*consume_loop)(machine);
              }
              // Deadline expiry: the consumer retires.
            },
            mode, cluster.simulator().now() + 60000);
  };
  for (std::uint32_t m = 1; m <= kConsumers; ++m) (*consume_loop)(m);

  // Producer drips items; a storage-only crash victim cycles in parallel.
  const ProcessId producer = cluster.process(MachineId{0});
  int produced = 0;
  auto produce = std::make_shared<std::function<void()>>();
  *produce = [&, produce] {
    if (produced == kItems) return;
    const std::int64_t id = produced++;
    cluster.runtime(MachineId{0})
        .insert(producer, {Value{id}, Value{id * 7}}, [&, produce] {
          cluster.simulator().schedule_after(20 + rng.index(300),
                                             [produce] { (*produce)(); });
        });
  };
  (*produce)();

  // Crash/recover random machines (never the producer). Consumers on a
  // crashed machine lose their blocking op (their process died) — that is
  // allowed; they simply stop consuming. An item whose claimant died after
  // the replicated removal but before the response is consumed by no one:
  // the operation stays pending, which the checker treats soundly.
  int crash_rounds = 3 + static_cast<int>(rng.index(3));
  auto do_crash = std::make_shared<std::function<void()>>();
  *do_crash = [&, do_crash] {
    if (crash_rounds-- <= 0) return;
    const std::uint32_t victim =
        1 + static_cast<std::uint32_t>(rng.index(cfg.machines - 1));
    if (cluster.is_up(MachineId{victim})) {
      cluster.crash(MachineId{victim});
      cluster.simulator().schedule_after(
          2000 + rng.index(2000), [&cluster, victim, do_crash] {
            if (!cluster.is_up(MachineId{victim})) {
              cluster.recover(MachineId{victim});
            }
            (*do_crash)();
          });
    } else {
      cluster.simulator().schedule_after(500, [do_crash] { (*do_crash)(); });
    }
  };
  cluster.simulator().schedule_after(1500, [do_crash] { (*do_crash)(); });

  // Run until all items produced and either consumed or the deadline hit.
  cluster.simulator().run_while_pending([&] {
    return produced == kItems && completions >= kConsumers &&
           cluster.simulator().now() > 70000;
  });
  cluster.settle_for(70000);

  // (a) no item consumed twice;
  for (const auto& [id, times] : consumed) {
    EXPECT_EQ(times, 1) << "item " << id << " seed " << GetParam();
  }
  // (b) consumers that survived got items or a clean deadline fail;
  EXPECT_LE(consumed_count, kItems);
  // (c) semantics.
  const auto check = semantics::check_history(cluster.history());
  EXPECT_TRUE(check.ok()) << "seed " << GetParam() << ": "
                          << (check.violations.empty()
                                  ? ""
                                  : check.violations.front());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockingPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace paso
