// Differential oracle for the degenerate topology: a cluster configured
// with no topology (the classic single bus) and one configured with an
// explicit one-segment topology over the same cost model must be
// indistinguishable — identical model costs, identical per-tag traffic,
// identical per-machine work, identical history. This is the invariant that
// lets every pre-topology BENCH_baseline.json row keep reproducing exactly.
#include <gtest/gtest.h>

#include <string>

#include "paso/cluster.hpp"
#include "semantics/checker.hpp"

namespace paso {
namespace {

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 1},
  });
}

Tuple task(std::int64_t key) { return {Value{key}, Value{std::string{"v"}}}; }

/// A workload exercising inserts, remote reads, local reads, removals and a
/// crash/recover cycle (state transfer traffic included).
void run_workload(Cluster& cluster) {
  cluster.assign_basic_support();
  const ProcessId writer = cluster.process(MachineId{0});
  const ProcessId remote = cluster.process(MachineId{4});
  for (std::int64_t key = 0; key < 20; ++key) {
    ASSERT_TRUE(cluster.insert_sync(writer, task(key)));
  }
  for (std::int64_t key = 0; key < 20; ++key) {
    EXPECT_TRUE(cluster
                    .read_sync(remote, criterion(Exact{Value{key}},
                                                 TypedAny{FieldType::kText}))
                    .has_value());
  }
  EXPECT_TRUE(cluster
                  .read_del_sync(remote, criterion(Exact{Value{3ll}},
                                                   TypedAny{FieldType::kText}))
                  .has_value());
  cluster.crash(MachineId{1});
  cluster.settle_for(500);
  cluster.recover(MachineId{1});
  cluster.settle();
  for (std::int64_t key = 10; key < 15; ++key) {
    EXPECT_TRUE(cluster
                    .read_sync(remote, criterion(Exact{Value{key}},
                                                 TypedAny{FieldType::kText}))
                    .has_value());
  }
}

TEST(TopologyDiffTest, OneSegmentClusterReproducesTheClassicRunExactly) {
  ClusterConfig classic_cfg;
  classic_cfg.machines = 5;
  classic_cfg.lambda = 1;
  Cluster classic(task_schema(), classic_cfg);

  ClusterConfig topo_cfg;
  topo_cfg.machines = 5;
  topo_cfg.lambda = 1;
  topo_cfg.topology =
      net::Topology::even(1, 5, topo_cfg.cost_model, 0, 0);
  Cluster topo(task_schema(), topo_cfg);

  run_workload(classic);
  run_workload(topo);

  // Model costs: exact equality, not tolerance — the one-segment code path
  // must be the same arithmetic.
  EXPECT_DOUBLE_EQ(classic.ledger().total_msg_cost(),
                   topo.ledger().total_msg_cost());
  EXPECT_DOUBLE_EQ(classic.ledger().total_work(), topo.ledger().total_work());
  for (std::uint32_t m = 0; m < 5; ++m) {
    EXPECT_DOUBLE_EQ(classic.ledger().work_of(MachineId{m}),
                     topo.ledger().work_of(MachineId{m}))
        << "machine " << m;
  }

  // Per-tag traffic: same tags, same message counts, bytes and costs.
  const auto& classic_tags = classic.ledger().per_tag();
  const auto& topo_tags = topo.ledger().per_tag();
  ASSERT_EQ(classic_tags.size(), topo_tags.size());
  for (const auto& [tag, stats] : classic_tags) {
    const auto it = topo_tags.find(tag);
    ASSERT_NE(it, topo_tags.end()) << "missing tag " << tag;
    EXPECT_EQ(stats.messages, it->second.messages) << tag;
    EXPECT_EQ(stats.bytes, it->second.bytes) << tag;
    EXPECT_DOUBLE_EQ(stats.cost, it->second.cost) << tag;
  }

  // Same histories, both clean.
  EXPECT_EQ(classic.history().size(), topo.history().size());
  EXPECT_TRUE(semantics::check_history(classic.history(),
                                       classic.run_context())
                  .ok());
  EXPECT_TRUE(
      semantics::check_history(topo.history(), topo.run_context()).ok());

  // The one-segment network never crosses.
  EXPECT_EQ(topo.network().crossings(), 0u);
  EXPECT_EQ(classic.network().crossings(), 0u);
}

TEST(TopologyDiffTest, ObserveStaysBehaviorNeutralOnSegmentedTopology) {
  // The obs invariant extends to topologies: a segmented run with observe
  // on must cost exactly what the same run costs with observe off.
  auto run = [](bool observe) {
    ClusterConfig cfg;
    cfg.machines = 6;
    cfg.lambda = 1;
    cfg.topology = net::Topology::even(3, 6, cfg.cost_model, 60, 0.5);
    cfg.observe = observe;
    Cluster cluster(task_schema(), cfg);
    cluster.assign_basic_support();
    const ProcessId writer = cluster.process(MachineId{0});
    const ProcessId reader = cluster.process(MachineId{5});
    for (std::int64_t key = 0; key < 12; ++key) {
      EXPECT_TRUE(cluster.insert_sync(writer, task(key)));
      cluster.read_sync(reader, criterion(Exact{Value{key}},
                                          TypedAny{FieldType::kText}));
    }
    return std::pair<Cost, std::uint64_t>{cluster.ledger().total_msg_cost(),
                                          cluster.network().crossings()};
  };
  const auto with_obs = run(true);
  const auto without = run(false);
  EXPECT_DOUBLE_EQ(with_obs.first, without.first);
  EXPECT_EQ(with_obs.second, without.second);
}

}  // namespace
}  // namespace paso
