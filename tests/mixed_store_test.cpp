// End-to-end tests with heterogeneous per-class stores: a dictionary class
// on HashStore, a range class on OrderedStore, a scan class on LinearStore —
// Section 5's three data-structure families living side by side in one
// memory, with per-class model costs flowing into the work ledger.
#include <gtest/gtest.h>

#include "paso/cluster.hpp"
#include "storage/hash_store.hpp"
#include "storage/linear_store.hpp"
#include "storage/ordered_store.hpp"

namespace paso {
namespace {

Schema mixed_schema() {
  return Schema({
      ClassSpec{"dict", {FieldType::kInt, FieldType::kText}, 0, 1},
      ClassSpec{"series", {FieldType::kReal, FieldType::kInt}, 0, 1},
      ClassSpec{"doc", {FieldType::kText}, 0, 1},
  });
}

MemoryServer::ClassStoreFactory mixed_factory(const Schema& schema) {
  return [&schema](ClassId cls) -> std::unique_ptr<storage::ObjectStore> {
    const auto [spec_index, partition] = schema.locate(cls);
    (void)partition;
    switch (spec_index) {
      case 0:
        return std::make_unique<storage::HashStore>(0);
      case 1:
        return std::make_unique<storage::OrderedStore>(0);
      default:
        return std::make_unique<storage::LinearStore>();
    }
  };
}

class MixedStoreTest : public ::testing::Test {
 protected:
  MixedStoreTest()
      : schema_(mixed_schema()),
        cluster_(mixed_schema(), make_config(schema_)) {
    cluster_.assign_basic_support();
  }

  static ClusterConfig make_config(const Schema& schema) {
    ClusterConfig cfg;
    cfg.machines = 5;
    cfg.lambda = 1;
    // NOTE: the factory must reference the cluster's own schema; capturing
    // a reference to an equal schema with identical class ids is fine.
    cfg.store_factory = mixed_factory(schema);
    return cfg;
  }

  Schema schema_;  // declared before cluster_: the factory refers to it
  Cluster cluster_;
};

TEST_F(MixedStoreTest, EachClassGetsItsStoreKind) {
  const ProcessId p = cluster_.process(MachineId{0});
  ASSERT_TRUE(cluster_.insert_sync(
      p, {Value{std::int64_t{1}}, Value{std::string{"d"}}}));
  ASSERT_TRUE(cluster_.insert_sync(p, {Value{1.5}, Value{std::int64_t{10}}}));
  ASSERT_TRUE(cluster_.insert_sync(p, {Value{std::string{"body text"}}}));

  // All three classes answer their natural query shapes.
  EXPECT_TRUE(cluster_
                  .read_sync(p, criterion(Exact{Value{std::int64_t{1}}},
                                          TypedAny{FieldType::kText}))
                  .has_value());
  EXPECT_TRUE(cluster_
                  .read_sync(p, criterion(RealRange{1.0, 2.0},
                                          TypedAny{FieldType::kInt}))
                  .has_value());
  EXPECT_TRUE(
      cluster_.read_sync(p, criterion(TextPrefix{"body"})).has_value());
}

TEST_F(MixedStoreTest, ScanClassChargesLinearWork) {
  const ProcessId p = cluster_.process(MachineId{0});
  constexpr int kDocs = 40;
  for (int i = 0; i < kDocs; ++i) {
    ASSERT_TRUE(cluster_.insert_sync(
        p, {Value{std::string{"doc-" + std::to_string(i)}}}));
  }
  const ClassId doc_cls = *schema_.classify({Value{std::string{"x"}}});
  const MachineId member = cluster_.basic_support(doc_cls).front();
  const auto before = cluster_.ledger().snapshot();
  // Local read on the scan class: Q(l) = l work units.
  ASSERT_TRUE(cluster_
                  .read_sync(cluster_.process(member),
                             criterion(TextPrefix{"doc-39"}))
                  .has_value());
  const CostTriple cost = cluster_.ledger().since(before);
  EXPECT_DOUBLE_EQ(cost.work, kDocs);
}

TEST_F(MixedStoreTest, RangeClassChargesLogarithmicWork) {
  const ProcessId p = cluster_.process(MachineId{0});
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(cluster_.insert_sync(
        p, {Value{static_cast<double>(i)}, Value{std::int64_t{i}}}));
  }
  const ClassId cls = *schema_.classify({Value{1.0}, Value{std::int64_t{0}}});
  const MachineId member = cluster_.basic_support(cls).front();
  const auto before = cluster_.ledger().snapshot();
  ASSERT_TRUE(cluster_
                  .read_sync(cluster_.process(member),
                             criterion(RealRange{500.0, 501.0},
                                       TypedAny{FieldType::kInt}))
                  .has_value());
  const CostTriple cost = cluster_.ledger().since(before);
  // Q(l) = 1 + floor(log2(l+1)) with l = 1000 -> 10 work units.
  EXPECT_DOUBLE_EQ(cost.work, 10.0);
}

TEST_F(MixedStoreTest, StateTransferWorksPerStoreKind) {
  const ProcessId p = cluster_.process(MachineId{0});
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(cluster_.insert_sync(
        p, {Value{static_cast<double>(i)}, Value{std::int64_t{i}}}));
  }
  const ClassId cls = *schema_.classify({Value{1.0}, Value{std::int64_t{0}}});
  const auto support = cluster_.basic_support(cls);
  cluster_.crash(support[0]);
  cluster_.settle();
  cluster_.recover(support[0]);
  cluster_.settle();
  EXPECT_EQ(cluster_.server(support[0]).live_count(cls), 15u);
  // The recovered ordered store still serves range queries.
  EXPECT_TRUE(cluster_
                  .read_sync(cluster_.process(support[0]),
                             criterion(RealRange{7.0, 7.5},
                                       TypedAny{FieldType::kInt}))
                  .has_value());
}

}  // namespace
}  // namespace paso
