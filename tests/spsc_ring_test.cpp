// SpscRing: wrap-around arithmetic, full/empty boundaries, and cross-thread
// visibility of pushed payloads (the release/acquire contract the threaded
// transport's delivery path rests on).
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/spsc_ring.hpp"

namespace paso::net {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwoMinusSentinel) {
  EXPECT_EQ(SpscRing<int>(2).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 3u);
  EXPECT_EQ(SpscRing<int>(4).capacity(), 3u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 7u);
  EXPECT_EQ(SpscRing<int>(1024).capacity(), 1023u);
}

TEST(SpscRing, StartsEmpty) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(out, -1);
}

TEST(SpscRing, FillsToCapacityThenRejects) {
  SpscRing<int> ring(8);  // 7 usable slots
  for (int i = 0; i < 7; ++i) {
    EXPECT_TRUE(ring.try_push(std::move(i))) << "push " << i;
  }
  int extra = 99;
  EXPECT_FALSE(ring.try_push(std::move(extra)));
  EXPECT_EQ(ring.size(), 7u);
  // Popping one frees exactly one slot.
  int out = -1;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(std::move(extra)));
  EXPECT_FALSE(ring.try_push(std::move(extra)));
}

TEST(SpscRing, FifoAcrossManyWrapArounds) {
  SpscRing<std::uint64_t> ring(4);  // 3 usable slots, wraps every 4 pushes
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  // Interleave pushes and pops so head/tail lap the buffer many times and
  // the masked indices exercise every slot repeatedly.
  for (int round = 0; round < 1000; ++round) {
    while (ring.try_push(std::uint64_t{next_push})) ++next_push;
    std::uint64_t out = 0;
    while (ring.try_pop(out)) {
      EXPECT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_push, next_pop);
  EXPECT_GT(next_push, 2000u);  // actually wrapped a lot
}

TEST(SpscRing, PopClearsTheSlot) {
  // The ring must not keep moved-out payloads alive until overwrite: the
  // transport's deliveries capture protocol state that has to die promptly.
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  SpscRing<std::shared_ptr<int>> ring(4);
  ASSERT_TRUE(ring.try_push(std::move(token)));
  std::shared_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  out.reset();
  EXPECT_TRUE(watch.expired()) << "slot retained a copy after pop";
}

TEST(SpscRing, CrossThreadVisibilityUnderLoad) {
  // One producer, one consumer, small ring => constant wrap pressure. The
  // consumer asserts strict FIFO and payload integrity; any missing
  // release/acquire edge shows up as a torn or stale value (and as a TSan
  // report in the sanitized CI job).
  constexpr std::uint64_t kItems = 200000;
  SpscRing<std::uint64_t> ring(8);
  std::atomic<bool> failed{false};
  std::thread consumer([&] {
    std::uint64_t expect = 1;
    while (expect <= kItems) {
      std::uint64_t out = 0;
      if (!ring.try_pop(out)) {
        std::this_thread::yield();
        continue;
      }
      if (out != expect) {
        failed.store(true);
        return;
      }
      ++expect;
    }
  });
  for (std::uint64_t i = 1; i <= kItems; ++i) {
    while (!ring.try_push(std::uint64_t{i})) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_FALSE(failed.load());
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, CrossThreadMoveOnlyPayloads) {
  // Deliveries are std::function closures — move-only-ish payloads with
  // heap state. Run strings through the ring across threads to make sure
  // the slot write/clear protocol keeps ownership straight.
  constexpr int kItems = 20000;
  SpscRing<std::string> ring(16);
  std::atomic<int> bad{0};
  std::thread consumer([&] {
    int seen = 0;
    std::string out;
    while (seen < kItems) {
      if (!ring.try_pop(out)) {
        std::this_thread::yield();
        continue;
      }
      if (out != "payload-" + std::to_string(seen)) bad.fetch_add(1);
      ++seen;
    }
  });
  for (int i = 0; i < kItems; ++i) {
    std::string item = "payload-" + std::to_string(i);
    while (!ring.try_push(std::move(item))) {
      std::this_thread::yield();
      // item untouched on a failed push; retry with the same value.
    }
  }
  consumer.join();
  EXPECT_EQ(bad.load(), 0);
}

}  // namespace
}  // namespace paso::net
