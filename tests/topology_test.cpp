// Unit tests for the segmented bus topology: cost math, per-segment
// serialization, bridge crossings/partitions, placement-aware write-group
// selection, the segment-aware LRF selector and sticky read rotation.
#include <gtest/gtest.h>

#include <vector>

#include "adaptive/support_selection.hpp"
#include "net/bus_network.hpp"
#include "paso/cluster.hpp"
#include "paso/placement.hpp"
#include "sim/simulator.hpp"

namespace paso {
namespace {

using net::BusNetwork;
using net::Topology;

// ---------------------------------------------------------------------------
// Topology math

TEST(TopologyTest, EvenSplitsContiguously) {
  const Topology t = Topology::even(3, 6, CostModel{}, 50, 0.5);
  EXPECT_FALSE(t.degenerate());
  EXPECT_EQ(t.segment_count(), 3u);
  EXPECT_EQ(t.bridge_count(), 2u);
  const std::vector<std::uint32_t> expected = {0, 0, 1, 1, 2, 2};
  EXPECT_EQ(t.machine_segments(), expected);
  EXPECT_EQ(t.hops(MachineId{0}, MachineId{1}), 0u);
  EXPECT_EQ(t.hops(MachineId{0}, MachineId{3}), 1u);
  EXPECT_EQ(t.hops(MachineId{5}, MachineId{0}), 2u);
}

TEST(TopologyTest, MessageCostAddsEndSegmentsAndBridgeHops) {
  const Topology t = Topology::even(2, 4, CostModel{10, 1}, 50, 0.5);
  // Intra-segment: the segment's own alpha + beta * bytes.
  EXPECT_DOUBLE_EQ(t.message_cost(MachineId{0}, MachineId{1}, 8), 18.0);
  // Self-sends stay free.
  EXPECT_DOUBLE_EQ(t.message_cost(MachineId{2}, MachineId{2}, 8), 0.0);
  // One crossing: source segment + one bridge hop + destination segment.
  EXPECT_DOUBLE_EQ(t.message_cost(MachineId{0}, MachineId{2}, 8),
                   18.0 + (50 + 0.5 * 8) + 18.0);
}

TEST(TopologyTest, DegenerateResolvesToOneSegmentOverTheDefaultModel) {
  const Topology resolved = Topology{}.resolve(4, CostModel{7, 2});
  EXPECT_FALSE(resolved.degenerate());
  EXPECT_EQ(resolved.segment_count(), 1u);
  EXPECT_EQ(resolved.bridge_count(), 0u);
  EXPECT_DOUBLE_EQ(resolved.segment_model(0).alpha, 7.0);
  EXPECT_DOUBLE_EQ(resolved.message_cost(MachineId{0}, MachineId{3}, 4),
                   7.0 + 2.0 * 4);
}

// ---------------------------------------------------------------------------
// Segmented bus behavior

TEST(SegmentedBusTest, OneSegmentTopologyMatchesTheClassicBus) {
  // The explicit one-segment topology must be bit-for-bit the classic
  // single-bus network: same costs, same delivery times.
  sim::Simulator sim_a;
  BusNetwork classic(sim_a, CostModel{10, 1}, 4);
  sim::Simulator sim_b;
  BusNetwork one_seg(sim_b, CostModel{10, 1}, 4,
                     Topology::even(1, 4, CostModel{10, 1}, 0, 0));

  std::vector<sim::SimTime> at_a, at_b;
  for (int i = 0; i < 3; ++i) {
    classic.send(MachineId{0}, MachineId{1}, "t", 32,
                 [&] { at_a.push_back(sim_a.now()); });
    one_seg.send(MachineId{0}, MachineId{1}, "t", 32,
                 [&] { at_b.push_back(sim_b.now()); });
  }
  sim_a.run();
  sim_b.run();
  EXPECT_EQ(at_a, at_b);
  EXPECT_DOUBLE_EQ(classic.ledger().total_msg_cost(),
                   one_seg.ledger().total_msg_cost());
  EXPECT_DOUBLE_EQ(classic.bus_free_at(), one_seg.bus_free_at());
}

TEST(SegmentedBusTest, SegmentsSerializeIndependently) {
  sim::Simulator sim;
  BusNetwork net(sim, CostModel{10, 1}, 4,
                 Topology::even(2, 4, CostModel{10, 1}, 50, 0));
  // Two intra-segment sends on *different* segments, issued together: each
  // occupies only its own bus, so both deliver at t = 10 + 32 = 42. On the
  // classic shared bus the second would wait for the first.
  sim::SimTime first = -1, second = -1;
  net.send(MachineId{0}, MachineId{1}, "a", 32, [&] { first = sim.now(); });
  net.send(MachineId{2}, MachineId{3}, "b", 32, [&] { second = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(first, 42.0);
  EXPECT_DOUBLE_EQ(second, 42.0);
  EXPECT_EQ(net.crossings(), 0u);
  EXPECT_EQ(net.segment_stats(0).messages, 1u);
  EXPECT_EQ(net.segment_stats(1).messages, 1u);
}

TEST(SegmentedBusTest, CrossSegmentChargesBothBusesAndTheBridge) {
  sim::Simulator sim;
  BusNetwork net(sim, CostModel{10, 1}, 4,
                 Topology::even(2, 4, CostModel{10, 1}, 50, 0.5));
  sim::SimTime delivered = -1;
  net.send(MachineId{0}, MachineId{2}, "x", 8, [&] { delivered = sim.now(); });
  sim.run();
  // Source bus [0, 18), bridge 50 + 0.5*8 = 54, destination bus [72, 90).
  EXPECT_DOUBLE_EQ(delivered, 90.0);
  EXPECT_DOUBLE_EQ(net.ledger().total_msg_cost(), 90.0);
  EXPECT_EQ(net.crossings(), 1u);
  EXPECT_DOUBLE_EQ(net.segment_free_at(0), 18.0);
  EXPECT_DOUBLE_EQ(net.segment_free_at(1), 90.0);

  // The destination-bus reservation is real: a segment-1 local send issued
  // now must wait for the crossing's tail to clear that bus.
  sim::SimTime local = -1;
  net.send(MachineId{2}, MachineId{3}, "y", 8, [&] { local = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(local, 90.0 + 18.0);
}

TEST(SegmentedBusTest, BridgePartitionDropsCrossingsButChargesThem) {
  sim::Simulator sim;
  BusNetwork net(sim, CostModel{10, 1}, 4,
                 Topology::even(2, 4, CostModel{10, 1}, 50, 0));
  net.set_bridge_partition(0, 100);

  bool crossed = false;
  bool local = false;
  net.send(MachineId{0}, MachineId{2}, "x", 8, [&] { crossed = true; });
  net.send(MachineId{0}, MachineId{1}, "y", 8, [&] { local = true; });
  sim.run();
  // The crossing started inside the window: dropped at delivery, but the
  // bandwidth it consumed is charged (lost messages are not free).
  EXPECT_FALSE(crossed);
  EXPECT_TRUE(local);
  EXPECT_EQ(net.partition_dropped(), 1u);
  EXPECT_GT(net.ledger().total_msg_cost(), 0.0);

  // After the window the bridge heals.
  sim.schedule_at(200, [] {});
  sim.run();
  net.send(MachineId{0}, MachineId{2}, "x", 8, [&] { crossed = true; });
  sim.run();
  EXPECT_TRUE(crossed);
}

// ---------------------------------------------------------------------------
// Placement

TEST(PlacementTest, CoLocatesWithTheReaderSegment) {
  const Topology t = Topology::even(2, 6, CostModel{}, 50, 0.5).resolve(
      6, CostModel{});
  PlacementRequest req;
  req.machines = 6;
  req.lambda = 1;
  req.read_weight = {0, 0, 0, 0, 0, 1};  // all reads from machine 5 (seg 1)
  const auto group = choose_write_group(t, req);
  ASSERT_EQ(group.size(), 2u);
  // First pick: a segment-1 machine (score 0, lowest id 3). The spread cap
  // then forces the second replica onto segment 0 (lowest id 0).
  EXPECT_EQ(group[0].value, 3u);
  EXPECT_EQ(group[1].value, 0u);
}

TEST(PlacementTest, SpreadCapKeepsAReplicaOffTheHotSegment) {
  const Topology t = Topology::even(2, 6, CostModel{}, 50, 0.5).resolve(
      6, CostModel{});
  PlacementRequest req;
  req.machines = 6;
  req.lambda = 2;  // group of 3, cap 2 per segment
  req.read_weight = {0, 0, 0, 1, 1, 1};
  const auto group = choose_write_group(t, req);
  ASSERT_EQ(group.size(), 3u);
  std::size_t on_hot = 0;
  for (const MachineId m : group) {
    if (t.segment_of(m) == 1) ++on_hot;
  }
  EXPECT_EQ(on_hot, 2u);  // capped at size - 1
}

TEST(PlacementTest, UniformWeightsFallBackToLoadThenId) {
  const Topology t = Topology::even(1, 4, CostModel{}, 0, 0).resolve(
      4, CostModel{});
  PlacementRequest req;
  req.machines = 4;
  req.lambda = 1;
  req.machine_load = {2, 0, 1, 0};
  const auto group = choose_write_group(t, req);
  ASSERT_EQ(group.size(), 2u);
  EXPECT_EQ(group[0].value, 1u);  // least loaded, lowest id
  EXPECT_EQ(group[1].value, 3u);
}

// ---------------------------------------------------------------------------
// Segment-aware LRF

TEST(SegmentAwareLrfTest, DegenerateTopologyMatchesPlainLrf) {
  const std::size_t machines = 6, lambda = 1;
  adaptive::LrfSelector lrf(machines, lambda);
  adaptive::SegmentAwareLrfSelector seg(
      machines, lambda, std::vector<std::uint32_t>(machines, 0), 0);
  Rng rng(7);
  const auto trace = adaptive::uniform_failure_trace(machines, 200, rng);
  for (const std::size_t f : trace) {
    EXPECT_EQ(lrf.on_failure(f), seg.on_failure(f));
    EXPECT_EQ(lrf.write_group(), seg.write_group());
  }
  EXPECT_EQ(lrf.copies(), seg.copies());
}

TEST(SegmentAwareLrfTest, ReplacementPrefersTheReaderSegment) {
  // Machines 0-2 on segment 0, 3-5 on segment 1; readers on segment 1.
  adaptive::SegmentAwareLrfSelector seg(6, 1, {0, 0, 0, 1, 1, 1}, 1);
  // wg starts {0, 1}. Failing 0 must pull in a segment-1 machine (3 by id
  // tie-break) even though machine 2 is an equally never-failed candidate.
  EXPECT_TRUE(seg.on_failure(0));
  const auto group = seg.write_group();
  EXPECT_EQ(group, (std::vector<std::size_t>{1, 3}));
}

// ---------------------------------------------------------------------------
// Cluster integration: placement-aware support + sticky rotation

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 1},
  });
}

Tuple task(std::int64_t key) { return {Value{key}, Value{std::string{"v"}}}; }

TEST(PlacementClusterTest, AwareSupportCutsCrossingsAndCostOnHotSegment) {
  // Reads must still consult lambda+1 = |wg| members for fault tolerance,
  // so the cross-bridge replica is queried either way. The aware win is
  // that the co-located replica exists at all: the payload-bearing
  // response is served bus-locally (nearest responder) and only the
  // query+ack legs to the far replica cross — against basic placement,
  // where every message of every read crosses.
  auto hot_spot = [](bool aware) {
    ClusterConfig cfg;
    cfg.machines = 6;
    cfg.lambda = 1;
    cfg.topology = Topology::even(2, 6, CostModel{}, 60, 0.5);
    Cluster cluster(task_schema(), cfg);
    if (aware) {
      std::vector<double> weights(6, 0.0);
      weights[5] = 1.0;
      cluster.assign_placement_aware_support({weights});
    } else {
      cluster.assign_basic_support();
    }
    const auto members = cluster.groups().view_of("wg/task/0").members;
    EXPECT_EQ(members.size(), 2u);
    std::size_t on_reader_segment = 0;
    for (const MachineId m : members) {
      if (cluster.network().topology().segment_of(m) == 1) {
        ++on_reader_segment;
      }
    }
    // Aware: co-located with the reader but one replica kept across the
    // bridge (spread cap). Basic: the whole group sits on segment 0.
    EXPECT_EQ(on_reader_segment, aware ? 1u : 0u);

    const ProcessId writer = cluster.process(MachineId{4});
    EXPECT_TRUE(cluster.insert_sync(writer, task(1)));
    const std::uint64_t crossings_before = cluster.network().crossings();
    const Cost cost_before = cluster.ledger().total_msg_cost();
    const ProcessId reader = cluster.process(MachineId{5});
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(
          cluster
              .read_sync(reader, criterion(Exact{Value{1ll}},
                                           TypedAny{FieldType::kText}))
              .has_value());
    }
    return std::pair<std::uint64_t, Cost>{
        cluster.network().crossings() - crossings_before,
        cluster.ledger().total_msg_cost() - cost_before};
  };
  const auto [aware_crossings, aware_cost] = hot_spot(true);
  const auto [basic_crossings, basic_cost] = hot_spot(false);
  EXPECT_LT(aware_crossings, basic_crossings);
  EXPECT_LT(aware_cost, basic_cost);
}

TEST(PlacementClusterTest, RebalanceMigratesTowardObservedReaders) {
  ClusterConfig cfg;
  cfg.machines = 6;
  cfg.lambda = 1;
  cfg.topology = Topology::even(2, 6, CostModel{}, 60, 0.5);
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();  // wg = {0, 1}, both on segment 0
  const ClassId cls{0};

  const ProcessId writer = cluster.process(MachineId{0});
  ASSERT_TRUE(cluster.insert_sync(writer, task(1)));
  const ProcessId reader = cluster.process(MachineId{5});
  for (int i = 0; i < 20; ++i) {
    cluster.read_sync(reader, criterion(Exact{Value{1ll}},
                                        TypedAny{FieldType::kText}));
  }
  const auto weights = cluster.observed_read_weights(cls);
  ASSERT_EQ(weights.size(), 6u);
  EXPECT_GT(weights[5], 0.0);

  cluster.rebalance_placement(cls);
  cluster.settle();
  const auto members = cluster.groups().view_of("wg/task/0").members;
  ASSERT_EQ(members.size(), 2u);
  std::size_t on_reader_segment = 0;
  for (const MachineId m : members) {
    if (cluster.network().topology().segment_of(m) == 1) ++on_reader_segment;
  }
  EXPECT_EQ(on_reader_segment, 1u);
  // The migrated group still answers reads.
  EXPECT_TRUE(cluster
                  .read_sync(reader, criterion(Exact{Value{1ll}},
                                               TypedAny{FieldType::kText}))
                  .has_value());
}

TEST(StickyRotationTest, SticksToOneWindowUnderHeavyUniformLoad) {
  // Against a heavy, evenly spread background load the probe can never
  // undercut the anchor by the 5% margin before the measured reader's own
  // contribution runs out, so every sticky read lands on the same
  // lambda+1 window — unlike blind rotation, which touches every member.
  // (With *no* background load the anchor's own reads make any idle probe
  // look better, and sticky correctly degrades to two-choice spreading.)
  ClusterConfig cfg;
  cfg.machines = 8;
  cfg.lambda = 1;
  cfg.runtime.rotate_read_groups = true;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  for (std::uint32_t m = 0; m < 6; ++m) {
    cluster.runtime(MachineId{m}).request_join(ClassId{0});
  }
  cluster.settle();
  ASSERT_TRUE(cluster.insert_sync(cluster.process(MachineId{0}), task(1)));
  cluster.ledger().reset();

  // 840 blind-rotation reads from machine 6: 140 per window start, every
  // member covered by two windows — a perfectly uniform load of 280 query
  // services each.
  const ProcessId background = cluster.process(MachineId{6});
  for (int i = 0; i < 840; ++i) {
    cluster.read_sync(background, criterion(Exact{Value{1ll}},
                                            TypedAny{FieldType::kText}));
  }
  std::vector<Cost> base(6);
  for (std::uint32_t m = 0; m < 6; ++m) {
    base[m] = cluster.ledger().work_of(MachineId{m});
  }
  EXPECT_DOUBLE_EQ(base[0], base[5]) << "pre-load must be uniform";

  // 12 sticky reads add at most 12 services to the anchor window — under
  // the ~14.7 (280/19) the 5% margin needs before a probe wins.
  cluster.runtime(MachineId{7}).mutable_config().sticky_rotation = true;
  const ProcessId reader = cluster.process(MachineId{7});
  for (int i = 0; i < 12; ++i) {
    cluster.read_sync(reader, criterion(Exact{Value{1ll}},
                                        TypedAny{FieldType::kText}));
  }
  std::size_t touched = 0;
  for (std::uint32_t m = 0; m < 6; ++m) {
    if (cluster.ledger().work_of(MachineId{m}) > base[m]) ++touched;
  }
  // Exactly the anchor window: lambda+1 members.
  EXPECT_EQ(touched, 2u);
}

TEST(StickyRotationTest, CutsMaxLoadUnderSkewVersusBlindRotation) {
  auto max_member_load = [](bool sticky) {
    ClusterConfig cfg;
    cfg.machines = 8;
    cfg.lambda = 1;
    cfg.runtime.rotate_read_groups = true;
    Cluster cluster(task_schema(), cfg);
    cluster.assign_basic_support();
    for (std::uint32_t m = 0; m < 6; ++m) {
      cluster.runtime(MachineId{m}).request_join(ClassId{0});
    }
    cluster.settle();
    // Background reader 6 pins the static basic pair; measured reader 7
    // rotates blindly or stickily.
    cluster.runtime(MachineId{6}).mutable_config().rotate_read_groups = false;
    cluster.runtime(MachineId{7}).mutable_config().sticky_rotation = sticky;
    EXPECT_TRUE(cluster.insert_sync(cluster.process(MachineId{0}), task(1)));
    cluster.ledger().reset();

    const SearchCriterion sc =
        criterion(Exact{Value{1ll}}, TypedAny{FieldType::kText});
    for (int i = 0; i < 80; ++i) {
      cluster.read_sync(cluster.process(MachineId{6}), sc);
      cluster.read_sync(cluster.process(MachineId{6}), sc);
      cluster.read_sync(cluster.process(MachineId{7}), sc);
    }
    Cost max_load = 0;
    for (std::uint32_t m = 0; m < 6; ++m) {
      max_load = std::max(max_load, cluster.ledger().work_of(MachineId{m}));
    }
    return max_load;
  };
  EXPECT_LT(max_member_load(true), max_member_load(false));
}

}  // namespace
}  // namespace paso
