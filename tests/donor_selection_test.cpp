// Donor selection by durable position (GroupService::dispatch_join).
//
// The join path used to pick the view leader as the state-transfer donor
// unconditionally; a leader that had checkpoint-compacted its log past the
// joiner's durable position then refused the delta and forced a full-blob
// fallback even when a sibling replica still held the suffix. The service
// now asks every up member for its delta_floor (compaction horizon) and
// donates from the member whose log reaches furthest back — leader wins
// ties, so persistence-off runs and equal-floor cases keep the classic
// donor. Also covers the disk-space accounting these scenarios exercise.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "paso/cluster.hpp"
#include "persist/manager.hpp"
#include "semantics/checker.hpp"

namespace paso {
namespace {

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 1},
  });
}

Tuple task(std::int64_t key) { return {Value{key}, Value{std::string{"v"}}}; }

net::TrafficStats tag_stats(Cluster& cluster, const std::string& tag) {
  const auto& per_tag = cluster.ledger().per_tag();
  const auto it = per_tag.find(tag);
  return it == per_tag.end() ? net::TrafficStats{} : it->second;
}

struct Fixture {
  ClusterConfig cfg;
  Fixture() {
    cfg.machines = 4;
    cfg.lambda = 2;  // wg(task) = {0, 1, 2}; driver on 3
    cfg.persistence.enabled = true;
  }
};

TEST(DonorSelectionTest, DeepestLogDonatesTheDeltaWhenTheLeaderCompacted) {
  Fixture f;
  Cluster cluster(task_schema(), f.cfg);
  cluster.assign_basic_support();
  const ClassId cls{0};
  const MachineId leader{0};
  const MachineId sibling{1};
  const MachineId victim{2};
  const ProcessId driver = cluster.process(MachineId{3});

  for (std::int64_t key = 0; key < 30; ++key) {
    ASSERT_TRUE(cluster.insert_sync(driver, task(key)));
  }
  cluster.crash(victim);
  cluster.settle_for(1000);  // failure detection expels the victim
  for (std::int64_t key = 30; key < 50; ++key) {
    ASSERT_TRUE(cluster.insert_sync(driver, task(key)));
  }
  // The leader compacts past the joiner's position; the sibling's log still
  // reaches back to the start.
  ASSERT_GT(cluster.server(leader).checkpoint_class(cls), 0.0);
  ASSERT_GT(cluster.persistence(leader).checkpoint_lsn(cls), 30u);
  ASSERT_LE(cluster.persistence(sibling).checkpoint_lsn(cls), 30u);

  const auto full_before = tag_stats(cluster, "state-xfer");
  const auto delta_before = tag_stats(cluster, "state-xfer-delta");
  cluster.recover(victim);
  cluster.settle();

  // The delta came from the sibling — the leader was never asked.
  EXPECT_EQ(cluster.persistence(sibling).stats().delta_captures, 1u);
  EXPECT_EQ(cluster.persistence(leader).stats().delta_captures, 0u);
  EXPECT_EQ(cluster.persistence(leader).stats().delta_refusals, 0u);
  EXPECT_EQ(tag_stats(cluster, "state-xfer-delta").messages,
            delta_before.messages + 1);
  EXPECT_EQ(tag_stats(cluster, "state-xfer").messages, full_before.messages);

  // The rejoined replica matches a survivor.
  for (std::int64_t key = 0; key < 50; ++key) {
    if (key == 3) continue;
    const SearchCriterion sc = criterion(Exact{Value{key}}, AnyField{});
    const auto from_victim = cluster.server(victim).local_find(cls, sc);
    const auto from_sibling = cluster.server(sibling).local_find(cls, sc);
    ASSERT_EQ(from_victim.has_value(), from_sibling.has_value())
        << "key " << key;
  }
  EXPECT_TRUE(
      semantics::check_history(cluster.history(), cluster.run_context()).ok());
}

TEST(DonorSelectionTest, AllCompactedFallsBackToFullTransfer) {
  Fixture f;
  Cluster cluster(task_schema(), f.cfg);
  cluster.assign_basic_support();
  const ClassId cls{0};
  const MachineId victim{2};
  const ProcessId driver = cluster.process(MachineId{3});

  for (std::int64_t key = 0; key < 30; ++key) {
    ASSERT_TRUE(cluster.insert_sync(driver, task(key)));
  }
  cluster.crash(victim);
  cluster.settle_for(1000);
  for (std::int64_t key = 30; key < 50; ++key) {
    ASSERT_TRUE(cluster.insert_sync(driver, task(key)));
  }
  // Every surviving member compacts past the joiner: no qualifying donor
  // remains, so the join degrades to the classic leader full blob.
  ASSERT_GT(cluster.server(MachineId{0}).checkpoint_class(cls), 0.0);
  ASSERT_GT(cluster.server(MachineId{1}).checkpoint_class(cls), 0.0);

  const auto full_before = tag_stats(cluster, "state-xfer");
  cluster.recover(victim);
  cluster.settle();

  EXPECT_EQ(tag_stats(cluster, "state-xfer").messages,
            full_before.messages + 1);
  EXPECT_EQ(cluster.persistence(MachineId{0}).stats().delta_captures, 0u);
  EXPECT_EQ(cluster.persistence(MachineId{1}).stats().delta_captures, 0u);
  ASSERT_TRUE(cluster.server(victim).supports(cls));
  EXPECT_EQ(cluster.server(victim).live_count(cls),
            cluster.server(MachineId{1}).live_count(cls));
  EXPECT_TRUE(
      semantics::check_history(cluster.history(), cluster.run_context()).ok());
}

TEST(DiskAccountingTest, LedgerAndGaugeTrackDurableBytes) {
  Fixture f;
  f.cfg.observe = true;
  Cluster cluster(task_schema(), f.cfg);
  cluster.assign_basic_support();
  const ProcessId driver = cluster.process(MachineId{3});
  for (std::int64_t key = 0; key < 20; ++key) {
    ASSERT_TRUE(cluster.insert_sync(driver, task(key)));
  }

  // Every write-group member logged every op: the ledger rows agree with
  // the managers' own stats, and the gauge mirrors bytes actually on disk.
  EXPECT_GT(cluster.ledger().total_disk_bytes_written(), 0u);
  for (std::uint32_t m = 0; m < 3; ++m) {
    const MachineId machine{m};
    const auto& stats = cluster.persistence(machine).stats();
    EXPECT_EQ(cluster.ledger().disk_bytes_written_of(machine),
              stats.append_bytes + stats.checkpoint_bytes)
        << "machine " << m;
    EXPECT_DOUBLE_EQ(
        cluster.metrics().gauge("persist.bytes_on_disk", machine).value,
        static_cast<double>(cluster.persistence(machine).bytes_on_disk()))
        << "machine " << m;
  }
  // The driver holds no classes: nothing written, nothing on disk.
  EXPECT_EQ(cluster.ledger().disk_bytes_written_of(MachineId{3}), 0u);

  // Checkpointing compacts the log behind the image: written bytes grow,
  // but the on-disk footprint becomes exactly the checkpoint (the log is
  // gone) — the gauge must follow the disk, not the write counter.
  const MachineId leader{0};
  const std::uint64_t written_before =
      cluster.ledger().disk_bytes_written_of(leader);
  ASSERT_GT(cluster.persistence(leader).log_bytes(ClassId{0}), 0u);
  ASSERT_GT(cluster.server(leader).checkpoint_class(ClassId{0}), 0.0);
  EXPECT_GT(cluster.ledger().disk_bytes_written_of(leader), written_before);
  EXPECT_EQ(cluster.persistence(leader).log_bytes(ClassId{0}), 0u);
  EXPECT_EQ(cluster.persistence(leader).bytes_on_disk(),
            cluster.persistence(leader).checkpoint_bytes_on_disk(ClassId{0}));
  EXPECT_DOUBLE_EQ(
      cluster.metrics().gauge("persist.bytes_on_disk", leader).value,
      static_cast<double>(cluster.persistence(leader).bytes_on_disk()));
}

}  // namespace
}  // namespace paso
