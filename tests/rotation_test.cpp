// Tests for read-group rotation (the load-balancing option) and for the
// adaptive policies across many classes with skewed popularity.
#include <gtest/gtest.h>

#include "adaptive/basic_policy.hpp"
#include "common/rng.hpp"
#include "paso/cluster.hpp"
#include "semantics/checker.hpp"

namespace paso {
namespace {

Schema kv_schema(std::size_t partitions = 1) {
  return Schema({ClassSpec{"kv", {FieldType::kInt, FieldType::kText},
                           0, partitions}});
}

SearchCriterion by_key(std::int64_t key) {
  return criterion(Exact{Value{key}}, TypedAny{FieldType::kText});
}

TEST(RotationTest, SpreadsQueryWorkAcrossTheWriteGroup) {
  ClusterConfig cfg;
  cfg.machines = 8;
  cfg.lambda = 1;
  cfg.runtime.rotate_read_groups = true;
  Cluster cluster(kv_schema(), cfg);
  cluster.assign_basic_support();
  // Grow the write group to 4 members.
  for (std::uint32_t m = 0; m < 4; ++m) {
    cluster.runtime(MachineId{m}).request_join(ClassId{0});
  }
  cluster.settle();
  const ProcessId writer = cluster.process(MachineId{0});
  ASSERT_TRUE(cluster.insert_sync(
      writer, {Value{std::int64_t{1}}, Value{std::string{"x"}}}));
  cluster.ledger().reset();

  const ProcessId reader = cluster.process(MachineId{7});
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(cluster.read_sync(reader, by_key(1)).has_value());
  }
  // Every write-group member served some queries.
  for (std::uint32_t m = 0; m < 4; ++m) {
    EXPECT_GT(cluster.ledger().work_of(MachineId{m}), 0.0) << "M" << m;
  }
  // And the total is still 2 servers per read (rg = lambda + 1).
  EXPECT_DOUBLE_EQ(cluster.ledger().total_work(), 80.0);
}

TEST(RotationTest, WithoutRotationOnlyTheBasicSupportServes) {
  ClusterConfig cfg;
  cfg.machines = 8;
  cfg.lambda = 1;
  cfg.runtime.rotate_read_groups = false;
  Cluster cluster(kv_schema(), cfg);
  cluster.assign_basic_support();
  for (std::uint32_t m = 0; m < 4; ++m) {
    cluster.runtime(MachineId{m}).request_join(ClassId{0});
  }
  cluster.settle();
  const auto support = cluster.basic_support(ClassId{0});
  const ProcessId writer = cluster.process(MachineId{0});
  ASSERT_TRUE(cluster.insert_sync(
      writer, {Value{std::int64_t{1}}, Value{std::string{"x"}}}));
  cluster.ledger().reset();
  const ProcessId reader = cluster.process(MachineId{7});
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(cluster.read_sync(reader, by_key(1)).has_value());
  }
  Cost support_work = 0;
  for (const MachineId m : support) {
    support_work += cluster.ledger().work_of(m);
  }
  EXPECT_DOUBLE_EQ(support_work, cluster.ledger().total_work());
}

TEST(MultiClassAdaptiveTest, PoliciesAdaptIndependentlyPerClass) {
  // 8 hash-partitioned classes with Zipf-skewed key popularity: the reader
  // machine should join only the write groups of the classes its hot keys
  // live in, not all of them.
  ClusterConfig cfg;
  cfg.machines = 8;
  cfg.lambda = 1;
  Cluster cluster(kv_schema(8), cfg);
  cluster.assign_basic_support();
  adaptive::install_basic_policies(cluster,
                                   adaptive::BasicPolicyOptions{8, 1, false});

  const ProcessId writer = cluster.process(MachineId{0});
  for (std::int64_t k = 0; k < 32; ++k) {
    ASSERT_TRUE(cluster.insert_sync(
        writer, {Value{k}, Value{std::string{"x"}}}));
  }

  // Reader hammers two hot keys only.
  const MachineId reader_machine{7};
  const ProcessId reader = cluster.process(reader_machine);
  const std::int64_t hot_a = 3;
  const std::int64_t hot_b = 17;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.read_sync(reader, by_key(hot_a)).has_value());
    ASSERT_TRUE(cluster.read_sync(reader, by_key(hot_b)).has_value());
  }
  cluster.settle();

  const auto cls_a = *cluster.schema().classify(
      {Value{hot_a}, Value{std::string{"x"}}});
  const auto cls_b = *cluster.schema().classify(
      {Value{hot_b}, Value{std::string{"x"}}});
  EXPECT_TRUE(cluster.runtime(reader_machine).is_member(cls_a));
  EXPECT_TRUE(cluster.runtime(reader_machine).is_member(cls_b));
  // Cold classes stay unjoined — not counting classes where the reader
  // machine is basic support (it is a permanent member of those by
  // assignment, regardless of traffic).
  std::size_t adaptive_joins = 0;
  for (std::uint32_t c = 0; c < cluster.schema().class_count(); ++c) {
    const ClassId cls{c};
    if (!cluster.runtime(reader_machine).is_member(cls)) continue;
    const auto support = cluster.basic_support(cls);
    if (std::find(support.begin(), support.end(), reader_machine) !=
        support.end()) {
      continue;
    }
    ++adaptive_joins;
  }
  EXPECT_LE(adaptive_joins, 2u);

  const auto check = semantics::check_history(cluster.history());
  EXPECT_TRUE(check.ok()) << check.violations.front();
}

}  // namespace
}  // namespace paso
