// Tests for the deterministic RNG: reproducibility, range contracts, and
// rough distribution sanity for the workload-shaping helpers.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"

namespace paso {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(10, 20);
    ASSERT_GE(v, 10u);
    ASSERT_LE(v, 20u);
  }
}

TEST(RngTest, UniformSingletonRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(RngTest, UniformRejectsEmptyRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(6, 5), InvariantViolation);
}

TEST(RngTest, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  double min = 1;
  double max = -1;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    min = std::min(min, u);
    max = std::max(max, u);
  }
  EXPECT_LT(min, 0.01);
  EXPECT_GT(max, 0.99);
}

TEST(RngTest, ChanceMatchesProbabilityRoughly) {
  Rng rng(13);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(RngTest, IndexCoversSupport) {
  Rng rng(17);
  std::map<std::size_t, int> seen;
  for (int i = 0; i < 5000; ++i) ++seen[rng.index(7)];
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_THROW(rng.index(0), InvariantViolation);
}

TEST(RngTest, PickReturnsElements) {
  Rng rng(19);
  const std::vector<int> items{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int v = rng.pick(items);
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

TEST(RngTest, ZipfIsSkewedtowardLowRanks) {
  Rng rng(23);
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 50000; ++i) {
    const std::size_t r = rng.zipf(20, 1.1);
    ASSERT_LT(r, 20u);
    ++counts[r];
  }
  // Rank 0 must dominate the tail decisively.
  EXPECT_GT(counts[0], counts[10] * 3);
  EXPECT_GT(counts[0], counts[19] * 5);
}

TEST(RngTest, ZipfSingleton) {
  Rng rng(29);
  EXPECT_EQ(rng.zipf(1, 1.0), 0u);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BurstRespectsCap) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LE(rng.burst(0.9, 5), 5u);
    ASSERT_GE(rng.burst(0.9, 5), 1u);
  }
}

}  // namespace
}  // namespace paso
