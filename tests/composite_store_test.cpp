// Tests for the CompositeStore: index twin consistency, query routing, and
// end-to-end use as a class store.
#include <gtest/gtest.h>

#include "paso/cluster.hpp"
#include "storage/composite_store.hpp"

namespace paso::storage {
namespace {

PasoObject make_object(std::uint64_t seq, std::int64_t key) {
  PasoObject o;
  o.id = ObjectId{ProcessId{MachineId{0}, 0}, seq};
  o.fields = {Value{key}, Value{std::string{"v"}}};
  return o;
}

TEST(CompositeStoreTest, ServesExactRangeAndScanQueries) {
  CompositeStore store(0);
  for (std::int64_t k = 0; k < 20; ++k) {
    store.store(make_object(static_cast<std::uint64_t>(k), k * 10), k);
  }
  EXPECT_TRUE(
      store.find(criterion(Exact{Value{std::int64_t{50}}}, AnyField{}))
          .has_value());
  EXPECT_TRUE(
      store.find(criterion(IntRange{44, 52}, AnyField{})).has_value());
  EXPECT_TRUE(store.find(criterion(TypedAny{FieldType::kInt},
                                   TextPrefix{"v"}))
                  .has_value());
  EXPECT_FALSE(
      store.find(criterion(Exact{Value{std::int64_t{55}}}, AnyField{}))
          .has_value());
}

TEST(CompositeStoreTest, QueryRoutingPicksTheCheapIndex) {
  CompositeStore store(0);
  for (std::int64_t k = 0; k < 1000; ++k) {
    store.store(make_object(static_cast<std::uint64_t>(k), k), k);
  }
  // Exact: hash cost 1. Range: ordered cost log.
  EXPECT_DOUBLE_EQ(
      store.query_cost_for(criterion(Exact{Value{std::int64_t{5}}},
                                     AnyField{})),
      1.0);
  EXPECT_GE(store.query_cost_for(criterion(IntRange{1, 5}, AnyField{})),
            9.0);
  // Updates pay both indexes.
  EXPECT_DOUBLE_EQ(store.insert_cost(), 2.0);
}

TEST(CompositeStoreTest, RemoveKeepsIndexesAligned) {
  CompositeStore store(0);
  store.store(make_object(1, 5), 0);
  store.store(make_object(2, 5), 1);
  const auto removed =
      store.remove(criterion(IntRange{0, 10}, AnyField{}));
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->id.sequence, 1u);  // oldest
  // The other index must agree the object is gone.
  const auto via_hash =
      store.find(criterion(Exact{Value{std::int64_t{5}}}, AnyField{}));
  ASSERT_TRUE(via_hash.has_value());
  EXPECT_EQ(via_hash->id.sequence, 2u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(CompositeStoreTest, SnapshotLoadRebuildsBothIndexes) {
  CompositeStore store(0);
  for (std::int64_t k = 0; k < 10; ++k) {
    store.store(make_object(static_cast<std::uint64_t>(k), k), k);
  }
  CompositeStore twin(0);
  twin.load(store.snapshot());
  EXPECT_EQ(twin.size(), 10u);
  EXPECT_TRUE(twin.find(criterion(IntRange{3, 4}, AnyField{})).has_value());
  EXPECT_TRUE(
      twin.find(criterion(Exact{Value{std::int64_t{7}}}, AnyField{}))
          .has_value());
}

TEST(CompositeStoreTest, EndToEndAsClassStore) {
  Schema schema({ClassSpec{"kv", {FieldType::kInt, FieldType::kText}, 0, 1}});
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.lambda = 1;
  cfg.store_factory = [](ClassId) {
    return std::make_unique<CompositeStore>(0);
  };
  Cluster cluster(std::move(schema), cfg);
  cluster.assign_basic_support();
  const ProcessId p = cluster.process(MachineId{0});
  for (int k = 0; k < 25; ++k) {
    ASSERT_TRUE(cluster.insert_sync(
        p, {Value{std::int64_t{k}}, Value{std::string{"x"}}}));
  }
  EXPECT_TRUE(cluster
                  .read_sync(p, criterion(IntRange{20, 30},
                                          TypedAny{FieldType::kText}))
                  .has_value());
  EXPECT_TRUE(cluster
                  .read_del_sync(p, criterion(Exact{Value{std::int64_t{3}}},
                                              TypedAny{FieldType::kText}))
                  .has_value());
  // Survives crash/recovery like any other store kind.
  const auto support = cluster.basic_support(ClassId{0});
  cluster.crash(support[0]);
  cluster.settle();
  cluster.recover(support[0]);
  cluster.settle();
  EXPECT_EQ(cluster.server(support[0]).live_count(ClassId{0}), 24u);
}

}  // namespace
}  // namespace paso::storage
