// Edge cases at the crash boundary: notifications to dead owners, blocking
// ops orphaned by their machine's death, lock token recovery, and inserts
// racing a support member's crash.
#include <gtest/gtest.h>

#include "coord/coord.hpp"
#include "paso/cluster.hpp"
#include "semantics/checker.hpp"

namespace paso {
namespace {

Schema task_schema() {
  return Schema({ClassSpec{"t", {FieldType::kInt, FieldType::kText}, 0, 1}});
}

SearchCriterion by_key(std::int64_t key) {
  return criterion(Exact{Value{key}}, TypedAny{FieldType::kText});
}

TEST(CrashEdgeTest, MarkerNotificationToDeadOwnerIsDropped) {
  ClusterConfig cfg;
  cfg.machines = 5;
  cfg.lambda = 1;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();

  // M4 blocks on a key, then dies. A matching insert must not blow up the
  // system when the notification finds no live owner.
  const ProcessId waiter = cluster.process(MachineId{4});
  bool fired = false;
  cluster.runtime(MachineId{4}).read_blocking(
      waiter, by_key(7), [&fired](SearchResponse) { fired = true; },
      BlockingMode::kMarker, 1e9);
  cluster.settle_for(500);
  cluster.crash(MachineId{4});
  cluster.settle();

  const ProcessId writer = cluster.process(MachineId{0});
  ASSERT_TRUE(cluster.insert_sync(
      writer, {Value{std::int64_t{7}}, Value{std::string{"x"}}}));
  cluster.settle_for(10000);
  EXPECT_FALSE(fired);  // the waiting process died with its machine
  // The object is untouched (a read marker does not consume).
  EXPECT_TRUE(cluster.read_sync(writer, by_key(7)).has_value());
  const auto check = semantics::check_history(cluster.history());
  EXPECT_TRUE(check.ok()) << check.violations.front();
}

TEST(CrashEdgeTest, RecoveredMachineCanBlockAgain) {
  ClusterConfig cfg;
  cfg.machines = 5;
  cfg.lambda = 1;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  const MachineId m{4};
  bool orphan_fired = false;
  cluster.runtime(m).read_blocking(
      cluster.process(m), by_key(1),
      [&orphan_fired](SearchResponse) { orphan_fired = true; },
      BlockingMode::kMarker, 1e9);
  cluster.settle_for(200);
  cluster.crash(m);
  cluster.settle();
  cluster.recover(m);
  cluster.settle();

  // A fresh blocking op on the restarted machine works; the orphaned one
  // never fires.
  SearchResponse result;
  cluster.runtime(m).read_blocking(
      cluster.process(m), by_key(2),
      [&result](SearchResponse r) { result = std::move(r); },
      BlockingMode::kMarker, 1e9);
  cluster.settle_for(200);
  const ProcessId writer = cluster.process(MachineId{0});
  cluster.runtime(MachineId{0})
      .insert(writer, {Value{std::int64_t{2}}, Value{std::string{"y"}}}, {});
  cluster.simulator().run_while_pending(
      [&result] { return result.has_value(); });
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(orphan_fired);
}

TEST(CrashEdgeTest, LockTokenLostWithHolderCanBeForceReleased) {
  Cluster cluster(Schema(coord::schema_specs()), [] {
    ClusterConfig cfg;
    cfg.machines = 6;
    cfg.lambda = 1;
    return cfg;
  }());
  cluster.assign_basic_support();
  coord::DistributedLock lock(cluster, "m");
  lock.create(cluster.process(MachineId{0}));

  // M4 acquires and dies holding the lock.
  bool held = false;
  lock.acquire(cluster.process(MachineId{4}),
               [&held](bool ok) { held = ok; });
  cluster.simulator().run_while_pending([&held] { return held; });
  cluster.crash(MachineId{4});
  cluster.settle();

  // Waiters starve (the token died with the holder) until an administrative
  // force-release re-mints it.
  std::optional<bool> second;
  lock.acquire(cluster.process(MachineId{2}),
               [&second](bool ok) { second = ok; },
               cluster.simulator().now() + 3000);
  cluster.simulator().run_while_pending(
      [&second] { return second.has_value(); });
  EXPECT_FALSE(*second);

  lock.force_release(cluster.process(MachineId{0}));
  std::optional<bool> third;
  lock.acquire(cluster.process(MachineId{2}),
               [&third](bool ok) { third = ok; },
               cluster.simulator().now() + 3000);
  cluster.simulator().run_while_pending(
      [&third] { return third.has_value(); });
  EXPECT_TRUE(*third);
}

TEST(CrashEdgeTest, InsertRacingSupportCrashStillReplicates) {
  ClusterConfig cfg;
  cfg.machines = 5;
  cfg.lambda = 1;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  const auto support = cluster.basic_support(ClassId{0});
  const ProcessId writer = cluster.process(MachineId{4});

  // Issue the insert and crash a support member before the gcast settles.
  bool done = false;
  cluster.runtime(MachineId{4})
      .insert(writer, {Value{std::int64_t{1}}, Value{std::string{"x"}}},
              [&done] { done = true; });
  cluster.crash(support[0]);
  cluster.simulator().run_while_pending([&done] { return done; });
  ASSERT_TRUE(done);  // completes once the detector prunes the dead member

  // The survivor holds the object; the recovered machine re-replicates it.
  EXPECT_TRUE(cluster.read_sync(writer, by_key(1)).has_value());
  cluster.settle();
  cluster.recover(support[0]);
  cluster.settle();
  EXPECT_EQ(cluster.server(support[0]).live_count(ClassId{0}), 1u);
  const auto check = semantics::check_history(cluster.history());
  EXPECT_TRUE(check.ok()) << check.violations.front();
}

TEST(CrashEdgeTest, DoubleCrashIsRejected) {
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.lambda = 1;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  cluster.crash(MachineId{3});
  EXPECT_THROW(cluster.crash(MachineId{3}), InvariantViolation);
  cluster.settle();
  cluster.recover(MachineId{3});
  cluster.settle();
  EXPECT_TRUE(cluster.is_up(MachineId{3}));
}

}  // namespace
}  // namespace paso
