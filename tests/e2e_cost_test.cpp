// System-level cost regressions: the bench harness's headline claims,
// asserted so they are continuously checked.
//   1. Total message cost lower-bounds completion time (Section 5's bus
//      premise), measured over a real mixed workload.
//   2. State-transfer bytes scale linearly in l (Section 3.1/4.2).
//   3. Adaptive replication beats static policies on a locality workload
//      and never loses to the better static policy by more than a small
//      constant factor (the Theorem 2 story end to end).
#include <gtest/gtest.h>

#include "adaptive/basic_policy.hpp"
#include "common/rng.hpp"
#include "paso/cluster.hpp"

namespace paso {
namespace {

Schema task_schema() {
  return Schema({ClassSpec{"t", {FieldType::kInt, FieldType::kText}, 0, 1}});
}

Tuple payload(std::int64_t key) {
  return {Value{key}, Value{std::string{"payload"}}};
}

SearchCriterion by_key(std::int64_t key) {
  return criterion(Exact{Value{key}}, TypedAny{FieldType::kText});
}

TEST(E2eCostTest, MessageCostLowerBoundsCompletionTime) {
  ClusterConfig cfg;
  cfg.machines = 6;
  cfg.lambda = 2;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  Rng rng(8);
  const sim::SimTime start = cluster.simulator().now();
  cluster.ledger().reset();
  for (int i = 0; i < 200; ++i) {
    const ProcessId p = cluster.process(
        MachineId{static_cast<std::uint32_t>(rng.index(6))});
    const std::int64_t key = static_cast<std::int64_t>(rng.index(20));
    if (rng.chance(0.5)) {
      cluster.insert_sync(p, payload(key));
    } else if (rng.chance(0.6)) {
      cluster.read_sync(p, by_key(key));
    } else {
      cluster.read_del_sync(p, by_key(key));
    }
  }
  const sim::SimTime elapsed = cluster.simulator().now() - start;
  EXPECT_GE(elapsed + 1e-9, cluster.ledger().total_msg_cost());
  EXPECT_GT(cluster.ledger().total_msg_cost(), 0.0);
}

TEST(E2eCostTest, StateTransferBytesAreLinearInLiveCount) {
  auto transfer_bytes = [](std::size_t live) -> double {
    ClusterConfig cfg;
    cfg.machines = 4;
    cfg.lambda = 1;
    Cluster cluster(task_schema(), cfg);
    cluster.assign_basic_support();
    const auto support = cluster.basic_support(ClassId{0});
    const ProcessId writer = cluster.process(support[1]);
    for (std::size_t i = 0; i < live; ++i) {
      cluster.insert_sync(writer, payload(static_cast<std::int64_t>(i)));
    }
    cluster.crash(support[0]);
    cluster.settle();
    cluster.ledger().reset();
    cluster.recover(support[0]);
    cluster.settle();
    return static_cast<double>(
        cluster.ledger().per_tag().at("state-xfer").bytes);
  };
  const double at_100 = transfer_bytes(100);
  const double at_1000 = transfer_bytes(1000);
  // Linear: 10x the objects => ~10x the bytes (within header slack).
  EXPECT_NEAR(at_1000 / at_100, 10.0, 0.5);
}

TEST(E2eCostTest, AdaptiveTracksTheBetterStaticPolicy) {
  // Locality phases: reads from one hot machine alternate with update
  // churn. Compare total (work + msg) across the three policies.
  auto run = [](int policy) -> Cost {
    ClusterConfig cfg;
    cfg.machines = 6;
    cfg.lambda = 1;
    cfg.record_history = false;
    Cluster cluster(task_schema(), cfg);
    cluster.assign_basic_support();
    if (policy == 2) {
      adaptive::install_basic_policies(
          cluster, adaptive::BasicPolicyOptions{8, 1, false});
    } else if (policy == 1) {
      for (std::uint32_t m = 0; m < cluster.machine_count(); ++m) {
        cluster.runtime(MachineId{m}).request_join(ClassId{0});
      }
      cluster.settle();
    }
    const ProcessId writer = cluster.process(MachineId{0});
    const ProcessId reader = cluster.process(MachineId{4});
    std::int64_t next = 100;
    std::int64_t oldest = 100;
    cluster.insert_sync(writer, payload(7));
    cluster.insert_sync(writer, payload(next++));
    cluster.ledger().reset();
    for (int phase = 0; phase < 4; ++phase) {
      for (int op = 0; op < 60; ++op) {
        if (phase % 2 == 0) {
          cluster.read_sync(reader, by_key(7));
        } else {
          cluster.read_del_sync(writer, by_key(oldest++));
          cluster.insert_sync(writer, payload(next++));
        }
      }
      cluster.settle();
    }
    return cluster.ledger().total_msg_cost() + cluster.ledger().total_work();
  };
  const Cost minimal = run(0);
  const Cost eager = run(1);
  const Cost adaptive_cost = run(2);
  const Cost better_static = std::min(minimal, eager);
  // Adaptive beats both statics outright on the mixed workload...
  EXPECT_LT(adaptive_cost, minimal);
  EXPECT_LT(adaptive_cost, eager);
  // ...and in any case stays within a small constant of the better one.
  EXPECT_LT(adaptive_cost, 4.0 * better_static);
}

}  // namespace
}  // namespace paso
