// Contention stress for the socket broker's sharded stack lock: the same
// shape as contention_stress_test (8 machines, one write group per machine,
// 4 client threads, robust ops + crash -> view change -> recover mid-run)
// but with every machine a real OS process on the TCP wire, so deliveries
// arrive from the dispatcher thread under per-domain shard sets while
// clients issue under theirs, and the writev batcher coalesces the
// resulting bursts. Label `sockets`: runs under ThreadSanitizer in CI.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "paso/cluster.hpp"
#include "paso/object.hpp"

namespace paso {
namespace {

constexpr std::size_t kMachines = 8;
constexpr std::size_t kClients = 4;

Schema partitioned_schema() {
  // One hash partition (= one object class, one write group) per machine,
  // support {p, p+1 mod n}: narrow domains, overlapping shard sets.
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, kMachines},
  });
}

Tuple task(std::int64_t key) { return {Value{key}, Value{std::string{"v"}}}; }

SearchCriterion by_key(std::int64_t key) {
  return criterion(Exact{Value{key}}, AnyField{});
}

bool wait_until(const std::function<bool()>& pred, int timeout_ms = 20000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

struct Counts {
  std::atomic<int> reports{0};
  std::atomic<int> terminal{0};

  std::function<void(OpReport)> reporter() {
    return [this](OpReport r) {
      reports.fetch_add(1);
      switch (r.status) {
        case OpStatus::kOk:
        case OpStatus::kFail:
        case OpStatus::kTimeout:
        case OpStatus::kDegraded:
        case OpStatus::kOverloaded:
          terminal.fetch_add(1);
          break;
      }
    };
  }
};

TEST(SocketStress, RobustOpsAndViewChangeUnderClientLoad) {
  Counts robust;  // outlives the cluster: a late delivery must not UAF
  ClusterConfig config;
  config.machines = kMachines;
  config.lambda = 1;
  config.transport = TransportKind::kSocket;
  config.record_history = false;
  config.runtime.op_deadline = 2'000'000;
  config.runtime.retry_backoff = 20'000;
  Cluster cluster(partitioned_schema(), config);
  for (std::size_t p = 0; p < kMachines; ++p) {
    cluster.set_basic_support(
        ClassId{static_cast<std::uint32_t>(p)},
        {MachineId{static_cast<std::uint32_t>(p)},
         MachineId{static_cast<std::uint32_t>((p + 1) % kMachines)}});
  }
  cluster.assign_basic_support();  // overrides are kept; this performs joins

  // Clients issue from machines 0/2/4/6; machine 7 is the one that crashes
  // (protocol-level: its process stays alive, the membership expels and
  // re-admits it — socket_cluster_test owns the kill -9 plane).
  std::atomic<std::uint64_t> sync_done{0};
  std::atomic<std::uint64_t> sync_ok{0};
  constexpr std::uint64_t kOpsPerClient = 15;
  std::vector<std::thread> clients;
  // If an ASSERT fires while clients are still running, join them on the
  // way out instead of std::terminate-ing on a joinable std::thread.
  struct Joiner {
    std::vector<std::thread>& threads;
    ~Joiner() {
      for (std::thread& t : threads) {
        if (t.joinable()) t.join();
      }
    }
  } joiner{clients};
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const ProcessId process =
          cluster.process(MachineId{static_cast<std::uint32_t>(2 * c)});
      for (std::uint64_t i = 0; i < kOpsPerClient; ++i) {
        const std::int64_t key = static_cast<std::int64_t>(c) * 100'000 +
                                 static_cast<std::int64_t>(i);
        if (cluster.insert_sync(process, task(key))) sync_ok.fetch_add(1);
        sync_done.fetch_add(1);
        cluster.read_sync(process, by_key(key));
        sync_done.fetch_add(1);
      }
    });
  }

  ASSERT_TRUE(wait_until([&] { return sync_done.load() >= 2 * kClients; }))
      << "clients never got going";
  cluster.crash(MachineId{7});
  int robust_issued = 0;
  cluster.transport().run_exclusive([&] {
    for (const std::uint32_t m : {0u, 3u, 5u}) {
      PasoRuntime& rt = cluster.runtime(MachineId{m});
      const ProcessId p = cluster.process(MachineId{m});
      for (int i = 0; i < 3; ++i) {
        rt.insert_robust(p, task(7'000'000 + 100 * m + i), robust.reporter());
        rt.read_robust(p, by_key(static_cast<std::int64_t>(100 * m + i)),
                       robust.reporter());
        robust_issued += 2;
      }
    }
  });
  // recover() requires failure detection to have finished expelling the
  // machine from its write groups. Under live client traffic settle() can't
  // quiesce, so poll for the exact precondition instead.
  ASSERT_TRUE(wait_until([&] {
    bool expelled = false;
    cluster.transport().run_exclusive(
        [&] { expelled = cluster.groups().groups_of(MachineId{7}).empty(); });
    return expelled;
  })) << "machine 7 never left its groups after the crash";
  std::atomic<bool> recovered{false};
  cluster.recover(MachineId{7}, [&] { recovered.store(true); });

  for (std::thread& t : clients) {
    if (t.joinable()) t.join();
  }
  ASSERT_TRUE(wait_until([&] { return recovered.load(); }))
      << "machine 7 never finished re-joining";
  ASSERT_TRUE(
      wait_until([&] { return robust.reports.load() >= robust_issued; }))
      << "a robust op from a live machine never reported: "
      << robust.reports.load() << "/" << robust_issued;
  cluster.settle();

  EXPECT_EQ(sync_done.load(), 2 * kClients * kOpsPerClient);
  EXPECT_GT(sync_ok.load(), 0u);
  EXPECT_EQ(robust.reports.load(), robust_issued);
  EXPECT_EQ(robust.terminal.load(), robust.reports.load());
  for (std::size_t m = 0; m < kMachines; ++m) {
    EXPECT_EQ(cluster.runtime(MachineId{static_cast<std::uint32_t>(m)})
                  .inflight(),
              0u)
        << "machine " << m << " wedged an op";
  }
  EXPECT_TRUE(cluster.is_up(MachineId{7}));
  EXPECT_TRUE(cluster.fault_tolerance_condition_holds());
}

}  // namespace
}  // namespace paso
