// Socket cluster under real process death: kill -9 a machine's OS process
// mid-run and the cluster must detect it over the wire, run the existing
// view-change/recovery path, keep serving from the survivors (only the dead
// machine's in-flight ops may orphan; live machines' ops all report a typed
// terminal status), and never wedge. Then recover(): the process is
// respawned, re-joins, and serves traffic again. Label `sockets`.
#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "paso/cluster.hpp"
#include "paso/object.hpp"

namespace paso {
namespace {

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 1},
  });
}

Tuple task(std::int64_t key) { return {Value{key}, Value{std::string{"v"}}}; }

SearchCriterion by_key(std::int64_t key) {
  return criterion(Exact{Value{key}}, AnyField{});
}

bool wait_until(const std::function<bool()>& pred, int timeout_ms = 10000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

// Report counters outlive the cluster (declared first in every test): a
// delivery racing test teardown must never touch freed memory.
struct Counts {
  std::atomic<int> reports{0};
  std::atomic<int> ok{0};
  std::atomic<int> fail{0};
  std::atomic<int> timeout{0};
  std::atomic<int> degraded{0};
  std::atomic<int> overloaded{0};

  std::function<void(OpReport)> reporter() {
    return [this](OpReport r) {
      reports.fetch_add(1);
      switch (r.status) {
        case OpStatus::kOk:
          ok.fetch_add(1);
          break;
        case OpStatus::kFail:
          fail.fetch_add(1);
          break;
        case OpStatus::kTimeout:
          timeout.fetch_add(1);
          break;
        case OpStatus::kDegraded:
          degraded.fetch_add(1);
          break;
        case OpStatus::kOverloaded:
          overloaded.fetch_add(1);
          break;
      }
    };
  }
};

ClusterConfig socket_config(std::size_t machines) {
  ClusterConfig config;
  config.machines = machines;
  config.lambda = 1;
  config.transport = TransportKind::kSocket;
  // Real clock: 1 cost unit = 1 µs. Generous deadlines so a slow CI box
  // times out the op, not the test; short heartbeats so silent death (no
  // FIN ever arrives for a SIGKILLed process with queued data) is caught
  // fast.
  config.runtime.op_deadline = 2'000'000;
  config.runtime.retry_backoff = 20'000;
  config.socket.heartbeat_interval_us = 10'000;
  config.socket.heartbeat_timeout_us = 200'000;
  return config;
}

TEST(SocketCluster, SigkillMidRunIsDetectedAndSurvivorsKeepServing) {
  Counts live;    // ops issued from machines that stay up: all must report
  Counts doomed;  // ops issued from machine 2 right before the kill
  ClusterConfig config = socket_config(4);
  Cluster cluster(task_schema(), config);
  cluster.assign_basic_support();

  // Phase 1: seed data from a machine that will survive.
  constexpr std::int64_t kKeys = 24;
  const ProcessId p0 = cluster.process(MachineId{0});
  for (std::int64_t key = 0; key < kKeys; ++key) {
    ASSERT_TRUE(cluster.insert_sync(p0, task(key))) << "seed insert " << key;
  }

  // Fire a few ops from machine 2, then SIGKILL its process mid-flight.
  // These are the only ops allowed to orphan: their issuer died.
  PasoRuntime& rt2 = cluster.runtime(MachineId{2});
  const ProcessId p2 = cluster.process(MachineId{2});
  constexpr int kDoomed = 5;
  cluster.transport().run_exclusive([&] {
    for (int i = 0; i < kDoomed; ++i) {
      rt2.insert_robust(p2, task(1000 + i), doomed.reporter());
    }
  });
  const int pid = cluster.socket_transport().child_pid(MachineId{2});
  ASSERT_GT(pid, 0);
  ASSERT_EQ(::kill(pid, SIGKILL), 0);

  // The wire notices (EOF or heartbeat silence), the supervisor maps the
  // death onto the crash path, the failure detector expels machine 2.
  ASSERT_TRUE(wait_until([&] { return !cluster.is_up(MachineId{2}); }))
      << "process death was never mapped onto the crash path";
  EXPECT_FALSE(cluster.socket_transport().endpoint_alive(MachineId{2}));
  // The supervisor thread appends to the crash log inside run_exclusive;
  // read it under the same exclusion instead of racing the push_back.
  std::size_t crashes = 0;
  std::uint32_t crashed = ~0u;
  cluster.transport().run_exclusive([&] {
    crashes = cluster.crash_log().size();
    if (!cluster.crash_log().empty()) {
      crashed = cluster.crash_log()[0].machine.value;
    }
  });
  ASSERT_EQ(crashes, 1u);
  EXPECT_EQ(crashed, 2u);

  // Give the view change room to finish, then phase 2: survivors read the
  // seeded keys and write fresh ones. Every one of these must come back
  // with a typed terminal status — re-routed around the corpse.
  cluster.settle_for(100'000);  // 100 ms real time
  int issued = 0;
  for (const std::uint32_t m : {0u, 1u, 3u}) {
    PasoRuntime& rt = cluster.runtime(MachineId{m});
    const ProcessId p = cluster.process(MachineId{m});
    cluster.transport().run_exclusive([&] {
      for (std::int64_t key = m; key < kKeys; key += 3) {
        rt.read_robust(p, by_key(key), live.reporter());
        ++issued;
      }
      rt.insert_robust(p, task(2000 + m), live.reporter());
      ++issued;
    });
  }
  ASSERT_TRUE(wait_until([&] { return live.reports.load() >= issued; },
                         15000))
      << "a survivor's op never reported: " << live.reports.load() << "/"
      << issued;
  EXPECT_EQ(live.reports.load(), issued);
  EXPECT_GT(live.ok.load(), 0) << "no survivor op succeeded after the kill";
  // The traffic report may show degraded/timed-out ops (groups that lost a
  // member), but nothing silently vanishes and nothing unexplained appears.
  EXPECT_EQ(live.ok.load() + live.fail.load() + live.timeout.load() +
                live.degraded.load() + live.overloaded.load(),
            live.reports.load());
  // Ops issued on the dead machine: reports are optional (orphaned with the
  // process), but never more reports than issues.
  EXPECT_LE(doomed.reports.load(), kDoomed);

  // λ = 1, one failure: the deployment is still within its tolerance.
  cluster.settle();
  EXPECT_TRUE(cluster.fault_tolerance_condition_holds());
  for (const std::uint32_t m : {0u, 1u, 3u}) {
    EXPECT_EQ(cluster.runtime(MachineId{m}).inflight(), 0u)
        << "machine " << m << " wedged an op";
  }
}

TEST(SocketCluster, RecoverRespawnsTheProcessAndRejoins) {
  Counts counts;
  ClusterConfig config = socket_config(3);
  Cluster cluster(task_schema(), config);
  cluster.assign_basic_support();

  const ProcessId p0 = cluster.process(MachineId{0});
  for (std::int64_t key = 0; key < 8; ++key) {
    ASSERT_TRUE(cluster.insert_sync(p0, task(key)));
  }

  const int old_pid = cluster.socket_transport().child_pid(MachineId{1});
  ASSERT_GT(old_pid, 0);
  ASSERT_EQ(::kill(old_pid, SIGKILL), 0);
  ASSERT_TRUE(wait_until([&] { return !cluster.is_up(MachineId{1}); }));
  // Let the failure detector expel the machine before asking it back in.
  cluster.settle_for(100'000);

  // recover() must notice the endpoint is a corpse and respawn the OS
  // process before the protocol-level re-join.
  std::atomic<bool> initialized{false};
  cluster.recover(MachineId{1}, [&] { initialized.store(true); });
  ASSERT_TRUE(wait_until([&] { return initialized.load(); }))
      << "state transfer to the reborn process never completed";
  EXPECT_TRUE(cluster.is_up(MachineId{1}));
  EXPECT_TRUE(cluster.socket_transport().endpoint_alive(MachineId{1}));
  const int new_pid = cluster.socket_transport().child_pid(MachineId{1});
  EXPECT_GT(new_pid, 0);
  EXPECT_NE(new_pid, old_pid) << "recover reused the dead pid";

  // The reborn machine serves traffic: reads of pre-crash data and fresh
  // writes, issued from the recovered machine itself.
  PasoRuntime& rt1 = cluster.runtime(MachineId{1});
  const ProcessId p1 = cluster.process(MachineId{1});
  int issued = 0;
  cluster.transport().run_exclusive([&] {
    for (std::int64_t key = 0; key < 8; ++key) {
      rt1.read_robust(p1, by_key(key), counts.reporter());
      ++issued;
    }
    rt1.insert_robust(p1, task(99), counts.reporter());
    ++issued;
  });
  ASSERT_TRUE(wait_until([&] { return counts.reports.load() >= issued; }))
      << "op from the recovered machine never reported";
  EXPECT_GT(counts.ok.load(), 0);
  cluster.settle();
  EXPECT_EQ(rt1.inflight(), 0u);
}

}  // namespace
}  // namespace paso
