// Regression: marker-sweep timers outliving the class they were armed for.
//
// Sweep timers are plain simulator events; nothing cancels them when a crash
// (crash_reset) or a voluntary leave (erase_state) destroys the class state
// they reference. Before the incarnation guard, such a timer firing after
// the machine recovered and re-joined would sweep the *reborn* class —
// potentially expiring re-placed markers early and double-counting sweeps in
// the marker metrics. Now each class lifetime carries an incarnation number,
// timers capture it, and a mismatch makes the timer a counted no-op
// (MemoryServer::stale_timer_hits).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "paso/cluster.hpp"
#include "semantics/checker.hpp"

namespace paso {
namespace {

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 1},
  });
}

SearchCriterion by_key(std::int64_t key) {
  return criterion(Exact{Value{key}}, AnyField{});
}

TEST(MarkerTimerTest, PreCrashSweepTimerIsHarmlessAfterRecovery) {
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.lambda = 1;
  cfg.runtime.marker_ttl = 600;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();  // wg(task) = {m0, m1}
  const ClassId cls{0};
  const MachineId victim{1};
  const ProcessId reader = cluster.process(MachineId{3});

  // A blocking read for a key nobody will insert: markers land on both
  // write-group members, each arming a sweep timer at the marker's expiry.
  // The deadline sits inside the first TTL period, so the read gives up
  // before any re-arm round muddies the marker population.
  const sim::SimTime deadline = cluster.simulator().now() + 550;
  bool done = false;
  cluster.runtime(reader.machine)
      .read_blocking(reader, by_key(404),
                     [&done](SearchResponse r) {
                       done = true;
                       EXPECT_FALSE(r.has_value());
                     },
                     BlockingMode::kMarker, deadline);
  cluster.settle_for(100);
  ASSERT_GT(cluster.server(victim).marker_count(cls), 0u)
      << "blocking read never placed a marker on the victim";

  // Crash after the timer is armed but long before it fires; the recovery
  // completes first, re-creating the class (markers included, via the state
  // blob) under a fresh incarnation.
  cluster.crash(victim);
  cluster.settle_for(250);  // failure detection expels the victim
  ASSERT_FALSE(cluster.server(victim).supports(cls));
  cluster.recover(victim);
  cluster.settle_for(150);
  ASSERT_TRUE(cluster.server(victim).supports(cls));
  ASSERT_GT(cluster.server(victim).marker_count(cls), 0u)
      << "donated markers did not travel in the state transfer";

  // Let the pre-crash timer (and everything else) fire.
  cluster.settle();
  EXPECT_TRUE(done);
  EXPECT_GE(cluster.server(victim).stale_timer_hits(), 1u)
      << "the pre-crash sweep timer should have hit the incarnation guard";
  // The reborn class is intact: the reader's deadline cancelled its marker,
  // the fresh sweep timer handled expiry, and no sweep ran twice.
  EXPECT_EQ(cluster.server(victim).marker_count(cls), 0u);
  EXPECT_EQ(cluster.server(MachineId{0}).marker_count(cls), 0u);
  EXPECT_EQ(cluster.server(MachineId{0}).stale_timer_hits(), 0u)
      << "the survivor's timers all matched their incarnation";

  const auto check =
      semantics::check_history(cluster.history(), cluster.run_context());
  EXPECT_TRUE(check.ok()) << (check.violations.empty()
                                  ? ""
                                  : check.violations.front());
}

TEST(MarkerTimerTest, LeaveAndRejoinGetsAFreshIncarnation) {
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.lambda = 1;
  cfg.runtime.marker_ttl = 600;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  const ClassId cls{0};
  const MachineId leaver{1};
  const ProcessId reader = cluster.process(MachineId{3});

  const sim::SimTime deadline = cluster.simulator().now() + 550;
  cluster.runtime(reader.machine)
      .read_blocking(reader, by_key(404), [](SearchResponse) {},
                     BlockingMode::kMarker, deadline);
  cluster.settle_for(100);
  ASSERT_GT(cluster.server(leaver).marker_count(cls), 0u);

  // erase_state path: the machine renounces the class while the sweep timer
  // is still pending, then re-joins immediately.
  cluster.runtime(leaver).request_leave(cls);
  cluster.settle_for(100);
  ASSERT_FALSE(cluster.server(leaver).supports(cls));
  cluster.runtime(leaver).request_join(cls);
  cluster.settle_for(100);
  ASSERT_TRUE(cluster.server(leaver).supports(cls));

  cluster.settle();
  EXPECT_GE(cluster.server(leaver).stale_timer_hits(), 1u)
      << "the pre-leave sweep timer should have hit the incarnation guard";
  EXPECT_EQ(cluster.server(leaver).marker_count(cls), 0u);
}

}  // namespace
}  // namespace paso
