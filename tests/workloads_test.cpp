// Tests for the workload generators: shape properties the competitive
// experiments rely on.
#include <gtest/gtest.h>

#include "analysis/workloads.hpp"

namespace paso::analysis {
namespace {

TEST(WorkloadTest, RandomSequenceMatchesMixAndLength) {
  Rng rng(1);
  const auto seq = random_sequence(10000, 0.7, 8, rng);
  ASSERT_EQ(seq.size(), 10000u);
  std::size_t reads = 0;
  for (const Request& r : seq) {
    EXPECT_DOUBLE_EQ(r.join_cost, 8.0);
    if (r.kind == ReqKind::kRead) ++reads;
  }
  EXPECT_NEAR(static_cast<double>(reads) / 10000.0, 0.7, 0.03);
}

TEST(WorkloadTest, PhasedSequenceAlternatesMixes) {
  Rng rng(2);
  PhasedOptions options;
  options.phases = 2;
  options.phase_length = 5000;
  options.read_heavy_probability = 0.95;
  options.update_heavy_probability = 0.05;
  const auto seq = phased_sequence(options, 8, rng);
  ASSERT_EQ(seq.size(), 10000u);
  auto reads_in = [&seq](std::size_t from, std::size_t to) {
    std::size_t reads = 0;
    for (std::size_t i = from; i < to; ++i) {
      if (seq[i].kind == ReqKind::kRead) ++reads;
    }
    return static_cast<double>(reads) / static_cast<double>(to - from);
  };
  EXPECT_GT(reads_in(0, 5000), 0.9);
  EXPECT_LT(reads_in(5000, 10000), 0.1);
}

TEST(WorkloadTest, AdversaryHasExactRentOrBuyShape) {
  const GameCosts costs{1, 3};  // r = 3
  const auto seq = adversarial_basic_sequence(2, 9, costs);
  // ceil(9/3) = 3 reads then 9 updates, twice.
  ASSERT_EQ(seq.size(), 2 * (3 + 9));
  for (std::size_t cycle = 0; cycle < 2; ++cycle) {
    const std::size_t base = cycle * 12;
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(seq[base + i].kind, ReqKind::kRead);
    }
    for (std::size_t i = 3; i < 12; ++i) {
      EXPECT_EQ(seq[base + i].kind, ReqKind::kUpdate);
    }
  }
}

TEST(WorkloadTest, AdversaryForcesJoinLeaveOscillation) {
  const GameCosts costs{1, 3};
  const adaptive::CounterConfig config{9, 1, false, false};
  const auto seq = adversarial_basic_sequence(10, 9, costs);
  const OnlineResult run = run_basic(seq, costs, config);
  EXPECT_EQ(run.joins, 10u);
  EXPECT_EQ(run.leaves, 10u);
}

TEST(WorkloadTest, GrowthSequenceSwingsJoinCost) {
  Rng rng(3);
  GrowthOptions options;
  options.phases = 2;
  options.phase_length = 4000;
  options.growth_insert_fraction = 0.95;
  options.read_probability = 0.2;
  options.initial_objects = 4;
  const auto seq = growth_sequence(options, rng);
  Cost max_k = 0;
  for (const Request& r : seq) max_k = std::max(max_k, r.join_cost);
  // Growth phase pushes l (and K) far above the initial value...
  EXPECT_GT(max_k, 100.0);
  // ...and the shrink phase brings the final K well below the peak.
  EXPECT_LT(seq.back().join_cost, max_k / 2);
}

TEST(WorkloadTest, GrowthJoinCostsNeverBelowOne) {
  Rng rng(4);
  GrowthOptions options;
  options.initial_objects = 1;
  options.growth_insert_fraction = 0.05;  // shrink-dominated from the start
  const auto seq = growth_sequence(options, rng);
  for (const Request& r : seq) {
    ASSERT_GE(r.join_cost, 1.0);
  }
}

TEST(WorkloadTest, GeneratorsAreDeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  const auto sa = random_sequence(500, 0.5, 8, a);
  const auto sb = random_sequence(500, 0.5, 8, b);
  for (std::size_t i = 0; i < sa.size(); ++i) {
    ASSERT_EQ(sa[i].kind, sb[i].kind);
  }
}

}  // namespace
}  // namespace paso::analysis
