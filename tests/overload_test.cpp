// Overload survival: bounded bridge buffers (net layer) and client-edge
// admission control (runtime layer).
//
// The bridge tests are the regression suite for the unbounded-ingress bug:
// a one-directional flood across a bridge used to queue without limit at
// the destination bus; with Topology::with_bridge_limit the queue depth is
// capped and the overflow is shed (counted) or back-pressured onto the
// source bus. The admission tests pin the RuntimeConfig::admission modes:
// reject fails fast with the typed Overloaded outcome, queue parks and
// drains FIFO within its own bound, degrade shrinks read fan-out to λ−k.
#include <gtest/gtest.h>

#include <vector>

#include "net/bus_network.hpp"
#include "paso/cluster.hpp"
#include "sim/simulator.hpp"

namespace paso {
namespace {

// ---------------------------------------------------------------------------
// bounded bridge buffers (BusNetwork)

constexpr std::size_t kMachines = 6;

// The flood topology is deliberately asymmetric: a fast source bus feeding
// a slow destination bus through the bridge. Crossings arrive every
// kSrc.message(64) time units but drain at one per kDst.message(64) — that
// throughput mismatch is what piles reservations up at the destination
// ingress (a symmetric topology drains as fast as it is fed and never
// builds a backlog).
constexpr CostModel kSrc{1.0, 0.01};  // 64 B costs 1.64
constexpr CostModel kDst{10.0, 1.0};  // 64 B costs 74
constexpr Cost kBridgeAlpha = 5;
constexpr Cost kBridgeBeta = 0.1;  // 64 B bridge hop costs 11.4

net::Topology two_segments(std::size_t bridge_capacity = net::kUnboundedBridge,
                           net::BridgePolicy policy = net::BridgePolicy::kShed) {
  net::Topology t({net::Segment{kSrc}, net::Segment{kDst}},
                  {0, 0, 0, 1, 1, 1}, kBridgeAlpha, kBridgeBeta);
  if (bridge_capacity != net::kUnboundedBridge) {
    t.with_bridge_limit(bridge_capacity, policy);
  }
  return t;
}

struct FloodResult {
  std::size_t delivered = 0;
  std::size_t queue_peak = 0;
  std::uint64_t shed = 0;
  std::uint64_t backpressured = 0;
  double msg_cost = 0;
  sim::SimTime src_free = 0;
  sim::SimTime done_at = 0;
};

/// One-directional flood: every machine on segment 0 sends `rounds`
/// back-to-back messages to machine 5 on segment 1, all issued at t=0 —
/// the cheap source buses outrun the single destination bus, so the bridge
/// ingress is where the backlog piles up.
FloodResult flood(const net::Topology& topology, int rounds = 20) {
  sim::Simulator sim;
  net::BusNetwork net(sim, CostModel{}, kMachines, topology);
  FloodResult r;
  const MachineId to{5};
  for (int round = 0; round < rounds; ++round) {
    for (std::uint32_t m = 0; m < 3; ++m) {
      net.send(MachineId{m}, to, "flood", 64, [&r, &sim] {
        ++r.delivered;
        r.done_at = sim.now();
      });
    }
  }
  sim.run();
  r.queue_peak = net.bridge_queue_peak(1);
  r.shed = net.bridge_shed();
  r.backpressured = net.bridge_backpressured();
  r.msg_cost = net.ledger().total_msg_cost();
  r.src_free = net.segment_free_at(0);
  return r;
}

TEST(BoundedBridgeTest, UnboundedFloodGrowsTheIngressWithoutLimit) {
  // The pre-fix behavior (still the default): the destination ingress
  // backlog scales with the flood size — the memory/latency bug.
  const FloodResult small = flood(two_segments(), 10);
  const FloodResult big = flood(two_segments(), 40);
  EXPECT_EQ(small.shed, 0u);
  EXPECT_EQ(big.shed, 0u);
  EXPECT_GT(big.queue_peak, small.queue_peak);
  EXPECT_GT(big.queue_peak, 40u);  // backlog ~ flood size, not a constant
}

TEST(BoundedBridgeTest, CapShedsOverflowAndBoundsTheQueue) {
  const FloodResult r = flood(two_segments(4, net::BridgePolicy::kShed), 20);
  EXPECT_LE(r.queue_peak, 4u);
  EXPECT_GT(r.shed, 0u);
  EXPECT_EQ(r.backpressured, 0u);
  // Shed messages still transmitted on the source bus and crossed the
  // bridge, but never reached the destination.
  EXPECT_EQ(r.delivered + r.shed, 60u);
}

TEST(BoundedBridgeTest, ShedCrossingsChargeSourceAndBridgeOnly) {
  // Every crossing costs src + bridge; only delivered ones add dst. With
  // uniform 64-byte messages the ledger total must decompose exactly.
  const FloodResult r = flood(two_segments(4, net::BridgePolicy::kShed), 20);
  const double src = kSrc.message(64);
  const double bridge = kBridgeAlpha + kBridgeBeta * 64;
  const double dst = kDst.message(64);
  const double expected =
      60.0 * (src + bridge) + static_cast<double>(r.delivered) * dst;
  EXPECT_NEAR(r.msg_cost, expected, 1e-6);  // summation order differs
}

TEST(BoundedBridgeTest, BackpressureDeliversEverythingByStallingTheSource) {
  const FloodResult capped =
      flood(two_segments(2, net::BridgePolicy::kBackpressure), 20);
  const FloodResult open = flood(two_segments(), 20);
  EXPECT_EQ(capped.delivered, 60u);
  EXPECT_EQ(capped.shed, 0u);
  EXPECT_GT(capped.backpressured, 0u);
  EXPECT_LE(capped.queue_peak, 2u);
  // The stall shows up where it should: the source bus stays busy longer
  // than in the unbounded run, and nothing finishes earlier.
  EXPECT_GT(capped.src_free, open.src_free);
  EXPECT_GE(capped.done_at, open.done_at);
}

TEST(BoundedBridgeTest, LooseCapIsBitForBitTheLegacyBehavior) {
  // A cap that never binds must not perturb a single timestamp or charge.
  const FloodResult open = flood(two_segments(), 20);
  const FloodResult loose = flood(two_segments(1 << 20), 20);
  EXPECT_EQ(loose.shed, 0u);
  EXPECT_EQ(loose.backpressured, 0u);
  EXPECT_DOUBLE_EQ(loose.msg_cost, open.msg_cost);
  EXPECT_DOUBLE_EQ(loose.done_at, open.done_at);
  EXPECT_DOUBLE_EQ(loose.src_free, open.src_free);
  EXPECT_EQ(loose.queue_peak, open.queue_peak);
}

TEST(BoundedBridgeTest, CapSurvivesDegenerateResolve) {
  // resolve() of a degenerate topology must carry the capacity through
  // (single-bus networks have no crossings, but the config must not be
  // silently dropped when a cluster resolves its topology).
  net::Topology t;
  t.with_bridge_limit(8, net::BridgePolicy::kBackpressure);
  const net::Topology resolved = t.resolve(4, CostModel{});
  EXPECT_EQ(resolved.bridge_capacity(), 8u);
  EXPECT_EQ(resolved.bridge_policy(), net::BridgePolicy::kBackpressure);
  EXPECT_TRUE(resolved.bounded_bridges());
}

// ---------------------------------------------------------------------------
// admission control (PasoRuntime)

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 1},
  });
}

Tuple task(std::int64_t key) { return {Value{key}, Value{std::string{"v"}}}; }

SearchCriterion by_key(std::int64_t key) {
  return criterion(Exact{Value{key}}, TypedAny{FieldType::kText});
}

ClusterConfig admission_config(AdmissionMode mode, std::size_t limit,
                               std::size_t queue_limit = 256) {
  ClusterConfig cfg;
  cfg.machines = kMachines;
  cfg.lambda = 1;
  cfg.runtime.admission = mode;
  cfg.runtime.admission_limit = limit;
  cfg.runtime.admission_queue_limit = queue_limit;
  return cfg;
}

/// Issue `count` robust reads back-to-back (no settling between them) from
/// machine 5, which is outside the write group, so every read is a remote
/// gcast that stays in flight until settled.
std::vector<OpStatus> burst_reads(Cluster& cluster, int count) {
  std::vector<OpStatus> statuses;
  PasoRuntime& rt = cluster.runtime(MachineId{5});
  const ProcessId reader = cluster.process(MachineId{5});
  for (int i = 0; i < count; ++i) {
    rt.read_robust(reader, by_key(0),
                   [&statuses](OpReport r) { statuses.push_back(r.status); });
  }
  cluster.settle();
  return statuses;
}

TEST(AdmissionTest, RejectFailsFastWithTypedOverloadedOutcome) {
  Cluster cluster(task_schema(), admission_config(AdmissionMode::kReject, 2));
  cluster.assign_basic_support();
  ASSERT_TRUE(cluster.insert_sync(cluster.process(MachineId{0}), task(0)));

  const std::vector<OpStatus> statuses = burst_reads(cluster, 6);
  ASSERT_EQ(statuses.size(), 6u);
  int ok = 0;
  int overloaded = 0;
  for (const OpStatus s : statuses) {
    if (s == OpStatus::kOk) ++ok;
    if (s == OpStatus::kOverloaded) ++overloaded;
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(overloaded, 4);
  PasoRuntime& rt = cluster.runtime(MachineId{5});
  EXPECT_EQ(rt.admission_rejections(), 4u);
  EXPECT_EQ(rt.inflight(), 0u);
  EXPECT_EQ(rt.admitted_robust(), 0u);
}

TEST(AdmissionTest, QueueParksOverflowAndDrainsItCompletely) {
  Cluster cluster(task_schema(), admission_config(AdmissionMode::kQueue, 1));
  cluster.assign_basic_support();
  ASSERT_TRUE(cluster.insert_sync(cluster.process(MachineId{0}), task(0)));

  const std::vector<OpStatus> statuses = burst_reads(cluster, 5);
  ASSERT_EQ(statuses.size(), 5u);
  for (const OpStatus s : statuses) EXPECT_EQ(s, OpStatus::kOk);
  PasoRuntime& rt = cluster.runtime(MachineId{5});
  EXPECT_EQ(rt.admission_rejections(), 0u);
  EXPECT_EQ(rt.admission_parked(), 4u);
  EXPECT_EQ(rt.admission_queue_depth(), 0u);
  EXPECT_EQ(rt.inflight(), 0u);
}

TEST(AdmissionTest, FullParkingLotRejectsTheExcess) {
  Cluster cluster(task_schema(),
                  admission_config(AdmissionMode::kQueue, 1, /*queue=*/2));
  cluster.assign_basic_support();
  ASSERT_TRUE(cluster.insert_sync(cluster.process(MachineId{0}), task(0)));

  const std::vector<OpStatus> statuses = burst_reads(cluster, 6);
  int ok = 0;
  int overloaded = 0;
  for (const OpStatus s : statuses) {
    if (s == OpStatus::kOk) ++ok;
    if (s == OpStatus::kOverloaded) ++overloaded;
  }
  // 1 admitted + 2 parked complete; 3 found both the gate and the lot full.
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(overloaded, 3);
  EXPECT_EQ(cluster.runtime(MachineId{5}).admission_rejections(), 3u);
}

TEST(AdmissionTest, DegradeShrinksReadFanoutInsteadOfRejecting) {
  Cluster cluster(task_schema(), admission_config(AdmissionMode::kDegrade, 1));
  cluster.assign_basic_support();
  ASSERT_TRUE(cluster.insert_sync(cluster.process(MachineId{0}), task(0)));
  cluster.ledger().reset();

  const std::vector<OpStatus> statuses = burst_reads(cluster, 4);
  ASSERT_EQ(statuses.size(), 4u);
  for (const OpStatus s : statuses) EXPECT_EQ(s, OpStatus::kOk);
  // One admitted read fans out to lambda+1 = 2 targets; the three degraded
  // ones shrink to lambda - k = 1 target each: 2 + 3 = 5 mem-reads.
  EXPECT_EQ(cluster.ledger().per_tag().at("mem-read").messages, 5u);
  EXPECT_EQ(cluster.runtime(MachineId{5}).admission_rejections(), 0u);
}

TEST(AdmissionTest, DegradeStillRejectsUpdatesOverTheLimit) {
  Cluster cluster(task_schema(), admission_config(AdmissionMode::kDegrade, 1));
  cluster.assign_basic_support();

  PasoRuntime& rt = cluster.runtime(MachineId{5});
  const ProcessId writer = cluster.process(MachineId{5});
  std::vector<OpStatus> statuses;
  for (int i = 0; i < 3; ++i) {
    rt.insert_robust(writer, task(i),
                     [&statuses](OpReport r) { statuses.push_back(r.status); });
  }
  cluster.settle();
  ASSERT_EQ(statuses.size(), 3u);
  int ok = 0;
  int overloaded = 0;
  for (const OpStatus s : statuses) {
    if (s == OpStatus::kOk) ++ok;
    if (s == OpStatus::kOverloaded) ++overloaded;
  }
  // Updates cannot shrink their replica set — over-limit inserts reject.
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(overloaded, 2);
}

TEST(AdmissionTest, ParkedOpsStillHonorTheirDeadline) {
  ClusterConfig cfg = admission_config(AdmissionMode::kQueue, 1);
  cfg.runtime.op_deadline = 50;  // shorter than any remote round trip
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  ASSERT_TRUE(cluster.insert_sync(cluster.process(MachineId{0}), task(0)));

  const std::vector<OpStatus> statuses = burst_reads(cluster, 4);
  ASSERT_EQ(statuses.size(), 4u);
  int timed_out = 0;
  for (const OpStatus s : statuses) {
    if (s == OpStatus::kTimeout) ++timed_out;
  }
  // With a 50-unit deadline the admitted op may or may not finish, but no
  // parked op can wait past its deadline — and none may hang.
  EXPECT_GE(timed_out, 3);
  EXPECT_EQ(cluster.runtime(MachineId{5}).inflight(), 0u);
  EXPECT_EQ(cluster.runtime(MachineId{5}).admission_queue_depth(), 0u);
}

TEST(AdmissionTest, CrashClearsTheGateAndTheParkingLot) {
  Cluster cluster(task_schema(), admission_config(AdmissionMode::kQueue, 1));
  cluster.assign_basic_support();
  ASSERT_TRUE(cluster.insert_sync(cluster.process(MachineId{0}), task(0)));

  PasoRuntime& rt = cluster.runtime(MachineId{5});
  const ProcessId reader = cluster.process(MachineId{5});
  int reports = 0;
  for (int i = 0; i < 4; ++i) {
    rt.read_robust(reader, by_key(0), [&reports](OpReport) { ++reports; });
  }
  EXPECT_GT(rt.admission_queue_depth(), 0u);
  cluster.crash(MachineId{5});
  EXPECT_EQ(rt.admission_queue_depth(), 0u);
  EXPECT_EQ(rt.admitted_robust(), 0u);
  EXPECT_EQ(rt.inflight(), 0u);
  cluster.settle();
  // The crash orphaned every in-flight op: no callback may fire afterwards.
  EXPECT_EQ(reports, 0);
}

TEST(AdmissionTest, OffModeKeepsLegacyBehaviorAndZeroCounters) {
  Cluster cluster(task_schema(), admission_config(AdmissionMode::kOff, 1));
  cluster.assign_basic_support();
  ASSERT_TRUE(cluster.insert_sync(cluster.process(MachineId{0}), task(0)));

  const std::vector<OpStatus> statuses = burst_reads(cluster, 8);
  for (const OpStatus s : statuses) EXPECT_EQ(s, OpStatus::kOk);
  PasoRuntime& rt = cluster.runtime(MachineId{5});
  EXPECT_EQ(rt.admission_rejections(), 0u);
  EXPECT_EQ(rt.admission_parked(), 0u);
}

TEST(AdmissionTest, OverloadedStatusHasAName) {
  EXPECT_STREQ(op_status_name(OpStatus::kOverloaded), "overloaded");
}

}  // namespace
}  // namespace paso
