// Tests for the small common utilities: the cost model and triple
// arithmetic, invariant macro behaviour, id ordering/hashing, logging.
#include <gtest/gtest.h>

#include <unordered_set>

#include "common/cost.hpp"
#include "common/ids.hpp"
#include "common/logging.hpp"
#include "common/require.hpp"

namespace paso {
namespace {

TEST(CostTripleTest, AdditionIsComponentwise) {
  CostTriple a{10, 2, 5};
  const CostTriple b{1, 3, 4};
  a += b;
  EXPECT_EQ(a, (CostTriple{11, 5, 9}));
  EXPECT_EQ(a + b, (CostTriple{12, 8, 13}));
}

TEST(CostTripleTest, StreamsReadably) {
  std::ostringstream os;
  os << CostTriple{1, 2, 3};
  EXPECT_EQ(os.str(), "{msg=1, time=2, work=3}");
}

TEST(CostModelTest, ZeroBetaMakesCostLengthIndependent) {
  const CostModel model{5.0, 0.0};
  EXPECT_DOUBLE_EQ(model.message(0), model.message(100000));
}

TEST(CostModelTest, GcastOfEmptyGroupIsJustTheResponse) {
  const CostModel model{10.0, 1.0};
  EXPECT_DOUBLE_EQ(model.gcast(0, 50, 20), 10.0 + 20.0);
}

TEST(RequireTest, PassesSilentlyAndThrowsWithContext) {
  EXPECT_NO_THROW(PASO_REQUIRE(1 + 1 == 2, "math"));
  try {
    PASO_REQUIRE(false, "the message");
    FAIL() << "should have thrown";
  } catch (const InvariantViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

TEST(IdsTest, OrderingIsLexicographic) {
  EXPECT_LT(MachineId{1}, MachineId{2});
  EXPECT_LT((ProcessId{MachineId{1}, 9}), (ProcessId{MachineId{2}, 0}));
  EXPECT_LT((ObjectId{ProcessId{MachineId{1}, 0}, 5}),
            (ObjectId{ProcessId{MachineId{1}, 0}, 6}));
}

TEST(IdsTest, HashesDistinguishNearbyIds) {
  std::unordered_set<ObjectId> ids;
  for (std::uint32_t m = 0; m < 8; ++m) {
    for (std::uint32_t p = 0; p < 4; ++p) {
      for (std::uint64_t s = 0; s < 32; ++s) {
        ids.insert(ObjectId{ProcessId{MachineId{m}, p}, s});
      }
    }
  }
  EXPECT_EQ(ids.size(), 8u * 4u * 32u);
}

TEST(IdsTest, StreamFormats) {
  std::ostringstream os;
  os << ObjectId{ProcessId{MachineId{3}, 1}, 42};
  EXPECT_EQ(os.str(), "M3.p1#42");
}

TEST(LoggingTest, LevelGatesOutput) {
  Logger::instance().set_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  Logger::instance().set_level(LogLevel::kInfo);
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  Logger::instance().set_level(LogLevel::kOff);  // restore
}

}  // namespace
}  // namespace paso
