// Seeded chaos sweep on a segmented topology: crashes, drop/delay windows
// AND bridge partitions against a two-segment cluster with placement-aware
// support. After every run the Section 2 axioms must hold, no operation may
// still be in flight, and the same seed must replay to an identical
// timeline, ledger and partition count — the bridge-partition events ride
// the same determinism contract as every other chaos kind.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "paso/fault_injector.hpp"
#include "semantics/checker.hpp"

namespace paso {
namespace {

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 2},
  });
}

Tuple task(std::int64_t key) { return {Value{key}, Value{std::string{"v"}}}; }

constexpr std::size_t kMachines = 6;
constexpr std::uint32_t kDriver = 5;  // immune workload driver

struct RunResult {
  std::string timeline;
  double msg_cost = 0;
  double work = 0;
  std::uint64_t crashes = 0;
  std::uint64_t partitions = 0;
  std::uint64_t partition_dropped = 0;
  std::size_t inflight = 0;
  std::vector<std::string> violations;
};

RunResult run_chaos(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.machines = kMachines;
  cfg.lambda = 2;
  cfg.topology = net::Topology::even(2, kMachines, CostModel{}, 60, 0.5);
  cfg.vsync.retransmit_timeout = 300;  // partitions drop messages
  cfg.runtime.op_deadline = 4000;
  cfg.runtime.retry_backoff = 500;
  cfg.runtime.pessimistic_timeouts = true;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_placement_aware_support();

  ChaosSchedule::GenOptions gen;
  gen.horizon = 10000;
  gen.detection_delay = cluster.groups().options().failure_detection_delay;
  gen.immune = {kDriver};
  gen.bridge_partition_count = 3;
  gen.bridges = cluster.network().bridge_count();
  ChaosEngine engine(cluster, ChaosSchedule::generate(seed, kMachines, gen));
  engine.start();

  Rng rng(seed * 613 + 5);
  const ProcessId driver = cluster.process(MachineId{kDriver});
  PasoRuntime& home = cluster.runtime(MachineId{kDriver});
  auto report = [](OpReport) {};

  for (int round = 0; round < 40; ++round) {
    const std::int64_t key = static_cast<std::int64_t>(rng.index(10));
    const double dice = rng.uniform01();
    if (dice < 0.5) {
      home.insert_robust(driver, task(key), report);
    } else if (dice < 0.8) {
      home.read_robust(driver, criterion(Exact{Value{key}}, AnyField{}),
                       report);
    } else {
      home.read_del_robust(driver, criterion(Exact{Value{key}}, AnyField{}),
                           report);
    }
    cluster.settle_for(150 + static_cast<sim::SimTime>(rng.index(120)));
  }
  cluster.settle_for(10000);
  cluster.settle();

  RunResult out;
  out.timeline = engine.timeline();
  out.msg_cost = cluster.ledger().total_msg_cost();
  out.work = cluster.ledger().total_work();
  out.crashes = engine.crashes();
  out.partitions = engine.partitions();
  out.partition_dropped = cluster.network().partition_dropped();
  for (std::uint32_t m = 0; m < kMachines; ++m) {
    out.inflight += cluster.runtime(MachineId{m}).inflight();
  }
  out.violations =
      semantics::check_history(cluster.history(), cluster.run_context())
          .violations;
  return out;
}

class TopologyChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopologyChaosSweep, AxiomsHoldUnderBridgePartitions) {
  const RunResult r = run_chaos(GetParam());
  EXPECT_TRUE(r.violations.empty())
      << "seed " << GetParam() << ": " << r.violations.front() << "\n"
      << r.timeline;
  EXPECT_EQ(r.inflight, 0u) << "seed " << GetParam() << "\n" << r.timeline;
}

TEST_P(TopologyChaosSweep, SameSeedReplaysIdentically) {
  const RunResult a = run_chaos(GetParam());
  const RunResult b = run_chaos(GetParam());
  EXPECT_EQ(a.timeline, b.timeline);
  EXPECT_DOUBLE_EQ(a.msg_cost, b.msg_cost);
  EXPECT_DOUBLE_EQ(a.work, b.work);
  EXPECT_EQ(a.partitions, b.partitions);
  EXPECT_EQ(a.partition_dropped, b.partition_dropped);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyChaosSweep,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(TopologyChaosScheduleTest, BridgeDrawsExtendOldSchedulesInPlace) {
  // Adding bridge partitions must not perturb the pre-existing draws: the
  // old schedule is a prefix of the new one, event for event.
  ChaosSchedule::GenOptions base;
  ChaosSchedule::GenOptions with_bridges = base;
  with_bridges.bridge_partition_count = 2;
  with_bridges.bridges = 1;
  const ChaosSchedule old_sched = ChaosSchedule::generate(42, 6, base);
  const ChaosSchedule new_sched = ChaosSchedule::generate(42, 6, with_bridges);
  ASSERT_EQ(new_sched.events.size(), old_sched.events.size() + 2);
  std::size_t bridge_events = 0;
  for (const ChaosEvent& ev : new_sched.events) {
    if (ev.kind == ChaosEvent::Kind::kBridgePartition) ++bridge_events;
  }
  EXPECT_EQ(bridge_events, 2u);
  // Every non-bridge event matches the old schedule in order.
  std::size_t j = 0;
  for (const ChaosEvent& ev : new_sched.events) {
    if (ev.kind == ChaosEvent::Kind::kBridgePartition) continue;
    ASSERT_LT(j, old_sched.events.size());
    EXPECT_EQ(ev.kind, old_sched.events[j].kind);
    EXPECT_EQ(ev.machine, old_sched.events[j].machine);
    EXPECT_DOUBLE_EQ(ev.at, old_sched.events[j].at);
    ++j;
  }
  EXPECT_EQ(j, old_sched.events.size());
}

}  // namespace
}  // namespace paso
