// Stress tests of the group layer's ordering guarantees (Section 3.2):
// total order across senders, FIFO per sender, serialization of membership
// changes with messages, and independence of distinct groups.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/bus_network.hpp"
#include "vsync/group_service.hpp"

namespace paso::vsync {
namespace {

class OrderEndpoint : public GroupEndpoint {
 public:
  GcastResult handle_gcast(const GroupName& group,
                           const Payload& message) override {
    log_[group].push_back(*std::any_cast<std::string>(&message.body));
    GcastResult result;
    result.response = std::string("ok");
    result.response_bytes = 2;
    result.processing = 1;
    return result;
  }
  StateBlob capture_state(const GroupName& group) override {
    return StateBlob{log_[group], 8 * log_[group].size() + 8};
  }
  void install_state(const GroupName& group, const StateBlob& blob) override {
    log_[group] = *std::any_cast<std::vector<std::string>>(&blob.state);
  }
  void erase_state(const GroupName& group) override { log_.erase(group); }
  void on_view_change(const GroupName& group, const View& view) override {
    // Record view changes inline with messages to check relative order.
    log_[group].push_back("#view" + std::to_string(view.size()));
  }

  const std::vector<std::string>& log(const GroupName& g) { return log_[g]; }

 private:
  std::map<GroupName, std::vector<std::string>> log_;
};

class VsyncOrderingTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kMachines = 6;

  VsyncOrderingTest() {
    for (std::uint32_t m = 0; m < kMachines; ++m) {
      endpoints_.push_back(std::make_unique<OrderEndpoint>());
      service_.register_endpoint(MachineId{m}, *endpoints_.back());
    }
  }

  void join(const GroupName& g, std::uint32_t m) {
    service_.g_join(g, MachineId{m});
    simulator_.run();
  }

  sim::Simulator simulator_;
  net::BusNetwork network_{simulator_, CostModel{10, 1}, kMachines};
  GroupService service_{network_, {}};
  std::vector<std::unique_ptr<OrderEndpoint>> endpoints_;
};

TEST_F(VsyncOrderingTest, TotalOrderAcrossManySenders) {
  join("g", 0);
  join("g", 1);
  join("g", 2);
  Rng rng(5);
  // 60 messages from random senders, all issued up front (no waiting).
  for (int i = 0; i < 60; ++i) {
    const MachineId sender{static_cast<std::uint32_t>(rng.index(kMachines))};
    service_.gcast("g", sender,
                   Payload{std::string("m") + std::to_string(i), 8}, "t");
  }
  simulator_.run();
  const auto& reference = endpoints_[0]->log("g");
  EXPECT_EQ(reference.size(), 63u);  // 3 view records + 60 messages
  EXPECT_EQ(endpoints_[1]->log("g"), reference);
  EXPECT_EQ(endpoints_[2]->log("g"), reference);
}

TEST_F(VsyncOrderingTest, FifoPerSender) {
  join("g", 0);
  for (int i = 0; i < 20; ++i) {
    service_.gcast("g", MachineId{4},
                   Payload{std::string("s4-") + std::to_string(i), 8}, "t");
  }
  simulator_.run();
  int last = -1;
  for (const std::string& entry : endpoints_[0]->log("g")) {
    if (!entry.starts_with("s4-")) continue;
    const int n = std::stoi(entry.substr(3));
    EXPECT_EQ(n, last + 1);
    last = n;
  }
  EXPECT_EQ(last, 19);
}

TEST_F(VsyncOrderingTest, MembershipChangesAreOrderedWithMessages) {
  join("g", 0);
  // Interleave gcasts and a join without waiting: the join is a queued
  // operation, so both members must agree on which messages preceded it.
  service_.gcast("g", MachineId{5}, Payload{std::string("before"), 8}, "t");
  service_.g_join("g", MachineId{1});
  service_.gcast("g", MachineId{5}, Payload{std::string("after"), 8}, "t");
  simulator_.run();
  // M1's log starts from the transferred state: it must contain "before"
  // (from the donor's log) and then its own view record + "after".
  const auto& log = endpoints_[1]->log("g");
  const auto before = std::find(log.begin(), log.end(), "before");
  const auto after = std::find(log.begin(), log.end(), "after");
  ASSERT_NE(before, log.end());
  ASSERT_NE(after, log.end());
  EXPECT_LT(before - log.begin(), after - log.begin());
  // Both members end with identical logs modulo their own view prefixes:
  // compare the suffix after "before".
  const auto& log0 = endpoints_[0]->log("g");
  const auto before0 = std::find(log0.begin(), log0.end(), "before");
  ASSERT_NE(before0, log0.end());
  EXPECT_TRUE(std::equal(before, log.end(), before0, log0.end()));
}

TEST_F(VsyncOrderingTest, GroupsAreIndependent) {
  join("a", 0);
  join("b", 1);
  // A slow operation on group "a" (a long queue) must not delay group "b".
  for (int i = 0; i < 30; ++i) {
    service_.gcast("a", MachineId{3}, Payload{std::string("x"), 5000}, "t");
  }
  bool b_done = false;
  service_.gcast("b", MachineId{3}, Payload{std::string("y"), 8}, "t",
                 [&b_done](std::optional<std::any>) { b_done = true; });
  simulator_.run_while_pending([&b_done] { return b_done; });
  EXPECT_TRUE(b_done);
  // Group a is still draining.
  EXPECT_LT(endpoints_[0]->log("a").size(), 31u);
  simulator_.run();
}

TEST_F(VsyncOrderingTest, QueuedGcastFromCrashedIssuerIsDropped) {
  join("g", 0);
  // Long op at the head, then a gcast from M2, then M2 crashes before its
  // gcast dispatches.
  service_.gcast("g", MachineId{3}, Payload{std::string("slow"), 20000}, "t");
  bool responded = false;
  service_.gcast("g", MachineId{2}, Payload{std::string("doomed"), 8}, "t",
                 [&responded](std::optional<std::any>) { responded = true; });
  service_.machine_crashed(MachineId{2});
  simulator_.run();
  EXPECT_FALSE(responded);  // dead issuer gets no response
  // The doomed message must not have been delivered.
  for (const std::string& entry : endpoints_[0]->log("g")) {
    EXPECT_NE(entry, "doomed");
  }
}

TEST_F(VsyncOrderingTest, LeaveQueuedBehindGcastsAppliesAfterThem) {
  join("g", 0);
  join("g", 1);
  for (int i = 0; i < 5; ++i) {
    service_.gcast("g", MachineId{4},
                   Payload{std::string("m") + std::to_string(i), 8}, "t");
  }
  service_.g_leave("g", MachineId{1});
  simulator_.run();
  // M1 received all five messages before leaving... and then erased its
  // state; M0 retains the full log.
  int delivered = 0;
  for (const std::string& entry : endpoints_[0]->log("g")) {
    if (entry.starts_with("m")) ++delivered;
  }
  EXPECT_EQ(delivered, 5);
  EXPECT_FALSE(service_.is_member("g", MachineId{1}));
}

TEST_F(VsyncOrderingTest, RejoinAfterLeaveGetsFreshState) {
  join("g", 0);
  join("g", 1);
  service_.gcast("g", MachineId{4}, Payload{std::string("one"), 8}, "t");
  simulator_.run();
  service_.g_leave("g", MachineId{1});
  simulator_.run();
  service_.gcast("g", MachineId{4}, Payload{std::string("two"), 8}, "t");
  simulator_.run();
  join("g", 1);
  // The rejoined member's log equals the donor's (including "two", which it
  // missed while out).
  const auto& log = endpoints_[1]->log("g");
  EXPECT_NE(std::find(log.begin(), log.end(), "one"), log.end());
  EXPECT_NE(std::find(log.begin(), log.end(), "two"), log.end());
}

TEST_F(VsyncOrderingTest, ConcurrentJoinsSerializeThroughTheQueue) {
  join("g", 0);
  service_.g_join("g", MachineId{1});
  service_.g_join("g", MachineId{2});
  service_.g_join("g", MachineId{3});
  simulator_.run();
  EXPECT_EQ(service_.group_size("g"), 4u);
  // Later joiners' transferred state includes the earlier joiners' view
  // records, proving the joins were serialized.
  EXPECT_GE(endpoints_[3]->log("g").size(),
            endpoints_[1]->log("g").size());
}

}  // namespace
}  // namespace paso::vsync
