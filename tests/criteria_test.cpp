// Tests for values, tuples, search criteria (Section 2's predicates) and the
// object-class schema (Section 4.1's obj-clss / sc-list).
#include <gtest/gtest.h>

#include "paso/classes.hpp"
#include "paso/criteria.hpp"

namespace paso {
namespace {

Tuple tuple_of(std::int64_t a, const std::string& b) {
  return {Value{a}, Value{b}};
}

TEST(ValueTest, TypesAndWireSizes) {
  EXPECT_EQ(type_of(Value{std::int64_t{1}}), FieldType::kInt);
  EXPECT_EQ(type_of(Value{1.5}), FieldType::kReal);
  EXPECT_EQ(type_of(Value{std::string{"x"}}), FieldType::kText);
  EXPECT_EQ(type_of(Value{true}), FieldType::kBool);
  EXPECT_EQ(wire_size(Value{std::int64_t{1}}), 8u);
  EXPECT_EQ(wire_size(Value{1.5}), 8u);
  EXPECT_EQ(wire_size(Value{true}), 1u);
  EXPECT_EQ(wire_size(Value{std::string{"abc"}}), 7u);
}

TEST(PatternTest, ExactMatchesValueAndTypeOnly) {
  const FieldPattern p = Exact{Value{std::int64_t{5}}};
  EXPECT_TRUE(pattern_matches(p, Value{std::int64_t{5}}));
  EXPECT_FALSE(pattern_matches(p, Value{std::int64_t{6}}));
  EXPECT_FALSE(pattern_matches(p, Value{5.0}));  // real 5.0 != int 5
}

TEST(PatternTest, WildcardsMatchByType) {
  EXPECT_TRUE(pattern_matches(AnyField{}, Value{true}));
  EXPECT_TRUE(pattern_matches(TypedAny{FieldType::kText},
                              Value{std::string{"hi"}}));
  EXPECT_FALSE(pattern_matches(TypedAny{FieldType::kText}, Value{1.0}));
}

TEST(PatternTest, RangesAreInclusive) {
  const FieldPattern p = IntRange{3, 7};
  EXPECT_TRUE(pattern_matches(p, Value{std::int64_t{3}}));
  EXPECT_TRUE(pattern_matches(p, Value{std::int64_t{7}}));
  EXPECT_FALSE(pattern_matches(p, Value{std::int64_t{8}}));
  EXPECT_FALSE(pattern_matches(p, Value{5.0}));  // wrong type
}

TEST(PatternTest, TextPrefix) {
  const FieldPattern p = TextPrefix{"task/"};
  EXPECT_TRUE(pattern_matches(p, Value{std::string{"task/42"}}));
  EXPECT_FALSE(pattern_matches(p, Value{std::string{"result/42"}}));
}

TEST(PatternTest, RangeBoundsAreOptionalAndExclusive) {
  const std::int64_t v = 5;
  // Half-open (5, *): excludes the boundary itself.
  const FieldPattern above = range_at_least(Value{v}, /*exclusive=*/true);
  EXPECT_FALSE(pattern_matches(above, Value{v}));
  EXPECT_TRUE(pattern_matches(above, Value{std::int64_t{6}}));
  // (*, 5]: unbounded below, inclusive above.
  const FieldPattern below = range_at_most(Value{v});
  EXPECT_TRUE(pattern_matches(below, Value{v}));
  EXPECT_TRUE(pattern_matches(below, Value{std::int64_t{-100}}));
  EXPECT_FALSE(pattern_matches(below, Value{std::int64_t{6}}));
  // Fully open range: matches any type, any value.
  EXPECT_TRUE(pattern_matches(Range{}, Value{true}));
  EXPECT_TRUE(pattern_matches(Range{}, Value{std::string{"x"}}));
}

TEST(PatternTest, RangeBoundsMustAgreeWithValueType) {
  const FieldPattern p = range_between(Value{std::int64_t{1}},
                                       Value{std::int64_t{9}});
  EXPECT_FALSE(pattern_matches(p, Value{5.0}));  // real vs int bounds
  // Cross-typed bounds admit nothing at all.
  const FieldPattern crossed =
      Range{Bound{Value{std::int64_t{1}}}, Bound{Value{std::string{"z"}}}};
  EXPECT_FALSE(pattern_matches(crossed, Value{std::int64_t{1}}));
  EXPECT_FALSE(pattern_matches(crossed, Value{std::string{"a"}}));
}

TEST(PatternTest, TextRangeOrdersLexicographically) {
  const FieldPattern p = range_between(Value{std::string{"apple"}},
                                       Value{std::string{"mango"}},
                                       /*lo_exclusive=*/false,
                                       /*hi_exclusive=*/true);
  EXPECT_TRUE(pattern_matches(p, Value{std::string{"banana"}}));
  EXPECT_TRUE(pattern_matches(p, Value{std::string{"apple"}}));
  EXPECT_FALSE(pattern_matches(p, Value{std::string{"mango"}}));
  EXPECT_FALSE(pattern_matches(p, Value{std::string{"zebra"}}));
}

TEST(CriterionTest, RankedValidityRequiresInRangeFieldAndPositiveK) {
  SearchCriterion sc = ranked(criterion(AnyField{}, AnyField{}), TopK{1, 3});
  EXPECT_TRUE(sc.ranked_valid());
  sc.top_k->field = 2;  // past the arity
  EXPECT_FALSE(sc.ranked_valid());
  sc.top_k->field = 0;
  sc.top_k->k = 0;
  EXPECT_FALSE(sc.ranked_valid());
  EXPECT_FALSE(criterion(AnyField{}).ranked_valid());  // no selector at all
}

TEST(CriterionTest, TopKDoesNotAffectMatching) {
  // Rank is a selection policy over the match set, not a per-object
  // predicate: the ranked criterion admits exactly what its base admits.
  const SearchCriterion base =
      criterion(Exact{Value{std::int64_t{1}}}, AnyField{});
  const SearchCriterion top =
      ranked(base, TopK{0, 2, /*descending=*/true});
  EXPECT_EQ(base.matches(tuple_of(1, "x")), top.matches(tuple_of(1, "x")));
  EXPECT_EQ(base.matches(tuple_of(2, "x")), top.matches(tuple_of(2, "x")));
}

TEST(CriterionTest, ArityMustAgree) {
  const SearchCriterion sc = criterion(AnyField{});
  EXPECT_FALSE(sc.matches(tuple_of(1, "x")));
  EXPECT_TRUE(criterion(AnyField{}, AnyField{}).matches(tuple_of(1, "x")));
}

TEST(CriterionTest, AllFieldsMustMatch) {
  const SearchCriterion sc =
      criterion(Exact{Value{std::int64_t{1}}}, TextPrefix{"a"});
  EXPECT_TRUE(sc.matches(tuple_of(1, "abc")));
  EXPECT_FALSE(sc.matches(tuple_of(1, "xyz")));
  EXPECT_FALSE(sc.matches(tuple_of(2, "abc")));
}

TEST(CriterionTest, ExactCriterionMatchesExactTuple) {
  const Tuple t = tuple_of(9, "hello");
  EXPECT_TRUE(exact_criterion(t).matches(t));
  EXPECT_FALSE(exact_criterion(t).matches(tuple_of(9, "other")));
}

TEST(CriterionTest, WireSizeCountsPatterns) {
  const SearchCriterion sc =
      criterion(Exact{Value{std::int64_t{1}}}, TextPrefix{"abc"});
  // 4 header + (1 + 8) exact-int + (1 + 4 + 3) prefix.
  EXPECT_EQ(sc.wire_size(), 4u + 9u + 8u);
}

TEST(CriterionTest, ToStringIsReadable) {
  const SearchCriterion sc = criterion(IntRange{1, 5}, AnyField{});
  EXPECT_EQ(sc.to_string(), "[[1..5], ?]");
}

TEST(CriterionTest, RangeWireSizeCountsFlagsAndPresentBounds) {
  // Range = tag + flags byte + (type byte + payload) per present bound.
  const SearchCriterion both =
      criterion(range_between(Value{std::int64_t{1}}, Value{std::int64_t{9}}));
  EXPECT_EQ(both.wire_size(), 4u + (1u + 1u + 9u + 9u));
  const SearchCriterion half = criterion(range_at_least(Value{std::int64_t{1}}));
  EXPECT_EQ(half.wire_size(), 4u + (1u + 1u + 9u));
  const SearchCriterion open = criterion(Range{});
  EXPECT_EQ(open.wire_size(), 4u + 2u);
  // A ranked selector adds its fixed 10 bytes on top of any shape.
  EXPECT_EQ(ranked(open, TopK{0, 1}).wire_size(), open.wire_size() + 10u);
}

TEST(CriterionTest, RangeAndTopKToString) {
  EXPECT_EQ(criterion(range_between(Value{std::int64_t{2}},
                                    Value{std::int64_t{8}},
                                    /*lo_exclusive=*/true))
                .to_string(),
            "[(2..8]]");
  EXPECT_EQ(criterion(range_at_most(Value{std::int64_t{4}},
                                    /*exclusive=*/true))
                .to_string(),
            "[[*..4)]");
  EXPECT_EQ(ranked(criterion(AnyField{}, AnyField{}),
                   TopK{1, 3, /*descending=*/true})
                .to_string(),
            "[?, ?] top3v@f1");
  EXPECT_EQ(ranked(criterion(AnyField{}), TopK{0, 1, /*descending=*/false})
                .to_string(),
            "[?] top1^@f0");
}

// --- schema: obj-clss and sc-list -------------------------------------------

Schema two_spec_schema(std::size_t partitions = 1) {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, partitions},
      ClassSpec{"score", {FieldType::kInt, FieldType::kReal}, 0, 1},
  });
}

TEST(SchemaTest, ClassifiesBySignature) {
  const Schema schema = two_spec_schema();
  EXPECT_EQ(schema.class_count(), 2u);
  const auto task = schema.classify(tuple_of(1, "x"));
  ASSERT_TRUE(task.has_value());
  EXPECT_EQ(task->value, 0u);
  const auto score = schema.classify({Value{std::int64_t{1}}, Value{2.0}});
  ASSERT_TRUE(score.has_value());
  EXPECT_EQ(score->value, 1u);
  EXPECT_FALSE(schema.classify({Value{true}}).has_value());
}

TEST(SchemaTest, ScListCoversExactlyAdmittedSignatures) {
  const Schema schema = two_spec_schema();
  // [int, text-prefix] only fits the task spec.
  const auto c1 = schema.candidate_classes(
      criterion(TypedAny{FieldType::kInt}, TextPrefix{"a"}));
  ASSERT_EQ(c1.size(), 1u);
  EXPECT_EQ(c1[0].value, 0u);
  // [int, any] fits both specs: the sc-list must be exhaustive.
  const auto c2 = schema.candidate_classes(
      criterion(TypedAny{FieldType::kInt}, AnyField{}));
  EXPECT_EQ(c2.size(), 2u);
  // Wrong arity fits nothing.
  EXPECT_TRUE(schema.candidate_classes(criterion(AnyField{})).empty());
}

TEST(SchemaTest, PartitionsSplitByKeyHash) {
  const Schema schema = two_spec_schema(4);
  EXPECT_EQ(schema.class_count(), 5u);  // 4 task partitions + 1 score
  // Every tuple lands in exactly one partition, stable across calls.
  const auto cls = schema.classify(tuple_of(123, "x"));
  ASSERT_TRUE(cls.has_value());
  EXPECT_EQ(schema.classify(tuple_of(123, "y")), cls);  // same key
  EXPECT_LT(cls->value, 4u);
}

TEST(SchemaTest, ExactKeyPinsThePartition) {
  const Schema schema = two_spec_schema(4);
  const auto cls = schema.classify(tuple_of(123, "x"));
  const auto candidates = schema.candidate_classes(criterion(
      Exact{Value{std::int64_t{123}}}, TypedAny{FieldType::kText}));
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], *cls);
}

TEST(SchemaTest, NonExactKeyFansOutToAllPartitions) {
  const Schema schema = two_spec_schema(4);
  const auto candidates = schema.candidate_classes(
      criterion(IntRange{0, 1000}, TypedAny{FieldType::kText}));
  EXPECT_EQ(candidates.size(), 4u);
}

TEST(SchemaTest, ScListContractHolds) {
  // For any tuple matching a criterion, the tuple's class must appear in the
  // criterion's candidate list (sc ⊆ ∪ obj-clss^-1(C_i)).
  const Schema schema = two_spec_schema(8);
  for (std::int64_t key = 0; key < 64; ++key) {
    const Tuple t = tuple_of(key, "payload");
    const SearchCriterion sc =
        criterion(Exact{Value{key}}, TextPrefix{"pay"});
    ASSERT_TRUE(sc.matches(t));
    const auto cls = schema.classify(t);
    ASSERT_TRUE(cls.has_value());
    const auto candidates = schema.candidate_classes(sc);
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), *cls),
              candidates.end())
        << "key " << key;
  }
}

TEST(SchemaTest, GroupNamesAreStableAndDistinct) {
  const Schema schema = two_spec_schema(2);
  EXPECT_EQ(schema.group_name(ClassId{0}), "wg/task/0");
  EXPECT_EQ(schema.group_name(ClassId{1}), "wg/task/1");
  EXPECT_EQ(schema.group_name(ClassId{2}), "wg/score/0");
}

TEST(SchemaTest, LocateInvertsClassIds) {
  const Schema schema = two_spec_schema(3);
  EXPECT_EQ(schema.locate(ClassId{0}), (std::pair<std::size_t, std::size_t>{0, 0}));
  EXPECT_EQ(schema.locate(ClassId{2}), (std::pair<std::size_t, std::size_t>{0, 2}));
  EXPECT_EQ(schema.locate(ClassId{3}), (std::pair<std::size_t, std::size_t>{1, 0}));
}

}  // namespace
}  // namespace paso
