// Tests for the Basic counter automaton and its doubling/halving extension
// (Section 5.1).
#include <gtest/gtest.h>

#include "adaptive/counter.hpp"
#include "adaptive/doubling.hpp"

namespace paso::adaptive {
namespace {

TEST(CounterTest, NonMemberJoinsWhenCounterReachesK) {
  CounterAutomaton automaton(CounterConfig{6, 1, false, false});
  EXPECT_FALSE(automaton.in_group());
  // Each remote read with rg = 2 adds 2; the third read crosses K = 6.
  EXPECT_EQ(automaton.on_read(2), CounterAction::kNone);
  EXPECT_EQ(automaton.on_read(2), CounterAction::kNone);
  EXPECT_EQ(automaton.on_read(2), CounterAction::kJoin);
  EXPECT_TRUE(automaton.in_group());
  EXPECT_DOUBLE_EQ(automaton.counter(), 6);
}

TEST(CounterTest, MemberLeavesAfterKUpdates) {
  CounterAutomaton automaton(CounterConfig{3, 1, false, true});
  EXPECT_TRUE(automaton.in_group());
  EXPECT_EQ(automaton.on_update(), CounterAction::kNone);
  EXPECT_EQ(automaton.on_update(), CounterAction::kNone);
  EXPECT_EQ(automaton.on_update(), CounterAction::kLeave);
  EXPECT_FALSE(automaton.in_group());
}

TEST(CounterTest, LocalReadsCapAtK) {
  CounterAutomaton automaton(CounterConfig{4, 1, false, true});
  for (int i = 0; i < 10; ++i) automaton.on_read(0);
  EXPECT_DOUBLE_EQ(automaton.counter(), 4);  // min{c+1, K}, not max
}

TEST(CounterTest, UpdatesFloorAtZeroForBasicMembers) {
  CounterAutomaton automaton(CounterConfig{4, 1, /*is_basic=*/true, false});
  EXPECT_TRUE(automaton.in_group());  // basic members are always in
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(automaton.on_update(), CounterAction::kNone);  // never leaves
  }
  EXPECT_DOUBLE_EQ(automaton.counter(), 0);  // max{c-1, 0}, not min
  EXPECT_TRUE(automaton.in_group());
}

TEST(CounterTest, ReadsRechargeAMemberTowardStaying) {
  CounterAutomaton automaton(CounterConfig{4, 1, false, true});
  automaton.on_update();
  automaton.on_update();
  automaton.on_update();  // c = 1
  automaton.on_read(0);   // local read recharges: c = 2
  automaton.on_update();
  EXPECT_EQ(automaton.on_update(), CounterAction::kLeave);
}

TEST(CounterTest, QueryCostScalesIncrements) {
  // Data-structure extension: q = 3, rg = 2 -> each remote read adds 6.
  CounterAutomaton automaton(CounterConfig{12, 3, false, false});
  EXPECT_EQ(automaton.on_read(2), CounterAction::kNone);
  EXPECT_EQ(automaton.on_read(2), CounterAction::kJoin);
}

TEST(CounterTest, ForceMembershipResyncsState) {
  CounterAutomaton automaton(CounterConfig{4, 1, false, true});
  automaton.force_membership(false);  // crash evicted the machine
  EXPECT_FALSE(automaton.in_group());
  EXPECT_DOUBLE_EQ(automaton.counter(), 0);
}

TEST(CounterTest, RejectsNonPositiveParameters) {
  EXPECT_THROW(CounterAutomaton(CounterConfig{0, 1, false, false}),
               InvariantViolation);
  EXPECT_THROW(CounterAutomaton(CounterConfig{4, 0, false, false}),
               InvariantViolation);
}

TEST(DoublingTest, TracksJoinCostWithinFactorTwo) {
  DoublingAutomaton automaton({8, 1, false, false});
  automaton.observe_join_cost(8);
  EXPECT_DOUBLE_EQ(automaton.tracked_join_cost(), 8);
  automaton.observe_join_cost(40);  // grew by 5x: doubles to 16 then 32
  EXPECT_DOUBLE_EQ(automaton.tracked_join_cost(), 32);
  automaton.observe_join_cost(3);  // shrank: halves to 16, 8, then 4
  EXPECT_DOUBLE_EQ(automaton.tracked_join_cost(), 4);
}

TEST(DoublingTest, TrackedKStaysWithinFactorTwoOfObserved) {
  DoublingAutomaton automaton({8, 1, false, false});
  for (const Cost k : {1.0, 5.0, 17.0, 200.0, 30.0, 2.0, 1000.0}) {
    automaton.observe_join_cost(k);
    EXPECT_LE(automaton.tracked_join_cost(), 2 * k);
    EXPECT_GT(automaton.tracked_join_cost(), k / 2);
  }
}

TEST(DoublingTest, HalvingClampsTheCounter) {
  DoublingAutomaton automaton({16, 1, false, false});
  // Build the counter up to 14 with remote reads (rg = 2).
  for (int i = 0; i < 7; ++i) automaton.on_read(2, 16);
  EXPECT_DOUBLE_EQ(automaton.counter(), 14);
  // K collapses to ~4: the counter must clamp to the new K...
  automaton.on_read(2, 4);
  // ...which also means the read crosses the threshold and joins.
  EXPECT_TRUE(automaton.in_group());
  EXPECT_LE(automaton.counter(), 8);
}

TEST(DoublingTest, JoinsAndLeavesLikeBasicWhenKIsStable) {
  DoublingAutomaton automaton({6, 1, false, false});
  EXPECT_EQ(automaton.on_read(2, 6), CounterAction::kNone);
  EXPECT_EQ(automaton.on_read(2, 6), CounterAction::kNone);
  EXPECT_EQ(automaton.on_read(2, 6), CounterAction::kJoin);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(automaton.on_update(6), CounterAction::kNone);
  }
  EXPECT_EQ(automaton.on_update(6), CounterAction::kLeave);
}

}  // namespace
}  // namespace paso::adaptive
