// Seeded chaos sweep: 200+ generated fault schedules, three workload
// shapes, and after every run the Section 2 axioms plus two liveness
// properties — no operation still in flight once the run settles, and the
// same seed replaying to an identical timeline and ledger. This is the
// acceptance harness for the crash-recovery hardening: drop windows force
// vsync retransmission, crashes force robust-op retries and view-change
// re-routing, and recovery epochs force state transfer, all under the
// checker's eye.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "paso/fault_injector.hpp"
#include "semantics/checker.hpp"

namespace paso {
namespace {

enum class Workload { kBagOfTasks, kKv, kCoordination };

const char* workload_name(Workload w) {
  switch (w) {
    case Workload::kBagOfTasks:
      return "bag-of-tasks";
    case Workload::kKv:
      return "kv";
    case Workload::kCoordination:
      return "coordination";
  }
  return "?";
}

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 2},
  });
}

Tuple task(std::int64_t key) { return {Value{key}, Value{std::string{"v"}}}; }

constexpr std::size_t kMachines = 6;
constexpr std::uint32_t kDriver = 5;  // immune; issues the scripted workload

/// Everything a chaos run produces that must replay identically.
struct RunResult {
  std::string timeline;
  std::size_t history_size = 0;
  double msg_cost = 0;
  double work = 0;
  std::uint64_t crashes = 0;
  std::uint64_t windows = 0;
  std::uint64_t retries = 0;
  std::size_t inflight = 0;
  int reports = 0;
  int timeouts = 0;
  int degraded = 0;
  double traced_cost = 0;
  double untraced_cost = 0;
  std::uint64_t spans = 0;
  std::vector<std::string> violations;
};

RunResult run_chaos(std::uint64_t seed, Workload workload,
                    bool observe = false) {
  ClusterConfig cfg;
  cfg.machines = kMachines;
  cfg.lambda = 2;
  cfg.vsync.retransmit_timeout = 300;  // drop windows need retransmission
  cfg.runtime.op_deadline = 4000;
  cfg.runtime.retry_backoff = 500;
  cfg.runtime.pessimistic_timeouts = true;
  // Batching on: the chaos sweep is the acceptance bar for coalesced gcasts
  // surviving crashes, drop windows and recovery epochs.
  cfg.runtime.batch_window = 40;
  cfg.runtime.max_batch = 8;
  cfg.observe = observe;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();

  ChaosSchedule::GenOptions gen;
  gen.horizon = 12000;
  gen.detection_delay = cluster.groups().options().failure_detection_delay;
  gen.immune = {kDriver};
  ChaosEngine engine(cluster,
                     ChaosSchedule::generate(seed, kMachines, gen));
  engine.start();

  RunResult out;
  auto report = [&out](OpReport r) {
    ++out.reports;
    if (r.status == OpStatus::kTimeout) ++out.timeouts;
    if (r.status == OpStatus::kDegraded) ++out.degraded;
  };

  Rng rng(seed * 977 + static_cast<std::uint64_t>(workload) * 131 + 1);
  const ProcessId driver = cluster.process(MachineId{kDriver});
  PasoRuntime& home = cluster.runtime(MachineId{kDriver});
  std::int64_t next_task = 0;

  for (int round = 0; round < 45; ++round) {
    switch (workload) {
      case Workload::kBagOfTasks: {
        // Producer enqueues on the driver; consumers on the other machines
        // claim tasks with robust read&del (idempotent removal tokens).
        home.insert_robust(driver, task(next_task++ % 8), report);
        const MachineId worker{
            static_cast<std::uint32_t>(rng.index(kMachines - 1))};
        if (cluster.is_up(worker) && !cluster.is_initializing(worker)) {
          cluster.runtime(worker).read_del_robust(
              cluster.process(worker), criterion(AnyField{}, AnyField{}),
              report);
        }
        break;
      }
      case Workload::kKv: {
        const std::int64_t key = static_cast<std::int64_t>(rng.index(12));
        const double dice = rng.uniform01();
        if (dice < 0.55) {
          home.insert_robust(driver, task(key), report);
        } else if (dice < 0.85) {
          home.read_robust(driver, criterion(Exact{Value{key}}, AnyField{}),
                           report);
        } else {
          home.read_del_robust(
              driver, criterion(Exact{Value{key}}, AnyField{}), report);
        }
        break;
      }
      case Workload::kCoordination: {
        // Consumer blocks (deadline-bounded) on a key its producer inserts
        // moments later: the Section 4.3 handshake under fire.
        const std::int64_t key = 1000 + round;
        const sim::SimTime deadline = cluster.simulator().now() + 3000;
        home.read_blocking(
            driver, criterion(Exact{Value{key}}, AnyField{}),
            [](SearchResponse) {},
            round % 2 == 0 ? BlockingMode::kPoll : BlockingMode::kMarker,
            deadline);
        home.insert_robust(driver, task(key), report);
        break;
      }
    }
    cluster.settle_for(150 + static_cast<sim::SimTime>(rng.index(120)));
  }

  // Drain past the horizon plus the longest deadline so every machine has
  // recovered and every operation has resolved one way or another.
  cluster.settle_for(12000);
  cluster.settle();

  out.timeline = engine.timeline();
  out.history_size = cluster.history().size();
  out.msg_cost = cluster.ledger().total_msg_cost();
  out.work = cluster.ledger().total_work();
  out.crashes = engine.crashes();
  out.windows = engine.windows();
  for (std::uint32_t m = 0; m < kMachines; ++m) {
    out.retries += cluster.runtime(MachineId{m}).retries();
    out.inflight += cluster.runtime(MachineId{m}).inflight();
  }
  out.violations =
      semantics::check_history(cluster.history(), cluster.run_context())
          .violations;
  if (observe) {
    out.traced_cost = cluster.tracer().traced_msg_cost();
    out.untraced_cost = cluster.tracer().untraced_msg_cost();
    out.spans = cluster.tracer().events().size();
  }
  return out;
}

// ---------------------------------------------------------------------------
// The sweep: 67 seeds x 3 workloads = 201 schedules.

class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweep, AxiomsHoldAndEveryOpResolves) {
  for (const Workload w :
       {Workload::kBagOfTasks, Workload::kKv, Workload::kCoordination}) {
    const RunResult r = run_chaos(GetParam(), w);
    EXPECT_TRUE(r.violations.empty())
        << "seed " << GetParam() << " workload " << workload_name(w) << ": "
        << (r.violations.empty() ? "" : r.violations.front());
    // No operation may outlive the run silently: everything either returned,
    // reported an explicit timeout/degradation, or died with a crash.
    EXPECT_EQ(r.inflight, 0u)
        << "seed " << GetParam() << " workload " << workload_name(w);
    EXPECT_GT(r.reports, 0) << "workload issued no robust ops?";
    EXPECT_FALSE(r.timeline.empty()) << "chaos engine applied no events";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep,
                         ::testing::Range<std::uint64_t>(1, 68));

// ---------------------------------------------------------------------------
// Replay determinism: the acceptance bar for the chaos engine.

TEST(ChaosDeterminismTest, SameSeedReplaysIdenticalTimelineAndLedger) {
  for (const std::uint64_t seed : {3ull, 17ull, 42ull}) {
    for (const Workload w :
         {Workload::kBagOfTasks, Workload::kKv, Workload::kCoordination}) {
      const RunResult a = run_chaos(seed, w);
      const RunResult b = run_chaos(seed, w);
      EXPECT_EQ(a.timeline, b.timeline)
          << "seed " << seed << " workload " << workload_name(w);
      EXPECT_EQ(a.msg_cost, b.msg_cost);
      EXPECT_EQ(a.work, b.work);
      EXPECT_EQ(a.history_size, b.history_size);
      EXPECT_EQ(a.crashes, b.crashes);
      EXPECT_EQ(a.windows, b.windows);
      EXPECT_EQ(a.retries, b.retries);
      EXPECT_EQ(a.reports, b.reports);
      EXPECT_EQ(a.timeouts, b.timeouts);
    }
  }
}

// ---------------------------------------------------------------------------
// Observability under chaos: tracing is pure observation, and its message
// records partition the ledger's cost exactly — nothing lost to a crash,
// retransmission or re-route, nothing double-counted by a shared batch.

TEST(ChaosObservabilityTest, TraceRecordsReconcileWithLedgerExactly) {
  for (const std::uint64_t seed : {5ull, 23ull, 41ull}) {
    for (const Workload w :
         {Workload::kBagOfTasks, Workload::kKv, Workload::kCoordination}) {
      const RunResult base = run_chaos(seed, w);
      const RunResult traced = run_chaos(seed, w, /*observe=*/true);
      // Observation must not perturb the run: same timeline, same ledger.
      EXPECT_EQ(base.timeline, traced.timeline)
          << "seed " << seed << " workload " << workload_name(w);
      EXPECT_EQ(base.msg_cost, traced.msg_cost);
      EXPECT_EQ(base.history_size, traced.history_size);
      // Every charged transmission is in exactly one bucket.
      EXPECT_EQ(traced.traced_cost + traced.untraced_cost, traced.msg_cost)
          << "seed " << seed << " workload " << workload_name(w)
          << ": cost lost or double-counted";
      EXPECT_GT(traced.traced_cost, 0.0) << "no message attributed to any op";
      EXPECT_GT(traced.spans, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Schedule generation properties.

TEST(ChaosScheduleTest, GenerateIsDeterministicSortedAndBounded) {
  ChaosSchedule::GenOptions gen;
  gen.horizon = 10000;
  gen.crash_count = 3;
  gen.drop_count = 2;
  gen.delay_count = 2;
  gen.detection_delay = 50;
  gen.immune = {0};
  const ChaosSchedule a = ChaosSchedule::generate(99, 5, gen);
  const ChaosSchedule b = ChaosSchedule::generate(99, 5, gen);
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_EQ(a.events.size(), 2 * gen.crash_count + gen.drop_count +
                                 gen.delay_count);

  const sim::SimTime floor = gen.detection_delay * 2 + 1;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const ChaosEvent& ev = a.events[i];
    EXPECT_NE(ev.machine, 0u) << "immune machine scheduled";
    EXPECT_LT(ev.machine, 5u);
    if (i > 0) EXPECT_GE(ev.at, a.events[i - 1].at) << "events not sorted";
    if (ev.kind == ChaosEvent::Kind::kDrop ||
        ev.kind == ChaosEvent::Kind::kDelay) {
      EXPECT_GT(ev.duration, 0);
      EXPECT_LE(ev.duration, gen.max_window);
    }
  }
  // Every crash pairs with a recover of the same machine, no sooner than
  // the detection floor (the failure detector must expel it first).
  std::size_t crashes = 0, recovers = 0;
  for (const ChaosEvent& ev : a.events) {
    if (ev.kind == ChaosEvent::Kind::kCrash) {
      ++crashes;
      bool paired = false;
      for (const ChaosEvent& other : a.events) {
        if (other.kind == ChaosEvent::Kind::kRecover &&
            other.machine == ev.machine && other.at >= ev.at + floor) {
          paired = true;
        }
      }
      EXPECT_TRUE(paired) << "crash of m" << ev.machine << " never recovers";
    } else if (ev.kind == ChaosEvent::Kind::kRecover) {
      ++recovers;
    }
  }
  EXPECT_EQ(crashes, gen.crash_count);
  EXPECT_EQ(recovers, gen.crash_count);

  // A different seed yields a different schedule.
  EXPECT_NE(a.to_string(), ChaosSchedule::generate(100, 5, gen).to_string());
}

TEST(ChaosEngineTest, DropWindowsRequireVsyncRetransmission) {
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.lambda = 1;
  // No retransmit_timeout: a dropped gcast would strand its operation.
  Cluster cluster(task_schema(), cfg);
  ChaosSchedule schedule;
  schedule.horizon = 1000;
  schedule.events.push_back(
      ChaosEvent{ChaosEvent::Kind::kDrop, 100, 1, 200, 0});
  EXPECT_THROW(ChaosEngine(cluster, schedule), InvariantViolation);
}

}  // namespace
}  // namespace paso
