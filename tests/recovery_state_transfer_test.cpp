// Crash-recovery state transfer and the retry/timeout machinery.
//
// A write-group member crashes mid-insert, recovers, and must come back
// byte-for-byte equal to the survivor (objects, ages and the idempotence
// tables all travel in the state-transfer blob). Operations issued while
// the group is unreachable either retry to completion or fail with an
// explicit timeout — never block forever — and retries are end-to-end
// idempotent: a re-sent insert keeps one object, a re-sent read&del removes
// one object.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "paso/cluster.hpp"
#include "semantics/checker.hpp"

namespace paso {
namespace {

Schema task_schema() {
  // One partition: a single class, so wg(task) = {m0, m1} exactly and the
  // replica-equality assertions below have a fixed target.
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 1},
  });
}

Tuple task(std::int64_t key, const std::string& payload = "v") {
  return {Value{key}, Value{payload}};
}

/// Compare two replicas of a class store field by field: same size, same
/// state-transfer footprint, and the same oldest match for every probe key.
void expect_replicas_equal(MemoryServer& a, MemoryServer& b, ClassId cls,
                           std::int64_t max_key) {
  ASSERT_TRUE(a.supports(cls));
  ASSERT_TRUE(b.supports(cls));
  EXPECT_EQ(a.live_count(cls), b.live_count(cls));
  EXPECT_EQ(a.class_state_bytes(cls), b.class_state_bytes(cls));
  for (std::int64_t key = 0; key <= max_key; ++key) {
    const SearchCriterion sc = criterion(Exact{Value{key}}, AnyField{});
    auto from_a = a.local_find(cls, sc);
    auto from_b = b.local_find(cls, sc);
    ASSERT_EQ(from_a.has_value(), from_b.has_value()) << "key " << key;
    if (from_a) {
      EXPECT_EQ(from_a->id, from_b->id) << "key " << key;
      EXPECT_TRUE(from_a->fields == from_b->fields) << "key " << key;
    }
  }
}

TEST(RecoveryStateTransferTest, RecoveredMemberMatchesSurvivorByteForByte) {
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.lambda = 1;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();  // wg(task) = {m0, m1}
  const ClassId cls{0};
  const MachineId survivor{0};
  const MachineId victim{1};
  const ProcessId driver = cluster.process(MachineId{3});

  for (std::int64_t key = 0; key < 6; ++key) {
    ASSERT_TRUE(cluster.insert_sync(driver, task(key)));
  }
  ASSERT_TRUE(cluster.read_del_sync(driver, criterion(Exact{Value{2ll}},
                                                      AnyField{}))
                  .has_value());

  // Crash the member mid-insert: the store gcast is in flight when the
  // replica dies, so the survivor finishes the operation alone.
  cluster.runtime(MachineId{3}).insert(driver, task(100));
  cluster.crash(victim);
  cluster.settle_for(200);  // failure detection expels the victim
  ASSERT_FALSE(cluster.server(victim).supports(cls));
  ASSERT_EQ(cluster.server(survivor).live_count(cls), 6u);

  // More traffic while the victim is down — all of it must reach the joiner
  // through the state transfer, not through missed gcasts.
  for (std::int64_t key = 6; key < 9; ++key) {
    ASSERT_TRUE(cluster.insert_sync(driver, task(key)));
  }
  ASSERT_TRUE(cluster.read_del_sync(driver, criterion(Exact{Value{7ll}},
                                                      AnyField{}))
                  .has_value());

  bool initialized = false;
  cluster.recover(victim, [&initialized] { initialized = true; });
  cluster.settle();
  ASSERT_TRUE(initialized);
  ASSERT_FALSE(cluster.is_initializing(victim));

  expect_replicas_equal(cluster.server(survivor), cluster.server(victim),
                        cls, 100);
  const auto check =
      semantics::check_history(cluster.history(), cluster.run_context());
  EXPECT_TRUE(check.ok()) << (check.violations.empty()
                                  ? ""
                                  : check.violations.front());
}

TEST(RecoveryStateTransferTest, OpsDuringOutageRetryOrTimeoutExplicitly) {
  ClusterConfig cfg;
  cfg.machines = 3;
  cfg.lambda = 1;
  cfg.vsync.retransmit_timeout = 100;
  cfg.runtime.retry_backoff = 150;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();  // wg(task) = {m0, m1}
  const ProcessId driver = cluster.process(MachineId{2});
  PasoRuntime& home = cluster.runtime(MachineId{2});

  // Blackout: every message *to* both write-group members vanishes for a
  // while. An op with a deadline inside the window must surface kTimeout —
  // after having retried — instead of hanging.
  const sim::SimTime now = cluster.simulator().now();
  cluster.network().set_drop_window(MachineId{0}, now + 1500);
  cluster.network().set_drop_window(MachineId{1}, now + 1500);

  std::vector<OpReport> reports;
  home.insert_robust(driver, task(1),
                     [&reports](OpReport r) { reports.push_back(r); },
                     now + 600);
  cluster.settle_for(700);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].status, OpStatus::kTimeout);
  EXPECT_GE(reports[0].attempts, 2u) << "op never retried inside the window";
  EXPECT_EQ(home.inflight(), 0u) << "timed-out op still in flight";
  EXPECT_GE(home.timeouts(), 1u);

  // An op whose deadline reaches past the window retries until the group is
  // reachable again and completes.
  home.insert_robust(driver, task(2),
                     [&reports](OpReport r) { reports.push_back(r); },
                     now + 4000);
  cluster.settle_for(3000);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[1].status, OpStatus::kOk);
  EXPECT_GE(reports[1].attempts, 2u);
  EXPECT_EQ(home.inflight(), 0u);

  cluster.settle();
  const auto check =
      semantics::check_history(cluster.history(), cluster.run_context());
  EXPECT_TRUE(check.ok()) << (check.violations.empty()
                                  ? ""
                                  : check.violations.front());
}

TEST(RecoveryStateTransferTest, InsertRetriesAreIdempotent) {
  ClusterConfig cfg;
  cfg.machines = 3;
  cfg.lambda = 1;
  cfg.runtime.retry_backoff = 50;  // retry long before the response arrives
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  const ClassId cls{0};
  const ProcessId driver = cluster.process(MachineId{2});
  PasoRuntime& home = cluster.runtime(MachineId{2});

  // Slow the response path back to the issuer so the runtime re-sends the
  // same StoreMsg; the write group must refuse the duplicate.
  cluster.network().set_delay_window(MachineId{2},
                                     cluster.simulator().now() + 500, 400);

  std::vector<OpReport> reports;
  home.insert_robust(driver, task(7),
                     [&reports](OpReport r) { reports.push_back(r); });
  cluster.settle();

  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].status, OpStatus::kOk);
  EXPECT_GE(reports[0].attempts, 2u) << "delay window never forced a retry";
  std::uint64_t refused = 0;
  for (std::uint32_t m = 0; m < cfg.machines; ++m) {
    refused += cluster.server(MachineId{m}).duplicates_refused();
  }
  EXPECT_GE(refused, 1u) << "no server saw the duplicate store";
  EXPECT_EQ(cluster.server(MachineId{0}).live_count(cls), 1u);
  EXPECT_EQ(cluster.server(MachineId{1}).live_count(cls), 1u);

  const auto check =
      semantics::check_history(cluster.history(), cluster.run_context());
  EXPECT_TRUE(check.ok()) << (check.violations.empty()
                                  ? ""
                                  : check.violations.front());
}

TEST(RecoveryStateTransferTest, ReadDelRetriesRemoveExactlyOneObject) {
  ClusterConfig cfg;
  cfg.machines = 3;
  cfg.lambda = 1;
  cfg.runtime.retry_backoff = 50;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  const ClassId cls{0};
  const ProcessId driver = cluster.process(MachineId{2});
  PasoRuntime& home = cluster.runtime(MachineId{2});

  // Two objects match the criterion; a retried removal with the same token
  // must replay the cached decision, not delete the second one.
  ASSERT_TRUE(cluster.insert_sync(driver, task(5, "first")));
  ASSERT_TRUE(cluster.insert_sync(driver, task(5, "second")));

  cluster.network().set_delay_window(MachineId{2},
                                     cluster.simulator().now() + 500, 400);
  std::vector<OpReport> reports;
  home.read_del_robust(driver, criterion(Exact{Value{5ll}}, AnyField{}),
                       [&reports](OpReport r) { reports.push_back(r); });
  cluster.settle();

  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].status, OpStatus::kOk);
  ASSERT_TRUE(reports[0].object.has_value());
  EXPECT_GE(reports[0].attempts, 2u) << "delay window never forced a retry";
  EXPECT_EQ(cluster.server(MachineId{0}).live_count(cls), 1u)
      << "retried read&del removed both matching objects";
  EXPECT_EQ(cluster.server(MachineId{1}).live_count(cls), 1u);
  std::uint64_t refused = 0;
  for (std::uint32_t m = 0; m < cfg.machines; ++m) {
    refused += cluster.server(MachineId{m}).duplicates_refused();
  }
  EXPECT_GE(refused, 1u) << "no server replayed a cached remove decision";

  const auto check =
      semantics::check_history(cluster.history(), cluster.run_context());
  EXPECT_TRUE(check.ok()) << (check.violations.empty()
                                  ? ""
                                  : check.violations.front());
}

}  // namespace
}  // namespace paso
