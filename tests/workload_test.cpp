// Open-loop traffic engine: arrival-rate model shape, determinism, and the
// conservation law every report must obey (offered ops land in exactly one
// outcome counter — nothing double-counted, nothing silently lost).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "workload/traffic.hpp"

namespace paso {
namespace {

using workload::ArrivalModel;
using workload::TrafficConfig;
using workload::TrafficEngine;
using workload::TrafficReport;

// ---------------------------------------------------------------------------
// ArrivalModel

TEST(ArrivalModelTest, ConstantRateWithoutShaping) {
  ArrivalModel m;
  m.base_rate = 0.25;
  EXPECT_DOUBLE_EQ(m.rate_at(0), 0.25);
  EXPECT_DOUBLE_EQ(m.rate_at(123456), 0.25);
  EXPECT_DOUBLE_EQ(m.peak_rate(), 0.25);
}

TEST(ArrivalModelTest, DiurnalSinusoidSwingsAroundTheBase) {
  ArrivalModel m;
  m.base_rate = 0.1;
  m.diurnal_amplitude = 0.5;
  m.diurnal_period = 1000;
  EXPECT_NEAR(m.rate_at(0), 0.1, 1e-12);          // sin(0) = 0
  EXPECT_NEAR(m.rate_at(250), 0.15, 1e-12);       // crest: base * 1.5
  EXPECT_NEAR(m.rate_at(750), 0.05, 1e-12);       // trough: base * 0.5
  EXPECT_NEAR(m.peak_rate(), 0.15, 1e-12);
}

TEST(ArrivalModelTest, FlashCrowdMultipliesOnlyInsideItsWindow) {
  ArrivalModel m;
  m.base_rate = 0.1;
  m.flash_crowds.push_back({/*start=*/100, /*duration=*/50, /*multiplier=*/8});
  EXPECT_DOUBLE_EQ(m.rate_at(99), 0.1);
  EXPECT_DOUBLE_EQ(m.rate_at(100), 0.8);
  EXPECT_DOUBLE_EQ(m.rate_at(149), 0.8);
  EXPECT_DOUBLE_EQ(m.rate_at(150), 0.1);
  // The majorant covers the crowd even when sampling outside the window.
  EXPECT_DOUBLE_EQ(m.peak_rate(), 0.8);
}

TEST(ArrivalModelTest, PeakRateDominatesEverySample) {
  ArrivalModel m;
  m.base_rate = 0.02;
  m.diurnal_amplitude = 0.8;
  m.diurnal_period = 7000;
  m.flash_crowds.push_back({2000, 1500, 5});
  m.flash_crowds.push_back({2500, 400, 3});
  const double peak = m.peak_rate();
  for (sim::SimTime t = 0; t < 10000; t += 13) {
    ASSERT_LE(m.rate_at(t), peak) << "t=" << t;
  }
}

// ---------------------------------------------------------------------------
// TrafficEngine on a live cluster

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 1},
  });
}

TrafficConfig small_traffic(std::uint64_t seed) {
  TrafficConfig cfg;
  cfg.seed = seed;
  cfg.arrivals.base_rate = 0.002;
  cfg.duration = 100'000;
  cfg.sessions = 1'000'000;  // identity space only — costs nothing
  cfg.key_space = 64;
  cfg.make_tuple = [](std::uint64_t key, std::size_t payload_bytes) {
    return Tuple{Value{static_cast<std::int64_t>(key)},
                 Value{std::string(payload_bytes, 'x')}};
  };
  cfg.make_criterion = [](std::uint64_t key) {
    return criterion(Exact{Value{static_cast<std::int64_t>(key)}},
                     TypedAny{FieldType::kText});
  };
  return cfg;
}

ClusterConfig small_cluster() {
  ClusterConfig cfg;
  cfg.machines = 6;
  cfg.lambda = 1;
  cfg.record_history = false;  // millions-of-ops scale: no history ledger
  return cfg;
}

TEST(TrafficEngineTest, ReportObeysTheConservationLaw) {
  Cluster cluster(task_schema(), small_cluster());
  cluster.assign_basic_support();
  TrafficEngine engine(cluster, small_traffic(7));
  const TrafficReport r = engine.run();

  EXPECT_GT(r.offered, 50u);  // ~0.002 * 100k = 200 expected arrivals
  EXPECT_EQ(r.offered, r.ok + r.failed + r.timed_out + r.degraded +
                           r.overloaded + r.orphaned);
  EXPECT_EQ(r.skipped, 0u);   // nobody crashed
  EXPECT_EQ(r.orphaned, 0u);  // ditto
  EXPECT_GT(r.ok, 0u);
  EXPECT_DOUBLE_EQ(r.elapsed, 100'000.0);
  EXPECT_GT(r.goodput(), 0.0);
  // Completed ops all recorded a latency sample.
  EXPECT_EQ(r.latency.count(), r.ok + r.failed);
  EXPECT_FALSE(std::isnan(r.p50()));
  EXPECT_GE(r.p99(), r.p50());
  EXPECT_GE(r.p999(), r.p99());
}

TEST(TrafficEngineTest, SameSeedReplaysBitForBit) {
  const auto run_once = [] {
    Cluster cluster(task_schema(), small_cluster());
    cluster.assign_basic_support();
    TrafficEngine engine(cluster, small_traffic(42));
    const TrafficReport r = engine.run();
    return std::tuple{r.offered, r.ok,  r.failed,
                      r.timed_out, r.p50(), r.p99(),
                      cluster.ledger().total_msg_cost()};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(TrafficEngineTest, DifferentSeedsDiverge) {
  const auto run_once = [](std::uint64_t seed) {
    Cluster cluster(task_schema(), small_cluster());
    cluster.assign_basic_support();
    TrafficEngine engine(cluster, small_traffic(seed));
    const TrafficReport r = engine.run();
    return std::pair{r.offered, cluster.ledger().total_msg_cost()};
  };
  EXPECT_NE(run_once(1), run_once(2));
}

TEST(TrafficEngineTest, FlashCrowdRaisesOfferedLoad) {
  TrafficConfig quiet = small_traffic(9);
  TrafficConfig crowded = small_traffic(9);
  crowded.arrivals.flash_crowds.push_back(
      {/*start=*/20'000, /*duration=*/40'000, /*multiplier=*/6});

  const auto offered_with = [](const TrafficConfig& cfg) {
    Cluster cluster(task_schema(), small_cluster());
    cluster.assign_basic_support();
    TrafficEngine engine(cluster, cfg);
    return engine.run().offered;
  };
  const std::uint64_t base = offered_with(quiet);
  const std::uint64_t crowd = offered_with(crowded);
  // The crowd multiplies 40% of the horizon by 6x: ~3x total volume.
  EXPECT_GT(crowd, base * 2);
}

TEST(TrafficEngineTest, ZipfKeysAreSkewedTowardTheHead) {
  // Not an engine test per se, but the engine's skew knob rests on it: the
  // head of a Zipf(0.99) distribution must dominate the tail.
  Rng rng(5);
  std::size_t head = 0;
  constexpr int kDraws = 4000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.zipf(1024, 0.99) < 8) ++head;
  }
  // Under uniform choice the first 8 of 1024 keys get ~0.8% of draws;
  // Zipf(0.99) concentrates roughly a third of the mass there.
  EXPECT_GT(head, kDraws / 5);
}

TEST(TrafficEngineTest, CrashedHomeMachineFailsOverToTheNextLiveOne) {
  Cluster cluster(task_schema(), small_cluster());
  cluster.assign_basic_support();
  cluster.crash(MachineId{2});
  cluster.settle();

  TrafficConfig cfg = small_traffic(11);
  TrafficEngine engine(cluster, cfg);
  const TrafficReport r = engine.run();
  // Sessions homed on machine 2 re-resolve instead of being skipped.
  EXPECT_EQ(r.skipped, 0u);
  EXPECT_GT(r.ok, 0u);
  EXPECT_EQ(r.offered, r.ok + r.failed + r.timed_out + r.degraded +
                           r.overloaded + r.orphaned);
}

TEST(TrafficEngineTest, AdmissionControlSurfacesOverloadedInTheReport) {
  ClusterConfig cc = small_cluster();
  cc.runtime.admission = AdmissionMode::kReject;
  cc.runtime.admission_limit = 1;
  Cluster cluster(task_schema(), cc);
  cluster.assign_basic_support();

  TrafficConfig cfg = small_traffic(13);
  cfg.arrivals.base_rate = 0.2;  // far past what limit=1 can admit
  cfg.duration = 20'000;
  TrafficEngine engine(cluster, cfg);
  const TrafficReport r = engine.run();
  EXPECT_GT(r.overloaded, 0u);
  EXPECT_GT(r.shed_rate(), 0.0);
  EXPECT_EQ(r.offered, r.ok + r.failed + r.timed_out + r.degraded +
                           r.overloaded + r.orphaned);
}

}  // namespace
}  // namespace paso
