// Tests for the stochastic fault injector: it must respect the lambda
// fault model, the detection-delay floor, and immunity lists — and a soak
// run under it must keep the system semantically sound.
#include <gtest/gtest.h>

#include "adaptive/basic_policy.hpp"
#include "paso/fault_injector.hpp"
#include "semantics/checker.hpp"

namespace paso {
namespace {

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 2},
  });
}

Tuple task(std::int64_t key) { return {Value{key}, Value{std::string{"v"}}}; }

TEST(FaultInjectorTest, NeverExceedsLambdaSimultaneousFailures) {
  ClusterConfig cfg;
  cfg.machines = 8;
  cfg.lambda = 2;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();

  FaultInjector::Options options;
  options.mean_time_between_failures = 300;  // aggressive
  options.mean_repair_time = 2000;           // slow repairs: pressure on cap
  options.seed = 7;
  FaultInjector injector(cluster, options);
  injector.start();

  for (int step = 0; step < 200; ++step) {
    cluster.settle_for(250);
    std::size_t down = 0;
    for (std::uint32_t m = 0; m < cluster.machine_count(); ++m) {
      if (!cluster.is_up(MachineId{m})) ++down;
    }
    ASSERT_LE(down, cfg.lambda) << "step " << step;
    ASSERT_TRUE(cluster.fault_tolerance_condition_holds()) << "step " << step;
  }
  injector.stop();
  cluster.settle();
  EXPECT_GT(injector.crashes(), 10u);
  EXPECT_EQ(injector.crashes(), injector.recoveries());
}

TEST(FaultInjectorTest, ImmuneMachinesNeverCrash) {
  ClusterConfig cfg;
  cfg.machines = 6;
  cfg.lambda = 1;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();

  FaultInjector::Options options;
  options.mean_time_between_failures = 200;
  options.immune = {0, 1};
  options.seed = 3;
  FaultInjector injector(cluster, options);
  injector.start();
  bool immune_stayed_up = true;
  for (int step = 0; step < 100; ++step) {
    cluster.settle_for(300);
    immune_stayed_up = immune_stayed_up && cluster.is_up(MachineId{0}) &&
                       cluster.is_up(MachineId{1});
  }
  injector.stop();
  cluster.settle();
  EXPECT_TRUE(immune_stayed_up);
  EXPECT_GT(injector.crashes(), 5u);
}

TEST(FaultInjectorTest, RejectsMaxDownBeyondLambda) {
  ClusterConfig cfg;
  cfg.machines = 6;
  cfg.lambda = 1;
  Cluster cluster(task_schema(), cfg);
  FaultInjector::Options options;
  options.max_down = 3;
  EXPECT_THROW(FaultInjector(cluster, options), InvariantViolation);
}

/// Soak: continuous workload + continuous fault injection, then the axioms.
class SoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoakTest, WorkloadUnderContinuousFaultsStaysSound) {
  ClusterConfig cfg;
  cfg.machines = 7;
  cfg.lambda = 2;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  adaptive::install_basic_policies(cluster,
                                   adaptive::BasicPolicyOptions{8, 1, false});

  FaultInjector::Options options;
  options.mean_time_between_failures = 800;
  options.mean_repair_time = 500;
  options.immune = {6};  // the workload driver's machine stays up
  options.seed = GetParam();
  FaultInjector injector(cluster, options);
  injector.start();

  Rng rng(GetParam() * 31 + 5);
  const ProcessId driver = cluster.process(MachineId{6});
  int ops = 0;
  for (int round = 0; round < 120; ++round) {
    const std::int64_t key = static_cast<std::int64_t>(rng.index(10));
    const double dice = rng.uniform01();
    if (dice < 0.5) {
      cluster.insert_sync(driver, task(key));
    } else if (dice < 0.8) {
      cluster.read_sync(driver,
                        criterion(Exact{Value{key}}, AnyField{}));
    } else {
      cluster.read_del_sync(driver,
                            criterion(Exact{Value{key}}, AnyField{}));
    }
    ++ops;
    cluster.settle_for(rng.index(200));
  }
  injector.stop();
  cluster.settle();

  EXPECT_GT(injector.crashes(), 0u);
  const auto check = semantics::check_history(cluster.history());
  EXPECT_TRUE(check.ok()) << "seed " << GetParam() << ": "
                          << (check.violations.empty()
                                  ? ""
                                  : check.violations.front());
  EXPECT_EQ(ops, 120);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5));

}  // namespace
}  // namespace paso
