// Regression lock on the Figure 1 reproduction (E1): the cost table's
// *exact* relationships, checked as assertions so any change to the
// network, group or server layers that perturbs the paper's cost structure
// fails CI rather than silently skewing the bench output.
#include <gtest/gtest.h>

#include "paso/cluster.hpp"

namespace paso {
namespace {

constexpr Cost kAlpha = 10.0;
constexpr Cost kBeta = 1.0;

Schema task_schema() {
  return Schema({ClassSpec{"t", {FieldType::kInt, FieldType::kText}, 0, 1}});
}

Tuple payload(std::int64_t key) {
  return {Value{key}, Value{std::string(16, 'x')}};
}

SearchCriterion by_key(std::int64_t key) {
  return criterion(Exact{Value{key}}, TypedAny{FieldType::kText});
}

class Table1Regression : public ::testing::TestWithParam<std::size_t> {
 protected:
  /// Cluster with a write group of exactly g machines and one spare.
  std::unique_ptr<Cluster> make_cluster() {
    const std::size_t g = GetParam();
    ClusterConfig config;
    config.machines = g + 2;
    config.lambda = g - 1;
    config.cost_model = CostModel{kAlpha, kBeta};
    auto cluster = std::make_unique<Cluster>(task_schema(), config);
    cluster->assign_basic_support();
    const ProcessId loader =
        cluster->process(cluster->basic_support(ClassId{0}).front());
    for (int i = 0; i < 20; ++i) {
      cluster->insert_sync(loader, payload(1000 + i));
    }
    cluster->ledger().reset();
    return cluster;
  }

  MachineId outside() const {
    return MachineId{static_cast<std::uint32_t>(GetParam())};
  }
};

TEST_P(Table1Regression, InsertRow) {
  const std::size_t g = GetParam();
  auto cluster = make_cluster();
  const ProcessId p = cluster->process(outside());
  const auto before = cluster->ledger().snapshot();
  ASSERT_TRUE(cluster->insert_sync(p, payload(1)));
  const CostTriple cost = cluster->ledger().since(before);
  // work = g * I(l), time = I(l) = 1 — exact.
  EXPECT_DOUBLE_EQ(cost.work, static_cast<Cost>(g));
  EXPECT_DOUBLE_EQ(cost.time, 1.0);
  // msg = g(alpha + beta*|m|) + (g-1)alpha + alpha, |m| = |o| + 4.
  PasoObject sample;
  sample.fields = payload(1);
  const Cost msg_bytes = static_cast<Cost>(sample.wire_size() + 4);
  EXPECT_DOUBLE_EQ(cost.msg_cost,
                   g * (kAlpha + kBeta * msg_bytes) + (g - 1) * kAlpha +
                       kAlpha);
}

TEST_P(Table1Regression, LocalReadRow) {
  auto cluster = make_cluster();
  const MachineId member = cluster->basic_support(ClassId{0}).front();
  const auto before = cluster->ledger().snapshot();
  ASSERT_TRUE(cluster->read_sync(cluster->process(member), by_key(1000))
                  .has_value());
  const CostTriple cost = cluster->ledger().since(before);
  EXPECT_DOUBLE_EQ(cost.msg_cost, 0.0);  // Figure 1: msg-cost 0
  EXPECT_DOUBLE_EQ(cost.time, 1.0);      // Q(l)
  EXPECT_DOUBLE_EQ(cost.work, 1.0);      // Q(l), one server
}

TEST_P(Table1Regression, RemoteReadRow) {
  const std::size_t g = GetParam();
  ClusterConfig config;
  config.machines = g + 2;
  config.lambda = g - 1;
  config.cost_model = CostModel{kAlpha, kBeta};
  config.runtime.use_read_groups = false;  // full write group, as in the row
  auto cluster = std::make_unique<Cluster>(task_schema(), config);
  cluster->assign_basic_support();
  const ProcessId loader =
      cluster->process(cluster->basic_support(ClassId{0}).front());
  cluster->insert_sync(loader, payload(1000));
  cluster->ledger().reset();

  const ProcessId p = cluster->process(outside());
  const SearchCriterion sc = by_key(1000);
  const auto before = cluster->ledger().snapshot();
  const auto found = cluster->read_sync(p, sc);
  ASSERT_TRUE(found.has_value());
  const CostTriple cost = cluster->ledger().since(before);
  EXPECT_DOUBLE_EQ(cost.work, static_cast<Cost>(g));  // g * Q(l)
  EXPECT_DOUBLE_EQ(cost.time, 1.0);
  // msg = g(alpha + beta(|sc|+4)) + (g-1)alpha + alpha + beta|r|.
  const Cost fan = g * (kAlpha + kBeta * (sc.wire_size() + 4));
  const Cost acks = (g - 1) * kAlpha;
  const Cost resp = kAlpha + kBeta * found->wire_size();
  EXPECT_DOUBLE_EQ(cost.msg_cost, fan + acks + resp);
}

TEST_P(Table1Regression, ReadDelRow) {
  const std::size_t g = GetParam();
  auto cluster = make_cluster();
  const ProcessId p = cluster->process(outside());
  const SearchCriterion sc = by_key(1000);
  const auto before = cluster->ledger().snapshot();
  const auto taken = cluster->read_del_sync(p, sc);
  ASSERT_TRUE(taken.has_value());
  const CostTriple cost = cluster->ledger().since(before);
  EXPECT_DOUBLE_EQ(cost.work, static_cast<Cost>(g));  // g * D(l)
  EXPECT_DOUBLE_EQ(cost.time, 1.0);
  // The remove header is 12 bytes: class id plus the 8-byte idempotence
  // token replicas use to dedup retried removals.
  const Cost fan = g * (kAlpha + kBeta * (sc.wire_size() + 12));
  const Cost acks = (g - 1) * kAlpha;
  const Cost resp = kAlpha + kBeta * taken->wire_size();
  EXPECT_DOUBLE_EQ(cost.msg_cost, fan + acks + resp);
}

TEST_P(Table1Regression, ReadGroupRowCapsAtLambdaPlusOne) {
  const std::size_t g = GetParam();
  if (g < 3) return;  // needs wg strictly larger than rg to be interesting
  ClusterConfig config;
  config.machines = g + 2;
  config.lambda = 1;  // rg size 2 regardless of wg size
  config.cost_model = CostModel{kAlpha, kBeta};
  auto cluster = std::make_unique<Cluster>(task_schema(), config);
  cluster->assign_basic_support();
  for (std::uint32_t m = 0; m < g; ++m) {
    cluster->runtime(MachineId{m}).request_join(ClassId{0});
  }
  cluster->settle();
  const ProcessId loader = cluster->process(MachineId{0});
  cluster->insert_sync(loader, payload(1000));
  cluster->ledger().reset();
  const ProcessId p =
      cluster->process(MachineId{static_cast<std::uint32_t>(g + 1)});
  const auto before = cluster->ledger().snapshot();
  ASSERT_TRUE(cluster->read_sync(p, by_key(1000)).has_value());
  // Work reflects rg = lambda + 1 = 2 servers, independent of |wg| = g.
  EXPECT_DOUBLE_EQ(cluster->ledger().since(before).work, 2.0);
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, Table1Regression,
                         ::testing::Values<std::size_t>(2, 3, 5, 8),
                         [](const auto& info) {
                           return "g" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace paso
