// Differential transport harness: replay the same deterministic op trace on
// the virtual-time simulated bus and on the real-clock threaded transport,
// then assert the two runs are indistinguishable to a client — identical
// per-op results (acks, found objects, object identities) and a model-cost
// ledger that reconciles exactly. A sequential single-client trace with
// batching off and retransmission disabled produces the same message set on
// both fabrics, so every gated bench axis (msg_cost, work, bytes) must agree
// to the last bit; only wall-clock timing may differ.
//
// tools/trace_diff is the command-line twin of this test (parameterized
// machines/ops/seed, prints the reconciliation table).
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "paso/cluster.hpp"
#include "paso/object.hpp"

namespace paso {
namespace {

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 1},
  });
}

struct TraceOp {
  enum class Kind { kInsert, kRead, kReadDel };
  Kind kind;
  std::uint32_t issuer;  // machine index
  std::int64_t key;
};

/// Deterministic single-client trace: inserts seed the keyspace, reads hit
/// live keys (and sometimes a never-inserted key, exercising the fail
/// path), read-dels consume live keys so later reads of them must miss on
/// BOTH transports or the runs diverge visibly.
std::vector<TraceOp> make_trace(std::uint64_t seed, std::size_t ops,
                                std::size_t machines) {
  Rng rng(seed);
  std::vector<TraceOp> trace;
  std::vector<std::int64_t> live;
  std::int64_t next_key = 0;
  for (std::size_t i = 0; i < ops; ++i) {
    const std::uint32_t issuer =
        static_cast<std::uint32_t>(rng.uniform(0, machines - 1));
    const std::uint64_t roll = rng.uniform(0, 99);
    if (live.empty() || roll < 45) {
      trace.push_back({TraceOp::Kind::kInsert, issuer, next_key});
      live.push_back(next_key++);
    } else if (roll < 55) {
      // Read of a key that was never inserted: the miss path.
      trace.push_back({TraceOp::Kind::kRead, issuer, -1 - next_key});
    } else if (roll < 85) {
      const std::size_t pick = rng.uniform(0, live.size() - 1);
      trace.push_back({TraceOp::Kind::kRead, issuer, live[pick]});
    } else {
      const std::size_t pick = rng.uniform(0, live.size() - 1);
      trace.push_back({TraceOp::Kind::kReadDel, issuer, live[pick]});
      live.erase(live.begin() + pick);
    }
  }
  return trace;
}

/// Everything a client can observe from one op. Inserts fill `ok`;
/// reads/read-dels additionally stringify the found object (identity +
/// fields) so payload divergence is caught, not just hit/miss divergence.
struct OpOutcome {
  bool ok = false;
  std::string object;

  friend bool operator==(const OpOutcome&, const OpOutcome&) = default;
};

struct RunResult {
  std::vector<OpOutcome> outcomes;
  Cost msg_cost = 0;
  Cost work = 0;
  std::map<std::string, net::TrafficStats> per_tag;
};

RunResult replay(TransportKind kind, const std::vector<TraceOp>& trace,
                 std::size_t machines) {
  ClusterConfig config;
  config.machines = machines;
  config.lambda = 1;
  config.transport = kind;
  Cluster cluster(task_schema(), config);
  cluster.assign_basic_support();

  RunResult result;
  for (const TraceOp& op : trace) {
    const ProcessId process = cluster.process(MachineId{op.issuer});
    OpOutcome outcome;
    switch (op.kind) {
      case TraceOp::Kind::kInsert:
        outcome.ok = cluster.insert_sync(
            process, Tuple{Value{op.key}, Value{std::string(16, 'x')}});
        break;
      case TraceOp::Kind::kRead:
      case TraceOp::Kind::kReadDel: {
        const SearchCriterion sc =
            criterion(Exact{Value{op.key}}, TypedAny{FieldType::kText});
        const SearchResponse found = op.kind == TraceOp::Kind::kRead
                                         ? cluster.read_sync(process, sc)
                                         : cluster.read_del_sync(process, sc);
        outcome.ok = found.has_value();
        if (found) outcome.object = object_to_string(*found);
        break;
      }
    }
    result.outcomes.push_back(std::move(outcome));
  }
  cluster.settle();
  // Ledger reads happen under the transport's exclusivity guard; trivial
  // for the bus, the stack lock for the threaded fabric.
  cluster.transport().run_exclusive([&] {
    result.msg_cost = cluster.ledger().total_msg_cost();
    result.work = cluster.ledger().total_work();
    result.per_tag = cluster.ledger().per_tag();
  });
  return result;
}

void expect_identical(const RunResult& sim, const RunResult& threaded,
                      const std::vector<TraceOp>& trace) {
  ASSERT_EQ(sim.outcomes.size(), threaded.outcomes.size());
  for (std::size_t i = 0; i < sim.outcomes.size(); ++i) {
    EXPECT_EQ(sim.outcomes[i], threaded.outcomes[i])
        << "op " << i << " (kind " << static_cast<int>(trace[i].kind)
        << ", key " << trace[i].key << ") diverged: sim={"
        << sim.outcomes[i].ok << ", " << sim.outcomes[i].object
        << "} threaded={" << threaded.outcomes[i].ok << ", "
        << threaded.outcomes[i].object << "}";
  }
  // The model-cost ledger reconciles exactly: same messages, same bytes,
  // same alpha+beta charges, same per-machine processing work.
  EXPECT_DOUBLE_EQ(sim.msg_cost, threaded.msg_cost);
  EXPECT_DOUBLE_EQ(sim.work, threaded.work);
  ASSERT_EQ(sim.per_tag.size(), threaded.per_tag.size());
  for (const auto& [tag, stats] : sim.per_tag) {
    ASSERT_TRUE(threaded.per_tag.contains(tag)) << "tag only in sim: " << tag;
    const net::TrafficStats& other = threaded.per_tag.at(tag);
    EXPECT_EQ(stats.messages, other.messages) << "tag " << tag;
    EXPECT_EQ(stats.bytes, other.bytes) << "tag " << tag;
    EXPECT_DOUBLE_EQ(stats.cost, other.cost) << "tag " << tag;
  }
}

TEST(TransportDiff, MixedTraceMatchesAcrossTransports) {
  const std::vector<TraceOp> trace = make_trace(0xD1FF, 80, 4);
  const RunResult sim = replay(TransportKind::kSim, trace, 4);
  const RunResult threaded = replay(TransportKind::kThreaded, trace, 4);
  expect_identical(sim, threaded, trace);
  // Sanity: the trace actually generated traffic and found objects.
  EXPECT_GT(sim.msg_cost, 0.0);
  bool any_hit = false;
  for (const OpOutcome& o : sim.outcomes) any_hit |= !o.object.empty();
  EXPECT_TRUE(any_hit);
}

TEST(TransportDiff, SeedSweepLedgersReconcile) {
  for (const std::uint64_t seed : {7ull, 99ull, 20260809ull}) {
    const std::vector<TraceOp> trace = make_trace(seed, 40, 3);
    const RunResult sim = replay(TransportKind::kSim, trace, 3);
    const RunResult threaded = replay(TransportKind::kThreaded, trace, 3);
    expect_identical(sim, threaded, trace);
  }
}

}  // namespace
}  // namespace paso
