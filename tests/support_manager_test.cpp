// Tests for the distributed support-selection manager: failed basic-support
// machines are replaced by recruits that pay the g-join state copy, and the
// fault-tolerance condition keeps holding.
#include <gtest/gtest.h>

#include "adaptive/basic_policy.hpp"
#include "adaptive/support_manager.hpp"
#include "semantics/checker.hpp"

namespace paso::adaptive {
namespace {

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 1},
  });
}

Tuple task(std::int64_t key) { return {Value{key}, Value{std::string{"v"}}}; }

SearchCriterion by_key(std::int64_t key) {
  return criterion(Exact{Value{key}}, TypedAny{FieldType::kText});
}

class SupportManagerTest : public ::testing::Test {
 protected:
  static ClusterConfig config() {
    ClusterConfig cfg;
    cfg.machines = 6;
    cfg.lambda = 1;
    return cfg;
  }
};

TEST_F(SupportManagerTest, FailedSupportMemberIsReplaced) {
  Cluster cluster(task_schema(), config());
  cluster.assign_basic_support();
  SupportManager manager(cluster, SupportManager::Rule::kLrf);

  const ClassId cls{0};
  const auto original = cluster.basic_support(cls);  // {M0, M1}
  const ProcessId writer = cluster.process(original[1]);
  for (int k = 0; k < 8; ++k) {
    ASSERT_TRUE(cluster.insert_sync(writer, task(k)));
  }

  cluster.crash(original[0]);
  cluster.settle();  // failure detection completes
  manager.on_machine_failed(original[0]);
  cluster.settle();  // recruit joins and receives state

  const auto support = cluster.basic_support(cls);
  EXPECT_EQ(support.size(), 2u);
  EXPECT_EQ(std::count(support.begin(), support.end(), original[0]), 0);
  EXPECT_EQ(manager.recruitments(), 1u);
  // The recruit holds a full replica.
  for (const MachineId m : support) {
    EXPECT_EQ(cluster.server(m).live_count(cls), 8u) << m;
  }
  EXPECT_TRUE(cluster.fault_tolerance_condition_holds());
}

TEST_F(SupportManagerTest, LrfPrefersNeverFailedMachines) {
  Cluster cluster(task_schema(), config());
  cluster.assign_basic_support();
  SupportManager manager(cluster, SupportManager::Rule::kLrf);
  const ProcessId writer = cluster.process(MachineId{1});
  ASSERT_TRUE(cluster.insert_sync(writer, task(1)));

  // M2 fails (non-support) and recovers: it is now "recently failed".
  cluster.crash(MachineId{2});
  cluster.settle();
  manager.on_machine_failed(MachineId{2});
  cluster.recover(MachineId{2});
  cluster.settle();

  // Support member M0 fails: LRF must recruit a never-failed machine, not M2.
  cluster.crash(MachineId{0});
  cluster.settle();
  manager.on_machine_failed(MachineId{0});
  cluster.settle();
  const auto support = cluster.basic_support(ClassId{0});
  EXPECT_EQ(std::count(support.begin(), support.end(), MachineId{2}), 0);
}

TEST_F(SupportManagerTest, DataSurvivesRollingFailures) {
  Cluster cluster(task_schema(), config());
  cluster.assign_basic_support();
  SupportManager manager(cluster, SupportManager::Rule::kLrf);

  const ProcessId writer = cluster.process(MachineId{5});
  for (int k = 0; k < 12; ++k) {
    ASSERT_TRUE(cluster.insert_sync(writer, task(k)));
  }

  // Roll failures through four machines, one at a time (k = 1 <= lambda at
  // every instant), recruiting replacements and recovering the failed one.
  for (std::uint32_t round = 0; round < 4; ++round) {
    const auto support = cluster.basic_support(ClassId{0});
    const MachineId victim = support[round % 2];
    cluster.crash(victim);
    cluster.settle();
    manager.on_machine_failed(victim);
    cluster.settle();
    EXPECT_TRUE(cluster.fault_tolerance_condition_holds());
    cluster.recover(victim);
    cluster.settle();
  }

  for (int k = 0; k < 12; ++k) {
    EXPECT_TRUE(
        cluster.read_sync(cluster.process(MachineId{5}), by_key(k))
            .has_value())
        << k;
  }
  const auto check = semantics::check_history(cluster.history());
  EXPECT_TRUE(check.ok()) << check.violations.front();
}

TEST_F(SupportManagerTest, ComposesWithAdaptiveReplication) {
  // The paper notes LRF alone "does not permit expanding the write group";
  // composition solves it: SupportManager maintains B(C) under failures
  // while the Basic counter grows/shrinks the non-basic membership.
  Cluster cluster(task_schema(), config());
  cluster.assign_basic_support();
  adaptive::install_basic_policies(cluster,
                                   adaptive::BasicPolicyOptions{6, 1, false});
  SupportManager manager(cluster, SupportManager::Rule::kLrf);

  const ClassId cls{0};
  const ProcessId writer = cluster.process(cluster.basic_support(cls)[1]);
  for (int k = 0; k < 6; ++k) {
    ASSERT_TRUE(cluster.insert_sync(writer, task(k)));
  }

  // Read pressure from M5 (outside the support): the counter joins it.
  const ProcessId reader = cluster.process(MachineId{5});
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cluster.read_sync(reader, by_key(1)).has_value());
  }
  cluster.settle();
  ASSERT_TRUE(cluster.runtime(MachineId{5}).is_member(cls));

  // A basic member fails; LRF recruits a replacement. The adaptive member
  // must survive the reshuffle and keep serving locally.
  const MachineId victim = cluster.basic_support(cls)[0];
  cluster.crash(victim);
  cluster.settle();
  manager.on_machine_failed(victim);
  cluster.settle();
  EXPECT_TRUE(cluster.fault_tolerance_condition_holds());
  EXPECT_TRUE(cluster.runtime(MachineId{5}).is_member(cls));
  const auto before = cluster.ledger().snapshot();
  ASSERT_TRUE(cluster.read_sync(reader, by_key(2)).has_value());
  EXPECT_DOUBLE_EQ(cluster.ledger().since(before).msg_cost, 0.0);

  // Update pressure: the adaptive member leaves again; B(C) stays intact.
  for (int k = 10; k < 20; ++k) {
    ASSERT_TRUE(cluster.insert_sync(writer, task(k)));
  }
  cluster.settle();
  EXPECT_FALSE(cluster.runtime(MachineId{5}).is_member(cls));
  const auto support = cluster.basic_support(cls);
  for (const MachineId m : support) {
    EXPECT_TRUE(cluster.groups().is_member(
        cluster.schema().group_name(cls), m))
        << m;
  }
  const auto check = semantics::check_history(cluster.history());
  EXPECT_TRUE(check.ok()) << check.violations.front();
}

TEST_F(SupportManagerTest, RulesAreAvailableAndNamed) {
  EXPECT_STREQ(SupportManager::rule_name(SupportManager::Rule::kLrf), "LRF");
  EXPECT_STREQ(SupportManager::rule_name(SupportManager::Rule::kRoundRobin),
               "ROUND-ROBIN");
  EXPECT_STREQ(SupportManager::rule_name(SupportManager::Rule::kRandom),
               "RANDOM");
}

}  // namespace
}  // namespace paso::adaptive
