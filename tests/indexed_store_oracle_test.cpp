// Differential oracle for the query engine: LinearStore — a plain
// age-ordered scan with no index or plan to get wrong — is the executable
// spec. Random operation sequences with random criteria must produce
// byte-identical results on every other store family: same found object,
// same removed object (the OLDEST match, or the k-th ranked match for TopK
// criteria), same sizes, same snapshots.
//
// Families checked against the spec, all fed identical workloads:
//   HashStore(0), OrderedStore(0), CompositeStore(0),
//   IndexedStore(fields) in plain mode, IndexedStore(fields) in ordered
//   mode (sorted twins + selectivity planner).
// Criteria cover Exact / OneOf-with-duplicates / IntRange / RealRange /
// TextPrefix / TypedAny / AnyField plus the query-engine additions: Range
// with open and exclusive bounds (including type-mismatched bounds that
// match nothing) and ranked TopK reads (both directions, k past the match
// count, rank fields out of range). Compound multi-field criteria exercise
// the selectivity planner's path ordering and arity early-out.
//
// Probe accounting must agree with itself: replaying a seed produces the
// exact same per-family probe totals (plans are deterministic), pinned by
// running every workload twice.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "storage/composite_store.hpp"
#include "storage/hash_store.hpp"
#include "storage/indexed_store.hpp"
#include "storage/linear_store.hpp"
#include "storage/ordered_store.hpp"

namespace paso::storage {
namespace {

constexpr int kSeeds = 400;
constexpr int kOpsPerSeed = 120;

/// Objects are (int, text, int): field 0 a small-int key, field 1 a short
/// text, field 2 a second small-int — so indexed fields collide heavily and
/// oldest-first tie-breaking is exercised constantly.
PasoObject random_object(Rng& rng, std::uint64_t seq) {
  PasoObject object;
  object.id = ObjectId{ProcessId{MachineId{0}, 0}, seq};
  object.fields = {
      Value{static_cast<std::int64_t>(rng.index(6))},
      Value{std::string(1, static_cast<char>('a' + rng.index(4)))},
      Value{static_cast<std::int64_t>(rng.index(3))},
  };
  return object;
}

Value random_field_value(Rng& rng, std::size_t field) {
  if (field == 1) return Value{std::string(1, 'a' + rng.index(4))};
  return Value{static_cast<std::int64_t>(rng.index(6))};
}

FieldPattern random_pattern(Rng& rng, std::size_t field) {
  switch (rng.index(7)) {
    case 0:
      return Exact{random_field_value(rng, field)};
    case 1: {
      // OneOf with deliberate duplicates: the dedup path must not change
      // which object is oldest.
      OneOf one_of;
      const std::size_t n = 1 + rng.index(4);
      for (std::size_t i = 0; i < n; ++i) {
        one_of.values.push_back(random_field_value(rng, field));
      }
      if (rng.chance(0.5) && !one_of.values.empty()) {
        one_of.values.push_back(one_of.values.front());
      }
      return one_of;
    }
    case 2: {
      const std::int64_t lo = static_cast<std::int64_t>(rng.index(6)) - 1;
      return IntRange{lo, lo + static_cast<std::int64_t>(rng.index(4))};
    }
    case 3:
      return TextPrefix{rng.chance(0.5)
                            ? std::string(1, 'a' + rng.index(4))
                            : std::string{}};
    case 4: {
      // General Range: open/closed/missing bounds in every combination,
      // including inverted and type-mismatched (match-nothing) shapes.
      Range range;
      if (rng.chance(0.8)) {
        range.lo = Bound{random_field_value(rng, field), rng.chance(0.3)};
      }
      if (rng.chance(0.8)) {
        range.hi = Bound{random_field_value(rng, field), rng.chance(0.3)};
      }
      if (rng.chance(0.1)) {
        // Cross-typed bounds: provably empty, planner must prove it too.
        range.hi = Bound{field == 1 ? Value{std::int64_t{3}}
                                    : Value{std::string{"zz"}},
                         false};
      }
      return range;
    }
    case 5:
      return TypedAny{static_cast<FieldType>(rng.index(4))};
    default:
      return AnyField{};
  }
}

SearchCriterion random_criterion(Rng& rng) {
  SearchCriterion sc;
  // Mostly arity 3 (matching the objects); occasionally a wrong arity, which
  // must match nothing on either store.
  const std::size_t arity = rng.chance(0.9) ? 3 : 2 + rng.index(3);
  for (std::size_t f = 0; f < arity; ++f) {
    sc.fields.push_back(random_pattern(rng, f));
  }
  // A quarter of the criteria are ranked reads: any rank field (sometimes
  // out of range), k occasionally past the match count, both directions.
  if (rng.chance(0.25)) {
    TopK top_k;
    top_k.field = rng.index(4);  // 3 = out of range at arity 3
    top_k.k = 1 + rng.index(5);
    top_k.descending = rng.chance(0.5);
    sc.top_k = top_k;
  }
  return sc;
}

void expect_same(const std::optional<PasoObject>& from_linear,
                 const std::optional<PasoObject>& from_other,
                 const char* family, int seed, int op) {
  ASSERT_EQ(from_linear.has_value(), from_other.has_value())
      << family << " seed " << seed << " op " << op;
  if (from_linear) {
    EXPECT_EQ(from_linear->id, from_other->id)
        << family << " seed " << seed << " op " << op;
    EXPECT_TRUE(from_linear->fields == from_other->fields)
        << family << " seed " << seed << " op " << op;
  }
}

struct Family {
  const char* name;
  std::unique_ptr<ObjectStore> store;
};

std::vector<Family> make_families(const std::vector<std::size_t>& fields) {
  std::vector<Family> families;
  families.push_back({"hash", std::make_unique<HashStore>(0)});
  families.push_back({"ordered", std::make_unique<OrderedStore>(0)});
  families.push_back({"composite", std::make_unique<CompositeStore>(0)});
  families.push_back({"indexed", std::make_unique<IndexedStore>(fields)});
  families.push_back(
      {"indexed+sorted",
       std::make_unique<IndexedStore>(fields,
                                      IndexedStore::Options{true})});
  return families;
}

/// One seeded workload against the spec store and every family. Fills
/// `probes_out` with the per-family probe totals so callers can pin replay
/// determinism. (Out-parameter because ASSERT_* needs a void function.)
void run_oracle(int seed, const std::vector<std::size_t>& indexed_fields,
                std::vector<std::uint64_t>* probes_out = nullptr) {
  Rng rng(static_cast<std::uint64_t>(seed) * 2654435761u + 17);
  LinearStore linear;
  std::vector<Family> families = make_families(indexed_fields);
  std::uint64_t next_age = 0;
  std::uint64_t next_seq = 0;
  std::vector<PasoObject> removed_pool;  // candidates for re-insertion

  for (int op = 0; op < kOpsPerSeed; ++op) {
    const double dice = rng.uniform01();
    if (dice < 0.40) {
      // Insert — sometimes re-inserting a removed object under a NEW
      // identity and age (re-insertion puts it at the back of the age
      // order; all stores must agree).
      PasoObject object;
      if (!removed_pool.empty() && rng.chance(0.3)) {
        object = removed_pool[rng.index(removed_pool.size())];
        object.id = ObjectId{ProcessId{MachineId{0}, 0}, next_seq++};
      } else {
        object = random_object(rng, next_seq++);
      }
      const std::uint64_t age = next_age++;
      linear.store(object, age);
      for (Family& family : families) family.store->store(object, age);
    } else if (dice < 0.65) {
      const SearchCriterion sc = random_criterion(rng);
      const auto from_linear = linear.find(sc);
      for (Family& family : families) {
        expect_same(from_linear, family.store->find(sc), family.name, seed,
                    op);
      }
    } else if (dice < 0.90) {
      const SearchCriterion sc = random_criterion(rng);
      const auto from_linear = linear.remove(sc);
      for (Family& family : families) {
        expect_same(from_linear, family.store->remove(sc), family.name, seed,
                    op);
      }
      if (from_linear) removed_pool.push_back(*from_linear);
    } else if (dice < 0.95) {
      // Erase by identity of a random live object (if any).
      const auto snapshot = linear.snapshot();
      if (!snapshot.empty()) {
        const ObjectId id = snapshot[rng.index(snapshot.size())].object.id;
        const bool erased = linear.erase(id);
        for (Family& family : families) {
          EXPECT_EQ(family.store->erase(id), erased)
              << family.name << " seed " << seed;
        }
      }
    } else {
      // State-transfer round trip of every family through its own
      // snapshot: contents, order and every index must survive a load.
      for (Family& family : families) {
        const auto snapshot = family.store->snapshot();
        family.store->clear();
        family.store->load(snapshot);
      }
    }
    for (Family& family : families) {
      ASSERT_EQ(family.store->size(), linear.size())
          << family.name << " seed " << seed << " op " << op;
    }
  }

  // Final sweep: snapshots agree object-for-object in age order, and
  // draining every store with a wildcard yields the same sequence.
  const auto snap_linear = linear.snapshot();
  for (Family& family : families) {
    const auto snap = family.store->snapshot();
    ASSERT_EQ(snap.size(), snap_linear.size())
        << family.name << " seed " << seed;
    for (std::size_t i = 0; i < snap.size(); ++i) {
      EXPECT_EQ(snap[i].age, snap_linear[i].age)
          << family.name << " seed " << seed;
      EXPECT_EQ(snap[i].object.id, snap_linear[i].object.id)
          << family.name << " seed " << seed;
    }
  }
  const SearchCriterion drain = criterion(AnyField{}, AnyField{}, AnyField{});
  while (true) {
    const auto from_linear = linear.remove(drain);
    for (Family& family : families) {
      expect_same(from_linear, family.store->remove(drain), family.name,
                  seed, -1);
    }
    if (!from_linear) break;
  }
  for (Family& family : families) {
    EXPECT_EQ(family.store->size(), 0u) << family.name << " seed " << seed;
  }

  if (probes_out) {
    probes_out->clear();
    probes_out->push_back(linear.match_probes());
    for (Family& family : families) {
      probes_out->push_back(family.store->match_probes());
    }
  }
}

TEST(IndexedStoreOracleTest, MatchesLinearStoreAcrossSeeds) {
  // Rotate the indexed field set so single-field, subset and full-arity
  // configurations all face the same workloads. Each seed runs twice:
  // identical probe totals pin plan determinism (probe accounting is a
  // pure function of the workload).
  const std::vector<std::vector<std::size_t>> configs{
      {0}, {0, 2}, {0, 1, 2}};
  for (int seed = 0; seed < kSeeds; ++seed) {
    const auto& config = configs[static_cast<std::size_t>(seed) % configs.size()];
    std::vector<std::uint64_t> probes;
    run_oracle(seed, config, &probes);
    if (::testing::Test::HasFatalFailure()) return;
    std::vector<std::uint64_t> replay;
    run_oracle(seed, config, &replay);
    EXPECT_EQ(probes, replay) << "probe accounting diverged on replay, seed "
                              << seed;
  }
}

TEST(IndexedStoreOracleTest, HashStoreEquivalentConfigMatchesToo) {
  // IndexedStore({0}) is the drop-in replacement for HashStore(0): same
  // workloads, reference-checked separately so a regression names it.
  for (int seed = 1000; seed < 1040; ++seed) {
    run_oracle(seed, {0});
  }
}

}  // namespace
}  // namespace paso::storage
