// Differential oracle for IndexedStore: LinearStore — a plain age-ordered
// scan with no index to get wrong — is the reference semantics. Random
// operation sequences with random criteria must produce byte-identical
// results on both stores: same found object, same removed object (the
// OLDEST match, which pins tie-breaking), same sizes, same snapshots.
// Covers Exact / OneOf-with-duplicates / IntRange / TextPrefix / TypedAny /
// AnyField criteria, remove-then-reinsert ordering, erase-by-id,
// snapshot/load and clear.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "storage/indexed_store.hpp"
#include "storage/linear_store.hpp"

namespace paso::storage {
namespace {

constexpr int kSeeds = 220;
constexpr int kOpsPerSeed = 120;

/// Objects are (int, text, int): field 0 a small-int key, field 1 a short
/// text, field 2 a second small-int — so indexed fields collide heavily and
/// oldest-first tie-breaking is exercised constantly.
PasoObject random_object(Rng& rng, std::uint64_t seq) {
  PasoObject object;
  object.id = ObjectId{ProcessId{MachineId{0}, 0}, seq};
  object.fields = {
      Value{static_cast<std::int64_t>(rng.index(6))},
      Value{std::string(1, static_cast<char>('a' + rng.index(4)))},
      Value{static_cast<std::int64_t>(rng.index(3))},
  };
  return object;
}

FieldPattern random_pattern(Rng& rng, std::size_t field) {
  switch (rng.index(6)) {
    case 0: {
      if (field == 1) return Exact{Value{std::string(1, 'a' + rng.index(4))}};
      return Exact{Value{static_cast<std::int64_t>(rng.index(6))}};
    }
    case 1: {
      // OneOf with deliberate duplicates: the dedup path must not change
      // which object is oldest.
      OneOf one_of;
      const std::size_t n = 1 + rng.index(4);
      for (std::size_t i = 0; i < n; ++i) {
        if (field == 1) {
          one_of.values.push_back(Value{std::string(1, 'a' + rng.index(4))});
        } else {
          one_of.values.push_back(
              Value{static_cast<std::int64_t>(rng.index(6))});
        }
      }
      if (rng.chance(0.5) && !one_of.values.empty()) {
        one_of.values.push_back(one_of.values.front());
      }
      return one_of;
    }
    case 2: {
      const std::int64_t lo = static_cast<std::int64_t>(rng.index(6)) - 1;
      return IntRange{lo, lo + static_cast<std::int64_t>(rng.index(4))};
    }
    case 3:
      return TextPrefix{rng.chance(0.5)
                            ? std::string(1, 'a' + rng.index(4))
                            : std::string{}};
    case 4:
      return TypedAny{static_cast<FieldType>(rng.index(4))};
    default:
      return AnyField{};
  }
}

SearchCriterion random_criterion(Rng& rng) {
  SearchCriterion sc;
  // Mostly arity 3 (matching the objects); occasionally a wrong arity, which
  // must match nothing on either store.
  const std::size_t arity = rng.chance(0.9) ? 3 : 2 + rng.index(3);
  for (std::size_t f = 0; f < arity; ++f) {
    sc.fields.push_back(random_pattern(rng, f));
  }
  return sc;
}

void expect_same(const std::optional<PasoObject>& a,
                 const std::optional<PasoObject>& b, int seed, int op) {
  ASSERT_EQ(a.has_value(), b.has_value()) << "seed " << seed << " op " << op;
  if (a) {
    EXPECT_EQ(a->id, b->id) << "seed " << seed << " op " << op;
    EXPECT_TRUE(a->fields == b->fields) << "seed " << seed << " op " << op;
  }
}

void run_oracle(int seed, const std::vector<std::size_t>& indexed_fields) {
  Rng rng(static_cast<std::uint64_t>(seed) * 2654435761u + 17);
  IndexedStore indexed(indexed_fields);
  LinearStore linear;
  std::uint64_t next_age = 0;
  std::uint64_t next_seq = 0;
  std::vector<PasoObject> removed_pool;  // candidates for re-insertion

  for (int op = 0; op < kOpsPerSeed; ++op) {
    const double dice = rng.uniform01();
    if (dice < 0.40) {
      // Insert — sometimes re-inserting a removed object under a NEW
      // identity and age (re-insertion puts it at the back of the age
      // order; both stores must agree).
      PasoObject object;
      if (!removed_pool.empty() && rng.chance(0.3)) {
        object = removed_pool[rng.index(removed_pool.size())];
        object.id = ObjectId{ProcessId{MachineId{0}, 0}, next_seq++};
      } else {
        object = random_object(rng, next_seq++);
      }
      const std::uint64_t age = next_age++;
      indexed.store(object, age);
      linear.store(object, age);
    } else if (dice < 0.65) {
      const SearchCriterion sc = random_criterion(rng);
      expect_same(indexed.find(sc), linear.find(sc), seed, op);
    } else if (dice < 0.90) {
      const SearchCriterion sc = random_criterion(rng);
      const auto from_indexed = indexed.remove(sc);
      const auto from_linear = linear.remove(sc);
      expect_same(from_indexed, from_linear, seed, op);
      if (from_indexed) removed_pool.push_back(*from_indexed);
    } else if (dice < 0.95) {
      // Erase by identity of a random live object (if any).
      const auto snapshot = linear.snapshot();
      if (!snapshot.empty()) {
        const ObjectId id = snapshot[rng.index(snapshot.size())].object.id;
        EXPECT_EQ(indexed.erase(id), linear.erase(id)) << "seed " << seed;
      }
    } else {
      // State-transfer round trip of the indexed store through its own
      // snapshot: contents and order must survive a load.
      const auto snapshot = indexed.snapshot();
      indexed.clear();
      indexed.load(snapshot);
    }
    ASSERT_EQ(indexed.size(), linear.size()) << "seed " << seed << " op " << op;
  }

  // Final sweep: snapshots agree object-for-object in age order, and
  // draining both stores with a wildcard yields the same sequence.
  const auto snap_indexed = indexed.snapshot();
  const auto snap_linear = linear.snapshot();
  ASSERT_EQ(snap_indexed.size(), snap_linear.size()) << "seed " << seed;
  for (std::size_t i = 0; i < snap_indexed.size(); ++i) {
    EXPECT_EQ(snap_indexed[i].age, snap_linear[i].age) << "seed " << seed;
    EXPECT_EQ(snap_indexed[i].object.id, snap_linear[i].object.id)
        << "seed " << seed;
  }
  const SearchCriterion drain = criterion(AnyField{}, AnyField{}, AnyField{});
  while (true) {
    const auto a = indexed.remove(drain);
    const auto b = linear.remove(drain);
    expect_same(a, b, seed, -1);
    if (!a) break;
  }
  EXPECT_EQ(indexed.size(), 0u) << "seed " << seed;
}

TEST(IndexedStoreOracleTest, MatchesLinearStoreAcrossSeeds) {
  // Rotate the indexed field set so single-field, subset and full-arity
  // configurations all face the same workloads.
  const std::vector<std::vector<std::size_t>> configs{
      {0}, {0, 2}, {0, 1, 2}};
  for (int seed = 0; seed < kSeeds; ++seed) {
    run_oracle(seed, configs[static_cast<std::size_t>(seed) % configs.size()]);
  }
}

TEST(IndexedStoreOracleTest, HashStoreEquivalentConfigMatchesToo) {
  // IndexedStore({0}) is the drop-in replacement for HashStore(0): same
  // workloads, reference-checked separately so a regression names it.
  for (int seed = 1000; seed < 1040; ++seed) {
    run_oracle(seed, {0});
  }
}

}  // namespace
}  // namespace paso::storage
