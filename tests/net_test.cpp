// Unit tests for the bus network and cost ledger (Section 3.3 model).
#include <gtest/gtest.h>

#include "net/bus_network.hpp"
#include "sim/simulator.hpp"

namespace paso::net {
namespace {

TEST(CostModelTest, MessageCostIsAlphaPlusBetaTimesLength) {
  CostModel model{10.0, 2.0};
  EXPECT_DOUBLE_EQ(model.message(0), 10.0);
  EXPECT_DOUBLE_EQ(model.message(5), 20.0);
}

TEST(CostModelTest, GcastMatchesSectionThreeThreeDerivation) {
  CostModel model{7.0, 1.5};
  // |g|(alpha + beta|msg|) + |g| alpha + alpha + beta|resp|
  const Cost expected = 4 * (7.0 + 1.5 * 100) + 4 * 7.0 + 7.0 + 1.5 * 20;
  EXPECT_DOUBLE_EQ(model.gcast(4, 100, 20), expected);
}

TEST(CostModelTest, GcastApproxIsTheReportedClosedForm) {
  CostModel model{7.0, 1.5};
  EXPECT_DOUBLE_EQ(model.gcast_approx(4, 100, 20),
                   4 * (2 * 7.0 + 1.5 * (100 + 20)));
}

TEST(CostModelTest, ApproxOvercountsByResponseFanout) {
  // The paper's closed form |g|(2a + b(|msg|+|resp|)) charges the single
  // response once per member; the exact sum charges it once. The gap is
  // exactly (g-1) * b * |resp| - a.
  CostModel model{10.0, 1.0};
  for (std::size_t g = 1; g <= 16; ++g) {
    const Cost exact = model.gcast(g, 64, 16);
    const Cost approx = model.gcast_approx(g, 64, 16);
    const Cost gap = static_cast<Cost>(g - 1) * 1.0 * 16 - 10.0;
    EXPECT_DOUBLE_EQ(approx - exact, gap) << "group size " << g;
  }
}

class BusNetworkTest : public ::testing::Test {
 protected:
  sim::Simulator simulator_;
  BusNetwork net_{simulator_, CostModel{10.0, 1.0}, 4};
};

TEST_F(BusNetworkTest, DeliversAndCharges) {
  bool delivered = false;
  net_.send(MachineId{0}, MachineId{1}, "data", 32, [&] { delivered = true; });
  simulator_.run();
  EXPECT_TRUE(delivered);
  EXPECT_DOUBLE_EQ(net_.ledger().total_msg_cost(), 42.0);
  const auto& tags = net_.ledger().per_tag();
  ASSERT_TRUE(tags.contains("data"));
  EXPECT_EQ(tags.at("data").messages, 1u);
  EXPECT_EQ(tags.at("data").bytes, 32u);
}

TEST_F(BusNetworkTest, SelfSendIsFreeAndImmediate) {
  bool delivered = false;
  net_.send(MachineId{2}, MachineId{2}, "loop", 999, [&] { delivered = true; });
  simulator_.run();
  EXPECT_TRUE(delivered);
  EXPECT_DOUBLE_EQ(net_.ledger().total_msg_cost(), 0.0);
}

TEST_F(BusNetworkTest, BusSerializesTransmissions) {
  // Two messages sent at t=0 must occupy the bus back to back: the second
  // delivery lands at the sum of both transmission times.
  sim::SimTime first = -1;
  sim::SimTime second = -1;
  net_.send(MachineId{0}, MachineId{1}, "a", 10,
            [&] { first = simulator_.now(); });
  net_.send(MachineId{0}, MachineId{2}, "b", 10,
            [&] { second = simulator_.now(); });
  simulator_.run();
  EXPECT_DOUBLE_EQ(first, 20.0);
  EXPECT_DOUBLE_EQ(second, 40.0);
}

TEST_F(BusNetworkTest, TotalMessageCostLowerBoundsCompletionTime) {
  // Section 5: "the total message cost is a lower bound on the time to
  // complete the run, since messages must be sent one-at-a-time".
  for (int i = 0; i < 5; ++i) {
    net_.send(MachineId{0}, MachineId{1}, "burst", 7, [] {});
  }
  simulator_.run();
  EXPECT_GE(simulator_.now(), net_.ledger().total_msg_cost());
}

TEST_F(BusNetworkTest, DownDestinationDropsDelivery) {
  bool delivered = false;
  net_.set_up(MachineId{1}, false);
  net_.send(MachineId{0}, MachineId{1}, "lost", 8, [&] { delivered = true; });
  simulator_.run();
  EXPECT_FALSE(delivered);
  // The transmission itself still happened (and is charged): the sender
  // cannot know the receiver is dead.
  EXPECT_DOUBLE_EQ(net_.ledger().total_msg_cost(), 18.0);
}

TEST_F(BusNetworkTest, DownSenderSendsNothing) {
  bool delivered = false;
  net_.set_up(MachineId{0}, false);
  net_.send(MachineId{0}, MachineId{1}, "dead", 8, [&] { delivered = true; });
  simulator_.run();
  EXPECT_FALSE(delivered);
  EXPECT_DOUBLE_EQ(net_.ledger().total_msg_cost(), 0.0);
}

TEST_F(BusNetworkTest, SnapshotDiffYieldsCostTriple) {
  const auto before = net_.ledger().snapshot();
  net_.send(MachineId{0}, MachineId{1}, "op", 10, [] {});
  net_.ledger().charge_work(MachineId{1}, 3.0);
  net_.ledger().charge_work(MachineId{2}, 5.0);
  simulator_.run();
  const CostTriple triple = net_.ledger().since(before);
  EXPECT_DOUBLE_EQ(triple.msg_cost, 20.0);
  EXPECT_DOUBLE_EQ(triple.work, 8.0);
  EXPECT_DOUBLE_EQ(triple.time, 5.0);  // max single-server work
}

TEST_F(BusNetworkTest, WorkLedgerAccumulatesPerMachine) {
  net_.ledger().charge_work(MachineId{3}, 2.0);
  net_.ledger().charge_work(MachineId{3}, 4.0);
  EXPECT_DOUBLE_EQ(net_.ledger().work_of(MachineId{3}), 6.0);
  EXPECT_DOUBLE_EQ(net_.ledger().work_of(MachineId{0}), 0.0);
  EXPECT_DOUBLE_EQ(net_.ledger().total_work(), 6.0);
}

// Regression: the work table used to be grown only by charge_work, so after
// a reset() (which cleared it) work_of was answering from an empty table
// while charge_work silently regrew it — the shape of the per-machine view
// depended on charge order. The table is now pre-sized to the machine count
// and reset() zeroes it in place.
TEST_F(BusNetworkTest, WorkTableIsPreSizedAndSurvivesReset) {
  // Defined (zero) for every machine before any charge.
  const auto before = net_.ledger().snapshot();
  EXPECT_EQ(before.work.size(), 4u);
  EXPECT_DOUBLE_EQ(net_.ledger().work_of(MachineId{3}), 0.0);

  net_.ledger().charge_work(MachineId{1}, 5.0);
  net_.ledger().reset();
  const auto after = net_.ledger().snapshot();
  EXPECT_EQ(after.work.size(), 4u) << "reset changed the table shape";
  EXPECT_DOUBLE_EQ(net_.ledger().work_of(MachineId{1}), 0.0);
  EXPECT_DOUBLE_EQ(net_.ledger().total_work(), 0.0);

  // since() across a reset must not read out of range in either direction.
  net_.ledger().charge_work(MachineId{2}, 7.0);
  const CostTriple triple = net_.ledger().since(after);
  EXPECT_DOUBLE_EQ(triple.work, 7.0);
  EXPECT_DOUBLE_EQ(triple.time, 7.0);
}

TEST_F(BusNetworkTest, DropWindowLosesDeliveryButChargesTransmission) {
  net_.set_drop_window(MachineId{1}, 100.0);
  bool lost_delivered = false;
  bool late_delivered = false;
  net_.send(MachineId{0}, MachineId{1}, "lost", 8,
            [&] { lost_delivered = true; });
  simulator_.run();
  EXPECT_FALSE(lost_delivered);
  EXPECT_EQ(net_.chaos_dropped(), 1u);
  // Lost messages still cost bandwidth: the transmission happened.
  EXPECT_DOUBLE_EQ(net_.ledger().total_msg_cost(), 18.0);

  // After the window closes, deliveries resume.
  simulator_.schedule_at(200.0, [] {});
  simulator_.run();
  net_.send(MachineId{0}, MachineId{1}, "late", 8,
            [&] { late_delivered = true; });
  simulator_.run();
  EXPECT_TRUE(late_delivered);
}

TEST_F(BusNetworkTest, DelayWindowAddsLatencyWithoutExtraCost) {
  net_.set_delay_window(MachineId{1}, 100.0, 33.0);
  sim::SimTime delivered_at = -1;
  net_.send(MachineId{0}, MachineId{1}, "slow", 10,
            [&] { delivered_at = simulator_.now(); });
  simulator_.run();
  EXPECT_DOUBLE_EQ(delivered_at, 20.0 + 33.0);
  EXPECT_EQ(net_.chaos_delayed(), 1u);
  EXPECT_DOUBLE_EQ(net_.ledger().total_msg_cost(), 20.0);
}

}  // namespace
}  // namespace paso::net
