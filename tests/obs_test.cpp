// Observability layer: metrics registry semantics (scoping, crash erasure),
// OpTracer context attribution, the JSONL export round-trip, and end-to-end
// trace-id propagation through a batched gcast with exact CostLedger
// reconciliation.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "paso/cluster.hpp"

namespace paso {
namespace {

Schema task_schema() {
  return Schema({
      ClassSpec{"task", {FieldType::kInt, FieldType::kText}, 0, 1},
  });
}

Tuple task(std::int64_t key) { return {Value{key}, Value{std::string("v")}}; }

TEST(MetricsRegistryTest, CounterAndGaugeSemantics) {
  obs::MetricsRegistry reg;
  reg.counter("ops").inc();
  reg.counter("ops").inc(4);
  EXPECT_EQ(reg.counter("ops").value, 5u);

  // Machine scope and cluster scope are distinct metrics under one name.
  reg.counter("ops", MachineId{2}).inc(3);
  EXPECT_EQ(reg.counter("ops").value, 5u);
  EXPECT_EQ(reg.counter("ops", MachineId{2}).value, 3u);

  reg.gauge("depth").set(7);
  reg.gauge("depth").add(-2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("depth").value, 4.5);

  // References are stable: hot paths resolve once and keep the handle.
  obs::Counter& cached = reg.counter("ops");
  reg.counter("unrelated.a").inc();
  reg.counter("unrelated.b").inc();
  cached.inc();
  EXPECT_EQ(reg.counter("ops").value, 6u);
}

TEST(MetricsRegistryTest, HistogramBucketsCountAndSum) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat", {10, 20});
  h.observe(10);  // at the bound: first bucket (<= 10)
  h.observe(15);
  h.observe(25);  // past every bound: overflow
  ASSERT_EQ(h.buckets().size(), 3u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 50.0);

  // Bounds apply on first creation only; later lookups reuse the metric.
  EXPECT_EQ(reg.histogram("lat", {1, 2, 3}).count(), 3u);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.buckets()[1], 0u);
}

TEST(MetricsRegistryTest, QuantileEdgeCases) {
  obs::Histogram h({10, 20, 40});
  // Empty histogram: no quantiles exist. NaN, not a fabricated 0 — a zero
  // would read like a measured latency in a bench report.
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  EXPECT_TRUE(std::isnan(h.quantile(0.0)));
  EXPECT_TRUE(std::isnan(h.quantile(1.0)));

  // Single observation: every quantile collapses onto its bucket.
  h.observe(15);
  EXPECT_GT(h.quantile(0.0), 0.0);
  EXPECT_LE(h.quantile(0.5), 20.0);
  EXPECT_LE(h.quantile(1.0), 20.0);

  // Overflow-only data: the last bound is the best (and only) answer.
  h.reset();
  h.observe(1000);
  h.observe(5000);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 40.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 40.0);

  // Quantiles are monotone in q over a mixed population.
  h.reset();
  for (int v : {5, 12, 18, 25, 35, 50, 90}) h.observe(v);
  double prev = 0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const double val = h.quantile(q);
    EXPECT_GE(val, prev) << "q=" << q;
    prev = val;
  }

  // Reset returns it to the no-quantiles state.
  h.reset();
  EXPECT_TRUE(std::isnan(h.quantile(0.99)));
}

TEST(MetricsRegistryTest, CrashErasesMachineScopeAndCountsRestarts) {
  obs::MetricsRegistry reg;
  obs::Counter& victim = reg.counter("server.stores", MachineId{2});
  obs::Counter& bystander = reg.counter("server.stores", MachineId{1});
  obs::Counter& global = reg.counter("total.stores");
  obs::Gauge& depth = reg.gauge("server.depth", MachineId{2});
  obs::Histogram& lat = reg.histogram("server.lat", MachineId{2}, {1, 10});
  victim.inc(7);
  bystander.inc(2);
  global.inc(9);
  depth.set(3);
  lat.observe(5);

  reg.on_machine_crash(MachineId{2});

  // The crashed machine's metrics die with its memory; everything else —
  // including the same name on another machine — survives.
  EXPECT_EQ(victim.value, 0u);
  EXPECT_DOUBLE_EQ(depth.value, 0.0);
  EXPECT_EQ(lat.count(), 0u);
  EXPECT_EQ(bystander.value, 2u);
  EXPECT_EQ(global.value, 9u);
  EXPECT_EQ(reg.restarts(), 1u);

  // Registrations are kept, so handles cached before the crash stay valid.
  victim.inc();
  EXPECT_EQ(reg.counter("server.stores", MachineId{2}).value, 1u);
}

TEST(ObsExportTest, JsonlRoundTripsThroughTheParser) {
  obs::MetricsRegistry reg;
  reg.counter("ops", MachineId{1}).inc(3);
  reg.gauge("depth").set(2.5);
  reg.histogram("lat", {1, 10}).observe(4);

  std::ostringstream os;
  reg.write_jsonl(os);
  std::istringstream is(os.str());
  const auto rows = obs::read_json_rows(is);
  ASSERT_EQ(rows.size(), 3u);

  for (const auto& row : rows) {
    ASSERT_TRUE(row.has("metric"));
    const std::string name = row.str("metric");
    if (name == "ops") {
      EXPECT_EQ(row.str("type"), "counter");
      EXPECT_DOUBLE_EQ(row.num("machine"), 1.0);
      EXPECT_DOUBLE_EQ(row.num("value"), 3.0);
    } else if (name == "depth") {
      EXPECT_EQ(row.str("type"), "gauge");
      EXPECT_DOUBLE_EQ(row.num("machine"), -1.0);
      EXPECT_DOUBLE_EQ(row.num("value"), 2.5);
    } else if (name == "lat") {
      EXPECT_EQ(row.str("type"), "histogram");
      EXPECT_EQ(row.array("bounds"), (std::vector<double>{1, 10}));
      EXPECT_EQ(row.array("buckets"), (std::vector<double>{0, 1, 0}));
      EXPECT_DOUBLE_EQ(row.num("sum"), 4.0);
    } else {
      ADD_FAILURE() << "unexpected metric row: " << name;
    }
  }
}

TEST(OpTracerTest, ScopeReplacesContextAndAttributesMessages) {
  obs::OpTracer tracer;
  const obs::TraceId a = tracer.begin("insert", MachineId{0}, 1);
  const obs::TraceId b = tracer.begin("read", MachineId{1}, 2);
  {
    obs::OpTracer::Scope outer(&tracer, a);
    tracer.record_message("store", 10, 10, 10, 3);
    {
      // Inner work belongs to b alone — the scope REPLACES the context, it
      // does not stack a's id on top.
      obs::OpTracer::Scope inner(&tracer, b);
      tracer.record_message("mem-read", 5, 10, 5, 4);
    }
    tracer.record_message("store", 10, 10, 10, 5);
  }
  tracer.record_message("heartbeat", 1, 10, 1, 6);  // no context: untraced

  ASSERT_EQ(tracer.messages().size(), 4u);
  EXPECT_EQ(tracer.messages()[0].traces, std::vector<obs::TraceId>{a});
  EXPECT_EQ(tracer.messages()[1].traces, std::vector<obs::TraceId>{b});
  EXPECT_EQ(tracer.messages()[2].traces, std::vector<obs::TraceId>{a});
  EXPECT_TRUE(tracer.messages()[3].traces.empty());
  EXPECT_DOUBLE_EQ(tracer.traced_msg_cost(), 55.0);
  EXPECT_DOUBLE_EQ(tracer.untraced_msg_cost(), 11.0);

  tracer.finish(a, "ok", MachineId{0}, 7);
  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_TRUE(tracer.messages().empty());
  // Ids stay unique across clear(): the next trace does not reuse a or b.
  EXPECT_GT(tracer.begin("read", MachineId{0}, 8), b);
}

TEST(ObsClusterTest, TraceIdsPropagateThroughABatchedGcast) {
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.runtime.batch_window = 50;
  cfg.runtime.max_batch = 8;
  cfg.observe = true;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();
  PasoRuntime& home = cluster.runtime(MachineId{3});
  const ProcessId driver = cluster.process(MachineId{3});

  std::size_t done = 0;
  for (std::int64_t key = 0; key < 4; ++key) {
    home.insert(driver, task(key), [&done] { ++done; });
  }
  cluster.settle();
  ASSERT_EQ(done, 4u);

  obs::OpTracer& tracer = cluster.tracer();
  std::set<obs::TraceId> inserts;
  std::set<obs::TraceId> finished;
  for (const auto& e : tracer.events()) {
    if (e.kind == obs::SpanKind::kIssue && e.note == "insert") {
      inserts.insert(e.trace);
    }
    if (e.kind == obs::SpanKind::kFinish) finished.insert(e.trace);
  }
  EXPECT_EQ(inserts.size(), 4u);
  for (const obs::TraceId t : inserts) {
    EXPECT_TRUE(finished.count(t)) << "insert trace " << t << " never finished";
  }

  // The four inserts coalesced: the batch gcast's bus messages must list
  // every member op's trace id, not just the head-of-queue op's.
  bool saw_batch = false;
  for (const auto& m : tracer.messages()) {
    if (m.tag != "batch") continue;
    saw_batch = true;
    EXPECT_EQ(m.traces.size(), 4u);
    for (const obs::TraceId t : m.traces) {
      EXPECT_TRUE(inserts.count(t)) << "batch message carries alien trace";
    }
  }
  EXPECT_TRUE(saw_batch) << "burst never coalesced into a batch gcast";

  // Every charged transmission since construction landed in exactly one of
  // the traced/untraced buckets: the partition reconciles with the ledger.
  EXPECT_DOUBLE_EQ(tracer.traced_msg_cost() + tracer.untraced_msg_cost(),
                   cluster.ledger().total_msg_cost());

  // The metric side rode along.
  EXPECT_EQ(cluster.metrics().counter("runtime.ops.insert", MachineId{3}).value,
            4u);
  EXPECT_GT(cluster.metrics().counter("net.messages").value, 0u);
  EXPECT_GT(cluster.metrics().counter("batcher.enqueued", MachineId{3}).value,
            0u);
}

TEST(ObsClusterTest, ServerCrashErasesItsMetricsLikeItsMemory) {
  ClusterConfig cfg;
  cfg.machines = 4;
  cfg.lambda = 1;
  cfg.observe = true;
  Cluster cluster(task_schema(), cfg);
  cluster.assign_basic_support();  // wg(task) = {m0, m1}
  const ProcessId driver = cluster.process(MachineId{3});
  for (std::int64_t key = 0; key < 5; ++key) {
    ASSERT_TRUE(cluster.insert_sync(driver, task(key)));
  }
  obs::Counter& stores =
      cluster.metrics().counter("server.c0.stores", MachineId{0});
  ASSERT_EQ(stores.value, 5u);

  cluster.crash(MachineId{0});
  EXPECT_EQ(stores.value, 0u) << "crash must erase the server's metrics";
  EXPECT_EQ(cluster.metrics().restarts(), 1u);
  EXPECT_EQ(cluster.metrics().counter("server.c0.stores", MachineId{1}).value,
            5u)
      << "surviving member's metrics must not be touched";
}

}  // namespace
}  // namespace paso
