// Shared bits for the examples: the --transport=sim|threaded|socket flag.
//
// Every example defaults to the deterministic virtual-time bus; passing
// `--transport=threaded` runs the identical program on the real-clock
// threaded transport (worker threads, SPSC rings, steady_clock timers, 1
// virtual cost unit = 1 microsecond), and `--transport=socket` runs it on
// the multi-process socket transport (one OS process per machine on a TCP
// loopback wire). Examples driven purely through the Cluster's synchronous
// wrappers and settle()/settle_for() work unchanged on all three; examples
// that script the simulator directly stay sim-only.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "paso/cluster.hpp"

namespace paso::examples {

/// Parse --transport=sim|threaded|socket from argv (default sim). Any other
/// value exits with usage; unrelated arguments are left alone for the
/// caller.
inline TransportKind transport_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--transport=", 12) != 0) continue;
    const char* value = argv[i] + 12;
    if (std::strcmp(value, "sim") == 0) return TransportKind::kSim;
    if (std::strcmp(value, "threaded") == 0) return TransportKind::kThreaded;
    if (std::strcmp(value, "socket") == 0) return TransportKind::kSocket;
    std::fprintf(stderr,
                 "unknown transport `%s`; use sim, threaded or socket\n",
                 value);
    std::exit(2);
  }
  return TransportKind::kSim;
}

inline const char* transport_name(TransportKind kind) {
  switch (kind) {
    case TransportKind::kThreaded:
      return "threaded";
    case TransportKind::kSocket:
      return "socket";
    case TransportKind::kSim:
      break;
  }
  return "sim";
}

}  // namespace paso::examples
