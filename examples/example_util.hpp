// Shared bits for the examples: the --transport=sim|threaded flag.
//
// Every example defaults to the deterministic virtual-time bus; passing
// `--transport=threaded` runs the identical program on the real-clock
// threaded transport (worker threads, SPSC rings, steady_clock timers, 1
// virtual cost unit = 1 microsecond). Examples driven purely through the
// Cluster's synchronous wrappers and settle()/settle_for() work unchanged
// on both; examples that script the simulator directly stay sim-only.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "paso/cluster.hpp"

namespace paso::examples {

/// Parse --transport=sim|threaded from argv (default sim). Any other value
/// exits with usage; unrelated arguments are left alone for the caller.
inline TransportKind transport_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--transport=", 12) != 0) continue;
    const char* value = argv[i] + 12;
    if (std::strcmp(value, "sim") == 0) return TransportKind::kSim;
    if (std::strcmp(value, "threaded") == 0) return TransportKind::kThreaded;
    std::fprintf(stderr, "unknown transport `%s`; use sim or threaded\n",
                 value);
    std::exit(2);
  }
  return TransportKind::kSim;
}

inline const char* transport_name(TransportKind kind) {
  return kind == TransportKind::kThreaded ? "threaded" : "sim";
}

}  // namespace paso::examples
