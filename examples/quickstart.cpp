// Quickstart: a five-minute tour of the PASO memory.
//
// Builds a small cluster, declares an object-class schema, and walks through
// the three primitives — insert, read, read&del — plus associative search
// (ranges, prefixes, wildcards) and a blocking read. Everything runs on the
// deterministic simulator; the printed costs come from the paper's
// alpha + beta*|msg| model.
#include <iostream>

#include "paso/cluster.hpp"

using namespace paso;

int main() {
  // 1. Declare what lives in the memory: one class of (int key, text note)
  //    tuples and one class of (text name, real score) tuples.
  Schema schema({
      ClassSpec{"note", {FieldType::kInt, FieldType::kText}, 0, 1},
      ClassSpec{"score", {FieldType::kText, FieldType::kReal}, 0, 1},
  });

  // 2. Build a cluster of 5 machines tolerating lambda = 1 crash; every
  //    class is replicated on lambda + 1 = 2 basic-support machines.
  ClusterConfig config;
  config.machines = 5;
  config.lambda = 1;
  Cluster cluster(std::move(schema), config);
  cluster.assign_basic_support();

  const ProcessId alice = cluster.process(MachineId{0});
  const ProcessId bob = cluster.process(MachineId{3});

  // 3. insert: objects are immutable tuples with a unique identity.
  cluster.insert_sync(alice, {Value{std::int64_t{1}},
                              Value{std::string{"buy milk"}}});
  cluster.insert_sync(alice, {Value{std::int64_t{2}},
                              Value{std::string{"call mom"}}});
  cluster.insert_sync(alice, {Value{std::string{"bob"}}, Value{87.5}});

  // 4. read: associative search. Any process on any machine can query.
  const auto note = cluster.read_sync(
      bob, criterion(Exact{Value{std::int64_t{1}}},
                     TypedAny{FieldType::kText}));
  std::cout << "read by key:      " << object_to_string(*note) << "\n";

  const auto ranged = cluster.read_sync(
      bob, criterion(IntRange{2, 10}, AnyField{}));
  std::cout << "read by range:    " << object_to_string(*ranged) << "\n";

  const auto scored = cluster.read_sync(
      bob, criterion(TextPrefix{"bo"}, RealRange{80.0, 100.0}));
  std::cout << "read by pattern:  " << object_to_string(*scored) << "\n";

  // 5. read&del: destructive read, exactly-once across the whole cluster.
  const auto taken = cluster.read_del_sync(
      bob, criterion(Exact{Value{std::int64_t{1}}}, AnyField{}));
  std::cout << "read&del:         " << object_to_string(*taken) << "\n";
  const auto gone = cluster.read_sync(
      bob, criterion(Exact{Value{std::int64_t{1}}}, AnyField{}));
  std::cout << "read after del:   " << (gone ? "found?!" : "fail (correct)")
            << "\n";

  // 6. Blocking read: waits (via read markers) until a matching object is
  //    inserted by someone else.
  SearchResponse result;
  cluster.runtime(bob.machine)
      .read_blocking(bob,
                     criterion(Exact{Value{std::int64_t{42}}}, AnyField{}),
                     [&result](SearchResponse r) { result = std::move(r); },
                     BlockingMode::kMarker, 1e9);
  cluster.settle_for(1000);  // bob is now waiting...
  cluster.runtime(alice.machine)
      .insert(alice,
              {Value{std::int64_t{42}}, Value{std::string{"the answer"}}},
              {});
  cluster.simulator().run_while_pending(
      [&result] { return result.has_value(); });
  std::cout << "blocking read:    " << object_to_string(*result) << "\n";

  // 7. Costs so far, in the paper's units.
  std::cout << "\ntotal message cost: " << cluster.ledger().total_msg_cost()
            << "\ntotal server work:  " << cluster.ledger().total_work()
            << "\nvirtual time:       " << cluster.simulator().now() << "\n";
  return 0;
}
