// A mutable, fault-tolerant key-value dictionary on immutable PASO objects.
//
// Section 1: "There is no modify operation; modifying a field is logically
// equivalent to destroying the old object and creating a new one. There is
// no loss of generality, since a mutable distributed data structure can be
// built out of collections of immutable atomic objects." This example builds
// exactly that: put(k, v) = read&del(k) + insert(k, v) — the read&del's
// total order across the write group makes concurrent puts linearize — and
// the dictionary survives crashes of up to lambda machines, including a full
// crash/recovery cycle of a replica.
#include <iostream>
#include <optional>
#include <string>

#include "example_util.hpp"
#include "paso/cluster.hpp"
#include "semantics/checker.hpp"

using namespace paso;

namespace {

/// Dictionary client bound to one machine. Keys are hash-partitioned across
/// 4 object classes so different keys can live on different write groups.
class Dictionary {
 public:
  Dictionary(Cluster& cluster, MachineId machine)
      : cluster_(cluster), process_{machine, 0} {}

  void put(const std::string& key, std::int64_t value) {
    // Destroy the old binding (if any), then create the new one.
    cluster_.read_del_sync(process_, key_criterion(key));
    cluster_.insert_sync(process_, {Value{key}, Value{value}});
  }

  std::optional<std::int64_t> get(const std::string& key) {
    const auto found = cluster_.read_sync(process_, key_criterion(key));
    if (!found) return std::nullopt;
    return std::get<std::int64_t>(found->fields[1]);
  }

  bool erase(const std::string& key) {
    return cluster_.read_del_sync(process_, key_criterion(key)).has_value();
  }

 private:
  static SearchCriterion key_criterion(const std::string& key) {
    return criterion(Exact{Value{key}}, TypedAny{FieldType::kInt});
  }

  Cluster& cluster_;
  ProcessId process_;
};

}  // namespace

int main(int argc, char** argv) {
  Schema schema({
      ClassSpec{"kv", {FieldType::kText, FieldType::kInt}, 0, 4},
  });
  ClusterConfig config;
  config.machines = 6;
  config.lambda = 1;
  // --transport=threaded: the same crash/recover story on real threads.
  config.transport = examples::transport_from_args(argc, argv);
  Cluster cluster(std::move(schema), config);
  cluster.assign_basic_support();

  Dictionary alice(cluster, MachineId{0});
  Dictionary bob(cluster, MachineId{3});

  // Basic operations, visible across machines.
  alice.put("apples", 3);
  alice.put("pears", 7);
  std::cout << "bob reads apples = " << *bob.get("apples") << "\n";

  // Mutation = destroy + create; bob observes alice's overwrite.
  alice.put("apples", 4);
  std::cout << "after alice's put, bob reads apples = " << *bob.get("apples")
            << "\n";

  // Deletion.
  bob.erase("pears");
  std::cout << "after bob's erase, pears "
            << (alice.get("pears") ? "still there?!" : "is gone") << "\n";

  // Crash a replica of the class holding "apples"; the binding survives.
  const auto cls = cluster.schema().classify(
      {Value{std::string{"apples"}}, Value{std::int64_t{0}}});
  const auto support = cluster.basic_support(*cls);
  std::cout << "crashing replica " << "M" << support[0].value
            << " of the apples partition...\n";
  cluster.crash(support[0]);
  cluster.settle();
  std::cout << "during the outage, bob reads apples = "
            << *bob.get("apples") << "\n";
  alice.put("apples", 5);  // writes keep working with one replica down

  // Recovery: the machine re-joins and receives the current state,
  // including the value written during its outage.
  cluster.recover(support[0]);
  cluster.settle();
  std::cout << "after recovery, bob reads apples = " << *bob.get("apples")
            << "\n";
  std::cout << "recovered replica holds "
            << cluster.server(support[0]).live_count(*cls)
            << " object(s) for the partition\n";

  // Load a few hundred keys and spot-check.
  for (int i = 0; i < 300; ++i) {
    alice.put("key-" + std::to_string(i), i * 11);
  }
  bool ok = true;
  for (int i = 0; i < 300; i += 37) {
    ok = ok && *bob.get("key-" + std::to_string(i)) == i * 11;
  }
  std::cout << "bulk load spot-check: " << (ok ? "ok" : "FAILED") << "\n";

  const auto check = semantics::check_history(cluster.history());
  std::cout << "semantics check: " << (check.ok() ? "clean" : "VIOLATED")
            << "\n";
  std::cout << "total message cost: " << cluster.ledger().total_msg_cost()
            << ", total work: " << cluster.ledger().total_work() << "\n";
  return ok && check.ok() ? 0 : 1;
}
