// paso_repl: an interactive / scriptable shell over a PASO cluster.
//
// Drives every public primitive from a command line, which makes it both a
// live demo and a handy debugging harness. Reads commands from stdin, one
// per line; `help` lists them. Example session:
//
//   $ ./paso_repl
//   > insert 0 7 hello
//   inserted M0.p0#0
//   > read 3 7
//   M0.p0#0(7, "hello")
//   > crash 1
//   > read 3 7          # still answered: replicas survive
//   > recover 1
//   > check
//   semantics: clean
//
// Tuples are (int key, text payload) in class "kv" (4 hash partitions).
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/latency.hpp"
#include "example_util.hpp"
#include "paso/cluster.hpp"
#include "semantics/checker.hpp"

using namespace paso;

namespace {

void print_help() {
  std::cout <<
      "commands:\n"
      "  insert <machine> <key> <text...>   insert a tuple\n"
      "  read <machine> <key|*> [prefix]    non-blocking read\n"
      "  readdel <machine> <key|*>          destructive read\n"
      "  readwait <machine> <key> <timeout> blocking read (markers)\n"
      "  crash <machine>                    crash a machine\n"
      "  recover <machine>                  recover a crashed machine\n"
      "  settle [duration]                  run the simulator / quiesce\n"
      "  members                            write-group membership per class\n"
      "  topology                           segment map, per-bus load, crossings\n"
      "  stats                              cost ledger + latency summary\n"
      "  persist-stats                      per-machine WAL/checkpoint totals\n"
      "  check                              run the semantics checker\n"
      "  help | quit\n";
}

SearchCriterion make_criterion(const std::string& key_token,
                               const std::string& prefix) {
  SearchCriterion sc;
  if (key_token == "*") {
    sc.fields.emplace_back(TypedAny{FieldType::kInt});
  } else {
    // Build the pattern in two steps; GCC 12 raises a spurious
    // -Wmaybe-uninitialized on the inlined one-liner.
    Exact exact;
    exact.value = Value{std::stoll(key_token)};
    sc.fields.emplace_back(std::move(exact));
  }
  if (prefix.empty()) {
    sc.fields.emplace_back(TypedAny{FieldType::kText});
  } else {
    sc.fields.emplace_back(TextPrefix{prefix});
  }
  return sc;
}

}  // namespace

int main(int argc, char** argv) {
  Schema schema({ClassSpec{"kv", {FieldType::kInt, FieldType::kText}, 0, 4}});
  ClusterConfig config;
  config.machines = 6;
  config.lambda = 1;
  // Durable disks on: a `crash` + `recover` here replays the machine's WAL
  // and rejoins via a delta transfer — watch it with `persist-stats`.
  config.persistence.enabled = true;
  // `--transport=threaded` runs the shell on the real-clock threaded
  // transport: durations become wall microseconds, ops run on real worker
  // threads instead of virtual time.
  config.transport = examples::transport_from_args(argc, argv);
  const bool threaded = config.transport == TransportKind::kThreaded;
  // `--segments N` splits the bus into N bridged segments (try 2 and watch
  // `topology` after a few cross-segment reads).
  std::size_t segments = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--segments" && i + 1 < argc) {
      segments = static_cast<std::size_t>(std::stoul(argv[++i]));
    }
  }
  if (segments > 1) {
    config.topology = net::Topology::even(segments, config.machines,
                                          config.cost_model,
                                          /*bridge_alpha=*/60,
                                          /*bridge_beta=*/0.5);
  }
  Cluster cluster(std::move(schema), config);
  if (segments > 1) {
    cluster.assign_placement_aware_support();
  } else {
    cluster.assign_basic_support();
  }
  std::cout << "PASO repl: " << config.machines
            << " machines, lambda=" << config.lambda << ", " << segments
            << " bus segment" << (segments == 1 ? "" : "s") << ", "
            << examples::transport_name(config.transport)
            << " transport, persistence on. Type `help` for commands.\n";

  std::string line;
  while (std::cout << "> " << std::flush, std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd.empty() || cmd[0] == '#') continue;
    try {
      if (cmd == "quit" || cmd == "exit") break;
      if (cmd == "help") {
        print_help();
      } else if (cmd == "insert") {
        std::uint32_t m;
        std::int64_t key;
        in >> m >> key;
        std::string text;
        std::getline(in, text);
        if (!text.empty() && text.front() == ' ') text.erase(0, 1);
        const ProcessId p = cluster.process(MachineId{m});
        bool done = false;
        ObjectId id{};
        if (threaded) {
          // Issue under the stack lock, then wait for the fabric to report
          // the completion (checked under the same lock).
          cluster.transport().run_exclusive([&] {
            id = cluster.runtime(p.machine)
                     .insert(p, {Value{key}, Value{text}},
                             [&done] { done = true; });
          });
          cluster.threaded_transport().quiesce([&done] { return done; });
        } else {
          id = cluster.runtime(p.machine)
                   .insert(p, {Value{key}, Value{text}},
                           [&done] { done = true; });
          cluster.simulator().run_while_pending([&done] { return done; });
        }
        std::cout << "inserted " << id << "\n";
      } else if (cmd == "read" || cmd == "readdel") {
        std::uint32_t m;
        std::string key_token, prefix;
        in >> m >> key_token >> prefix;
        const ProcessId p = cluster.process(MachineId{m});
        const auto sc = make_criterion(key_token, prefix);
        const auto result = cmd == "read" ? cluster.read_sync(p, sc)
                                          : cluster.read_del_sync(p, sc);
        std::cout << (result ? object_to_string(*result) : "fail") << "\n";
      } else if (cmd == "readwait") {
        std::uint32_t m;
        std::string key_token;
        double timeout = 10000;
        in >> m >> key_token >> timeout;
        const ProcessId p = cluster.process(MachineId{m});
        const auto result = cluster.read_blocking_sync(
            p, make_criterion(key_token, ""), BlockingMode::kMarker,
            cluster.transport().now() + timeout);
        std::cout << (result ? object_to_string(*result) : "fail (timeout)")
                  << "\n";
      } else if (cmd == "crash") {
        std::uint32_t m;
        in >> m;
        cluster.crash(MachineId{m});
        cluster.settle();
        std::cout << "M" << m << " crashed (detected)\n";
      } else if (cmd == "recover") {
        std::uint32_t m;
        in >> m;
        cluster.recover(MachineId{m});
        cluster.settle();
        std::cout << "M" << m << " recovered and re-initialized\n";
      } else if (cmd == "settle") {
        double duration = 0;
        if (in >> duration) {
          cluster.settle_for(duration);
        } else {
          cluster.settle();
        }
        std::cout << "t=" << cluster.transport().now() << "\n";
      } else if (cmd == "members") {
        for (std::uint32_t c = 0; c < cluster.schema().class_count(); ++c) {
          const auto view =
              cluster.groups().view_of(cluster.schema().group_name(ClassId{c}));
          std::cout << cluster.schema().group_name(ClassId{c}) << ": ";
          for (const MachineId member : view.members) {
            std::cout << member << (cluster.is_up(member) ? " " : "(down) ");
          }
          std::cout << "\n";
        }
      } else if (cmd == "topology") {
        if (threaded) {
          std::cout << "per-segment bus stats are sim-transport only; "
                    << "crossings=" << cluster.threaded_transport().crossings()
                    << " msgs=" << cluster.threaded_transport().messages()
                    << "\n";
          continue;
        }
        const auto& net = cluster.network();
        const auto& topo = net.topology();
        const double now = cluster.simulator().now();
        for (std::uint32_t s = 0; s < net.segment_count(); ++s) {
          const auto& seg = net.segment_stats(s);
          const CostModel& model = topo.segment_model(s);
          std::cout << "seg " << s << ": alpha=" << model.alpha
                    << " beta=" << model.beta << " machines=[";
          bool first = true;
          for (std::uint32_t m = 0; m < config.machines; ++m) {
            if (topo.segment_of(MachineId{m}) != s) continue;
            std::cout << (first ? "" : " ") << m;
            first = false;
          }
          std::cout << "] msgs=" << seg.messages << " bytes=" << seg.bytes
                    << " util=" << (now > 0 ? seg.busy / now : 0.0) << "\n";
        }
        if (net.bridge_count() > 0) {
          std::cout << "bridges: " << net.bridge_count()
                    << " (alpha=" << topo.bridge_alpha()
                    << " beta=" << topo.bridge_beta() << ")"
                    << " crossings=" << net.crossings()
                    << " partition-dropped=" << net.partition_dropped()
                    << "\n";
        } else {
          std::cout << "single bus, no bridges\n";
        }
      } else if (cmd == "stats") {
        // Under the threaded transport the fabric may be mid-delivery;
        // snapshot ledger + history under the stack lock (plain call on sim).
        cluster.transport().run_exclusive([&] {
          std::cout << "msg cost: " << cluster.ledger().total_msg_cost()
                    << ", work: " << cluster.ledger().total_work()
                    << ", t=" << cluster.transport().now() << "\n";
          const auto report = analysis::latency_report(cluster.history());
          auto line_for = [](const char* name, const Summary& s) {
            if (s.empty()) return;
            std::cout << "  " << name << ": n=" << s.count()
                      << " mean=" << s.mean() << " p95=" << s.percentile(0.95)
                      << "\n";
          };
          line_for("insert  ", report.insert);
          line_for("read    ", report.read);
          line_for("read&del", report.read_del);
          for (const auto& [tag, stats] : cluster.ledger().per_tag()) {
            std::cout << "  [" << tag << "] n=" << stats.messages
                      << " bytes=" << stats.bytes << " cost=" << stats.cost
                      << "\n";
          }
        });
      } else if (cmd == "persist-stats") {
        for (std::uint32_t m = 0; m < config.machines; ++m) {
          auto& manager = cluster.persistence(MachineId{m});
          const auto& s = manager.stats();
          std::cout << "M" << m << ": appends=" << s.appends << " ("
                    << s.append_bytes << "B) checkpoints=" << s.checkpoints
                    << " compactions=" << s.compactions
                    << " replays=" << s.replays << " ("
                    << s.replayed_records << " records)"
                    << " deltas=" << s.delta_captures << "/"
                    << s.delta_refusals << " refused"
                    << " corruptions=" << s.corruptions_detected << "\n";
          for (std::uint32_t c = 0; c < cluster.schema().class_count(); ++c) {
            const ClassId cls{c};
            const std::size_t log = manager.log_bytes(cls);
            const std::size_t ckpt = manager.checkpoint_bytes_on_disk(cls);
            if (log == 0 && ckpt == 0) continue;
            std::cout << "    c" << c << ": log=" << log << "B ckpt=" << ckpt
                      << "B lsn=" << manager.durable_lsn(cls) << " epoch="
                      << manager.checkpoint_epoch(cls) << "\n";
          }
        }
      } else if (cmd == "check") {
        const auto result = semantics::check_history(cluster.history());
        if (result.ok()) {
          std::cout << "semantics: clean (" << cluster.history().size()
                    << " ops)\n";
        } else {
          std::cout << "semantics: " << result.violations.size()
                    << " violations; first: " << result.violations.front()
                    << "\n";
        }
      } else {
        std::cout << "unknown command `" << cmd << "`; try `help`\n";
      }
    } catch (const std::exception& e) {
      std::cout << "error: " << e.what() << "\n";
    }
  }
  return 0;
}
