// Adaptive replication in action (Section 5.1).
//
// One object class holds a shared configuration blob that machine M4's
// processes read intensely during "read phases" and that writers churn
// during "update phases". With the Basic counter algorithm installed, M4
// joins the write group when its reads pay for the state copy and leaves
// when update traffic makes membership a liability. The example prints the
// membership trace and compares total cost against the two static policies
// the paper positions against: minimal replication (never join) and eager
// replication (everyone joins).
#include <cstdio>
#include <iostream>

#include "adaptive/basic_policy.hpp"
#include "example_util.hpp"
#include "paso/cluster.hpp"

using namespace paso;

namespace {

Schema config_schema() {
  return Schema({
      ClassSpec{"config", {FieldType::kInt, FieldType::kText}, 0, 1},
  });
}

Tuple config_tuple(std::int64_t key) {
  return {Value{key}, Value{std::string{"configuration-payload"}}};
}

SearchCriterion by_key(std::int64_t key) {
  return criterion(Exact{Value{key}}, TypedAny{FieldType::kText});
}

struct PhaseStats {
  Cost cost = 0;
  bool member_at_end = false;
};

/// Run the phased workload on a cluster; returns per-phase costs.
/// Updates come as read&del/insert pairs so the class size stays fixed —
/// exactly the Section 5 normalization under which K is a constant.
std::vector<PhaseStats> run_workload(Cluster& cluster, bool print_trace) {
  const MachineId reader_machine{4};
  const ProcessId reader = cluster.process(reader_machine);
  const ProcessId writer = cluster.process(MachineId{0});
  std::int64_t next_key = 100;
  std::int64_t oldest_key = 100;
  cluster.insert_sync(writer, config_tuple(7));
  cluster.insert_sync(writer, config_tuple(next_key++));

  std::vector<PhaseStats> phases;
  for (int phase = 0; phase < 6; ++phase) {
    const bool read_phase = phase % 2 == 0;
    const auto before = cluster.ledger().snapshot();
    for (int i = 0; i < 60; ++i) {
      if (read_phase) {
        cluster.read_sync(reader, by_key(7));
      } else {
        cluster.read_del_sync(writer, by_key(oldest_key++));
        cluster.insert_sync(writer, config_tuple(next_key++));
      }
    }
    cluster.settle();
    PhaseStats stats;
    const CostTriple delta = cluster.ledger().since(before);
    stats.cost = delta.msg_cost + delta.work;
    stats.member_at_end = cluster.runtime(reader_machine).is_member(ClassId{0});
    phases.push_back(stats);
    if (print_trace) {
      std::printf("  phase %d (%s): cost %8.1f  M4 %s\n", phase,
                  read_phase ? "reads  " : "updates",
                  stats.cost,
                  stats.member_at_end ? "IN  write group" : "OUT of group");
    }
  }
  return phases;
}

Cost total(const std::vector<PhaseStats>& phases) {
  Cost sum = 0;
  for (const PhaseStats& p : phases) sum += p.cost;
  return sum;
}

/// Set once from argv; --transport=threaded runs all three clusters on the
/// real-clock fabric (model costs are transport-independent, so the
/// comparison is unchanged).
TransportKind g_transport = TransportKind::kSim;

ClusterConfig base_config() {
  ClusterConfig cfg;
  cfg.machines = 6;
  cfg.lambda = 1;
  cfg.transport = g_transport;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  g_transport = examples::transport_from_args(argc, argv);
  std::cout << "=== Adaptive (Basic counter, K = 8) ===\n";
  Cluster adaptive(config_schema(), base_config());
  adaptive.assign_basic_support();
  adaptive::install_basic_policies(adaptive,
                                   adaptive::BasicPolicyOptions{8, 1, false});
  const auto adaptive_phases = run_workload(adaptive, true);

  std::cout << "\n=== Static minimal (lambda+1 replicas, never join) ===\n";
  Cluster minimal(config_schema(), base_config());
  minimal.assign_basic_support();
  const auto minimal_phases = run_workload(minimal, true);

  std::cout << "\n=== Static eager (every machine replicates) ===\n";
  Cluster eager(config_schema(), base_config());
  eager.assign_basic_support();
  for (std::uint32_t m = 0; m < eager.machine_count(); ++m) {
    eager.runtime(MachineId{m}).request_join(ClassId{0});
  }
  eager.settle();
  const auto eager_phases = run_workload(eager, true);

  std::cout << "\n--- totals (msg-cost + work) ---\n";
  std::printf("  adaptive: %10.1f\n", total(adaptive_phases));
  std::printf("  minimal:  %10.1f\n", total(minimal_phases));
  std::printf("  eager:    %10.1f\n", total(eager_phases));
  std::cout << "\nAdaptive tracks the better static policy in every phase:\n"
               "it joins during read phases (like eager) and leaves during\n"
               "update phases (like minimal), which is exactly the behaviour\n"
               "Theorem 2 pays for with the (3 + lambda/K) guarantee.\n";
  return 0;
}
