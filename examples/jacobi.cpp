// Distributed Jacobi iteration over PASO memory.
//
// The paper cites math libraries as one of the application families built
// on tuple spaces [11]. This example solves a diagonally dominant linear
// system A x = b with block-row-parallel Jacobi: the iterate vector lives
// in the PASO memory as (name, iteration, index, value) tuples, each worker
// machine owns a block of rows, reads the previous iterate associatively
// and inserts its block of the next one. Old iterates are read&del'd after
// use — insert/read&del pairs, the paper's steady-state normalization.
//
// Mid-solve, one replica machine crashes and recovers; the iterate tuples
// survive and the solve converges regardless.
#include <cmath>
#include <cstdio>
#include <vector>

#include "example_util.hpp"
#include "paso/cluster.hpp"
#include "semantics/checker.hpp"

using namespace paso;

namespace {

constexpr int kN = 12;        // unknowns
constexpr int kWorkers = 4;   // machines 2..5, three rows each
constexpr int kIterations = 40;

SearchCriterion x_entry(std::int64_t iteration, std::int64_t index) {
  return criterion(Exact{Value{std::string{"x"}}}, Exact{Value{iteration}},
                   Exact{Value{index}}, TypedAny{FieldType::kReal});
}

}  // namespace

int main(int argc, char** argv) {
  // System: A = tridiagonal (4 on the diagonal, -1 off), b = all ones.
  std::vector<std::vector<double>> a(kN, std::vector<double>(kN, 0.0));
  std::vector<double> b(kN, 1.0);
  for (int i = 0; i < kN; ++i) {
    a[i][i] = 4.0;
    if (i > 0) a[i][i - 1] = -1.0;
    if (i + 1 < kN) a[i][i + 1] = -1.0;
  }

  Schema schema({ClassSpec{
      "x",
      {FieldType::kText, FieldType::kInt, FieldType::kInt, FieldType::kReal},
      2,  // partition by index so blocks spread across write groups
      4}});
  ClusterConfig config;
  config.machines = 7;
  config.lambda = 1;
  // --transport=threaded: identical iteration on the real-clock fabric.
  config.transport = examples::transport_from_args(argc, argv);
  Cluster cluster(std::move(schema), config);
  cluster.assign_basic_support();

  // Seed iterate x^0 = 0.
  const ProcessId master = cluster.process(MachineId{6});
  for (int i = 0; i < kN; ++i) {
    cluster.insert_sync(master, {Value{std::string{"x"}},
                                 Value{std::int64_t{0}},
                                 Value{std::int64_t{i}}, Value{0.0}});
  }

  bool crashed = false;
  for (int iter = 0; iter < kIterations; ++iter) {
    // Each worker computes its block of x^{iter+1} from x^{iter}.
    for (int w = 0; w < kWorkers; ++w) {
      const ProcessId worker = cluster.process(MachineId{2 + static_cast<std::uint32_t>(w)});
      const int rows_per_worker = kN / kWorkers;
      for (int i = w * rows_per_worker; i < (w + 1) * rows_per_worker; ++i) {
        double sigma = 0.0;
        for (int j = 0; j < kN; ++j) {
          if (j == i) continue;
          if (a[i][j] == 0.0) continue;
          const auto xj = cluster.read_sync(worker, x_entry(iter, j));
          PASO_REQUIRE(xj.has_value(), "missing iterate entry");
          sigma += a[i][j] * std::get<double>(xj->fields[3]);
        }
        const double xi = (b[i] - sigma) / a[i][i];
        cluster.insert_sync(worker, {Value{std::string{"x"}},
                                     Value{std::int64_t{iter + 1}},
                                     Value{std::int64_t{i}}, Value{xi}});
      }
    }
    // Retire iteration `iter` (insert/read&del pairs keep the class size
    // bounded, Section 5's normalization).
    for (int i = 0; i < kN; ++i) {
      cluster.read_del_sync(master, x_entry(iter, i));
    }

    if (iter == kIterations / 3 && !crashed) {
      crashed = true;
      // M0 hosts no application process: a pure storage replica of the
      // first partition.
      std::printf("iteration %d: crashing replica M0 mid-solve\n", iter);
      cluster.crash(MachineId{0});
      cluster.settle();
    }
    if (iter == kIterations / 2 && crashed) {
      std::printf("iteration %d: recovering M0\n", iter);
      if (!cluster.is_up(MachineId{0})) cluster.recover(MachineId{0});
      cluster.settle();
    }
  }

  // Collect the final iterate and report the residual ||Ax - b||_inf.
  std::vector<double> x(kN, 0.0);
  for (int i = 0; i < kN; ++i) {
    const auto xi = cluster.read_sync(master, x_entry(kIterations, i));
    PASO_REQUIRE(xi.has_value(), "missing final entry");
    x[static_cast<std::size_t>(i)] = std::get<double>(xi->fields[3]);
  }
  double residual = 0.0;
  for (int i = 0; i < kN; ++i) {
    double row = -b[i];
    for (int j = 0; j < kN; ++j) row += a[i][j] * x[static_cast<std::size_t>(j)];
    residual = std::max(residual, std::fabs(row));
  }
  std::printf("after %d iterations: x[0]=%.6f x[%d]=%.6f, residual=%.2e\n",
              kIterations, x[0], kN - 1, x[kN - 1], residual);
  std::printf("total msg cost: %.0f, total work: %.0f\n",
              cluster.ledger().total_msg_cost(),
              cluster.ledger().total_work());
  const auto check = semantics::check_history(cluster.history());
  std::printf("semantics check: %s\n", check.ok() ? "clean" : "VIOLATED");
  return residual < 1e-6 && check.ok() ? 0 : 1;
}
