// Bag of tasks: the classic fault-tolerant master/worker pattern that the
// paper's related work (Bakken & Schlichting, Kambhatla & Walpole) builds on
// tuple spaces, and the motivating application class for adaptive
// parallelism (Section 1).
//
// A master inserts N task tuples. Worker processes on every machine pull
// tasks with blocking read&del, "compute" (square the payload), and insert
// result tuples. Mid-run, two machines crash and one recovers; the memory is
// persistent and replicated, so unclaimed tasks survive any lambda crashes.
// A task that a worker had *claimed* but not finished dies with the worker —
// the master handles that the way production bag-of-task systems do: when
// progress stalls, it re-inserts tasks whose results are missing and dedupes
// results by task id.
#include <iostream>
#include <vector>

#include "paso/cluster.hpp"
#include "semantics/checker.hpp"

using namespace paso;

namespace {

constexpr std::int64_t kTasks = 40;

Tuple task_tuple(std::int64_t id, std::int64_t payload) {
  return {Value{std::string{"task"}}, Value{id}, Value{payload}};
}

// Results use a distinct signature (int, int) so they form their own object
// class with its own write group.
Tuple result_tuple(std::int64_t id, std::int64_t value) {
  return {Value{id}, Value{value}};
}

SearchCriterion any_task() {
  return criterion(Exact{Value{std::string{"task"}}},
                   TypedAny{FieldType::kInt}, TypedAny{FieldType::kInt});
}

SearchCriterion any_result() {
  return criterion(TypedAny{FieldType::kInt}, TypedAny{FieldType::kInt});
}

/// A worker: loop { blocking read&del a task; compute; insert result }.
class Worker {
 public:
  Worker(Cluster& cluster, MachineId machine, std::uint32_t ordinal)
      : cluster_(cluster), process_{machine, ordinal} {}

  void start() { pull(); }
  int completed() const { return completed_; }
  MachineId machine() const { return process_.machine; }

 private:
  void pull() {
    cluster_.runtime(process_.machine)
        .read_del_blocking(
            process_, any_task(),
            [this](SearchResponse task) {
              if (!task) return;  // deadline hit: the bag stayed empty
              const auto id = std::get<std::int64_t>(task->fields[1]);
              const auto payload = std::get<std::int64_t>(task->fields[2]);
              cluster_.runtime(process_.machine)
                  .insert(process_, result_tuple(id, payload * payload),
                          [this] {
                            ++completed_;
                            pull();  // back to the bag
                          });
            },
            BlockingMode::kMarker,
            cluster_.simulator().now() + 500000);
  }

  Cluster& cluster_;
  ProcessId process_;
  int completed_ = 0;
};

}  // namespace

int main() {
  Schema schema({
      ClassSpec{"task",
                {FieldType::kText, FieldType::kInt, FieldType::kInt},
                1,
                1},
      ClassSpec{"result", {FieldType::kInt, FieldType::kInt}, 0, 1},
  });
  ClusterConfig config;
  config.machines = 6;
  config.lambda = 2;  // survive two simultaneous crashes
  Cluster cluster(std::move(schema), config);
  cluster.assign_basic_support();

  const ProcessId master = cluster.process(MachineId{0});
  for (std::int64_t t = 0; t < kTasks; ++t) {
    cluster.insert_sync(master, task_tuple(t, t));
  }
  std::cout << "master inserted " << kTasks << " tasks\n";

  std::vector<Worker> workers;
  workers.reserve(5);
  for (std::uint32_t m = 1; m < 6; ++m) {
    workers.emplace_back(cluster, MachineId{m}, 1);
  }
  for (Worker& w : workers) w.start();

  // Master-side result collection with dedupe by task id.
  std::vector<bool> seen(kTasks, false);
  std::vector<std::int64_t> values(kTasks, 0);
  int collected = 0;
  auto drain_results = [&] {
    while (true) {
      const auto r = cluster.read_del_sync(master, any_result());
      if (!r) break;
      const auto id = std::get<std::int64_t>(r->fields[0]);
      if (id < 0 || id >= kTasks || seen[static_cast<std::size_t>(id)]) {
        continue;  // duplicate from a re-inserted task: ignore
      }
      seen[static_cast<std::size_t>(id)] = true;
      values[static_cast<std::size_t>(id)] =
          std::get<std::int64_t>(r->fields[1]);
      ++collected;
    }
  };

  // Let the computation run, then kill two worker machines mid-flight.
  cluster.settle_for(3000);
  std::cout << "crashing M4 and M5 mid-run...\n";
  cluster.crash(MachineId{4});
  cluster.crash(MachineId{5});
  cluster.settle_for(4000);
  std::cout << "recovering M4, restarting its worker...\n";
  cluster.recover(MachineId{4});
  cluster.settle_for(500);
  workers[3].start();  // the restarted worker process rejoins the pool

  // Progress loop: drain results; when progress stalls with results still
  // missing, the claimed-but-unfinished tasks died with a worker — re-insert
  // them (idempotent thanks to the dedupe above).
  int stalls = 0;
  while (collected < kTasks && stalls < 20) {
    const int before = collected;
    cluster.settle_for(5000);
    drain_results();
    if (collected == before) {
      ++stalls;
      std::size_t reinserted = 0;
      for (std::int64_t t = 0; t < kTasks; ++t) {
        if (!seen[static_cast<std::size_t>(t)]) {
          cluster.insert_sync(master, task_tuple(t, t));
          ++reinserted;
        }
      }
      if (reinserted > 0) {
        std::cout << "progress stalled; re-inserted " << reinserted
                  << " unfinished tasks\n";
      }
    } else {
      stalls = 0;
    }
  }
  drain_results();

  std::int64_t sum = 0;
  for (std::int64_t t = 0; t < kTasks; ++t) {
    sum += values[static_cast<std::size_t>(t)];
  }
  std::int64_t expected = 0;
  for (std::int64_t t = 0; t < kTasks; ++t) expected += t * t;
  std::cout << "collected " << collected << "/" << kTasks
            << " results; sum of squares = " << sum << " (expected "
            << expected << ")\n";

  int per_machine[6] = {0, 0, 0, 0, 0, 0};
  for (const Worker& w : workers) {
    per_machine[w.machine().value] += w.completed();
  }
  for (std::uint32_t m = 1; m < 6; ++m) {
    std::cout << "  worker on M" << m << " completed " << per_machine[m]
              << " tasks" << (cluster.is_up(MachineId{m}) ? "" : " (down)")
              << "\n";
  }

  const auto check = semantics::check_history(cluster.history());
  std::cout << "semantics check: " << (check.ok() ? "clean" : "VIOLATED")
            << "\n";
  return sum == expected && check.ok() ? 0 : 1;
}
