// Coordination patterns: a fault-tolerant three-stage pipeline.
//
// Demonstrates the coordination library (src/coord) that a downstream user
// gets on top of the PASO primitives: a FIFO TupleQueue between stages, an
// AtomicCounter for progress tracking, a Barrier for phase alignment, and a
// Semaphore bounding stage concurrency — all living in replicated memory,
// so the pipeline's control state survives a replica crash mid-run.
//
// Stage 1 (two producers) pushes raw work items; stage 2 (three transformer
// processes, gated by a 2-permit semaphore) uppercases them; stage 3 (one
// consumer) collects. All parties then meet at a barrier and report.
#include <algorithm>
#include <cctype>
#include <iostream>

#include "coord/coord.hpp"
#include "semantics/checker.hpp"

using namespace paso;
using namespace paso::coord;

namespace {

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

}  // namespace

int main() {
  // Machines M0..M5 host the pipeline's processes; M6 and M7 are pure
  // storage replicas (they appear in write groups via the basic-support
  // assignment but run no application process). Crashing M6 mid-run shows
  // the coordination *state* is fault tolerant without conflating that with
  // process failure (a crashed process takes the tokens it holds with it —
  // see bag_of_tasks for the lease/re-insert answer to that).
  Cluster cluster(Schema(schema_specs()), [] {
    ClusterConfig cfg;
    cfg.machines = 8;
    cfg.lambda = 1;
    return cfg;
  }());
  cluster.assign_basic_support();

  TupleQueue raw(cluster, "raw");
  TupleQueue cooked(cluster, "cooked");
  AtomicCounter transformed(cluster, "transformed");
  Semaphore stage2_slots(cluster, "stage2");
  Barrier finish(cluster, "finish", 6);  // 2 producers + 3 transformers + 1 consumer

  const ProcessId admin = cluster.process(MachineId{0});
  raw.create(admin);
  cooked.create(admin);
  transformed.create(admin, 0);
  stage2_slots.create(admin, 2);
  finish.create(admin);

  constexpr int kItemsPerProducer = 6;
  constexpr int kTotalItems = 2 * kItemsPerProducer;
  int at_barrier = 0;

  // --- stage 1: producers on M1, M2 -----------------------------------------
  for (std::uint32_t m = 1; m <= 2; ++m) {
    const ProcessId producer = cluster.process(MachineId{m});
    auto chain = std::make_shared<std::function<void(int)>>();
    *chain = [&, producer, chain](int i) {
      if (i == kItemsPerProducer) {
        finish.arrive(producer, [&at_barrier] { ++at_barrier; });
        return;
      }
      raw.push(producer,
               "item-" + std::to_string(producer.machine.value) + "." +
                   std::to_string(i),
               [chain, i] { (*chain)(i + 1); });
    };
    (*chain)(0);
  }

  // --- stage 2: transformers on M3, M4, M5, bounded by the semaphore --------
  auto remaining = std::make_shared<int>(kTotalItems);
  for (std::uint32_t m = 3; m <= 5; ++m) {
    const ProcessId worker = cluster.process(MachineId{m});
    auto loop = std::make_shared<std::function<void()>>();
    *loop = [&, worker, loop, remaining] {
      if (*remaining == 0) {
        finish.arrive(worker, [&at_barrier] { ++at_barrier; });
        return;
      }
      stage2_slots.acquire(worker, [&, worker, loop, remaining](bool ok) {
        if (!ok || *remaining == 0) {
          stage2_slots.release(worker);
          finish.arrive(worker, [&at_barrier] { ++at_barrier; });
          return;
        }
        raw.pop(worker,
                [&, worker, loop, remaining](std::optional<std::string> item) {
                  if (item) {
                    --*remaining;
                    cooked.push(worker, upper(*item));
                    transformed.fetch_add(worker, 1, [](std::int64_t) {});
                  }
                  stage2_slots.release(worker);
                  (*loop)();
                },
                cluster.simulator().now() + 30000);
      });
    };
    (*loop)();
  }

  // --- stage 3: consumer on M0 ----------------------------------------------
  std::vector<std::string> results;
  auto consume = std::make_shared<std::function<void()>>();
  const ProcessId consumer = cluster.process(MachineId{0}, 1);
  *consume = [&, consume] {
    if (static_cast<int>(results.size()) == kTotalItems) {
      finish.arrive(consumer, [&at_barrier] { ++at_barrier; });
      return;
    }
    cooked.pop(consumer, [&, consume](std::optional<std::string> item) {
      if (item) results.push_back(*item);
      (*consume)();
    });
  };
  (*consume)();

  // Crash + recover a storage replica while the pipeline runs; the queues,
  // counters and barrier state are replicated, so everything completes.
  cluster.simulator().schedule_at(1200, [&cluster] {
    std::cout << "[t=1200] crashing storage replica M6 mid-pipeline\n";
    cluster.crash(MachineId{6});
  });
  cluster.simulator().schedule_at(8000, [&cluster] {
    std::cout << "[t=8000] recovering M6 (state transfer re-replicates)\n";
    cluster.recover(MachineId{6});
  });

  const bool finished = cluster.simulator().run_while_pending(
      [&at_barrier] { return at_barrier == 6; });

  std::cout << "pipeline " << (finished ? "completed" : "STALLED") << ": "
            << results.size() << "/" << kTotalItems << " items\n";
  std::sort(results.begin(), results.end());
  for (const std::string& r : results) std::cout << "  " << r << "\n";

  std::optional<std::int64_t> count;
  transformed.read(cluster.process(MachineId{0}),
                   [&count](std::int64_t v) { count = v; });
  cluster.simulator().run_while_pending([&count] { return count.has_value(); });
  std::cout << "transformed counter: " << count.value_or(-1) << "\n";

  const auto check = semantics::check_history(cluster.history());
  std::cout << "semantics check: " << (check.ok() ? "clean" : "VIOLATED")
            << "\n";
  return finished && check.ok() &&
                 static_cast<int>(results.size()) == kTotalItems
             ? 0
             : 1;
}
