// The whole-cluster view of the Section 5 allocation game.
//
// The paper optimizes "local to the management of a given object class ...
// in the hope that these local optimizations will lead to global efficiency"
// — and for one class the hope is a theorem: the total cost decomposes as a
// sum of independent per-machine games (each machine pays for its own reads,
// its own membership and its own share of every update), so running the
// Basic counter on every machine is (3 + lambda/K)-competitive against the
// globally optimal replication schedule for the class.
//
// This header plays that global game: a request stream where reads carry
// their issuing machine and updates are shared, projected onto per-machine
// subsequences for both the online counters and the exact DP optimum.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/allocation_game.hpp"
#include "common/rng.hpp"

namespace paso::analysis {

struct GlobalRequest {
  ReqKind kind = ReqKind::kRead;
  std::size_t machine = 0;  ///< issuing machine (reads only)
  Cost join_cost = 8;
};

using GlobalSequence = std::vector<GlobalRequest>;

/// Project the global stream onto one machine: its reads + every update.
RequestSequence project(const GlobalSequence& sequence, std::size_t machine);

struct GlobalComparison {
  Cost online = 0;
  Cost opt = 0;
  double ratio = 0;
  std::vector<double> per_machine_ratio;
};

/// Run independent Basic counters on `machines` non-basic machines against
/// the per-machine optima, and aggregate.
GlobalComparison compare_basic_global(const GlobalSequence& sequence,
                                      std::size_t machines,
                                      const GameCosts& costs,
                                      adaptive::CounterConfig config);

struct HotSpotOptions {
  std::size_t machines = 6;
  std::size_t phases = 8;
  std::size_t phase_length = 1000;
  double read_probability = 0.7;
  /// Probability that a read in a phase comes from that phase's hot machine
  /// (the rest spread uniformly).
  double locality = 0.9;
};

/// Rotating hot-spot workload: each phase concentrates reads on one machine
/// — the locality-shift pattern adaptive replication is built for.
GlobalSequence hotspot_sequence(const HotSpotOptions& options, Cost join_cost,
                                Rng& rng);

}  // namespace paso::analysis
