#include "analysis/trace_io.hpp"

#include <fstream>
#include <sstream>

#include "common/require.hpp"

namespace paso::analysis {

namespace {

const char* kind_name(ReqKind kind) {
  return kind == ReqKind::kRead ? "read" : "update";
}

ReqKind parse_kind(const std::string& token) {
  if (token == "read") return ReqKind::kRead;
  PASO_REQUIRE(token == "update", "unknown request kind: " + token);
  return ReqKind::kUpdate;
}

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> fields;
  std::stringstream stream(line);
  std::string field;
  while (std::getline(stream, field, ',')) fields.push_back(field);
  return fields;
}

}  // namespace

void write_requests(std::ostream& out, const RequestSequence& requests) {
  out << "kind,join_cost\n";
  for (const Request& r : requests) {
    out << kind_name(r.kind) << ',' << r.join_cost << '\n';
  }
}

RequestSequence read_requests(std::istream& in) {
  std::string line;
  PASO_REQUIRE(static_cast<bool>(std::getline(in, line)) &&
                   line == "kind,join_cost",
               "bad requests header");
  RequestSequence requests;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = split_csv(line);
    PASO_REQUIRE(fields.size() == 2, "bad requests row: " + line);
    requests.push_back(
        Request{parse_kind(fields[0]), std::stod(fields[1])});
  }
  return requests;
}

void write_global(std::ostream& out, const GlobalSequence& sequence) {
  out << "kind,machine,join_cost\n";
  for (const GlobalRequest& r : sequence) {
    out << kind_name(r.kind) << ',' << r.machine << ',' << r.join_cost
        << '\n';
  }
}

GlobalSequence read_global(std::istream& in) {
  std::string line;
  PASO_REQUIRE(static_cast<bool>(std::getline(in, line)) &&
                   line == "kind,machine,join_cost",
               "bad global header");
  GlobalSequence sequence;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = split_csv(line);
    PASO_REQUIRE(fields.size() == 3, "bad global row: " + line);
    sequence.push_back(GlobalRequest{parse_kind(fields[0]),
                                     std::stoul(fields[1]),
                                     std::stod(fields[2])});
  }
  return sequence;
}

void write_failures(std::ostream& out, const adaptive::FailureTrace& trace) {
  out << "machine\n";
  for (const std::size_t m : trace) out << m << '\n';
}

adaptive::FailureTrace read_failures(std::istream& in) {
  std::string line;
  PASO_REQUIRE(static_cast<bool>(std::getline(in, line)) &&
                   line == "machine",
               "bad failures header");
  adaptive::FailureTrace trace;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    trace.push_back(std::stoul(line));
  }
  return trace;
}

void save_requests(const std::string& path, const RequestSequence& requests) {
  std::ofstream out(path);
  PASO_REQUIRE(out.good(), "cannot write " + path);
  write_requests(out, requests);
}

RequestSequence load_requests(const std::string& path) {
  std::ifstream in(path);
  PASO_REQUIRE(in.good(), "cannot read " + path);
  return read_requests(in);
}

void save_failures(const std::string& path,
                   const adaptive::FailureTrace& trace) {
  std::ofstream out(path);
  PASO_REQUIRE(out.good(), "cannot write " + path);
  write_failures(out, trace);
}

adaptive::FailureTrace load_failures(const std::string& path) {
  std::ifstream in(path);
  PASO_REQUIRE(in.good(), "cannot read " + path);
  return read_failures(in);
}

}  // namespace paso::analysis
