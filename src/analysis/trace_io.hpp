// CSV import/export for workloads and failure traces.
//
// The competitive experiments are driven by generated sequences; persisting
// them lets a result be re-examined outside the harness (spreadsheets,
// plotting) and lets externally captured traces — e.g. real machine-failure
// logs, the "real-life instances" the paper appeals to for LRF — be replayed
// through the same machinery.
//
// Formats (header line required):
//   requests:  kind,join_cost        kind in {read, update}
//   global:    kind,machine,join_cost
//   failures:  machine
#pragma once

#include <iosfwd>
#include <string>

#include "adaptive/support_selection.hpp"
#include "analysis/multi_machine.hpp"

namespace paso::analysis {

void write_requests(std::ostream& out, const RequestSequence& requests);
RequestSequence read_requests(std::istream& in);

void write_global(std::ostream& out, const GlobalSequence& sequence);
GlobalSequence read_global(std::istream& in);

void write_failures(std::ostream& out, const adaptive::FailureTrace& trace);
adaptive::FailureTrace read_failures(std::istream& in);

// File-path conveniences (throw InvariantViolation on I/O failure).
void save_requests(const std::string& path, const RequestSequence& requests);
RequestSequence load_requests(const std::string& path);
void save_failures(const std::string& path,
                   const adaptive::FailureTrace& trace);
adaptive::FailureTrace load_failures(const std::string& path);

}  // namespace paso::analysis
