// Event-wise audit of Theorem 2's amortized argument.
//
// The proof of Theorem 2 defines a potential Phi over the joint state of the
// Basic algorithm and OPT and claims every event's amortized online cost is
// at most (3 + lambda/K) times OPT's cost for that event. This audit
// replays a request sequence against both the online counter and the exact
// DP optimum and checks that inequality event by event.
//
// We use the potential (q = 1 normalization, c the online counter):
//
//     both out                : 2c
//     OPT out, Basic in       : c
//     both in                 : 3K - 2c
//     OPT in,  Basic out      : 3K - c
//
// The first three cases are the paper's; the fourth tightens the paper's
// printed "3K + lambda - c" to "3K - c", which is what actually closes the
// case analysis (with the printed constant, a Basic leave while OPT stays in
// has amortized cost lambda + 3 > 3 + lambda/K; see DESIGN.md errata). The
// event-wise argument holds for lambda <= 3 (equivalently read-group size
// r <= 4); for larger lambda the paper's own extension bound 3 + 2*lambda/K
// applies, and the aggregate benches cover that regime empirically.
#pragma once

#include <string>
#include <vector>

#include "analysis/allocation_game.hpp"

namespace paso::analysis {

struct AuditResult {
  bool ok = true;
  /// Largest amortized/opt ratio observed over events with opt cost > 0.
  double worst_event_ratio = 0;
  /// Description of the first violating event, if any.
  std::string first_violation;
  std::size_t events_checked = 0;
};

/// Audits a *fixed-K* sequence (every request must carry the same join
/// cost). `lambda` = read_group - 1; the claimed per-event ratio is
/// 3 + lambda/K.
AuditResult audit_potential(const RequestSequence& requests,
                            const GameCosts& costs,
                            adaptive::CounterConfig config);

}  // namespace paso::analysis
