#include "analysis/potential_audit.hpp"

#include <algorithm>
#include <sstream>

#include "common/require.hpp"

namespace paso::analysis {

namespace {

double potential(bool opt_in, bool basic_in, Cost c, Cost k) {
  if (!opt_in && !basic_in) return 2 * c;
  if (!opt_in && basic_in) return c;
  if (opt_in && basic_in) return 3 * k - 2 * c;
  return 3 * k - c;  // opt in, basic out
}

}  // namespace

AuditResult audit_potential(const RequestSequence& requests,
                            const GameCosts& costs,
                            adaptive::CounterConfig config) {
  AuditResult result;
  if (requests.empty()) return result;

  const Cost k = config.join_cost;
  for (const Request& req : requests) {
    PASO_REQUIRE(req.join_cost == k,
                 "potential audit requires a fixed join cost");
  }
  PASO_REQUIRE(costs.query_cost == 1, "audit covers the q = 1 normalization");
  const std::size_t lambda = costs.read_group - 1;
  const double ratio = theorem2_bound(lambda, k);
  constexpr double kEps = 1e-9;

  const OptResult opt = optimal_allocation(requests, costs,
                                           config.is_basic ||
                                               config.start_in_group);
  adaptive::CounterAutomaton automaton(config);

  bool opt_prev_in = config.is_basic || config.start_in_group;
  double phi = potential(opt_prev_in, automaton.in_group(),
                         automaton.counter(), k);
  PASO_REQUIRE(phi >= -kEps, "initial potential must be non-negative");
  // Theorem-2-style accounting allows a constant B for initialization; with
  // identical initial states phi starts at 0 for non-members.

  for (std::size_t t = 0; t < requests.size(); ++t) {
    const Request& req = requests[t];
    const bool opt_now_in = opt.in_group[t];

    // OPT's cost for this event: a join transition plus serving.
    Cost opt_cost = 0;
    if (opt_now_in && !opt_prev_in) opt_cost += req.join_cost;
    if (req.kind == ReqKind::kRead) {
      opt_cost += opt_now_in ? costs.read_in() : costs.read_out();
    } else {
      opt_cost += opt_now_in ? GameCosts::update_in()
                             : GameCosts::update_out();
    }

    // Online cost for this event.
    Cost online_cost = 0;
    adaptive::CounterAction action;
    if (req.kind == ReqKind::kRead) {
      online_cost += automaton.in_group() ? costs.read_in() : costs.read_out();
      action = automaton.on_read(costs.read_group);
      if (action == adaptive::CounterAction::kJoin) online_cost += req.join_cost;
    } else {
      online_cost +=
          automaton.in_group() ? GameCosts::update_in() : GameCosts::update_out();
      action = automaton.on_update();
    }

    const double phi_next = potential(opt_now_in, automaton.in_group(),
                                      automaton.counter(), k);
    PASO_REQUIRE(phi_next >= -kEps, "potential must stay non-negative");
    const double amortized = online_cost + phi_next - phi;
    phi = phi_next;
    opt_prev_in = opt_now_in;
    ++result.events_checked;

    if (opt_cost > 0) {
      result.worst_event_ratio =
          std::max(result.worst_event_ratio, amortized / opt_cost);
    }
    const bool violated = amortized > ratio * opt_cost + kEps;
    if (violated && result.ok) {
      result.ok = false;
      std::ostringstream os;
      os << "event " << t << " ("
         << (req.kind == ReqKind::kRead ? "read" : "update")
         << "): amortized " << amortized << " > " << ratio << " * opt "
         << opt_cost;
      result.first_violation = os.str();
    }
  }
  return result;
}

}  // namespace paso::analysis
