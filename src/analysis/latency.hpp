// Operation-latency analysis over recorded histories.
//
// The history recorder already captures every operation's issue and return
// in virtual time; this helper turns a history into per-kind latency
// summaries (the "response time" measure the paper names as a valid concern
// but leaves to [13] — we report it alongside msg-cost and work).
#pragma once

#include "common/stats.hpp"
#include "semantics/history.hpp"

namespace paso::analysis {

struct LatencyReport {
  Summary insert;
  Summary read;
  Summary read_del;
  std::size_t pending = 0;  ///< operations that never returned

  const Summary& of(semantics::OpKind kind) const {
    switch (kind) {
      case semantics::OpKind::kInsert:
        return insert;
      case semantics::OpKind::kRead:
        return read;
      case semantics::OpKind::kReadDel:
        return read_del;
    }
    return insert;
  }
};

inline LatencyReport latency_report(
    const std::vector<semantics::OpRecord>& records) {
  LatencyReport report;
  for (const semantics::OpRecord& r : records) {
    if (!r.return_time) {
      ++report.pending;
      continue;
    }
    const double latency = *r.return_time - r.issue_time;
    switch (r.kind) {
      case semantics::OpKind::kInsert:
        report.insert.add(latency);
        break;
      case semantics::OpKind::kRead:
        report.read.add(latency);
        break;
      case semantics::OpKind::kReadDel:
        report.read_del.add(latency);
        break;
    }
  }
  return report;
}

inline LatencyReport latency_report(const semantics::HistoryRecorder& rec) {
  return latency_report(rec.records());
}

}  // namespace paso::analysis
