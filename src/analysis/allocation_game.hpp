// The per-(machine, class) allocation game of Section 5.
//
// Fix one object class C and one non-basic machine M. The request sequence
// sigma interleaves reads (by processes local to M) and updates (inserts /
// read&dels to C, served by every write-group member). M's state is binary:
// in wg(C) or out. Work costs, in the paper's normalized units:
//
//                      in wg(C)        out of wg(C)
//   read               q   (local)     q * r  (gcast to the read group of
//                                              r = lambda+1-|F| servers)
//   update             1   (apply)     0
//   join (out -> in)   K   (copy the class state)
//   leave (in -> out)  0
//
// The Basic algorithm's counter plays this game online; Theorem 2 bounds it
// by (3 + lambda/K) * OPT. This header provides the exact offline optimum
// (two-state dynamic program with backtrace), the online runner, and the
// competitive comparison — the machinery behind experiments E3–E5.
#pragma once

#include <cstdint>
#include <vector>

#include "adaptive/counter.hpp"
#include "adaptive/doubling.hpp"
#include "common/cost.hpp"

namespace paso::analysis {

enum class ReqKind : std::uint8_t { kRead, kUpdate };

struct Request {
  ReqKind kind = ReqKind::kRead;
  /// The true join cost K at the time of this request. Constant for the
  /// fixed-size game (Theorem 2); tracks l for the doubling game (Theorem 3).
  Cost join_cost = 8;
};

using RequestSequence = std::vector<Request>;

struct GameCosts {
  Cost query_cost = 1;        ///< q
  std::size_t read_group = 2; ///< r = lambda + 1 - |F|

  Cost read_in() const { return query_cost; }
  Cost read_out() const {
    return query_cost * static_cast<Cost>(read_group);
  }
  static constexpr Cost update_in() { return 1; }
  static constexpr Cost update_out() { return 0; }
};

/// Offline optimum with decision trace. states[t] is OPT's membership while
/// serving request t (after any transition).
struct OptResult {
  Cost total = 0;
  std::vector<bool> in_group;  // one entry per request
};

OptResult optimal_allocation(const RequestSequence& requests,
                             const GameCosts& costs, bool start_in = false);

/// Online run of the Basic counter (fixed K taken from the automaton).
struct OnlineResult {
  Cost total = 0;
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::vector<bool> in_group;   // membership while serving each request
  std::vector<Cost> event_cost; // per-request online cost (incl. join)
};

OnlineResult run_basic(const RequestSequence& requests, const GameCosts& costs,
                       adaptive::CounterConfig config);

/// Online run of the doubling/halving algorithm; each request's join_cost is
/// the currently observed K.
OnlineResult run_doubling(const RequestSequence& requests,
                          const GameCosts& costs,
                          adaptive::DoublingAutomaton::Config config);

struct CompetitiveComparison {
  Cost online = 0;
  Cost opt = 0;
  double ratio = 0;  ///< online / max(opt, 1)
};

CompetitiveComparison compare_basic(const RequestSequence& requests,
                                    const GameCosts& costs,
                                    adaptive::CounterConfig config);

CompetitiveComparison compare_doubling(
    const RequestSequence& requests, const GameCosts& costs,
    adaptive::DoublingAutomaton::Config config);

/// Theorem 2's bound for the given parameters (q = 1 case): 3 + lambda/K.
inline double theorem2_bound(std::size_t lambda, Cost k) {
  return 3.0 + static_cast<double>(lambda) / static_cast<double>(k);
}

/// The data-structure extension's bound: 3 + 2*lambda/K.
inline double extension_bound(std::size_t lambda, Cost k) {
  return 3.0 + 2.0 * static_cast<double>(lambda) / static_cast<double>(k);
}

/// Theorem 3's bound for the doubling/halving algorithm: 6 + 2*lambda/K.
inline double theorem3_bound(std::size_t lambda, Cost k) {
  return 6.0 + 2.0 * static_cast<double>(lambda) / static_cast<double>(k);
}

}  // namespace paso::analysis
