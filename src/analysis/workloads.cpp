#include "analysis/workloads.hpp"

#include <cmath>

#include "common/require.hpp"

namespace paso::analysis {

RequestSequence random_sequence(std::size_t length, double read_probability,
                                Cost join_cost, Rng& rng) {
  RequestSequence requests;
  requests.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    requests.push_back(Request{
        rng.chance(read_probability) ? ReqKind::kRead : ReqKind::kUpdate,
        join_cost});
  }
  return requests;
}

RequestSequence phased_sequence(const PhasedOptions& options, Cost join_cost,
                                Rng& rng) {
  RequestSequence requests;
  requests.reserve(options.phases * options.phase_length);
  for (std::size_t phase = 0; phase < options.phases; ++phase) {
    const double p = phase % 2 == 0 ? options.read_heavy_probability
                                    : options.update_heavy_probability;
    for (std::size_t i = 0; i < options.phase_length; ++i) {
      requests.push_back(
          Request{rng.chance(p) ? ReqKind::kRead : ReqKind::kUpdate,
                  join_cost});
    }
  }
  return requests;
}

RequestSequence adversarial_basic_sequence(std::size_t cycles, Cost join_cost,
                                           const GameCosts& costs) {
  PASO_REQUIRE(join_cost > 0, "K must be positive");
  const std::size_t reads_to_join = static_cast<std::size_t>(
      std::ceil(join_cost / costs.read_out()));
  const std::size_t updates_to_leave =
      static_cast<std::size_t>(std::ceil(join_cost));
  RequestSequence requests;
  requests.reserve(cycles * (reads_to_join + updates_to_leave));
  for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
    for (std::size_t i = 0; i < reads_to_join; ++i) {
      requests.push_back(Request{ReqKind::kRead, join_cost});
    }
    for (std::size_t i = 0; i < updates_to_leave; ++i) {
      requests.push_back(Request{ReqKind::kUpdate, join_cost});
    }
  }
  return requests;
}

RequestSequence growth_sequence(const GrowthOptions& options, Rng& rng) {
  RequestSequence requests;
  requests.reserve(options.phases * options.phase_length);
  double live = static_cast<double>(options.initial_objects);
  for (std::size_t phase = 0; phase < options.phases; ++phase) {
    const bool growing = phase % 2 == 0;
    const double insert_fraction = growing
                                       ? options.growth_insert_fraction
                                       : 1.0 - options.growth_insert_fraction;
    for (std::size_t i = 0; i < options.phase_length; ++i) {
      const Cost join_cost =
          std::max<Cost>(1, live * options.join_cost_per_object);
      if (rng.chance(options.read_probability)) {
        requests.push_back(Request{ReqKind::kRead, join_cost});
        continue;
      }
      requests.push_back(Request{ReqKind::kUpdate, join_cost});
      if (rng.chance(insert_fraction)) {
        live += 1;
      } else if (live > 1) {
        live -= 1;
      }
    }
  }
  return requests;
}

}  // namespace paso::analysis
