#include "analysis/multi_machine.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace paso::analysis {

RequestSequence project(const GlobalSequence& sequence, std::size_t machine) {
  RequestSequence projected;
  for (const GlobalRequest& request : sequence) {
    if (request.kind == ReqKind::kUpdate) {
      projected.push_back(Request{ReqKind::kUpdate, request.join_cost});
    } else if (request.machine == machine) {
      projected.push_back(Request{ReqKind::kRead, request.join_cost});
    }
  }
  return projected;
}

GlobalComparison compare_basic_global(const GlobalSequence& sequence,
                                      std::size_t machines,
                                      const GameCosts& costs,
                                      adaptive::CounterConfig config) {
  PASO_REQUIRE(machines >= 1, "need at least one machine");
  GlobalComparison result;
  for (std::size_t m = 0; m < machines; ++m) {
    const RequestSequence projected = project(sequence, m);
    const CompetitiveComparison cmp =
        compare_basic(projected, costs, config);
    result.online += cmp.online;
    result.opt += cmp.opt;
    result.per_machine_ratio.push_back(cmp.ratio);
  }
  result.ratio = result.online / std::max<Cost>(result.opt, 1);
  return result;
}

GlobalSequence hotspot_sequence(const HotSpotOptions& options, Cost join_cost,
                                Rng& rng) {
  GlobalSequence sequence;
  sequence.reserve(options.phases * options.phase_length);
  for (std::size_t phase = 0; phase < options.phases; ++phase) {
    const std::size_t hot = phase % options.machines;
    for (std::size_t i = 0; i < options.phase_length; ++i) {
      GlobalRequest request;
      request.join_cost = join_cost;
      if (rng.chance(options.read_probability)) {
        request.kind = ReqKind::kRead;
        request.machine = rng.chance(options.locality)
                              ? hot
                              : rng.index(options.machines);
      } else {
        request.kind = ReqKind::kUpdate;
      }
      sequence.push_back(request);
    }
  }
  return sequence;
}

}  // namespace paso::analysis
