#include "analysis/allocation_game.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "common/require.hpp"

namespace paso::analysis {

OptResult optimal_allocation(const RequestSequence& requests,
                             const GameCosts& costs, bool start_in) {
  // Two-state DP. dp[s] = minimum cost with membership s after serving the
  // requests so far; parent[t][s] = membership before request t on the
  // optimal path into (t, s).
  constexpr Cost kInf = std::numeric_limits<Cost>::infinity();
  Cost dp_in = start_in ? 0 : kInf;
  Cost dp_out = start_in ? kInf : 0;
  std::vector<std::array<bool, 2>> parent(requests.size());

  for (std::size_t t = 0; t < requests.size(); ++t) {
    const Request& req = requests[t];
    const Cost serve_in = req.kind == ReqKind::kRead ? costs.read_in()
                                                     : GameCosts::update_in();
    const Cost serve_out = req.kind == ReqKind::kRead
                               ? costs.read_out()
                               : GameCosts::update_out();
    // Transitions happen before serving; joining costs the current K.
    const Cost into_in_from_out = dp_out + req.join_cost;
    const Cost next_in = std::min(dp_in, into_in_from_out) + serve_in;
    parent[t][1] = dp_in <= into_in_from_out;  // true: was already in
    const Cost out_from_in = dp_in;            // leaving is free
    const Cost next_out = std::min(dp_out, out_from_in) + serve_out;
    parent[t][0] = dp_out > out_from_in;  // true: was in, left now
    dp_in = next_in;
    dp_out = next_out;
  }

  OptResult result;
  result.total = std::min(dp_in, dp_out);
  result.in_group.resize(requests.size());
  bool state_in = dp_in <= dp_out;
  for (std::size_t t = requests.size(); t-- > 0;) {
    result.in_group[t] = state_in;
    if (state_in) {
      state_in = parent[t][1];
    } else {
      state_in = parent[t][0];
    }
  }
  return result;
}

namespace {

template <typename ReadFn, typename UpdateFn, typename InGroupFn>
OnlineResult run_online(const RequestSequence& requests, const GameCosts& costs,
                        ReadFn&& on_read, UpdateFn&& on_update,
                        InGroupFn&& in_group) {
  OnlineResult result;
  result.in_group.reserve(requests.size());
  result.event_cost.reserve(requests.size());
  for (const Request& req : requests) {
    Cost cost = 0;
    adaptive::CounterAction action = adaptive::CounterAction::kNone;
    if (req.kind == ReqKind::kRead) {
      const bool was_in = in_group();
      cost += was_in ? costs.read_in() : costs.read_out();
      action = on_read(req);
      if (action == adaptive::CounterAction::kJoin) {
        cost += req.join_cost;
        ++result.joins;
      }
    } else {
      const bool was_in = in_group();
      cost += was_in ? GameCosts::update_in() : GameCosts::update_out();
      action = on_update(req);
      if (action == adaptive::CounterAction::kLeave) ++result.leaves;
    }
    result.total += cost;
    result.event_cost.push_back(cost);
    result.in_group.push_back(in_group());
  }
  return result;
}

}  // namespace

OnlineResult run_basic(const RequestSequence& requests, const GameCosts& costs,
                       adaptive::CounterConfig config) {
  adaptive::CounterAutomaton automaton(config);
  return run_online(
      requests, costs,
      [&](const Request&) { return automaton.on_read(costs.read_group); },
      [&](const Request&) { return automaton.on_update(); },
      [&] { return automaton.in_group(); });
}

OnlineResult run_doubling(const RequestSequence& requests,
                          const GameCosts& costs,
                          adaptive::DoublingAutomaton::Config config) {
  adaptive::DoublingAutomaton automaton(config);
  return run_online(
      requests, costs,
      [&](const Request& req) {
        return automaton.on_read(costs.read_group, req.join_cost);
      },
      [&](const Request& req) { return automaton.on_update(req.join_cost); },
      [&] { return automaton.in_group(); });
}

CompetitiveComparison compare_basic(const RequestSequence& requests,
                                    const GameCosts& costs,
                                    adaptive::CounterConfig config) {
  CompetitiveComparison cmp;
  cmp.online = run_basic(requests, costs, config).total;
  cmp.opt = optimal_allocation(requests, costs,
                               config.is_basic || config.start_in_group)
                .total;
  cmp.ratio = cmp.online / std::max<Cost>(cmp.opt, 1);
  return cmp;
}

CompetitiveComparison compare_doubling(
    const RequestSequence& requests, const GameCosts& costs,
    adaptive::DoublingAutomaton::Config config) {
  CompetitiveComparison cmp;
  cmp.online = run_doubling(requests, costs, config).total;
  cmp.opt = optimal_allocation(requests, costs,
                               config.is_basic || config.start_in_group)
                .total;
  cmp.ratio = cmp.online / std::max<Cost>(cmp.opt, 1);
  return cmp;
}

}  // namespace paso::analysis
