// Request-sequence generators for the allocation game (experiments E3–E5).
//
// Four families:
//   * random     — i.i.d. reads/updates with a given read probability;
//   * phased     — alternating read-heavy and update-heavy phases, the
//                  locality pattern adaptive replication is designed for;
//   * adversarial— the rent-or-buy style adversary that forces the Basic
//                  algorithm toward its competitive bound: read bursts that
//                  just trigger a join, followed by update runs that drain
//                  the counter to a leave, repeated;
//   * growth     — for the doubling/halving game: the live-object count l
//                  rises and falls by large factors, dragging the join cost
//                  K = Theta(l) with it (Theorem 3's regime).
#pragma once

#include <cstdint>

#include "analysis/allocation_game.hpp"
#include "common/rng.hpp"

namespace paso::analysis {

RequestSequence random_sequence(std::size_t length, double read_probability,
                                Cost join_cost, Rng& rng);

struct PhasedOptions {
  std::size_t phases = 8;
  std::size_t phase_length = 256;
  double read_heavy_probability = 0.95;
  double update_heavy_probability = 0.05;
};
RequestSequence phased_sequence(const PhasedOptions& options, Cost join_cost,
                                Rng& rng);

/// The adversary for the Basic counter: with costs (q, r) and threshold K,
/// issue ceil(K / (q*r)) reads (online joins on the last one), then K
/// updates (online leaves on the last one), for `cycles` rounds.
RequestSequence adversarial_basic_sequence(std::size_t cycles, Cost join_cost,
                                           const GameCosts& costs);

struct GrowthOptions {
  std::size_t phases = 6;
  std::size_t phase_length = 512;
  /// Ratio of inserts among updates in a growth phase (shrink phases use the
  /// complement), so l swings up and down across phases.
  double growth_insert_fraction = 0.9;
  double read_probability = 0.5;
  Cost join_cost_per_object = 1.0;
  std::size_t initial_objects = 16;
};
RequestSequence growth_sequence(const GrowthOptions& options, Rng& rng);

}  // namespace paso::analysis
