// Scan store: the "linear list for text pattern matching" of Section 5.
// No index: every query walks the objects in age order, so the model query
// and removal costs are Theta(l) while insertion is O(1).
#pragma once

#include <algorithm>

#include "storage/store_base.hpp"

namespace paso::storage {

class LinearStore final : public StoreBase {
 public:
  void store(PasoObject object, std::uint64_t age) override {
    base_store(std::move(object), age);
  }

  std::optional<PasoObject> find(const SearchCriterion& sc) const override {
    return oldest_or_ranked(sc);
  }

  std::optional<PasoObject> remove(const SearchCriterion& sc) override {
    if (sc.top_k) {
      if (!sc.ranked_valid()) return std::nullopt;
      const auto age = ranked_scan(sc);
      if (!age) return std::nullopt;
      return base_erase(*age);
    }
    for (const auto& [age, object] : by_age_) {
      if (probe(sc, object)) return base_erase(age);
    }
    return std::nullopt;
  }

  bool erase(ObjectId id) override {
    const auto age = age_of(id);
    if (!age) return false;
    base_erase(*age);
    return true;
  }

  Cost insert_cost() const override { return 1; }
  Cost query_cost() const override {
    return std::max<Cost>(1, static_cast<Cost>(size()));
  }
  Cost remove_cost() const override {
    return std::max<Cost>(1, static_cast<Cost>(size()));
  }
  const char* kind() const override { return "linear"; }

 private:
  void index_cleared() override {}

  std::optional<PasoObject> oldest_or_ranked(const SearchCriterion& sc) const {
    if (sc.top_k) {
      if (!sc.ranked_valid()) return std::nullopt;
      const auto age = ranked_scan(sc);
      if (!age) return std::nullopt;
      return by_age_.at(*age);
    }
    for (const auto& [age, object] : by_age_) {
      if (probe(sc, object)) return object;
    }
    return std::nullopt;
  }
};

}  // namespace paso::storage
