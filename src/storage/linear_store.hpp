// Scan store: the "linear list for text pattern matching" of Section 5.
// No index: every query walks the objects in age order, so the model query
// and removal costs are Theta(l) while insertion is O(1).
#pragma once

#include <algorithm>

#include "storage/store_base.hpp"

namespace paso::storage {

class LinearStore final : public StoreBase {
 public:
  void store(PasoObject object, std::uint64_t age) override {
    base_store(std::move(object), age);
  }

  std::optional<PasoObject> find(const SearchCriterion& sc) const override {
    for (const auto& [age, object] : by_age_) {
      if (probe(sc, object)) return object;
    }
    return std::nullopt;
  }

  std::optional<PasoObject> remove(const SearchCriterion& sc) override {
    for (const auto& [age, object] : by_age_) {
      if (probe(sc, object)) return base_erase(age);
    }
    return std::nullopt;
  }

  bool erase(ObjectId id) override {
    const auto age = age_of(id);
    if (!age) return false;
    base_erase(*age);
    return true;
  }

  Cost insert_cost() const override { return 1; }
  Cost query_cost() const override {
    return std::max<Cost>(1, static_cast<Cost>(size()));
  }
  Cost remove_cost() const override {
    return std::max<Cost>(1, static_cast<Cost>(size()));
  }
  const char* kind() const override { return "linear"; }

 private:
  void index_cleared() override {}
};

}  // namespace paso::storage
