// Multi-field associative store: HashStore generalized to a configurable
// set of indexed fields.
//
// Section 5 allows "several such data structures ... for a single class";
// IndexedStore takes that to its useful extreme for dictionary workloads.
// Each indexed field keeps its own hash index (value hash -> age list, kept
// in age order), and oldest_match picks the most selective indexed field
// carrying an Exact or OneOf pattern — the one whose candidate list is
// shortest — instead of scanning the whole age order. Criteria touching no
// indexed field still fall back to the age scan, so every criterion HashStore
// answers is answered identically here (the differential-oracle test pins
// this against LinearStore).
#pragma once

#include <unordered_map>
#include <vector>

#include "storage/store_base.hpp"

namespace paso::storage {

class IndexedStore final : public StoreBase {
 public:
  /// `indexed_fields` lists the field positions to index. The default — just
  /// field 0 — makes IndexedStore a drop-in for HashStore(0). Duplicate
  /// positions are collapsed.
  explicit IndexedStore(std::vector<std::size_t> indexed_fields = {0});

  void store(PasoObject object, std::uint64_t age) override;
  std::optional<PasoObject> find(const SearchCriterion& sc) const override;
  std::optional<PasoObject> remove(const SearchCriterion& sc) override;
  bool erase(ObjectId id) override;

  /// Model costs: each index is O(1) amortized, so updates cost one unit per
  /// maintained index and a served query costs one unit.
  Cost insert_cost() const override {
    return static_cast<Cost>(indexes_.size());
  }
  Cost query_cost() const override { return 1; }
  Cost remove_cost() const override {
    return static_cast<Cost>(indexes_.size());
  }
  const char* kind() const override { return "indexed"; }

  std::vector<std::size_t> indexed_fields() const;

 private:
  struct FieldIndex {
    std::size_t field = 0;
    // value hash -> ages of objects carrying that value, age-ascending
    // (ages only ever grow and load() replays in age order, so push_back
    // preserves the invariant).
    std::unordered_map<std::size_t, std::vector<std::uint64_t>> buckets;
  };

  void index_cleared() override;
  std::optional<std::uint64_t> oldest_match(const SearchCriterion& sc) const;
  void drop_from_indexes(const PasoObject& object, std::uint64_t age);

  std::vector<FieldIndex> indexes_;
};

}  // namespace paso::storage
