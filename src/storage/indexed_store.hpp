// Multi-field associative store: HashStore generalized to a configurable
// set of indexed fields, with an optional sorted twin per index.
//
// Section 5 allows "several such data structures ... for a single class";
// IndexedStore takes that to its useful extreme. Each indexed field keeps a
// hash index (value hash -> age list, kept in age order) serving Exact and
// OneOf patterns; in ordered mode each field additionally keeps a sorted
// index (value -> age list) serving Range, IntRange/RealRange, TextPrefix
// and rank-ordered TopK walks. Query planning — which index drives a
// compound criterion — is delegated to plan(): paths are ordered by
// estimated selectivity from the per-index cardinality stats, with an
// arity-completeness early-out. Criteria touching no indexed field still
// fall back to the age scan, so every criterion LinearStore answers is
// answered identically here (the differential-oracle test pins this).
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "storage/store_base.hpp"

namespace paso::storage {

class IndexedStore final : public StoreBase {
 public:
  struct Options {
    /// Maintain a sorted twin per indexed field. Costs one extra model unit
    /// per index on updates; buys Range/Prefix walks and rank-ordered TopK.
    bool ordered = false;
  };

  /// Per-index cardinality statistics, maintained on insert/remove; the
  /// planner's selectivity estimates derive from the underlying buckets.
  struct IndexStats {
    std::size_t field = 0;
    std::size_t entries = 0;   // ages indexed under this field
    std::size_t distinct = 0;  // distinct values seen
    friend bool operator==(const IndexStats&, const IndexStats&) = default;
  };

  /// `indexed_fields` lists the field positions to index. The default — just
  /// field 0 — makes IndexedStore a drop-in for HashStore(0). Duplicate
  /// positions are collapsed.
  explicit IndexedStore(std::vector<std::size_t> indexed_fields = {0});
  IndexedStore(std::vector<std::size_t> indexed_fields, Options options);

  void store(PasoObject object, std::uint64_t age) override;
  std::optional<PasoObject> find(const SearchCriterion& sc) const override;
  std::optional<PasoObject> remove(const SearchCriterion& sc) override;
  bool erase(ObjectId id) override;

  /// Model costs: each hash index is O(1) amortized — one unit per
  /// maintained index, two in ordered mode (the sorted twin is a tree
  /// insert). A served query costs one unit, or a log-sized descent when
  /// sorted twins are consulted.
  Cost insert_cost() const override {
    return static_cast<Cost>(indexes_.size() * (options_.ordered ? 2 : 1));
  }
  Cost query_cost() const override;
  Cost remove_cost() const override {
    return static_cast<Cost>(indexes_.size() * (options_.ordered ? 2 : 1));
  }
  const char* kind() const override { return "indexed"; }

  std::vector<std::size_t> indexed_fields() const;
  bool ordered() const { return options_.ordered; }
  std::vector<IndexStats> index_stats() const;

  /// The access path a criterion would take right now (exposed for tests,
  /// benches and docs; find/remove use exactly this).
  QueryPlan plan(const SearchCriterion& sc) const;

 private:
  struct FieldIndex {
    std::size_t field = 0;
    // value hash -> ages of objects carrying that value, age-ascending
    // (ages only ever grow and load() replays in age order, so push_back
    // preserves the invariant).
    std::unordered_map<std::size_t, std::vector<std::uint64_t>> buckets;
    // Ordered mode: value -> ages, same age-ascending invariant per key.
    std::map<Value, std::vector<std::uint64_t>> sorted;
    std::size_t entries = 0;
  };

  using SortedIter =
      std::map<Value, std::vector<std::uint64_t>>::const_iterator;

  void index_cleared() override;
  std::optional<std::uint64_t> oldest_match(const SearchCriterion& sc) const;
  /// Ranked read driven by an index path (hash bucket enumeration or a
  /// rank-ordered sorted walk when the driver is the rank field).
  std::optional<std::uint64_t> ranked_from_index(const SearchCriterion& sc,
                                                 const PlanStep& driver) const;
  /// Directional walk of `index`'s sorted twin over `region` (usable, with
  /// an order-preserving hook): candidates arrive in rank order, so the
  /// k-th verified match answers the read.
  std::optional<std::uint64_t> ranked_region_walk(
      const SearchCriterion& sc, const FieldIndex& index,
      const SortedRegion& region) const;
  /// Ranked read with no driving path: a rank-ordered walk of the rank
  /// field's sorted twin when order-compatible, else the spec scan.
  std::optional<std::uint64_t> ranked_walk_or_scan(
      const SearchCriterion& sc) const;
  const FieldIndex& index_of(std::size_t field) const;
  /// Sorted-unique bucket keys for an Exact/OneOf pattern.
  static std::vector<std::size_t> hash_keys(const FieldPattern& pattern);
  SortedIter region_first(const FieldIndex& index,
                          const SortedRegion& region) const;
  SortedIter region_last(const FieldIndex& index, const SortedRegion& region,
                         SortedIter first) const;
  void drop_from_indexes(const PasoObject& object, std::uint64_t age);

  std::vector<FieldIndex> indexes_;
  Options options_;
};

}  // namespace paso::storage
