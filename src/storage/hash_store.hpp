// Hash-indexed store: the "hash table for dictionary queries" of Section 5,
// with I(.) = D(.) = Q(.) = O(1) model cost (the normalization the Basic
// algorithm's analysis assumes).
//
// The index maps the hash of a designated key field to the ages of objects
// carrying that key. Criteria with an Exact pattern on the key field use the
// index; anything else falls back to an age-ordered scan (still correct,
// since PASO criteria are general — the fallback is what "permitting general
// search criteria" costs on a dictionary structure).
#pragma once

#include <unordered_map>
#include <vector>

#include "storage/store_base.hpp"

namespace paso::storage {

class HashStore final : public StoreBase {
 public:
  explicit HashStore(std::size_t key_field = 0) : key_field_(key_field) {}

  void store(PasoObject object, std::uint64_t age) override;
  std::optional<PasoObject> find(const SearchCriterion& sc) const override;
  std::optional<PasoObject> remove(const SearchCriterion& sc) override;
  bool erase(ObjectId id) override;

  Cost insert_cost() const override { return 1; }
  Cost query_cost() const override { return 1; }
  Cost remove_cost() const override { return 1; }
  const char* kind() const override { return "hash"; }

  std::size_t key_field() const { return key_field_; }

 private:
  void index_cleared() override { buckets_.clear(); }
  /// Oldest age matching `sc`, or nullopt.
  std::optional<std::uint64_t> oldest_match(const SearchCriterion& sc) const;
  void drop_from_bucket(const PasoObject& object, std::uint64_t age);

  std::size_t key_field_;
  std::unordered_map<std::size_t, std::vector<std::uint64_t>> buckets_;
};

}  // namespace paso::storage
