#include "storage/hash_store.hpp"

#include <algorithm>

namespace paso::storage {

void HashStore::store(PasoObject object, std::uint64_t age) {
  if (key_field_ < object.fields.size()) {
    const std::size_t bucket = value_hash(object.fields[key_field_]);
    if (base_store(std::move(object), age)) {
      buckets_[bucket].push_back(age);
    }
    return;
  }
  base_store(std::move(object), age);
}

std::optional<std::uint64_t> HashStore::oldest_match(
    const SearchCriterion& sc) const {
  // Ranked reads: a dictionary structure has no rank order, so they pay the
  // full scan (the model cost a hash table charges general criteria anyway).
  if (sc.top_k) {
    if (!sc.ranked_valid()) return std::nullopt;
    return ranked_scan(sc);
  }
  // Fast paths: exact key pattern -> one bucket; an explicit value set
  // (OneOf) -> the union of its buckets.
  if (key_field_ < sc.fields.size()) {
    const FieldPattern& key_pattern = sc.fields[key_field_];
    std::vector<std::size_t> bucket_keys;
    if (const auto* exact = std::get_if<Exact>(&key_pattern)) {
      bucket_keys.push_back(value_hash(exact->value));
    } else if (const auto* one_of = std::get_if<OneOf>(&key_pattern)) {
      for (const Value& v : one_of->values) {
        bucket_keys.push_back(value_hash(v));
      }
      // A OneOf with repeated values (or hash-colliding ones) must not
      // rescan the same bucket.
      std::sort(bucket_keys.begin(), bucket_keys.end());
      bucket_keys.erase(std::unique(bucket_keys.begin(), bucket_keys.end()),
                        bucket_keys.end());
    }
    if (!bucket_keys.empty()) {
      std::optional<std::uint64_t> best;
      for (const std::size_t key : bucket_keys) {
        auto it = buckets_.find(key);
        if (it == buckets_.end()) continue;
        for (const std::uint64_t age : it->second) {
          auto obj = by_age_.find(age);
          if (obj == by_age_.end()) continue;
          if (!probe(sc, obj->second)) continue;
          if (!best || age < *best) best = age;
        }
      }
      return best;
    }
  }
  // General criterion: age-ordered scan.
  for (const auto& [age, object] : by_age_) {
    if (probe(sc, object)) return age;
  }
  return std::nullopt;
}

std::optional<PasoObject> HashStore::find(const SearchCriterion& sc) const {
  const auto age = oldest_match(sc);
  if (!age) return std::nullopt;
  return by_age_.at(*age);
}

std::optional<PasoObject> HashStore::remove(const SearchCriterion& sc) {
  const auto age = oldest_match(sc);
  if (!age) return std::nullopt;
  PasoObject object = base_erase(*age);
  drop_from_bucket(object, *age);
  return object;
}

bool HashStore::erase(ObjectId id) {
  const auto age = age_of(id);
  if (!age) return false;
  PasoObject object = base_erase(*age);
  drop_from_bucket(object, *age);
  return true;
}

void HashStore::drop_from_bucket(const PasoObject& object, std::uint64_t age) {
  if (key_field_ >= object.fields.size()) return;
  auto it = buckets_.find(value_hash(object.fields[key_field_]));
  if (it == buckets_.end()) return;
  std::erase(it->second, age);
  if (it->second.empty()) buckets_.erase(it);
}

}  // namespace paso::storage
