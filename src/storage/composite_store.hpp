// Composite store: several index structures over one object class.
//
// Section 5: "Depending on the type of queries to be supported, the data
// structure implementing the local storage for the class may be one of
// various kinds ... In fact, several such data structures may be used for a
// single class." This store maintains a hash index and an ordered index
// over the same key field and routes each query to the cheaper structure:
// exact / IN-set lookups to the hash index, ranges to the ordered index,
// everything else to a scan. Updates pay both indexes (I = D = 2 model
// units); queries cost whichever index serves them.
#pragma once

#include "storage/hash_store.hpp"
#include "storage/ordered_store.hpp"

namespace paso::storage {

class CompositeStore final : public ObjectStore {
 public:
  explicit CompositeStore(std::size_t key_field = 0)
      : hash_(key_field), ordered_(key_field), key_field_(key_field) {}

  void store(PasoObject object, std::uint64_t age) override {
    hash_.store(object, age);
    ordered_.store(std::move(object), age);
  }

  std::optional<PasoObject> find(const SearchCriterion& sc) const override {
    return route(sc).find(sc);
  }

  std::optional<PasoObject> remove(const SearchCriterion& sc) override {
    // Find via the cheap index, then erase from both by identity so the
    // twins stay aligned.
    const auto found = route(sc).find(sc);
    if (!found) return std::nullopt;
    hash_.erase(found->id);
    ordered_.erase(found->id);
    return found;
  }

  bool erase(ObjectId id) override {
    const bool hash_had = hash_.erase(id);
    const bool ordered_had = ordered_.erase(id);
    PASO_REQUIRE(hash_had == ordered_had, "composite indexes diverged");
    return hash_had;
  }

  std::size_t size() const override { return hash_.size(); }

  std::size_t state_bytes() const override {
    // Both structures serialize as the same object list; the transfer ships
    // it once and the joiner rebuilds both indexes.
    return hash_.state_bytes();
  }

  std::vector<StoredObject> snapshot() const override {
    return hash_.snapshot();
  }

  void load(const std::vector<StoredObject>& objects) override {
    hash_.load(objects);
    ordered_.load(objects);
  }

  void clear() override {
    hash_.clear();
    ordered_.clear();
  }

  /// Updates maintain both indexes.
  Cost insert_cost() const override {
    return hash_.insert_cost() + ordered_.insert_cost();
  }
  Cost remove_cost() const override {
    return hash_.remove_cost() + ordered_.remove_cost();
  }
  /// Q depends on the query; report the cheaper structure's dictionary cost
  /// as the representative (per-query routing is visible via query_cost_for).
  Cost query_cost() const override { return hash_.query_cost(); }

  /// Model cost of a *specific* query under routing.
  Cost query_cost_for(const SearchCriterion& sc) const {
    return route(sc).query_cost();
  }

  std::uint64_t match_probes() const override {
    return hash_.match_probes() + ordered_.match_probes();
  }

  const char* kind() const override { return "composite"; }

 private:
  /// Pick the index that serves `sc` cheapest.
  const ObjectStore& route(const SearchCriterion& sc) const {
    if (sc.top_k) {
      // Ranked reads: the ordered twin walks rank-by-key-field in rank
      // order; any other rank field degrades to a scan in either twin.
      if (sc.top_k->field == key_field_) return ordered_;
      return hash_;
    }
    if (key_field_ < sc.fields.size()) {
      const FieldPattern& key = sc.fields[key_field_];
      if (std::holds_alternative<Exact>(key) ||
          std::holds_alternative<OneOf>(key)) {
        return hash_;
      }
      if (std::holds_alternative<IntRange>(key) ||
          std::holds_alternative<RealRange>(key) ||
          std::holds_alternative<Range>(key) ||
          std::holds_alternative<TextPrefix>(key)) {
        return ordered_;
      }
    }
    return hash_;  // scan fallback lives in either; hash is the default
  }

  HashStore hash_;
  OrderedStore ordered_;
  std::size_t key_field_;
};

}  // namespace paso::storage
