#include "storage/indexed_store.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

namespace paso::storage {

IndexedStore::IndexedStore(std::vector<std::size_t> indexed_fields)
    : IndexedStore(std::move(indexed_fields), Options()) {}

IndexedStore::IndexedStore(std::vector<std::size_t> indexed_fields,
                           Options options)
    : options_(options) {
  std::sort(indexed_fields.begin(), indexed_fields.end());
  indexed_fields.erase(
      std::unique(indexed_fields.begin(), indexed_fields.end()),
      indexed_fields.end());
  PASO_REQUIRE(!indexed_fields.empty(), "IndexedStore needs >= 1 field");
  indexes_.reserve(indexed_fields.size());
  for (const std::size_t field : indexed_fields) {
    FieldIndex index;
    index.field = field;
    indexes_.push_back(std::move(index));
  }
}

std::vector<std::size_t> IndexedStore::indexed_fields() const {
  std::vector<std::size_t> out;
  out.reserve(indexes_.size());
  for (const FieldIndex& index : indexes_) out.push_back(index.field);
  return out;
}

std::vector<IndexedStore::IndexStats> IndexedStore::index_stats() const {
  std::vector<IndexStats> out;
  out.reserve(indexes_.size());
  for (const FieldIndex& index : indexes_) {
    out.push_back({index.field, index.entries, index.buckets.size()});
  }
  return out;
}

Cost IndexedStore::query_cost() const {
  if (!options_.ordered) return 1;
  return 1 + std::floor(std::log2(static_cast<double>(size()) + 1));
}

void IndexedStore::store(PasoObject object, std::uint64_t age) {
  // Capture the indexed values before the object is moved into the backbone.
  std::vector<std::tuple<std::size_t, std::size_t, Value>> entries;
  entries.reserve(indexes_.size());
  for (std::size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].field < object.fields.size()) {
      const Value& value = object.fields[indexes_[i].field];
      entries.emplace_back(i, value_hash(value), value);
    }
  }
  if (!base_store(std::move(object), age)) return;
  for (auto& [i, hash, value] : entries) {
    FieldIndex& index = indexes_[i];
    index.buckets[hash].push_back(age);
    if (options_.ordered) index.sorted[std::move(value)].push_back(age);
    ++index.entries;
  }
}

std::vector<std::size_t> IndexedStore::hash_keys(const FieldPattern& pattern) {
  std::vector<std::size_t> keys;
  if (const auto* exact = std::get_if<Exact>(&pattern)) {
    keys.push_back(value_hash(exact->value));
  } else if (const auto* one_of = std::get_if<OneOf>(&pattern)) {
    for (const Value& v : one_of->values) keys.push_back(value_hash(v));
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  }
  return keys;
}

const IndexedStore::FieldIndex& IndexedStore::index_of(
    std::size_t field) const {
  for (const FieldIndex& index : indexes_) {
    if (index.field == field) return index;
  }
  PASO_REQUIRE(false, "plan step names an unknown index");
  return indexes_.front();
}

IndexedStore::SortedIter IndexedStore::region_first(
    const FieldIndex& index, const SortedRegion& region) const {
  if (!region.lo) return index.sorted.lower_bound(type_min(region.type));
  return region.lo_exclusive ? index.sorted.upper_bound(*region.lo)
                             : index.sorted.lower_bound(*region.lo);
}

IndexedStore::SortedIter IndexedStore::region_last(
    const FieldIndex& index, const SortedRegion& region,
    SortedIter first) const {
  if (region.hi) {
    return region.hi_exclusive ? index.sorted.lower_bound(*region.hi)
                               : index.sorted.upper_bound(*region.hi);
  }
  SortedIter it = first;
  while (it != index.sorted.end() && region_contains_key(region, it->first)) {
    ++it;
  }
  return it;
}

QueryPlan IndexedStore::plan(const SearchCriterion& sc) const {
  std::vector<PlanStep> paths;
  for (const FieldIndex& index : indexes_) {
    if (index.field >= sc.fields.size()) continue;
    const FieldPattern& pattern = sc.fields[index.field];
    const std::vector<std::size_t> keys = hash_keys(pattern);
    if (!keys.empty()) {
      // Exact/OneOf: the hash buckets give an exact candidate count.
      std::size_t candidates = 0;
      for (const std::size_t key : keys) {
        auto it = index.buckets.find(key);
        if (it != index.buckets.end()) candidates += it->second.size();
      }
      paths.push_back({index.field, false, candidates});
      continue;
    }
    if (!options_.ordered) continue;
    const SortedRegion region = sorted_region(pattern);
    if (region.empty) {
      paths.push_back({index.field, true, 0});  // provably no match
      continue;
    }
    if (!region.usable) continue;
    std::size_t candidates = 0;
    const SortedIter first = region_first(index, region);
    for (SortedIter it = first; it != index.sorted.end(); ++it) {
      if (!region_contains_key(region, it->first)) break;
      candidates += it->second.size();
    }
    paths.push_back({index.field, true, candidates});
  }
  return finalize_plan(arity_count(sc.fields.size()) > 0, std::move(paths));
}

std::optional<std::uint64_t> IndexedStore::oldest_match(
    const SearchCriterion& sc) const {
  if (sc.top_k && !sc.ranked_valid()) return std::nullopt;
  const QueryPlan query_plan = plan(sc);
  if (query_plan.access == PlanAccess::kImpossible) return std::nullopt;
  if (query_plan.access == PlanAccess::kScan) {
    if (sc.top_k) return ranked_walk_or_scan(sc);
    for (const auto& [age, object] : by_age_) {
      if (probe(sc, object)) return age;
    }
    return std::nullopt;
  }
  const PlanStep& driver = query_plan.steps.front();
  if (sc.top_k) return ranked_from_index(sc, driver);
  const FieldIndex& index = index_of(driver.field);
  std::optional<std::uint64_t> best;
  if (!driver.ordered) {
    for (const std::size_t key : hash_keys(sc.fields[index.field])) {
      auto it = index.buckets.find(key);
      if (it == index.buckets.end()) continue;
      // Buckets are age-ascending: the first verified hit is the bucket's
      // oldest match; take the minimum across buckets.
      for (const std::uint64_t age : it->second) {
        auto obj = by_age_.find(age);
        if (obj == by_age_.end()) continue;
        if (!probe(sc, obj->second)) continue;
        if (!best || age < *best) best = age;
        break;
      }
    }
    return best;
  }
  // Sorted walk: same shape — each key's age list is ascending, so the
  // first verified hit per key is that key's oldest; minimum across keys.
  const SortedRegion region = sorted_region(sc.fields[index.field]);
  for (SortedIter it = region_first(index, region);
       it != index.sorted.end(); ++it) {
    if (!region_contains_key(region, it->first)) break;
    for (const std::uint64_t age : it->second) {
      auto obj = by_age_.find(age);
      if (obj == by_age_.end()) continue;
      if (!probe(sc, obj->second)) continue;
      if (!best || age < *best) best = age;
      break;
    }
  }
  return best;
}

std::optional<std::uint64_t> IndexedStore::ranked_from_index(
    const SearchCriterion& sc, const PlanStep& driver) const {
  const TopK& top_k = *sc.top_k;
  const FieldIndex& index = index_of(driver.field);
  if (driver.ordered && driver.field == top_k.field) {
    const SortedRegion region = sorted_region(sc.fields[index.field]);
    if (region.usable && score_monotone_for(top_k.score_fn, region.type)) {
      return ranked_region_walk(sc, index, region);
    }
  }
  // General ranked path: enumerate the driver's candidates in age order,
  // probe each, rank the matches.
  std::vector<std::uint64_t> ages;
  if (!driver.ordered) {
    for (const std::size_t key : hash_keys(sc.fields[index.field])) {
      auto it = index.buckets.find(key);
      if (it == index.buckets.end()) continue;
      ages.insert(ages.end(), it->second.begin(), it->second.end());
    }
  } else {
    const SortedRegion region = sorted_region(sc.fields[index.field]);
    for (SortedIter it = region_first(index, region);
         it != index.sorted.end(); ++it) {
      if (!region_contains_key(region, it->first)) break;
      ages.insert(ages.end(), it->second.begin(), it->second.end());
    }
  }
  std::sort(ages.begin(), ages.end());
  std::vector<ScoredAge> scored;
  for (const std::uint64_t age : ages) {
    auto obj = by_age_.find(age);
    if (obj == by_age_.end()) continue;
    if (!probe(sc, obj->second)) continue;
    scored.push_back(
        {score_value(obj->second.fields[top_k.field], top_k.score_fn), age});
  }
  return ranked_pick(std::move(scored), top_k);
}

std::optional<std::uint64_t> IndexedStore::ranked_region_walk(
    const SearchCriterion& sc, const FieldIndex& index,
    const SortedRegion& region) const {
  // Rank-ordered walk: key order == score order (strictly monotone hook),
  // and each key's age list is ascending — exactly the tie order. Stop at
  // the k-th verified match.
  const TopK& top_k = *sc.top_k;
  const SortedIter first = region_first(index, region);
  const SortedIter last = region_last(index, region, first);
  std::uint32_t seen = 0;
  if (!top_k.descending) {
    for (SortedIter it = first; it != last; ++it) {
      for (const std::uint64_t age : it->second) {
        auto obj = by_age_.find(age);
        if (obj == by_age_.end()) continue;
        if (!probe(sc, obj->second)) continue;
        if (++seen == top_k.k) return age;
      }
    }
    return std::nullopt;
  }
  for (auto it = std::make_reverse_iterator(last);
       it != std::make_reverse_iterator(first); ++it) {
    for (const std::uint64_t age : it->second) {
      auto obj = by_age_.find(age);
      if (obj == by_age_.end()) continue;
      if (!probe(sc, obj->second)) continue;
      if (++seen == top_k.k) return age;
    }
  }
  return std::nullopt;
}

std::optional<std::uint64_t> IndexedStore::ranked_walk_or_scan(
    const SearchCriterion& sc) const {
  const TopK& top_k = *sc.top_k;
  // Leaderboard case: no pattern narrows the criterion, but the rank field
  // has a sorted twin. Every match has the rank field (arity equality), so
  // a directional walk of that twin enumerates candidates in rank order
  // when the hook preserves the value order and one type spans the walk.
  if (options_.ordered) {
    for (const FieldIndex& index : indexes_) {
      if (index.field != top_k.field) continue;
      SortedRegion region = sorted_region(sc.fields[index.field]);
      if (region.empty) return std::nullopt;
      if (!region.usable) {
        if (index.sorted.empty()) return std::nullopt;
        const FieldType front = type_of(index.sorted.begin()->first);
        if (type_of(index.sorted.rbegin()->first) != front) break;
        region.usable = true;
        region.type = front;
      }
      if (!score_monotone_for(top_k.score_fn, region.type)) break;
      return ranked_region_walk(sc, index, region);
    }
  }
  return ranked_scan(sc);
}

std::optional<PasoObject> IndexedStore::find(const SearchCriterion& sc) const {
  const auto age = oldest_match(sc);
  if (!age) return std::nullopt;
  return by_age_.at(*age);
}

std::optional<PasoObject> IndexedStore::remove(const SearchCriterion& sc) {
  const auto age = oldest_match(sc);
  if (!age) return std::nullopt;
  PasoObject object = base_erase(*age);
  drop_from_indexes(object, *age);
  return object;
}

bool IndexedStore::erase(ObjectId id) {
  const auto age = age_of(id);
  if (!age) return false;
  PasoObject object = base_erase(*age);
  drop_from_indexes(object, *age);
  return true;
}

void IndexedStore::drop_from_indexes(const PasoObject& object,
                                     std::uint64_t age) {
  for (FieldIndex& index : indexes_) {
    if (index.field >= object.fields.size()) continue;
    const Value& value = object.fields[index.field];
    auto it = index.buckets.find(value_hash(value));
    if (it != index.buckets.end()) {
      std::erase(it->second, age);
      if (it->second.empty()) index.buckets.erase(it);
    }
    if (options_.ordered) {
      auto sorted_it = index.sorted.find(value);
      if (sorted_it != index.sorted.end()) {
        std::erase(sorted_it->second, age);
        if (sorted_it->second.empty()) index.sorted.erase(sorted_it);
      }
    }
    if (index.entries > 0) --index.entries;
  }
}

void IndexedStore::index_cleared() {
  for (FieldIndex& index : indexes_) {
    index.buckets.clear();
    index.sorted.clear();
    index.entries = 0;
  }
}

}  // namespace paso::storage
