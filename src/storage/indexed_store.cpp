#include "storage/indexed_store.hpp"

#include <algorithm>

namespace paso::storage {

IndexedStore::IndexedStore(std::vector<std::size_t> indexed_fields) {
  std::sort(indexed_fields.begin(), indexed_fields.end());
  indexed_fields.erase(
      std::unique(indexed_fields.begin(), indexed_fields.end()),
      indexed_fields.end());
  PASO_REQUIRE(!indexed_fields.empty(), "IndexedStore needs >= 1 field");
  indexes_.reserve(indexed_fields.size());
  for (const std::size_t field : indexed_fields) {
    indexes_.push_back(FieldIndex{field, {}});
  }
}

std::vector<std::size_t> IndexedStore::indexed_fields() const {
  std::vector<std::size_t> out;
  out.reserve(indexes_.size());
  for (const FieldIndex& index : indexes_) out.push_back(index.field);
  return out;
}

void IndexedStore::store(PasoObject object, std::uint64_t age) {
  // Hash the indexed fields before the object is moved into the backbone.
  std::vector<std::pair<std::size_t, std::size_t>> entries;  // index#, hash
  entries.reserve(indexes_.size());
  for (std::size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].field < object.fields.size()) {
      entries.emplace_back(i, value_hash(object.fields[indexes_[i].field]));
    }
  }
  if (!base_store(std::move(object), age)) return;
  for (const auto& [i, hash] : entries) {
    indexes_[i].buckets[hash].push_back(age);
  }
}

std::optional<std::uint64_t> IndexedStore::oldest_match(
    const SearchCriterion& sc) const {
  // Every matching object has exactly sc.fields.size() fields (matches
  // requires arity equality), so for any indexed field f < arity with an
  // Exact/OneOf pattern, every match sits in one of that field's buckets
  // named by the pattern's value hashes. Pick the field with the fewest
  // candidates.
  const FieldIndex* best_index = nullptr;
  std::vector<std::size_t> best_keys;
  std::size_t best_candidates = 0;
  for (const FieldIndex& index : indexes_) {
    if (index.field >= sc.fields.size()) continue;
    const FieldPattern& pattern = sc.fields[index.field];
    std::vector<std::size_t> keys;
    if (const auto* exact = std::get_if<Exact>(&pattern)) {
      keys.push_back(value_hash(exact->value));
    } else if (const auto* one_of = std::get_if<OneOf>(&pattern)) {
      for (const Value& v : one_of->values) keys.push_back(value_hash(v));
      std::sort(keys.begin(), keys.end());
      keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    } else {
      continue;
    }
    std::size_t candidates = 0;
    for (const std::size_t key : keys) {
      auto it = index.buckets.find(key);
      if (it != index.buckets.end()) candidates += it->second.size();
    }
    if (candidates == 0) return std::nullopt;  // provably no match
    if (!best_index || candidates < best_candidates) {
      best_index = &index;
      best_keys = std::move(keys);
      best_candidates = candidates;
    }
  }
  if (best_index) {
    std::optional<std::uint64_t> best;
    for (const std::size_t key : best_keys) {
      auto it = best_index->buckets.find(key);
      if (it == best_index->buckets.end()) continue;
      // Buckets are age-ascending: the first verified hit is the bucket's
      // oldest match; take the minimum across buckets.
      for (const std::uint64_t age : it->second) {
        auto obj = by_age_.find(age);
        if (obj == by_age_.end()) continue;
        if (!probe(sc, obj->second)) continue;
        if (!best || age < *best) best = age;
        break;
      }
    }
    return best;
  }
  // No indexed field constrains the criterion: age-ordered scan.
  for (const auto& [age, object] : by_age_) {
    if (probe(sc, object)) return age;
  }
  return std::nullopt;
}

std::optional<PasoObject> IndexedStore::find(const SearchCriterion& sc) const {
  const auto age = oldest_match(sc);
  if (!age) return std::nullopt;
  return by_age_.at(*age);
}

std::optional<PasoObject> IndexedStore::remove(const SearchCriterion& sc) {
  const auto age = oldest_match(sc);
  if (!age) return std::nullopt;
  PasoObject object = base_erase(*age);
  drop_from_indexes(object, *age);
  return object;
}

bool IndexedStore::erase(ObjectId id) {
  const auto age = age_of(id);
  if (!age) return false;
  PasoObject object = base_erase(*age);
  drop_from_indexes(object, *age);
  return true;
}

void IndexedStore::drop_from_indexes(const PasoObject& object,
                                     std::uint64_t age) {
  for (FieldIndex& index : indexes_) {
    if (index.field >= object.fields.size()) continue;
    auto it = index.buckets.find(value_hash(object.fields[index.field]));
    if (it == index.buckets.end()) continue;
    std::erase(it->second, age);
    if (it->second.empty()) index.buckets.erase(it);
  }
}

void IndexedStore::index_cleared() {
  for (FieldIndex& index : indexes_) index.buckets.clear();
}

}  // namespace paso::storage
