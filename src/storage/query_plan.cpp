#include "storage/query_plan.hpp"

#include <algorithm>
#include <limits>

namespace paso::storage {

QueryPlan finalize_plan(bool arity_present, std::vector<PlanStep> paths) {
  QueryPlan plan;
  if (!arity_present) {
    plan.access = PlanAccess::kImpossible;
    plan.reason = "arity";
    return plan;
  }
  for (const PlanStep& step : paths) {
    if (step.estimate == 0) {
      plan.access = PlanAccess::kImpossible;
      plan.reason = "empty-index";
      return plan;
    }
  }
  if (paths.empty()) {
    plan.access = PlanAccess::kScan;
    plan.reason = "scan";
    return plan;
  }
  // Selectivity-ascending; hash buckets beat sorted walks at equal
  // estimates (cheaper candidate enumeration), field position breaks the
  // remaining ties. stable_sort on an already field-ordered input makes the
  // whole order deterministic.
  std::stable_sort(paths.begin(), paths.end(),
                   [](const PlanStep& a, const PlanStep& b) {
                     if (a.estimate != b.estimate) {
                       return a.estimate < b.estimate;
                     }
                     if (a.ordered != b.ordered) return !a.ordered;
                     return a.field < b.field;
                   });
  plan.access = PlanAccess::kIndex;
  plan.reason = "index";
  plan.steps = std::move(paths);
  return plan;
}

SortedRegion sorted_region(const FieldPattern& pattern) {
  SortedRegion region;
  if (const auto* exact = std::get_if<Exact>(&pattern)) {
    region.usable = true;
    region.type = type_of(exact->value);
    region.lo = exact->value;
    region.hi = exact->value;
  } else if (const auto* irange = std::get_if<IntRange>(&pattern)) {
    region.usable = true;
    region.type = FieldType::kInt;
    region.lo = Value{irange->lo};
    region.hi = Value{irange->hi};
  } else if (const auto* rrange = std::get_if<RealRange>(&pattern)) {
    region.usable = true;
    region.type = FieldType::kReal;
    region.lo = Value{rrange->lo};
    region.hi = Value{rrange->hi};
  } else if (const auto* prefix = std::get_if<TextPrefix>(&pattern)) {
    region.usable = true;
    region.type = FieldType::kText;
    region.lo = Value{prefix->prefix};
    region.prefix = prefix->prefix;
  } else if (const auto* range = std::get_if<Range>(&pattern)) {
    if (range->lo && range->hi &&
        type_of(range->lo->value) != type_of(range->hi->value)) {
      region.empty = true;
      return region;
    }
    if (!range->lo && !range->hi) return region;  // unconstrained
    region.usable = true;
    region.type = type_of(range->lo ? range->lo->value : range->hi->value);
    if (range->lo) {
      region.lo = range->lo->value;
      region.lo_exclusive = range->lo->exclusive;
    }
    if (range->hi) {
      region.hi = range->hi->value;
      region.hi_exclusive = range->hi->exclusive;
    }
  }
  // An inverted region matches nothing (the linear spec agrees: no value is
  // both >= lo and <= hi). Marking it empty here keeps every index walk's
  // [first, last) well-formed — without this, last lands before first and a
  // rank-ordered walk never terminates.
  if (region.lo && region.hi) {
    if (*region.hi < *region.lo ||
        (!(*region.lo < *region.hi) &&
         (region.lo_exclusive || region.hi_exclusive))) {
      region.usable = false;
      region.empty = true;
    }
  }
  return region;
}

Value type_min(FieldType type) {
  switch (type) {
    case FieldType::kInt:
      return Value{std::numeric_limits<std::int64_t>::min()};
    case FieldType::kReal:
      return Value{-std::numeric_limits<double>::infinity()};
    case FieldType::kText:
      return Value{std::string{}};
    case FieldType::kBool:
      return Value{false};
  }
  return Value{};
}

bool region_contains_key(const SortedRegion& region, const Value& key) {
  if (type_of(key) != region.type) return false;
  if (region.prefix &&
      !std::get<std::string>(key).starts_with(*region.prefix)) {
    return false;
  }
  if (region.hi) {
    if (region.hi_exclusive ? !(key < *region.hi) : *region.hi < key) {
      return false;
    }
  }
  return true;
}

std::optional<std::uint64_t> ranked_pick(std::vector<ScoredAge> scored,
                                         const TopK& top_k) {
  if (top_k.k == 0 || scored.size() < top_k.k) return std::nullopt;
  const bool descending = top_k.descending;
  std::sort(scored.begin(), scored.end(),
            [descending](const ScoredAge& a, const ScoredAge& b) {
              if (a.score != b.score) {
                return descending ? a.score > b.score : a.score < b.score;
              }
              return a.age < b.age;
            });
  return scored[top_k.k - 1].age;
}

}  // namespace paso::storage
