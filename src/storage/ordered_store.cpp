#include "storage/ordered_store.hpp"

#include <cmath>

namespace paso::storage {

void OrderedStore::store(PasoObject object, std::uint64_t age) {
  Value key;
  const bool has_key = key_field_ < object.fields.size();
  if (has_key) key = object.fields[key_field_];
  if (base_store(std::move(object), age) && has_key) {
    index_.emplace(std::move(key), age);
  }
}

Cost OrderedStore::query_cost() const {
  if (fixed_query_cost_ > 0) return fixed_query_cost_;
  return 1 + std::floor(std::log2(static_cast<double>(size()) + 1));
}

std::optional<std::uint64_t> OrderedStore::oldest_match(
    const SearchCriterion& sc) const {
  // Range/exact patterns on the key field bound the index walk.
  if (key_field_ < sc.fields.size()) {
    const FieldPattern& key_pattern = sc.fields[key_field_];
    auto lo = index_.begin();
    auto hi = index_.end();
    bool bounded = false;
    if (const auto* exact = std::get_if<Exact>(&key_pattern)) {
      lo = index_.lower_bound(exact->value);
      hi = index_.upper_bound(exact->value);
      bounded = true;
    } else if (const auto* range = std::get_if<IntRange>(&key_pattern)) {
      lo = index_.lower_bound(Value{range->lo});
      hi = index_.upper_bound(Value{range->hi});
      bounded = true;
    } else if (const auto* rrange = std::get_if<RealRange>(&key_pattern)) {
      lo = index_.lower_bound(Value{rrange->lo});
      hi = index_.upper_bound(Value{rrange->hi});
      bounded = true;
    }
    if (bounded) {
      std::optional<std::uint64_t> best;
      for (auto it = lo; it != hi; ++it) {
        auto obj = by_age_.find(it->second);
        if (obj == by_age_.end()) continue;
        if (!probe(sc, obj->second)) continue;
        if (!best || it->second < *best) best = it->second;
      }
      return best;
    }
  }
  for (const auto& [age, object] : by_age_) {
    if (probe(sc, object)) return age;
  }
  return std::nullopt;
}

std::optional<PasoObject> OrderedStore::find(const SearchCriterion& sc) const {
  const auto age = oldest_match(sc);
  if (!age) return std::nullopt;
  return by_age_.at(*age);
}

std::optional<PasoObject> OrderedStore::remove(const SearchCriterion& sc) {
  const auto age = oldest_match(sc);
  if (!age) return std::nullopt;
  PasoObject object = base_erase(*age);
  drop_from_index(object, *age);
  return object;
}

bool OrderedStore::erase(ObjectId id) {
  const auto age = age_of(id);
  if (!age) return false;
  PasoObject object = base_erase(*age);
  drop_from_index(object, *age);
  return true;
}

void OrderedStore::drop_from_index(const PasoObject& object,
                                   std::uint64_t age) {
  if (key_field_ >= object.fields.size()) return;
  auto [lo, hi] = index_.equal_range(object.fields[key_field_]);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == age) {
      index_.erase(it);
      return;
    }
  }
}

}  // namespace paso::storage
