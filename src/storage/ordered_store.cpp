#include "storage/ordered_store.hpp"

#include <cmath>

namespace paso::storage {

void OrderedStore::store(PasoObject object, std::uint64_t age) {
  Value key;
  const bool has_key = key_field_ < object.fields.size();
  if (has_key) key = object.fields[key_field_];
  if (base_store(std::move(object), age) && has_key) {
    index_.emplace(std::move(key), age);
  }
}

Cost OrderedStore::query_cost() const {
  if (fixed_query_cost_ > 0) return fixed_query_cost_;
  return 1 + std::floor(std::log2(static_cast<double>(size()) + 1));
}

OrderedStore::Iter OrderedStore::region_first(
    const SortedRegion& region) const {
  if (!region.lo) return index_.lower_bound(type_min(region.type));
  return region.lo_exclusive ? index_.upper_bound(*region.lo)
                             : index_.lower_bound(*region.lo);
}

OrderedStore::Iter OrderedStore::region_last(const SortedRegion& region,
                                             Iter first) const {
  if (region.hi) {
    return region.hi_exclusive ? index_.lower_bound(*region.hi)
                               : index_.upper_bound(*region.hi);
  }
  // Prefix or type-open region: advance by key comparisons (not probes)
  // until the first key outside.
  Iter it = first;
  while (it != index_.end() && region_contains_key(region, it->first)) ++it;
  return it;
}

std::optional<std::uint64_t> OrderedStore::oldest_match(
    const SearchCriterion& sc) const {
  if (sc.top_k) {
    if (!sc.ranked_valid()) return std::nullopt;
    return ranked_match(sc);
  }
  // Order-constraining patterns on the key field bound the index walk;
  // every in-region entry is probed and the oldest verified match wins.
  if (key_field_ < sc.fields.size()) {
    const SortedRegion region = sorted_region(sc.fields[key_field_]);
    if (region.empty) return std::nullopt;
    if (region.usable) {
      std::optional<std::uint64_t> best;
      const Iter first = region_first(region);
      for (Iter it = first; it != index_.end(); ++it) {
        if (!region_contains_key(region, it->first)) break;
        auto obj = by_age_.find(it->second);
        if (obj == by_age_.end()) continue;
        if (!probe(sc, obj->second)) continue;
        if (!best || it->second < *best) best = it->second;
      }
      return best;
    }
  }
  for (const auto& [age, object] : by_age_) {
    if (probe(sc, object)) return age;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> OrderedStore::ranked_match(
    const SearchCriterion& sc) const {
  const TopK& top_k = *sc.top_k;
  // The sorted index accelerates a ranked read only when it ranks by the
  // key field, the scoring hook is strictly increasing over the region's
  // value type (score order == key order), and the region spans one type.
  // Everything else takes the executable-spec scan.
  if (top_k.field != key_field_) return ranked_scan(sc);
  SortedRegion region = sorted_region(sc.fields[key_field_]);
  if (region.empty) return std::nullopt;
  if (!region.usable) {
    // Unconstrained key pattern: the walk would span the whole index, which
    // is rank-ordered only if a single type lives there.
    if (index_.empty()) return std::nullopt;
    const FieldType front = type_of(index_.begin()->first);
    if (type_of(index_.rbegin()->first) != front) return ranked_scan(sc);
    region.usable = true;
    region.type = front;
  }
  if (!score_monotone_for(top_k.score_fn, region.type)) {
    return ranked_scan(sc);
  }
  const Iter first = region_first(region);
  const Iter last = region_last(region, first);
  std::uint32_t seen = 0;
  if (!top_k.descending) {
    // Key-ascending == score-ascending; equal keys arrive age-ascending
    // (the multimap preserves insertion order), exactly the tie order.
    for (Iter it = first; it != last; ++it) {
      auto obj = by_age_.find(it->second);
      if (obj == by_age_.end()) continue;
      if (!probe(sc, obj->second)) continue;
      if (++seen == top_k.k) return it->second;
    }
    return std::nullopt;
  }
  // Descending: walk key groups high-to-low but ages forward inside each
  // group, so equal scores still break oldest-first.
  Iter group_end = last;
  while (group_end != first) {
    const Iter group_begin = index_.lower_bound(std::prev(group_end)->first);
    for (Iter it = group_begin; it != group_end; ++it) {
      auto obj = by_age_.find(it->second);
      if (obj == by_age_.end()) continue;
      if (!probe(sc, obj->second)) continue;
      if (++seen == top_k.k) return it->second;
    }
    group_end = group_begin;
  }
  return std::nullopt;
}

std::optional<PasoObject> OrderedStore::find(const SearchCriterion& sc) const {
  const auto age = oldest_match(sc);
  if (!age) return std::nullopt;
  return by_age_.at(*age);
}

std::optional<PasoObject> OrderedStore::remove(const SearchCriterion& sc) {
  const auto age = oldest_match(sc);
  if (!age) return std::nullopt;
  PasoObject object = base_erase(*age);
  drop_from_index(object, *age);
  return object;
}

bool OrderedStore::erase(ObjectId id) {
  const auto age = age_of(id);
  if (!age) return false;
  PasoObject object = base_erase(*age);
  drop_from_index(object, *age);
  return true;
}

void OrderedStore::drop_from_index(const PasoObject& object,
                                   std::uint64_t age) {
  if (key_field_ >= object.fields.size()) return;
  auto [lo, hi] = index_.equal_range(object.fields[key_field_]);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == age) {
      index_.erase(it);
      return;
    }
  }
}

}  // namespace paso::storage
