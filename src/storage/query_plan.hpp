// Query planning for the associative stores.
//
// The stores answer general PASO criteria; this module centralizes the two
// policies they share:
//
//  * plan shaping — given the candidate access paths a store's indexes offer
//    for a criterion, order them by estimated selectivity and early-out when
//    the criterion is provably empty (no object of the criterion's arity, or
//    an index proves a field has zero candidates). The selectivity order is
//    (estimate, hash-before-ordered, field position), all ascending, so the
//    probe sequence stays deterministic and the legacy most-selective
//    Exact/OneOf choice is reproduced exactly when only hash paths exist.
//
//  * ranked selection — TopK reads pick the k-th match in score order; the
//    helpers here normalize sorted-index walk regions and perform the final
//    (score, age) selection shared by index walks and scan fallbacks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "paso/criteria.hpp"

namespace paso::storage {

/// How a query will be answered.
enum class PlanAccess : std::uint8_t {
  kImpossible,  // provably no match: answer nullopt with zero probes
  kIndex,       // drive from steps.front()'s index
  kScan,        // no usable index path: age-ordered scan
};

/// One usable index path for a criterion.
struct PlanStep {
  std::size_t field = 0;     // indexed field position
  bool ordered = false;      // sorted-index walk (vs hash buckets)
  std::size_t estimate = 0;  // candidate count (exact for hash buckets)
};

struct QueryPlan {
  PlanAccess access = PlanAccess::kScan;
  const char* reason = "scan";  // why: "arity", "empty-index", "index", ...
  std::vector<PlanStep> steps;  // selectivity-ascending; front() drives
};

/// Applies the shared plan policy to the paths a store collected (in field
/// order). `arity_present` is the store's arity-histogram check for the
/// criterion's arity.
QueryPlan finalize_plan(bool arity_present, std::vector<PlanStep> paths);

/// A sorted-index walk region for one pattern: the single value type the
/// region spans plus its bounds. TextPrefix regions carry the prefix so the
/// walker can stop at the first key past it.
struct SortedRegion {
  bool usable = false;  // pattern bounds an ordered walk
  bool empty = false;   // pattern provably matches nothing (type-mismatched
                        // Range bounds)
  FieldType type = FieldType::kInt;
  std::optional<Value> lo;
  bool lo_exclusive = false;
  std::optional<Value> hi;
  bool hi_exclusive = false;
  std::optional<std::string> prefix;  // TextPrefix walk guard
};

/// Region for Exact / IntRange / RealRange / TextPrefix / Range patterns;
/// everything else is not usable. An unbounded Range is not usable either
/// (it constrains nothing).
SortedRegion sorted_region(const FieldPattern& pattern);

/// Smallest Value of a type in the variant order — the walk start for a
/// region with no low bound.
Value type_min(FieldType type);

/// True when `key` (a sorted-index key) is still inside `region`'s upper
/// end; walkers break on the first false. Assumes iteration started at the
/// region's low end.
bool region_contains_key(const SortedRegion& region, const Value& key);

/// A match found during ranked evaluation.
struct ScoredAge {
  double score = 0;
  std::uint64_t age = 0;
};

/// The executable ranked-selection spec: orders matches by score (descending
/// or ascending per the selector), ties oldest-first, and returns the age of
/// the k-th (1-based) — nullopt when fewer than k matches exist.
std::optional<std::uint64_t> ranked_pick(std::vector<ScoredAge> scored,
                                         const TopK& top_k);

}  // namespace paso::storage
