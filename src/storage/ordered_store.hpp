// Order-indexed store: the "binary search tree for range queries" of
// Section 5. Model costs follow the paper's extension of the Basic
// algorithm: insertion and deletion are normalized to 1 time unit and a
// query costs q > 1 units. By default q tracks log2 of the store size; a
// fixed q can be injected for experiments that assume it constant.
#pragma once

#include <map>
#include <vector>

#include "storage/store_base.hpp"

namespace paso::storage {

class OrderedStore final : public StoreBase {
 public:
  /// `fixed_query_cost` = 0 means Q(l) = 1 + floor(log2(l+1)).
  explicit OrderedStore(std::size_t key_field = 0, Cost fixed_query_cost = 0)
      : key_field_(key_field), fixed_query_cost_(fixed_query_cost) {}

  void store(PasoObject object, std::uint64_t age) override;
  std::optional<PasoObject> find(const SearchCriterion& sc) const override;
  std::optional<PasoObject> remove(const SearchCriterion& sc) override;
  bool erase(ObjectId id) override;

  Cost insert_cost() const override { return 1; }
  Cost query_cost() const override;
  Cost remove_cost() const override { return 1; }
  const char* kind() const override { return "ordered"; }

 private:
  using Iter = std::multimap<Value, std::uint64_t>::const_iterator;

  void index_cleared() override { index_.clear(); }
  std::optional<std::uint64_t> oldest_match(const SearchCriterion& sc) const;
  /// Serves TopK: a directional region walk when the rank field is the key
  /// field and the scoring hook is order-preserving, else the spec scan.
  std::optional<std::uint64_t> ranked_match(const SearchCriterion& sc) const;
  Iter region_first(const SortedRegion& region) const;
  Iter region_last(const SortedRegion& region, Iter first) const;
  void drop_from_index(const PasoObject& object, std::uint64_t age);

  std::size_t key_field_;
  Cost fixed_query_cost_;
  // Key value -> ages of objects with that key, ordered by key for ranges.
  std::multimap<Value, std::uint64_t> index_;
};

}  // namespace paso::storage
