// Local object stores (Sections 4.2 and 5).
//
// Each memory server holds, per object class it supports, one ObjectStore.
// The store implements the three atomic server operations: store_M,
// mem-read_M and remove_M — remove returns the *oldest* matching object
// (Section 4.2), where age is gcast delivery order, identical on every
// replica thanks to total ordering.
//
// The paper's Section 5 names three data-structure families, reflected here:
//   * HashStore    — dictionary queries, I(.) = D(.) = Q(.) = O(1)
//   * OrderedStore — range queries on a key field (search tree), Q = q > 1
//   * LinearStore  — text pattern matching by scan, Q = Theta(l)
// Every store reports *model* costs (the I/Q/D functions used in Figure 1
// and in Section 5's normalization) alongside doing real work; benches
// measure both.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/cost.hpp"
#include "common/require.hpp"
#include "paso/criteria.hpp"
#include "paso/object.hpp"

namespace paso::storage {

/// A stored object together with its replica-consistent age.
struct StoredObject {
  std::uint64_t age = 0;  ///< gcast delivery sequence within the class
  PasoObject object;
};

class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  /// store_M: add an object with the given delivery age. Ages must be
  /// strictly increasing (they are: the group layer totally orders stores).
  virtual void store(PasoObject object, std::uint64_t age) = 0;

  /// mem-read_M: any matching object, or nullopt. Deterministically returns
  /// the oldest match so replicas agree byte-for-byte.
  virtual std::optional<PasoObject> find(const SearchCriterion& sc) const = 0;

  /// remove_M: delete and return the oldest matching object.
  virtual std::optional<PasoObject> remove(const SearchCriterion& sc) = 0;

  /// Delete a specific object by identity (used when applying a replicated
  /// removal decided elsewhere). Returns false if absent.
  virtual bool erase(ObjectId id) = 0;

  virtual std::size_t size() const = 0;

  /// g(l): declared size of the serialized data structure, which is the
  /// state-transfer payload size and hence drives the join cost K.
  virtual std::size_t state_bytes() const = 0;

  /// Snapshot in age order (donor side of a state transfer).
  virtual std::vector<StoredObject> snapshot() const = 0;

  /// Replace contents with a snapshot (joiner side).
  virtual void load(const std::vector<StoredObject>& objects) = 0;

  virtual void clear() = 0;

  /// Model cost functions I(.), Q(.), D(.) evaluated at the current size.
  virtual Cost insert_cost() const = 0;
  virtual Cost query_cost() const = 0;
  virtual Cost remove_cost() const = 0;

  /// Criterion-match probes performed so far: candidate objects tested with
  /// SearchCriterion::matches across all queries and removals. The whole
  /// point of an index is fewer probes per query; benches compare this
  /// counter across store kinds.
  virtual std::uint64_t match_probes() const { return 0; }

  /// Short name for diagnostics ("hash", "ordered", "linear").
  virtual const char* kind() const = 0;
};

/// Factory signature: the runtime creates one store per (server, class).
using StoreFactory = std::function<std::unique_ptr<ObjectStore>()>;

}  // namespace paso::storage
