// Shared backbone for ObjectStore implementations: an age-ordered map of
// objects plus identity and byte-size bookkeeping. Derived stores add their
// query index and model cost functions.
#pragma once

#include <map>
#include <unordered_map>

#include "storage/object_store.hpp"
#include "storage/query_plan.hpp"

namespace paso::storage {

class StoreBase : public ObjectStore {
 public:
  std::size_t size() const override { return by_age_.size(); }

  std::size_t state_bytes() const override {
    // 16-byte header plus, per object, its wire size and an 8-byte age.
    return 16 + content_bytes_ + 8 * by_age_.size();
  }

  std::vector<StoredObject> snapshot() const override {
    std::vector<StoredObject> out;
    out.reserve(by_age_.size());
    for (const auto& [age, object] : by_age_) out.push_back({age, object});
    return out;
  }

  void load(const std::vector<StoredObject>& objects) override {
    clear();
    for (const StoredObject& stored : objects) {
      store(stored.object, stored.age);
    }
  }

  void clear() override {
    by_age_.clear();
    age_of_.clear();
    arity_count_.clear();
    content_bytes_ = 0;
    index_cleared();
  }

  std::uint64_t match_probes() const override { return probes_; }

  /// Number of live objects with exactly `arity` fields — the planner's
  /// arity-completeness early-out: a criterion whose arity no object carries
  /// cannot match, so indexed stores answer it without probing.
  std::size_t arity_count(std::size_t arity) const {
    auto it = arity_count_.find(arity);
    return it == arity_count_.end() ? 0 : it->second;
  }

 protected:
  /// Insert into the backbone; derived classes call this from store() and
  /// then update their index. Returns false (and stores nothing) on a
  /// duplicate identity — replicated stores are idempotent per A2.
  bool base_store(PasoObject object, std::uint64_t age) {
    if (age_of_.contains(object.id)) return false;
    content_bytes_ += object.wire_size();
    ++arity_count_[object.fields.size()];
    age_of_.emplace(object.id, age);
    const auto [it, inserted] = by_age_.emplace(age, std::move(object));
    PASO_REQUIRE(inserted, "duplicate age in store");
    (void)it;
    return true;
  }

  /// Remove by age; derived classes fix their index first.
  PasoObject base_erase(std::uint64_t age) {
    auto it = by_age_.find(age);
    PASO_REQUIRE(it != by_age_.end(), "erasing unknown age");
    PasoObject object = std::move(it->second);
    content_bytes_ -= object.wire_size();
    auto arity_it = arity_count_.find(object.fields.size());
    if (arity_it != arity_count_.end() && --arity_it->second == 0) {
      arity_count_.erase(arity_it);
    }
    age_of_.erase(object.id);
    by_age_.erase(it);
    return object;
  }

  std::optional<std::uint64_t> age_of(ObjectId id) const {
    auto it = age_of_.find(id);
    if (it == age_of_.end()) return std::nullopt;
    return it->second;
  }

  /// Derived stores reset their index here.
  virtual void index_cleared() = 0;

  /// Candidate test with probe accounting: derived stores funnel every
  /// criterion evaluation through this so match_probes() stays honest.
  bool probe(const SearchCriterion& sc, const PasoObject& object) const {
    ++probes_;
    return sc.matches(object);
  }

  /// Ranked-read fallback shared by every store: probe the full age order,
  /// score the matches, pick the k-th (the executable TopK spec — LinearStore
  /// answers ranked reads exactly this way). Callers guarantee
  /// sc.ranked_valid().
  std::optional<std::uint64_t> ranked_scan(const SearchCriterion& sc) const {
    std::vector<ScoredAge> scored;
    for (const auto& [age, object] : by_age_) {
      if (!probe(sc, object)) continue;
      scored.push_back(
          {score_value(object.fields[sc.top_k->field], sc.top_k->score_fn),
           age});
    }
    return ranked_pick(std::move(scored), *sc.top_k);
  }

  mutable std::uint64_t probes_ = 0;
  std::map<std::uint64_t, PasoObject> by_age_;
  std::unordered_map<ObjectId, std::uint64_t> age_of_;
  std::unordered_map<std::size_t, std::size_t> arity_count_;
  std::size_t content_bytes_ = 0;
};

}  // namespace paso::storage
