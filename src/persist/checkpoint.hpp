// Checkpoint images: a class replica's durable snapshot.
//
// A checkpoint captures everything a replica needs to rebuild its in-memory
// class state up to a known LSN — the stored objects with their
// replica-consistent ages, plus the idempotence tables (applied insert
// identities, cached remove decisions) that a state-transfer blob also
// carries. Read markers are deliberately absent: they are transient
// (expiring, owner-notifying) state whose authoritative copy rides in the
// live transfer from a donor, never in cold storage.
//
// The encoding is schema-directed like the wire codec (the class signature
// fixes field types) and ends with a checksum over the whole image, so a
// damaged checkpoint is detected and discarded rather than installed.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "paso/messages.hpp"
#include "paso/object.hpp"
#include "storage/object_store.hpp"

namespace paso::persist {

struct CheckpointImage {
  std::uint64_t epoch = 0;  ///< checkpoint generation (monotonic per class)
  std::uint64_t lsn = 0;    ///< last operation the image covers
  std::uint64_t next_age = 0;
  std::vector<storage::StoredObject> objects;  ///< in age order
  /// Idempotence tables, in deterministic (sorted / eviction) order.
  std::vector<ObjectId> applied_inserts;
  std::vector<std::pair<std::uint64_t, SearchResponse>> remove_cache;
};

/// Encoding is signature-free (value types are implied by the object, as in
/// the wire codec); decoding needs the class signature to re-type fields.
std::vector<std::uint8_t> encode_checkpoint(const CheckpointImage& image);

/// nullopt when the buffer fails its checksum or structural validation —
/// the caller falls back to log-only or full-transfer recovery.
std::optional<CheckpointImage> decode_checkpoint(
    const std::vector<std::uint8_t>& bytes,
    const std::vector<FieldType>& signature);

}  // namespace paso::persist
