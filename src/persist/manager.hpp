// Per-machine durable persistence: WAL + checkpoints over a SimDisk.
//
// One PersistenceManager per machine, owned by the Cluster so it survives
// crash_reset (the disk outlives the memory). For each class the machine
// replicates it keeps two files:
//
//   c<cls>.log   framed WAL records (persist/wal.hpp), lsn-contiguous
//   c<cls>.ckpt  a sealed CheckpointImage (persist/checkpoint.hpp)
//
// The log covers exactly the lsn range (checkpoint.lsn, durable_lsn]: a
// checkpoint compacts the log behind it, which is also the log-compaction
// policy — a joiner whose durable position predates the donor's compaction
// horizon cannot be served a delta and falls back to a full transfer.
//
// All methods return the disk cost they incurred so the caller can land it
// where it belongs (gcast processing time on the append path, an explicit
// ledger charge + recovery delay on the replay path). The manager never
// touches the ledger or the simulator itself, which keeps it trivially
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/obs.hpp"
#include "paso/classes.hpp"
#include "paso/messages.hpp"
#include "persist/checkpoint.hpp"
#include "persist/disk.hpp"
#include "persist/wal.hpp"
#include "sim/simulator.hpp"

namespace paso::persist {

struct PersistenceConfig {
  /// Master switch. Off by default: the disabled stack performs no disk
  /// I/O, schedules no events and adds no bytes to state blobs, so runs
  /// reproduce the non-persistent baseline exactly.
  bool enabled = false;
  DiskCostModel disk{};
  /// Checkpoint when the class log reaches this many bytes...
  std::size_t checkpoint_every_bytes = 64 * 1024;
  /// ...or when this much virtual time has passed since the last checkpoint
  /// (checked lazily on the next applied op — no standing timers, so an
  /// idle simulator still drains). kNever disables the age trigger.
  sim::SimTime checkpoint_interval = sim::kNever;
  /// Truncate the log behind every checkpoint. Turning this off keeps the
  /// whole history on disk (deltas reach arbitrarily far back) at unbounded
  /// space cost.
  bool compact_on_checkpoint = true;
};

/// What recovery found on disk for one class.
struct RecoveredClass {
  std::optional<CheckpointImage> checkpoint;  ///< absent or corrupt -> none
  std::vector<WalRecord> tail;  ///< lsn-contiguous records past the checkpoint
  Cost cost = 0;                ///< disk read (and repair-truncate) cost
  bool corruption_detected = false;
};

/// Running totals for diagnostics (`persist-stats` in the REPL, tests).
/// These survive crashes — they describe the disk, not the memory.
struct PersistStats {
  std::uint64_t appends = 0;
  std::uint64_t append_bytes = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t checkpoint_bytes = 0;
  std::uint64_t compactions = 0;
  std::uint64_t resets = 0;
  std::uint64_t replays = 0;
  std::uint64_t replayed_records = 0;
  std::uint64_t corruptions_detected = 0;
  std::uint64_t truncated_bytes = 0;
  std::uint64_t delta_captures = 0;
  std::uint64_t delta_refusals = 0;
  std::uint64_t faults_injected = 0;
};

class PersistenceManager {
 public:
  enum class FaultKind { kTornTail, kCorruptRecord, kLostFsync };

  PersistenceManager(MachineId self, const Schema& schema,
                     PersistenceConfig config);

  bool enabled() const { return config_.enabled; }
  const PersistenceConfig& config() const { return config_; }
  MachineId self() const { return self_; }

  /// Cluster-scoped counters (persist.appends etc.). Optional.
  void set_obs(obs::Obs o) { obs_ = o; }

  /// Disk-space accounting hook, invoked after every durable write (and
  /// after truncations/erasures, with `written` = 0) with the bytes just
  /// written and this machine's current bytes-on-disk total. The cluster
  /// wires it to the CostLedger and the persist.bytes_on_disk gauge; going
  /// through a hook keeps the manager itself ledger-free (see the file
  /// comment) and trivially deterministic.
  using DiskAccounting =
      std::function<void(std::uint64_t written, std::uint64_t on_disk)>;
  void set_disk_accounting(DiskAccounting hook) {
    disk_accounting_ = std::move(hook);
  }

  /// Total durable bytes currently on this machine's disk (logs +
  /// checkpoints across all classes).
  std::uint64_t bytes_on_disk() const;

  // --- append path ----------------------------------------------------------
  /// Append one applied operation at `lsn`. Returns the disk cost (0 when
  /// disabled).
  Cost log_op(ClassId cls, std::uint64_t lsn, const ServerMessage& op);

  /// Whether the checkpoint policy (bytes-since-last or age) has tripped.
  bool checkpoint_due(ClassId cls, sim::SimTime now) const;

  /// Write a checkpoint image and compact the log behind it.
  Cost write_checkpoint(ClassId cls, CheckpointImage image, sim::SimTime now);

  /// Full-transfer install: the in-memory state was just replaced wholesale,
  /// so the old log no longer describes it. Writes a fresh checkpoint and
  /// truncates the log to empty.
  Cost reset_class(ClassId cls, CheckpointImage image, sim::SimTime now);

  /// Voluntary leave: erase the class's durable files (the paper's "servers
  /// should erase all information when leaving a group", extended to disk).
  void erase_class(ClassId cls);

  // --- recovery path --------------------------------------------------------
  /// Classes with any durable bytes on this disk.
  std::vector<ClassId> durable_classes() const;

  /// Read and validate the class's checkpoint + log. Contiguity is enforced:
  /// the tail starts at checkpoint.lsn + 1 and each record increments the
  /// lsn; scanning stops (and the file is repair-truncated) at the first
  /// checksum failure, torn record or lsn gap. nullopt when nothing durable
  /// survives validation.
  std::optional<RecoveredClass> recover(ClassId cls);

  // --- delta donor ----------------------------------------------------------
  /// The position a joiner advertises in g-join: checkpoint epoch + last
  /// durable lsn. Meaningful only right after recover() or on a live server
  /// (the mirrors track disk writes).
  std::uint64_t checkpoint_epoch(ClassId cls) const;
  std::uint64_t durable_lsn(ClassId cls) const;

  /// Donor side: the validated log suffix with lsn > after_lsn, or nullopt
  /// when the log cannot serve it (compacted past after_lsn, corrupt, or
  /// after_lsn ahead of the log). `cost` accumulates the disk read.
  std::optional<std::vector<WalRecord>> capture_suffix(ClassId cls,
                                                       std::uint64_t after_lsn,
                                                       Cost* cost);

  /// The compaction horizon: the retained log starts just past this lsn, so
  /// a delta can be served to any joiner at position >= checkpoint_lsn.
  /// GroupService uses it as the donor-selection key (prefer the member
  /// whose log reaches furthest back).
  std::uint64_t checkpoint_lsn(ClassId cls) const;

  // --- chaos ----------------------------------------------------------------
  /// Deterministically damage one class's durable files. Returns a
  /// human-readable description of what was done, or nullopt when there was
  /// nothing to damage (the chaos engine logs a skip).
  std::optional<std::string> inject_fault(FaultKind kind, std::uint64_t salt);

  // --- diagnostics ----------------------------------------------------------
  const PersistStats& stats() const { return stats_; }
  SimDisk& disk() { return disk_; }
  std::size_t log_bytes(ClassId cls) const;
  std::size_t checkpoint_bytes_on_disk(ClassId cls) const;

 private:
  /// Durable-position mirrors, kept in sync with disk writes. After injected
  /// corruption they may overstate the log; every read path re-validates
  /// from the bytes, so mirrors are an optimization, never an authority.
  struct ClassDurable {
    std::uint64_t epoch = 0;
    std::uint64_t checkpoint_lsn = 0;  ///< log base: records start past this
    std::uint64_t durable_lsn = 0;
    sim::SimTime last_checkpoint_at = 0;
  };

  std::string log_file(ClassId cls) const;
  std::string ckpt_file(ClassId cls) const;
  std::vector<FieldType> signature_of(ClassId cls) const;
  ClassDurable& durable(ClassId cls);
  void count(const char* name, double amount = 1);
  void account_disk(std::uint64_t written);

  MachineId self_;
  const Schema& schema_;
  PersistenceConfig config_;
  SimDisk disk_;
  obs::Obs obs_;
  std::unordered_map<std::uint32_t, ClassDurable> classes_;
  PersistStats stats_;
  DiskAccounting disk_accounting_;
};

const char* persist_fault_name(PersistenceManager::FaultKind kind);

}  // namespace paso::persist
