#include "persist/wal.hpp"

#include "common/bytes.hpp"

namespace paso::persist {

std::uint32_t wal_checksum(std::uint64_t lsn,
                           const std::vector<std::uint8_t>& payload) {
  std::uint32_t h = 2166136261u;
  const auto mix = [&h](std::uint8_t b) {
    h ^= b;
    h *= 16777619u;
  };
  for (int i = 0; i < 8; ++i) mix(static_cast<std::uint8_t>(lsn >> (8 * i)));
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) mix(static_cast<std::uint8_t>(len >> (8 * i)));
  for (const std::uint8_t b : payload) mix(b);
  return h;
}

std::vector<std::uint8_t> encode_record(const WalRecord& record) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(record.payload.size()));
  w.u64(record.lsn);
  for (const std::uint8_t b : record.payload) w.u8(b);
  w.u32(wal_checksum(record.lsn, record.payload));
  return w.take();
}

WalScan scan_log(const std::vector<std::uint8_t>& bytes) {
  WalScan scan;
  std::size_t pos = 0;
  const auto read_u32 = [&bytes](std::size_t at) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{bytes[at + i]} << (8 * i);
    return v;
  };
  const auto read_u64 = [&bytes](std::size_t at) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes[at + i]} << (8 * i);
    return v;
  };
  while (pos + kWalFrameBytes <= bytes.size()) {
    const std::size_t len = read_u32(pos);
    if (pos + kWalFrameBytes + len > bytes.size()) break;  // torn tail
    WalRecord record;
    record.lsn = read_u64(pos + 4);
    record.payload.assign(bytes.begin() + pos + 12,
                          bytes.begin() + pos + 12 + len);
    const std::uint32_t stored = read_u32(pos + 12 + len);
    if (stored != wal_checksum(record.lsn, record.payload)) break;
    scan.records.push_back(std::move(record));
    pos += kWalFrameBytes + len;
  }
  scan.valid_bytes = pos;
  scan.corrupt = pos != bytes.size();
  return scan;
}

}  // namespace paso::persist
