// Write-ahead-log record framing.
//
// A log file is a concatenation of framed records:
//
//   u32 payload_len | u64 lsn | payload bytes | u32 checksum
//
// The payload is a wire-encoded ServerMessage (the codec already sizes every
// message honestly, so framed length == charged bytes + 16 of framing). The
// checksum (FNV-1a over length, lsn and payload) makes torn tail writes,
// lost fsyncs and flipped bytes *detectable*: scan_log stops at the first
// record that fails its length or checksum test and reports the clean prefix
// so the caller can truncate and carry on — the paper's erased-memory crash
// model extended with the standard crash-consistency discipline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace paso::persist {

/// One logged replicated operation. `lsn` is the class's delivery sequence
/// number: gcasts are totally ordered, so every replica assigns the same lsn
/// to the same operation, which is what makes log suffixes exchangeable
/// between machines (delta state transfer).
struct WalRecord {
  std::uint64_t lsn = 0;
  std::vector<std::uint8_t> payload;
};

/// Framing overhead per record (length + lsn + checksum).
inline constexpr std::size_t kWalFrameBytes = 16;

/// FNV-1a over the frame header and payload; seeded with the lsn so a record
/// spliced from another position never checks out.
std::uint32_t wal_checksum(std::uint64_t lsn,
                           const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_record(const WalRecord& record);

/// Result of scanning a log buffer front to back.
struct WalScan {
  std::vector<WalRecord> records;  ///< every record up to the first bad one
  std::size_t valid_bytes = 0;     ///< length of the clean prefix
  bool corrupt = false;            ///< trailing bytes failed validation
};

/// Decode records until the buffer ends or a record fails its length or
/// checksum test. Never throws: a damaged tail is data, not a bug.
WalScan scan_log(const std::vector<std::uint8_t>& bytes);

}  // namespace paso::persist
