#include "persist/checkpoint.hpp"

#include "common/bytes.hpp"
#include "common/require.hpp"
#include "paso/wire.hpp"
#include "persist/wal.hpp"

namespace paso::persist {

namespace {

void encode_id(ByteWriter& w, const ObjectId& id) {
  w.u32(id.creator.machine.value);
  w.u32(id.creator.ordinal);
  w.u64(id.sequence);
}

ObjectId decode_id(ByteReader& r) {
  ObjectId id;
  id.creator.machine.value = r.u32();
  id.creator.ordinal = r.u32();
  id.sequence = r.u64();
  return id;
}

}  // namespace

std::vector<std::uint8_t> encode_checkpoint(const CheckpointImage& image) {
  ByteWriter w;
  w.u64(image.epoch);
  w.u64(image.lsn);
  w.u64(image.next_age);
  w.u32(static_cast<std::uint32_t>(image.objects.size()));
  for (const storage::StoredObject& stored : image.objects) {
    w.u64(stored.age);
    wire::encode_object(w, stored.object);
  }
  w.u32(static_cast<std::uint32_t>(image.applied_inserts.size()));
  for (const ObjectId& id : image.applied_inserts) encode_id(w, id);
  w.u32(static_cast<std::uint32_t>(image.remove_cache.size()));
  for (const auto& [token, response] : image.remove_cache) {
    w.u64(token);
    w.u8(response.has_value() ? 1 : 0);
    if (response.has_value()) wire::encode_object(w, *response);
  }
  std::vector<std::uint8_t> body = w.take();
  // Seal the image with the WAL checksum primitive (seeded by the lsn).
  const std::uint32_t sum = wal_checksum(image.lsn, body);
  ByteWriter tail;
  tail.u32(sum);
  const std::vector<std::uint8_t> sealed = tail.take();
  body.insert(body.end(), sealed.begin(), sealed.end());
  return body;
}

std::optional<CheckpointImage> decode_checkpoint(
    const std::vector<std::uint8_t>& bytes,
    const std::vector<FieldType>& signature) {
  if (bytes.size() < 4) return std::nullopt;
  std::vector<std::uint8_t> body(bytes.begin(), bytes.end() - 4);
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= std::uint32_t{bytes[bytes.size() - 4 + i]} << (8 * i);
  }
  // The checksum is seeded with the lsn, which sits at a fixed offset.
  if (body.size() < 24) return std::nullopt;
  std::uint64_t lsn = 0;
  for (int i = 0; i < 8; ++i) lsn |= std::uint64_t{body[8 + i]} << (8 * i);
  if (stored != wal_checksum(lsn, body)) return std::nullopt;
  try {
    ByteReader r(body);
    CheckpointImage image;
    image.epoch = r.u64();
    image.lsn = r.u64();
    image.next_age = r.u64();
    const std::uint32_t objects = r.u32();
    image.objects.reserve(objects);
    for (std::uint32_t i = 0; i < objects; ++i) {
      storage::StoredObject stored_obj;
      stored_obj.age = r.u64();
      stored_obj.object = wire::decode_object(r, signature);
      image.objects.push_back(std::move(stored_obj));
    }
    const std::uint32_t inserts = r.u32();
    image.applied_inserts.reserve(inserts);
    for (std::uint32_t i = 0; i < inserts; ++i) {
      image.applied_inserts.push_back(decode_id(r));
    }
    const std::uint32_t removes = r.u32();
    image.remove_cache.reserve(removes);
    for (std::uint32_t i = 0; i < removes; ++i) {
      const std::uint64_t token = r.u64();
      SearchResponse response;
      if (r.u8() != 0) response = wire::decode_object(r, signature);
      image.remove_cache.emplace_back(token, std::move(response));
    }
    if (!r.exhausted()) return std::nullopt;
    return image;
  } catch (const InvariantViolation&) {
    // Checksum passed but the structure decodes past the end — treat as
    // corruption, not a programming error: the bytes came off a faulty disk.
    return std::nullopt;
  }
}

}  // namespace paso::persist
