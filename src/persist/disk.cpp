#include "persist/disk.hpp"

#include <utility>

namespace paso::persist {

Cost SimDisk::charge_write(std::size_t bytes) {
  ++writes_;
  bytes_written_ += bytes;
  const Cost cost = model_.io(bytes);
  total_cost_ += cost;
  return cost;
}

Cost SimDisk::charge_read(std::size_t bytes) {
  ++reads_;
  bytes_read_ += bytes;
  const Cost cost = model_.io(bytes);
  total_cost_ += cost;
  return cost;
}

Cost SimDisk::append(const std::string& file,
                     const std::vector<std::uint8_t>& bytes) {
  auto& contents = files_[file];
  contents.insert(contents.end(), bytes.begin(), bytes.end());
  return charge_write(bytes.size());
}

Cost SimDisk::overwrite(const std::string& file,
                        std::vector<std::uint8_t> bytes) {
  const std::size_t n = bytes.size();
  files_[file] = std::move(bytes);
  return charge_write(n);
}

Cost SimDisk::read(const std::string& file, std::vector<std::uint8_t>& out) {
  auto it = files_.find(file);
  if (it == files_.end()) {
    out.clear();
    return 0;
  }
  out = it->second;
  return charge_read(out.size());
}

Cost SimDisk::truncate(const std::string& file, std::size_t size) {
  auto it = files_.find(file);
  if (it == files_.end() || it->second.size() <= size) return 0;
  it->second.resize(size);
  return charge_write(0);  // a metadata write: seek, no payload
}

void SimDisk::remove(const std::string& file) { files_.erase(file); }

std::size_t SimDisk::size(const std::string& file) const {
  auto it = files_.find(file);
  return it == files_.end() ? 0 : it->second.size();
}

const std::vector<std::uint8_t>* SimDisk::peek(const std::string& file) const {
  auto it = files_.find(file);
  return it == files_.end() ? nullptr : &it->second;
}

bool SimDisk::chop(const std::string& file, std::size_t n) {
  auto it = files_.find(file);
  if (it == files_.end() || it->second.empty() || n == 0) return false;
  const std::size_t drop = std::min(n, it->second.size());
  it->second.resize(it->second.size() - drop);
  return true;
}

bool SimDisk::flip(const std::string& file, std::size_t offset) {
  auto it = files_.find(file);
  if (it == files_.end() || it->second.empty()) return false;
  it->second[offset % it->second.size()] ^= 0x5A;
  return true;
}

}  // namespace paso::persist
