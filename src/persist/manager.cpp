#include "persist/manager.hpp"

#include <algorithm>
#include <utility>

#include "common/require.hpp"
#include "paso/wire.hpp"

namespace paso::persist {

const char* persist_fault_name(PersistenceManager::FaultKind kind) {
  switch (kind) {
    case PersistenceManager::FaultKind::kTornTail:
      return "torn-tail";
    case PersistenceManager::FaultKind::kCorruptRecord:
      return "corrupt-record";
    case PersistenceManager::FaultKind::kLostFsync:
      return "lost-fsync";
  }
  return "?";
}

PersistenceManager::PersistenceManager(MachineId self, const Schema& schema,
                                       PersistenceConfig config)
    : self_(self), schema_(schema), config_(config), disk_(config.disk) {}

std::string PersistenceManager::log_file(ClassId cls) const {
  return "c" + std::to_string(cls.value) + ".log";
}

std::string PersistenceManager::ckpt_file(ClassId cls) const {
  return "c" + std::to_string(cls.value) + ".ckpt";
}

std::vector<FieldType> PersistenceManager::signature_of(ClassId cls) const {
  return schema_.specs()[schema_.locate(cls).first].signature;
}

PersistenceManager::ClassDurable& PersistenceManager::durable(ClassId cls) {
  return classes_[cls.value];
}

void PersistenceManager::count(const char* name, double amount) {
  if (obs_.metrics != nullptr) obs_.metrics->counter(name).inc(amount);
}

std::uint64_t PersistenceManager::bytes_on_disk() const {
  std::uint64_t total = 0;
  for (std::uint32_t c = 0; c < schema_.class_count(); ++c) {
    const ClassId cls{c};
    total += disk_.size(log_file(cls)) + disk_.size(ckpt_file(cls));
  }
  return total;
}

void PersistenceManager::account_disk(std::uint64_t written) {
  if (disk_accounting_) disk_accounting_(written, bytes_on_disk());
}

// ---------------------------------------------------------------------------
// append path

Cost PersistenceManager::log_op(ClassId cls, std::uint64_t lsn,
                                const ServerMessage& op) {
  if (!config_.enabled) return 0;
  WalRecord record;
  record.lsn = lsn;
  record.payload = wire::encode_message(op);
  const std::vector<std::uint8_t> framed = encode_record(record);
  const Cost cost = disk_.append(log_file(cls), framed);
  durable(cls).durable_lsn = lsn;
  ++stats_.appends;
  stats_.append_bytes += framed.size();
  count("persist.appends");
  count("persist.append_bytes", static_cast<double>(framed.size()));
  account_disk(framed.size());
  return cost;
}

bool PersistenceManager::checkpoint_due(ClassId cls, sim::SimTime now) const {
  if (!config_.enabled) return false;
  const std::size_t log_size = disk_.size(log_file(cls));
  if (log_size == 0) return false;
  if (log_size >= config_.checkpoint_every_bytes) return true;
  if (config_.checkpoint_interval >= sim::kNever) return false;
  auto it = classes_.find(cls.value);
  const sim::SimTime last =
      it == classes_.end() ? 0 : it->second.last_checkpoint_at;
  return now - last >= config_.checkpoint_interval;
}

Cost PersistenceManager::write_checkpoint(ClassId cls, CheckpointImage image,
                                          sim::SimTime now) {
  if (!config_.enabled) return 0;
  ClassDurable& d = durable(cls);
  image.epoch = ++d.epoch;
  const std::vector<std::uint8_t> bytes = encode_checkpoint(image);
  Cost cost = disk_.overwrite(ckpt_file(cls), bytes);
  ++stats_.checkpoints;
  stats_.checkpoint_bytes += bytes.size();
  count("persist.checkpoints");
  count("persist.checkpoint_bytes", static_cast<double>(bytes.size()));
  if (config_.compact_on_checkpoint) {
    // The image covers everything up to image.lsn; on the apply path that is
    // the entire log, so compaction is a truncate-to-empty. (A scan-and-keep
    // of newer records would be needed only for images taken mid-stream,
    // which no caller produces.)
    cost += disk_.truncate(log_file(cls), 0);
    ++stats_.compactions;
    count("persist.compactions");
  }
  d.checkpoint_lsn = image.lsn;
  d.durable_lsn = std::max(d.durable_lsn, image.lsn);
  d.last_checkpoint_at = now;
  // Accounted after compaction so on_disk reflects the post-checkpoint
  // footprint (image written, log behind it gone).
  account_disk(bytes.size());
  return cost;
}

Cost PersistenceManager::reset_class(ClassId cls, CheckpointImage image,
                                     sim::SimTime now) {
  if (!config_.enabled) return 0;
  // Drop the old log unconditionally: it describes a state line this
  // replica just abandoned for the donor's.
  Cost cost = disk_.truncate(log_file(cls), 0);
  disk_.remove(log_file(cls));
  ClassDurable& d = durable(cls);
  d.durable_lsn = image.lsn;
  cost += write_checkpoint(cls, std::move(image), now);
  ++stats_.resets;
  count("persist.resets");
  return cost;
}

void PersistenceManager::erase_class(ClassId cls) {
  disk_.remove(log_file(cls));
  disk_.remove(ckpt_file(cls));
  classes_.erase(cls.value);
  account_disk(0);
}

// ---------------------------------------------------------------------------
// recovery path

std::vector<ClassId> PersistenceManager::durable_classes() const {
  std::vector<ClassId> out;
  for (std::uint32_t c = 0; c < schema_.class_count(); ++c) {
    const ClassId cls{c};
    if (disk_.size(log_file(cls)) > 0 || disk_.size(ckpt_file(cls)) > 0) {
      out.push_back(cls);
    }
  }
  return out;
}

std::optional<RecoveredClass> PersistenceManager::recover(ClassId cls) {
  if (!config_.enabled) return std::nullopt;
  RecoveredClass out;
  ++stats_.replays;
  count("persist.replays");

  std::vector<std::uint8_t> bytes;
  out.cost += disk_.read(ckpt_file(cls), bytes);
  std::uint64_t base_lsn = 0;
  if (!bytes.empty()) {
    out.checkpoint = decode_checkpoint(bytes, signature_of(cls));
    if (out.checkpoint.has_value()) {
      base_lsn = out.checkpoint->lsn;
    } else {
      // A corrupt checkpoint poisons everything behind it: the log's base
      // is unknown, so local replay is impossible. Discard both files and
      // let the join fall back to a full transfer.
      out.corruption_detected = true;
      ++stats_.corruptions_detected;
      stats_.truncated_bytes += bytes.size() + disk_.size(log_file(cls));
      count("persist.corruptions");
      disk_.remove(ckpt_file(cls));
      disk_.remove(log_file(cls));
      classes_.erase(cls.value);
      account_disk(0);
      return std::nullopt;
    }
  }

  out.cost += disk_.read(log_file(cls), bytes);
  WalScan scan = scan_log(bytes);
  // Contiguity: replaying record lsn=k onto state at lsn=k-1 is the only
  // sound application. A gap (e.g. a lost-fsync hole) invalidates the
  // records past it even if their checksums hold.
  std::uint64_t expect = base_lsn + 1;
  std::size_t keep_bytes = 0;
  std::vector<WalRecord> tail;
  for (WalRecord& record : scan.records) {
    if (record.lsn != expect) {
      scan.corrupt = true;
      break;
    }
    keep_bytes += kWalFrameBytes + record.payload.size();
    tail.push_back(std::move(record));
    ++expect;
  }
  if (scan.corrupt || keep_bytes < bytes.size()) {
    out.corruption_detected = true;
    ++stats_.corruptions_detected;
    stats_.truncated_bytes += bytes.size() - keep_bytes;
    count("persist.corruptions");
    count("persist.truncated_bytes",
          static_cast<double>(bytes.size() - keep_bytes));
    out.cost += disk_.truncate(log_file(cls), keep_bytes);
    account_disk(0);
  }
  out.tail = std::move(tail);
  stats_.replayed_records += out.tail.size();
  count("persist.replayed_records", static_cast<double>(out.tail.size()));

  if (!out.checkpoint.has_value() && out.tail.empty()) return std::nullopt;

  ClassDurable& d = durable(cls);
  d.epoch = out.checkpoint.has_value() ? out.checkpoint->epoch : 0;
  d.checkpoint_lsn = base_lsn;
  d.durable_lsn = out.tail.empty() ? base_lsn : out.tail.back().lsn;
  return out;
}

// ---------------------------------------------------------------------------
// delta donor

std::uint64_t PersistenceManager::checkpoint_epoch(ClassId cls) const {
  auto it = classes_.find(cls.value);
  return it == classes_.end() ? 0 : it->second.epoch;
}

std::uint64_t PersistenceManager::durable_lsn(ClassId cls) const {
  auto it = classes_.find(cls.value);
  return it == classes_.end() ? 0 : it->second.durable_lsn;
}

std::uint64_t PersistenceManager::checkpoint_lsn(ClassId cls) const {
  auto it = classes_.find(cls.value);
  return it == classes_.end() ? 0 : it->second.checkpoint_lsn;
}

std::optional<std::vector<WalRecord>> PersistenceManager::capture_suffix(
    ClassId cls, std::uint64_t after_lsn, Cost* cost) {
  if (!config_.enabled) return std::nullopt;
  auto it = classes_.find(cls.value);
  if (it == classes_.end()) return std::nullopt;
  const ClassDurable& d = it->second;
  if (after_lsn < d.checkpoint_lsn || after_lsn > d.durable_lsn) {
    // Compacted past the joiner's position (too stale) or the joiner claims
    // a future we don't have: no delta.
    ++stats_.delta_refusals;
    count("persist.delta_refusals");
    return std::nullopt;
  }
  std::vector<std::uint8_t> bytes;
  const Cost read_cost = disk_.read(log_file(cls), bytes);
  if (cost != nullptr) *cost += read_cost;
  const WalScan scan = scan_log(bytes);
  // Validate end to end: contiguous from the log base through our durable
  // lsn. Any damage (an injected fault we have not noticed yet) disqualifies
  // the delta; the caller falls back to a full transfer.
  std::uint64_t expect = d.checkpoint_lsn + 1;
  std::vector<WalRecord> suffix;
  for (const WalRecord& record : scan.records) {
    if (record.lsn != expect) break;
    if (record.lsn > after_lsn) suffix.push_back(record);
    ++expect;
  }
  if (scan.corrupt || expect != d.durable_lsn + 1) {
    ++stats_.delta_refusals;
    count("persist.delta_refusals");
    return std::nullopt;
  }
  ++stats_.delta_captures;
  count("persist.delta_captures");
  return suffix;
}

// ---------------------------------------------------------------------------
// chaos

std::optional<std::string> PersistenceManager::inject_fault(
    FaultKind kind, std::uint64_t salt) {
  if (!config_.enabled) return std::nullopt;
  // Deterministic target selection: the salt picks among classes that have
  // log bytes to damage, in class-id order.
  std::vector<ClassId> targets;
  for (std::uint32_t c = 0; c < schema_.class_count(); ++c) {
    if (disk_.size(log_file(ClassId{c})) > 0) targets.push_back(ClassId{c});
  }
  if (targets.empty()) return std::nullopt;
  const ClassId cls = targets[salt % targets.size()];
  const std::string file = log_file(cls);
  const std::string label = "c" + std::to_string(cls.value);
  bool did = false;
  std::string what;
  switch (kind) {
    case FaultKind::kTornTail: {
      const std::size_t n = 1 + salt % 24;
      did = disk_.chop(file, n);
      what = "torn tail -" + std::to_string(n) + "B " + label;
      break;
    }
    case FaultKind::kCorruptRecord:
      did = disk_.flip(file, salt);
      what = "corrupt byte @" + std::to_string(salt % disk_.size(file)) + " " +
             label;
      break;
    case FaultKind::kLostFsync: {
      // The last appended record never reached the platter: drop it whole
      // (plus any torn bytes already past it).
      const std::vector<std::uint8_t>* bytes = disk_.peek(file);
      const WalScan scan = scan_log(*bytes);
      if (!scan.records.empty()) {
        const std::size_t last =
            kWalFrameBytes + scan.records.back().payload.size();
        did = disk_.chop(file, (bytes->size() - scan.valid_bytes) + last);
        what = "lost fsync (last record) " + label;
      }
      break;
    }
  }
  if (!did) return std::nullopt;
  ++stats_.faults_injected;
  count("persist.faults_injected");
  account_disk(0);
  return what;
}

// ---------------------------------------------------------------------------
// diagnostics

std::size_t PersistenceManager::log_bytes(ClassId cls) const {
  return disk_.size(log_file(cls));
}

std::size_t PersistenceManager::checkpoint_bytes_on_disk(ClassId cls) const {
  return disk_.size(ckpt_file(cls));
}

}  // namespace paso::persist
