// A simulated per-machine disk.
//
// The simulator has no real filesystem; SimDisk models one as named byte
// files in memory, with a seek+byte cost model mirroring the bus's
// alpha+beta*|m| shape. Crucially, a SimDisk is owned *outside* the memory
// server (by the Cluster), so a crash that erases the server's memory leaves
// the disk intact — that persistence gap is the whole point of the WAL.
//
// Every I/O returns the model cost it incurred; the caller decides where the
// cost lands (gcast processing time on the append path, explicit ledger
// charges on the recovery path), so disk latency is charged exactly once.
// Fault-injection entry points (chop / flip) mutate bytes without cost:
// corruption is not work.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cost.hpp"

namespace paso::persist {

/// Disk latency model: cost(io) = seek + byte * |io|. Like the bus's
/// CostModel this is virtual time, charged through the CostLedger by the
/// layer that performs the I/O.
struct DiskCostModel {
  Cost seek = 20.0;
  Cost byte = 0.05;

  Cost io(std::size_t bytes) const {
    return seek + byte * static_cast<Cost>(bytes);
  }
};

class SimDisk {
 public:
  explicit SimDisk(DiskCostModel model = {}) : model_(model) {}

  /// Append bytes to a file (created on first write). One I/O.
  Cost append(const std::string& file, const std::vector<std::uint8_t>& bytes);

  /// Replace a file's contents atomically. One I/O.
  Cost overwrite(const std::string& file, std::vector<std::uint8_t> bytes);

  /// Read a whole file (empty if absent). One I/O when the file exists.
  Cost read(const std::string& file, std::vector<std::uint8_t>& out);

  /// Shrink a file to `size` bytes (no-op if already smaller). Seek only.
  Cost truncate(const std::string& file, std::size_t size);

  /// Delete a file. Free (space reclamation is not on the latency path).
  void remove(const std::string& file);

  bool exists(const std::string& file) const { return files_.contains(file); }
  std::size_t size(const std::string& file) const;

  /// Uncharged access to a file's bytes (nullptr if absent). For the fault
  /// plane and tests only — real I/O paths go through read().
  const std::vector<std::uint8_t>* peek(const std::string& file) const;

  // --- fault plane (chaos): silent bit-rot, no cost, no stats ---------------
  /// Drop the last `n` bytes of a file (a torn tail write). False if the
  /// file has no bytes to lose.
  bool chop(const std::string& file, std::size_t n);
  /// Flip bits in the byte at `offset % size` (a corrupt sector). False if
  /// the file is empty.
  bool flip(const std::string& file, std::size_t offset);

  // --- accounting -----------------------------------------------------------
  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  Cost total_cost() const { return total_cost_; }
  const DiskCostModel& model() const { return model_; }

 private:
  Cost charge_write(std::size_t bytes);
  Cost charge_read(std::size_t bytes);

  DiskCostModel model_;
  std::unordered_map<std::string, std::vector<std::uint8_t>> files_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  Cost total_cost_ = 0;
};

}  // namespace paso::persist
