// Axiom checker for PASO run histories (Section 2).
//
// Given a recorded history the checker verifies, mechanically, the paper's
// semantics:
//
//   A2   An object becomes alive only after it is inserted; there is at most
//        one insert(o) and at most one read&del returning o.
//   read A read returns an object that satisfies the search criterion and is
//        alive at some time between the issue and the return of the read; it
//        may return fail only when no matching object is *consistently*
//        alive from issue to return.
//   r&d  Like read, and additionally the returned object dies after the
//        issue of the read&del (so no operation can observe it alive once a
//        later-issued read begins).
//
// Alive intervals are not directly observable, so the checker reasons with
// the tightest *sound* bounds derivable from the history: an object can be
// alive no earlier than the issue of its insert, is certainly alive from the
// return of its insert, can die no earlier than the issue of its read&del,
// and is certainly dead after the return of its read&del. Every reported
// violation is a genuine violation under any consistent assignment of alive
// intervals (no false positives); crash-pending operations are treated with
// maximal pessimism.
#pragma once

#include <string>
#include <vector>

#include "semantics/history.hpp"

namespace paso::semantics {

struct CheckResult {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

/// Fault context of a run, enabling the crash/recovery-epoch checks:
///   * every crash event, so a pending op whose issuer machine crashed after
///     the issue is recognised as legitimately orphaned;
///   * the run's end time, which arms liveness checking — any op still
///     pending at `end_time` that was neither abandoned (timeout surfaced to
///     the caller) nor orphaned by a crash is flagged as *hung*.
struct RunContext {
  struct CrashEvent {
    MachineId machine;
    sim::SimTime at = 0;
  };
  std::vector<CrashEvent> crashes;
  std::optional<sim::SimTime> end_time;
};

CheckResult check_history(const std::vector<OpRecord>& records);
CheckResult check_history(const std::vector<OpRecord>& records,
                          const RunContext& context);

inline CheckResult check_history(const HistoryRecorder& recorder) {
  return check_history(recorder.records());
}

inline CheckResult check_history(const HistoryRecorder& recorder,
                                 const RunContext& context) {
  return check_history(recorder.records(), context);
}

}  // namespace paso::semantics
