#include "semantics/history.hpp"

namespace paso::semantics {

std::uint64_t HistoryRecorder::insert_issued(ProcessId process,
                                             sim::SimTime now,
                                             const PasoObject& object) {
  OpRecord record;
  record.process = process;
  record.kind = OpKind::kInsert;
  record.issue_time = now;
  record.inserted = object;
  std::lock_guard<std::mutex> lock(mu_);
  record.op_id = records_.size();
  records_.push_back(std::move(record));
  return records_.back().op_id;
}

std::uint64_t HistoryRecorder::search_issued(ProcessId process,
                                             sim::SimTime now, OpKind kind,
                                             const SearchCriterion& criterion) {
  PASO_REQUIRE(kind != OpKind::kInsert, "use insert_issued");
  OpRecord record;
  record.process = process;
  record.kind = kind;
  record.issue_time = now;
  record.criterion = criterion;
  std::lock_guard<std::mutex> lock(mu_);
  record.op_id = records_.size();
  records_.push_back(std::move(record));
  return records_.back().op_id;
}

OpRecord& HistoryRecorder::record_of(std::uint64_t op_id) {
  PASO_REQUIRE(op_id < records_.size(), "unknown op id");
  return records_[op_id];
}

void HistoryRecorder::op_returned(std::uint64_t op_id, sim::SimTime now,
                                  std::optional<PasoObject> result) {
  std::lock_guard<std::mutex> lock(mu_);
  OpRecord& record = record_of(op_id);
  PASO_REQUIRE(!record.return_time.has_value(), "op returned twice");
  PASO_REQUIRE(now >= record.issue_time, "return precedes issue");
  record.return_time = now;
  record.result = std::move(result);
}

void HistoryRecorder::op_abandoned(std::uint64_t op_id, sim::SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  OpRecord& record = record_of(op_id);
  PASO_REQUIRE(!record.return_time.has_value(), "abandoning a returned op");
  PASO_REQUIRE(now >= record.issue_time, "abandon precedes issue");
  record.abandoned = true;
}

}  // namespace paso::semantics
