// Run histories (Section 2).
//
// A PASO run alternates global states and joint transitions; each PASO
// command contributes two atomic events, its *issue* and its *return*. The
// recorder captures exactly those events (with virtual timestamps) for every
// insert / read / read&del executed against the system, so a finished run
// can be checked against the paper's axioms A1–A3 and the per-command rules.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "paso/criteria.hpp"
#include "paso/object.hpp"
#include "sim/simulator.hpp"

namespace paso::semantics {

enum class OpKind { kInsert, kRead, kReadDel };

inline const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kInsert:
      return "insert";
    case OpKind::kRead:
      return "read";
    case OpKind::kReadDel:
      return "read&del";
  }
  return "?";
}

struct OpRecord {
  std::uint64_t op_id = 0;
  ProcessId process;
  OpKind kind = OpKind::kInsert;
  sim::SimTime issue_time = 0;
  /// nullopt while pending (e.g. the issuer crashed before the response).
  std::optional<sim::SimTime> return_time;

  // Insert payload.
  std::optional<PasoObject> inserted;

  // Read / read&del payload.
  std::optional<SearchCriterion> criterion;
  /// The returned object; nullopt = the operation returned fail. Only
  /// meaningful once return_time is set.
  std::optional<PasoObject> result;
};

class HistoryRecorder {
 public:
  std::uint64_t insert_issued(ProcessId process, sim::SimTime now,
                              const PasoObject& object);
  std::uint64_t search_issued(ProcessId process, sim::SimTime now, OpKind kind,
                              const SearchCriterion& criterion);
  void op_returned(std::uint64_t op_id, sim::SimTime now,
                   std::optional<PasoObject> result);

  const std::vector<OpRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

 private:
  OpRecord& record_of(std::uint64_t op_id);

  std::vector<OpRecord> records_;
};

}  // namespace paso::semantics
