// Run histories (Section 2).
//
// A PASO run alternates global states and joint transitions; each PASO
// command contributes two atomic events, its *issue* and its *return*. The
// recorder captures exactly those events (with virtual timestamps) for every
// insert / read / read&del executed against the system, so a finished run
// can be checked against the paper's axioms A1–A3 and the per-command rules.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "paso/criteria.hpp"
#include "paso/object.hpp"
#include "sim/simulator.hpp"

namespace paso::semantics {

enum class OpKind { kInsert, kRead, kReadDel };

inline const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kInsert:
      return "insert";
    case OpKind::kRead:
      return "read";
    case OpKind::kReadDel:
      return "read&del";
  }
  return "?";
}

struct OpRecord {
  std::uint64_t op_id = 0;
  ProcessId process;
  OpKind kind = OpKind::kInsert;
  sim::SimTime issue_time = 0;
  /// nullopt while pending (e.g. the issuer crashed before the response).
  std::optional<sim::SimTime> return_time;
  /// The runtime gave up on this operation (deadline / degradation) and told
  /// its caller so. The record stays pending — the replicated effect may or
  /// may not have been applied, and the checker treats it with the same
  /// maximal pessimism as a crash-orphaned op — but, unlike a genuinely hung
  /// op, an abandoned op is accounted for and must not be flagged as a hang.
  bool abandoned = false;

  // Insert payload.
  std::optional<PasoObject> inserted;

  // Read / read&del payload.
  std::optional<SearchCriterion> criterion;
  /// The returned object; nullopt = the operation returned fail. Only
  /// meaningful once return_time is set.
  std::optional<PasoObject> result;
};

class HistoryRecorder {
 public:
  std::uint64_t insert_issued(ProcessId process, sim::SimTime now,
                              const PasoObject& object);
  std::uint64_t search_issued(ProcessId process, sim::SimTime now, OpKind kind,
                              const SearchCriterion& criterion);
  void op_returned(std::uint64_t op_id, sim::SimTime now,
                   std::optional<PasoObject> result);
  /// Mark a pending op as deliberately given up (timeout / degradation
  /// surfaced to the caller). Mutually exclusive with op_returned.
  void op_abandoned(std::uint64_t op_id, sim::SimTime now);

  /// Direct reference into the record list: only valid while the run is
  /// quiescent (the checker and reporters read it after the cluster drains;
  /// concurrent issues would reallocate under the reader).
  const std::vector<OpRecord>& records() const { return records_; }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
  }
  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    records_.clear();
  }

 private:
  OpRecord& record_of(std::uint64_t op_id);

  /// Issues append and returns mutate in place; on sharded transports those
  /// executions may hold disjoint stack shards, so the recorder serializes
  /// internally (a leaf lock: nothing else is acquired while held).
  mutable std::mutex mu_;
  std::vector<OpRecord> records_;
};

}  // namespace paso::semantics
