#include "semantics/checker.hpp"

#include <limits>
#include <sstream>
#include <unordered_map>

namespace paso::semantics {

namespace {

constexpr sim::SimTime kNever = std::numeric_limits<sim::SimTime>::infinity();

/// Everything the history tells us about one object's life.
struct Life {
  bool inserted = false;
  std::uint64_t insert_op = 0;
  sim::SimTime insert_issue = 0;
  sim::SimTime insert_return = kNever;  ///< kNever if the insert is pending

  bool removed = false;  ///< some read&del returned it
  std::uint64_t remove_op = 0;
  sim::SimTime remove_issue = kNever;
  sim::SimTime remove_return = kNever;

  int insert_count = 0;
  int remove_count = 0;
};

std::string describe(const OpRecord& r) {
  std::ostringstream os;
  os << "op#" << r.op_id << " " << op_kind_name(r.kind) << " by " << r.process
     << " [" << r.issue_time << ", ";
  if (r.return_time) {
    os << *r.return_time;
  } else {
    os << "pending";
  }
  os << "]";
  return os.str();
}

}  // namespace

CheckResult check_history(const std::vector<OpRecord>& records) {
  return check_history(records, RunContext{});
}

CheckResult check_history(const std::vector<OpRecord>& records,
                          const RunContext& context) {
  CheckResult result;
  auto violation = [&result](const std::string& text) {
    result.violations.push_back(text);
  };

  // Pass 1: build per-object life bounds from inserts and successful
  // read&dels.
  std::unordered_map<ObjectId, Life> lives;
  for (const OpRecord& r : records) {
    if (r.kind == OpKind::kInsert) {
      PASO_REQUIRE(r.inserted.has_value(), "insert without object");
      Life& life = lives[r.inserted->id];
      ++life.insert_count;
      life.inserted = true;
      life.insert_op = r.op_id;
      life.insert_issue = r.issue_time;
      life.insert_return = r.return_time.value_or(kNever);
    } else if (r.kind == OpKind::kReadDel && r.return_time && r.result) {
      Life& life = lives[r.result->id];
      ++life.remove_count;
      life.removed = true;
      life.remove_op = r.op_id;
      life.remove_issue = r.issue_time;
      life.remove_return = *r.return_time;
    }
  }

  // A2: at most one insert(o) and at most one read&del returning o.
  for (const auto& [id, life] : lives) {
    std::ostringstream name;
    name << id;
    if (life.insert_count > 1) {
      violation("A2: object " + name.str() + " inserted " +
                std::to_string(life.insert_count) + " times");
    }
    if (life.remove_count > 1) {
      violation("A2: object " + name.str() + " returned by " +
                std::to_string(life.remove_count) + " read&del operations");
    }
  }

  // Pending read&dels: a read&del whose issuer crashed may have applied its
  // replicated removal without ever returning (the operation is pending
  // forever). The paper's axioms only say an object "may later die if
  // returned from a read&del"; they do not address a removal whose issuer
  // died mid-operation. Our implementation can kill the object in that
  // window, so soundness requires treating any object matched by a pending
  // read&del as possibly dead from that operation's issue onward.
  struct PendingRemoval {
    const SearchCriterion* criterion;
    sim::SimTime issue;
  };
  std::vector<PendingRemoval> pending_removals;
  for (const OpRecord& r : records) {
    if (r.kind == OpKind::kReadDel && !r.return_time) {
      pending_removals.push_back(PendingRemoval{&*r.criterion, r.issue_time});
    }
  }

  // Liveness across crash/recovery epochs: at the end of a settled run,
  // every operation must have been resolved — returned, abandoned with an
  // explicit error surfaced to its caller, or orphaned because its issuing
  // machine crashed after the issue (the client-side state died with the
  // machine; §3.1's erased-memory model). Anything else pending is a hang.
  if (context.end_time.has_value()) {
    for (const OpRecord& r : records) {
      if (r.return_time || r.abandoned) continue;
      bool orphaned = false;
      for (const RunContext::CrashEvent& crash : context.crashes) {
        if (crash.machine == r.process.machine && crash.at >= r.issue_time) {
          orphaned = true;
          break;
        }
      }
      if (!orphaned) {
        violation(describe(r) + ": hung — still pending at run end " +
                  std::to_string(*context.end_time) +
                  " with no crash of its issuer and no surfaced timeout");
      }
    }
  }

  // A1-style sanity over the event sequence: a command's return never
  // precedes its issue (the recorder enforces this on entry; re-checked here
  // so externally constructed histories are validated too).
  for (const OpRecord& r : records) {
    if (r.return_time && *r.return_time < r.issue_time) {
      violation(describe(r) + ": return precedes issue");
    }
  }

  // Pass 2: check each search operation.
  for (const OpRecord& r : records) {
    if (r.kind == OpKind::kInsert) continue;
    if (!r.return_time) continue;  // pending: unconstrained
    const sim::SimTime issue = r.issue_time;
    const sim::SimTime ret = *r.return_time;
    PASO_REQUIRE(r.criterion.has_value(), "search without criterion");

    if (r.result) {
      const PasoObject& returned = *r.result;
      // The returned object must satisfy the criterion...
      if (!r.criterion->matches(returned)) {
        violation(describe(r) + ": returned object " +
                  object_to_string(returned) + " does not match criterion " +
                  r.criterion->to_string());
      }
      auto it = lives.find(returned.id);
      // ...must have been inserted (A2: alive only after insert)...
      if (it == lives.end() || !it->second.inserted) {
        violation(describe(r) + ": returned object " +
                  object_to_string(returned) + " was never inserted");
        continue;
      }
      const Life& life = it->second;
      // ...and its payload must equal the inserted payload (objects are
      // immutable).
      const OpRecord& ins = records[life.insert_op];
      if (ins.inserted && !(ins.inserted->fields == returned.fields)) {
        violation(describe(r) + ": returned fields differ from inserted " +
                  object_to_string(*ins.inserted));
      }
      // Alive at some t in [issue, ret]: the earliest the object can be
      // alive is the issue of its insert, so the insert must have been
      // issued by `ret`...
      if (life.insert_issue > ret) {
        violation(describe(r) + ": returned object inserted only at " +
                  std::to_string(life.insert_issue) + " (after return)");
      }
      // ...and the latest it can be alive is the return of the read&del
      // that killed it (our implementation applies removals before
      // responding), so if it was removed by an operation *other than this
      // one*, that removal must not have completed before `issue`.
      if (life.removed && life.remove_op != r.op_id &&
          life.remove_return < issue) {
        violation(describe(r) + ": returned object was dead since " +
                  std::to_string(life.remove_return));
      }
    } else {
      // fail is legal only when no matching object is consistently alive
      // over [issue, ret]. An object is *certainly* alive throughout iff its
      // insert returned by `issue` and any read&del returning it was issued
      // strictly after `ret`.
      for (const auto& [id, life] : lives) {
        if (!life.inserted) continue;
        if (life.insert_return > issue) continue;  // not certainly alive yet
        if (life.removed && life.remove_issue <= ret) continue;
        const OpRecord& ins = records[life.insert_op];
        if (!ins.inserted || !r.criterion->matches(*ins.inserted)) continue;
        // A pending read&del issued before this operation returned may have
        // silently killed the object (crashed issuer): not certainly alive.
        bool possibly_removed = false;
        for (const PendingRemoval& pending : pending_removals) {
          if (pending.issue < ret &&
              pending.criterion->matches(*ins.inserted)) {
            possibly_removed = true;
            break;
          }
        }
        if (possibly_removed) continue;
        violation(describe(r) + ": returned fail although " +
                  object_to_string(*ins.inserted) +
                  " was continuously alive over the whole operation");
        break;  // one witness per failed op is enough
      }
    }
  }

  return result;
}

}  // namespace paso::semantics
