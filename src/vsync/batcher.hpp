// Gcast operation batching: amortizing the per-gcast 2*alpha.
//
// Every gcast pays |g|*(2*alpha + beta*(|msg|+|resp|)) (Section 3), so a
// burst of small operations is alpha-dominated. GcastBatcher sits between an
// issuer and the GroupService and coalesces operations bound for the same
// route (group + read-group restriction) issued within a configurable window
// into ONE gcast whose payload is the combined batch — one 2*alpha per batch
// instead of per operation.
//
// The layer is payload-agnostic: callers supply a Combiner that folds queued
// payloads into one batch payload, and a Splitter that fans the gathered
// batch response back out into per-operation responses (in queue order).
// paso/batching.hpp provides the ServerMessage instantiations.
//
// Semantics preserved:
//   * window == 0 (the default) is exact pass-through — every call forwards
//     to GroupService unchanged, so all existing behavior and cost
//     accounting is untouched until the knob is turned.
//   * A flush holding a single operation dispatches the ORIGINAL payload and
//     tag, not a one-element batch, so a lone op never pays batch framing.
//   * Operations only combine within a route: same group AND same
//     preferred/max_targets restriction, so read-group routing (Section 4.3)
//     is unaffected.
//   * `latest_dispatch` lets deadline-driven callers cap how long an op may
//     sit in the queue (a retry about to expire must not wait the window
//     out).
//   * Total order: ops inside a batch are delivered in enqueue order at
//     every member, and batches serialize through the group queue like any
//     other gcast.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "vsync/group_service.hpp"

namespace paso::vsync {

struct BatcherOptions {
  /// Coalescing window: an enqueued op is dispatched at most this much
  /// simulated time after it was issued. 0 disables batching entirely.
  sim::SimTime window = 0;
  /// A route's queue is flushed as soon as it holds this many ops.
  std::size_t max_batch = 16;
};

class GcastBatcher {
 public:
  /// Folds the payloads of the queued ops (in order) into one batch payload.
  using Combiner = std::function<Payload(const std::vector<Payload>&)>;
  /// Fans a gathered batch response out into one response per op, in the
  /// same order. A nullopt input (abandoned gcast / empty view) must yield
  /// nullopt for every slot.
  using Splitter = std::function<std::vector<std::optional<std::any>>(
      const std::optional<std::any>&, std::size_t)>;

  GcastBatcher(GroupService& groups, MachineId self, BatcherOptions options,
               Combiner combiner, Splitter splitter)
      : groups_(groups),
        self_(self),
        options_(options),
        combiner_(std::move(combiner)),
        splitter_(std::move(splitter)) {}

  ~GcastBatcher() { clear(); }

  GcastBatcher(const GcastBatcher&) = delete;
  GcastBatcher& operator=(const GcastBatcher&) = delete;

  /// Full-group gcast through the batcher.
  void gcast(const GroupName& group, Payload message, std::string tag,
             GroupService::ResponseCallback on_response = {},
             sim::SimTime latest_dispatch = sim::kNever) {
    gcast_to(group, std::move(message), std::move(tag), {}, SIZE_MAX,
             std::move(on_response), latest_dispatch);
  }

  /// Read-group-restricted gcast through the batcher.
  void gcast_to(const GroupName& group, Payload message, std::string tag,
                std::vector<MachineId> preferred, std::size_t max_targets,
                GroupService::ResponseCallback on_response = {},
                sim::SimTime latest_dispatch = sim::kNever);

  /// Dispatch every queued op now (view change, shutdown, tests).
  void flush_all();

  /// Drop all queued ops WITHOUT dispatching or invoking callbacks — crash
  /// semantics: the issuer machine died, its pending ops die with it.
  void clear();

  const BatcherOptions& options() const { return options_; }
  /// Multi-op gcasts dispatched so far.
  std::uint64_t batches() const { return batches_; }
  /// Ops that traveled inside those multi-op gcasts.
  std::uint64_t batched_ops() const { return batched_ops_; }
  /// Ops currently parked across all route queues.
  std::size_t queued() const {
    std::size_t n = 0;
    for (const auto& [key, queue] : queues_) n += queue.ops.size();
    return n;
  }

  void set_obs(obs::Obs o) { obs_ = o; }

 private:
  struct PendingOp {
    Payload message;
    std::string tag;
    GroupService::ResponseCallback on_response;
    /// Traces riding on this op, captured from the tracer context at enqueue
    /// so the eventual (often timer-driven) dispatch re-attributes correctly.
    std::vector<obs::TraceId> traces;
    sim::SimTime enqueued_at = 0;
  };
  /// Ops may only combine when they'd produce the very same gcast routing.
  struct RouteKey {
    GroupName group;
    std::vector<MachineId> preferred;
    std::size_t max_targets = SIZE_MAX;
    auto operator<=>(const RouteKey&) const = default;
  };
  struct RouteQueue {
    std::vector<PendingOp> ops;
    sim::SimTime due = sim::kNever;
    std::optional<sim::EventId> timer;
  };

  void flush(const RouteKey& key);
  exec::Executor& executor() { return groups_.network().executor(); }

  GroupService& groups_;
  MachineId self_;
  BatcherOptions options_;
  obs::Obs obs_;
  Combiner combiner_;
  Splitter splitter_;
  std::map<RouteKey, RouteQueue> queues_;
  std::uint64_t batches_ = 0;
  std::uint64_t batched_ops_ = 0;
};

}  // namespace paso::vsync
