#include "vsync/group_service.hpp"

#include <algorithm>
#include <utility>

#include "common/logging.hpp"

namespace paso::vsync {

GroupService::GroupService(net::Transport& network, Options options)
    : network_(network),
      options_(options),
      endpoints_(network.machine_count(), nullptr) {}

void GroupService::register_endpoint(MachineId machine,
                                     GroupEndpoint& endpoint) {
  PASO_REQUIRE(machine.value < endpoints_.size(), "unknown machine");
  endpoints_[machine.value] = &endpoint;
}

GroupService::Group& GroupService::group_record(const GroupName& name) {
  return groups_[name];
}

View GroupService::view_of(const GroupName& name) const {
  auto it = groups_.find(name);
  return it == groups_.end() ? View{} : it->second.view;
}

bool GroupService::is_member(const GroupName& name, MachineId machine) const {
  auto it = groups_.find(name);
  return it != groups_.end() && it->second.view.contains(machine);
}

std::size_t GroupService::group_size(const GroupName& name) const {
  auto it = groups_.find(name);
  return it == groups_.end() ? 0 : it->second.view.size();
}

std::vector<GroupName> GroupService::groups_of(MachineId machine) const {
  std::vector<GroupName> names;
  for (const auto& [name, group] : groups_) {
    if (group.view.contains(machine)) names.push_back(name);
  }
  return names;
}

void GroupService::g_join(const GroupName& name, MachineId joiner,
                          CompletionCallback done) {
  auto op = std::make_unique<Op>();
  op->kind = Op::Kind::kJoin;
  op->id = next_op_id_++;
  op->join.joiner = joiner;
  op->join.done = std::move(done);
  group_record(name).queue.push_back(std::move(op));
  pump(name);
}

void GroupService::g_leave(const GroupName& name, MachineId leaver,
                           CompletionCallback done) {
  auto op = std::make_unique<Op>();
  op->kind = Op::Kind::kLeave;
  op->id = next_op_id_++;
  op->leave.leaver = leaver;
  op->leave.done = std::move(done);
  group_record(name).queue.push_back(std::move(op));
  pump(name);
}

void GroupService::gcast(const GroupName& name, MachineId issuer,
                         Payload message, std::string tag,
                         ResponseCallback on_response) {
  gcast_to(name, issuer, std::move(message), std::move(tag), {}, SIZE_MAX,
           std::move(on_response));
}

void GroupService::gcast_to(const GroupName& name, MachineId issuer,
                            Payload message, std::string tag,
                            std::vector<MachineId> preferred,
                            std::size_t max_targets,
                            ResponseCallback on_response) {
  auto op = std::make_unique<Op>();
  op->kind = Op::Kind::kGcast;
  op->id = next_op_id_++;
  op->gcast.issuer = issuer;
  op->gcast.message = std::move(message);
  op->gcast.tag = std::move(tag);
  op->gcast.on_response = std::move(on_response);
  op->gcast.preferred = std::move(preferred);
  op->gcast.max_targets = max_targets;
  if (obs_.tracer != nullptr) op->gcast.traces = obs_.tracer->context();
  group_record(name).queue.push_back(std::move(op));
  pump(name);
}

void GroupService::pump(const GroupName& name) {
  Group& group = group_record(name);
  if (group.busy || group.queue.empty()) return;
  // Membership changes install views, and install_view touches every member
  // endpoint plus every view listener — a footprint wider than any one op's
  // domain. On a sharded transport, a join/leave reaching the head of the
  // queue inside a narrowed execution defers to a fresh global execution
  // before dispatching. The simulator's context is always global, so this
  // gate never fires there and simulated timelines stay bit-identical.
  // (Duplicate deferrals are harmless: pump() is idempotent on busy/empty.)
  if (group.queue.front()->kind != Op::Kind::kGcast &&
      !network_.context_is_global()) {
    network_.defer_exclusive([this, name] { pump(name); });
    return;
  }
  group.busy = true;
  Op& op = *group.queue.front();
  switch (op.kind) {
    case Op::Kind::kGcast:
      dispatch_gcast(name, op);
      break;
    case Op::Kind::kJoin:
      dispatch_join(name, op);
      break;
    case Op::Kind::kLeave:
      dispatch_leave(name, op);
      break;
  }
}

GroupService::Op* GroupService::active_op(const GroupName& name,
                                          std::uint64_t op_id) {
  Group& group = group_record(name);
  if (!group.busy || group.queue.empty()) return nullptr;
  Op& op = *group.queue.front();
  return op.id == op_id ? &op : nullptr;
}

void GroupService::complete_active(const GroupName& name) {
  Group& group = group_record(name);
  PASO_REQUIRE(group.busy && !group.queue.empty(), "no active op");
  group.queue.pop_front();
  group.busy = false;
  // Resume the queue from a fresh event so deep op chains cannot recurse.
  network_.executor().schedule_after(0, [this, name] { pump(name); });
}

// ---------------------------------------------------------------------------
// gcast

void GroupService::dispatch_gcast(const GroupName& name, Op& op) {
  GcastOp& g = op.gcast;
  if (!network_.is_up(g.issuer)) {
    // The issuer died before its gcast hit the head of the queue.
    complete_active(name);
    return;
  }
  const View view = view_of(name);
  if (view.empty()) {
    // Nothing to deliver to: the response is "fail" (nullopt).
    auto cb = std::move(g.on_response);
    network_.executor().schedule_after(0, [cb = std::move(cb)] {
      if (cb) cb(std::nullopt);
    });
    ++gcasts_completed_;
    complete_active(name);
    return;
  }
  g.dispatched = true;
  // Resolve the target set: preferred members first (the read group), then
  // other view members up to max_targets; a plain gcast targets everyone.
  for (const MachineId m : g.preferred) {
    if (g.targets.size() >= g.max_targets) break;
    if (view.contains(m)) g.targets.insert(m);
  }
  for (const MachineId m : view.members) {
    if (g.targets.size() >= g.max_targets) break;
    g.targets.insert(m);
  }
  g.pending_acks = g.targets;
  const std::uint64_t op_id = op.id;
  if (obs_.tracer != nullptr) {
    for (const obs::TraceId t : g.traces) {
      obs_.tracer->span(t, obs::SpanKind::kDispatch, g.issuer,
                        network_.executor().now(), g.tag,
                        static_cast<double>(g.targets.size()));
    }
  }
  obs::OpTracer::Scope scope(obs_.tracer, g.traces);
  for (const MachineId member : g.targets) {
    network_.send(g.issuer, member, g.tag, g.message.bytes,
                  [this, name, op_id, member] {
                    member_deliver(name, op_id, member);
                  });
  }
  if (options_.retransmit_timeout < sim::kNever) {
    schedule_retransmit(name, op_id, options_.retransmit_timeout);
  }
}

void GroupService::schedule_retransmit(const GroupName& name,
                                       std::uint64_t op_id,
                                       sim::SimTime delay) {
  network_.executor().schedule_after(delay, [this, name, op_id, delay] {
    Op* op = active_op(name, op_id);
    if (op == nullptr || op->kind != Op::Kind::kGcast) return;  // done
    GcastOp& g = op->gcast;
    if (!g.dispatched || g.pending_acks.empty()) return;
    if (!network_.is_up(g.issuer)) return;  // detector will settle this op
    // Re-send the message to every target whose ack is still outstanding.
    // Members that already processed it re-ack without re-processing
    // (member_deliver dedups on `results`), so delivery stays exactly-once
    // even though transmission is at-least-once.
    obs::OpTracer::Scope scope(obs_.tracer, g.traces);
    for (const MachineId member : g.pending_acks) {
      if (!network_.is_up(member)) continue;
      ++retransmits_;
      if (obs_.metrics != nullptr) {
        obs_.metrics->counter("vsync.retransmits").inc();
      }
      if (obs_.tracer != nullptr) {
        for (const obs::TraceId t : g.traces) {
          obs_.tracer->span(t, obs::SpanKind::kRetry, g.issuer,
                            network_.executor().now(), "retransmit");
        }
      }
      network_.send(g.issuer, member, g.tag, g.message.bytes,
                    [this, name, op_id, member] {
                      member_deliver(name, op_id, member);
                    });
    }
    schedule_retransmit(name, op_id, delay * options_.retransmit_backoff);
  });
}

void GroupService::member_deliver(const GroupName& name, std::uint64_t op_id,
                                  MachineId member) {
  Op* op = active_op(name, op_id);
  if (op == nullptr || op->kind != Op::Kind::kGcast) return;  // superseded
  GcastOp& g = op->gcast;
  if (!g.pending_acks.contains(member)) return;  // acked or pruned
  if (g.results.contains(member)) {
    // Duplicate delivery (retransmission after the first ack was lost):
    // the member already processed the message — just re-ack.
    send_ack(name, op_id, member);
    return;
  }

  GroupEndpoint* endpoint = endpoints_[member.value];
  PASO_REQUIRE(endpoint != nullptr, "member without endpoint");
  GcastResult result;
  {
    // Marker notifications and other sends the server makes while serving
    // count against the ops this gcast carries.
    obs::OpTracer::Scope scope(obs_.tracer, g.traces);
    result = endpoint->handle_gcast(name, g.message);
  }
  network_.ledger().charge_work(member, result.processing);
  const Cost processing = result.processing;
  if (obs_.tracer != nullptr) {
    for (const obs::TraceId t : g.traces) {
      obs_.tracer->span(t, obs::SpanKind::kServe, member,
                        network_.executor().now(), {}, processing);
    }
  }
  g.results.emplace(member, std::move(result));

  // After processing, the member sends an empty done-ack to the leader
  // (Section 3.3: "each of g-name's members sends an empty message to some
  // designated server"). Ack bookkeeping is service-side, standing in for
  // ISIS's internal re-gathering when leaders fail.
  network_.executor().schedule_after(processing,
                                      [this, name, op_id, member] {
                                        send_ack(name, op_id, member);
                                      });
}

void GroupService::send_ack(const GroupName& name, std::uint64_t op_id,
                            MachineId member) {
  if (!network_.is_up(member)) return;  // crashed before acking
  const View view = view_of(name);
  const MachineId leader = view.empty() ? member : view.leader();
  const Op* op = active_op(name, op_id);
  obs::OpTracer::Scope scope(
      obs_.tracer, op != nullptr && op->kind == Op::Kind::kGcast
                       ? op->gcast.traces
                       : std::vector<obs::TraceId>{});
  network_.send(member, leader, "gcast-ack", 0, [this, name, op_id, member] {
    member_acked(name, op_id, member);
  });
}

void GroupService::member_acked(const GroupName& name, std::uint64_t op_id,
                                MachineId member) {
  Op* op = active_op(name, op_id);
  if (op == nullptr || op->kind != Op::Kind::kGcast) return;
  op->gcast.pending_acks.erase(member);
  maybe_complete_gcast(name, *op);
}

void GroupService::maybe_complete_gcast(const GroupName& name, Op& op) {
  GcastOp& g = op.gcast;
  if (!g.pending_acks.empty()) return;

  // All targeted members processed the message; one response is forwarded to
  // the issuer. All responses are equal in this model (replicas), so the
  // classic choice — the current leader's result when the leader was a
  // target, else the lowest-id target's — is overridden only by a target
  // *strictly nearer* to the issuer (fewer bridge hops; among nearer
  // targets fewest hops wins, ties to the lowest id). On a single bus every
  // hop count is equal, so no override ever fires and the pre-topology
  // behavior is preserved exactly; on a segmented topology the override
  // keeps the payload-bearing response off the bridges whenever a replica
  // co-located with the issuer answered.
  const View view = view_of(name);
  std::any body;
  std::size_t bytes = 0;
  MachineId responder = g.issuer;
  auto it = view.empty() ? g.results.begin() : g.results.find(view.leader());
  if (it == g.results.end()) it = g.results.begin();
  if (it != g.results.end()) {
    std::size_t best_hops = network_.topology().hops(g.issuer, it->first);
    for (auto cand = g.results.begin(); cand != g.results.end(); ++cand) {
      const std::size_t hops =
          network_.topology().hops(g.issuer, cand->first);
      if (hops < best_hops) {
        it = cand;
        best_hops = hops;
      }
    }
  }
  if (it != g.results.end()) {
    body = it->second.response;
    bytes = it->second.response_bytes;
    responder = it->first;
  } else if (!view.empty()) {
    responder = view.leader();
  }
  if (network_.is_up(g.issuer)) {
    if (obs_.tracer != nullptr) {
      for (const obs::TraceId t : g.traces) {
        obs_.tracer->span(t, obs::SpanKind::kResponse, responder,
                          network_.executor().now(), {},
                          static_cast<double>(bytes));
      }
    }
    obs::OpTracer::Scope scope(obs_.tracer, g.traces);
    auto cb = std::move(g.on_response);
    network_.send(responder, g.issuer, g.tag + "/resp", bytes,
                  [cb = std::move(cb), body = std::move(body)] {
                    if (cb) cb(std::make_optional(std::move(body)));
                  });
  }
  ++gcasts_completed_;
  complete_active(name);
}

// ---------------------------------------------------------------------------
// join / leave

void GroupService::dispatch_join(const GroupName& name, Op& op) {
  JoinOp& j = op.join;
  const bool can_join = network_.is_up(j.joiner) &&
                        endpoints_[j.joiner.value] != nullptr &&
                        !is_member(name, j.joiner);
  if (!can_join) {
    if (j.done) j.done(false);
    complete_active(name);
    return;
  }
  const View view = view_of(name);
  if (view.empty()) {
    // First member: nothing to transfer.
    install_view(name, {j.joiner});
    if (j.done) j.done(true);
    complete_active(name);
    return;
  }

  // Delta negotiation: a joiner that recovered local durable state
  // advertises its (checkpoint epoch, lsn); if the donor's log still covers
  // the gap it ships only the suffix. Any refusal — persistence off, joiner
  // too stale, donor log damaged — silently degrades to the full blob.
  GroupEndpoint* joiner_ep = endpoints_[j.joiner.value];
  PASO_REQUIRE(joiner_ep != nullptr, "joiner without endpoint");
  DurablePosition position;
  if (!j.force_full) position = joiner_ep->durable_position(name);

  // Donor state transfer (Section 4.2): one member captures its state for
  // this group and ships it to the joiner. The group's queue stays blocked
  // until the transfer completes, so "no communication to g-name is
  // processed by any of g-name's members" during the transfer.
  //
  // Donor selection by durable position: the leader is the default donor,
  // but when the joiner advertises a durable position we prefer the member
  // whose retained log reaches furthest back among those that can still
  // serve a delta (delta_floor <= joiner lsn) — the leader may have
  // checkpoint-compacted past the joiner and force a full-blob fallback a
  // sibling's deeper log could have avoided. Members are scanned in view
  // order (leader first) with a strict improvement test, so equal floors —
  // and every run without persistence — keep the classic leader donor.
  MachineId donor = view.leader();
  if (position.valid) {
    std::optional<std::uint64_t> best_floor;
    for (const MachineId m : view.members) {
      GroupEndpoint* ep = network_.is_up(m) ? endpoints_[m.value] : nullptr;
      if (ep == nullptr) continue;
      const std::optional<std::uint64_t> floor = ep->delta_floor(name);
      if (!floor.has_value() || *floor > position.lsn) continue;
      if (!best_floor.has_value() || *floor < *best_floor) {
        best_floor = floor;
        donor = m;
      }
    }
  }
  j.donor = donor;
  j.transfer_in_flight = true;
  ++j.transfer_seq;
  if (j.started_at < 0) j.started_at = network_.executor().now();
  GroupEndpoint* donor_ep = endpoints_[donor.value];
  PASO_REQUIRE(donor_ep != nullptr, "donor without endpoint");

  std::optional<StateBlob> delta;
  if (position.valid) delta = donor_ep->capture_delta(name, position);
  const bool is_delta = delta.has_value();
  StateBlob blob = is_delta ? std::move(*delta) : donor_ep->capture_state(name);
  const Cost copy_cost =
      options_.install_cost_per_byte * static_cast<Cost>(blob.bytes);
  network_.ledger().charge_work(donor, copy_cost);
  if (obs_.metrics != nullptr) {
    if (is_delta) {
      obs_.metrics->counter("vsync.delta_transfers").inc();
      obs_.metrics->counter("vsync.delta_transfer_bytes").inc(blob.bytes);
    } else {
      obs_.metrics->counter("vsync.state_transfers").inc();
      obs_.metrics->counter("vsync.state_transfer_bytes").inc(blob.bytes);
    }
  }

  send_transfer(name, op.id, j.transfer_seq, donor, copy_cost, is_delta,
                std::make_shared<const StateBlob>(std::move(blob)),
                options_.retransmit_timeout);
}

void GroupService::send_transfer(const GroupName& name, std::uint64_t op_id,
                                 std::uint64_t seq, MachineId donor,
                                 Cost copy_cost, bool is_delta,
                                 std::shared_ptr<const StateBlob> blob,
                                 sim::SimTime retry_delay) {
  Op* op = active_op(name, op_id);
  if (op == nullptr || op->kind != Op::Kind::kJoin) return;
  network_.send(
      donor, op->join.joiner,
      is_delta ? "state-xfer-delta" : "state-xfer", blob->bytes,
      [this, name, op_id, seq, donor, copy_cost, is_delta, blob] {
        Op* active = active_op(name, op_id);
        if (active == nullptr || active->kind != Op::Kind::kJoin) return;
        JoinOp& join = active->join;
        if (!join.transfer_in_flight || join.transfer_seq != seq ||
            join.donor != donor) {
          return;  // stale: duplicate delivery or a restarted transfer
        }
        join.transfer_in_flight = false;  // donor crash can no longer abort
        GroupEndpoint* joiner_ep = endpoints_[join.joiner.value];
        PASO_REQUIRE(joiner_ep != nullptr, "joiner without endpoint");
        if (is_delta) {
          if (!joiner_ep->install_delta(name, *blob)) {
            // The suffix did not line up with the joiner's recovered state:
            // abandon the delta and restart this join as a full transfer.
            if (obs_.metrics != nullptr) {
              obs_.metrics->counter("vsync.delta_fallbacks").inc();
            }
            join.force_full = true;
            dispatch_join(name, *active);
            return;
          }
        } else {
          joiner_ep->install_state(name, *blob);
        }
        network_.ledger().charge_work(join.joiner, copy_cost);
        // Installation takes time proportional to the state size; the view
        // change is installed when it finishes.
        network_.executor().schedule_after(copy_cost, [this, name, op_id] {
          Op* done_op = active_op(name, op_id);
          if (done_op == nullptr || done_op->kind != Op::Kind::kJoin) return;
          finish_join(name, *done_op);
        });
      });
  // The transfer is a bare point-to-point send with no ack of its own, and
  // every later op on this group serializes behind the join — a drop window
  // that ate the blob would wedge the group queue forever. Re-send on the
  // gcast retransmit cadence until a copy lands; the arrival handler clears
  // transfer_in_flight, so duplicates (and retries from a superseded
  // transfer, via the seq check) are no-ops.
  if (retry_delay < sim::kNever) {
    network_.executor().schedule_after(
        retry_delay, [this, name, op_id, seq, donor, copy_cost, is_delta,
                      blob, retry_delay] {
          Op* again = active_op(name, op_id);
          if (again == nullptr || again->kind != Op::Kind::kJoin) return;
          JoinOp& join = again->join;
          if (!join.transfer_in_flight || join.transfer_seq != seq) return;
          if (!network_.is_up(donor) || !network_.is_up(join.joiner)) return;
          ++retransmits_;
          if (obs_.metrics != nullptr) {
            obs_.metrics->counter("vsync.retransmits").inc();
          }
          send_transfer(name, op_id, seq, donor, copy_cost, is_delta,
                        std::move(blob),
                        retry_delay * options_.retransmit_backoff);
        });
  }
}

void GroupService::finish_join(const GroupName& name, Op& op) {
  JoinOp& j = op.join;
  if (!network_.is_up(j.joiner)) {
    // Joiner crashed between transfer and installation.
    complete_active(name);
    return;
  }
  if (obs_.metrics != nullptr && j.started_at >= 0) {
    obs_.metrics
        ->histogram("vsync.state_transfer_duration",
                    {10, 50, 100, 500, 1000, 5000, 10000})
        .observe(network_.executor().now() - j.started_at);
  }
  std::vector<MachineId> members = view_of(name).members;
  members.push_back(j.joiner);
  install_view(name, std::move(members));
  if (j.done) j.done(true);
  complete_active(name);
}

void GroupService::dispatch_leave(const GroupName& name, Op& op) {
  LeaveOp& l = op.leave;
  if (!is_member(name, l.leaver)) {
    if (l.done) l.done(false);
    complete_active(name);
    return;
  }
  std::vector<MachineId> members = view_of(name).members;
  std::erase(members, l.leaver);
  install_view(name, std::move(members));
  GroupEndpoint* endpoint = endpoints_[l.leaver.value];
  if (endpoint != nullptr && network_.is_up(l.leaver)) {
    endpoint->erase_state(name);
  }
  if (l.done) l.done(true);
  complete_active(name);
}

void GroupService::install_view(const GroupName& name,
                                std::vector<MachineId> members) {
  std::sort(members.begin(), members.end());
  Group& group = group_record(name);
  group.view.members = std::move(members);
  group.view.id = ViewId{next_view_id_++};
  if (obs_.metrics != nullptr) {
    obs_.metrics->counter("vsync.view_changes").inc();
  }
  PASO_TRACE("vsync") << "group " << name << " view " << group.view;
  const View installed = group.view;  // listeners may mutate groups_
  for (const MachineId member : installed.members) {
    GroupEndpoint* endpoint = endpoints_[member.value];
    if (endpoint != nullptr && network_.is_up(member)) {
      endpoint->on_view_change(name, installed);
    }
  }
  for (const ViewListener& listener : view_listeners_) {
    listener(name, installed);
  }
}

// ---------------------------------------------------------------------------
// crash plane

void GroupService::machine_crashed(MachineId machine) {
  if (!network_.is_up(machine)) return;
  network_.set_up(machine, false);
  network_.executor().schedule_after(
      options_.failure_detection_delay,
      [this, machine] { on_failure_detected(machine); });
}

void GroupService::machine_recovered(MachineId machine) {
  PASO_REQUIRE(!network_.is_up(machine), "machine is already up");
  // The failure detector must have expelled the machine from its groups by
  // now; a machine cannot serve group traffic with erased memory. The fault
  // injector keeps downtime above the detection delay.
  PASO_REQUIRE(groups_of(machine).empty(),
               "machine recovered before failure detection completed");
  network_.set_up(machine, true);
}

void GroupService::on_failure_detected(MachineId machine) {
  if (network_.is_up(machine)) return;  // raced with recovery (not expected)
  for (auto& [name, group] : groups_) {
    if (!group.view.contains(machine)) continue;
    std::vector<MachineId> members = group.view.members;
    std::erase(members, machine);
    install_view(name, std::move(members));

    if (!group.busy || group.queue.empty()) continue;
    Op& op = *group.queue.front();
    switch (op.kind) {
      case Op::Kind::kGcast: {
        GcastOp& g = op.gcast;
        if (!g.dispatched) break;
        // Re-gather: acks are now needed only from targets that are still in
        // the view and have not produced a result.
        std::set<MachineId> pending;
        for (const MachineId m : g.targets) {
          if (group.view.contains(m) && !g.results.contains(m)) {
            pending.insert(m);
          }
        }
        g.pending_acks = std::move(pending);
        maybe_complete_gcast(name, op);
        break;
      }
      case Op::Kind::kJoin: {
        JoinOp& j = op.join;
        if (j.joiner == machine) {
          complete_active(name);
        } else if (j.transfer_in_flight && j.donor == machine) {
          // Donor died mid-transfer: restart with a new donor.
          j.transfer_in_flight = false;
          dispatch_join(name, op);
        }
        break;
      }
      case Op::Kind::kLeave:
        break;  // leaves are atomic at dispatch
    }
  }
}

}  // namespace paso::vsync
