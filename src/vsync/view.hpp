// Group views.
//
// A view is one epoch of a group's membership (Section 3.2). The ISIS model
// guarantees that all members observe the same sequence of views and that
// message deliveries are consistently ordered with respect to view changes
// ("virtual synchrony"); GroupService enforces both.
#pragma once

#include <algorithm>
#include <ostream>
#include <vector>

#include "common/ids.hpp"

namespace paso::vsync {

struct View {
  ViewId id;
  std::vector<MachineId> members;  // kept sorted ascending

  bool contains(MachineId m) const {
    return std::binary_search(members.begin(), members.end(), m);
  }
  std::size_t size() const { return members.size(); }
  bool empty() const { return members.empty(); }

  /// The group leader: lowest-id member. Gathers gcast acks and sends the
  /// single response back to the issuer (Section 3.3).
  MachineId leader() const { return members.front(); }
};

inline std::ostream& operator<<(std::ostream& os, const View& v) {
  os << v.id << "{";
  for (std::size_t i = 0; i < v.members.size(); ++i) {
    if (i) os << ",";
    os << v.members[i];
  }
  return os << "}";
}

}  // namespace paso::vsync
