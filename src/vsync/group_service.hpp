// View-synchronous group communication (the ISIS model of Section 3.2).
//
// GroupService provides exactly the guarantees the paper assumes of ISIS:
//   * named groups with dynamic membership (`g-join` / `g-leave`),
//   * reliable, totally-ordered `gcast` with per-sender FIFO,
//   * groups are stable while a gcast is in flight (no membership change
//     interleaves with a delivery),
//   * all members observe joins, leaves and messages in one common order,
//   * joins perform a donor state transfer during which no communication to
//     the group is processed (Section 4.2's initiation procedure).
//
// The implementation serializes each group's operations through a per-group
// queue, which realizes total order and stability directly. Membership
// bookkeeping and ack gathering are performed by the service itself; this
// stands in for ISIS's internal fault-tolerant protocol machinery (which the
// paper treats as a given), while every data-plane byte — fan-out
// transmissions, done-acks to the leader, the single gathered response, and
// join state transfers — crosses the simulated bus and is charged to the
// cost ledger exactly as Section 3.3 prescribes. Control-plane view
// notifications are free, matching the paper's cost accounting, which never
// charges for group maintenance.
//
// Crash faults: a crashed machine stops sending and receiving instantly; the
// failure detector notices after a configurable delay, removes the machine
// from every view, and unblocks any operation that was waiting on it.
#pragma once

#include <any>
#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "net/transport.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"  // sim::SimTime/kNever aliases used in Options
#include "vsync/endpoint.hpp"
#include "vsync/view.hpp"

namespace paso::vsync {

struct GroupServiceOptions {
  /// Delay between a crash and the membership service expelling the
  /// machine from its groups (models ISIS failure detection).
  sim::SimTime failure_detection_delay = 50.0;
  /// Server-side time charged per transferred byte when a joiner installs
  /// donated state; together with the bus cost of the transfer this makes
  /// time(g-join) = Theta(l), the paper's join cost K.
  Cost install_cost_per_byte = 1.0;
  /// Ack timeout after which a gcast's undelivered targets are re-sent the
  /// message (ISIS reliable delivery over a lossy link). Infinity — the
  /// default — disables retransmission entirely: the fault-free bus never
  /// loses a message, and the Table 1 cost assertions rely on exact message
  /// counts. Chaos runs with drop windows must set this finite.
  sim::SimTime retransmit_timeout = sim::kNever;
  /// Multiplier applied to the timeout after each retransmission round.
  double retransmit_backoff = 2.0;
};

class GroupService {
 public:
  using Options = GroupServiceOptions;

  using CompletionCallback = std::function<void(bool ok)>;
  /// Receives the gathered response body, or nullopt when the group was
  /// empty or the operation was abandoned. An empty std::any inside the
  /// optional is a member-produced "fail".
  using ResponseCallback = std::function<void(std::optional<std::any>)>;
  /// Observer invoked after every view installation (joins, leaves, and
  /// failure-detector expulsions). Runtimes use this to re-route in-flight
  /// operations after a membership change / state transfer.
  using ViewListener = std::function<void(const GroupName&, const View&)>;

  GroupService(net::Transport& network, Options options = {});

  /// Register the machine's endpoint (its memory server). Must be called
  /// before the machine joins any group.
  void register_endpoint(MachineId machine, GroupEndpoint& endpoint);

  /// g-join(g-name, done): enqueue a join. The donor state transfer happens
  /// when the join reaches the head of the group's operation queue.
  void g_join(const GroupName& group, MachineId joiner,
              CompletionCallback done = {});

  /// g-leave(g-name, done): enqueue a voluntary leave.
  void g_leave(const GroupName& group, MachineId leaver,
               CompletionCallback done = {});

  /// gcast(g-name, msg, resp): deliver `message` to every member, gather
  /// done-acks at the leader, and return one response to the issuer.
  /// `tag` labels the traffic in the cost ledger.
  void gcast(const GroupName& group, MachineId issuer, Payload message,
             std::string tag, ResponseCallback on_response = {});

  /// Read-group gcast (Section 4.3): reads entail no state change, so it
  /// suffices to deliver them to a subset rg ⊆ wg with |rg| ≤ lambda+1.
  /// Delivery goes to the members of `preferred` that are currently in the
  /// view, topped up with further view members until `max_targets`. The
  /// operation still serializes with the group's other operations, so total
  /// order with respect to updates is preserved.
  void gcast_to(const GroupName& group, MachineId issuer, Payload message,
                std::string tag, std::vector<MachineId> preferred,
                std::size_t max_targets, ResponseCallback on_response = {});

  /// Current view of a group (empty view with the latest id if no members).
  View view_of(const GroupName& group) const;
  bool is_member(const GroupName& group, MachineId machine) const;
  std::size_t group_size(const GroupName& group) const;
  /// All groups this machine currently belongs to (the `group` function of
  /// Section 3.2 restricted to one machine).
  std::vector<GroupName> groups_of(MachineId machine) const;

  /// Crash plane. `machine_crashed` takes the machine off the network
  /// immediately and schedules failure detection; `machine_recovered` brings
  /// the network interface back (the server must re-join groups itself).
  void machine_crashed(MachineId machine);
  void machine_recovered(MachineId machine);
  bool is_up(MachineId machine) const { return network_.is_up(machine); }

  net::Transport& network() { return network_; }
  const net::Transport& network() const { return network_; }
  const Options& options() const { return options_; }

  /// Subscribe to view installations (never unsubscribed; listeners must
  /// outlive the service, which holds for the per-cluster wiring).
  void add_view_listener(ViewListener listener) {
    view_listeners_.push_back(std::move(listener));
  }

  /// Number of completed gcasts (for tests).
  std::uint64_t gcasts_completed() const {
    return gcasts_completed_.load(std::memory_order_relaxed);
  }
  /// Messages re-sent by the ack-timeout retransmission machinery.
  std::uint64_t retransmits() const {
    return retransmits_.load(std::memory_order_relaxed);
  }

  void set_obs(obs::Obs o) { obs_ = o; }

  /// Pre-create a group's record. Sharded transports run executions over
  /// disjoint machine sets concurrently, and std::map insertion is not safe
  /// under concurrent finds — so every group a deployment will ever use is
  /// primed at wiring time, making groups_ structurally immutable while
  /// traffic flows. An empty primed group is behavior-neutral: view_of and
  /// the op queue treat "absent" and "empty" identically.
  void prime_group(const GroupName& group) { group_record(group); }

 private:
  struct GcastOp {
    MachineId issuer;
    Payload message;
    std::string tag;
    ResponseCallback on_response;
    // Read-group restriction; empty preferred + max SIZE_MAX = full group.
    std::vector<MachineId> preferred;
    std::size_t max_targets = SIZE_MAX;
    // In-flight bookkeeping.
    std::set<MachineId> targets;
    std::set<MachineId> pending_acks;
    std::map<MachineId, GcastResult> results;
    bool dispatched = false;
    /// Traces riding on this gcast (a batch carries one per member op),
    /// captured from the tracer context at enqueue; dispatch/serve/response
    /// sends re-establish them so later-event cost lands on the right ops.
    std::vector<obs::TraceId> traces;
  };
  struct JoinOp {
    MachineId joiner;
    CompletionCallback done;
    bool transfer_in_flight = false;
    MachineId donor;
    sim::SimTime started_at = -1;
    /// Set after a delta install fails mid-join: the retry (and any donor
    /// failover) must ship the full blob, not renegotiate a delta against
    /// state the aborted install may have touched.
    bool force_full = false;
    /// Bumped every time dispatch_join ships (or re-ships) a blob. Arrival
    /// handlers and retransmit timers from a superseded transfer — delta
    /// fallback, donor failover — carry a stale seq and become no-ops, so a
    /// late duplicate can never install an outdated blob.
    std::uint64_t transfer_seq = 0;
  };
  struct LeaveOp {
    MachineId leaver;
    CompletionCallback done;
  };
  struct Op {
    enum class Kind { kGcast, kJoin, kLeave } kind;
    std::uint64_t id;
    GcastOp gcast;
    JoinOp join;
    LeaveOp leave;
  };
  struct Group {
    View view;
    std::deque<std::unique_ptr<Op>> queue;
    bool busy = false;
  };

  Group& group_record(const GroupName& name);
  void pump(const GroupName& name);
  void dispatch_gcast(const GroupName& name, Op& op);
  void dispatch_join(const GroupName& name, Op& op);
  void dispatch_leave(const GroupName& name, Op& op);
  void member_deliver(const GroupName& name, std::uint64_t op_id,
                      MachineId member);
  void send_ack(const GroupName& name, std::uint64_t op_id, MachineId member);
  void schedule_retransmit(const GroupName& name, std::uint64_t op_id,
                           sim::SimTime delay);
  void member_acked(const GroupName& name, std::uint64_t op_id,
                    MachineId member);
  void send_transfer(const GroupName& name, std::uint64_t op_id,
                     std::uint64_t seq, MachineId donor, Cost copy_cost,
                     bool is_delta, std::shared_ptr<const StateBlob> blob,
                     sim::SimTime retry_delay);
  void maybe_complete_gcast(const GroupName& name, Op& op);
  void complete_active(const GroupName& name);
  void finish_join(const GroupName& name, Op& op);
  void install_view(const GroupName& name, std::vector<MachineId> members);
  void on_failure_detected(MachineId machine);
  Op* active_op(const GroupName& name, std::uint64_t op_id);

  net::Transport& network_;
  Options options_;
  obs::Obs obs_;
  std::map<GroupName, Group> groups_;
  std::vector<GroupEndpoint*> endpoints_;
  std::vector<ViewListener> view_listeners_;
  // Scalar counters are atomics: ids are drawn from executions whose
  // domains may be disjoint (and thus run concurrently on sharded
  // transports); the stats are read by tests without the stack lock.
  std::atomic<std::uint64_t> next_op_id_{1};
  std::atomic<std::uint64_t> next_view_id_{1};
  std::atomic<std::uint64_t> gcasts_completed_{0};
  std::atomic<std::uint64_t> retransmits_{0};
};

}  // namespace paso::vsync
