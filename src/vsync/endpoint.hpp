// The per-machine contract between the group layer and its users.
//
// A memory server (Section 4.2) registers one GroupEndpoint per machine.
// GroupService calls back into it to process gcast messages, to donate or
// install state during join transfers, and to observe view changes.
#pragma once

#include <any>
#include <cstddef>
#include <optional>

#include "common/cost.hpp"
#include "common/ids.hpp"
#include "vsync/view.hpp"

namespace paso::vsync {

/// A gcast message body. The body is an in-process value (the simulator
/// shares one address space); `bytes` is its declared wire size, used by the
/// cost model. All costs are computed from `bytes`, never from sizeof.
struct Payload {
  std::any body;
  std::size_t bytes = 0;
};

/// What a member produces when it processes a gcast.
struct GcastResult {
  std::any response;             ///< response body (empty any == "fail")
  std::size_t response_bytes = 0;  ///< wire size of the response
  Cost processing = 0;           ///< server time spent (I/Q/D units)
};

/// State transferred to a joining member (Section 4.2's initiation
/// procedure): an opaque blob plus its size g(l), which determines both the
/// transfer's message cost and the join duration K.
struct StateBlob {
  std::any state;
  std::size_t bytes = 0;
};

/// What a joiner with local durable state advertises in g-join: the
/// checkpoint generation and last log sequence number it recovered to. A
/// donor that still holds the log suffix past `lsn` can ship a delta instead
/// of the full blob, shrinking the transfer from O(l) to O(delta).
struct DurablePosition {
  bool valid = false;
  std::uint64_t epoch = 0;
  std::uint64_t lsn = 0;
};

class GroupEndpoint {
 public:
  virtual ~GroupEndpoint() = default;

  /// Process a message gcast to `group`. Called exactly once per delivered
  /// message, in the same order on every member (total order).
  virtual GcastResult handle_gcast(const GroupName& group,
                                   const Payload& message) = 0;

  /// Donor side of a join: capture all state this member holds for `group`.
  virtual StateBlob capture_state(const GroupName& group) = 0;

  /// Joiner side: install the donated state. After this returns, the
  /// joiner's state is consistent with the group (Section 4.2).
  virtual void install_state(const GroupName& group, const StateBlob& blob) = 0;

  /// Called on a member that has left (voluntarily) so it can erase the
  /// group's data ("for sake of space efficiency, servers should erase all
  /// information when leaving a group").
  virtual void erase_state(const GroupName& group) = 0;

  // --- delta state transfer (optional; endpoints without local durability
  // keep the defaults and always receive full transfers) ---------------------

  /// Joiner side: the durable position this member recovered to, or invalid
  /// when it has nothing durable for the group.
  virtual DurablePosition durable_position(const GroupName& group) {
    (void)group;
    return {};
  }

  /// Donor side: capture only the changes past `position`, or nullopt when
  /// the delta cannot be served (position too stale, local log damaged,
  /// persistence off) — the service then falls back to capture_state.
  virtual std::optional<StateBlob> capture_delta(
      const GroupName& group, const DurablePosition& position) {
    (void)group;
    (void)position;
    return std::nullopt;
  }

  /// Donor side: how far back this member's retained log reaches for
  /// `group` (its compaction horizon — the lsn just below the oldest
  /// retained record). A delta can be served to any joiner whose durable
  /// lsn is >= this floor. nullopt when this member cannot donate deltas
  /// at all (persistence off, no local state). GroupService uses it to
  /// pick the donor whose log reaches furthest back instead of blindly
  /// asking the leader.
  virtual std::optional<std::uint64_t> delta_floor(const GroupName& group) {
    (void)group;
    return std::nullopt;
  }

  /// Joiner side: apply a delta blob on top of locally recovered state.
  /// Returning false aborts the delta (the blob did not line up with the
  /// local state); the service restarts the join as a full transfer.
  virtual bool install_delta(const GroupName& group, const StateBlob& blob) {
    (void)group;
    (void)blob;
    return false;
  }

  /// Membership notification: every member observes the same sequence of
  /// views, consistently ordered with message deliveries.
  virtual void on_view_change(const GroupName& group, const View& view) = 0;
};

}  // namespace paso::vsync
