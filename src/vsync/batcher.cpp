#include "vsync/batcher.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace paso::vsync {

void GcastBatcher::gcast_to(const GroupName& group, Payload message,
                            std::string tag,
                            std::vector<MachineId> preferred,
                            std::size_t max_targets,
                            GroupService::ResponseCallback on_response,
                            sim::SimTime latest_dispatch) {
  if (options_.window <= 0) {
    // Batching off: exact pass-through, byte-for-byte the unbatched path.
    groups_.gcast_to(group, self_, std::move(message), std::move(tag),
                     std::move(preferred), max_targets,
                     std::move(on_response));
    return;
  }
  RouteKey key{group, std::move(preferred), max_targets};
  RouteQueue& queue = queues_[key];
  queue.ops.push_back(
      PendingOp{std::move(message), std::move(tag), std::move(on_response)});
  if (queue.ops.size() >= options_.max_batch) {
    flush(key);
    return;
  }
  const sim::SimTime now = simulator().now();
  sim::SimTime due = std::min(queue.due, now + options_.window);
  due = std::min(due, std::max(latest_dispatch, now));
  if (due < queue.due) {
    queue.due = due;
    if (queue.timer) simulator().cancel(*queue.timer);
    queue.timer = simulator().schedule_at(
        due, [this, key = std::move(key)] { flush(key); });
  }
}

void GcastBatcher::flush(const RouteKey& key) {
  auto it = queues_.find(key);
  if (it == queues_.end() || it->second.ops.empty()) return;
  std::vector<PendingOp> ops = std::move(it->second.ops);
  if (it->second.timer) simulator().cancel(*it->second.timer);
  queues_.erase(it);

  if (ops.size() == 1) {
    // A lone op pays no batch framing: dispatch it as itself.
    PendingOp& op = ops.front();
    groups_.gcast_to(key.group, self_, std::move(op.message),
                     std::move(op.tag), key.preferred, key.max_targets,
                     std::move(op.on_response));
    return;
  }

  std::vector<Payload> payloads;
  payloads.reserve(ops.size());
  for (const PendingOp& op : ops) payloads.push_back(op.message);
  Payload combined = combiner_(payloads);
  ++batches_;
  batched_ops_ += ops.size();

  // The wrapper splits the gathered batch response back into per-op
  // responses. `ops` moves into the closure so each op's callback survives
  // until the batch completes.
  auto fan_out = [this, ops = std::move(ops)](
                     std::optional<std::any> response) mutable {
    std::vector<std::optional<std::any>> slots =
        splitter_(response, ops.size());
    PASO_REQUIRE(slots.size() == ops.size(), "splitter slot count mismatch");
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].on_response) ops[i].on_response(std::move(slots[i]));
    }
  };
  groups_.gcast_to(key.group, self_, std::move(combined), "batch",
                   key.preferred, key.max_targets, std::move(fan_out));
}

void GcastBatcher::flush_all() {
  // flush() erases map entries; snapshot the keys first.
  std::vector<RouteKey> keys;
  keys.reserve(queues_.size());
  for (const auto& [key, queue] : queues_) keys.push_back(key);
  for (const RouteKey& key : keys) flush(key);
}

void GcastBatcher::clear() {
  for (auto& [key, queue] : queues_) {
    if (queue.timer) simulator().cancel(*queue.timer);
  }
  queues_.clear();
}

}  // namespace paso::vsync
