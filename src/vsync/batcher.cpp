#include "vsync/batcher.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace paso::vsync {

void GcastBatcher::gcast_to(const GroupName& group, Payload message,
                            std::string tag,
                            std::vector<MachineId> preferred,
                            std::size_t max_targets,
                            GroupService::ResponseCallback on_response,
                            sim::SimTime latest_dispatch) {
  if (options_.window <= 0) {
    // Batching off: exact pass-through, byte-for-byte the unbatched path.
    groups_.gcast_to(group, self_, std::move(message), std::move(tag),
                     std::move(preferred), max_targets,
                     std::move(on_response));
    return;
  }
  const sim::SimTime now = executor().now();
  RouteKey key{group, std::move(preferred), max_targets};
  RouteQueue& queue = queues_[key];
  std::vector<obs::TraceId> traces;
  if (obs_.tracer != nullptr) traces = obs_.tracer->context();
  queue.ops.push_back(PendingOp{std::move(message), std::move(tag),
                                std::move(on_response), std::move(traces),
                                now});
  if (obs_.tracer != nullptr) {
    for (obs::TraceId t : queue.ops.back().traces) {
      obs_.tracer->span(t, obs::SpanKind::kEnqueue, self_, now, {},
                        static_cast<double>(queue.ops.size()));
    }
  }
  if (obs_.metrics != nullptr) {
    obs_.metrics->counter("batcher.enqueued", self_).inc();
    obs_.metrics->gauge("batcher.queue_depth", self_)
        .set(static_cast<double>(queued()));
  }
  if (queue.ops.size() >= options_.max_batch) {
    flush(key);
    return;
  }
  if (latest_dispatch <= now) {
    // The op's dispatch deadline has already arrived (typically a robust
    // retry whose remaining budget is gone). Parking it behind a timer at
    // `now` would add a spurious event hop before it moves; dispatch the
    // route synchronously instead.
    if (obs_.metrics != nullptr) {
      obs_.metrics->counter("batcher.deadline_flushes", self_).inc();
    }
    flush(key);
    return;
  }
  sim::SimTime due = std::min(queue.due, now + options_.window);
  due = std::min(due, latest_dispatch);
  if (due < queue.due) {
    queue.due = due;
    if (queue.timer) executor().cancel(*queue.timer);
    queue.timer = executor().schedule_at(
        due, [this, key = std::move(key)] { flush(key); });
  }
}

void GcastBatcher::flush(const RouteKey& key) {
  auto it = queues_.find(key);
  if (it == queues_.end() || it->second.ops.empty()) return;
  std::vector<PendingOp> ops = std::move(it->second.ops);
  if (it->second.timer) executor().cancel(*it->second.timer);
  queues_.erase(it);

  const sim::SimTime now = executor().now();
  std::vector<obs::TraceId> batch_traces;
  for (const PendingOp& op : ops) {
    batch_traces.insert(batch_traces.end(), op.traces.begin(),
                        op.traces.end());
  }
  if (obs_.metrics != nullptr) {
    auto& waits = obs_.metrics->histogram(
        "batcher.window_wait", self_, {0, 1, 5, 10, 25, 50, 100, 250});
    for (const PendingOp& op : ops) waits.observe(now - op.enqueued_at);
    obs_.metrics
        ->histogram("batcher.batch_size", self_, {1, 2, 4, 8, 16, 32})
        .observe(static_cast<double>(ops.size()));
    obs_.metrics->gauge("batcher.queue_depth", self_)
        .set(static_cast<double>(queued()));
  }

  if (ops.size() == 1) {
    // A lone op pays no batch framing: dispatch it as itself.
    PendingOp& op = ops.front();
    obs::OpTracer::Scope scope(obs_.tracer, op.traces);
    groups_.gcast_to(key.group, self_, std::move(op.message),
                     std::move(op.tag), key.preferred, key.max_targets,
                     std::move(op.on_response));
    return;
  }

  std::vector<Payload> payloads;
  payloads.reserve(ops.size());
  for (const PendingOp& op : ops) payloads.push_back(op.message);
  Payload combined = combiner_(payloads);
  ++batches_;
  batched_ops_ += ops.size();
  if (obs_.tracer != nullptr) {
    for (obs::TraceId t : batch_traces) {
      obs_.tracer->span(t, obs::SpanKind::kCoalesce, self_, now, {},
                        static_cast<double>(ops.size()));
    }
  }

  // The wrapper splits the gathered batch response back into per-op
  // responses. `ops` moves into the closure so each op's callback survives
  // until the batch completes.
  auto fan_out = [this, ops = std::move(ops)](
                     std::optional<std::any> response) mutable {
    std::vector<std::optional<std::any>> slots =
        splitter_(response, ops.size());
    PASO_REQUIRE(slots.size() == ops.size(), "splitter slot count mismatch");
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].on_response) ops[i].on_response(std::move(slots[i]));
    }
  };
  obs::OpTracer::Scope scope(obs_.tracer, batch_traces);
  groups_.gcast_to(key.group, self_, std::move(combined), "batch",
                   key.preferred, key.max_targets, std::move(fan_out));
}

void GcastBatcher::flush_all() {
  // flush() erases map entries; snapshot the keys first.
  std::vector<RouteKey> keys;
  keys.reserve(queues_.size());
  for (const auto& [key, queue] : queues_) keys.push_back(key);
  for (const RouteKey& key : keys) flush(key);
}

void GcastBatcher::clear() {
  for (auto& [key, queue] : queues_) {
    if (queue.timer) executor().cancel(*queue.timer);
  }
  queues_.clear();
}

}  // namespace paso::vsync
