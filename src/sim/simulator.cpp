#include "sim/simulator.hpp"

#include <utility>

namespace paso::sim {

EventId Simulator::schedule_at(SimTime at, Action action) {
  PASO_REQUIRE(at >= now_, "cannot schedule into the past");
  PASO_REQUIRE(action != nullptr, "null action");
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{at, seq});
  actions_.emplace(seq, std::move(action));
  return EventId{seq};
}

bool Simulator::cancel(EventId id) {
  // Lazy deletion: drop the action; the heap entry is skipped when popped.
  return actions_.erase(id.value) > 0;
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    auto it = actions_.find(top.seq);
    if (it == actions_.end()) continue;  // cancelled
    Action action = std::move(it->second);
    actions_.erase(it);
    now_ = top.at;
    ++processed_;
    action();
    return true;
  }
  return false;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  while (!heap_.empty()) {
    // Skip cancelled entries without advancing time.
    const Entry top = heap_.top();
    if (!actions_.contains(top.seq)) {
      heap_.pop();
      continue;
    }
    if (top.at > deadline) break;
    step();
  }
  if (deadline > now_) now_ = deadline;
}

bool Simulator::run_while_pending(const std::function<bool()>& predicate) {
  if (predicate()) return true;
  while (step()) {
    if (predicate()) return true;
  }
  return false;
}

}  // namespace paso::sim
