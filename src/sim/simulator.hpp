// Deterministic discrete-event simulation engine.
//
// Everything distributed in this repository — the bus network, the
// virtual-synchrony layer, crashes and recoveries — runs as events on this
// engine. Determinism comes from (time, insertion-sequence) ordering: two
// events at the same virtual time fire in the order they were scheduled.
//
// The simulator is the virtual-time implementation of exec::Executor; the
// protocol stack schedules against that interface, so the identical stack
// also runs on the real-clock exec::ThreadedExecutor (see docs/threading.md).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/require.hpp"
#include "exec/executor.hpp"

namespace paso::sim {

/// Virtual time in abstract units (the same units as the cost model's
/// alpha/beta, so "total message cost lower-bounds completion time" holds by
/// construction on the simulated bus).
using SimTime = exec::Time;

/// Sentinel for "no deadline / disabled timer": later than every event.
inline constexpr SimTime kNever = exec::kNever;

/// Handle for cancelling a scheduled event.
using EventId = exec::TimerId;

class Simulator final : public exec::Executor {
 public:
  using Action = exec::Executor::Action;

  /// Schedule `action` at absolute virtual time `at` (must be >= now()).
  EventId schedule_at(SimTime at, Action action) override;

  /// Schedule `action` `delay` time units from now.
  EventId schedule_after(SimTime delay, Action action) override {
    PASO_REQUIRE(delay >= 0, "negative delay");
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Cancel a pending event. Cancelling an already-fired or already-cancelled
  /// event is a harmless no-op (returns false).
  bool cancel(EventId id) override;

  /// Run a single event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue is empty.
  void run();

  /// Run until virtual time reaches `deadline` (events at exactly `deadline`
  /// are executed) or the queue drains.
  void run_until(SimTime deadline);

  /// Run until `predicate()` becomes true (checked before each event and
  /// after each event) or the queue drains. Returns true iff the predicate
  /// fired.
  bool run_while_pending(const std::function<bool()>& predicate);

  SimTime now() const override { return now_; }
  std::size_t pending() const { return actions_.size(); }
  std::uint64_t events_processed() const { return processed_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // insertion order, breaks ties deterministically
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<std::uint64_t, Action> actions_;  // keyed by seq
};

}  // namespace paso::sim
