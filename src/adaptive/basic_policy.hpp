// BasicReplicationPolicy: the Section 5.1 counter algorithm wired into the
// live system. One CounterAutomaton (or DoublingAutomaton) per object class
// observed; join/leave actions turn into g-join/g-leave requests through
// GroupControl. install_basic_policies() equips every machine of a Cluster.
#pragma once

#include <memory>
#include <unordered_map>

#include "adaptive/counter.hpp"
#include "adaptive/doubling.hpp"
#include "paso/cluster.hpp"
#include "paso/replication_policy.hpp"

namespace paso::adaptive {

struct BasicPolicyOptions {
  Cost join_cost = 8;   ///< K (fixed mode) or the initial K (doubling mode)
  Cost query_cost = 1;  ///< q
  /// Doubling/halving mode (Theorem 3): K tracks the live-object count, so
  /// the effective join cost is max(1, l) * query normalization.
  bool doubling = false;
};

class BasicReplicationPolicy final : public ReplicationPolicy {
 public:
  BasicReplicationPolicy(GroupControl& control, BasicPolicyOptions options)
      : control_(control), options_(options) {}

  void on_local_read(ClassId cls, bool served_locally,
                     std::size_t remote_targets) override;
  void on_update_served(ClassId cls) override;
  void on_machine_reset() override { reset_all(); }

  /// Crash wipes the machine: every automaton reverts to non-member.
  void reset_all();

  /// Introspection for tests and benches.
  Cost counter(ClassId cls);
  bool automaton_in_group(ClassId cls);

 private:
  struct Entry {
    std::unique_ptr<CounterAutomaton> fixed;
    std::unique_ptr<DoublingAutomaton> doubling;
  };
  Entry& entry_of(ClassId cls);
  Cost observed_join_cost(ClassId cls) const;
  void apply(ClassId cls, CounterAction action);

  GroupControl& control_;
  BasicPolicyOptions options_;
  std::unordered_map<std::uint32_t, Entry> entries_;
};

/// Install a BasicReplicationPolicy on every machine of the cluster.
void install_basic_policies(Cluster& cluster, BasicPolicyOptions options);

}  // namespace paso::adaptive
