// Virtual paging (Section 5.2).
//
// Support selection reduces from paging, so the support-selection experiment
// needs a paging toolbox: the classical online algorithms (LRU, FIFO, the
// randomized marking algorithm, random eviction), Belady's offline optimum,
// and the adversarial request sequences realizing the k and log k lower
// bounds of Theorem 4's proof.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace paso::adaptive {

using Page = std::size_t;

class PagingAlgorithm {
 public:
  explicit PagingAlgorithm(std::size_t cache_size) : cache_size_(cache_size) {
    PASO_REQUIRE(cache_size >= 1, "cache must hold a page");
  }
  virtual ~PagingAlgorithm() = default;

  /// Access a page; returns true on a fault. On a fault the algorithm
  /// evicts (if full) and loads the page.
  bool access(Page page);

  virtual const char* name() const = 0;

  std::uint64_t faults() const { return faults_; }
  std::size_t cache_size() const { return cache_size_; }
  bool cached(Page page) const { return cache_.contains(page); }
  /// The page evicted by the most recent faulting access, if any.
  std::optional<Page> last_evicted() const { return last_evicted_; }

  virtual void reset();

 protected:
  /// Pick the page to evict (cache is full, `page` is not cached).
  virtual Page choose_victim(Page page) = 0;
  /// Bookkeeping after any access (hit or fault).
  virtual void note_access(Page page, bool fault) = 0;

  std::size_t cache_size_;
  std::unordered_set<Page> cache_;
  std::uint64_t faults_ = 0;
  std::optional<Page> last_evicted_;
};

/// Least-recently-used. Deterministic, k-competitive, the classical
/// reference rule (maps to LRF under the support-selection reduction).
class LruPaging final : public PagingAlgorithm {
 public:
  using PagingAlgorithm::PagingAlgorithm;
  const char* name() const override { return "LRU"; }
  void reset() override;

 protected:
  Page choose_victim(Page page) override;
  void note_access(Page page, bool fault) override;

 private:
  std::list<Page> order_;  // front = most recent
  std::unordered_map<Page, std::list<Page>::iterator> where_;
};

/// First-in-first-out.
class FifoPaging final : public PagingAlgorithm {
 public:
  using PagingAlgorithm::PagingAlgorithm;
  const char* name() const override { return "FIFO"; }
  void reset() override;

 protected:
  Page choose_victim(Page page) override;
  void note_access(Page page, bool fault) override;

 private:
  std::list<Page> queue_;  // front = oldest
};

/// Uniform random eviction.
class RandomPaging final : public PagingAlgorithm {
 public:
  RandomPaging(std::size_t cache_size, Rng rng)
      : PagingAlgorithm(cache_size), rng_(rng) {}
  const char* name() const override { return "RANDOM"; }

 protected:
  Page choose_victim(Page page) override;
  void note_access(Page, bool) override {}

 private:
  Rng rng_;
};

/// The randomized marking algorithm: O(log k)-competitive, matching the
/// randomized lower bound of Theorem 4 up to constants.
class MarkingPaging final : public PagingAlgorithm {
 public:
  MarkingPaging(std::size_t cache_size, Rng rng)
      : PagingAlgorithm(cache_size), rng_(rng) {}
  const char* name() const override { return "MARKING"; }
  void reset() override;

 protected:
  Page choose_victim(Page page) override;
  void note_access(Page page, bool fault) override;

 private:
  Rng rng_;
  std::unordered_set<Page> marked_;
};

/// Belady's offline optimum: evict the page whose next use is farthest in
/// the future. Returns the fault count for the whole sequence.
std::uint64_t belady_faults(const std::vector<Page>& sequence,
                            std::size_t cache_size);

/// The deterministic lower-bound adversary: cycle through cache_size + 1
/// pages; any deterministic algorithm faults every time while OPT faults
/// once per cache_size accesses.
std::vector<Page> cyclic_adversary_sequence(std::size_t cache_size,
                                            std::size_t length);

/// A random sequence over `pages` pages with Zipf-skewed popularity.
std::vector<Page> zipf_sequence(std::size_t pages, std::size_t length,
                                double skew, Rng& rng);

}  // namespace paso::adaptive
