// The doubling/halving extension (Section 5.1, Theorem 3).
//
// When the number of live objects l changes over time, the join cost K —
// the time to copy the class state — changes with it. The Basic counter
// cannot track K continuously (that would invalidate the potential
// argument); instead the algorithm "resets itself every time the ratio
// between join cost and update cost changes by a factor of 2": the tracked
// K_m doubles or halves, and the counter is clamped accordingly. Members
// keep K_m current; non-members learn the current K piggybacked on their
// remote reads — both captured here by feeding the observed join cost with
// each event.
#pragma once

#include "adaptive/counter.hpp"

namespace paso::adaptive {

class DoublingAutomaton {
 public:
  struct Config {
    Cost initial_join_cost = 8;
    Cost query_cost = 1;
    bool is_basic = false;
    bool start_in_group = false;
  };

  explicit DoublingAutomaton(Config config)
      : tracked_k_(config.initial_join_cost),
        counter_(CounterConfig{config.initial_join_cost, config.query_cost,
                               config.is_basic, config.start_in_group}) {}

  /// Feed the currently observed join cost (Theta(l) in practice) before
  /// processing an event; K_m doubles/halves until within a factor 2.
  void observe_join_cost(Cost current) {
    PASO_REQUIRE(current > 0, "join cost must be positive");
    while (current >= 2 * tracked_k_) {
      tracked_k_ *= 2;
    }
    while (current < tracked_k_ / 2) {
      tracked_k_ /= 2;
    }
    counter_.set_join_cost(tracked_k_);
  }

  CounterAction on_read(std::size_t read_group_size, Cost current_join_cost) {
    observe_join_cost(current_join_cost);
    return counter_.on_read(read_group_size);
  }

  CounterAction on_update(Cost current_join_cost) {
    observe_join_cost(current_join_cost);
    return counter_.on_update();
  }

  bool in_group() const { return counter_.in_group(); }
  Cost counter() const { return counter_.counter(); }
  Cost tracked_join_cost() const { return tracked_k_; }
  void force_membership(bool in_group) { counter_.force_membership(in_group); }

 private:
  Cost tracked_k_;
  CounterAutomaton counter_;
};

}  // namespace paso::adaptive
