// Distributed support selection (Section 5.2, end-to-end).
//
// Keeps every class's basic support at lambda+1 operational machines: when a
// supporting machine fails, a replacement is recruited (paying the g-join
// state copy) according to a replacement rule. LRF — "replace it by the
// least recently failed machine", the image of LRU under the Theorem 4
// reduction — is the paper's heuristic; round-robin and random are
// comparison rules. The pure-algorithm version of this game lives in
// support_selection.hpp; this class runs it against the real cluster so the
// copies have real g(l) costs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "paso/cluster.hpp"

namespace paso::adaptive {

class SupportManager {
 public:
  enum class Rule { kLrf, kRoundRobin, kRandom };

  SupportManager(Cluster& cluster, Rule rule, std::uint64_t seed = 1);

  /// Notify after the failure detector has expelled the machine (the
  /// recruiting decision is taken by the surviving members once the view
  /// settles). Recruits replacements for every class `m` supported.
  void on_machine_failed(MachineId m);

  /// Machines recover outside the manager (Cluster::recover); recovered
  /// machines become recruitable again automatically via Cluster::is_up.
  std::uint64_t recruitments() const { return recruitments_; }

  static const char* rule_name(Rule rule);

 private:
  MachineId pick_replacement(const std::vector<MachineId>& support,
                             MachineId failed);

  Cluster& cluster_;
  Rule rule_;
  Rng rng_;
  std::vector<std::int64_t> last_failure_;
  std::int64_t clock_ = 0;
  std::uint32_t round_robin_next_ = 0;
  std::uint64_t recruitments_ = 0;
};

}  // namespace paso::adaptive
