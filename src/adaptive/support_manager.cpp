#include "adaptive/support_manager.hpp"

#include <algorithm>
#include <limits>

namespace paso::adaptive {

SupportManager::SupportManager(Cluster& cluster, Rule rule, std::uint64_t seed)
    : cluster_(cluster),
      rule_(rule),
      rng_(seed),
      last_failure_(cluster.machine_count(), -1) {}

const char* SupportManager::rule_name(Rule rule) {
  switch (rule) {
    case Rule::kLrf:
      return "LRF";
    case Rule::kRoundRobin:
      return "ROUND-ROBIN";
    case Rule::kRandom:
      return "RANDOM";
  }
  return "?";
}

MachineId SupportManager::pick_replacement(
    const std::vector<MachineId>& support, MachineId failed) {
  std::vector<MachineId> candidates;
  for (std::uint32_t m = 0; m < cluster_.machine_count(); ++m) {
    const MachineId machine{m};
    if (machine == failed || !cluster_.is_up(machine)) continue;
    if (std::find(support.begin(), support.end(), machine) != support.end()) {
      continue;
    }
    candidates.push_back(machine);
  }
  PASO_REQUIRE(!candidates.empty(),
               "support selection needs an operational replacement");
  switch (rule_) {
    case Rule::kLrf: {
      MachineId best = candidates.front();
      std::int64_t oldest = std::numeric_limits<std::int64_t>::max();
      for (const MachineId c : candidates) {
        if (last_failure_[c.value] < oldest) {
          oldest = last_failure_[c.value];
          best = c;
        }
      }
      return best;
    }
    case Rule::kRoundRobin: {
      for (std::size_t probe = 0; probe < cluster_.machine_count(); ++probe) {
        const MachineId candidate{
            (round_robin_next_ + static_cast<std::uint32_t>(probe)) %
            static_cast<std::uint32_t>(cluster_.machine_count())};
        if (std::find(candidates.begin(), candidates.end(), candidate) !=
            candidates.end()) {
          round_robin_next_ = candidate.value + 1;
          return candidate;
        }
      }
      return candidates.front();
    }
    case Rule::kRandom:
      return rng_.pick(candidates);
  }
  return candidates.front();
}

void SupportManager::on_machine_failed(MachineId failed) {
  ++clock_;
  last_failure_[failed.value] = clock_;
  for (std::uint32_t c = 0; c < cluster_.schema().class_count(); ++c) {
    const ClassId cls{c};
    std::vector<MachineId> support = cluster_.basic_support(cls);
    auto it = std::find(support.begin(), support.end(), failed);
    if (it == support.end()) continue;
    const MachineId replacement = pick_replacement(support, failed);
    *it = replacement;
    cluster_.set_basic_support(cls, support);
    cluster_.runtime(replacement).request_join(cls);
    ++recruitments_;
  }
}

}  // namespace paso::adaptive
