// The Support Selection Problem (Section 5.2).
//
// Choose online which machines form wg(C), keeping |wg(C)| =
// min(lambda+1, n-f): when a supporting machine fails it must immediately
// be replaced by an operational non-member, at a state-copy cost of g(l).
// Theorem 4 reduces paging to this problem — map page i to machine M_i,
// "page in cache" to "machine not in wg(C)", and a page reference to a
// failure of M_i — so support selection inherits paging's n-lambda-1
// (deterministic) and log(n-lambda-1) (randomized) lower bounds.
//
// This file gives both directions of that correspondence:
//   * PagingBackedSelector drives any PagingAlgorithm through the reduction
//     (LRU becomes LRF: "replace by the least recently failed machine");
//   * LrfSelector implements LRF natively over failure timestamps, used to
//     validate the reduction (it must count exactly the LRU faults).
// plus failure-trace generators and the offline optimum via Belady.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "adaptive/paging.hpp"
#include "common/ids.hpp"

namespace paso::adaptive {

/// A failure trace: machine indices in the order they fail. (Machines
/// recover immediately after the replacement completes; only the copy costs
/// matter, as in the Theorem 4 reduction.)
using FailureTrace = std::vector<std::size_t>;

class SupportSelector {
 public:
  virtual ~SupportSelector() = default;

  /// Machine `m` failed. Returns true if a state copy was needed (m was in
  /// the write group and had to be replaced).
  virtual bool on_failure(std::size_t m) = 0;

  virtual const char* name() const = 0;
  std::uint64_t copies() const { return copies_; }

  /// Current write-group membership (for invariant checks).
  virtual std::vector<std::size_t> write_group() const = 0;

 protected:
  std::uint64_t copies_ = 0;
};

/// Drives a paging algorithm through the Theorem-4 reduction. The write
/// group is the complement of the cache: n machines, cache size
/// n - (lambda+1).
class PagingBackedSelector final : public SupportSelector {
 public:
  PagingBackedSelector(std::size_t machines, std::size_t lambda,
                       std::unique_ptr<PagingAlgorithm> paging);

  bool on_failure(std::size_t m) override;
  const char* name() const override { return paging_->name(); }
  std::vector<std::size_t> write_group() const override;

 private:
  std::size_t machines_;
  std::unique_ptr<PagingAlgorithm> paging_;
};

/// Native LRF: replace a failed write-group member by the operational
/// machine that failed least recently (never-failed machines count as
/// failed at -infinity, oldest first by index).
class LrfSelector final : public SupportSelector {
 public:
  LrfSelector(std::size_t machines, std::size_t lambda);

  bool on_failure(std::size_t m) override;
  const char* name() const override { return "LRF"; }
  std::vector<std::size_t> write_group() const override;

 private:
  std::size_t machines_;
  std::vector<std::int64_t> last_failure_;  // -1 = never failed
  std::set<std::size_t> write_group_;
  std::int64_t clock_ = 0;
};

/// LRF refined by segment placement: among replacement candidates, prefer
/// the one with the fewest bridge hops to the class's dominant reader
/// segment, breaking hop ties by least-recent failure, then index. On a
/// degenerate topology (all machines on segment 0) every hop distance is 0,
/// so the selector collapses to plain LRF — same copies, same groups.
///
/// The copy count is unchanged versus LRF (every wg-member failure forces
/// exactly one copy either way); what improves is *where* the group ends up
/// living, i.e. the per-access gcast cost under the segment map.
class SegmentAwareLrfSelector final : public SupportSelector {
 public:
  /// `machine_segment[m]` is machine m's segment; `reader_segment` is where
  /// the class's reads come from (e.g. the arg-max of observed read
  /// weights).
  SegmentAwareLrfSelector(std::size_t machines, std::size_t lambda,
                          std::vector<std::uint32_t> machine_segment,
                          std::uint32_t reader_segment);

  bool on_failure(std::size_t m) override;
  const char* name() const override { return "LRF/segment"; }
  std::vector<std::size_t> write_group() const override;

 private:
  std::size_t hops_to_reader(std::size_t m) const;

  std::size_t machines_;
  std::vector<std::uint32_t> machine_segment_;
  std::uint32_t reader_segment_;
  std::vector<std::int64_t> last_failure_;  // -1 = never failed
  std::set<std::size_t> write_group_;
  std::int64_t clock_ = 0;
};

/// Offline optimum for a failure trace: Belady on the reduced paging
/// instance.
std::uint64_t optimal_copies(const FailureTrace& trace, std::size_t machines,
                             std::size_t lambda);

/// Convenience: run a selector over a trace and return its copy count.
std::uint64_t run_selector(SupportSelector& selector,
                           const FailureTrace& trace);

/// Trace where failures cycle through lambda+2 machines — the deterministic
/// lower-bound adversary after the reduction (universe = cache + 1 pages).
FailureTrace cyclic_failure_trace(std::size_t machines, std::size_t lambda,
                                  std::size_t length);

/// Uniformly random failures over all machines.
FailureTrace uniform_failure_trace(std::size_t machines, std::size_t length,
                                   Rng& rng);

/// "Flaky subset" trace: a few chronically unreliable machines account for
/// most failures (Zipf skew) — the regime where LRF's plausible assumption
/// ("the longer a machine stays up, the more reliable it is") pays off.
FailureTrace flaky_failure_trace(std::size_t machines, std::size_t length,
                                 double skew, Rng& rng);

}  // namespace paso::adaptive
