#include "adaptive/support_selection.hpp"

#include <algorithm>
#include <limits>

namespace paso::adaptive {

PagingBackedSelector::PagingBackedSelector(
    std::size_t machines, std::size_t lambda,
    std::unique_ptr<PagingAlgorithm> paging)
    : machines_(machines), paging_(std::move(paging)) {
  PASO_REQUIRE(machines_ > lambda + 1, "need non-support machines");
  PASO_REQUIRE(paging_ != nullptr, "paging algorithm required");
  PASO_REQUIRE(paging_->cache_size() == machines_ - lambda - 1,
               "cache size must be n - lambda - 1");
  // Initial configuration: wg = {0..lambda}, so pages lambda+1..n-1 start in
  // cache. Warm the paging algorithm up without counting the cold faults.
  for (std::size_t m = lambda + 1; m < machines_; ++m) {
    paging_->access(m);
  }
}

bool PagingBackedSelector::on_failure(std::size_t m) {
  PASO_REQUIRE(m < machines_, "unknown machine");
  const bool fault = paging_->access(m);
  if (fault) ++copies_;
  return fault;
}

std::vector<std::size_t> PagingBackedSelector::write_group() const {
  std::vector<std::size_t> group;
  for (std::size_t m = 0; m < machines_; ++m) {
    if (!paging_->cached(m)) group.push_back(m);
  }
  return group;
}

// --- native LRF ---------------------------------------------------------------

LrfSelector::LrfSelector(std::size_t machines, std::size_t lambda)
    : machines_(machines), last_failure_(machines, -1) {
  PASO_REQUIRE(machines_ > lambda + 1, "need non-support machines");
  for (std::size_t m = 0; m <= lambda; ++m) write_group_.insert(m);
}

bool LrfSelector::on_failure(std::size_t m) {
  PASO_REQUIRE(m < machines_, "unknown machine");
  ++clock_;
  const std::int64_t failure_time = clock_;
  if (!write_group_.contains(m)) {
    last_failure_[m] = failure_time;
    return false;  // a non-member failed: nothing to copy
  }
  // Replace m by the least recently failed non-member (never-failed first,
  // ties by index).
  std::size_t replacement = machines_;
  std::int64_t oldest = std::numeric_limits<std::int64_t>::max();
  for (std::size_t candidate = 0; candidate < machines_; ++candidate) {
    if (candidate == m || write_group_.contains(candidate)) continue;
    if (last_failure_[candidate] < oldest) {
      oldest = last_failure_[candidate];
      replacement = candidate;
    }
  }
  PASO_REQUIRE(replacement < machines_, "no replacement available");
  write_group_.erase(m);
  write_group_.insert(replacement);
  last_failure_[m] = failure_time;
  ++copies_;
  return true;
}

std::vector<std::size_t> LrfSelector::write_group() const {
  return {write_group_.begin(), write_group_.end()};
}

SegmentAwareLrfSelector::SegmentAwareLrfSelector(
    std::size_t machines, std::size_t lambda,
    std::vector<std::uint32_t> machine_segment, std::uint32_t reader_segment)
    : machines_(machines),
      machine_segment_(std::move(machine_segment)),
      reader_segment_(reader_segment),
      last_failure_(machines, -1) {
  PASO_REQUIRE(machines_ > lambda + 1, "need non-support machines");
  PASO_REQUIRE(machine_segment_.size() == machines_,
               "segment map must cover every machine");
  for (std::size_t m = 0; m <= lambda; ++m) write_group_.insert(m);
}

std::size_t SegmentAwareLrfSelector::hops_to_reader(std::size_t m) const {
  const std::uint32_t seg = machine_segment_[m];
  return seg < reader_segment_ ? reader_segment_ - seg : seg - reader_segment_;
}

bool SegmentAwareLrfSelector::on_failure(std::size_t m) {
  PASO_REQUIRE(m < machines_, "unknown machine");
  ++clock_;
  const std::int64_t failure_time = clock_;
  if (!write_group_.contains(m)) {
    last_failure_[m] = failure_time;
    return false;
  }
  // Replace m by the candidate minimizing (hops-to-reader, last failure,
  // index). With every machine on one segment the hop term is constant and
  // this is exactly LrfSelector's choice.
  std::size_t replacement = machines_;
  std::size_t best_hops = std::numeric_limits<std::size_t>::max();
  std::int64_t oldest = std::numeric_limits<std::int64_t>::max();
  for (std::size_t candidate = 0; candidate < machines_; ++candidate) {
    if (candidate == m || write_group_.contains(candidate)) continue;
    const std::size_t hops = hops_to_reader(candidate);
    if (hops < best_hops ||
        (hops == best_hops && last_failure_[candidate] < oldest)) {
      best_hops = hops;
      oldest = last_failure_[candidate];
      replacement = candidate;
    }
  }
  PASO_REQUIRE(replacement < machines_, "no replacement available");
  write_group_.erase(m);
  write_group_.insert(replacement);
  last_failure_[m] = failure_time;
  ++copies_;
  return true;
}

std::vector<std::size_t> SegmentAwareLrfSelector::write_group() const {
  return {write_group_.begin(), write_group_.end()};
}

// --- offline optimum ------------------------------------------------------------

std::uint64_t optimal_copies(const FailureTrace& trace, std::size_t machines,
                             std::size_t lambda) {
  PASO_REQUIRE(machines > lambda + 1, "need non-support machines");
  const std::size_t cache_size = machines - lambda - 1;
  // Same warm-up convention as the online selectors: pages lambda+1..n-1
  // start in cache; prepend them and subtract the cold faults.
  std::vector<Page> sequence;
  sequence.reserve(cache_size + trace.size());
  for (std::size_t m = lambda + 1; m < machines; ++m) sequence.push_back(m);
  sequence.insert(sequence.end(), trace.begin(), trace.end());
  const std::uint64_t total = belady_faults(sequence, cache_size);
  PASO_REQUIRE(total >= cache_size, "warm-up must fault once per frame");
  return total - cache_size;
}

std::uint64_t run_selector(SupportSelector& selector,
                           const FailureTrace& trace) {
  for (const std::size_t m : trace) selector.on_failure(m);
  return selector.copies();
}

// --- trace generators -------------------------------------------------------------

FailureTrace cyclic_failure_trace(std::size_t machines, std::size_t lambda,
                                  std::size_t length) {
  PASO_REQUIRE(machines > lambda + 1, "need non-support machines");
  // The reduction's adversary uses cache_size + 1 = n - lambda pages; cycle
  // over that many machines so every deterministic selector faults forever.
  const std::size_t universe = machines - lambda;
  FailureTrace trace;
  trace.reserve(length);
  for (std::size_t i = 0; i < length; ++i) trace.push_back(i % universe);
  return trace;
}

FailureTrace uniform_failure_trace(std::size_t machines, std::size_t length,
                                   Rng& rng) {
  FailureTrace trace;
  trace.reserve(length);
  for (std::size_t i = 0; i < length; ++i) trace.push_back(rng.index(machines));
  return trace;
}

FailureTrace flaky_failure_trace(std::size_t machines, std::size_t length,
                                 double skew, Rng& rng) {
  FailureTrace trace;
  trace.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    trace.push_back(rng.zipf(machines, skew));
  }
  return trace;
}

}  // namespace paso::adaptive
