#include "adaptive/paging.hpp"

#include <algorithm>
#include <limits>

namespace paso::adaptive {

bool PagingAlgorithm::access(Page page) {
  last_evicted_.reset();
  const bool fault = !cache_.contains(page);
  if (fault) {
    ++faults_;
    if (cache_.size() >= cache_size_) {
      const Page victim = choose_victim(page);
      PASO_REQUIRE(cache_.erase(victim) == 1, "victim not in cache");
      last_evicted_ = victim;
    }
    cache_.insert(page);
  }
  note_access(page, fault);
  return fault;
}

void PagingAlgorithm::reset() {
  cache_.clear();
  faults_ = 0;
  last_evicted_.reset();
}

// --- LRU -------------------------------------------------------------------

void LruPaging::reset() {
  PagingAlgorithm::reset();
  order_.clear();
  where_.clear();
}

Page LruPaging::choose_victim(Page) {
  PASO_REQUIRE(!order_.empty(), "LRU victim from empty cache");
  const Page victim = order_.back();
  order_.pop_back();
  where_.erase(victim);
  return victim;
}

void LruPaging::note_access(Page page, bool) {
  auto it = where_.find(page);
  if (it != where_.end()) order_.erase(it->second);
  order_.push_front(page);
  where_[page] = order_.begin();
}

// --- FIFO ------------------------------------------------------------------

void FifoPaging::reset() {
  PagingAlgorithm::reset();
  queue_.clear();
}

Page FifoPaging::choose_victim(Page) {
  PASO_REQUIRE(!queue_.empty(), "FIFO victim from empty cache");
  const Page victim = queue_.front();
  queue_.pop_front();
  return victim;
}

void FifoPaging::note_access(Page page, bool fault) {
  if (fault) queue_.push_back(page);
}

// --- RANDOM ----------------------------------------------------------------

Page RandomPaging::choose_victim(Page) {
  std::vector<Page> resident(cache_.begin(), cache_.end());
  std::sort(resident.begin(), resident.end());  // determinism across runs
  return resident[rng_.index(resident.size())];
}

// --- MARKING ---------------------------------------------------------------

void MarkingPaging::reset() {
  PagingAlgorithm::reset();
  marked_.clear();
}

Page MarkingPaging::choose_victim(Page) {
  std::vector<Page> unmarked;
  for (const Page p : cache_) {
    if (!marked_.contains(p)) unmarked.push_back(p);
  }
  if (unmarked.empty()) {
    // Phase boundary: every resident page is marked; unmark all.
    marked_.clear();
    unmarked.assign(cache_.begin(), cache_.end());
  }
  std::sort(unmarked.begin(), unmarked.end());
  return unmarked[rng_.index(unmarked.size())];
}

void MarkingPaging::note_access(Page page, bool) { marked_.insert(page); }

// --- Belady OPT --------------------------------------------------------------

std::uint64_t belady_faults(const std::vector<Page>& sequence,
                            std::size_t cache_size) {
  PASO_REQUIRE(cache_size >= 1, "cache must hold a page");
  constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();
  // next_use[i] = index of the next occurrence of sequence[i] after i.
  std::vector<std::size_t> next_use(sequence.size(), kNever);
  std::unordered_map<Page, std::size_t> upcoming;
  for (std::size_t i = sequence.size(); i-- > 0;) {
    auto it = upcoming.find(sequence[i]);
    next_use[i] = it == upcoming.end() ? kNever : it->second;
    upcoming[sequence[i]] = i;
  }

  std::unordered_map<Page, std::size_t> cache_next;  // page -> next use index
  std::uint64_t faults = 0;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    const Page page = sequence[i];
    auto it = cache_next.find(page);
    if (it != cache_next.end()) {
      it->second = next_use[i];
      continue;
    }
    ++faults;
    if (cache_next.size() >= cache_size) {
      auto victim = cache_next.begin();
      for (auto walk = cache_next.begin(); walk != cache_next.end(); ++walk) {
        if (walk->second > victim->second ||
            (walk->second == victim->second && walk->first > victim->first)) {
          victim = walk;
        }
      }
      cache_next.erase(victim);
    }
    cache_next.emplace(page, next_use[i]);
  }
  return faults;
}

// --- sequence generators ------------------------------------------------------

std::vector<Page> cyclic_adversary_sequence(std::size_t cache_size,
                                            std::size_t length) {
  std::vector<Page> sequence;
  sequence.reserve(length);
  const std::size_t universe = cache_size + 1;
  for (std::size_t i = 0; i < length; ++i) sequence.push_back(i % universe);
  return sequence;
}

std::vector<Page> zipf_sequence(std::size_t pages, std::size_t length,
                                double skew, Rng& rng) {
  std::vector<Page> sequence;
  sequence.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    sequence.push_back(rng.zipf(pages, skew));
  }
  return sequence;
}

}  // namespace paso::adaptive
