#include "adaptive/basic_policy.hpp"

namespace paso::adaptive {

BasicReplicationPolicy::Entry& BasicReplicationPolicy::entry_of(ClassId cls) {
  auto it = entries_.find(cls.value);
  if (it != entries_.end()) return it->second;

  Entry entry;
  const bool is_basic = control_.is_basic_support(cls);
  const bool member = control_.is_member(cls);
  if (options_.doubling) {
    entry.doubling = std::make_unique<DoublingAutomaton>(
        DoublingAutomaton::Config{options_.join_cost, options_.query_cost,
                                  is_basic, member});
  } else {
    entry.fixed = std::make_unique<CounterAutomaton>(
        CounterConfig{options_.join_cost, options_.query_cost, is_basic,
                      member});
  }
  return entries_.emplace(cls.value, std::move(entry)).first->second;
}

Cost BasicReplicationPolicy::observed_join_cost(ClassId cls) const {
  // In doubling mode the join cost tracks the live-object count: copying the
  // class state is Theta(l) (Section 5). Non-members see l = 0 locally; they
  // learn K piggybacked on reads in the paper — here the automaton simply
  // keeps its last doubled/halved estimate until membership exposes l again.
  const std::size_t live = control_.live_count(cls);
  return std::max<Cost>(1, static_cast<Cost>(live));
}

void BasicReplicationPolicy::apply(ClassId cls, CounterAction action) {
  switch (action) {
    case CounterAction::kJoin:
      control_.request_join(cls);
      break;
    case CounterAction::kLeave:
      control_.request_leave(cls);
      break;
    case CounterAction::kNone:
      break;
  }
}

void BasicReplicationPolicy::on_local_read(ClassId cls, bool served_locally,
                                           std::size_t remote_targets) {
  Entry& entry = entry_of(cls);
  const std::size_t rg = served_locally ? 0 : std::max<std::size_t>(1, remote_targets);
  if (entry.doubling) {
    apply(cls, entry.doubling->on_read(rg, observed_join_cost(cls)));
  } else {
    apply(cls, entry.fixed->on_read(rg));
  }
}

void BasicReplicationPolicy::on_update_served(ClassId cls) {
  Entry& entry = entry_of(cls);
  if (entry.doubling) {
    apply(cls, entry.doubling->on_update(observed_join_cost(cls)));
  } else {
    apply(cls, entry.fixed->on_update());
  }
}

void BasicReplicationPolicy::reset_all() { entries_.clear(); }

Cost BasicReplicationPolicy::counter(ClassId cls) {
  Entry& entry = entry_of(cls);
  return entry.doubling ? entry.doubling->counter() : entry.fixed->counter();
}

bool BasicReplicationPolicy::automaton_in_group(ClassId cls) {
  Entry& entry = entry_of(cls);
  return entry.doubling ? entry.doubling->in_group() : entry.fixed->in_group();
}

void install_basic_policies(Cluster& cluster, BasicPolicyOptions options) {
  for (std::uint32_t m = 0; m < cluster.machine_count(); ++m) {
    PasoRuntime& runtime = cluster.runtime(MachineId{m});
    runtime.set_policy(
        std::make_unique<BasicReplicationPolicy>(runtime, options));
  }
}

}  // namespace paso::adaptive
