// The Basic adaptive algorithm (Section 5.1) as a pure automaton.
//
// Per (machine, object class), a cost counter c decides write-group
// membership:
//   * member, local read served:          c <- min(c + q, K)
//   * non-member, read served remotely:   c <- c + q * (lambda+1 - |F|);
//                                         join and set c = K when c >= K
//   * member, update (insert/read&del):   c <- max(c - 1, 0);
//                                         leave when c = 0 unless basic
//
// (The paper prints "max{c+1, K}" and "min{c-1, 0}"; those are typos for
// the capped forms — uncapped, the counter jumps to K after one read and
// goes negative after one update, and the potential argument of Theorem 2
// breaks. See DESIGN.md "paper errata".)
//
// q = 1 is the hash-table normalization of Theorem 2; q > 1 is the
// data-structure extension (query cost q, update cost 1) with ratio
// 3 + 2*lambda/K. The automaton is deliberately free of any distribution
// machinery so the competitive benches can drive it over millions of
// requests; BasicReplicationPolicy adapts it to the live system.
#pragma once

#include <algorithm>
#include <cstddef>

#include "common/cost.hpp"
#include "common/require.hpp"

namespace paso::adaptive {

enum class CounterAction { kNone, kJoin, kLeave };

struct CounterConfig {
  Cost join_cost = 8;   ///< K, in normalized time units
  Cost query_cost = 1;  ///< q, the data-structure query cost
  bool is_basic = false;  ///< basic-support machines never leave
  bool start_in_group = false;
};

class CounterAutomaton {
 public:
  explicit CounterAutomaton(CounterConfig config) : config_(config) {
    PASO_REQUIRE(config_.join_cost > 0, "K must be positive");
    PASO_REQUIRE(config_.query_cost > 0, "q must be positive");
    in_group_ = config_.is_basic || config_.start_in_group;
    if (in_group_) counter_ = config_.join_cost;
  }

  /// A process on this machine read from the class. `read_group_size` is
  /// lambda + 1 - |F(C)| (ignored when the read was served locally).
  CounterAction on_read(std::size_t read_group_size) {
    if (in_group_) {
      counter_ = std::min(counter_ + config_.query_cost, config_.join_cost);
      return CounterAction::kNone;
    }
    counter_ += config_.query_cost * static_cast<Cost>(read_group_size);
    if (counter_ >= config_.join_cost) {
      in_group_ = true;
      counter_ = config_.join_cost;
      return CounterAction::kJoin;
    }
    return CounterAction::kNone;
  }

  /// The local server applied a replicated update (only members do).
  CounterAction on_update() {
    if (!in_group_) return CounterAction::kNone;
    counter_ = std::max<Cost>(counter_ - 1, 0);
    if (counter_ <= 0 && !config_.is_basic) {
      in_group_ = false;
      counter_ = 0;
      return CounterAction::kLeave;
    }
    return CounterAction::kNone;
  }

  /// External membership changes (e.g. a crash forced this machine out, or
  /// support selection recruited it).
  void force_membership(bool in_group) {
    in_group_ = in_group;
    counter_ = in_group ? config_.join_cost : 0;
  }

  bool in_group() const { return in_group_; }
  Cost counter() const { return counter_; }
  const CounterConfig& config() const { return config_; }

  /// Doubling/halving support: rescale K, clamping the counter into range.
  void set_join_cost(Cost k) {
    PASO_REQUIRE(k > 0, "K must be positive");
    config_.join_cost = k;
    counter_ = std::min(counter_, k);
  }

 private:
  CounterConfig config_;
  bool in_group_ = false;
  Cost counter_ = 0;
};

}  // namespace paso::adaptive
