// Open-loop internet-scale traffic generation.
//
// The benches before this layer were closed-loop: one synchronous client per
// machine, the next op issued only after the previous returned — a client
// population that politely slows down exactly when the system saturates,
// which is why closed loops cannot find the overload knee. This engine is
// *open-loop*: arrivals come from a seeded nonhomogeneous Poisson process
// (base rate x diurnal sinusoid x flash-crowd windows, sampled by
// Lewis-Shedler thinning) whose rate does not care how the system is doing.
// Each arrival is attributed to one of millions of simulated client
// sessions (ProcessId{machine, ordinal} — the ordinal space is the session
// space, no per-session state is materialized), draws its key from a
// Zipfian distribution (the YCSB-style skew), and issues a robust op on the
// owning machine's runtime. Completion latency lands in an obs::Histogram;
// the report carries p50/p99/p999 plus the full outcome breakdown, which is
// what bench_overload sweeps past the knee and gates.
//
// Deterministic by construction: one Rng seeds everything, arrivals are
// simulator events, and every decision happens at issue time — the same
// seed replays the same run bit for bit (chaos included).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "paso/cluster.hpp"
#include "sim/simulator.hpp"

namespace paso::workload {

/// Time-varying arrival-rate model: a base Poisson rate shaped by a diurnal
/// sinusoid and additive flash-crowd windows. Rates are ops per virtual
/// time unit, cluster-wide.
struct ArrivalModel {
  /// Baseline arrival rate (ops per virtual time unit).
  double base_rate = 0.01;
  /// Relative amplitude of the diurnal sinusoid in [0, 1): the rate swings
  /// between base*(1-a) and base*(1+a) over one period. 0 disables it.
  double diurnal_amplitude = 0.0;
  /// Virtual-time length of one diurnal cycle.
  sim::SimTime diurnal_period = 200'000;
  /// A flash crowd multiplies the instantaneous rate while active — the
  /// "everyone hits one segment at 9am" event overload survival is about.
  struct FlashCrowd {
    sim::SimTime start = 0;
    sim::SimTime duration = 0;
    double multiplier = 1.0;  ///< must be >= 1
  };
  std::vector<FlashCrowd> flash_crowds;

  /// Instantaneous rate lambda(t).
  double rate_at(sim::SimTime t) const;
  /// A constant envelope >= rate_at(t) for all t (the thinning majorant).
  double peak_rate() const;
};

struct TrafficConfig {
  std::uint64_t seed = 1;
  ArrivalModel arrivals;
  /// Virtual-time generation horizon; completions are drained afterwards.
  sim::SimTime duration = 100'000;
  /// Simulated client sessions, multiplexed over the machines: session i
  /// lives on machine i % machines as ProcessId{machine, i / machines}.
  /// Sessions are an identity space, not materialized state, so millions
  /// cost nothing.
  std::size_t sessions = 1'000'000;
  /// Key universe and Zipf exponent for the key-choice skew.
  std::size_t key_space = 1024;
  double zipf_s = 0.99;
  /// Fraction of arrivals that are inserts; the rest are reads.
  double insert_fraction = 0.5;
  /// Payload size handed to make_tuple.
  std::size_t payload_bytes = 64;
  /// Schema adapters: the engine is schema-agnostic, the caller provides
  /// the tuple/criterion constructors for its key space.
  std::function<Tuple(std::uint64_t key, std::size_t payload_bytes)>
      make_tuple;
  std::function<SearchCriterion(std::uint64_t key)> make_criterion;
  /// Latency histogram bucket bounds (virtual time units).
  std::vector<double> latency_bounds = {25,    50,    100,    200,    400,
                                        800,   1600,  3200,   6400,   12800,
                                        25600, 51200, 102400, 204800};
};

/// Everything one generation run produced. offered = accepted arrivals;
/// every op lands in exactly one completion counter unless its issuing
/// machine crashed with the op in flight (orphaned — the crash wiped the
/// client-side state, the callback will never fire).
struct TrafficReport {
  std::uint64_t offered = 0;        ///< ops issued
  std::uint64_t skipped = 0;        ///< arrivals with no live machine to issue from
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;         ///< definitive no-match answers
  std::uint64_t timed_out = 0;
  std::uint64_t degraded = 0;       ///< refused at the λ−k boundary
  std::uint64_t overloaded = 0;     ///< refused by admission control
  std::uint64_t orphaned = 0;       ///< issuer crashed mid-op
  sim::SimTime elapsed = 0;         ///< generation horizon actually used
  obs::Histogram latency{std::vector<double>{}};  ///< completed-op latency

  double offered_rate() const {
    return elapsed > 0 ? static_cast<double>(offered) / elapsed : 0.0;
  }
  /// Completed useful work per virtual time unit — the bench's y-axis.
  double goodput() const {
    return elapsed > 0 ? static_cast<double>(ok) / elapsed : 0.0;
  }
  /// Fraction of offered ops refused (admission) or lost (crash orphans).
  double shed_rate() const {
    return offered > 0
               ? static_cast<double>(overloaded + orphaned) / offered
               : 0.0;
  }
  double p50() const { return latency.quantile(0.50); }
  double p99() const { return latency.quantile(0.99); }
  double p999() const { return latency.quantile(0.999); }
};

/// Drives one Cluster (sim transport only — open-loop arrival times are
/// virtual-time events) with the configured traffic and reports.
class TrafficEngine {
 public:
  TrafficEngine(Cluster& cluster, TrafficConfig config);

  /// Generate arrivals over [now, now + duration), then drain the simulator
  /// until every in-flight completion fired. Reentrant: each call is an
  /// independent run appending to nothing.
  TrafficReport run();

 private:
  void arm_next_arrival(sim::SimTime horizon);
  void issue();

  Cluster& cluster_;
  TrafficConfig config_;
  Rng rng_;
  TrafficReport report_;
  obs::Histogram latency_;
};

}  // namespace paso::workload
