#include "workload/traffic.hpp"

#include <cmath>
#include <utility>

namespace paso::workload {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}  // namespace

double ArrivalModel::rate_at(sim::SimTime t) const {
  double rate = base_rate;
  if (diurnal_amplitude > 0 && diurnal_period > 0) {
    rate *= 1.0 + diurnal_amplitude * std::sin(kTwoPi * t / diurnal_period);
  }
  for (const FlashCrowd& crowd : flash_crowds) {
    if (t >= crowd.start && t < crowd.start + crowd.duration) {
      rate *= crowd.multiplier;
    }
  }
  return rate;
}

double ArrivalModel::peak_rate() const {
  // Conservative majorant: sinusoid at its crest, every flash crowd active
  // at once. Thinning only needs an upper bound; a loose one costs extra
  // rejected candidates, never correctness.
  double peak = base_rate * (1.0 + diurnal_amplitude);
  for (const FlashCrowd& crowd : flash_crowds) {
    peak *= std::max(1.0, crowd.multiplier);
  }
  return peak;
}

TrafficEngine::TrafficEngine(Cluster& cluster, TrafficConfig config)
    : cluster_(cluster),
      config_(std::move(config)),
      rng_(config_.seed),
      latency_(config_.latency_bounds) {
  PASO_REQUIRE(cluster_.transport_kind() == TransportKind::kSim,
               "traffic engine needs virtual-time arrivals (sim transport)");
  PASO_REQUIRE(config_.make_tuple != nullptr && config_.make_criterion != nullptr,
               "traffic config needs schema adapters (make_tuple/make_criterion)");
  PASO_REQUIRE(config_.arrivals.base_rate > 0,
               "arrival base rate must be positive");
  PASO_REQUIRE(config_.arrivals.diurnal_amplitude >= 0 &&
                   config_.arrivals.diurnal_amplitude < 1,
               "diurnal amplitude must be in [0, 1)");
  for (const ArrivalModel::FlashCrowd& crowd : config_.arrivals.flash_crowds) {
    PASO_REQUIRE(crowd.multiplier >= 1.0,
                 "flash crowds amplify (multiplier >= 1)");
  }
  PASO_REQUIRE(config_.sessions > 0, "need at least one session");
  PASO_REQUIRE(config_.key_space > 0, "need a non-empty key space");
  PASO_REQUIRE(config_.duration > 0, "need a positive horizon");
}

TrafficReport TrafficEngine::run() {
  report_ = TrafficReport{};
  latency_ = obs::Histogram(config_.latency_bounds);
  rng_.reseed(config_.seed);
  sim::Simulator& sim = cluster_.simulator();
  const sim::SimTime horizon = sim.now() + config_.duration;
  arm_next_arrival(horizon);
  // Generation and completion interleave on the one event queue; settling
  // runs the whole open-loop experiment and then drains the stragglers.
  cluster_.settle();
  report_.elapsed = config_.duration;
  // Ops whose completion never fired: their issuing machine crashed with
  // the op in flight and the crash wiped the client-side state.
  report_.orphaned =
      report_.offered - (report_.ok + report_.failed + report_.timed_out +
                         report_.degraded + report_.overloaded);
  report_.latency = latency_;
  return report_;
}

void TrafficEngine::arm_next_arrival(sim::SimTime horizon) {
  // Lewis–Shedler thinning: candidate gaps are Exp(peak); a candidate at t
  // survives with probability lambda(t)/peak. One simulator event per
  // accepted arrival keeps the queue shallow no matter the horizon.
  sim::Simulator& sim = cluster_.simulator();
  const double peak = config_.arrivals.peak_rate();
  sim::SimTime t = sim.now();
  while (true) {
    t += -std::log1p(-rng_.uniform01()) / peak;
    if (t >= horizon) return;
    if (rng_.uniform01() * peak <= config_.arrivals.rate_at(t)) {
      sim.schedule_at(t, [this, horizon] {
        issue();
        arm_next_arrival(horizon);
      });
      return;
    }
  }
}

void TrafficEngine::issue() {
  // Attribute the arrival to one of the configured sessions. A session's
  // home machine is session % n; when the home is down the session lands on
  // the next live machine (a real client would re-resolve), and only an
  // all-machines-down arrival is skipped.
  const std::size_t session =
      static_cast<std::size_t>(rng_.uniform(0, config_.sessions - 1));
  const std::size_t n = cluster_.machine_count();
  MachineId machine{static_cast<std::uint32_t>(session % n)};
  if (!cluster_.is_up(machine)) {
    bool found = false;
    for (std::size_t i = 1; i < n; ++i) {
      const MachineId next{
          static_cast<std::uint32_t>((machine.value + i) % n)};
      if (cluster_.is_up(next)) {
        machine = next;
        found = true;
        break;
      }
    }
    if (!found) {
      ++report_.skipped;
      return;
    }
  }
  const ProcessId process{machine,
                          static_cast<std::uint32_t>(session / n)};
  const std::uint64_t key =
      static_cast<std::uint64_t>(rng_.zipf(config_.key_space, config_.zipf_s));
  const bool is_insert = rng_.chance(config_.insert_fraction);
  const sim::SimTime issued_at = cluster_.simulator().now();
  ++report_.offered;

  // Latency is recorded for *completed* ops (ok / definitive fail): a shed
  // or timed-out op has no service latency, it has an outcome — mixing the
  // deadline into p99 would hide exactly the tail the bench watches.
  auto on_report = [this, issued_at](OpReport r) {
    switch (r.status) {
      case OpStatus::kOk:
        ++report_.ok;
        latency_.observe(cluster_.simulator().now() - issued_at);
        break;
      case OpStatus::kFail:
        ++report_.failed;
        latency_.observe(cluster_.simulator().now() - issued_at);
        break;
      case OpStatus::kTimeout:
        ++report_.timed_out;
        break;
      case OpStatus::kDegraded:
        ++report_.degraded;
        break;
      case OpStatus::kOverloaded:
        ++report_.overloaded;
        break;
    }
  };

  PasoRuntime& runtime = cluster_.runtime(machine);
  if (is_insert) {
    runtime.insert_robust(
        process, config_.make_tuple(key, config_.payload_bytes),
        std::move(on_report));
  } else {
    runtime.read_robust(process, config_.make_criterion(key),
                        std::move(on_report));
  }
}

}  // namespace paso::workload
