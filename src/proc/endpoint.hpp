// Machine endpoint: the event loop a machine *process* runs.
//
// Each machine of a socket-transport cluster is its own OS process whose
// whole job is to be the machine's network presence: it connects back to
// the parent (broker) over TCP on localhost, completes the Hello/HelloAck
// handshake, and then serves a single-threaded poll loop —
//
//   * read kMsg frames into a *bounded* ingress buffer; when the buffer is
//     full it stops reading, so TCP flow control pushes back on the broker
//     (the backpressure-aware read loop of the socket transport);
//   * drain the ingress in FIFO order by emitting one kDeliver ack per
//     message — the ack is the "transmission completed at the destination"
//     event the broker turns into a protocol delivery;
//   * beacon kHeartbeat frames on a fixed interval (the supervisor's
//     liveness signal; a kill -9 also closes the socket, which is detected
//     even sooner);
//   * on kShutdown, drain the ingress, say kBye, and exit 0.
//
// The loop runs either inside a forked child (proc::spawn_machine_process
// with no exec path) or as the main of the dedicated `paso_machined`
// binary (exec mode). It never touches protocol state: the protocol stack
// lives in the broker, keyed by the frame sequence numbers this loop
// round-trips.
#pragma once

#include <cstdint>
#include <cstddef>

namespace paso::proc {

struct EndpointConfig {
  /// Broker's listening port on 127.0.0.1.
  std::uint16_t port = 0;
  /// This machine's id, announced in the Hello frame.
  std::uint32_t machine = 0;
  /// Spawn token proving this connection belongs to the expected child.
  std::uint64_t token = 0;
  /// Ingress buffer bound: kMsg frames held but not yet acked. When full,
  /// the loop stops reading the socket (TCP backpressure to the broker).
  std::size_t ingress_capacity = 1024;
  /// Microseconds between heartbeat beacons.
  long heartbeat_interval_us = 25'000;
};

/// Run the endpoint loop to completion. Returns the process exit code:
/// 0 = clean shutdown (kShutdown/EOF), 2 = could not reach the broker,
/// 3 = wire protocol error. Never throws.
int machine_endpoint_main(const EndpointConfig& config);

}  // namespace paso::proc
